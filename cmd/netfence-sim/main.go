// Command netfence-sim regenerates the tables and figures of the
// NetFence paper's evaluation (§6) on the packet-level simulator.
//
// Usage:
//
//	netfence-sim -list
//	netfence-sim -exp fig9a -scale small
//	netfence-sim -all -scale tiny
//
// Scales: tiny (seconds of wall time, CI), small (default, minutes),
// paper (the full 1000-sender, 4000-simulated-second configuration —
// expect a long run).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"netfence/internal/exp"
)

func main() {
	var (
		expName = flag.String("exp", "", "experiment to run (see -list)")
		scale   = flag.String("scale", "small", "tiny | small | paper")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiments")
	)
	flag.Parse()

	if *list {
		for _, r := range exp.Runners() {
			fmt.Printf("%-18s %s\n", r.Name, r.Brief)
		}
		return
	}

	sc, err := exp.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var runners []exp.Runner
	switch {
	case *all:
		runners = exp.Runners()
	case *expName != "":
		r, err := exp.RunnerByName(*expName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runners = []exp.Runner{r}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, r := range runners {
		start := time.Now()
		res := r.Run(sc)
		fmt.Println(res.Table())
		fmt.Printf("(%s, scale=%s, %.1fs wall)\n\n", r.Name, sc.Name, time.Since(start).Seconds())
	}
}
