// Command netfence-sim regenerates the tables and figures of the
// NetFence paper's evaluation (§6) on the packet-level simulator, and
// runs declarative scenario sweeps across every registered defense.
//
// Figures:
//
//	netfence-sim -list
//	netfence-sim -exp fig9a -scale small
//	netfence-sim -exp fig8 -scale tiny -defense netfence,tva
//	netfence-sim -all -scale tiny
//
// Any comparison figure can be restricted to a subset of the registered
// defense systems with -defense (see -list-defenses).
//
// Scenario-matrix mode fans the paper's collusion scenario over a
// defenses × populations × deployment-fractions × seeds matrix, in
// parallel, one engine per cell, and prints a unified result table.
// -topo swaps the topology for any registered one (see
// -list-topologies): the classic dumbbell, the parking lot, the
// single-AS star hotspot, or the seeded random AS-level graph. -deploy
// sweeps partial deployment: each fraction deploys the defense on that
// share of source ASes, leaving the rest legacy (NetFence demotes their
// traffic to best-effort):
//
//	netfence-sim -sweep -defense netfence,tva,stopit,fq -seeds 1,2,3
//	netfence-sim -sweep -senders 20,40 -bottleneck 4000000 -duration 240
//	netfence-sim -sweep -topo random-as -deploy 0,0.5,1
//
// -attack swaps the static colluder flood for adaptive attack
// strategies (see -list-attacks) and sweeps them as an axis: each
// strategy decides per control tick how the attackers transmit, observes
// the returned congestion policing feedback, and may craft packet
// channels and presented feedback:
//
//	netfence-sim -sweep -attack flood,onoff-sync,replay,legacy-flood
//	netfence-sim -sweep -attack request-prio -defense netfence,tva
//
// Attack strategies expose tunable parameters (-list-attacks prints
// each strategy's ranges and defaults); a sweep axis entry may pin them
// with name:key=val,... syntax:
//
//	netfence-sim -sweep -attack onoff-sync:on=1,off=4,trickle_bps=10000
//
// -search replaces the hand-picked parameters with an adversarial
// search: per (defense × strategy) cell a deterministic seeded
// optimizer (-search-optimizer grid|anneal) hunts the parameter vector
// that minimizes legitimate goodput within -search-budget candidate
// evaluations, prints the worst-found table, optionally writes it as
// JSON (-search-out), and fails the run when NetFence falls below the
// Theorem-1 floor at a searched optimum:
//
//	netfence-sim -search -defense netfence,tva -attack flood,onoff-sync
//	netfence-sim -search -search-optimizer anneal -search-budget 32 -search-out worst.json
//
// Scales: tiny (seconds of wall time, CI), small (default, minutes),
// paper (the full 1000-sender, 4000-simulated-second configuration —
// expect a long run).
//
// -shards N partitions scenario topologies into N per-AS shards, one
// engine per shard, synchronized in lookahead windows with results
// byte-identical to the single engine for the deterministic workload
// set (-1 = one shard per CPU):
//
//	netfence-sim -sweep -shards 4 -senders 128
//	netfence-sim -bench-json -bench-scale large -shards 8
//
// -bench-json emits a machine-readable benchmark baseline (wall time,
// events/s and allocs/event per experiment family) for perf-trajectory
// tracking; the checked-in BENCH_PR5.json was generated this way.
// -bench-baseline FILE additionally compares the fresh run against a
// checked-in baseline and exits non-zero when any suite's wall time
// regressed more than 25% (the CI bench smoke gate; with -shards it
// also times a sharded collusion smoke cell). -bench-scale large swaps
// the tiny figure suite for a single large-scale cell — the seeded
// random AS-level topology with >=10k senders — and -bench-scale huge
// raises that to 65,536 senders; with -shards N both run the
// single-engine twin first and report the sharded speedup.
// -bench-scale massive crosses the million-modeled-sender line with
// fleet aggregation (1,024 attachment hosts of weight 1,024 plus 256
// TCP users) and, with -shards N, additionally requires the sharded
// Result JSON byte-identical to the single engine's; massive-smoke is
// the same shape at 16,384 modeled senders for CI.
//
// -cpuprofile and -memprofile write pprof profiles covering the run;
// shard worker goroutines carry pprof labels (shard=<as-range>) so
// profiles attribute hot paths to partitions.
//
// -serve starts the simulation service instead of a batch command: an
// HTTP API that accepts scenario and sweep jobs as JSON, runs them on
// a bounded worker pool, streams timeseries samples over SSE, and
// exposes a live control endpoint feeding mutations into running
// scenarios through the same code path scripted timelines use:
//
//	netfence-sim -serve -addr 127.0.0.1:8080
//	netfence-sim -serve -addr :0 -serve-workers 4 -serve-queue 32
//
// The first SIGINT/SIGTERM drains in-flight jobs gracefully (statuses
// stay readable during the drain); a second signal aborts running jobs
// at their next segment boundary, keeping partial results. Plain batch
// sweeps honor the same signals: completed cells are printed before
// the interrupt error surfaces.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"netfence"
	"netfence/internal/attack"
	"netfence/internal/defense"
	"netfence/internal/exp"
	"netfence/internal/obs"
	"netfence/internal/server"
)

func main() {
	var (
		expName  = flag.String("exp", "", "experiment to run (see -list)")
		scale    = flag.String("scale", "small", "tiny | small | paper")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiments")
		listDef  = flag.Bool("list-defenses", false, "list registered defense systems")
		listTopo = flag.Bool("list-topologies", false, "list registered topologies")
		listAtk  = flag.Bool("list-attacks", false, "list registered attack strategies")
		listMet  = flag.Bool("list-metrics", false, "list the registered metric catalog (name, kind, plane, paper section, meaning)")
		defenses = flag.String("defense", "", "comma-separated defense systems (default: the paper's lineup)")

		metricsOut  = flag.String("metrics-out", "", "write the run's aggregated metrics as Prometheus text to this file (-exp, -sweep, -search, -trace)")
		tracePath   = flag.String("trace", "", "write the flight-recorder packet trace of a single scenario cell to this file (use with -sweep and single-valued axes)")
		traceFlows  = flag.Int("trace-flows", 8, "flows the flight recorder samples per traced run (deterministic seeded selection)")
		traceFormat = flag.String("trace-format", "json", "trace output format: json (event array) | chrome (trace_event for chrome://tracing)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty = off")

		shards = flag.Int("shards", 1, "partition scenario topologies into this many per-AS shards, one engine per shard (1 = classic single engine; -1 = one shard per CPU). Applies to -sweep and the -bench-scale large/huge cells; the -exp figures drive the low-level API and stay single-engine")

		pipelineFlag = flag.String("pipeline", "auto", "sharded validation pipeline: auto (on exactly when it pays — sharded NetFence with Passport verification) | on | off. Results are byte-identical in every mode; only wall-clock speed changes")

		serveMode    = flag.Bool("serve", false, "run the simulation service (HTTP job queue + SSE streaming + live control) instead of a batch command")
		addr         = flag.String("addr", "127.0.0.1:8080", "serve: listen address (use :0 for an ephemeral port)")
		serveWorkers = flag.Int("serve-workers", 2, "serve: jobs run concurrently")
		serveQueue   = flag.Int("serve-queue", 16, "serve: queued-job bound; past it POST /jobs answers 503")

		searchMode   = flag.Bool("search", false, "run the adversarial search instead of a figure: optimize attack parameters per (defense x strategy) cell for maximum damage and print the worst-found table")
		searchBudget = flag.Int("search-budget", 24, "search: candidate evaluations per (defense x strategy) cell")
		searchOpt    = flag.String("search-optimizer", "grid", "search: optimizer (grid | anneal)")
		searchSeed   = flag.Uint64("search-seed", 1, "search: optimizer RNG seed (the report is deterministic in it)")
		searchOut    = flag.String("search-out", "", "search: write the worst-found table as JSON to this file")

		sweep      = flag.Bool("sweep", false, "run the scenario-matrix sweep instead of a figure")
		progress   = flag.Bool("progress", false, "sweep: print per-cell completion progress to stderr")
		topoName   = flag.String("topo", "", "sweep: registered topology name (default: the paper's 9-colluder dumbbell)")
		seeds      = flag.String("seeds", "1", "sweep: comma-separated RNG seeds")
		senders    = flag.String("senders", "20", "sweep: comma-separated sender populations")
		deploy     = flag.String("deploy", "", "sweep: comma-separated deployed source-AS fractions in [0,1] (empty = full deployment)")
		attacks    = flag.String("attack", "", "sweep: comma-separated attack strategies driving the attacker side (empty = the static colluder flood; see -list-attacks)")
		bottleneck = flag.Int64("bottleneck", 4_000_000, "sweep: bottleneck capacity in bps (default dumbbell only; -topo topologies scale it per sender)")
		duration   = flag.Int("duration", 240, "sweep: simulated seconds per cell")
		parallel   = flag.Int("parallelism", 0, "sweep: concurrent cells (0 = GOMAXPROCS)")

		benchJSON  = flag.Bool("bench-json", false, "emit the benchmark baseline as JSON and exit")
		benchScale = flag.String("bench-scale", "tiny", "bench-json: tiny (figure suite) | large (random-as, >=10k senders) | huge (>=65k) | massive (>=1M modeled senders via fleet aggregation) | massive-smoke (CI-sized massive)")
		benchBase  = flag.String("bench-baseline", "", "bench-json: baseline JSON to compare against; exit 1 on >25% wall-time regression")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile covering the run to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile at exit to this file")
	)
	flag.Parse()

	pipe, err := netfence.ParsePipelineMode(*pipelineFlag)
	if err != nil {
		fatal(err)
	}
	cliPipeline = pipe

	// Profile teardown must survive every exit path — fatal() and the
	// bench-gate os.Exit(1) bypass defers, so they flush explicitly
	// through the idempotent flushProfiles hook.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		prev := profileFinalizers
		profileFinalizers = func() {
			pprof.StopCPUProfile()
			f.Close()
			prev()
		}
	}
	if *memProfile != "" {
		path := *memProfile
		prev := profileFinalizers
		profileFinalizers = func() {
			f, err := os.Create(path)
			if err == nil {
				runtime.GC()
				pprof.Lookup("allocs").WriteTo(f, 0)
				f.Close()
			}
			prev()
		}
	}
	defer flushProfiles()

	// Opt-in pprof surface, on an explicit mux so nothing else rides on
	// http.DefaultServeMux. Works in every mode, -serve included.
	if *pprofAddr != "" {
		startPprof(*pprofAddr)
	}

	if *list {
		for _, r := range exp.Runners() {
			fmt.Printf("%-18s %s\n", r.Name, r.Brief)
		}
		return
	}
	if *listDef {
		for _, name := range netfence.Defenses() {
			fmt.Println(name)
		}
		return
	}
	if *listTopo {
		for _, name := range netfence.Topologies() {
			fmt.Println(name)
		}
		return
	}
	if *listAtk {
		listAttacks()
		return
	}
	if *listMet {
		listMetrics()
		return
	}
	if *benchJSON {
		if !runBenchJSON(*benchScale, *benchBase, *shards) {
			flushProfiles()
			os.Exit(1)
		}
		return
	}

	if *serveMode {
		runServe(*addr, *serveWorkers, *serveQueue)
		return
	}

	defenseList, err := parseDefenses(*defenses)
	if err != nil {
		fatal(err)
	}

	if *tracePath != "" {
		if !*sweep {
			fatal(fmt.Errorf("-trace rides on the -sweep scenario cell; add -sweep (with single-valued axes)"))
		}
		runTraced(defenseList, *topoName, *seeds, *senders, *attacks, *bottleneck, *duration, *shards,
			*tracePath, *traceFlows, *traceFormat, *metricsOut)
		return
	}

	if *searchMode {
		runSearch(defenseList, *topoName, *seeds, *senders, *attacks, *bottleneck, *duration, *parallel, *shards,
			*searchBudget, *searchOpt, *searchSeed, *searchOut, *progress, *metricsOut)
		return
	}

	if *sweep {
		attackList, err := parseAttacks(*attacks)
		if err != nil {
			fatal(err)
		}
		runSweep(defenseList, *topoName, *seeds, *senders, *deploy, attackList, *bottleneck, *duration, *parallel, *shards, *progress, *metricsOut)
		return
	}

	sc, err := exp.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	sc.Systems = defenseList
	meter := &netfence.Meter{}
	sc.Meter = meter

	var runners []exp.Runner
	switch {
	case *all:
		runners = exp.Runners()
	case *expName != "":
		r, err := exp.RunnerByName(*expName)
		if err != nil {
			fatal(err)
		}
		runners = []exp.Runner{r}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, r := range runners {
		if len(defenseList) > 0 && !r.Compares {
			fmt.Fprintf(os.Stderr, "warning: %s is a NetFence-only study; -defense ignored\n", r.Name)
		}
		start := time.Now()
		res := r.Run(sc)
		fmt.Println(res.Table())
		fmt.Printf("(%s, scale=%s, %.1fs wall)\n\n", r.Name, sc.Name, time.Since(start).Seconds())
	}
	// The -exp figures drive the low-level API; the meter's event total
	// is the metric they surface.
	writeMetrics(*metricsOut, map[string]uint64{"sim_events_executed_total": meter.Total()})
}

// startPprof serves net/http/pprof on an explicit mux at addr.
func startPprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "netfence-sim: pprof on http://%s/debug/pprof/\n", ln.Addr())
	go http.Serve(ln, mux) //nolint:errcheck — best-effort debug listener
}

// writeMetrics renders a metric map as Prometheus text to path;
// empty path is a no-op.
func writeMetrics(path string, counters map[string]uint64) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := obs.RenderPrometheus(f, counters); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// listMetrics prints the registered metric catalog, generated from the
// same registry the instrumentation compiles against.
func listMetrics() {
	for _, d := range netfence.Metrics() {
		kind := "counter"
		switch d.Kind {
		case obs.Gauge:
			kind = "gauge"
		case obs.Histogram:
			kind = "histogram"
		}
		plane := "deterministic"
		if d.Runtime {
			plane = "runtime"
		}
		fmt.Printf("%-32s %-9s %-13s %-7s %s\n", d.Name, kind, plane, d.Ref, d.Help)
	}
}

// runTraced runs the collusion scenario as one instrumented cell with
// the flight recorder on, prints the result, and writes the merged
// trace (and optionally the metric snapshot, runtime plane included).
func runTraced(defenseList []string, topoName, seedsCSV, sendersCSV, attacksCSV string, bottleneck int64, durationSec, shards int, tracePath string, traceFlows int, format, metricsOut string) {
	seedList, err := parseUints(seedsCSV)
	if err != nil {
		fatal(fmt.Errorf("-seeds: %w", err))
	}
	popList, err := parseInts(sendersCSV)
	if err != nil {
		fatal(fmt.Errorf("-senders: %w", err))
	}
	attackList, err := parseAttacks(attacksCSV)
	if err != nil {
		fatal(err)
	}
	if len(seedList) != 1 || len(popList) != 1 || len(defenseList) > 1 || len(attackList) > 1 {
		fatal(fmt.Errorf("-trace records exactly one cell: give single -seeds/-senders values and at most one -defense/-attack"))
	}
	def := "netfence"
	if len(defenseList) == 1 {
		def = defenseList[0]
	}
	meter := &netfence.Meter{}
	sc := collusionBaseFor(strings.ToLower(strings.TrimSpace(topoName)), bottleneck, durationSec, shards, len(attackList) > 0)(popList[0])
	sc.Name = "collusion-traced"
	sc.Seed = seedList[0]
	sc.Defense = netfence.Defense(def)
	sc.TraceFlows = traceFlows
	sc.Meter = meter
	if len(attackList) == 1 {
		name, params, err := netfence.ParseAttackSpec(attackList[0])
		if err != nil {
			fatal(err)
		}
		for i, w := range sc.Workloads {
			if as, ok := w.(netfence.AttackSpec); ok {
				as.Strategy, as.Params = name, params
				sc.Workloads[i] = as
			}
		}
	}
	in, err := sc.Build()
	if err != nil {
		fatal(err)
	}
	res := in.Run()
	fmt.Println(res.String())

	events := in.Trace()
	f, err := os.Create(tracePath)
	if err != nil {
		fatal(err)
	}
	switch format {
	case "chrome":
		err = obs.WriteChromeTrace(f, events)
	case "json":
		err = obs.WriteTraceJSON(f, events)
	default:
		f.Close()
		fatal(fmt.Errorf("unknown -trace-format %q (json|chrome)", format))
	}
	if err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d events, %d sampled flows)\n", tracePath, len(events), traceFlows)

	if metricsOut != "" {
		agg := map[string]uint64{}
		obs.MergeMap(agg, res.Counters)
		obs.MergeMap(agg, in.RuntimeCounters())
		writeMetrics(metricsOut, agg)
	}
}

// runServe runs the simulation service until a signal arrives. The
// first SIGINT/SIGTERM starts a graceful drain — no new submissions,
// queued jobs cancelled, running jobs allowed to finish, statuses
// readable throughout; a second signal aborts the running jobs at
// their next segment boundary, flushing whatever partial state they
// accumulated.
func runServe(addr string, workers, queueDepth int) {
	s := server.New(server.Config{Addr: addr, Workers: workers, QueueDepth: queueDepth})
	if err := s.Start(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "netfence-sim: serving on http://%s (%d workers, queue %d)\n",
		s.Addr(), workers, queueDepth)

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	<-sigs
	fmt.Fprintln(os.Stderr, "netfence-sim: draining in-flight jobs (signal again to abort them)")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "netfence-sim: aborting running jobs")
		cancel()
	}()
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// runSweep fans the paper's collusion scenario (25% long-TCP users, 75%
// colluder-bound attackers) over defenses × populations × deployment
// fractions × attacks × seeds, on the default dumbbell or any registered
// topology. Without -attack the attacker side is the classic static
// colluder flood; with it, the attackers are driven by each listed
// adaptive strategy in turn (the Sweep.Attacks axis).
func runSweep(defenseList []string, topoName, seedsCSV, sendersCSV, deployCSV string, attackList []string, bottleneck int64, durationSec, parallelism, shards int, showProgress bool, metricsOut string) {
	seedList, err := parseUints(seedsCSV)
	if err != nil {
		fatal(fmt.Errorf("-seeds: %w", err))
	}
	popList, err := parseInts(sendersCSV)
	if err != nil {
		fatal(fmt.Errorf("-senders: %w", err))
	}
	deployList, err := parseFloats(deployCSV)
	if err != nil {
		fatal(fmt.Errorf("-deploy: %w", err))
	}
	if len(defenseList) == 0 {
		defenseList = []string{"netfence", "tva", "stopit", "fq"}
	}
	// Mirror the registry's canonicalization so alternate spellings
	// ("ParkingLot") hit the parking-lot special case below. An unknown
	// name surfaces from the registry when the first cell builds, with
	// the registered-names message.
	topoName = strings.ToLower(strings.TrimSpace(topoName))

	meter := &netfence.Meter{}
	baseFor := collusionBaseFor(topoName, bottleneck, durationSec, shards, len(attackList) > 0)
	sw := netfence.Sweep{
		Base: netfence.Scenario{Name: "collusion"},
		// The role split depends on the population, so each population
		// cell rebuilds the scenario through BaseFor.
		BaseFor: func(pop int) netfence.Scenario {
			sc := baseFor(pop)
			sc.Meter = meter
			return sc
		},
		Defenses:        defenseList,
		Populations:     popList,
		DeployFractions: deployList,
		Attacks:         attackList,
		Seeds:           seedList,
		Parallelism:     parallelism,
	}
	if showProgress {
		sw.Progress = func(done, total int, cell string) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, cell)
		}
	}

	// SIGINT/SIGTERM checkpoint the sweep: in-flight cells finish, the
	// completed results print, and the interrupt error surfaces last.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	results, err := sw.RunContext(ctx)
	// A failing cell must not throw away the completed cells' work:
	// print what finished, then the error.
	completed := 0
	for _, r := range results {
		if r != nil {
			completed++
		}
	}
	if completed > 0 {
		fmt.Print(netfence.FormatResults(results))
		fmt.Printf("\n(%d/%d cells, %.1fs wall)\n", completed, len(results), time.Since(start).Seconds())
	}
	if metricsOut != "" {
		agg := map[string]uint64{}
		for _, r := range results {
			if r != nil {
				obs.MergeMap(agg, r.Counters)
			}
		}
		agg["sim_events_executed_total"] = meter.Total()
		writeMetrics(metricsOut, agg)
	}
	if err != nil {
		fatal(err)
	}
}

// collusionBaseFor builds the population-parameterized base scenario
// shared by -sweep and -search: the paper's collusion mix (25%
// long-TCP users, 75% colluder-bound attackers) on the default
// dumbbell or any registered topology. useAttackSpec swaps the static
// colluder flood for an AttackSpec driven by the attack subsystem —
// the workload the Attacks axis re-targets and the search tunes.
func collusionBaseFor(topoName string, bottleneck int64, durationSec, shards int, useAttackSpec bool) func(pop int) netfence.Scenario {
	// collusionWorkloads splits a sender group 25% long-TCP users / 75%
	// colluder-bound attackers.
	collusionWorkloads := func(group, senders int) []netfence.Workload {
		users := senders / 4
		if users == 0 && senders > 0 {
			users = 1
		}
		atk := netfence.Workload(netfence.ColluderPairs{
			Group: group, Senders: netfence.Range(users, senders), RateBps: 1_000_000,
		})
		if useAttackSpec {
			atk = netfence.AttackSpec{
				Group: group, Senders: netfence.Range(users, senders),
				RateBps: 1_000_000, ToColluders: true,
			}
		}
		return []netfence.Workload{
			netfence.LongTCP{Group: group, Senders: netfence.Range(0, users)},
			atk,
		}
	}
	return func(pop int) netfence.Scenario {
		var spec netfence.TopologySpec
		var wl []netfence.Workload
		switch topoName {
		case "":
			spec = netfence.DumbbellSpec{Senders: pop, BottleneckBps: bottleneck, ColluderASes: 9}
			wl = collusionWorkloads(0, pop)
		case "parkinglot":
			// The parking lot splits the population over three
			// sender groups: round the requested population down to
			// a multiple of 3 and attach the collusion mix to each.
			if pop -= pop % 3; pop < 3 {
				pop = 3
			}
			spec = netfence.RegisteredTopology{Name: topoName, Population: pop}
			for g := 0; g < 3; g++ {
				wl = append(wl, collusionWorkloads(g, pop/3)...)
			}
		default:
			// Registered topologies own their scaling: the in-tree
			// defaults keep a 200 kbps per-sender fair share and
			// include colluder ASes.
			spec = netfence.RegisteredTopology{Name: topoName, Population: pop}
			wl = collusionWorkloads(0, pop)
		}
		return netfence.Scenario{
			Topology:  spec,
			Workloads: wl,
			Duration:  netfence.Time(durationSec) * netfence.Second,
			Shards:    shards, // -1 is netfence.AutoShards
			Pipeline:  cliPipeline,
		}
	}
}

// runSearch drives the adversarial search over the collusion scenario:
// per (defense × strategy) cell a seeded optimizer tunes the
// strategy's declared parameters for maximum legit-goodput
// suppression. The worst-found table prints as text (and JSON with
// -search-out); the run fails when NetFence falls below the Theorem-1
// floor at a searched optimum.
func runSearch(defenseList []string, topoName, seedsCSV, sendersCSV, attacksCSV string, bottleneck int64, durationSec, parallelism, shards, budget int, optimizer string, searchSeed uint64, outPath string, showProgress bool, metricsOut string) {
	seedList, err := parseUints(seedsCSV)
	if err != nil {
		fatal(fmt.Errorf("-seeds: %w", err))
	}
	popList, err := parseInts(sendersCSV)
	if err != nil {
		fatal(fmt.Errorf("-senders: %w", err))
	}
	// The search already sweeps (defense × strategy × candidate); a
	// multi-valued population or seed axis belongs to -sweep.
	if len(seedList) != 1 || len(popList) != 1 {
		fatal(fmt.Errorf("-search takes exactly one -seeds value and one -senders value (got %v, %v); use -sweep for axes", seedList, popList))
	}
	var strategies []string
	if strings.TrimSpace(attacksCSV) != "" {
		specs, err := attack.ParseSpecList(attacksCSV)
		if err != nil {
			fatal(err)
		}
		for _, s := range specs {
			if len(s.Params) > 0 {
				fatal(fmt.Errorf("-search tunes attack parameters itself; drop the overrides from %q (use -sweep to pin them)", s))
			}
			strategies = append(strategies, s.Strategy)
		}
	}
	if len(defenseList) == 0 {
		defenseList = []string{"netfence", "tva", "stopit", "fq"}
	}
	base := collusionBaseFor(strings.ToLower(strings.TrimSpace(topoName)), bottleneck, durationSec, shards, true)(popList[0])
	base.Name = "collusion"
	base.Seed = seedList[0]
	meter := &netfence.Meter{}
	base.Meter = meter

	spec := netfence.SearchSpec{
		Base:        base,
		Defenses:    defenseList,
		Strategies:  strategies,
		Optimizer:   optimizer,
		Budget:      budget,
		Seed:        searchSeed,
		Parallelism: parallelism,
	}
	if showProgress {
		spec.Progress = func(done, total int, cell string) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, cell)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	rep, err := spec.RunContext(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Table())
	evals := 0
	for _, row := range rep.Rows {
		evals += row.Evals
	}
	fmt.Printf("\n(%d cells, %d candidates, %.1fs wall)\n", len(rep.Rows), evals, time.Since(start).Seconds())
	if outPath != "" {
		js, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(outPath, append(js, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	}
	writeMetrics(metricsOut, map[string]uint64{"sim_events_executed_total": meter.Total()})
	if err := rep.Gate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flushProfiles()
		os.Exit(1)
	}
}

// listAttacks prints every registered strategy with its tunable
// parameter surface, generated from the registered ParamSpecs.
func listAttacks() {
	for _, name := range netfence.Attacks() {
		fmt.Println(name)
		specs, err := netfence.AttackParams(name)
		if err != nil {
			fatal(err)
		}
		for _, p := range specs {
			fmt.Printf("  %-12s %-6s [%v, %v]  default %v  %s\n",
				p.Name, p.Type(), p.Min, p.Max, p.Default, p.Desc)
		}
	}
}

// parseDefenses validates a comma-separated defense list against the
// registry.
func parseDefenses(csv string) ([]string, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	registered := map[string]bool{}
	for _, n := range netfence.Defenses() {
		registered[n] = true
	}
	var out []string
	for _, f := range strings.Split(csv, ",") {
		name := strings.TrimSpace(f)
		if name == "" {
			continue
		}
		canonical := defense.Canonical(name)
		if !registered[canonical] {
			return nil, fmt.Errorf("unknown defense %q (registered: %s)",
				name, strings.Join(netfence.Defenses(), ", "))
		}
		out = append(out, canonical)
	}
	return out, nil
}

// parseAttacks validates a comma-separated attack list — names or
// parameterized specs ("onoff-sync:on=1,off=4") — against the attack
// registry, returning canonical spec strings for the Sweep axis. A
// malformed spec fails fast with the strategy and offending key named.
func parseAttacks(csv string) ([]string, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	specs, err := attack.ParseSpecList(csv)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.String()
	}
	return out, nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func parseFloats(csv string) ([]float64, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseUints(csv string) ([]uint64, error) {
	var out []uint64
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// cliPipeline is the parsed -pipeline mode, applied to every
// scenario-driven cell the CLI builds (sweep, search, trace, bench).
// Explicit A/B bench rows override it per row.
var cliPipeline netfence.PipelineMode

// benchNames is the fixed experiment-family suite timed by -bench-json:
// one per major simulation shape (capability channel, collusion,
// multi-bottleneck, analytic bound, incremental deployment, adaptive
// adversaries).
var benchNames = []string{"fig8", "fig9a", "fig10", "theorem", "deploy", "strategic", "worstcase"}

// benchRow is one timed suite in the -bench-json report. EventsPerSec and
// AllocsPerOp are measured over every engine the suite drives (an "op" is
// one executed simulator event): the zero-allocation hot path shows up
// directly as allocs_per_op approaching zero.
type benchRow struct {
	Name        string  `json:"name"`
	Scale       string  `json:"scale"`
	WallSeconds float64 `json:"wall_seconds"`
	Events      uint64  `json:"events"`
	EventsPer   float64 `json:"events_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// HeapAllocPeak and SysBytes snapshot memory at the row boundary
	// (ReadMemStats right after the suite returns, before the next
	// GC): live heap bytes and total bytes obtained from the OS. They
	// bound the suite's working set; the bench gate ignores both.
	HeapAllocPeak uint64 `json:"heap_alloc_peak"`
	SysBytes      uint64 `json:"sys_bytes"`
	// CandidatesPerSec is set on the adversarial-search row only:
	// evaluated attack configurations per wall second.
	CandidatesPerSec float64 `json:"candidates_per_sec,omitempty"`
	// Pipeline is the sharded validation-pipeline mode of the row's
	// scenario ("" on figure rows and single-engine cells).
	Pipeline string `json:"pipeline,omitempty"`
	// SerializedNs lists each shard's accumulated execute-round wall
	// nanoseconds on sharded cells — the serialized portion of the
	// parallel run, whose maximum bounds the achievable speedup. The
	// validation pipeline shrinks the bottleneck shard's slot by moving
	// CMAC work into the drain phase. The bench gate ignores it.
	SerializedNs []int64 `json:"serialized_ns,omitempty"`
	// Counters is the suite's metric snapshot (deterministic and
	// runtime planes merged: drops by reason, per-shard event counts,
	// handoff batches) on scenario-driven rows; nil on the figure rows,
	// which drive the low-level API. The bench gate ignores it.
	Counters map[string]uint64 `json:"counters,omitempty"`
}

type benchReport struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GOMAXPROCS and Hostname identify the execution environment behind
	// a baseline, so cross-machine comparisons are visibly apples to
	// oranges.
	GOMAXPROCS int        `json:"gomaxprocs"`
	Hostname   string     `json:"hostname,omitempty"`
	Rows       []benchRow `json:"benchmarks"`
}

// timeSuite runs fn once, accounting wall time, heap allocations
// (process-wide) and simulator events through a fresh per-suite Meter
// handed to fn — so concurrent engines elsewhere in the process (or a
// paused suite's leftovers) never leak into the row. fn may return a
// metric snapshot to attach to the row.
func timeSuite(name, scale string, fn func(m *netfence.Meter) map[string]uint64) benchRow {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	meter := &netfence.Meter{}
	start := time.Now()
	counters := fn(meter)
	wall := time.Since(start).Seconds()
	events := meter.Total()
	runtime.ReadMemStats(&m1)
	row := benchRow{
		Name: name, Scale: scale, WallSeconds: wall, Events: events, Counters: counters,
		HeapAllocPeak: m1.HeapAlloc, SysBytes: m1.Sys,
	}
	if wall > 0 {
		row.EventsPer = float64(events) / wall
	}
	if events > 0 {
		row.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(events)
	}
	return row
}

// runBenchJSON times the benchmark suite and emits a JSON baseline, so
// successive PRs can track the perf trajectory (BENCH_PR5.json is the
// current checked-in point). With a baseline file it also enforces the
// <=25% wall-time regression gate, returning false on violation. A suite
// over budget is retried up to twice and judged on its best time, so a
// transient co-tenant spike on a shared runner does not fail the build —
// a genuine regression reproduces on every attempt.
//
// shards > 1 adds sharded cells: a small partitioned collusion scenario
// at the tiny scale (the CI sharded smoke), and a sharded run of the
// large/huge cell next to its single-engine twin with the
// events-per-second speedup reported on stderr — the headline number of
// the parallel executor.
func runBenchJSON(scale, baselinePath string, shards int) bool {
	baseline := map[string]float64{}
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			fatal(err)
		}
		var base benchReport
		if err := json.Unmarshal(raw, &base); err != nil {
			fatal(err)
		}
		for _, r := range base.Rows {
			baseline[r.Name] = r.WallSeconds
		}
	}
	// measure runs one suite, retrying over-budget results.
	measure := func(name, scName string, fn func(m *netfence.Meter) map[string]uint64) benchRow {
		row := timeSuite(name, scName, fn)
		budget, gated := baseline[name]
		for attempt := 0; gated && budget > 0 && row.WallSeconds > 1.25*budget && attempt < 2; attempt++ {
			fmt.Fprintf(os.Stderr, "bench: %s over budget (%.2fs vs %.2fs), retrying\n",
				name, row.WallSeconds, budget)
			if again := timeSuite(name, scName, fn); again.WallSeconds < row.WallSeconds {
				row = again
			}
		}
		return row
	}
	// annotate stamps a sharded cell's row with the realized pipeline
	// state and the per-shard serialized execute time.
	annotate := func(row *benchRow, sh *netfence.Sharding) {
		if sh == nil {
			return
		}
		row.Pipeline = "off"
		if sh.Pipeline {
			row.Pipeline = "on"
		}
		row.SerializedNs = sh.SerializedNanos()
	}
	// measureSharded is measure for scenario-driven sharded cells, with
	// the row annotated from the (last attempt's) Sharding.
	measureSharded := func(name, scName string, mk func(m *netfence.Meter) netfence.Scenario) benchRow {
		var shInfo *netfence.Sharding
		row := measure(name, scName, func(m *netfence.Meter) map[string]uint64 {
			c, _, sh := runBenchScenarioFull(mk(m))
			shInfo = sh
			return c
		})
		annotate(&row, shInfo)
		return row
	}
	// maxSerialized is the slowest shard's serialized seconds — the
	// Amdahl bound of the row.
	maxSerialized := func(row benchRow) float64 {
		var mx int64
		for _, v := range row.SerializedNs {
			if v > mx {
				mx = v
			}
		}
		return float64(mx) / 1e9
	}
	// pipelineAB measures a Passport-enabled sharded scenario twice —
	// pipeline off, then on — and reports the serialized-time reduction.
	pipelineAB := func(name, scName string, mk func(pipe netfence.PipelineMode, m *netfence.Meter) netfence.Scenario) (off, on benchRow) {
		off = measureSharded(name+"-nopipe", scName, func(m *netfence.Meter) netfence.Scenario {
			return mk(netfence.PipelineOff, m)
		})
		on = measureSharded(name+"-pipe", scName, func(m *netfence.Meter) netfence.Scenario {
			return mk(netfence.PipelineOn, m)
		})
		if off.WallSeconds > 0 && on.WallSeconds > 0 {
			fmt.Fprintf(os.Stderr,
				"pipeline A/B (%s): wall %.2fs -> %.2fs (%.2fx); max shard serialized %.2fs -> %.2fs\n",
				name, off.WallSeconds, on.WallSeconds, off.WallSeconds/on.WallSeconds,
				maxSerialized(off), maxSerialized(on))
		}
		return off, on
	}
	// passportVariant derives the Passport-enabled A/B form of a cell
	// scenario.
	passportVariant := func(sc netfence.Scenario, name string, pipe netfence.PipelineMode) netfence.Scenario {
		sc.Name = name
		sc.Defense = netfence.DefenseSpec{Name: "netfence", Config: passportConfig()}
		sc.Pipeline = pipe
		return sc
	}

	hostname, _ := os.Hostname()
	rep := benchReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Hostname:   hostname,
	}
	switch scale {
	case "tiny":
		sc, err := exp.ScaleByName("tiny")
		if err != nil {
			fatal(err)
		}
		for _, name := range benchNames {
			r, err := exp.RunnerByName(name)
			if err != nil {
				fatal(err)
			}
			rep.Rows = append(rep.Rows, measure(name, sc.Name, func(m *netfence.Meter) map[string]uint64 {
				scm := sc
				scm.Meter = m
				r.Run(scm)
				return nil
			}))
		}
		if shards > 1 || shards == -1 {
			n := displayShards(shards)
			rep.Rows = append(rep.Rows, measureSharded(fmt.Sprintf("collusion-shards%d", n), "tiny",
				func(m *netfence.Meter) netfence.Scenario { return shardedSmokeScenario(shards, n, m) }))
			// Pipeline A/B on the Passport-enabled smoke: same cell with
			// per-packet source-AS authentication, validated inline (off)
			// vs precomputed at the drain barrier (on).
			abName := fmt.Sprintf("collusion-passport-shards%d", n)
			off, on := pipelineAB(abName, "tiny",
				func(pipe netfence.PipelineMode, m *netfence.Meter) netfence.Scenario {
					return passportVariant(shardedSmokeScenario(shards, n, m), abName, pipe)
				})
			rep.Rows = append(rep.Rows, off, on)
		}
		// The adversarial-search row: throughput of the optimizer loop
		// itself, in candidates per second.
		evals := 0
		searchRow := measure("search", "tiny", func(m *netfence.Meter) map[string]uint64 {
			evals = runSearchBench(m)
			return nil
		})
		if searchRow.WallSeconds > 0 {
			searchRow.CandidatesPerSec = float64(evals) / searchRow.WallSeconds
		}
		rep.Rows = append(rep.Rows, searchRow)
	case "large", "huge":
		// The headroom demonstration: one cell on the seeded random
		// AS-level topology with >=10k senders (large) or >=65k senders
		// (huge) — populations two to three orders of magnitude beyond
		// the tiny figure suite, tractable with the pooled hot path and,
		// sharded, with one engine per partition. With -shards the
		// single-engine twin runs first so the report carries both rows
		// and the events-per-second speedup is printed.
		mkCell := largeScenario
		if scale == "huge" {
			mkCell = hugeScenario
		}
		single := measure("random-as-"+scale, scale,
			func(m *netfence.Meter) map[string]uint64 { return runBenchScenario(mkCell(1, m)) })
		rep.Rows = append(rep.Rows, single)
		if shards > 1 || shards == -1 {
			n := displayShards(shards)
			sharded := measureSharded(fmt.Sprintf("random-as-%s-shards%d", scale, n), scale,
				func(m *netfence.Meter) netfence.Scenario { return mkCell(shards, m) })
			rep.Rows = append(rep.Rows, sharded)
			if sharded.WallSeconds > 0 && single.WallSeconds > 0 {
				fmt.Fprintf(os.Stderr, "sharded speedup (%s, %d shards): %.2fx wall, %.2fx events/sec\n",
					scale, n, single.WallSeconds/sharded.WallSeconds, sharded.EventsPer/single.EventsPer)
			}
			// Pipeline A/B on the Passport-enabled cell: the bottleneck
			// shard's inline CMAC verification is the serialized work the
			// pipeline moves into the drain phase.
			abName := fmt.Sprintf("random-as-%s-passport-shards%d", scale, n)
			off, on := pipelineAB(abName, scale,
				func(pipe netfence.PipelineMode, m *netfence.Meter) netfence.Scenario {
					return passportVariant(mkCell(shards, m), abName, pipe)
				})
			rep.Rows = append(rep.Rows, off, on)
		}
	case "massive", "massive-smoke":
		// The million-sender demonstration: fleet aggregation carries a
		// modeled population two orders of magnitude beyond the huge
		// cell's host count, and the cell itself proves determinism by
		// re-running at the requested shard count and requiring the
		// Result JSON byte-identical to the single engine's.
		p := massiveFull
		if scale == "massive-smoke" {
			p = massiveSmoke
		}
		name := "random-as-" + scale
		var singleJSON, shardedJSON string
		single := measure(name, scale, func(m *netfence.Meter) map[string]uint64 {
			c, raw := runBenchScenarioJSON(massiveScenario(name, p, 1, m))
			singleJSON = raw
			return c
		})
		rep.Rows = append(rep.Rows, single)
		fmt.Fprintf(os.Stderr, "%s: %d modeled senders over %d hosts (%d fleet attachments, weight %d)\n",
			name, p.population(), p.users+p.hosts, p.hosts, p.weight)
		if shards > 1 || shards == -1 {
			n := displayShards(shards)
			var shInfo *netfence.Sharding
			sharded := measure(fmt.Sprintf("%s-shards%d", name, n), scale,
				func(m *netfence.Meter) map[string]uint64 {
					c, raw, sh := runBenchScenarioFull(massiveScenario(name, p, shards, m))
					shardedJSON = raw
					shInfo = sh
					return c
				})
			annotate(&sharded, shInfo)
			rep.Rows = append(rep.Rows, sharded)
			if shardedJSON != singleJSON {
				fmt.Fprintf(os.Stderr, "%s: sharded Result diverged from the single engine\n", name)
				return false
			}
			fmt.Fprintf(os.Stderr, "%s: sharded Result byte-identical to the single engine (%d shards)\n", name, n)
			if sharded.WallSeconds > 0 && single.WallSeconds > 0 {
				fmt.Fprintf(os.Stderr, "sharded speedup (%s, %d shards): %.2fx wall, %.2fx events/sec\n",
					scale, n, single.WallSeconds/sharded.WallSeconds, sharded.EventsPer/single.EventsPer)
			}
		}
	default:
		fatal(fmt.Errorf("unknown -bench-scale %q (tiny|large|huge|massive|massive-smoke)", scale))
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if baselinePath == "" {
		return true
	}
	ok := true
	for _, r := range rep.Rows {
		want, found := baseline[r.Name]
		if !found || want <= 0 {
			continue
		}
		if ratio := r.WallSeconds / want; ratio > 1.25 {
			fmt.Fprintf(os.Stderr, "bench regression: %s took %.2fs vs baseline %.2fs (+%.0f%%)\n",
				r.Name, r.WallSeconds, want, 100*(ratio-1))
			ok = false
		}
	}
	return ok
}

// displayShards resolves the -shards value for bench row names and
// speedup reports: -1 (auto) displays as the CPU count. Scenarios get
// the raw flag value instead — -1 is netfence.AutoShards, which clamps
// to the topology's AS count rather than failing fast — so the display
// can overstate the realized count only on machines with more CPUs
// than the topology has ASes.
func displayShards(shards int) int {
	if shards == -1 {
		return runtime.GOMAXPROCS(0)
	}
	return shards
}

// shardedSmokeScenario builds the CI sharded bench cell: the collusion
// mix on a mid-size dumbbell, partitioned — small enough for the bench
// smoke step, big enough that the mailbox handoff and window barriers
// carry real traffic.
func shardedSmokeScenario(shards, label int, m *netfence.Meter) netfence.Scenario {
	const pop = 128
	users := pop / 4
	return netfence.Scenario{
		Name:     fmt.Sprintf("collusion-shards%d", label),
		Seed:     1,
		Topology: netfence.DumbbellSpec{Senders: pop, BottleneckBps: pop * 100_000, ColluderASes: 9},
		Defense:  netfence.Defense("netfence"),
		Workloads: []netfence.Workload{
			netfence.LongTCP{Senders: netfence.Range(0, users)},
			netfence.ColluderPairs{Senders: netfence.Range(users, pop), RateBps: 1_000_000},
		},
		Duration: 20 * netfence.Second,
		Warmup:   10 * netfence.Second,
		Shards:   shards,
		Pipeline: cliPipeline,
		Meter:    m,
	}
}

// passportConfig is the NetFence configuration with Passport source-AS
// authentication enabled — the CMAC-heaviest configuration, whose
// per-packet verification the validation pipeline parallelizes.
func passportConfig() netfence.Config {
	cfg := netfence.DefaultConfig()
	cfg.Passport = true
	return cfg
}

// runBenchScenario drives one scenario-driven bench cell and returns
// its merged metric snapshot: the deterministic plane from the Result
// plus the runtime plane (per-shard event counts, handoff batches).
func runBenchScenario(sc netfence.Scenario) map[string]uint64 {
	counters, _ := runBenchScenarioJSON(sc)
	return counters
}

// runBenchScenarioJSON additionally returns the canonical Result JSON,
// so cells that run the same scenario at several shard counts can
// assert byte-identity (the massive cell's determinism check).
func runBenchScenarioJSON(sc netfence.Scenario) (map[string]uint64, string) {
	counters, raw, _ := runBenchScenarioFull(sc)
	return counters, raw
}

// runBenchScenarioFull is runBenchScenarioJSON plus the run's Sharding
// (nil on the single engine), for rows recording pipeline state and
// per-shard serialized time.
func runBenchScenarioFull(sc netfence.Scenario) (map[string]uint64, string, *netfence.Sharding) {
	in, err := sc.Build()
	if err != nil {
		fatal(err)
	}
	res := in.Run()
	fmt.Fprintln(os.Stderr, res.String())
	raw, err := json.Marshal(res)
	if err != nil {
		fatal(err)
	}
	counters := map[string]uint64{}
	obs.MergeMap(counters, res.Counters)
	obs.MergeMap(counters, in.RuntimeCounters())
	return counters, string(raw), in.Sharding
}

// runSearchBench is the adversarial-search bench cell: a small
// annealed search (two strategies against TVA+ on the collusion
// dumbbell), returning the number of evaluated candidates so the row
// can report candidates/sec.
func runSearchBench(m *netfence.Meter) int {
	base := collusionBaseFor("", 4_000_000, 40, 1, true)(20)
	base.Meter = m
	rep, err := netfence.SearchSpec{
		Base:       base,
		Defenses:   []string{"tva"},
		Strategies: []string{"flood", "onoff-sync"},
		Optimizer:  "anneal",
		Budget:     6,
		Seed:       1,
	}.Run()
	if err != nil {
		fatal(err)
	}
	evals := 0
	for _, row := range rep.Rows {
		evals += row.Evals
	}
	fmt.Fprint(os.Stderr, rep.Table())
	return evals
}

// largeScenario builds the large bench scenario: 10,240 senders (25%
// long-running TCP users, 75% flooding attackers) over the random-as
// transit core, NetFence fully deployed, partitioned into the given
// number of per-AS shards (1 = the classic single engine).
func largeScenario(shards int, m *netfence.Meter) netfence.Scenario {
	const pop = 10_240
	users := pop / 4
	return netfence.Scenario{
		Name: "random-as-large",
		Seed: 1,
		Topology: netfence.RandomASSpec{
			Senders: pop,
			// 100 kbps fair share at the exit bottleneck: a 2x
			// congested link once the attacker side offers its 200 kbps
			// per sender, keeping the paper's operating regime at 500x
			// the tiny-scale population.
			BottleneckBps: pop * 100_000,
			SrcASes:       32,
			ColluderASes:  9,
		},
		Defense: netfence.Defense("netfence"),
		Workloads: []netfence.Workload{
			netfence.LongTCP{Senders: netfence.Range(0, users)},
			netfence.AttackSpec{Senders: netfence.Range(users, pop), RateBps: 200_000, ToColluders: true},
		},
		Duration: 20 * netfence.Second,
		Warmup:   10 * netfence.Second,
		Shards:   shards,
		Pipeline: cliPipeline,
		Meter:    m,
	}
}

// runHugeCell is the huge bench scenario: 65,536 senders over a larger
// random AS-level core — the regime the paper's §6 argues about
// (hundreds of thousands of senders per bottleneck), reachable in one
// process by partitioning the topology across engines. The routing
// tables stay small thanks to stub compression; the per-AS shard count
// (64 source ASes, 8 transit ASes) leaves the partitioner room up to
// dozens of shards.
func hugeScenario(shards int, m *netfence.Meter) netfence.Scenario {
	const pop = 65_536
	users := pop / 4
	return netfence.Scenario{
		Name: "random-as-huge",
		Seed: 1,
		Topology: netfence.RandomASSpec{
			Senders:       pop,
			BottleneckBps: pop * 100_000,
			SrcASes:       64,
			TransitASes:   8,
			ExtraLinks:    4,
			ColluderASes:  9,
		},
		Defense: netfence.Defense("netfence"),
		Workloads: []netfence.Workload{
			netfence.LongTCP{Senders: netfence.Range(0, users)},
			netfence.AttackSpec{Senders: netfence.Range(users, pop), RateBps: 200_000, ToColluders: true},
		},
		Duration: 10 * netfence.Second,
		Warmup:   5 * netfence.Second,
		Shards:   shards,
		Pipeline: cliPipeline,
		Meter:    m,
	}
}

// massiveParams sizes a fleet-aggregated bench cell: `hosts` fleet
// attachment hosts each standing for `weight` modeled attackers, next
// to `users` individually-modeled TCP users. The full cell crosses the
// million-modeled-sender line; the smoke variant keeps the same shape
// at a population that finishes in seconds for CI.
type massiveParams struct {
	users   int   // individually modeled LongTCP users
	hosts   int   // fleet attachment hosts
	weight  int   // modeled attackers per attachment host
	rateBps int64 // per-modeled-attacker offered load

	srcASes, transitASes, extraLinks int

	duration, warmup netfence.Time
}

// population returns the total modeled sender count of the cell.
func (p massiveParams) population() int { return p.users + p.hosts*p.weight }

var (
	// massiveFull: 1,048,576 modeled attackers over 1,024 attachment
	// hosts (weight 1,024) plus 256 TCP users — a 2x-congested
	// bottleneck once the fleet offers 2 kbps per modeled sender.
	massiveFull = massiveParams{
		users: 256, hosts: 1024, weight: 1024, rateBps: 2_000,
		srcASes: 64, transitASes: 8, extraLinks: 4,
		duration: 10 * netfence.Second, warmup: 5 * netfence.Second,
	}
	// massiveSmoke: the same shape at 16,384 modeled attackers,
	// seconds-fast for the CI smoke step.
	massiveSmoke = massiveParams{
		users: 64, hosts: 256, weight: 64, rateBps: 2_000,
		srcASes: 16, transitASes: 4, extraLinks: 2,
		duration: 5 * netfence.Second, warmup: 2 * netfence.Second,
	}
)

// massiveScenario builds the fleet-aggregated random-as cell. The
// topology carries users+hosts physical sender hosts; the FleetSpec
// stamps each attachment host with its modeled weight, so the access
// routers police weight-scaled aggregates and the partitioner balances
// shards by modeled load. The bottleneck is sized to the modeled
// population (1 kbps fair share), keeping the 2x-congested operating
// regime of the large and huge cells.
func massiveScenario(name string, p massiveParams, shards int, m *netfence.Meter) netfence.Scenario {
	physical := p.users + p.hosts
	return netfence.Scenario{
		Name: name,
		Seed: 1,
		Topology: netfence.RandomASSpec{
			Senders:       physical,
			BottleneckBps: int64(p.population()) * 1_000,
			SrcASes:       p.srcASes,
			TransitASes:   p.transitASes,
			ExtraLinks:    p.extraLinks,
			ColluderASes:  9,
		},
		Defense: netfence.Defense("netfence"),
		Workloads: []netfence.Workload{
			netfence.LongTCP{Senders: netfence.Range(0, p.users)},
			netfence.FleetSpec{
				Count:    p.hosts * p.weight,
				Senders:  netfence.Range(p.users, physical),
				RateBps:  p.rateBps,
				Attacker: true,
			},
		},
		Duration: p.duration,
		Warmup:   p.warmup,
		Shards:   shards,
		Pipeline: cliPipeline,
		Meter:    m,
	}
}

// profileFinalizers chains the -cpuprofile/-memprofile teardown;
// flushProfiles runs it exactly once, on normal return or before any
// explicit os.Exit (which would bypass defers and truncate the profiles).
var (
	profileFinalizers = func() {}
	profilesFlushed   bool
)

func flushProfiles() {
	if profilesFlushed {
		return
	}
	profilesFlushed = true
	profileFinalizers()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	flushProfiles()
	os.Exit(2)
}
