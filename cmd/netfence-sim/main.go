// Command netfence-sim regenerates the tables and figures of the
// NetFence paper's evaluation (§6) on the packet-level simulator, and
// runs declarative scenario sweeps across every registered defense.
//
// Figures:
//
//	netfence-sim -list
//	netfence-sim -exp fig9a -scale small
//	netfence-sim -exp fig8 -scale tiny -defense netfence,tva
//	netfence-sim -all -scale tiny
//
// Any comparison figure can be restricted to a subset of the registered
// defense systems with -defense (see -list-defenses).
//
// Scenario-matrix mode fans the paper's collusion scenario over a
// defenses × populations × seeds matrix, in parallel, one engine per
// cell, and prints a unified result table:
//
//	netfence-sim -sweep -defense netfence,tva,stopit,fq -seeds 1,2,3
//	netfence-sim -sweep -senders 20,40 -bottleneck 4000000 -duration 240
//
// Scales: tiny (seconds of wall time, CI), small (default, minutes),
// paper (the full 1000-sender, 4000-simulated-second configuration —
// expect a long run).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"netfence"
	"netfence/internal/defense"
	"netfence/internal/exp"
)

func main() {
	var (
		expName  = flag.String("exp", "", "experiment to run (see -list)")
		scale    = flag.String("scale", "small", "tiny | small | paper")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiments")
		listDef  = flag.Bool("list-defenses", false, "list registered defense systems")
		defenses = flag.String("defense", "", "comma-separated defense systems (default: the paper's lineup)")

		sweep      = flag.Bool("sweep", false, "run the scenario-matrix sweep instead of a figure")
		seeds      = flag.String("seeds", "1", "sweep: comma-separated RNG seeds")
		senders    = flag.String("senders", "20", "sweep: comma-separated sender populations")
		bottleneck = flag.Int64("bottleneck", 4_000_000, "sweep: bottleneck capacity (bps)")
		duration   = flag.Int("duration", 240, "sweep: simulated seconds per cell")
		parallel   = flag.Int("parallelism", 0, "sweep: concurrent cells (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *list {
		for _, r := range exp.Runners() {
			fmt.Printf("%-18s %s\n", r.Name, r.Brief)
		}
		return
	}
	if *listDef {
		for _, name := range netfence.Defenses() {
			fmt.Println(name)
		}
		return
	}

	defenseList, err := parseDefenses(*defenses)
	if err != nil {
		fatal(err)
	}

	if *sweep {
		runSweep(defenseList, *seeds, *senders, *bottleneck, *duration, *parallel)
		return
	}

	sc, err := exp.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	sc.Systems = defenseList

	var runners []exp.Runner
	switch {
	case *all:
		runners = exp.Runners()
	case *expName != "":
		r, err := exp.RunnerByName(*expName)
		if err != nil {
			fatal(err)
		}
		runners = []exp.Runner{r}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, r := range runners {
		if len(defenseList) > 0 && !r.Compares {
			fmt.Fprintf(os.Stderr, "warning: %s is a NetFence-only study; -defense ignored\n", r.Name)
		}
		start := time.Now()
		res := r.Run(sc)
		fmt.Println(res.Table())
		fmt.Printf("(%s, scale=%s, %.1fs wall)\n\n", r.Name, sc.Name, time.Since(start).Seconds())
	}
}

// runSweep fans the paper's collusion scenario (25% long-TCP users, 75%
// colluder pairs) over defenses × populations × seeds.
func runSweep(defenseList []string, seedsCSV, sendersCSV string, bottleneck int64, durationSec, parallelism int) {
	seedList, err := parseUints(seedsCSV)
	if err != nil {
		fatal(fmt.Errorf("-seeds: %w", err))
	}
	popList, err := parseInts(sendersCSV)
	if err != nil {
		fatal(fmt.Errorf("-senders: %w", err))
	}
	if len(defenseList) == 0 {
		defenseList = []string{"netfence", "tva", "stopit", "fq"}
	}

	sw := netfence.Sweep{
		Base: netfence.Scenario{Name: "collusion"},
		// The role split depends on the population, so each population
		// cell rebuilds the scenario through BaseFor.
		BaseFor: func(pop int) netfence.Scenario {
			users := pop / 4
			if users == 0 {
				users = 1
			}
			return netfence.Scenario{
				Topology: netfence.DumbbellSpec{Senders: pop, BottleneckBps: bottleneck, ColluderASes: 9},
				Workloads: []netfence.Workload{
					netfence.LongTCP{Senders: netfence.Range(0, users)},
					netfence.ColluderPairs{Senders: netfence.Range(users, pop), RateBps: 1_000_000},
				},
				Duration: netfence.Time(durationSec) * netfence.Second,
			}
		},
		Defenses:    defenseList,
		Populations: popList,
		Seeds:       seedList,
		Parallelism: parallelism,
	}

	start := time.Now()
	results, err := sw.Run()
	// A failing cell must not throw away the completed cells' work:
	// print what finished, then the error.
	completed := 0
	for _, r := range results {
		if r != nil {
			completed++
		}
	}
	if completed > 0 {
		fmt.Print(netfence.FormatResults(results))
		fmt.Printf("\n(%d/%d cells, %.1fs wall)\n", completed, len(results), time.Since(start).Seconds())
	}
	if err != nil {
		fatal(err)
	}
}

// parseDefenses validates a comma-separated defense list against the
// registry.
func parseDefenses(csv string) ([]string, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	registered := map[string]bool{}
	for _, n := range netfence.Defenses() {
		registered[n] = true
	}
	var out []string
	for _, f := range strings.Split(csv, ",") {
		name := strings.TrimSpace(f)
		if name == "" {
			continue
		}
		canonical := defense.Canonical(name)
		if !registered[canonical] {
			return nil, fmt.Errorf("unknown defense %q (registered: %s)",
				name, strings.Join(netfence.Defenses(), ", "))
		}
		out = append(out, canonical)
	}
	return out, nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func parseUints(csv string) ([]uint64, error) {
	var out []uint64
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
