module netfence

go 1.22
