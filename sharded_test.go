package netfence

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"netfence/internal/topo"
)

// equivScenario is the shared deterministic workload mix the sharded
// equivalence suite runs on every topology: long-running TCP users, a
// victim-bound UDP flood, and (where the topology offers colluders) the
// colluder-pair flood, under full NetFence deployment with the
// receiver deny policy — the paper's operating regime, which keeps the
// bottleneck congested so queue order, drops and feedback all matter.
func equivScenario(topoSpec TopologySpec, workloads []Workload, shards int) Scenario {
	return Scenario{
		Name:          "equiv",
		Seed:          7,
		Topology:      topoSpec,
		Defense:       Defense("netfence"),
		Workloads:     workloads,
		DenyAttackers: true,
		Duration:      30 * Second,
		Warmup:        10 * Second,
		Shards:        shards,
	}
}

func resultJSON(t *testing.T, sc Scenario) string {
	t.Helper()
	res, err := sc.Run()
	if err != nil {
		t.Fatalf("%s (shards=%d): %v", sc.Name, sc.Shards, err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// diffJSON pinpoints the first divergence for debuggability.
func diffJSON(t *testing.T, name string, want, got string, shards int) {
	t.Helper()
	if want == got {
		return
	}
	i := 0
	for i < len(want) && i < len(got) && want[i] == got[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	hiW, hiG := i+120, i+120
	if hiW > len(want) {
		hiW = len(want)
	}
	if hiG > len(got) {
		hiG = len(got)
	}
	t.Fatalf("%s: shards=%d diverged from the single engine at byte %d:\nsingle: ...%s...\nsharded: ...%s...",
		name, shards, i, want[lo:hiW], got[lo:hiG])
}

// TestShardedEquivalenceTopologies is the golden-equivalence gate of
// the sharded executor: on each of the four in-tree topologies, the
// partitioned run must reproduce the single-engine Result JSON byte for
// byte at several shard counts.
func TestShardedEquivalenceTopologies(t *testing.T) {
	cases := []struct {
		name      string
		spec      TopologySpec
		workloads []Workload
		shards    []int
	}{
		{
			name: "dumbbell",
			spec: DumbbellSpec{Senders: 20, BottleneckBps: 4_000_000, ColluderASes: 3},
			workloads: []Workload{
				LongTCP{Senders: Range(0, 5)},
				UDPFlood{Senders: Range(5, 12)},
				ColluderPairs{Senders: Range(12, 20), RateBps: 1_000_000},
			},
			shards: []int{2, 4, 8},
		},
		{
			name: "parking-lot",
			spec: ParkingLotSpec{SendersPerGroup: 10, L1Bps: 4_000_000, L2Bps: 2_000_000},
			workloads: []Workload{
				LongTCP{Group: 0, Senders: Range(0, 3)},
				UDPFlood{Group: 0, Senders: Range(3, 10)},
				LongTCP{Group: 1, Senders: Range(0, 3)},
				ColluderPairs{Group: 1, Senders: Range(3, 10), RateBps: 1_000_000},
				LongTCP{Group: 2, Senders: Range(0, 10)},
			},
			shards: []int{2, 4, 8},
		},
		{
			name: "star",
			spec: StarSpec{Senders: 16, BottleneckBps: 3_200_000, ColluderASes: 2},
			workloads: []Workload{
				LongTCP{Senders: Range(0, 4)},
				UDPFlood{Senders: Range(4, 10)},
				ColluderPairs{Senders: Range(10, 16), RateBps: 1_000_000},
			},
			shards: []int{2, 4},
		},
		{
			name: "random-as",
			spec: RandomASSpec{Senders: 20, BottleneckBps: 4_000_000, TransitASes: 4, ExtraLinks: 2, ColluderASes: 3, GraphSeed: 3},
			workloads: []Workload{
				LongTCP{Senders: Range(0, 5)},
				UDPFlood{Senders: Range(5, 12)},
				ColluderPairs{Senders: Range(12, 20), RateBps: 1_000_000},
			},
			shards: []int{2, 4, 8},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			single := resultJSON(t, equivScenario(tc.spec, tc.workloads, 1))
			for _, n := range tc.shards {
				got := resultJSON(t, equivScenario(tc.spec, tc.workloads, n))
				diffJSON(t, tc.name, single, got, n)
			}
		})
	}
}

// TestShardedEquivalenceFuzz sweeps seeds over the random-as topology
// (varying the traffic, not the wiring) and asserts identical Result
// JSON at shards 1, 2, 4 and 8 — the cross-shard determinism fuzz of
// the mailbox handoff. It also exercises the handoff under -race when
// the race job runs it.
func TestShardedEquivalenceFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep is a long test; the topology suite covers short runs")
	}
	for seed := uint64(1); seed <= 5; seed++ {
		spec := RandomASSpec{Senders: 16, BottleneckBps: 3_200_000, TransitASes: 4, ExtraLinks: 1, ColluderASes: 2, GraphSeed: 2}
		wl := []Workload{
			LongTCP{Senders: Range(0, 4)},
			AttackSpec{Strategy: "onoff-sync", Senders: Range(4, 10), RateBps: 1_000_000},
			ColluderPairs{Senders: Range(10, 16), RateBps: 1_000_000},
		}
		sc := equivScenario(spec, wl, 1)
		sc.Seed = seed
		sc.Duration = 20 * Second
		sc.Warmup = 8 * Second
		single := resultJSON(t, sc)
		for _, n := range []int{2, 4, 8} {
			scn := sc
			scn.Shards = n
			got := resultJSON(t, scn)
			diffJSON(t, fmt.Sprintf("fuzz-seed%d", seed), single, got, n)
		}
	}
}

// TestShardedRace drives a small sharded scenario so `go test -race`
// exercises the mailbox handoff, barrier hand-over and per-shard meter
// ticking under the race detector. Kept unconditionally short.
func TestShardedRace(t *testing.T) {
	sc := equivScenario(
		DumbbellSpec{Senders: 8, BottleneckBps: 1_600_000, ColluderASes: 2},
		[]Workload{
			LongTCP{Senders: Range(0, 2)},
			UDPFlood{Senders: Range(2, 5)},
			ColluderPairs{Senders: Range(5, 8), RateBps: 1_000_000},
		}, 4)
	sc.Duration = 10 * Second
	sc.Warmup = 4 * Second
	sc.Probes = []Probe{GoodputProbe{}, FairnessProbe{}, FCTProbe{}, TimeseriesProbe{Interval: 2 * Second}}
	if _, err := sc.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestShardsFailFast pins the named-error contract: an explicit shard
// count beyond the AS count errors instead of silently clamping.
func TestShardsFailFast(t *testing.T) {
	sc := equivScenario(
		DumbbellSpec{Senders: 4, BottleneckBps: 1_000_000},
		[]Workload{LongTCP{Senders: Range(0, 4)}}, 64)
	_, err := sc.Run()
	if err == nil {
		t.Fatal("Shards=64 on a 6-AS topology should fail")
	}
	if !errors.Is(err, topo.ErrTooManyShards) {
		t.Fatalf("err = %v, want ErrTooManyShards", err)
	}
	sc.Shards = -5
	if _, err := sc.Run(); err == nil {
		t.Fatal("negative Shards should fail")
	}
}

// TestAutoShards resolves AutoShards to a valid clamped count and runs.
func TestAutoShards(t *testing.T) {
	sc := equivScenario(
		StarSpec{Senders: 6, BottleneckBps: 1_200_000},
		[]Workload{LongTCP{Senders: Range(0, 6)}}, AutoShards)
	sc.Duration = 6 * Second
	sc.Warmup = 2 * Second
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Senders != 6 {
		t.Fatalf("Senders = %d", res.Senders)
	}
}

// TestSweepShardsAxis pins the Sweep shards axis: cell naming, shard
// assignment, and byte-identical results across the axis for a
// deterministic scenario.
func TestSweepShardsAxis(t *testing.T) {
	base := equivScenario(
		DumbbellSpec{Senders: 8, BottleneckBps: 1_600_000, ColluderASes: 2},
		[]Workload{
			LongTCP{Senders: Range(0, 2)},
			ColluderPairs{Senders: Range(2, 8), RateBps: 1_000_000},
		}, 0)
	base.Duration = 12 * Second
	base.Warmup = 4 * Second
	sw := Sweep{Base: base, Shards: []int{1, 2, 4}}
	scs := sw.Scenarios()
	if len(scs) != 3 {
		t.Fatalf("expanded %d cells, want 3", len(scs))
	}
	for i, want := range []int{1, 2, 4} {
		if scs[i].Shards != want {
			t.Fatalf("cell %d Shards = %d, want %d", i, scs[i].Shards, want)
		}
	}
	if scs[1].Name != "equiv/netfence/n=8/shards=2/seed=7" {
		t.Fatalf("cell name = %q", scs[1].Name)
	}
	results, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(r *Result) string {
		c := *r
		c.Scenario = ""
		raw, _ := json.Marshal(&c)
		return string(raw)
	}
	if mk(results[0]) != mk(results[1]) || mk(results[0]) != mk(results[2]) {
		t.Fatalf("shards axis results diverge:\n1: %s\n2: %s\n4: %s", mk(results[0]), mk(results[1]), mk(results[2]))
	}
}

// TestSweepShardsValidation pins fail-fast on a bad shards axis.
func TestSweepShardsValidation(t *testing.T) {
	base := equivScenario(DumbbellSpec{Senders: 4, BottleneckBps: 1_000_000},
		[]Workload{LongTCP{Senders: Range(0, 4)}}, 0)
	if _, err := (Sweep{Base: base, Shards: []int{0}}).Run(); err == nil {
		t.Fatal("Shards axis entry 0 should fail")
	}
	if _, err := (Sweep{Base: base, Shards: []int{-3}}).Run(); err == nil {
		t.Fatal("negative Shards axis entry should fail")
	}
}
