package netfence_test

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"netfence"
)

// TestGraphGoldenEquivalence pins the scenario layer's measured results
// seed for seed: the quickstart scenario, the 4-defense × 2-seed sweep
// and a parking-lot cell must reproduce testdata/golden_results.json
// exactly, so any accidental behavior change in the topology builders,
// the defense deployments or the transports shows up as a diff. The
// fixture was first emitted by the pre-refactor builders (proving the
// Graph reimplementation byte-identical) and re-pinned after the §4.2
// request-priority escalation fix intentionally changed NetFence
// sender behavior (feedback-less packets now climb priority levels with
// waiting time instead of holding level 0), and again when Result grew
// the deterministic Counters plane — the counter snapshots are part of
// the pinned surface now. Run with NETFENCE_REGEN_GOLDEN=1 to rewrite
// the fixture after an intentional behavior change.
func TestGraphGoldenEquivalence(t *testing.T) {
	qres, err := quickstartScenario().Run()
	if err != nil {
		t.Fatal(err)
	}

	sweep, err := netfence.Sweep{
		Base:     sweepBase(),
		Defenses: []string{"netfence", "tva", "stopit", "fq"},
		Seeds:    []uint64{1, 2},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}

	plres, err := parkingLotGoldenScenario().Run()
	if err != nil {
		t.Fatal(err)
	}

	// The golden predates the Topology/Deployed result fields; blank
	// them on the fresh results so only the measured values compare.
	normalize := func(r *netfence.Result) *netfence.Result {
		c := *r
		c.Topology = ""
		c.Deployed = 0
		return &c
	}

	if os.Getenv("NETFENCE_REGEN_GOLDEN") != "" {
		fresh := struct {
			Quickstart *netfence.Result   `json:"quickstart"`
			Sweep      []*netfence.Result `json:"sweep"`
			ParkingLot *netfence.Result   `json:"parkinglot"`
		}{Quickstart: normalize(qres), ParkingLot: normalize(plres)}
		for _, r := range sweep {
			fresh.Sweep = append(fresh.Sweep, normalize(r))
		}
		buf, err := json.MarshalIndent(fresh, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("testdata/golden_results.json", append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("regenerated testdata/golden_results.json")
		return
	}

	raw, err := os.ReadFile("testdata/golden_results.json")
	if err != nil {
		t.Fatal(err)
	}
	var golden struct {
		Quickstart *netfence.Result   `json:"quickstart"`
		Sweep      []*netfence.Result `json:"sweep"`
		ParkingLot *netfence.Result   `json:"parkinglot"`
	}
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}

	check := func(name string, got, want *netfence.Result) {
		t.Helper()
		if got.Topology == "" {
			t.Fatalf("%s: fresh result has no topology name", name)
		}
		if got.Deployed != 1 {
			t.Fatalf("%s: full deployment recorded as %v", name, got.Deployed)
		}
		if !reflect.DeepEqual(normalize(got), want) {
			t.Fatalf("%s diverged from the pinned golden:\ngot:  %+v\nwant: %+v", name, got, want)
		}
	}
	check("quickstart", qres, golden.Quickstart)
	if len(sweep) != len(golden.Sweep) {
		t.Fatalf("sweep produced %d cells, golden has %d", len(sweep), len(golden.Sweep))
	}
	for i := range sweep {
		check(sweep[i].Scenario, sweep[i], golden.Sweep[i])
	}
	check("parkinglot", plres, golden.ParkingLot)
}

// parkingLotGoldenScenario is the parking-lot cell the golden fixture
// pins.
func parkingLotGoldenScenario() netfence.Scenario {
	return netfence.Scenario{
		Name:     "parkinglot",
		Seed:     3,
		Topology: netfence.ParkingLotSpec{SendersPerGroup: 4, L1Bps: 640_000, L2Bps: 960_000},
		Defense:  netfence.Defense("netfence"),
		Workloads: []netfence.Workload{
			netfence.LongTCP{Group: 0, Senders: netfence.Range(0, 2)},
			netfence.ColluderPairs{Group: 0, Senders: netfence.Range(2, 4)},
			netfence.LongTCP{Group: 1, Senders: netfence.Range(0, 2)},
			netfence.LongTCP{Group: 2, Senders: netfence.Range(0, 2)},
		},
		Duration: 60 * netfence.Second,
		Warmup:   30 * netfence.Second,
	}
}

// TestTopologyRegistry verifies registry resolution: every in-tree
// topology resolves by name and runs a scenario, unknown names error
// with the registered list, and duplicate registration panics.
func TestTopologyRegistry(t *testing.T) {
	names := netfence.Topologies()
	for _, want := range []string{"dumbbell", "parkinglot", "star", "random-as"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry missing %q (have %v)", want, names)
		}
	}

	for _, name := range []string{"dumbbell", "star", "random-as"} {
		res, err := netfence.Scenario{
			Name:     "reg-" + name,
			Seed:     1,
			Topology: netfence.RegisteredTopology{Name: name, Population: 4},
			Workloads: []netfence.Workload{
				netfence.LongTCP{Senders: netfence.Range(0, 2)},
				netfence.ColluderPairs{Senders: netfence.Range(2, 4)},
			},
			Duration: 30 * netfence.Second,
			Warmup:   15 * netfence.Second,
		}.Run()
		if err != nil {
			t.Fatalf("Topology(%q): %v", name, err)
		}
		if res.Topology != name {
			t.Fatalf("result topology = %q, want %q", res.Topology, name)
		}
		if res.Senders != 4 {
			t.Fatalf("Topology(%q) population = %d, want 4", name, res.Senders)
		}
		if res.UserBps <= 0 {
			t.Fatalf("Topology(%q): no user goodput", name)
		}
	}

	// The registered parking lot needs a population divisible by 3.
	if _, err := (netfence.Scenario{
		Topology:  netfence.RegisteredTopology{Name: "parkinglot", Population: 6},
		Workloads: []netfence.Workload{netfence.LongTCP{Group: 1, Senders: []int{0}}},
		Duration:  20 * netfence.Second,
		Warmup:    10 * netfence.Second,
	}).Run(); err != nil {
		t.Fatalf("registered parkinglot: %v", err)
	}
	if _, err := (netfence.Scenario{
		Topology:  netfence.RegisteredTopology{Name: "parkinglot", Population: 7},
		Workloads: []netfence.Workload{netfence.LongTCP{Group: 0, Senders: []int{0}}},
		Duration:  20 * netfence.Second,
	}).Run(); err == nil {
		t.Fatal("parkinglot population 7 (not divisible by 3) accepted")
	}

	// Unknown names error and list what is registered.
	_, err := (netfence.Scenario{
		Topology:  netfence.Topology("bogus"),
		Workloads: []netfence.Workload{netfence.LongTCP{Senders: []int{0}}},
		Duration:  20 * netfence.Second,
	}).Run()
	if err == nil {
		t.Fatal("bogus topology resolved")
	}
	if !strings.Contains(err.Error(), "dumbbell") {
		t.Fatalf("unknown-topology error does not list registrations: %v", err)
	}

	// Duplicate registration is a programmer error.
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate RegisterTopology did not panic")
		}
	}()
	netfence.RegisterTopology("dumbbell", func(eng *netfence.Engine, opts netfence.TopologyBuildOptions) (*netfence.Graph, error) {
		return netfence.NewGraph(eng), nil
	})
}

// tinyLineOnce guards the process-global registration so the test
// survives -count=N reruns.
var tinyLineOnce sync.Once

// TestCustomTopologyRegistration registers a third-party Graph builder
// and runs a scenario on it end to end.
func TestCustomTopologyRegistration(t *testing.T) {
	tinyLineOnce.Do(func() {
		registerTinyLine()
	})
	res, err := netfence.Scenario{
		Seed:      9,
		Topology:  netfence.Topology("tiny-line"),
		Workloads: []netfence.Workload{netfence.LongTCP{Senders: []int{0, 1}}},
		Duration:  30 * netfence.Second,
		Warmup:    10 * netfence.Second,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Topology != "tiny-line" || res.Senders != 2 {
		t.Fatalf("custom topology result: %+v", res)
	}
	if res.UserBps <= 0 {
		t.Fatal("no goodput across custom topology")
	}
}

func registerTinyLine() {
	netfence.RegisterTopology("tiny-line", func(eng *netfence.Engine, opts netfence.TopologyBuildOptions) (*netfence.Graph, error) {
		g := netfence.NewGraph(eng)
		ra := g.AccessRouter(0, "Ra", 1)
		rv := g.AccessRouter(0, "Rv", 2)
		g.BottleneckLink(ra, rv, 400_000, 10*netfence.Millisecond)
		pop := opts.Population
		if pop <= 0 {
			pop = 2
		}
		for i := 0; i < pop; i++ {
			h := g.Sender(0, "s", 1)
			g.Link(h, ra, 1_000_000_000, netfence.Millisecond)
		}
		v := g.Victim(0, "v", 2)
		g.Link(rv, v, 1_000_000_000, netfence.Millisecond)
		return g, nil
	})
}

// TestPartialDeployment pins the incremental-deployment semantics: at
// fraction 1 the colluding flood is policed to fair share; with the
// attacker ASes legacy, NetFence demotes their traffic to best-effort
// (it cannot present feedback), so the policed user still gets through;
// the recorded Deployed fraction matches the plan.
func TestPartialDeployment(t *testing.T) {
	base := netfence.Scenario{
		Name: "partial",
		Seed: 5,
		// 4 source ASes, one sender each: AS0-1 users, AS2-3 attackers.
		Topology: netfence.DumbbellSpec{Senders: 4, SrcASes: 4, BottleneckBps: 800_000, ColluderASes: 2},
		Workloads: []netfence.Workload{
			netfence.LongTCP{Senders: netfence.Range(0, 2)},
			netfence.ColluderPairs{Senders: netfence.Range(2, 4), RateBps: 1_000_000},
		},
		Duration: 60 * netfence.Second,
		Warmup:   30 * netfence.Second,
	}

	full := base
	full.Deployment = netfence.DeployFraction(1)
	fres, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fres.Deployed != 1 {
		t.Fatalf("full deployment recorded as %v", fres.Deployed)
	}

	half := base
	half.Deployment = netfence.DeployMap(map[int]bool{0: true, 1: true})
	hres, err := half.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hres.Deployed != 0.5 {
		t.Fatalf("half deployment recorded as %v", hres.Deployed)
	}
	if hres.UserBps <= 0 {
		t.Fatal("users starved under partial deployment")
	}
	// The legacy attackers' packets ride the best-effort channel; the
	// deployed users' regular-channel traffic must keep a working share.
	if hres.Ratio <= 0 {
		t.Fatalf("ratio = %v", hres.Ratio)
	}

	none := base
	none.Deployment = netfence.DeployFraction(0)
	nres, err := none.Run()
	if err != nil {
		t.Fatal(err)
	}
	if nres.Deployed != 0 {
		t.Fatalf("zero deployment recorded as %v", nres.Deployed)
	}

	// Validation: fractions outside [0,1] and out-of-range map indices
	// are build errors.
	bad := base
	bad.Deployment = netfence.DeployFraction(1.5)
	if _, err := bad.Run(); err == nil {
		t.Fatal("fraction 1.5 accepted")
	}
	bad = base
	bad.Deployment = netfence.DeployMap(map[int]bool{9: true})
	if _, err := bad.Run(); err == nil {
		t.Fatal("out-of-range source-AS index accepted")
	}
}

// TestStarAndRandomASSpecs smoke-tests the two new topology specs under
// NetFence with a colluding flood.
func TestStarAndRandomASSpecs(t *testing.T) {
	for _, sc := range []netfence.Scenario{
		{
			Name:     "star",
			Seed:     2,
			Topology: netfence.StarSpec{Senders: 4, BottleneckBps: 800_000, ColluderASes: 2},
			Workloads: []netfence.Workload{
				netfence.LongTCP{Senders: netfence.Range(0, 2)},
				netfence.ColluderPairs{Senders: netfence.Range(2, 4)},
			},
			Duration: 40 * netfence.Second,
			Warmup:   20 * netfence.Second,
		},
		{
			Name:     "random-as",
			Seed:     2,
			Topology: netfence.RandomASSpec{Senders: 6, BottleneckBps: 1_200_000, TransitASes: 5, ExtraLinks: 2, ColluderASes: 2, GraphSeed: 7},
			Workloads: []netfence.Workload{
				netfence.LongTCP{Senders: netfence.Range(0, 3)},
				netfence.ColluderPairs{Senders: netfence.Range(3, 6)},
			},
			Duration: 40 * netfence.Second,
			Warmup:   20 * netfence.Second,
		},
	} {
		res, err := sc.Run()
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if res.UserBps <= 0 {
			t.Fatalf("%s: no user goodput", sc.Name)
		}
		if res.Topology != sc.Name {
			t.Fatalf("%s: result topology %q", sc.Name, res.Topology)
		}
	}

	// The random graph is a GraphSeed function: same seed same results,
	// different seed (usually) different wiring.
	mk := func(graphSeed uint64) *netfence.Result {
		res, err := netfence.Scenario{
			Seed:     3,
			Topology: netfence.RandomASSpec{Senders: 4, BottleneckBps: 800_000, TransitASes: 6, GraphSeed: graphSeed},
			Workloads: []netfence.Workload{
				netfence.LongTCP{Senders: netfence.Range(0, 4)},
			},
			Duration: 30 * netfence.Second,
			Warmup:   15 * netfence.Second,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(11), mk(11)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("random-as not deterministic for a fixed GraphSeed")
	}
}

// TestSweepDeployFractions pins the deployment axis: expansion order,
// cell naming, per-cell Deployed fractions, and name stability when the
// axis is unused.
func TestSweepDeployFractions(t *testing.T) {
	sw := netfence.Sweep{
		Base:            sweepBase(),
		Defenses:        []string{"netfence"},
		DeployFractions: []float64{0, 0.5, 1},
	}
	scs := sw.Scenarios()
	if len(scs) != 3 {
		t.Fatalf("matrix size %d, want 3", len(scs))
	}
	if scs[1].Name != "collusion/netfence/n=4/deploy=0.50/seed=1" {
		t.Fatalf("deploy cell name %q", scs[1].Name)
	}
	results, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{0, 0.5, 1} {
		if results[i].Deployed != want {
			t.Fatalf("cell %d deployed = %v, want %v", i, results[i].Deployed, want)
		}
	}
	// Without the axis, names keep the pre-axis shape.
	plain := netfence.Sweep{Base: sweepBase(), Defenses: []string{"netfence"}}
	if name := plain.Scenarios()[0].Name; name != "collusion/netfence/n=4/seed=1" {
		t.Fatalf("axis-free cell name %q gained a deploy segment", name)
	}
	// Out-of-range fractions fail fast.
	bad := netfence.Sweep{Base: sweepBase(), DeployFractions: []float64{2}}
	if _, err := bad.Run(); err == nil {
		t.Fatal("deployment fraction 2 accepted")
	}
}

// TestSweepPopulationFailFast pins the fail-fast error for populations
// below a workload's highest sender index: it must name the workload
// and the offending index, before any cell runs.
func TestSweepPopulationFailFast(t *testing.T) {
	base := sweepBase() // workloads use sender indices 0..3
	sw := netfence.Sweep{Base: base, Populations: []int{2, 8}}
	_, err := sw.Run()
	if err == nil {
		t.Fatal("population 2 with sender index 3 accepted")
	}
	for _, want := range []string{"ColluderPairs", "index 3", "population 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("fail-fast error missing %q: %v", want, err)
		}
	}
	// Parking-lot group capacity is per group.
	plBase := sweepBase()
	plBase.Topology = netfence.ParkingLotSpec{SendersPerGroup: 4, L1Bps: 640_000, L2Bps: 960_000}
	plBase.Workloads = []netfence.Workload{netfence.LongTCP{Group: 2, Senders: []int{5}}}
	if _, err := (netfence.Sweep{Base: plBase, Populations: []int{12}}).Run(); err == nil {
		t.Fatal("group-capacity overflow accepted")
	} else if !strings.Contains(err.Error(), "group 2") {
		t.Fatalf("fail-fast error missing group: %v", err)
	}
	// A sufficient population still runs.
	sw = netfence.Sweep{Base: base, Populations: []int{8}}
	if _, err := sw.Run(); err != nil {
		t.Fatal(err)
	}
}
