package netfence_test

import (
	"strings"
	"testing"

	"netfence"
)

func searchBase(shards int) netfence.Scenario {
	return netfence.Scenario{
		Name:     "searchtest",
		Seed:     1,
		Topology: netfence.DumbbellSpec{Senders: 8, BottleneckBps: 800_000, ColluderASes: 2},
		Defense:  netfence.Defense("netfence"),
		Workloads: []netfence.Workload{
			netfence.LongTCP{Senders: []int{0, 1}},
			netfence.AttackSpec{Strategy: "flood", Senders: netfence.Range(2, 8), ToColluders: true},
		},
		Duration: 40 * netfence.Second,
		Warmup:   20 * netfence.Second,
		Shards:   shards,
	}
}

// TestSearchDeterminism pins the report contract: identical
// seed/budget/optimizer produce a byte-identical worst-found table
// regardless of shard count and worker count, and the netfence rows
// clear the Theorem-1 floor at the searched optimum.
func TestSearchDeterminism(t *testing.T) {
	run := func(shards, parallelism int) (*netfence.SearchReport, string, string) {
		rep, err := netfence.SearchSpec{
			Base:        searchBase(shards),
			Defenses:    []string{"netfence", "none"},
			Strategies:  []string{"flood"},
			Optimizer:   "anneal",
			Budget:      4,
			Seed:        7,
			Parallelism: parallelism,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return rep, rep.Table(), string(js)
	}
	rep, table1, js1 := run(1, 1)
	_, table4, js4 := run(4, 3)
	if table1 != table4 {
		t.Fatalf("worst-found table differs across shard/worker counts:\n--- shards=1 workers=1\n%s\n--- shards=4 workers=3\n%s", table1, table4)
	}
	if js1 != js4 {
		t.Fatalf("JSON report differs across shard/worker counts:\n%s\n%s", js1, js4)
	}

	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	worst := 0
	for _, row := range rep.Rows {
		if row.Evals == 0 || row.Evals > 4 {
			t.Fatalf("row %s/%s evaluated %d candidates, budget 4", row.Defense, row.Strategy, row.Evals)
		}
		if row.Worst {
			worst++
		}
		if row.Result == nil || len(row.Result.SearchTrace) != row.Evals {
			t.Fatalf("row %s/%s: missing result or trace (%+v)", row.Defense, row.Strategy, row.Result)
		}
		if row.Result.SearchTrace[0].Eval != 0 || row.DefaultUserBps != row.Result.SearchTrace[0].UserBps {
			t.Fatalf("trace must start at the defaults: %+v", row.Result.SearchTrace[0])
		}
		if row.Defense == "netfence" && !row.BoundHolds {
			t.Fatalf("netfence fell below the Theorem-1 floor at the searched optimum: user %.0f < floor %.0f (attack %s)",
				row.UserBps, row.BoundBps, row.Attack)
		}
	}
	if worst != 2 {
		t.Fatalf("want exactly one worst row per defense, got %d marks", worst)
	}
	if err := rep.Gate(); err != nil {
		t.Fatalf("Gate: %v", err)
	}
}

// TestSearchBeatsDefault pins that annealing finds a configuration at
// least as damaging as the hand-written defaults — and, on an
// undefended bottleneck where raw rate scales damage monotonically,
// strictly more damaging.
func TestSearchBeatsDefault(t *testing.T) {
	base := searchBase(0)
	// A low base rate leaves the defaults short of saturating the
	// undefended bottleneck, so rate_mult has damage headroom.
	as := base.Workloads[1].(netfence.AttackSpec)
	as.RateBps = 60_000
	base.Workloads[1] = as
	rep, err := netfence.SearchSpec{
		Base:       base,
		Defenses:   []string{"none"},
		Strategies: []string{"flood"},
		Optimizer:  "anneal",
		Budget:     6,
		Seed:       3,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	row := rep.Rows[0]
	if row.UserBps >= row.DefaultUserBps {
		t.Fatalf("search did not beat the default: worst %.0f bps >= default %.0f bps (attack %s)",
			row.UserBps, row.DefaultUserBps, row.Attack)
	}
	if row.SuppressionBps <= 0 {
		t.Fatalf("suppression %.0f, want > 0", row.SuppressionBps)
	}
}

// TestSearchProgressAndCandidates checks the streaming hooks fire once
// per evaluated candidate with best-so-far marks.
func TestSearchProgressAndCandidates(t *testing.T) {
	var cells []string
	var steps []netfence.SearchStep
	progress := 0
	rep, err := netfence.SearchSpec{
		Base:       searchBase(0),
		Strategies: []string{"flood"},
		Optimizer:  "grid",
		Budget:     3,
		Seed:       1,
		Progress:   func(done, total int, cell string) { progress = done },
		OnCandidate: func(cell string, step netfence.SearchStep) {
			cells = append(cells, cell)
			steps = append(steps, step)
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	evals := rep.Rows[0].Evals
	if len(steps) != evals || progress != evals {
		t.Fatalf("hooks fired %d/%d times for %d evals", len(steps), progress, evals)
	}
	if !steps[0].Best || steps[0].Eval != 0 {
		t.Fatalf("first candidate must be the best-so-far defaults: %+v", steps[0])
	}
	for _, c := range cells {
		if c != "netfence/flood" {
			t.Fatalf("cell = %q", c)
		}
	}
}

// TestSearchValidation pins the fail-fast errors.
func TestSearchValidation(t *testing.T) {
	base := searchBase(0)
	cases := []struct {
		spec netfence.SearchSpec
		want string
	}{
		{netfence.SearchSpec{}, "needs a topology"},
		{netfence.SearchSpec{Base: netfence.Scenario{Topology: base.Topology, Workloads: []netfence.Workload{netfence.LongTCP{Senders: []int{0}}}}}, "no AttackSpec"},
		{netfence.SearchSpec{Base: base, Optimizer: "gradient"}, "unknown optimizer"},
		{netfence.SearchSpec{Base: base, Defenses: []string{"firewall"}}, `defense "firewall"`},
		{netfence.SearchSpec{Base: base, Strategies: []string{"slowloris"}}, `strategy "slowloris"`},
		{netfence.SearchSpec{Base: base, Budget: -1}, "must be positive"},
	}
	for _, c := range cases {
		if _, err := c.spec.Run(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("want error containing %q, got %v", c.want, err)
		}
	}
}

// TestSweepParameterizedAttackAxis pins the Sweep.Attacks spec-string
// surface: parameterized entries re-target workloads with overrides
// and name their cells canonically.
func TestSweepParameterizedAttackAxis(t *testing.T) {
	sw := netfence.Sweep{
		Base:    searchBase(0),
		Attacks: []string{"flood", "flood:rate_mult=2", "onoff-sync:on=1,off=4"},
	}
	scs := sw.Scenarios()
	if len(scs) != 3 {
		t.Fatalf("matrix size %d, want 3", len(scs))
	}
	wantSegs := []string{"attack=flood/", "attack=flood:rate_mult=2/", "attack=onoff-sync:on=1,off=4/"}
	for i, sc := range scs {
		if !strings.Contains(sc.Name, wantSegs[i]) {
			t.Fatalf("cell %d name %q missing %q", i, sc.Name, wantSegs[i])
		}
	}
	as := scs[1].Workloads[1].(netfence.AttackSpec)
	if as.Params["rate_mult"] != 2 {
		t.Fatalf("cell 1 params = %v", as.Params)
	}
	as = scs[2].Workloads[1].(netfence.AttackSpec)
	if as.Strategy != "onoff-sync" || as.Params["on"] != 1 || as.Params["off"] != 4 {
		t.Fatalf("cell 2 = %+v", as)
	}
	// Malformed specs fail fast with the strategy and key named.
	sw.Attacks = []string{"onoff-sync:dty=2"}
	if _, err := sw.Run(); err == nil || !strings.Contains(err.Error(), `attack "onoff-sync": unknown param "dty"`) {
		t.Fatalf("malformed spec error = %v", err)
	}
	// A parameterized cell runs end to end.
	sw.Attacks = []string{"flood:rate_mult=2"}
	results, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if results[0] == nil || results[0].Attack == "" {
		t.Fatalf("parameterized cell result = %+v", results[0])
	}
}
