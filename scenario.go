package netfence

import (
	"fmt"
	"math/rand/v2"
	"strings"

	// The baselines self-register in the defense registry; scenarios
	// resolve them by name, so link them in explicitly.
	"netfence/internal/attack"
	_ "netfence/internal/baseline"
	"netfence/internal/core"
	"netfence/internal/defense"
	"netfence/internal/metrics"
	"netfence/internal/netsim"
	"netfence/internal/obs"
	"netfence/internal/packet"
	"netfence/internal/sim"
	"netfence/internal/topo"
	"netfence/internal/transport"
)

// Scenario is the declarative description of one simulation: a topology
// resolved from the topology registry (or declared inline), a defense
// system resolved by name from the pluggable defense registry, a
// deployment plan saying which ASes actually run it, a set of workloads
// and attacks, and the probes that measure the outcome. Zero manual
// wiring — Run builds the engine and network, deploys the defense,
// attaches every transport, drives the simulation and samples the
// probes:
//
//	sc := netfence.Scenario{
//		Seed:     42,
//		Topology: netfence.DumbbellSpec{Senders: 2, BottleneckBps: 400_000, ColluderASes: 1},
//		Defense:  netfence.Defense("netfence"),
//		Workloads: []netfence.Workload{
//			netfence.LongTCP{Senders: []int{0}},
//			netfence.ColluderPairs{Senders: []int{1}},
//		},
//		Duration: 180 * netfence.Second,
//	}
//	res, err := sc.Run()
type Scenario struct {
	// Name labels the scenario in results (optional).
	Name string
	// Seed feeds the deterministic simulation RNG.
	Seed uint64
	// Topology declares the network: DumbbellSpec, ParkingLotSpec,
	// StarSpec, RandomASSpec, or Topology("name") for any registered
	// topology.
	Topology TopologySpec
	// Defense names the deployed system; the zero value means "netfence".
	Defense DefenseSpec
	// Deployment selects which source ASes run the defense; the zero
	// value deploys everywhere. See DeployFraction and DeployMap.
	Deployment Deployment
	// Workloads attach traffic; see Workload.
	Workloads []Workload
	// Probes measure the run; nil selects GoodputProbe, FairnessProbe
	// and FCTProbe.
	Probes []Probe
	// Duration is the simulated run length (0 = 240 s); measurements
	// start at Warmup (0 = Duration/2), leaving AIMD time to converge.
	Duration, Warmup Time
	// DenyAttackers gives every victim the paper's receiver policy: deny
	// traffic from senders carrying attack workloads aimed at it
	// (UDPFlood to the victim, RequestFlood). Colluder-bound floods are
	// never denied — their receivers cooperate with the attacker.
	DenyAttackers bool
	// Shards partitions the topology into per-AS shards, each simulated
	// by its own engine on its own goroutine with deterministic
	// lookahead synchronization — results are byte-identical to the
	// single-engine run for the deterministic workload set (see the
	// README's parallel-execution contract). 0 and 1 run the classic
	// single engine; AutoShards picks one shard per CPU, clamped to the
	// topology's AS count; an explicit count exceeding the AS count
	// fails fast instead of clamping.
	Shards int
	// Pipeline controls the sharded validation pipeline, which overlaps
	// batched MAC validation of cut-link handoffs with the drain phase so
	// the serialized execute phase consumes precomputed verdicts. The
	// zero value (PipelineAuto) turns it on exactly when it pays —
	// sharded NetFence runs with Passport verification active; PipelineOn
	// forces it, PipelineOff disables it. Single-engine runs ignore the
	// setting, and results are byte-identical in every mode.
	Pipeline PipelineMode
	// Timeline declares scheduled mid-run control-plane changes — link
	// degradations and restorations, attack toggles and
	// re-parameterizations, deployment-plan changes — applied at their
	// instants between event batches, deterministically on every shard
	// count. See Mutation. An empty Timeline is the classic static run.
	Timeline []Mutation
	// TraceFlows enables the packet flight recorder: a deterministic
	// sample of up to TraceFlows attachment-time flows (selected by
	// seeded hash, identically on every shard count) is traced hop by
	// hop — shim stamp, access-router policing verdict, monitor
	// feedback, queue admit/drop with reason, demotion, delivery. Read
	// the merged trace with Instance.Trace. 0 disables tracing; untraced
	// runs pay only a nil check per hop.
	TraceFlows int
	// Meter, when set, accumulates executed-event counts from every
	// shard engine of this run. Each run gets its own meter, so
	// concurrent runs in one process never cross-contaminate.
	Meter *Meter
}

// DefenseSpec selects a defense system from the registry.
type DefenseSpec struct {
	// Name is the registry name: "netfence", "tva", "stopit", "fq",
	// "none", or any third-party registration. Empty means "netfence".
	Name string
	// Config optionally configures the system (core.Config for
	// "netfence"); nil selects the system's defaults.
	Config any
}

// Defense names a registered defense system with default configuration.
func Defense(name string) DefenseSpec { return DefenseSpec{Name: name} }

// RegisterDefense makes a third-party defense system resolvable by name
// in scenarios and sweeps. In-tree systems are pre-registered.
func RegisterDefense(name string, b DefenseBuilder) { defense.Register(name, b) }

// Defenses returns the sorted names of every registered defense system.
func Defenses() []string { return defense.Names() }

// DefenseBuilder constructs a defense system over a network.
type DefenseBuilder = defense.Builder

// DefenseBuildOptions carries optional construction parameters.
type DefenseBuildOptions = defense.BuildOptions

// NewDefense resolves a registered defense by name and constructs it
// over net; cfg optionally configures it (nil = defaults).
func NewDefense(name string, net *Network, cfg any) (DefenseSystem, error) {
	return defense.Build(name, net, defense.BuildOptions{Config: cfg})
}

// goodputMeter tracks one sender's delivered bytes for the probes. In a
// sharded run the meter belongs to the shard owning the state its bytes
// closure reads (the receiver side), which alone snapshots and ticks it.
type goodputMeter struct {
	group, sender int
	attacker      bool
	shard         int
	// weight is how many modeled senders the meter aggregates: 1 for an
	// ordinary sender, N for a fleet meter reading the combined sink of
	// N homogeneous senders. Probes divide by weight for per-sender
	// rates and weight the fairness statistics accordingly.
	weight int
	bytes  func() int64

	warmMark int64
	tickMark int64
	// rates accumulates per-interval goodput when a TimeseriesProbe runs
	// sharded: each owner shard appends locally, and the probe merges in
	// global meter order at finish so the sums are bit-identical to the
	// single-engine tick.
	rates []float64
}

// scenarioEnv is the mutable state shared by workload attachment, the
// probes and the executor for one scenario run.
type scenarioEnv struct {
	sc     *Scenario
	eng    *sim.Engine
	net    *netsim.Network
	system defense.System
	*builtTopo

	// sh is the sharded-run state; nil on the classic single engine.
	sh *shardState

	meters []*goodputMeter
	// fcts holds one FCT aggregate per shard (a single slot on the
	// single engine): transfer results are recorded by the sender's
	// shard and merged at finish.
	fcts     []*metrics.FCT
	denySet  map[packet.NodeID]bool
	stoppers []interface{ Stop() }

	// attacks lists the canonical strategy names of the scenario's
	// AttackSpec workloads, in attachment order, for Result.Attack.
	attacks []string

	// attackCtrls holds each AttackSpec workload's controllers in
	// workload declaration order — one controller per shard owning attack
	// senders (a single entry on the single engine). The control plane's
	// attack mutations drive them.
	attackCtrls [][]*attack.Controller

	// Control-plane state for timeline and live mutations (primeControl):
	// the bottlenecks' build-time parameters (the Restore target), the
	// active deployment plan, per-replica deployment arm/disarm state, and
	// the victim deny policy (re-used when a deploy mutation arms a victim
	// host for the first time).
	linkOrig  []linkParams
	plan      topo.Plan
	deployCtl []*replicaDeploy
	deny      defense.Policy

	// deployed is the effective deployed fraction of source ASes.
	deployed float64

	// listeners and srcCounters implement the per-group victim TCP
	// listener with per-source goodput attribution (web and file
	// workloads open fresh flows per transfer).
	listeners   map[int]bool
	srcCounters map[int]map[packet.NodeID]*int64

	// nfBottleneck is the NetFence state of the first protected
	// bottleneck, for monitoring-cycle samples; nil otherwise.
	nfBottleneck *core.Bottleneck

	duration, warmup Time
	txWarmMarks      []uint64
	series           []Sample

	// Sharded TimeseriesProbe state: shard 0 records the tick instants,
	// the NetFence bottleneck's shard records the monitoring flags, and
	// every shard appends its own meters' rates (see goodputMeter.rates).
	tickTimes []float64
	monFlags  []bool
}

func (env *scenarioEnv) group(g int, kind string) (*roleGroup, error) {
	if g < 0 || g >= len(env.groups) {
		return nil, fmt.Errorf("%s: group %d out of range (topology has %d)", kind, g, len(env.groups))
	}
	return &env.groups[g], nil
}

// addMeter registers a goodput meter whose bytes closure reads state
// owned by owner's shard (the receiver of the measured traffic).
func (env *scenarioEnv) addMeter(owner *netsim.Node, group, sender int, attacker bool, bytes func() int64) {
	env.addWeightedMeter(owner, group, sender, attacker, 1, bytes)
}

// hasFleetMeters reports whether any meter aggregates more than one
// modeled sender. Probes take the weight-aware arithmetic only then, so
// fleet-free runs keep their historical floating-point results bit for
// bit.
func (env *scenarioEnv) hasFleetMeters() bool {
	for _, m := range env.meters {
		if m.weight > 1 {
			return true
		}
	}
	return false
}

// addWeightedMeter registers a meter standing for weight modeled
// senders (a fleet's combined sink).
func (env *scenarioEnv) addWeightedMeter(owner *netsim.Node, group, sender int, attacker bool, weight int, bytes func() int64) {
	env.meters = append(env.meters, &goodputMeter{
		group: group, sender: sender, attacker: attacker,
		shard: env.shardOf(owner), weight: weight, bytes: bytes,
	})
}

// shardOf returns the shard owning a node (0 on the single engine).
func (env *scenarioEnv) shardOf(n *netsim.Node) int {
	if env.sh == nil {
		return 0
	}
	return env.sh.shardOf(n.ID)
}

// shardCount returns the run's shard count (1 on the single engine).
func (env *scenarioEnv) shardCount() int {
	if env.sh == nil {
		return 1
	}
	return env.sh.part.Shards
}

// fctFor returns the FCT aggregate results from node n's shard feed.
func (env *scenarioEnv) fctFor(n *netsim.Node) *metrics.FCT {
	return env.fcts[env.shardOf(n)]
}

// mergedFCT returns the run's combined FCT aggregate, merging shard
// aggregates in shard order (deterministic for a fixed shard count).
func (env *scenarioEnv) mergedFCT() *metrics.FCT {
	if len(env.fcts) == 1 {
		return env.fcts[0]
	}
	m := &metrics.FCT{}
	for _, f := range env.fcts {
		m.Merge(f)
	}
	return m
}

// fleetRand returns a fleet's private deterministic RNG stream, keyed
// by the attachment node's ID. Sharded engines serve it from
// sim.KeyStream; the single engine constructs the identical PCG
// directly (KeyStream's sharded derivation with base = Scenario.Seed),
// so one fleet draws the same jitter sequence on every shard layout —
// shards=1 included. This is what makes aggregate-fleet results
// byte-identical across shard counts.
func (env *scenarioEnv) fleetRand(n *netsim.Node) *rand.Rand {
	if r := n.Network().Eng.KeyStream(uint64(n.ID)); r != nil {
		return r
	}
	return rand.New(rand.NewPCG(env.sc.Seed^0x9e3779b97f4a7c15, uint64(n.ID)))
}

// needsFanout reports whether the scenario's timeline forces fleet
// workloads to materialize exact per-sender hosts: deployment mutations
// re-partition which senders sit behind a deployed access router, which
// invalidates the closed-form aggregation of per-sender limiter state.
// Link and attack mutations are aggregation-safe — they change what the
// fleet experiences, not who polices it.
func (env *scenarioEnv) needsFanout() bool {
	for i := range env.sc.Timeline {
		if env.sc.Timeline[i].Deploy != nil {
			return true
		}
	}
	return false
}

// newFlow allocates an attachment-time flow ID from the run-global
// counter, mirroring the single-engine allocation order exactly.
func (env *scenarioEnv) newFlow() packet.FlowID {
	if env.sh == nil {
		return env.net.NextFlow()
	}
	env.sh.flowSeq++
	return packet.FlowID(env.sh.flowSeq)
}

// srcCounter returns the delivered-bytes counter for a source host at a
// group's victim, creating it on first use.
func (env *scenarioEnv) srcCounter(group int, src NodeID) *int64 {
	m := env.srcCounters[group]
	if m == nil {
		m = map[packet.NodeID]*int64{}
		env.srcCounters[group] = m
	}
	ctr := m[src]
	if ctr == nil {
		ctr = new(int64)
		m[src] = ctr
	}
	return ctr
}

// ensureListener installs a TCP listener on a group's victim that
// accepts fresh flows and attributes delivered bytes to their source.
func (env *scenarioEnv) ensureListener(group int) {
	if env.listeners[group] {
		return
	}
	env.listeners[group] = true
	v := env.groups[group].victim
	v.Host.OnUnknownFlow = func(p *Packet) Agent {
		if p.Proto != packet.ProtoTCP {
			return nil
		}
		r := transport.NewTCPReceiver(v.Host, p.Flow)
		if ctr := env.srcCounters[group][p.Src]; ctr != nil {
			r.OnDeliver = func(b int) { *ctr += int64(b) }
		}
		return r
	}
}

// bottleneckBps is the (first) bottleneck capacity, for strategic attack
// computations.
func (env *scenarioEnv) bottleneckBps() int64 { return env.bottlenecks[0].Rate }

// nfConfig is the scenario's NetFence configuration — the deployed one
// when the defense is NetFence with an explicit config, the Figure 3
// defaults otherwise (attackers key off the public protocol parameters
// either way).
func (env *scenarioEnv) nfConfig() Config {
	if c, ok := env.sc.Defense.Config.(Config); ok {
		return c
	}
	return core.DefaultConfig()
}

// recordAttack notes an attached attack strategy once for Result.Attack.
func (env *scenarioEnv) recordAttack(name string) {
	for _, a := range env.attacks {
		if a == name {
			return
		}
	}
	env.attacks = append(env.attacks, name)
}

// snapshotWarm marks every meter and bottleneck at the warmup boundary.
func (env *scenarioEnv) snapshotWarm() {
	for _, m := range env.meters {
		m.warmMark = m.bytes()
	}
	env.txWarmMarks = make([]uint64, len(env.bottlenecks))
	for i, l := range env.bottlenecks {
		env.txWarmMarks[i] = l.TxBytes
	}
}

// snapshotWarmShard is the sharded warmup snapshot: shard sh marks the
// meters and bottleneck counters it owns, on its own engine, at the
// same simulated instant as every other shard. txWarmMarks is
// preallocated at build, so concurrent shards write disjoint slots.
func (env *scenarioEnv) snapshotWarmShard(sh int) {
	for _, m := range env.meters {
		if m.shard == sh {
			m.warmMark = m.bytes()
		}
	}
	for i, l := range env.bottlenecks {
		if env.sh.shardOf(l.From.ID) == sh {
			env.txWarmMarks[i] = l.TxBytes
		}
	}
}

// Instance is a built, not-yet-run scenario: the escape hatch for code
// that needs the underlying engine, topology or defense system alongside
// the declarative layer.
type Instance struct {
	Scenario Scenario
	// Eng is the engine (shard 0's engine on a sharded run).
	Eng *Engine
	// Engines lists every shard engine of a sharded run (one entry on
	// the single engine path).
	Engines []*Engine
	Net     *Network
	System  DefenseSystem
	// Graph is the constructed role-tagged topology (replica 0's on a
	// sharded run).
	Graph *Graph
	// Dumbbell is the constructed topology for DumbbellSpec scenarios;
	// ParkingLot for ParkingLotSpec scenarios. The other is nil.
	Dumbbell   *Dumbbell
	ParkingLot *ParkingLot
	// Sharding describes the partition of a sharded run; nil otherwise.
	Sharding *Sharding

	env    *scenarioEnv
	probes []Probe
	// timeline is the scenario Timeline, validated and sorted by instant.
	timeline []Mutation
	// finished flags a completed (or stopped) run: the coordinator's
	// workers are torn down and the instance can only be collected.
	finished bool
}

// Build validates the scenario and constructs everything — engine,
// topology, defense deployment, workloads, probes — without running it.
// Most callers want Run; Build is for introspection mid-run.
func (s Scenario) Build() (*Instance, error) {
	if s.Topology == nil {
		return nil, fmt.Errorf("scenario %q: Topology is required", s.Name)
	}
	if s.Duration == 0 {
		s.Duration = 240 * Second
	}
	if s.Warmup == 0 {
		s.Warmup = s.Duration / 2
	}
	if s.Warmup >= s.Duration {
		return nil, fmt.Errorf("scenario %q: Warmup (%v) must precede Duration (%v)", s.Name, s.Warmup, s.Duration)
	}
	if s.Defense.Name == "" {
		s.Defense.Name = "netfence"
	}
	var (
		in  *Instance
		err error
	)
	switch {
	case s.Shards == AutoShards:
		in, err = s.buildSharded(AutoShards)
	case s.Shards < 0 || s.Shards == 0 || s.Shards == 1:
		if s.Shards < 0 {
			return nil, fmt.Errorf("scenario %q: Shards must be positive or AutoShards, got %d", s.Name, s.Shards)
		}
		in, err = s.buildSingle()
	default:
		in, err = s.buildSharded(s.Shards)
	}
	if err != nil {
		return nil, err
	}
	if err := in.primeControl(); err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return in, nil
}

// buildSingle is the classic single-engine construction — the exact
// pre-sharding code path, which Shards <= 1 scenarios always take.
func (s Scenario) buildSingle() (*Instance, error) {
	eng := sim.New(s.Seed)
	bt, err := s.Topology.buildTopo(eng)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	system, err := defense.Build(s.Defense.Name, bt.net, defense.BuildOptions{Config: s.Defense.Config})
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	plan, deployed, err := s.Deployment.plan(bt.graph.SourceASes())
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}

	env := &scenarioEnv{
		sc:          &s,
		eng:         eng,
		net:         bt.net,
		system:      system,
		builtTopo:   bt,
		fcts:        []*metrics.FCT{{}},
		denySet:     map[packet.NodeID]bool{},
		deployed:    deployed,
		listeners:   map[int]bool{},
		srcCounters: map[int]map[packet.NodeID]*int64{},
		duration:    s.Duration,
		warmup:      s.Warmup,
	}

	// The deny policy closes over the deny set, which the attack
	// workloads populate during attachment below.
	var deny defense.Policy
	if s.DenyAttackers {
		deny.Deny = func(src packet.NodeID) bool { return env.denySet[src] }
	}
	env.deny = deny
	bt.graph.Deploy(system, deny, plan)

	if cs, ok := system.(*core.System); ok && len(bt.bottlenecks) > 0 {
		env.nfBottleneck = cs.Bottleneck(bt.bottlenecks[0])
	}

	for _, w := range s.Workloads {
		if err := w.attach(env); err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	if s.TraceFlows > 0 {
		bt.net.Rec = obs.NewRecorder(obs.SampleFlows(s.Seed, int(bt.net.FlowSeq()), s.TraceFlows))
	}
	if s.Meter != nil {
		eng.AttachMeter(s.Meter)
	}

	probes := s.Probes
	if probes == nil {
		probes = []Probe{GoodputProbe{}, FairnessProbe{}, FCTProbe{}}
	}
	for _, p := range probes {
		if err := p.install(env); err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	eng.At(s.Warmup, env.snapshotWarm)

	return &Instance{
		Scenario:   s,
		Eng:        eng,
		Engines:    []*Engine{eng},
		Net:        bt.net,
		System:     system,
		Graph:      bt.graph,
		Dumbbell:   bt.dumbbell,
		ParkingLot: bt.parkingLot,
		env:        env,
		probes:     probes,
	}, nil
}

// Run drives the built scenario to its Duration — applying the
// scenario Timeline's mutations at their instants, between event
// batches — stops the workloads, and collects every probe into the
// Result. Calling Run again returns a freshly collected Result without
// re-driving the simulation, on the sharded path as on the single
// engine.
func (in *Instance) Run() *Result {
	if !in.finished {
		// Apply the validated timeline in instant groups: advance to
		// each instant's control point, apply that instant's mutations
		// in declaration order, continue. Serve-mode jobs interleave the
		// same Advance/Apply calls with live mutations instead.
		for i := 0; i < len(in.timeline); {
			j := i + 1
			for j < len(in.timeline) && in.timeline[j].At == in.timeline[i].At {
				j++
			}
			in.Advance(in.timeline[i].At)
			in.applyNow(in.timeline[i:j])
			i = j
		}
	}
	return in.Finish()
}

// collect assembles the Result from the probes' current state.
func (in *Instance) collect() *Result {
	res := &Result{
		Scenario:    in.Scenario.Name,
		Defense:     in.System.Name(),
		Topology:    in.env.builtTopo.name,
		Attack:      strings.Join(in.env.attacks, "+"),
		Seed:        in.Scenario.Seed,
		Senders:     in.env.builtTopo.senderCount(),
		Deployed:    in.env.deployed,
		DurationSec: in.Scenario.Duration.Seconds(),
		WarmupSec:   in.Scenario.Warmup.Seconds(),
	}
	for _, p := range in.probes {
		p.finish(in.env, res)
	}
	res.Counters = in.Counters()
	return res
}

// Run builds and drives the scenario in one call.
func (s Scenario) Run() (*Result, error) {
	in, err := s.Build()
	if err != nil {
		return nil, err
	}
	return in.Run(), nil
}

// RunAll executes scenarios concurrently (one engine per scenario,
// GOMAXPROCS workers) and returns their results in argument order. A
// failing scenario leaves a nil slot; the error joins every failure.
func RunAll(scs ...Scenario) ([]*Result, error) {
	return runParallel(scs, 0)
}

// RunAllWithParallelism is RunAll with an explicit worker cap
// (0 = GOMAXPROCS).
func RunAllWithParallelism(parallelism int, scs ...Scenario) ([]*Result, error) {
	return runParallel(scs, parallelism)
}
