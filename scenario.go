package netfence

import (
	"fmt"

	// The baselines self-register in the defense registry; scenarios
	// resolve them by name, so link them in explicitly.
	_ "netfence/internal/baseline"
	"netfence/internal/core"
	"netfence/internal/defense"
	"netfence/internal/metrics"
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
	"netfence/internal/topo"
	"netfence/internal/transport"
)

// Scenario is the declarative description of one simulation: a topology,
// a defense system resolved by name from the pluggable registry, a set of
// workloads and attacks, and the probes that measure the outcome. Zero
// manual wiring — Run builds the engine and network, deploys the defense,
// attaches every transport, drives the simulation and samples the probes:
//
//	sc := netfence.Scenario{
//		Seed:     42,
//		Topology: netfence.DumbbellSpec{Senders: 2, BottleneckBps: 400_000, ColluderASes: 1},
//		Defense:  netfence.Defense("netfence"),
//		Workloads: []netfence.Workload{
//			netfence.LongTCP{Senders: []int{0}},
//			netfence.ColluderPairs{Senders: []int{1}},
//		},
//		Duration: 180 * netfence.Second,
//	}
//	res, err := sc.Run()
type Scenario struct {
	// Name labels the scenario in results (optional).
	Name string
	// Seed feeds the deterministic simulation RNG.
	Seed uint64
	// Topology declares the network: DumbbellSpec or ParkingLotSpec.
	Topology TopologySpec
	// Defense names the deployed system; the zero value means "netfence".
	Defense DefenseSpec
	// Workloads attach traffic; see Workload.
	Workloads []Workload
	// Probes measure the run; nil selects GoodputProbe, FairnessProbe
	// and FCTProbe.
	Probes []Probe
	// Duration is the simulated run length (0 = 240 s); measurements
	// start at Warmup (0 = Duration/2), leaving AIMD time to converge.
	Duration, Warmup Time
	// DenyAttackers gives every victim the paper's receiver policy: deny
	// traffic from senders carrying attack workloads aimed at it
	// (UDPFlood to the victim, RequestFlood). Colluder-bound floods are
	// never denied — their receivers cooperate with the attacker.
	DenyAttackers bool
}

// DefenseSpec selects a defense system from the registry.
type DefenseSpec struct {
	// Name is the registry name: "netfence", "tva", "stopit", "fq",
	// "none", or any third-party registration. Empty means "netfence".
	Name string
	// Config optionally configures the system (core.Config for
	// "netfence"); nil selects the system's defaults.
	Config any
}

// Defense names a registered defense system with default configuration.
func Defense(name string) DefenseSpec { return DefenseSpec{Name: name} }

// RegisterDefense makes a third-party defense system resolvable by name
// in scenarios and sweeps. In-tree systems are pre-registered.
func RegisterDefense(name string, b DefenseBuilder) { defense.Register(name, b) }

// Defenses returns the sorted names of every registered defense system.
func Defenses() []string { return defense.Names() }

// DefenseBuilder constructs a defense system over a network.
type DefenseBuilder = defense.Builder

// DefenseBuildOptions carries optional construction parameters.
type DefenseBuildOptions = defense.BuildOptions

// NewDefense resolves a registered defense by name and constructs it
// over net; cfg optionally configures it (nil = defaults).
func NewDefense(name string, net *Network, cfg any) (DefenseSystem, error) {
	return defense.Build(name, net, defense.BuildOptions{Config: cfg})
}

// TopologySpec declares a scenario's network. DumbbellSpec and
// ParkingLotSpec implement it.
type TopologySpec interface {
	buildTopo(eng *sim.Engine) (*builtTopo, error)
	// withPopulation returns a copy at a different sender population —
	// the Sweep runner's population axis.
	withPopulation(n int) TopologySpec
	population() int
}

// DumbbellSpec declares the §6.3.1 dumbbell: sender ASes through one
// bottleneck to a victim AS, plus optional colluder ASes.
type DumbbellSpec struct {
	// Senders is the total sender-host population.
	Senders int
	// BottleneckBps is the bottleneck capacity.
	BottleneckBps int64
	// ColluderASes adds right-side ASes with one colluder host each.
	ColluderASes int
	// SrcASes overrides the source-AS count (0 = min(10, Senders)).
	SrcASes int
	// EdgeBps overrides the non-bottleneck capacity (0 = 10 Gbps).
	EdgeBps int64
	// Delay overrides the per-link propagation delay (0 = 10 ms).
	Delay Time
}

func (s DumbbellSpec) population() int { return s.Senders }

func (s DumbbellSpec) withPopulation(n int) TopologySpec {
	s.Senders = n
	return s
}

func (s DumbbellSpec) buildTopo(eng *sim.Engine) (*builtTopo, error) {
	if s.Senders <= 0 {
		return nil, fmt.Errorf("DumbbellSpec: Senders must be positive")
	}
	if s.BottleneckBps <= 0 {
		return nil, fmt.Errorf("DumbbellSpec: BottleneckBps must be positive")
	}
	cfg := topo.DefaultDumbbell(s.Senders, s.BottleneckBps)
	cfg.ColluderASes = s.ColluderASes
	if s.SrcASes > 0 {
		if s.Senders%s.SrcASes != 0 {
			return nil, fmt.Errorf("DumbbellSpec: %d senders do not split evenly over %d ASes", s.Senders, s.SrcASes)
		}
		cfg.SrcASes = s.SrcASes
		cfg.HostsPerAS = s.Senders / s.SrcASes
	} else if cfg.SrcASes*cfg.HostsPerAS != s.Senders {
		// DefaultDumbbell truncates to a multiple of its AS count; the
		// declared population is a contract here, so fall back to the
		// largest AS count that divides it exactly.
		cfg.SrcASes = largestDivisor(s.Senders, cfg.SrcASes)
		cfg.HostsPerAS = s.Senders / cfg.SrcASes
	}
	if s.EdgeBps > 0 {
		cfg.EdgeBps = s.EdgeBps
	}
	if s.Delay > 0 {
		cfg.Delay = s.Delay
	}
	d := topo.NewDumbbell(eng, cfg)
	return &builtTopo{
		net:         d.Net,
		dumbbell:    d,
		bottlenecks: []*netsim.Link{d.Bottleneck},
		groups: []roleGroup{{
			senders:   d.Senders,
			victim:    d.Victim,
			colluders: d.Colluders,
		}},
		deploy: d.Deploy,
	}, nil
}

// ParkingLotSpec declares the §6.3.2 multi-bottleneck parking lot: a
// chain of two bottlenecks with three sender groups. Group 0 crosses
// both, group 1 only the second, group 2 only the first; each group has
// its own victim and colluders.
type ParkingLotSpec struct {
	// SendersPerGroup is the host population of each group.
	SendersPerGroup int
	// L1Bps and L2Bps are the two bottleneck capacities.
	L1Bps, L2Bps int64
	// ASesPerGroup splits each group over this many ASes (0 = 5, clamped
	// to the group population).
	ASesPerGroup int
	// ColluderASesPerGroup overrides the colluder count (0 = 3).
	ColluderASesPerGroup int
	Delay                Time

	// declaredPopulation records a Sweep population-axis request; the
	// declared population is a contract, so buildTopo rejects values
	// that do not split into three equal groups.
	declaredPopulation int
}

func (s ParkingLotSpec) population() int {
	if s.declaredPopulation > 0 {
		return s.declaredPopulation
	}
	return 3 * s.SendersPerGroup
}

func (s ParkingLotSpec) withPopulation(n int) TopologySpec {
	s.SendersPerGroup = n / 3
	s.declaredPopulation = n
	return s
}

func (s ParkingLotSpec) buildTopo(eng *sim.Engine) (*builtTopo, error) {
	if s.declaredPopulation > 0 && s.declaredPopulation != 3*s.SendersPerGroup {
		return nil, fmt.Errorf("ParkingLotSpec: population %d does not split into 3 equal groups", s.declaredPopulation)
	}
	if s.SendersPerGroup <= 0 {
		return nil, fmt.Errorf("ParkingLotSpec: SendersPerGroup must be positive")
	}
	if s.L1Bps <= 0 || s.L2Bps <= 0 {
		return nil, fmt.Errorf("ParkingLotSpec: L1Bps and L2Bps must be positive")
	}
	cfg := topo.DefaultParkingLot(s.SendersPerGroup, s.L1Bps, s.L2Bps)
	if s.ASesPerGroup > 0 {
		if s.SendersPerGroup%s.ASesPerGroup != 0 {
			return nil, fmt.Errorf("ParkingLotSpec: %d senders per group do not split evenly over %d ASes", s.SendersPerGroup, s.ASesPerGroup)
		}
		cfg.ASesPerGroup = s.ASesPerGroup
	} else {
		// The declared group population is a contract: pick the largest
		// AS count that divides it exactly.
		cfg.ASesPerGroup = largestDivisor(s.SendersPerGroup, cfg.ASesPerGroup)
	}
	if s.ColluderASesPerGroup > 0 {
		cfg.ColluderASesPerGroup = s.ColluderASesPerGroup
	}
	if s.Delay > 0 {
		cfg.Delay = s.Delay
	}
	pl := topo.NewParkingLot(eng, cfg)
	bt := &builtTopo{
		net:         pl.Net,
		parkingLot:  pl,
		bottlenecks: []*netsim.Link{pl.L1, pl.L2},
		deploy:      pl.Deploy,
	}
	for g := range pl.Groups {
		grp := &pl.Groups[g]
		bt.groups = append(bt.groups, roleGroup{
			senders:   grp.Senders,
			victim:    grp.Victim,
			colluders: grp.Colluders,
		})
	}
	return bt, nil
}

// largestDivisor returns the largest k <= max (and >= 1) dividing n.
func largestDivisor(n, max int) int {
	if max > n {
		max = n
	}
	for k := max; k > 1; k-- {
		if n%k == 0 {
			return k
		}
	}
	return 1
}

// builtTopo is a constructed topology reduced to the role view the
// workloads and probes operate on.
type builtTopo struct {
	net         *netsim.Network
	dumbbell    *topo.Dumbbell
	parkingLot  *topo.ParkingLot
	bottlenecks []*netsim.Link
	groups      []roleGroup
	deploy      func(s defense.System, deny defense.Policy)
}

// roleGroup is one sender group with its destinations.
type roleGroup struct {
	senders   []*netsim.Node
	victim    *netsim.Node
	colluders []*netsim.Node
}

func (g *roleGroup) sender(idx int, kind string) (*netsim.Node, error) {
	if idx < 0 || idx >= len(g.senders) {
		return nil, fmt.Errorf("%s: sender index %d out of range (topology has %d)", kind, idx, len(g.senders))
	}
	return g.senders[idx], nil
}

// goodputMeter tracks one sender's delivered bytes for the probes.
type goodputMeter struct {
	group, sender int
	attacker      bool
	bytes         func() int64
	warmMark      int64
	tickMark      int64
}

// scenarioEnv is the mutable state shared by workload attachment, the
// probes and the executor for one scenario run.
type scenarioEnv struct {
	sc     *Scenario
	eng    *sim.Engine
	net    *netsim.Network
	system defense.System
	*builtTopo

	meters   []*goodputMeter
	fct      *metrics.FCT
	denySet  map[packet.NodeID]bool
	stoppers []interface{ Stop() }

	// listeners and srcCounters implement the per-group victim TCP
	// listener with per-source goodput attribution (web and file
	// workloads open fresh flows per transfer).
	listeners   map[int]bool
	srcCounters map[int]map[packet.NodeID]*int64

	// nfBottleneck is the NetFence bottleneck state of a dumbbell
	// deployment, for monitoring-cycle samples; nil otherwise.
	nfBottleneck *core.Bottleneck

	duration, warmup Time
	txWarmMarks      []uint64
	series           []Sample
}

func (env *scenarioEnv) group(g int, kind string) (*roleGroup, error) {
	if g < 0 || g >= len(env.groups) {
		return nil, fmt.Errorf("%s: group %d out of range (topology has %d)", kind, g, len(env.groups))
	}
	return &env.groups[g], nil
}

func (env *scenarioEnv) addMeter(group, sender int, attacker bool, bytes func() int64) {
	env.meters = append(env.meters, &goodputMeter{
		group: group, sender: sender, attacker: attacker, bytes: bytes,
	})
}

// srcCounter returns the delivered-bytes counter for a source host at a
// group's victim, creating it on first use.
func (env *scenarioEnv) srcCounter(group int, src NodeID) *int64 {
	m := env.srcCounters[group]
	if m == nil {
		m = map[packet.NodeID]*int64{}
		env.srcCounters[group] = m
	}
	ctr := m[src]
	if ctr == nil {
		ctr = new(int64)
		m[src] = ctr
	}
	return ctr
}

// ensureListener installs a TCP listener on a group's victim that
// accepts fresh flows and attributes delivered bytes to their source.
func (env *scenarioEnv) ensureListener(group int) {
	if env.listeners[group] {
		return
	}
	env.listeners[group] = true
	v := env.groups[group].victim
	v.Host.OnUnknownFlow = func(p *Packet) Agent {
		if p.Proto != packet.ProtoTCP {
			return nil
		}
		r := transport.NewTCPReceiver(v.Host, p.Flow)
		if ctr := env.srcCounters[group][p.Src]; ctr != nil {
			r.OnDeliver = func(b int) { *ctr += int64(b) }
		}
		return r
	}
}

// bottleneckBps is the (first) bottleneck capacity, for strategic attack
// computations.
func (env *scenarioEnv) bottleneckBps() int64 { return env.bottlenecks[0].Rate }

// snapshotWarm marks every meter and bottleneck at the warmup boundary.
func (env *scenarioEnv) snapshotWarm() {
	for _, m := range env.meters {
		m.warmMark = m.bytes()
	}
	env.txWarmMarks = make([]uint64, len(env.bottlenecks))
	for i, l := range env.bottlenecks {
		env.txWarmMarks[i] = l.TxBytes
	}
}

// Instance is a built, not-yet-run scenario: the escape hatch for code
// that needs the underlying engine, topology or defense system alongside
// the declarative layer.
type Instance struct {
	Scenario Scenario
	Eng      *Engine
	Net      *Network
	System   DefenseSystem
	// Dumbbell is the constructed topology for DumbbellSpec scenarios;
	// ParkingLot for ParkingLotSpec scenarios. The other is nil.
	Dumbbell   *Dumbbell
	ParkingLot *ParkingLot

	env    *scenarioEnv
	probes []Probe
}

// Build validates the scenario and constructs everything — engine,
// topology, defense deployment, workloads, probes — without running it.
// Most callers want Run; Build is for introspection mid-run.
func (s Scenario) Build() (*Instance, error) {
	if s.Topology == nil {
		return nil, fmt.Errorf("scenario %q: Topology is required", s.Name)
	}
	if s.Duration == 0 {
		s.Duration = 240 * Second
	}
	if s.Warmup == 0 {
		s.Warmup = s.Duration / 2
	}
	if s.Warmup >= s.Duration {
		return nil, fmt.Errorf("scenario %q: Warmup (%v) must precede Duration (%v)", s.Name, s.Warmup, s.Duration)
	}
	if s.Defense.Name == "" {
		s.Defense.Name = "netfence"
	}

	eng := sim.New(s.Seed)
	bt, err := s.Topology.buildTopo(eng)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	system, err := defense.Build(s.Defense.Name, bt.net, defense.BuildOptions{Config: s.Defense.Config})
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}

	env := &scenarioEnv{
		sc:          &s,
		eng:         eng,
		net:         bt.net,
		system:      system,
		builtTopo:   bt,
		fct:         &metrics.FCT{},
		denySet:     map[packet.NodeID]bool{},
		listeners:   map[int]bool{},
		srcCounters: map[int]map[packet.NodeID]*int64{},
		duration:    s.Duration,
		warmup:      s.Warmup,
	}

	// The deny policy closes over the deny set, which the attack
	// workloads populate during attachment below.
	var deny defense.Policy
	if s.DenyAttackers {
		deny.Deny = func(src packet.NodeID) bool { return env.denySet[src] }
	}
	bt.deploy(system, deny)

	if cs, ok := system.(*core.System); ok && bt.dumbbell != nil {
		env.nfBottleneck = cs.Bottleneck(bt.dumbbell.Bottleneck)
	}

	for _, w := range s.Workloads {
		if err := w.attach(env); err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}

	probes := s.Probes
	if probes == nil {
		probes = []Probe{GoodputProbe{}, FairnessProbe{}, FCTProbe{}}
	}
	for _, p := range probes {
		if err := p.install(env); err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	eng.At(s.Warmup, env.snapshotWarm)

	return &Instance{
		Scenario:   s,
		Eng:        eng,
		Net:        bt.net,
		System:     system,
		Dumbbell:   bt.dumbbell,
		ParkingLot: bt.parkingLot,
		env:        env,
		probes:     probes,
	}, nil
}

// Run drives the built scenario to its Duration, stops the workloads,
// and collects every probe into the Result.
func (in *Instance) Run() *Result {
	in.Eng.RunUntil(in.Scenario.Duration)
	for _, st := range in.env.stoppers {
		st.Stop()
	}
	res := &Result{
		Scenario:    in.Scenario.Name,
		Defense:     in.System.Name(),
		Seed:        in.Scenario.Seed,
		Senders:     in.Scenario.Topology.population(),
		DurationSec: in.Scenario.Duration.Seconds(),
		WarmupSec:   in.Scenario.Warmup.Seconds(),
	}
	for _, p := range in.probes {
		p.finish(in.env, res)
	}
	return res
}

// Run builds and drives the scenario in one call.
func (s Scenario) Run() (*Result, error) {
	in, err := s.Build()
	if err != nil {
		return nil, err
	}
	return in.Run(), nil
}

// RunAll executes scenarios concurrently (one engine per scenario,
// GOMAXPROCS workers) and returns their results in argument order. A
// failing scenario leaves a nil slot; the error joins every failure.
func RunAll(scs ...Scenario) ([]*Result, error) {
	return runParallel(scs, 0)
}

// RunAllWithParallelism is RunAll with an explicit worker cap
// (0 = GOMAXPROCS).
func RunAllWithParallelism(parallelism int, scs ...Scenario) ([]*Result, error) {
	return runParallel(scs, parallelism)
}
