package netfence_test

import (
	"reflect"
	"strings"
	"testing"

	"netfence"
)

// quickstartScenario is the declarative form of the quickstart example:
// one legitimate TCP sender and one colluding attacker pair share a
// 400 kbps NetFence-protected bottleneck.
func quickstartScenario() netfence.Scenario {
	return netfence.Scenario{
		Name:     "quickstart",
		Seed:     42,
		Topology: netfence.DumbbellSpec{Senders: 2, BottleneckBps: 400_000, ColluderASes: 1},
		Defense:  netfence.Defense("netfence"),
		Workloads: []netfence.Workload{
			netfence.LongTCP{Senders: []int{0}},
			netfence.ColluderPairs{Senders: []int{1}, RateBps: 1_000_000},
		},
		Probes: []netfence.Probe{
			netfence.GoodputProbe{}, netfence.FairnessProbe{},
			netfence.TimeseriesProbe{Interval: 20 * netfence.Second},
		},
		Duration: 180 * netfence.Second,
		Warmup:   60 * netfence.Second,
	}
}

// TestDefenseRegistry verifies that NetFence and all four baselines
// resolve by name — including the paper's display spellings — and that
// each constructed system satisfies the defense.System interface.
func TestDefenseRegistry(t *testing.T) {
	names := netfence.Defenses()
	for _, want := range []string{"netfence", "tva", "stopit", "fq", "none"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry missing %q (have %v)", want, names)
		}
	}
	for _, name := range []string{"netfence", "NetFence", "tva", "TVA+", "stopit", "StopIt", "fq", "FQ", "none", "None"} {
		eng := netfence.NewEngine(1)
		net := netfence.NewNetwork(eng)
		sys, err := netfence.NewDefense(name, net, nil)
		if err != nil {
			t.Fatalf("NewDefense(%q): %v", name, err)
		}
		var _ netfence.DefenseSystem = sys
		if sys.Name() == "" {
			t.Fatalf("NewDefense(%q): empty system name", name)
		}
	}
	if _, err := netfence.NewDefense("bogus", netfence.NewNetwork(netfence.NewEngine(1)), nil); err == nil {
		t.Fatal("bogus defense resolved")
	}
	// A NetFence config must be rejected by systems that take none.
	if _, err := netfence.NewDefense("fq", netfence.NewNetwork(netfence.NewEngine(1)), netfence.DefaultConfig()); err == nil {
		t.Fatal("fq accepted a NetFence config")
	}
}

// TestScenarioQuickstartGolden asserts the quickstart scenario built via
// the declarative API converges both senders to their fair share: the
// paper's headline guarantee, measured entirely through probes.
func TestScenarioQuickstartGolden(t *testing.T) {
	res, err := quickstartScenario().Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Defense != "NetFence" {
		t.Fatalf("defense = %q", res.Defense)
	}
	// Fair share is 200 kbps per sender. The user must hold a working
	// share; the 1 Mbps flood must be pinned near fair share.
	if res.UserBps < 80_000 {
		t.Fatalf("user goodput %.0f bps, want >= 80 kbps", res.UserBps)
	}
	if res.AttackerBps > 300_000 {
		t.Fatalf("attacker goodput %.0f bps above fair-share band", res.AttackerBps)
	}
	if res.Ratio <= 0 {
		t.Fatalf("ratio = %.2f", res.Ratio)
	}
	// The monitoring cycle must have engaged, and the timeseries must
	// record it.
	saw := false
	for _, s := range res.Series {
		if s.Monitoring {
			saw = true
		}
	}
	if !saw {
		t.Fatal("monitoring cycle never observed in the timeseries")
	}
	if len(res.Series) < 8 {
		t.Fatalf("timeseries has %d samples, want >= 8", len(res.Series))
	}
}

// TestScenarioDenyAttackers drives the §6.3.1 capability scenario: the
// victim denies request flooders, so the legitimate client's transfers
// keep completing.
func TestScenarioDenyAttackers(t *testing.T) {
	res, err := netfence.Scenario{
		Name:          "capability",
		Seed:          7,
		Topology:      netfence.DumbbellSpec{Senders: 10, BottleneckBps: 2_000_000},
		Defense:       netfence.Defense("netfence"),
		DenyAttackers: true,
		Workloads: []netfence.Workload{
			netfence.FileTransfers{Senders: []int{0}, FileBytes: 20_000},
			netfence.RequestFlood{Senders: netfence.Range(1, 10), RateBps: 1_000_000, Level: 5},
		},
		Duration: 60 * netfence.Second,
		Warmup:   10 * netfence.Second,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FCT.Count == 0 {
		t.Fatal("no transfers completed")
	}
	if res.FCT.Completion < 0.99 {
		t.Fatalf("completion = %.2f", res.FCT.Completion)
	}
	if res.FCT.MeanSec > 4 {
		t.Fatalf("mean FCT %.2fs under denial, want the ~1s request-backoff cost only", res.FCT.MeanSec)
	}
}

// TestParkingLotScenario smoke-tests the multi-bottleneck topology under
// the declarative API, with per-group workload targeting.
func TestParkingLotScenario(t *testing.T) {
	res, err := netfence.Scenario{
		Name:     "parkinglot",
		Seed:     3,
		Topology: netfence.ParkingLotSpec{SendersPerGroup: 4, L1Bps: 640_000, L2Bps: 960_000},
		Defense:  netfence.Defense("netfence"),
		Workloads: []netfence.Workload{
			netfence.LongTCP{Group: 0, Senders: netfence.Range(0, 2)},
			netfence.ColluderPairs{Group: 0, Senders: netfence.Range(2, 4)},
			netfence.LongTCP{Group: 1, Senders: netfence.Range(0, 2)},
			netfence.LongTCP{Group: 2, Senders: netfence.Range(0, 2)},
		},
		Duration: 60 * netfence.Second,
		Warmup:   30 * netfence.Second,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.UserBps <= 0 {
		t.Fatalf("user goodput %.0f", res.UserBps)
	}
	if res.Senders != 12 {
		t.Fatalf("population = %d, want 12", res.Senders)
	}
}

// sweepBase is a small collusion scenario used by the sweep tests.
func sweepBase() netfence.Scenario {
	return netfence.Scenario{
		Name:     "collusion",
		Seed:     1,
		Topology: netfence.DumbbellSpec{Senders: 4, BottleneckBps: 800_000, ColluderASes: 2},
		Defense:  netfence.Defense("netfence"),
		Workloads: []netfence.Workload{
			netfence.LongTCP{Senders: netfence.Range(0, 2)},
			netfence.ColluderPairs{Senders: netfence.Range(2, 4)},
		},
		Duration: 60 * netfence.Second,
		Warmup:   30 * netfence.Second,
	}
}

// TestSweepDeterminism runs the same 4-defense × 2-seed matrix serially
// and with maximum parallelism: the result sets must be identical, byte
// for byte — one engine per scenario, no shared mutable state.
func TestSweepDeterminism(t *testing.T) {
	sw := netfence.Sweep{
		Base:     sweepBase(),
		Defenses: []string{"netfence", "tva", "stopit", "fq"},
		Seeds:    []uint64{1, 2},
	}
	serial := sw
	serial.Parallelism = 1
	parallel := sw
	parallel.Parallelism = 8

	a, err := serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("result counts: %d, %d, want 8", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("cell %d differs between serial and parallel runs:\n%v\n%v", i, a[i], b[i])
		}
	}
	// Seed-stability: rerunning the parallel sweep reproduces it again.
	c, err := parallel.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], c[i]) {
			t.Fatalf("cell %d not seed-stable across reruns", i)
		}
	}
}

// TestSweepMatrix checks the deterministic expansion order and the
// population axis.
func TestSweepMatrix(t *testing.T) {
	sw := netfence.Sweep{
		Base:        sweepBase(),
		Defenses:    []string{"netfence", "fq"},
		Populations: []int{4, 8},
		Seeds:       []uint64{1, 2},
	}
	scs := sw.Scenarios()
	if len(scs) != 8 {
		t.Fatalf("matrix size %d, want 8", len(scs))
	}
	// Defense-major, then population, then seed.
	wantFirst := "collusion/netfence/n=4/seed=1"
	if scs[0].Name != wantFirst {
		t.Fatalf("first cell %q, want %q", scs[0].Name, wantFirst)
	}
	wantLast := "collusion/fq/n=8/seed=2"
	if scs[7].Name != wantLast {
		t.Fatalf("last cell %q, want %q", scs[7].Name, wantLast)
	}
	if scs[2].Topology.(netfence.DumbbellSpec).Senders != 8 {
		t.Fatalf("population override not applied: %+v", scs[2].Topology)
	}
}

// TestSweepBaseFor verifies the population axis with a generator: role
// splits scale with the population and every sender is active.
func TestSweepBaseFor(t *testing.T) {
	results, err := netfence.Sweep{
		Base: netfence.Scenario{Name: "collusion"},
		BaseFor: func(pop int) netfence.Scenario {
			sc := sweepBase()
			sc.Topology = netfence.DumbbellSpec{Senders: pop, BottleneckBps: int64(pop) * 200_000, ColluderASes: 2}
			sc.Workloads = []netfence.Workload{
				netfence.LongTCP{Senders: netfence.Range(0, pop/2)},
				netfence.ColluderPairs{Senders: netfence.Range(pop/2, pop)},
			}
			return sc
		},
		Populations: []int{2, 6},
		Seeds:       []uint64{1},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for i, wantSenders := range []int{2, 6} {
		r := results[i]
		if r.Senders != wantSenders {
			t.Fatalf("cell %d population = %d, want %d", i, r.Senders, wantSenders)
		}
		if got := len(r.UserRates) + len(r.AttackerRates); got != wantSenders {
			t.Fatalf("cell %d has %d active senders, want %d", i, got, wantSenders)
		}
	}
}

// TestPopulationExact pins that topology specs honor the declared
// population exactly even when it does not divide the default AS count,
// and reject explicit non-divisible splits.
func TestPopulationExact(t *testing.T) {
	res, err := netfence.Scenario{
		Seed:     1,
		Topology: netfence.DumbbellSpec{Senders: 25, BottleneckBps: 5_000_000, ColluderASes: 2},
		Workloads: []netfence.Workload{
			netfence.LongTCP{Senders: netfence.Range(0, 5)},
			netfence.ColluderPairs{Senders: netfence.Range(5, 25)},
		},
		Duration: 20 * netfence.Second,
		Warmup:   10 * netfence.Second,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.UserRates) + len(res.AttackerRates); got != 25 {
		t.Fatalf("%d active senders, want all 25", got)
	}
	bad := sweepBase()
	bad.Topology = netfence.DumbbellSpec{Senders: 25, BottleneckBps: 5_000_000, SrcASes: 10}
	if _, err := bad.Run(); err == nil {
		t.Fatal("non-divisible explicit SrcASes accepted")
	}
}

// TestSweepBaseForDefenseConfig pins the BaseFor contract: a defense
// config supplied by the generator survives onto its own system's cells
// and never leaks onto others.
func TestSweepBaseForDefenseConfig(t *testing.T) {
	cfg := netfence.DefaultConfig()
	sw := netfence.Sweep{
		Base: netfence.Scenario{Name: "x"},
		BaseFor: func(pop int) netfence.Scenario {
			sc := sweepBase()
			sc.Defense = netfence.DefenseSpec{Name: "netfence", Config: cfg}
			return sc
		},
		Defenses:    []string{"netfence", "fq"},
		Populations: []int{4},
	}
	scs := sw.Scenarios()
	if len(scs) != 2 {
		t.Fatalf("matrix size %d, want 2", len(scs))
	}
	if scs[0].Defense.Config == nil {
		t.Fatal("BaseFor's config dropped from its own system's cell")
	}
	if scs[1].Defense.Config != nil {
		t.Fatal("NetFence config leaked onto the fq cell")
	}
	// BaseFor with no Populations: the base topology's population feeds
	// the generator.
	sw2 := netfence.Sweep{
		Base:        sweepBase(),
		BaseFor:     func(pop int) netfence.Scenario { return sweepBase() },
		Defenses:    []string{"fq"},
		Populations: nil,
	}
	if scs := sw2.Scenarios(); len(scs) != 1 || scs[0].Topology == nil {
		t.Fatalf("BaseFor skipped without explicit Populations: %+v", scs)
	}
	// BaseFor with neither Populations nor a base topology is an error.
	sw3 := netfence.Sweep{
		Base:     netfence.Scenario{Name: "x"},
		BaseFor:  func(pop int) netfence.Scenario { return sweepBase() },
		Defenses: []string{"fq"},
	}
	if _, err := sw3.Run(); err == nil {
		t.Fatal("BaseFor without Populations or Base topology accepted")
	}
	// Non-positive populations are rejected up front, not conflated with
	// the internal keep-base sentinel.
	sw4 := netfence.Sweep{Base: sweepBase(), Populations: []int{8, 0}}
	if _, err := sw4.Run(); err == nil {
		t.Fatal("population 0 accepted")
	}
	// The parking-lot population axis honors the declared population:
	// values that do not split into 3 equal groups error per cell.
	plBase := sweepBase()
	plBase.Topology = netfence.ParkingLotSpec{SendersPerGroup: 2, L1Bps: 320_000, L2Bps: 480_000}
	plBase.Workloads = []netfence.Workload{netfence.LongTCP{Group: 0, Senders: []int{0}}}
	swPL := netfence.Sweep{Base: plBase, Populations: []int{20}}
	if _, err := swPL.Run(); err == nil {
		t.Fatal("parking-lot population 20 (not divisible by 3) accepted")
	}
	swPL.Populations = []int{6}
	if results, err := swPL.Run(); err != nil || results[0].Senders != 6 {
		t.Fatalf("parking-lot population 6 failed: %v %v", results, err)
	}
}

// TestRunAllOrder verifies RunAll returns results in argument order with
// names preserved.
func TestRunAllOrder(t *testing.T) {
	a := sweepBase()
	a.Name = "first"
	b := sweepBase()
	b.Name = "second"
	b.Defense = netfence.Defense("fq")
	results, err := netfence.RunAll(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Scenario != "first" || results[1].Scenario != "second" {
		t.Fatalf("RunAll order broken: %v", results)
	}
	if results[1].Defense != "FQ" {
		t.Fatalf("second result defense = %q", results[1].Defense)
	}
	out := netfence.FormatResults(results)
	if !strings.Contains(out, "first") || !strings.Contains(out, "second") {
		t.Fatalf("FormatResults missing rows:\n%s", out)
	}
}

// TestScenarioValidation exercises the build-time error paths.
func TestScenarioValidation(t *testing.T) {
	if _, err := (netfence.Scenario{}).Run(); err == nil {
		t.Fatal("missing topology accepted")
	}
	bad := sweepBase()
	bad.Defense = netfence.Defense("bogus")
	if _, err := bad.Run(); err == nil {
		t.Fatal("unknown defense accepted")
	}
	bad = sweepBase()
	bad.Workloads = []netfence.Workload{netfence.LongTCP{Senders: []int{99}}}
	if _, err := bad.Run(); err == nil {
		t.Fatal("out-of-range sender accepted")
	}
	bad = sweepBase()
	bad.Topology = netfence.DumbbellSpec{Senders: 2, BottleneckBps: 400_000} // no colluders
	if _, err := bad.Run(); err == nil {
		t.Fatal("colluder flood without colluder hosts accepted")
	}
	bad = sweepBase()
	bad.Warmup = bad.Duration
	if _, err := bad.Run(); err == nil {
		t.Fatal("warmup >= duration accepted")
	}
	bad = sweepBase()
	bad.Defense = netfence.DefenseSpec{Name: "fq", Config: netfence.DefaultConfig()}
	if _, err := bad.Run(); err == nil {
		t.Fatal("fq with a NetFence config accepted")
	}
}
