package netfence

import (
	"encoding/json"
	"strings"
	"testing"
)

// fleetScenario is the shared scaffold for the fleet equivalence suite:
// a congested bottleneck with long-running TCP users so the policers,
// queues and feedback all matter, shortened relative to the sharded
// equivalence sweep to keep the multi-variant matrix fast.
func fleetScenario(topoSpec TopologySpec, workloads []Workload, shards int) Scenario {
	return Scenario{
		Name:          "fleet-equiv",
		Seed:          7,
		Topology:      topoSpec,
		Defense:       Defense("netfence"),
		Workloads:     workloads,
		DenyAttackers: true,
		Duration:      15 * Second,
		Warmup:        5 * Second,
		Shards:        shards,
	}
}

var fleetTopologies = []struct {
	name string
	spec TopologySpec
}{
	{"dumbbell", DumbbellSpec{Senders: 20, BottleneckBps: 4_000_000, ColluderASes: 3}},
	{"random-as", RandomASSpec{Senders: 20, BottleneckBps: 4_000_000, TransitASes: 4, ExtraLinks: 2, ColluderASes: 3, GraphSeed: 3}},
}

// TestFleetExactMatchesIndividualHosts is the exact-fan-out contract:
// a FleetSpec with Exact set and Count == len(Senders) must be
// indistinguishable — byte-identical Result JSON, counters included —
// from the same senders attached as individual UDPFlood hosts, at
// every shard count.
func TestFleetExactMatchesIndividualHosts(t *testing.T) {
	for _, tc := range fleetTopologies {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			individual := []Workload{
				LongTCP{Senders: Range(0, 5)},
				UDPFlood{Senders: Range(5, 12)},
			}
			fleet := []Workload{
				LongTCP{Senders: Range(0, 5)},
				FleetSpec{Count: 7, Senders: Range(5, 12), Attacker: true, Exact: true},
			}
			want := resultJSON(t, fleetScenario(tc.spec, individual, 1))
			for _, n := range []int{1, 2, 4, 8} {
				got := resultJSON(t, fleetScenario(tc.spec, fleet, n))
				diffJSON(t, tc.name+"/fleet-exact", want, got, n)
			}
		})
	}
}

// TestFleetAggregateShardInvariance checks the aggregate path's core
// determinism guarantee: one fleet object standing for a thousand
// modeled senders per attachment host produces byte-identical Result
// JSON at shards 1, 2, 4 and 8, and the Result reports the modeled
// population, not the host count.
func TestFleetAggregateShardInvariance(t *testing.T) {
	const (
		attachments = 7    // hosts 5..11
		perHost     = 1000 // modeled senders per attachment host
		population  = attachments * perHost
	)
	workloads := []Workload{
		LongTCP{Senders: Range(0, 5)},
		FleetSpec{Count: population, Senders: Range(5, 12), Attacker: true, RateBps: 2_000},
	}
	for _, tc := range fleetTopologies {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sc := fleetScenario(tc.spec, workloads, 1)
			res, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			// 13 ordinary sender hosts + 7 fleet attachments of 1000.
			if want := 20 - attachments + population; res.Senders != want {
				t.Fatalf("Senders = %d, want modeled population %d", res.Senders, want)
			}
			if got := res.Counters["fleet_attached_total"]; got != attachments {
				t.Fatalf("fleet_attached_total = %d, want %d", got, attachments)
			}
			if got := res.Counters["fleet_modeled_senders_total"]; got != population {
				t.Fatalf("fleet_modeled_senders_total = %d, want %d", got, population)
			}
			want := resultJSON(t, fleetScenario(tc.spec, workloads, 1))
			for _, n := range []int{2, 4, 8} {
				got := resultJSON(t, fleetScenario(tc.spec, workloads, n))
				diffJSON(t, tc.name+"/fleet-aggregate", want, got, n)
			}
		})
	}
}

// TestFleetMidRunSnapshot drives an aggregate-fleet scenario through
// the live Instance surface — Build, Advance to mid-run, read the
// deterministic counters, Finish — and requires the final Result to be
// byte-identical to the scripted Run. Observing a fleet mid-flight
// must not perturb it.
func TestFleetMidRunSnapshot(t *testing.T) {
	workloads := []Workload{
		LongTCP{Senders: Range(0, 5)},
		FleetSpec{Count: 700, Senders: Range(5, 12), Attacker: true, RateBps: 20_000},
	}
	spec := fleetTopologies[0].spec
	for _, shards := range []int{1, 4} {
		want := resultJSON(t, fleetScenario(spec, workloads, shards))

		sc := fleetScenario(spec, workloads, shards)
		in, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		in.Advance(sc.Duration / 2)
		mid := in.Counters()
		if got := mid["fleet_modeled_senders_total"]; got != 700 {
			t.Fatalf("shards=%d mid-run fleet_modeled_senders_total = %d, want 700", shards, got)
		}
		if mid["netsim_tx_packets_total"] == 0 {
			t.Fatalf("shards=%d mid-run snapshot shows no traffic", shards)
		}
		res := in.Finish()
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		diffJSON(t, "fleet-snapshot", want, string(raw), shards)
	}
}

// TestFleetDeployMutationForcesFanout covers the forced fan-out leg of
// the contract: a deployment mutation mid-run changes who polices each
// sender, so an un-Exact fleet with Count == len(Senders) must quietly
// materialize individual hosts and match UDPFlood under the same
// timeline, byte for byte.
func TestFleetDeployMutationForcesFanout(t *testing.T) {
	timeline := []Mutation{
		{At: 8 * Second, Deploy: &DeployMutation{Deployment: DeployFraction(0.5)}},
	}
	individual := []Workload{
		LongTCP{Senders: Range(0, 5)},
		UDPFlood{Senders: Range(5, 12)},
	}
	fleet := []Workload{
		LongTCP{Senders: Range(0, 5)},
		FleetSpec{Count: 7, Senders: Range(5, 12), Attacker: true},
	}
	spec := fleetTopologies[0].spec
	base := fleetScenario(spec, individual, 1)
	base.Timeline = timeline
	want := resultJSON(t, base)
	for _, n := range []int{1, 4} {
		sc := fleetScenario(spec, fleet, n)
		sc.Timeline = timeline
		got := resultJSON(t, sc)
		diffJSON(t, "fleet-deploy-fanout", want, got, n)
	}
}

// TestFleetValidation exercises the fail-fast surface of the
// aggregation contract: every malformed FleetSpec must be rejected at
// build time with the reason named.
func TestFleetValidation(t *testing.T) {
	deploy := []Mutation{
		{At: 8 * Second, Deploy: &DeployMutation{Deployment: DeployFraction(0.5)}},
	}
	cases := []struct {
		name     string
		fleet    FleetSpec
		timeline []Mutation
		wantErr  string
	}{
		{
			name:    "non-positive count",
			fleet:   FleetSpec{Count: 0, Senders: Range(5, 12)},
			wantErr: "Count must be positive",
		},
		{
			name:    "no attachment senders",
			fleet:   FleetSpec{Count: 7},
			wantErr: "no attachment senders",
		},
		{
			name:    "exact count mismatch",
			fleet:   FleetSpec{Count: 14, Senders: Range(5, 12), Exact: true},
			wantErr: "Exact is set",
		},
		{
			name:     "deploy mutation forbids aggregation",
			fleet:    FleetSpec{Count: 700, Senders: Range(5, 12)},
			timeline: deploy,
			wantErr:  "deployment mutations",
		},
		{
			name:    "uneven split",
			fleet:   FleetSpec{Count: 705, Senders: Range(5, 12)},
			wantErr: "does not divide evenly",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sc := fleetScenario(fleetTopologies[0].spec, []Workload{tc.fleet}, 1)
			sc.Timeline = tc.timeline
			_, err := sc.Run()
			if err == nil {
				t.Fatalf("Run succeeded, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
