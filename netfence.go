// Package netfence is a from-scratch reproduction of "NetFence:
// Preventing Internet Denial of Service from Inside Out" (Liu, Yang, Xia
// — SIGCOMM 2010): the secure congestion policing feedback primitive, the
// closed-loop access/bottleneck router architecture built on it, the
// paper's comparison baselines (TVA+, StopIt, per-sender fair queuing),
// and a packet-level discrete-event simulator to run them on.
//
// This root package is the public facade. The primary API is the
// declarative Scenario: name a topology, a defense from the pluggable
// registry, workloads and probes, and Run it — or fan a whole
// defenses × populations × seeds matrix across cores with Sweep:
//
//	res, err := netfence.Scenario{
//		Seed:     42,
//		Topology: netfence.DumbbellSpec{Senders: 2, BottleneckBps: 400_000, ColluderASes: 1},
//		Defense:  netfence.Defense("netfence"),
//		Workloads: []netfence.Workload{
//			netfence.LongTCP{Senders: []int{0}},
//			netfence.ColluderPairs{Senders: []int{1}},
//		},
//		Duration: 180 * netfence.Second,
//	}.Run()
//
// The low-level pieces (engine, topologies, defense constructors,
// transports) remain exported for programs that need manual wiring; the
// examples/ directory shows both styles, and cmd/netfence-sim
// regenerates every table and figure of the paper.
package netfence

import (
	"netfence/internal/attack"
	"netfence/internal/core"
	"netfence/internal/defense"
	"netfence/internal/exp"
	"netfence/internal/metrics"
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
	"netfence/internal/topo"
	"netfence/internal/transport"
)

// Simulation engine and time.
type (
	// Engine is the deterministic discrete-event scheduler.
	Engine = sim.Engine
	// Time is simulated time in nanoseconds.
	Time = sim.Time
)

// Time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// NewEngine returns a seeded simulation engine.
func NewEngine(seed uint64) *Engine { return sim.New(seed) }

// Network substrate.
type (
	// Network is a simulated internetwork.
	Network = netsim.Network
	// Node is a router or host.
	Node = netsim.Node
	// Host is the end-system stack on a host node.
	Host = netsim.Host
	// Agent is a transport endpoint attached to a host.
	Agent = netsim.Agent
	// Link is a unidirectional link.
	Link = netsim.Link
	// Packet is the simulated packet.
	Packet = packet.Packet
	// PacketKind classifies a packet into one of NetFence's three
	// channels (legacy, request, regular).
	PacketKind = packet.Kind
	// Feedback is one congestion policing feedback element — what
	// attack strategies observe and may craft.
	Feedback = packet.Feedback
	// NodeID addresses a node.
	NodeID = packet.NodeID
	// ASID identifies an autonomous system.
	ASID = packet.ASID
	// FlowID identifies a transport connection.
	FlowID = packet.FlowID
)

// NewNetwork returns an empty network driven by eng.
func NewNetwork(eng *Engine) *Network { return netsim.New(eng) }

// Packet channels, for strategies crafting their own headers.
const (
	KindLegacy  = packet.KindLegacy
	KindRequest = packet.KindRequest
	KindRegular = packet.KindRegular
)

// NetFence proper.
type (
	// Config holds every NetFence parameter (Figure 3 defaults).
	Config = core.Config
	// System is a NetFence deployment.
	System = core.System
	// Policy is a host's receiver-side classification of unwanted
	// traffic.
	Policy = defense.Policy
	// DefenseSystem is the interface NetFence and all baselines satisfy.
	DefenseSystem = defense.System
)

// DefaultConfig returns the paper's Figure 3 parameters.
func DefaultConfig() Config { return core.DefaultConfig() }

// Attack strategies. The adaptive-adversary subsystem (internal/attack)
// mirrors the defense and topology registries: strategies resolve by
// name in AttackSpec workloads and the Sweep.Attacks axis, and third
// parties register their own through RegisterAttack.
type (
	// AttackStrategy decides, per control tick, how each attack sender
	// transmits; see the interface's hooks for feedback observation and
	// packet crafting.
	AttackStrategy = attack.Strategy
	// AttackBuilder constructs a strategy from build options.
	AttackBuilder = attack.Builder
	// AttackBuildOptions carries rate, packet size, environment and
	// strategy-specific options to a builder.
	AttackBuildOptions = attack.BuildOptions
	// AttackEnv is the scenario view adaptive strategies key off.
	AttackEnv = attack.Env
	// AttackDecision is a strategy's per-tick transmission plan.
	AttackDecision = attack.Decision
	// AttackSender is one controller-driven attack sender.
	AttackSender = attack.Sender
	// AttackController drives one attack workload's senders — the
	// escape hatch for manual wiring outside the Scenario API.
	AttackController = attack.Controller
	// OnOffOptions configures the "onoff-sync" strategy.
	OnOffOptions = attack.OnOffOptions
	// AttackParamSpec declares one tunable strategy parameter — the
	// dimension surface the adversarial search optimizes over.
	AttackParamSpec = attack.ParamSpec
)

// RegisterAttack makes a third-party attack strategy resolvable by name
// in scenarios and sweeps. In-tree strategies ("flood", "onoff-sync",
// "request-prio", "replay", "legacy-flood") are pre-registered. The
// optional params declare the strategy's tunable surface (validated on
// build, searched by SearchSpec).
func RegisterAttack(name string, b AttackBuilder, params ...AttackParamSpec) {
	attack.Register(name, b, params...)
}

// Attacks returns the sorted names of every registered attack strategy.
func Attacks() []string { return attack.Names() }

// AttackParams returns a strategy's declared tunable parameters in
// declaration order.
func AttackParams(name string) ([]AttackParamSpec, error) { return attack.Params(name) }

// ParseAttackSpec parses an attack option string — "name" or
// "name:key=val,key=val" — into the canonical strategy name and its
// validated parameter overrides.
func ParseAttackSpec(s string) (name string, params map[string]float64, err error) {
	return attack.ParseSpec(s)
}

// FormatAttackSpec renders a (strategy, params) pair canonically; it
// round-trips with ParseAttackSpec.
func FormatAttackSpec(name string, params map[string]float64) string {
	return attack.FormatSpec(name, params)
}

// NewAttackStrategy resolves a registered strategy by name and
// constructs it with the given options.
func NewAttackStrategy(name string, opts AttackBuildOptions) (AttackStrategy, error) {
	return attack.Build(name, opts)
}

// NewAttackController creates a controller driving one strategy
// instance over manually added senders.
func NewAttackController(s AttackStrategy, env *AttackEnv) *AttackController {
	return attack.NewController(s, env)
}

// StrategicRequestLevel computes the §6.3.1 request-channel attack
// level: the highest priority whose aggregate admitted attack traffic
// still saturates the request channel.
func StrategicRequestLevel(attackers int, bottleneckBps int64, cfg Config) uint8 {
	return attack.StrategicRequestLevel(attackers, bottleneckBps, cfg)
}

// TheoremBound returns the Theorem-1 (§3.4, Appendix A) lower bound
// ρ·C/(G+B) on a sufficient-demand sender's rate limit — the fair-share
// floor no attack strategy can push a legitimate sender below.
func TheoremBound(cfg Config, bottleneckBps int64, senders int) float64 {
	return attack.TheoremBound(cfg, bottleneckBps, senders)
}

// NewSystem creates a NetFence deployment over net.
func NewSystem(net *Network, cfg Config) *System { return core.NewSystem(net, cfg) }

// Topologies. The role-tagged Graph underneath them (and the topology
// registry resolving them by name) is exported in topology.go.
type (
	// Dumbbell is the §6.3.1 evaluation topology.
	Dumbbell = topo.Dumbbell
	// DumbbellConfig parameterizes it.
	DumbbellConfig = topo.DumbbellConfig
	// ParkingLot is the multi-bottleneck topology.
	ParkingLot = topo.ParkingLot
	// ParkingLotConfig parameterizes it.
	ParkingLotConfig = topo.ParkingLotConfig
	// Star is the single-AS hotspot topology.
	Star = topo.Star
	// StarConfig parameterizes it.
	StarConfig = topo.StarConfig
	// RandomAS is the seeded random AS-level topology.
	RandomAS = topo.RandomAS
	// RandomASConfig parameterizes it.
	RandomASConfig = topo.RandomASConfig
	// DeployPlan selects the ASes participating in a deployment (the
	// compiled form of a scenario's Deployment).
	DeployPlan = topo.Plan
)

// DefaultDumbbell mirrors the paper's dumbbell at a given population and
// bottleneck capacity.
func DefaultDumbbell(senders int, bottleneckBps int64) DumbbellConfig {
	return topo.DefaultDumbbell(senders, bottleneckBps)
}

// NewDumbbell builds the topology.
func NewDumbbell(eng *Engine, cfg DumbbellConfig) *Dumbbell { return topo.NewDumbbell(eng, cfg) }

// DefaultParkingLot mirrors the paper's parking lot.
func DefaultParkingLot(sendersPerGroup int, l1, l2 int64) ParkingLotConfig {
	return topo.DefaultParkingLot(sendersPerGroup, l1, l2)
}

// NewParkingLot builds the topology.
func NewParkingLot(eng *Engine, cfg ParkingLotConfig) *ParkingLot {
	return topo.NewParkingLot(eng, cfg)
}

// NewStar builds the single-AS hotspot topology.
func NewStar(eng *Engine, cfg StarConfig) *Star { return topo.NewStar(eng, cfg) }

// DefaultStar mirrors the dumbbell's parameters at a given population.
func DefaultStar(senders int, bottleneckBps int64) StarConfig {
	return topo.DefaultStar(senders, bottleneckBps)
}

// NewRandomAS builds a seeded random AS-level topology.
func NewRandomAS(eng *Engine, cfg RandomASConfig) (*RandomAS, error) {
	return topo.NewRandomAS(eng, cfg)
}

// DefaultRandomAS mirrors the dumbbell's parameters over a 4-router
// random core.
func DefaultRandomAS(senders int, bottleneckBps int64) RandomASConfig {
	return topo.DefaultRandomAS(senders, bottleneckBps)
}

// PlanFraction compiles a deployment fraction over source ASes into a
// DeployPlan — the helper behind DeployFraction for code deploying onto
// a Graph manually.
func PlanFraction(srcASes []ASID, f float64) DeployPlan {
	return topo.PlanFraction(srcASes, f)
}

// DeployDumbbell installs a defense system across a dumbbell: bottleneck
// protected, access routers policing, hosts shimmed; deny is the victim's
// receiver policy.
func DeployDumbbell(d *Dumbbell, s DefenseSystem, deny Policy) {
	d.Deploy(s, deny)
}

// DeployParkingLot installs a defense system across a parking lot,
// protecting both bottlenecks; deny is applied to every group's victim.
func DeployParkingLot(pl *ParkingLot, s DefenseSystem, deny Policy) {
	pl.Deploy(s, deny)
}

// DeployGraph installs a defense system across any role-tagged Graph
// under a partial-deployment plan (the zero Plan deploys everywhere).
func DeployGraph(g *Graph, s DefenseSystem, deny Policy, plan DeployPlan) {
	g.Deploy(s, deny, plan)
}

// Transports and workloads.
type (
	// TCPSender is a TCP Reno sender.
	TCPSender = transport.TCPSender
	// TCPReceiver is its passive peer.
	TCPReceiver = transport.TCPReceiver
	// TCPConfig tunes TCP.
	TCPConfig = transport.TCPConfig
	// WebConfig tunes the web-like source.
	WebConfig = transport.WebConfig
	// UDPSource is a constant-rate or on-off UDP source.
	UDPSource = transport.UDPSource
	// UDPSink counts delivered traffic.
	UDPSink = transport.UDPSink
	// FileClient repeats fixed-size transfers over fresh connections.
	FileClient = transport.FileClient
	// WebSource issues web-like transfers.
	WebSource = transport.WebSource
	// RequestFlooder is the request-channel attack source.
	RequestFlooder = transport.RequestFlooder
)

// DefaultTCP returns the evaluation TCP configuration.
func DefaultTCP() TCPConfig { return transport.DefaultTCP() }

// DefaultWeb returns the §6.3.2 web workload parameters.
func DefaultWeb() WebConfig { return transport.DefaultWeb() }

// NewTCPSender, NewTCPReceiver, NewUDPSource, NewUDPSink, NewFileClient,
// NewWebSource and NewRequestFlooder mirror the internal constructors.
var (
	NewTCPSender      = transport.NewTCPSender
	NewTCPReceiver    = transport.NewTCPReceiver
	NewUDPSource      = transport.NewUDPSource
	NewUDPSink        = transport.NewUDPSink
	NewFileClient     = transport.NewFileClient
	NewWebSource      = transport.NewWebSource
	NewRequestFlooder = transport.NewRequestFlooder
)

// Metrics.
type (
	// FCT records transfer completion times.
	FCT = metrics.FCT
)

// Jain computes Jain's fairness index.
func Jain(xs []float64) float64 { return metrics.Jain(xs) }

// RunExperiment regenerates one of the paper's tables/figures by name
// (fig7, fig8, fig9a, fig9b, fig10, fig11, fig13, fig14, theorem,
// localize, header, ablate-hysteresis, ablate-initrate) at the given
// scale (tiny, small, paper) and returns the rendered table.
func RunExperiment(name, scale string) (string, error) {
	sc, err := exp.ScaleByName(scale)
	if err != nil {
		return "", err
	}
	r, err := exp.RunnerByName(name)
	if err != nil {
		return "", err
	}
	res := r.Run(sc)
	return res.Table(), nil
}

// Experiments lists the available experiment names with descriptions.
func Experiments() map[string]string {
	out := map[string]string{}
	for _, r := range exp.Runners() {
		out[r.Name] = r.Brief
	}
	return out
}
