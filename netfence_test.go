package netfence_test

import (
	"strings"
	"testing"

	"netfence"
)

// TestFacadeEndToEnd drives the public API exactly as the quickstart
// example does: build a dumbbell, deploy NetFence, run a colluding pair
// against a TCP user, and verify the fair-share outcome.
func TestFacadeEndToEnd(t *testing.T) {
	eng := netfence.NewEngine(42)
	cfg := netfence.DefaultDumbbell(2, 400_000)
	cfg.ColluderASes = 1
	d := netfence.NewDumbbell(eng, cfg)
	sys := netfence.NewSystem(d.Net, netfence.DefaultConfig())
	netfence.DeployDumbbell(d, sys, netfence.Policy{})

	rcv := netfence.NewTCPReceiver(d.Victim.Host, 1)
	netfence.NewTCPSender(d.Senders[0].Host, d.Victim.ID, 1, -1, netfence.DefaultTCP()).Start()
	sink := netfence.NewUDPSink(d.Colluders[0].Host, 2)
	netfence.NewUDPSource(d.Senders[1].Host, d.Colluders[0].ID, 2, 1_000_000, 1500).Start()

	eng.RunUntil(60 * netfence.Second)
	if !sys.Bottleneck(d.Bottleneck).Monitoring() {
		t.Fatal("monitoring cycle not started")
	}
	start, atkStart := rcv.DeliveredBytes(), sink.Bytes
	eng.RunUntil(180 * netfence.Second)
	legit := float64(rcv.DeliveredBytes()-start) * 8 / 120
	atk := float64(sink.Bytes-atkStart) * 8 / 120
	if legit < 80_000 {
		t.Fatalf("legit throughput %.0f bps", legit)
	}
	if atk > 300_000 {
		t.Fatalf("attacker throughput %.0f bps above fair share band", atk)
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	exps := netfence.Experiments()
	for _, name := range []string{"fig7", "fig8", "fig9a", "fig9b", "fig10",
		"fig11", "fig13", "fig14", "theorem", "localize", "header",
		"ablate-hysteresis", "ablate-initrate", "ablate-bucket", "quota"} {
		if _, ok := exps[name]; !ok {
			t.Fatalf("experiment %q missing from registry", name)
		}
	}
	if _, err := netfence.RunExperiment("nope", "tiny"); err == nil {
		t.Fatal("bogus experiment accepted")
	}
	if _, err := netfence.RunExperiment("header", "bogus"); err == nil {
		t.Fatal("bogus scale accepted")
	}
	out, err := netfence.RunExperiment("header", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "28") {
		t.Fatalf("header experiment output missing worst-case size:\n%s", out)
	}
}

func TestFacadeJain(t *testing.T) {
	if got := netfence.Jain([]float64{1, 1, 1}); got != 1 {
		t.Fatalf("Jain = %v", got)
	}
}
