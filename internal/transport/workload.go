package transport

import (
	"math"

	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// FileClient repeatedly transfers a fixed-size file over fresh TCP
// connections — the §6.3.1 workload (a 20 KB file sent again and again).
// Each attempt opens a new connection, so each pays the connection-setup
// cost through the (possibly flooded) request channel.
type FileClient struct {
	Dst       packet.NodeID
	FileBytes int64
	Cfg       TCPConfig
	// OnResult observes each attempt's duration and outcome.
	OnResult func(fct sim.Time, ok bool)
	// Gap delays the next attempt after a completion (zero = immediate).
	Gap sim.Time

	host    *netsim.Host
	eng     *sim.Engine
	running bool
	cur     *TCPSender

	Completed int
	Failed    int
}

// NewFileClient creates a repeating client; call Start to begin.
func NewFileClient(host *netsim.Host, dst packet.NodeID, fileBytes int64, cfg TCPConfig) *FileClient {
	return &FileClient{Dst: dst, FileBytes: fileBytes, Cfg: cfg,
		host: host, eng: host.Network().Eng}
}

// Start begins the first transfer.
func (c *FileClient) Start() {
	c.running = true
	c.next()
}

// Stop prevents further transfers (the in-flight one finishes).
func (c *FileClient) Stop() {
	c.running = false
	if c.cur != nil {
		c.cur.Close()
	}
}

func (c *FileClient) next() {
	if !c.running {
		return
	}
	flow := c.host.Network().NextFlow()
	s := NewTCPSender(c.host, c.Dst, flow, c.FileBytes, c.Cfg)
	s.OnComplete = func(fct sim.Time, ok bool) {
		if ok {
			c.Completed++
		} else {
			c.Failed++
		}
		if c.OnResult != nil {
			c.OnResult(fct, ok)
		}
		c.cur = nil
		if c.Gap > 0 {
			c.eng.After(c.Gap, c.next)
		} else {
			c.next()
		}
	}
	c.cur = s
	s.Start()
}

// WebConfig parameterizes the web-like source of §6.3.2: file sizes drawn
// from a mixture of an exponential body and a Pareto tail (after Luo &
// Marin's web-traffic model), truncated to MaxBytes, with a uniform think
// time between transfers.
type WebConfig struct {
	TCP TCPConfig
	// BodyMeanBytes is the mean of the exponential body.
	BodyMeanBytes float64
	// TailShape and TailScaleBytes parameterize the Pareto tail.
	TailShape, TailScaleBytes float64
	// TailProb is the probability a file is drawn from the tail.
	TailProb float64
	// MinBytes and MaxBytes clamp file sizes (the paper caps at 150 KB).
	MinBytes, MaxBytes int64
	// ThinkMin and ThinkMax bound the uniform inter-transfer gap (the
	// paper uses 0.1-0.2 s).
	ThinkMin, ThinkMax sim.Time
}

// DefaultWeb returns the §6.3.2 web workload parameters.
func DefaultWeb() WebConfig {
	return WebConfig{
		TCP:            DefaultTCP(),
		BodyMeanBytes:  12_000,
		TailShape:      1.2,
		TailScaleBytes: 10_000,
		TailProb:       0.12,
		MinBytes:       1_000,
		MaxBytes:       150_000,
		ThinkMin:       100 * sim.Millisecond,
		ThinkMax:       200 * sim.Millisecond,
	}
}

// WebSource issues back-to-back small-file transfers with think times,
// each over a fresh TCP connection.
type WebSource struct {
	Dst packet.NodeID
	Cfg WebConfig
	// OnResult observes each transfer.
	OnResult func(bytes int64, fct sim.Time, ok bool)

	host    *netsim.Host
	eng     *sim.Engine
	running bool
	cur     *TCPSender

	Completed      int
	Failed         int
	DeliveredBytes int64
}

// NewWebSource creates a web-like source; call Start to begin.
func NewWebSource(host *netsim.Host, dst packet.NodeID, cfg WebConfig) *WebSource {
	return &WebSource{Dst: dst, Cfg: cfg, host: host, eng: host.Network().Eng}
}

// Start begins the first transfer.
func (w *WebSource) Start() {
	w.running = true
	w.next()
}

// Stop prevents further transfers.
func (w *WebSource) Stop() {
	w.running = false
	if w.cur != nil {
		w.cur.Close()
	}
}

// FileSize draws one file size from the mixture.
func (w *WebSource) FileSize() int64 {
	rng := w.eng.Rand
	var size float64
	if rng.Float64() < w.Cfg.TailProb {
		// Pareto: xm * U^(-1/alpha).
		size = w.Cfg.TailScaleBytes * math.Pow(rng.Float64(), -1/w.Cfg.TailShape)
	} else {
		size = w.Cfg.BodyMeanBytes * rng.ExpFloat64()
	}
	n := int64(size)
	if n < w.Cfg.MinBytes {
		n = w.Cfg.MinBytes
	}
	if n > w.Cfg.MaxBytes {
		n = w.Cfg.MaxBytes
	}
	return n
}

func (w *WebSource) next() {
	if !w.running {
		return
	}
	size := w.FileSize()
	flow := w.host.Network().NextFlow()
	s := NewTCPSender(w.host, w.Dst, flow, size, w.Cfg.TCP)
	s.OnComplete = func(fct sim.Time, ok bool) {
		if ok {
			w.Completed++
			w.DeliveredBytes += size
		} else {
			w.Failed++
		}
		if w.OnResult != nil {
			w.OnResult(size, fct, ok)
		}
		w.cur = nil
		think := w.Cfg.ThinkMin +
			sim.Time(w.eng.Rand.Int64N(int64(w.Cfg.ThinkMax-w.Cfg.ThinkMin)+1))
		w.eng.After(think, w.next)
	}
	w.cur = s
	s.Start()
}
