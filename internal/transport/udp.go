package transport

import (
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// UDPSource sends constant-rate UDP traffic — the paper's attack load is
// 1 Mbps of 1500 B packets per attacker. With OnTime/OffTime set it
// becomes the synchronized on-off source of the §6.3.2 strategic attacks:
// all sources constructed with the same phase turn on and off together,
// maximizing burst synchronization.
type UDPSource struct {
	Dst     packet.NodeID
	Flow    packet.FlowID
	RateBps int64
	PktSize int32
	// OnTime/OffTime enable on-off mode when both are positive.
	OnTime, OffTime sim.Time
	// OffRateBps, when positive, keeps a low-rate trickle flowing during
	// off phases — the strategic shape that harvests L-up feedback
	// between bursts (used by the hysteresis ablation).
	OffRateBps int64

	host    *netsim.Host
	eng     *sim.Engine
	running bool
	on      bool
	// ev is the owned inter-packet pacing event, reused for the whole
	// lifetime of the source (on-phase and trickle pacing alike);
	// flipEv is the owned on/off phase timer. Both live for the source's
	// lifetime so steady-state on-off traffic schedules without
	// allocating.
	ev     sim.Event
	flipEv sim.Event
	sent   uint64
}

// udpPace, udpTrickle and udpFlip dispatch the source's owned events.
type udpPace UDPSource

func (h *udpPace) OnEvent(sim.Time, any) { (*UDPSource)(h).sendNext() }

type udpTrickle UDPSource

func (h *udpTrickle) OnEvent(sim.Time, any) { (*UDPSource)(h).sendTrickle() }

type udpFlip UDPSource

func (h *udpFlip) OnEvent(sim.Time, any) { (*UDPSource)(h).phaseFlip() }

// NewUDPSource creates a constant-rate source; call Start to begin.
func NewUDPSource(host *netsim.Host, dst packet.NodeID, flow packet.FlowID, rateBps int64, pktSize int32) *UDPSource {
	return &UDPSource{
		Dst: dst, Flow: flow, RateBps: rateBps, PktSize: pktSize,
		host: host, eng: host.Network().Eng,
	}
}

// Start begins transmission (in the on phase for on-off sources).
func (u *UDPSource) Start() {
	u.running = true
	u.on = true
	u.ev.Cancel() // restart-safe: disarm any pacing left from a prior run
	u.flipEv.Cancel()
	if u.OnTime > 0 && u.OffTime > 0 {
		u.scheduleFlip(u.OnTime)
	}
	u.sendNext()
}

// Stop halts the source.
func (u *UDPSource) Stop() {
	u.running = false
	u.ev.Cancel()
	u.flipEv.Cancel()
}

// SentPackets returns the number of packets emitted.
func (u *UDPSource) SentPackets() uint64 { return u.sent }

func (u *UDPSource) scheduleFlip(after sim.Time) {
	u.eng.ScheduleEvent(&u.flipEv, u.eng.Now()+after, (*udpFlip)(u), nil)
}

// phaseFlip toggles the on/off phase and re-arms the owned flip timer.
func (u *UDPSource) phaseFlip() {
	if !u.running {
		return
	}
	u.on = !u.on
	if u.on {
		u.scheduleFlip(u.OnTime)
		u.ev.Cancel() // a pending trickle event would collide with the burst pacing
		u.sendNext()
	} else {
		u.scheduleFlip(u.OffTime)
		u.ev.Cancel()
		if u.OffRateBps > 0 {
			u.sendTrickle()
		}
	}
}

// sendTrickle emits at OffRateBps during off phases.
func (u *UDPSource) sendTrickle() {
	if !u.running || u.on {
		return
	}
	u.emit()
	u.eng.ScheduleEvent(&u.ev, u.eng.Now()+sim.TxTime(int(u.PktSize), u.OffRateBps), (*udpTrickle)(u), nil)
}

func (u *UDPSource) sendNext() {
	if !u.running || !u.on {
		return
	}
	u.emit()
	u.eng.ScheduleEvent(&u.ev, u.eng.Now()+sim.TxTime(int(u.PktSize), u.RateBps), (*udpPace)(u), nil)
}

func (u *UDPSource) emit() {
	p := u.host.NewPacket()
	p.Dst = u.Dst
	p.Flow = u.Flow
	p.Kind = packet.KindRegular
	p.Proto = packet.ProtoUDP
	p.Size = u.PktSize
	// UDP payload: everything beyond the stacked headers.
	p.Payload = u.PktSize - packet.SizeIPUDP - packet.SizeNetFenceMx - packet.SizePassport
	u.host.Send(p)
	u.sent++
}

// UDPSink counts traffic delivered to a destination (attacker throughput
// in the collusion experiments is measured here).
type UDPSink struct {
	Bytes   uint64
	Packets uint64
	// OnDeliver, when set, observes each delivery.
	OnDeliver func(p *packet.Packet)
}

// NewUDPSink creates and registers a sink for flow on host.
func NewUDPSink(host *netsim.Host, flow packet.FlowID) *UDPSink {
	s := &UDPSink{}
	host.Register(flow, s)
	return s
}

// Receive tallies the packet.
func (s *UDPSink) Receive(p *packet.Packet) {
	s.Bytes += uint64(p.Size)
	s.Packets++
	if s.OnDeliver != nil {
		s.OnDeliver(p)
	}
}

// RequestFlooder emits request packets at a fixed priority level and
// rate — the most effective unwanted-traffic attack against NetFence and
// TVA+ (§6.3.1). The host shim may further adjust the packets; under
// NetFence the access router's per-sender token bucket caps the admitted
// rate at the chosen level.
type RequestFlooder struct {
	Dst     packet.NodeID
	Flow    packet.FlowID
	RateBps int64
	Level   uint8

	host    *netsim.Host
	eng     *sim.Engine
	running bool
	ev      sim.Event
	sent    uint64
}

// flooderPace dispatches the flooder's owned pacing event.
type flooderPace RequestFlooder

func (h *flooderPace) OnEvent(sim.Time, any) { (*RequestFlooder)(h).sendNext() }

// NewRequestFlooder creates a flooder; call Start to begin.
func NewRequestFlooder(host *netsim.Host, dst packet.NodeID, flow packet.FlowID, rateBps int64, level uint8) *RequestFlooder {
	return &RequestFlooder{Dst: dst, Flow: flow, RateBps: rateBps, Level: level,
		host: host, eng: host.Network().Eng}
}

// Start begins the flood.
func (f *RequestFlooder) Start() {
	f.running = true
	f.ev.Cancel() // restart-safe: disarm pacing left from a prior run
	f.sendNext()
}

// Stop halts the flood.
func (f *RequestFlooder) Stop() {
	f.running = false
	f.ev.Cancel()
}

// SentPackets returns packets emitted.
func (f *RequestFlooder) SentPackets() uint64 { return f.sent }

func (f *RequestFlooder) sendNext() {
	if !f.running {
		return
	}
	p := f.host.NewPacket()
	p.Dst = f.Dst
	p.Flow = f.Flow
	p.Kind = packet.KindRequest
	p.Prio = f.Level
	p.Proto = packet.ProtoTCP
	p.Size = packet.SizeRequest
	p.TCP = packet.TCPInfo{Flags: packet.FlagSYN}
	f.host.Send(p)
	f.sent++
	f.eng.ScheduleEvent(&f.ev, f.eng.Now()+sim.TxTime(packet.SizeRequest, f.RateBps), (*flooderPace)(f), nil)
}
