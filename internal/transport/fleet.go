package transport

import (
	"math/rand/v2"

	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// FleetSource is the aggregate-sender transport: one paced source
// standing in for Senders statistically homogeneous UDP senders behind
// a single attachment host. It emits the fleet's combined offered load
// (Senders × per-sender rate) on one flow; the per-sender AIMD and
// rate-limiter state it would otherwise fan out lives in the access
// router, whose limiter parameters scale by the attachment node's
// SenderWeight in closed form.
//
// Packet pacing is jittered by a per-fleet deterministic RNG stream
// (derived from sim.KeyStream keyed by the attachment node, so the draw
// sequence is identical on every shard layout): a homogeneous fleet is
// statistically smooth, not phase-locked, and the jitter keeps the
// aggregate from degenerating into a perfectly periodic pulse train
// that would alias against queue and control-interval boundaries.
//
// Exact fan-out (per-sender hosts, flows split on demand from the same
// RNG stream discipline) is the workload layer's job: a fleet spec
// materializes individual senders when a probe, attack controller, or
// timeline mutation needs per-sender identity, and uses this aggregate
// path everywhere else.
type FleetSource struct {
	Dst     packet.NodeID
	Flow    packet.FlowID
	Senders int
	// RateBps is the PER-SENDER offered load; the source emits
	// Senders × RateBps on the wire.
	RateBps int64
	PktSize int32

	host    *netsim.Host
	eng     *sim.Engine
	rng     *rand.Rand
	running bool
	// ev is the owned pacing event; the steady-state emit loop
	// allocates nothing.
	ev   sim.Event
	sent uint64
}

// fleetPace dispatches the fleet's owned pacing event.
type fleetPace FleetSource

func (h *fleetPace) OnEvent(sim.Time, any) { (*FleetSource)(h).sendNext() }

// NewFleetSource creates an aggregate source for senders homogeneous
// UDP senders. rng must be the fleet's private deterministic stream —
// shard-invariant by construction (sim.KeyStream keyed by the
// attachment node's ID, or an identically-seeded PCG on a single
// engine). Call Start to begin.
func NewFleetSource(host *netsim.Host, dst packet.NodeID, flow packet.FlowID, senders int, rateBps int64, pktSize int32, rng *rand.Rand) *FleetSource {
	if senders < 1 {
		panic("transport: FleetSource needs at least one sender")
	}
	return &FleetSource{
		Dst: dst, Flow: flow, Senders: senders, RateBps: rateBps, PktSize: pktSize,
		host: host, eng: host.Network().Eng, rng: rng,
	}
}

// Start begins transmission.
func (f *FleetSource) Start() {
	f.running = true
	f.ev.Cancel() // restart-safe
	f.sendNext()
}

// Stop halts the source.
func (f *FleetSource) Stop() {
	f.running = false
	f.ev.Cancel()
}

// SentPackets returns the number of packets emitted.
func (f *FleetSource) SentPackets() uint64 { return f.sent }

func (f *FleetSource) sendNext() {
	if !f.running {
		return
	}
	f.emit()
	// Aggregate inter-packet gap, jittered uniformly over [0.5, 1.5) of
	// the nominal spacing: mean 1.0 preserves the offered load exactly,
	// and the fleet's RNG stream makes the draw order independent of
	// shard layout.
	gap := sim.TxTime(int(f.PktSize), f.RateBps*int64(f.Senders))
	jittered := sim.Time(float64(gap) * (0.5 + f.rng.Float64()))
	if jittered < 1 {
		jittered = 1
	}
	f.eng.ScheduleEvent(&f.ev, f.eng.Now()+jittered, (*fleetPace)(f), nil)
}

func (f *FleetSource) emit() {
	p := f.host.NewPacket()
	p.Dst = f.Dst
	p.Flow = f.Flow
	p.Kind = packet.KindRegular
	p.Proto = packet.ProtoUDP
	p.Size = f.PktSize
	p.Payload = f.PktSize - packet.SizeIPUDP - packet.SizeNetFenceMx - packet.SizePassport
	f.host.Send(p)
	f.sent++
}
