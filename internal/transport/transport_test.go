package transport

import (
	"testing"
	"testing/quick"

	"netfence/internal/aqm"
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// testNet builds h1 - r1 - r2 - h2 with a configurable bottleneck.
func testNet(seed uint64, bottleneck int64, qlimit int) (*netsim.Network, *netsim.Node, *netsim.Node) {
	eng := sim.New(seed)
	n := netsim.New(eng)
	h1 := n.NewHost("h1", 1)
	r1 := n.NewNode("r1", 1)
	r2 := n.NewNode("r2", 2)
	h2 := n.NewHost("h2", 2)
	n.Connect(h1, r1, 100_000_000, sim.Millisecond)
	mid, _ := n.Connect(r1, r2, bottleneck, 10*sim.Millisecond)
	n.Connect(r2, h2, 100_000_000, sim.Millisecond)
	if qlimit > 0 {
		mid.Q = aqm.NewDropTail(qlimit)
	}
	n.ComputeRoutes()
	return n, h1, h2
}

func TestTCPTransferCompletes(t *testing.T) {
	n, h1, h2 := testNet(1, 10_000_000, 0)
	r := NewTCPReceiver(h2.Host, 1)
	var fct sim.Time
	ok := false
	s := NewTCPSender(h1.Host, h2.ID, 1, 100_000, DefaultTCP())
	s.OnComplete = func(d sim.Time, o bool) { fct, ok = d, o }
	s.Start()
	n.Eng.Run()
	if !ok {
		t.Fatal("transfer did not complete")
	}
	if r.DeliveredBytes() != 100_000 {
		t.Fatalf("delivered %d bytes, want 100000", r.DeliveredBytes())
	}
	// 100 KB at 10 Mbps is ~80 ms of serialization + handshake + ~24 ms
	// RTT slow-start rounds; anything under 2 s is sane, under 24 ms is not.
	if fct < 24*sim.Millisecond || fct > 2*sim.Second {
		t.Fatalf("FCT = %v", fct)
	}
}

func TestTCPSurvivesHeavyLoss(t *testing.T) {
	// A 3-packet bottleneck buffer forces drops; the transfer must still
	// complete with every byte delivered exactly once, in order.
	n, h1, h2 := testNet(2, 1_000_000, 4500)
	r := NewTCPReceiver(h2.Host, 1)
	ok := false
	cfg := DefaultTCP()
	cfg.TransferTimeout = 0
	s := NewTCPSender(h1.Host, h2.ID, 1, 300_000, cfg)
	s.OnComplete = func(d sim.Time, o bool) { ok = o }
	s.Start()
	n.Eng.Run()
	if !ok {
		t.Fatal("transfer did not complete under loss")
	}
	if r.DeliveredBytes() != 300_000 {
		t.Fatalf("delivered %d, want 300000", r.DeliveredBytes())
	}
	if s.Retransmits() == 0 {
		t.Fatal("expected retransmissions under a 3-packet buffer")
	}
}

func TestTCPLongFlowFillsBottleneck(t *testing.T) {
	n, h1, h2 := testNet(3, 2_000_000, 50_000)
	r := NewTCPReceiver(h2.Host, 1)
	s := NewTCPSender(h1.Host, h2.ID, 1, -1, DefaultTCP())
	s.Start()
	n.Eng.RunUntil(30 * sim.Second)
	tput := float64(r.DeliveredBytes()) * 8 / 30
	// Goodput should reach at least 70% of the 2 Mbps bottleneck.
	if tput < 1_400_000 {
		t.Fatalf("long-flow goodput = %.0f bps, want > 1.4 Mbps", tput)
	}
	s.Close()
}

func TestTwoTCPFlowsShareFairly(t *testing.T) {
	eng := sim.New(4)
	n := netsim.New(eng)
	a := n.NewHost("a", 1)
	b := n.NewHost("b", 1)
	r1 := n.NewNode("r1", 1)
	r2 := n.NewNode("r2", 2)
	dst := n.NewHost("dst", 2)
	n.Connect(a, r1, 100_000_000, sim.Millisecond)
	n.Connect(b, r1, 100_000_000, sim.Millisecond)
	mid, _ := n.Connect(r1, r2, 4_000_000, 10*sim.Millisecond)
	mid.Q = aqm.NewDropTail(100_000)
	n.Connect(r2, dst, 100_000_000, sim.Millisecond)
	n.ComputeRoutes()
	ra := NewTCPReceiver(dst.Host, 1)
	rb := NewTCPReceiver(dst.Host, 2)
	NewTCPSender(a.Host, dst.ID, 1, -1, DefaultTCP()).Start()
	NewTCPSender(b.Host, dst.ID, 2, -1, DefaultTCP()).Start()
	eng.RunUntil(60 * sim.Second)
	ta, tb := float64(ra.DeliveredBytes()), float64(rb.DeliveredBytes())
	ratio := ta / tb
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("unfair share: %.0f vs %.0f (ratio %.2f)", ta, tb, ratio)
	}
}

func TestTCPSYNRetryAndAbort(t *testing.T) {
	// No receiver registered: SYNs go unanswered; the sender must abort
	// after 9 retries with exponential backoff (1+2+4+...+512 s).
	n, h1, h2 := testNet(5, 10_000_000, 0)
	ok, done := true, false
	cfg := DefaultTCP()
	cfg.TransferTimeout = 0 // isolate SYN abort
	s := NewTCPSender(h1.Host, h2.ID, 1, 20_000, cfg)
	s.OnComplete = func(d sim.Time, o bool) { ok, done = o, true }
	s.Start()
	n.Eng.Run()
	if !done || ok {
		t.Fatalf("done=%v ok=%v, want failed completion", done, ok)
	}
	// Sum of 1..512 s of backoff: abort no earlier than 60 s in.
	if n.Eng.Now() < 60*sim.Second {
		t.Fatalf("aborted too early: %v", n.Eng.Now())
	}
}

func TestTCPTransferTimeout(t *testing.T) {
	n, h1, h2 := testNet(6, 10_000_000, 0)
	ok, done := true, false
	cfg := DefaultTCP()
	cfg.TransferTimeout = 5 * sim.Second
	s := NewTCPSender(h1.Host, h2.ID, 1, 20_000, cfg)
	s.OnComplete = func(d sim.Time, o bool) { ok, done = o, true }
	s.Start()
	n.Eng.RunUntil(20 * sim.Second)
	if !done || ok {
		t.Fatalf("done=%v ok=%v, want timeout failure", done, ok)
	}
	if n.Eng.Now() > 20*sim.Second {
		t.Fatal("timeout did not fire by 5s")
	}
}

func TestReceiverReassemblesOutOfOrder(t *testing.T) {
	n, _, h2 := testNet(7, 10_000_000, 0)
	_ = n
	r := NewTCPReceiver(h2.Host, 9)
	delivered := 0
	r.OnDeliver = func(b int) { delivered += b }
	mk := func(seq int64, n int32) *packet.Packet {
		return &packet.Packet{
			Src: 0, Dst: h2.ID, Flow: 9, Proto: packet.ProtoTCP,
			Payload: n, Size: n + 92,
			TCP: packet.TCPInfo{Flags: packet.FlagACK, Seq: seq},
		}
	}
	r.Receive(mk(1000, 1000)) // out of order
	if delivered != 0 {
		t.Fatal("delivered out-of-order data")
	}
	r.Receive(mk(0, 1000)) // fills the hole; both deliver
	if delivered != 2000 || r.DeliveredBytes() != 2000 {
		t.Fatalf("delivered %d, want 2000", delivered)
	}
	r.Receive(mk(0, 1000)) // duplicate: no double delivery
	if r.DeliveredBytes() != 2000 {
		t.Fatal("duplicate segment double-delivered")
	}
}

func TestUDPSourceRate(t *testing.T) {
	n, h1, h2 := testNet(8, 100_000_000, 0)
	sink := NewUDPSink(h2.Host, 1)
	u := NewUDPSource(h1.Host, h2.ID, 1, 1_000_000, 1500)
	u.Start()
	n.Eng.RunUntil(10 * sim.Second)
	u.Stop()
	rate := float64(sink.Bytes) * 8 / 10
	if rate < 950_000 || rate > 1_050_000 {
		t.Fatalf("UDP rate = %.0f, want ~1 Mbps", rate)
	}
}

func TestOnOffSourceDutyCycle(t *testing.T) {
	n, h1, h2 := testNet(9, 100_000_000, 0)
	sink := NewUDPSink(h2.Host, 1)
	u := NewUDPSource(h1.Host, h2.ID, 1, 1_000_000, 1500)
	u.OnTime = sim.Second
	u.OffTime = 3 * sim.Second
	u.Start()
	n.Eng.RunUntil(40 * sim.Second)
	u.Stop()
	rate := float64(sink.Bytes) * 8 / 40
	// 25% duty cycle of 1 Mbps.
	if rate < 200_000 || rate > 300_000 {
		t.Fatalf("on-off average rate = %.0f, want ~250 kbps", rate)
	}
}

func TestRequestFlooderEmitsRequests(t *testing.T) {
	n, h1, h2 := testNet(10, 100_000_000, 0)
	var kinds []packet.Kind
	var prios []uint8
	sink := NewUDPSink(h2.Host, 1)
	sink.OnDeliver = func(p *packet.Packet) {
		kinds = append(kinds, p.Kind)
		prios = append(prios, p.Prio)
	}
	f := NewRequestFlooder(h1.Host, h2.ID, 1, 1_000_000, 6)
	f.Start()
	n.Eng.RunUntil(100 * sim.Millisecond)
	f.Stop()
	if len(kinds) == 0 {
		t.Fatal("no request packets delivered")
	}
	for i := range kinds {
		if kinds[i] != packet.KindRequest || prios[i] != 6 {
			t.Fatalf("packet %d: kind=%v prio=%d", i, kinds[i], prios[i])
		}
	}
	// ~1 Mbps of 92 B packets is ~1359 pkt/s; in 100 ms expect ~135.
	if len(kinds) < 100 || len(kinds) > 170 {
		t.Fatalf("flood rate off: %d packets in 100ms", len(kinds))
	}
}

func TestFileClientRepeats(t *testing.T) {
	n, h1, h2 := testNet(11, 10_000_000, 0)
	h2.Host.OnUnknownFlow = func(p *packet.Packet) netsim.Agent {
		return NewTCPReceiver(h2.Host, p.Flow)
	}
	c := NewFileClient(h1.Host, h2.ID, 20_000, DefaultTCP())
	var fcts []sim.Time
	c.OnResult = func(fct sim.Time, ok bool) {
		if ok {
			fcts = append(fcts, fct)
		}
	}
	c.Start()
	n.Eng.RunUntil(20 * sim.Second)
	c.Stop()
	if c.Completed < 10 {
		t.Fatalf("completed %d transfers in 20s, want many", c.Completed)
	}
	if c.Failed != 0 {
		t.Fatalf("failed %d transfers on a clean path", c.Failed)
	}
}

func TestWebSourceSizesWithinBounds(t *testing.T) {
	n, h1, _ := testNet(12, 10_000_000, 0)
	_ = n
	w := NewWebSource(h1.Host, 3, DefaultWeb())
	sawTail := false
	for i := 0; i < 5000; i++ {
		s := w.FileSize()
		if s < w.Cfg.MinBytes || s > w.Cfg.MaxBytes {
			t.Fatalf("file size %d out of [%d,%d]", s, w.Cfg.MinBytes, w.Cfg.MaxBytes)
		}
		if s > 60_000 {
			sawTail = true
		}
	}
	if !sawTail {
		t.Fatal("distribution has no heavy tail")
	}
}

func TestWebSourceTransfers(t *testing.T) {
	n, h1, h2 := testNet(13, 10_000_000, 0)
	h2.Host.OnUnknownFlow = func(p *packet.Packet) netsim.Agent {
		return NewTCPReceiver(h2.Host, p.Flow)
	}
	w := NewWebSource(h1.Host, h2.ID, DefaultWeb())
	w.Start()
	n.Eng.RunUntil(30 * sim.Second)
	w.Stop()
	if w.Completed < 20 {
		t.Fatalf("completed %d web transfers in 30s", w.Completed)
	}
	if w.Failed != 0 {
		t.Fatalf("failed %d web transfers on a clean path", w.Failed)
	}
}

// Property: across random tiny bottleneck buffers and file sizes, TCP
// delivers exactly the file, in order, no duplicates.
func TestTCPReliabilityProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prop := func(seed uint64, kb uint8, qpkts uint8) bool {
		size := int64(kb%64+1) * 1024
		qlim := (int(qpkts%6) + 2) * 1500
		n, h1, h2 := testNet(seed, 1_000_000, qlim)
		r := NewTCPReceiver(h2.Host, 1)
		ok := false
		cfg := DefaultTCP()
		cfg.TransferTimeout = 0
		s := NewTCPSender(h1.Host, h2.ID, 1, size, cfg)
		s.OnComplete = func(d sim.Time, o bool) { ok = o }
		s.Start()
		n.Eng.RunUntil(600 * sim.Second)
		return ok && r.DeliveredBytes() == size
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
