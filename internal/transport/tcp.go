// Package transport implements the end-to-end protocols driving the
// paper's workloads: a TCP Reno sender/receiver pair (slow start,
// congestion avoidance, fast retransmit, NewReno-style fast recovery,
// RFC 6298 RTO estimation, SYN backoff), constant-rate and synchronized
// on-off UDP sources, a repeating file-transfer client, and a web-like
// traffic source with a Pareto/exponential file-size mixture.
//
// Transports are defense-agnostic: they set addressing, protocol and
// payload fields, defaulting every packet to the regular channel; the
// host's defense shim reclassifies packets (e.g. SYNs become request
// packets under NetFence) and manages feedback or capabilities.
package transport

import (
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// TCPConfig tunes the TCP implementation. The defaults follow the paper's
// evaluation setup (§6.3.1).
type TCPConfig struct {
	// MSS is the payload bytes per full segment. Data packets are
	// MSS + 92 B of headers on the wire, 1500 B total by default.
	MSS int
	// InitRTO is the initial retransmission timeout, also used for the
	// SYN handshake (the paper sets the initial SYN RTO to 1 s).
	InitRTO sim.Time
	// MinRTO and MaxRTO clamp the adaptive timeout.
	MinRTO, MaxRTO sim.Time
	// MaxSYNRetries aborts connection setup after this many SYN
	// retransmissions (the paper uses nine).
	MaxSYNRetries int
	// MaxCwnd caps the congestion window in segments.
	MaxCwnd float64
	// TransferTimeout aborts a bounded transfer that has not completed
	// in time (the paper uses 200 s); zero disables the abort.
	TransferTimeout sim.Time
}

// DefaultTCP returns the evaluation configuration.
func DefaultTCP() TCPConfig {
	return TCPConfig{
		MSS:             packet.SizeData - packet.SizeRequest, // 1408 B payload
		InitRTO:         sim.Second,
		MinRTO:          200 * sim.Millisecond,
		MaxRTO:          60 * sim.Second,
		MaxSYNRetries:   9,
		MaxCwnd:         4096,
		TransferTimeout: 200 * sim.Second,
	}
}

// Sender states.
const (
	tcpIdle = iota
	tcpSynSent
	tcpEstablished
	tcpDone
	tcpFailed
)

// TCPSender transfers FileBytes of data (or streams forever when
// FileBytes < 0) to a TCPReceiver registered under the same flow at the
// destination host.
type TCPSender struct {
	Cfg  TCPConfig
	Dst  packet.NodeID
	Flow packet.FlowID
	// OnComplete fires once, with the transfer duration and whether it
	// succeeded (failures: SYN retries exhausted or transfer timeout).
	OnComplete func(fct sim.Time, ok bool)

	host      *netsim.Host
	eng       *sim.Engine
	fileBytes int64
	state     int
	started   sim.Time

	// SYN handshake. synEv is the owned timer storage; synTimer points at
	// it once armed (nil = never armed), preserving the tri-state the
	// retransmission logic keys off.
	synRetries int
	synRTO     sim.Time
	synEv      sim.Event
	synTimer   *sim.Event

	// Reliability and congestion control. Sequence numbers are byte
	// offsets into the transfer.
	sndUna, sndNxt int64
	cwnd, ssthresh float64
	dupAcks        int
	inFastRec      bool
	recover        int64

	// RTT estimation (RFC 6298), one sample in flight (Karn's rule).
	srtt, rttvar, rto sim.Time
	rttSeq            int64
	rttStart          sim.Time
	rttValid, hasSRTT bool
	rtoEv             sim.Event
	rtoTimer          *sim.Event
	transferTimer     *sim.Event
	retransmits       uint64
	timeouts          uint64
}

// tcpSYNTimer and tcpRTOTimer adapt the sender's owned timer events to
// sim.Handler without per-arm closures.
type tcpSYNTimer TCPSender

func (h *tcpSYNTimer) OnEvent(sim.Time, any) { (*TCPSender)(h).onSYNTimeout() }

type tcpRTOTimer TCPSender

func (h *tcpRTOTimer) OnEvent(sim.Time, any) { (*TCPSender)(h).onRTO() }

// NewTCPSender creates a sender on host for a transfer of fileBytes to
// dst under the given flow (negative fileBytes streams forever). Call
// Start to begin.
func NewTCPSender(host *netsim.Host, dst packet.NodeID, flow packet.FlowID, fileBytes int64, cfg TCPConfig) *TCPSender {
	s := &TCPSender{
		Cfg:       cfg,
		Dst:       dst,
		Flow:      flow,
		host:      host,
		eng:       host.Network().Eng,
		fileBytes: fileBytes,
		cwnd:      1,
		ssthresh:  64,
	}
	s.rto = cfg.InitRTO
	s.synRTO = cfg.InitRTO
	return s
}

// Start registers the sender and begins the handshake.
func (s *TCPSender) Start() {
	s.host.Register(s.Flow, s)
	s.state = tcpSynSent
	s.started = s.eng.Now()
	if s.Cfg.TransferTimeout > 0 && s.fileBytes >= 0 {
		s.transferTimer = s.eng.After(s.Cfg.TransferTimeout, func() { s.finish(false) })
	}
	s.sendSYN()
}

// AckedBytes returns the cumulatively acknowledged payload bytes.
func (s *TCPSender) AckedBytes() int64 { return s.sndUna }

// Retransmits returns the cumulative retransmitted segments.
func (s *TCPSender) Retransmits() uint64 { return s.retransmits }

// Timeouts returns the cumulative RTO events.
func (s *TCPSender) Timeouts() uint64 { return s.timeouts }

// Established reports whether the handshake has completed.
func (s *TCPSender) Established() bool { return s.state == tcpEstablished }

func (s *TCPSender) sendSYN() {
	p := s.host.NewPacket()
	p.Dst = s.Dst
	p.Flow = s.Flow
	p.Kind = packet.KindRegular
	p.Proto = packet.ProtoTCP
	p.Size = packet.SizeRequest
	p.TCP = packet.TCPInfo{Flags: packet.FlagSYN}
	s.host.Send(p)
	s.eng.ScheduleEvent(&s.synEv, s.eng.Now()+s.synRTO, (*tcpSYNTimer)(s), nil)
	s.synTimer = &s.synEv
}

func (s *TCPSender) onSYNTimeout() {
	if s.state != tcpSynSent {
		return
	}
	s.synRetries++
	if s.synRetries > s.Cfg.MaxSYNRetries {
		s.finish(false)
		return
	}
	s.synRTO *= 2
	if s.synRTO > s.Cfg.MaxRTO {
		s.synRTO = s.Cfg.MaxRTO
	}
	s.sendSYN()
}

// Receive handles SYN-ACKs and ACKs.
func (s *TCPSender) Receive(p *packet.Packet) {
	if p.Proto != packet.ProtoTCP {
		return
	}
	switch s.state {
	case tcpSynSent:
		if p.TCP.Flags&packet.FlagSYN != 0 && p.TCP.Flags&packet.FlagACK != 0 {
			if s.synTimer != nil {
				s.synTimer.Cancel()
			}
			s.state = tcpEstablished
			s.trySend()
		}
	case tcpEstablished:
		if p.TCP.Flags&packet.FlagACK != 0 && p.TCP.Flags&packet.FlagSYN == 0 {
			s.handleACK(p.TCP.Ack)
		}
	}
}

func (s *TCPSender) handleACK(ack int64) {
	switch {
	case ack > s.sndUna:
		acked := ack - s.sndUna
		s.sndUna = ack
		if s.rttValid && ack >= s.rttSeq {
			s.sampleRTT(s.eng.Now() - s.rttStart)
			s.rttValid = false
		}
		if s.inFastRec {
			if ack >= s.recover {
				s.inFastRec = false
				s.cwnd = s.ssthresh
				s.dupAcks = 0
			} else {
				// NewReno partial ACK: the next hole is lost too.
				s.retransmit(s.sndUna)
				s.cwnd -= float64(acked) / float64(s.Cfg.MSS)
				if s.cwnd < 1 {
					s.cwnd = 1
				}
			}
		} else {
			s.dupAcks = 0
			segs := float64(acked) / float64(s.Cfg.MSS)
			if s.cwnd < s.ssthresh {
				s.cwnd += segs // slow start
			} else {
				s.cwnd += segs / s.cwnd // congestion avoidance
			}
			if s.cwnd > s.Cfg.MaxCwnd {
				s.cwnd = s.Cfg.MaxCwnd
			}
		}
		if s.fileBytes >= 0 && s.sndUna >= s.fileBytes {
			s.finish(true)
			return
		}
		s.armRTO()
		s.trySend()
	case ack == s.sndUna && s.sndNxt > s.sndUna:
		s.dupAcks++
		if s.inFastRec {
			s.cwnd++ // window inflation
			s.trySend()
		} else if s.dupAcks == 3 {
			s.ssthresh = s.cwnd / 2
			if s.ssthresh < 2 {
				s.ssthresh = 2
			}
			s.recover = s.sndNxt
			s.retransmit(s.sndUna)
			s.cwnd = s.ssthresh + 3
			s.inFastRec = true
			s.armRTO()
		}
	}
}

func (s *TCPSender) sampleRTT(r sim.Time) {
	if !s.hasSRTT {
		s.srtt = r
		s.rttvar = r / 2
		s.hasSRTT = true
	} else {
		diff := s.srtt - r
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + r) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.Cfg.MinRTO {
		s.rto = s.Cfg.MinRTO
	}
	if s.rto > s.Cfg.MaxRTO {
		s.rto = s.Cfg.MaxRTO
	}
}

// trySend emits new segments permitted by the congestion window.
func (s *TCPSender) trySend() {
	if s.state != tcpEstablished {
		return
	}
	wnd := int64(s.cwnd * float64(s.Cfg.MSS))
	for s.sndNxt < s.sndUna+wnd {
		n := int64(s.Cfg.MSS)
		if s.fileBytes >= 0 {
			if rem := s.fileBytes - s.sndNxt; rem <= 0 {
				break
			} else if rem < n {
				n = rem
			}
		}
		s.emit(s.sndNxt, int32(n))
		if !s.rttValid {
			s.rttSeq = s.sndNxt + n
			s.rttStart = s.eng.Now()
			s.rttValid = true
		}
		s.sndNxt += n
	}
	if s.sndNxt > s.sndUna {
		s.armRTOIfIdle()
	}
}

func (s *TCPSender) retransmit(seq int64) {
	n := int64(s.Cfg.MSS)
	if s.fileBytes >= 0 {
		if rem := s.fileBytes - seq; rem < n {
			n = rem
		}
	}
	if n <= 0 {
		return
	}
	s.retransmits++
	s.emit(seq, int32(n))
}

func (s *TCPSender) emit(seq int64, n int32) {
	p := s.host.NewPacket()
	p.Dst = s.Dst
	p.Flow = s.Flow
	p.Kind = packet.KindRegular
	p.Proto = packet.ProtoTCP
	p.Size = n + packet.SizeRequest
	p.Payload = n
	p.TCP = packet.TCPInfo{Flags: packet.FlagACK, Seq: seq}
	s.host.Send(p)
}

func (s *TCPSender) armRTO() {
	if s.rtoTimer != nil {
		s.rtoTimer.Cancel()
		s.rtoTimer = nil
	}
	if s.sndNxt > s.sndUna {
		s.eng.ScheduleEvent(&s.rtoEv, s.eng.Now()+s.rto, (*tcpRTOTimer)(s), nil)
		s.rtoTimer = &s.rtoEv
	}
}

func (s *TCPSender) armRTOIfIdle() {
	// nil = never armed; Cancelled = disarmed. A timer that fired
	// naturally is neither and must not be re-armed here (onRTO re-arms
	// itself), exactly as with the old per-arm events.
	if s.rtoTimer == nil || s.rtoTimer.Cancelled() {
		s.eng.ScheduleEvent(&s.rtoEv, s.eng.Now()+s.rto, (*tcpRTOTimer)(s), nil)
		s.rtoTimer = &s.rtoEv
	}
}

func (s *TCPSender) onRTO() {
	if s.state != tcpEstablished || s.sndNxt == s.sndUna {
		return
	}
	s.timeouts++
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.cwnd = 1
	s.inFastRec = false
	s.dupAcks = 0
	s.rttValid = false
	s.rto *= 2
	if s.rto > s.Cfg.MaxRTO {
		s.rto = s.Cfg.MaxRTO
	}
	s.retransmit(s.sndUna)
	s.sndNxt = s.sndUna + int64(min(int64(s.Cfg.MSS), s.remainingAt(s.sndUna)))
	s.armRTO()
}

func (s *TCPSender) remainingAt(seq int64) int64 {
	if s.fileBytes < 0 {
		return int64(s.Cfg.MSS)
	}
	return s.fileBytes - seq
}

// finish completes or aborts the transfer, cancelling all timers and
// unregistering the agent.
func (s *TCPSender) finish(ok bool) {
	if s.state == tcpDone || s.state == tcpFailed {
		return
	}
	if ok {
		s.state = tcpDone
	} else {
		s.state = tcpFailed
	}
	s.Close()
	if s.OnComplete != nil {
		s.OnComplete(s.eng.Now()-s.started, ok)
	}
}

// Close cancels timers and unregisters the sender from its host.
func (s *TCPSender) Close() {
	for _, ev := range []*sim.Event{s.synTimer, s.rtoTimer, s.transferTimer} {
		if ev != nil {
			ev.Cancel()
		}
	}
	s.host.Unregister(s.Flow)
	if s.state == tcpSynSent || s.state == tcpEstablished {
		s.state = tcpIdle
	}
}

// TCPReceiver is the passive side: it answers SYNs, acknowledges data
// cumulatively, and buffers out-of-order segments.
type TCPReceiver struct {
	Flow packet.FlowID
	Peer packet.NodeID
	// OnDeliver, when set, observes each in-order payload delivery.
	OnDeliver func(bytes int)

	host      *netsim.Host
	rcvNxt    int64
	ooo       map[int64]int32 // seq -> length
	delivered int64
}

// NewTCPReceiver creates and registers a receiver for flow on host.
func NewTCPReceiver(host *netsim.Host, flow packet.FlowID) *TCPReceiver {
	r := &TCPReceiver{Flow: flow, host: host, ooo: make(map[int64]int32)}
	host.Register(flow, r)
	return r
}

// DeliveredBytes returns cumulative in-order payload bytes.
func (r *TCPReceiver) DeliveredBytes() int64 { return r.delivered }

// Receive handles SYNs and data segments.
func (r *TCPReceiver) Receive(p *packet.Packet) {
	if p.Proto != packet.ProtoTCP {
		return
	}
	r.Peer = p.Src
	if p.IsSYN() {
		r.reply(packet.FlagSYN|packet.FlagACK, 0)
		return
	}
	if p.Payload <= 0 {
		return // pure ACK toward a receiver: ignore
	}
	seq, n := p.TCP.Seq, p.Payload
	switch {
	case seq == r.rcvNxt:
		r.advance(n)
		// Drain any contiguous out-of-order segments.
		for {
			n2, ok := r.ooo[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.ooo, r.rcvNxt)
			r.advance(n2)
		}
	case seq > r.rcvNxt:
		r.ooo[seq] = n
	}
	r.reply(packet.FlagACK, r.rcvNxt)
}

func (r *TCPReceiver) advance(n int32) {
	r.rcvNxt += int64(n)
	r.delivered += int64(n)
	if r.OnDeliver != nil {
		r.OnDeliver(int(n))
	}
}

func (r *TCPReceiver) reply(flags uint8, ack int64) {
	p := r.host.NewPacket()
	p.Dst = r.Peer
	p.Flow = r.Flow
	p.Kind = packet.KindRegular
	p.Proto = packet.ProtoTCP
	p.Size = packet.SizeACK
	p.TCP = packet.TCPInfo{Flags: flags, Ack: ack}
	r.host.Send(p)
}

// Close unregisters the receiver.
func (r *TCPReceiver) Close() { r.host.Unregister(r.Flow) }

func min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
