package feedback

import (
	"math/rand/v2"

	"netfence/internal/cmac"
)

// KeyRing holds an access router's time-varying secret Ka (§3.2). The
// router stamps with the current key and validates against both the
// current and the previous key, so feedback stamped just before a rotation
// remains valid for the freshness window w.
type KeyRing struct {
	current *cmac.CMAC
	prev    *cmac.CMAC
	// epoch counts rotations. Verdicts precomputed off the owning
	// goroutine (the sharded validation pipeline) are tagged with the
	// epoch they were computed under; a consumer seeing a different
	// epoch discards the cache and validates inline.
	epoch uint64

	// Material, when set, is a dedicated stream the actual key bytes are
	// drawn from; Rotate still burns the same number of draws from its
	// rng argument. Sharded runs use this split: every shard replica of
	// one logical router rotates on its own engine's stream (keeping
	// those streams position-aligned with the single-engine run for the
	// value-sensitive consumers sharing them, like RED), while the key
	// bytes come from a per-router stream identical on every replica —
	// so a bottleneck shard validates exactly what a source shard
	// stamped. Key bytes never influence behavior beyond MAC equality,
	// so results are unaffected by which stream supplies them.
	Material *rand.Rand
}

// NewKeyRing creates a key ring with a random initial key drawn from rng.
func NewKeyRing(rng *rand.Rand) *KeyRing {
	r := &KeyRing{}
	r.current = cmac.New(randomKey(rng))
	r.prev = r.current
	return r
}

// NewKeyRingFromKey creates a key ring with a fixed initial key, for tests
// and benchmarks that need reproducible MACs.
func NewKeyRingFromKey(key cmac.Key) *KeyRing {
	c := cmac.New(key)
	return &KeyRing{current: c, prev: c}
}

func randomKey(rng *rand.Rand) cmac.Key {
	var k cmac.Key
	for i := 0; i < 16; i += 8 {
		v := rng.Uint64()
		for j := 0; j < 8; j++ {
			k[i+j] = byte(v >> (8 * j))
		}
	}
	return k
}

// Rotate replaces the current key with a fresh one, keeping the old key
// for validation. The caller drives rotation on a timer whose period must
// exceed the feedback expiration time w. With Material set, rng is
// drawn from (and discarded) to keep its stream position aligned while
// the key bytes come from the Material stream.
func (r *KeyRing) Rotate(rng *rand.Rand) {
	key := randomKey(rng)
	if r.Material != nil {
		key = randomKey(r.Material)
	}
	r.prev = r.current
	r.current = cmac.New(key)
	r.epoch++
}

// Epoch returns the rotation count: the key-epoch identity a
// precomputed verdict is only valid under.
func (r *KeyRing) Epoch() uint64 { return r.epoch }

// Current returns the stamping key.
func (r *KeyRing) Current() *cmac.CMAC { return r.current }

// Keys returns the current and previous validation keys; prev equals
// current before the first rotation. Hot paths iterate the pair directly
// instead of going through Check, whose predicate closure would allocate
// per packet.
func (r *KeyRing) Keys() (current, prev *cmac.CMAC) { return r.current, r.prev }

// Check runs a validation predicate against the current key, then the
// previous key, accepting if either succeeds — the rotation grace period.
func (r *KeyRing) Check(check func(*cmac.CMAC) bool) bool {
	if check(r.current) {
		return true
	}
	if r.prev != r.current && check(r.prev) {
		return true
	}
	return false
}
