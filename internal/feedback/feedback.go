// Package feedback implements NetFence's secure congestion policing
// feedback (§4.4 of the paper): the unforgeable nop, L-up (incr) and
// L-down (decr) tokens that bottleneck routers stamp into packets and
// access routers validate.
//
// Three MAC constructions are used, mirroring Eq. (1)-(3):
//
//	token_nop  = MAC_Ka (src, dst, ts, link_null, nop)
//	token_Lup  = MAC_Ka (src, dst, ts, L, mon, incr)          (+ token_nop field)
//	token_Ldown= MAC_Kai(src, dst, ts, L, mon, decr, token_nop)
//
// Ka is a periodically rotated secret known only to the sender's access
// router; Kai is the pairwise key shared between the bottleneck's AS and
// the sender's AS (established by Passport's in-band key exchange).
package feedback

import (
	"encoding/binary"

	"netfence/internal/cmac"
	"netfence/internal/packet"
)

// macInput builds the canonical byte string MACed by Eq. (1)-(3). A fixed
// layout (rather than ad-hoc concatenation) prevents ambiguity attacks
// between the three constructions: the mode/action bytes always occupy the
// same offsets.
func macInput(buf *[24]byte, src, dst packet.NodeID, ts uint32, link packet.LinkID, mode packet.FBMode, action packet.FBAction, tokennop [4]byte) []byte {
	binary.BigEndian.PutUint32(buf[0:], uint32(src))
	binary.BigEndian.PutUint32(buf[4:], uint32(dst))
	binary.BigEndian.PutUint32(buf[8:], ts)
	binary.BigEndian.PutUint32(buf[12:], uint32(link))
	buf[16] = byte(mode)
	buf[17] = byte(action)
	copy(buf[18:22], tokennop[:])
	// Bytes 22-23 are zero padding; CMAC handles the full 24-byte block.
	buf[22], buf[23] = 0, 0
	return buf[:]
}

// NopMAC computes token_nop (Eq. 1).
func NopMAC(ka *cmac.CMAC, src, dst packet.NodeID, ts uint32) [4]byte {
	var buf [24]byte
	return ka.Sum32(macInput(&buf, src, dst, ts, 0, packet.FBNop, packet.ActIncr, [4]byte{}))
}

// IncrMAC computes token_Lup (Eq. 2).
func IncrMAC(ka *cmac.CMAC, src, dst packet.NodeID, ts uint32, link packet.LinkID) [4]byte {
	var buf [24]byte
	return ka.Sum32(macInput(&buf, src, dst, ts, link, packet.FBMon, packet.ActIncr, [4]byte{}))
}

// DecrMAC computes token_Ldown (Eq. 3). It covers token_nop so that a
// malicious downstream router cannot overwrite the feedback: it never saw
// token_nop, which the stamping router erases from the packet.
func DecrMAC(kai *cmac.CMAC, src, dst packet.NodeID, ts uint32, link packet.LinkID, tokennop [4]byte) [4]byte {
	var buf [24]byte
	return kai.Sum32(macInput(&buf, src, dst, ts, link, packet.FBMon, packet.ActDecr, tokennop))
}

// StampNop writes fresh nop feedback into p (access router, §4.2/§4.3.3).
func StampNop(ka *cmac.CMAC, p *packet.Packet, nowSec uint32) {
	p.FB = packet.Feedback{
		Mode:   packet.FBNop,
		Link:   0,
		Action: packet.ActIncr,
		TS:     nowSec,
		MAC:    NopMAC(ka, p.Src, p.Dst, nowSec),
	}
}

// StampIncr writes fresh L-up feedback for link into p (access router,
// §4.3.3: presented mon feedback is reset to L-up on forwarding). The
// token_nop field is refilled so a downstream bottleneck can stamp L-down.
func StampIncr(ka *cmac.CMAC, p *packet.Packet, nowSec uint32, link packet.LinkID) {
	p.FB = packet.Feedback{
		Mode:     packet.FBMon,
		Link:     link,
		Action:   packet.ActIncr,
		TS:       nowSec,
		MAC:      IncrMAC(ka, p.Src, p.Dst, nowSec, link),
		TokenNop: NopMAC(ka, p.Src, p.Dst, nowSec),
	}
}

// StampDecr overwrites p's feedback with L-down for link (bottleneck
// router, §4.3.2). The token_nop needed by Eq. 3 is taken from the packet:
// the MAC field itself if the packet carries nop feedback, the TokenNop
// field if it carries L-up. The field is erased afterwards so downstream
// routers cannot forge further feedback. The ts field is left untouched;
// only access routers set timestamps.
func StampDecr(kai *cmac.CMAC, p *packet.Packet, link packet.LinkID) {
	var tokennop [4]byte
	if p.FB.Mode == packet.FBNop {
		tokennop = p.FB.MAC
	} else {
		tokennop = p.FB.TokenNop
	}
	p.FB = packet.Feedback{
		Mode:     packet.FBMon,
		Link:     link,
		Action:   packet.ActDecr,
		TS:       p.FB.TS,
		MAC:      DecrMAC(kai, p.Src, p.Dst, p.FB.TS, link, tokennop),
		TokenNop: [4]byte{},
	}
}

// MultiMAC computes one step of the Appendix B.1 chained token: the MAC
// over the connection metadata, one bottleneck's feedback, and the
// previous token value (Eq. 5 of the appendix). The chain starts from the
// access router's token (Eq. 4, computed by NopMAC) and covers every
// bottleneck's feedback in path order, so no downstream router can tamper
// with an upstream link's entry.
func MultiMAC(k *cmac.CMAC, src, dst packet.NodeID, ts uint32, link packet.LinkID, action packet.FBAction, prev [4]byte) [4]byte {
	var buf [24]byte
	return k.Sum32(macInput(&buf, src, dst, ts, link, packet.FBMon, action, prev))
}

// Verdict is the result of validating presented feedback.
type Verdict uint8

// Validation outcomes.
const (
	// Invalid feedback demotes the packet to the request channel (§4.4).
	Invalid Verdict = iota
	// ValidNop lets the packet pass without rate limiting.
	ValidNop
	// ValidMon subjects the packet to the rate limiter for FB.Link.
	ValidMon
)

// KaiLookup resolves the pairwise key shared with the AS owning a link
// (the paper's IP-to-AS mapping plus Passport key table). It returns nil
// when the link's AS is unknown, which invalidates the feedback.
type KaiLookup func(link packet.LinkID) *cmac.CMAC

// Validate checks the presented feedback in p against the access router's
// key ring and the AS-pairwise keys, applying the freshness window w
// (|now - ts| > w seconds invalidates, §4.4). It must be called before the
// access router rewrites the feedback.
func Validate(ring *KeyRing, kai KaiLookup, p *packet.Packet, nowSec uint32, wSec uint32) Verdict {
	cur, prev := ring.Keys()
	return ComputeVerdict(cur, prev, kai, p, nowSec, wSec)
}

// ComputeVerdict is Validate's pure core over explicit keys: the same
// verdict, computed from the current and previous validation keys
// directly instead of the ring. It touches no shared mutable state, so
// a batch worker validating packets off the owning goroutine can call
// it with private CMAC clones (instances are not concurrent-safe) and
// cache the verdict for the owning goroutine to apply later — the
// verdict-compute/verdict-apply split the sharded validation pipeline
// builds on. Pass prev == cur before the first rotation, matching
// KeyRing.Keys.
func ComputeVerdict(cur, prev *cmac.CMAC, kai KaiLookup, p *packet.Packet, nowSec uint32, wSec uint32) Verdict {
	fb := &p.FB
	if diff := int64(nowSec) - int64(fb.TS); diff > int64(wSec) || diff < -int64(wSec) {
		return Invalid
	}
	// Check against the current key, then (if rotated) the previous one —
	// KeyRing.Check's contract, unrolled so the per-packet hot path does
	// not allocate a predicate closure.
	switch {
	case fb.Mode == packet.FBNop:
		if NopMAC(cur, p.Src, p.Dst, fb.TS) == fb.MAC {
			return ValidNop
		}
		if prev != cur && NopMAC(prev, p.Src, p.Dst, fb.TS) == fb.MAC {
			return ValidNop
		}
	case fb.Action == packet.ActIncr:
		if IncrMAC(cur, p.Src, p.Dst, fb.TS, fb.Link) == fb.MAC {
			return ValidMon
		}
		if prev != cur && IncrMAC(prev, p.Src, p.Dst, fb.TS, fb.Link) == fb.MAC {
			return ValidMon
		}
	default: // mon + decr
		key := kai(fb.Link)
		if key == nil {
			return Invalid
		}
		if DecrMAC(key, p.Src, p.Dst, fb.TS, fb.Link, NopMAC(cur, p.Src, p.Dst, fb.TS)) == fb.MAC {
			return ValidMon
		}
		if prev != cur && DecrMAC(key, p.Src, p.Dst, fb.TS, fb.Link, NopMAC(prev, p.Src, p.Dst, fb.TS)) == fb.MAC {
			return ValidMon
		}
	}
	return Invalid
}

// ToReturned copies the network-stamped feedback of a received packet into
// a Returned value for handing back to the sender (receiver shim, §3.1
// step 4).
func ToReturned(fb packet.Feedback) packet.Returned {
	return packet.Returned{
		Present: true,
		Mode:    fb.Mode,
		Link:    fb.Link,
		Action:  fb.Action,
		TS:      fb.TS,
		MAC:     fb.MAC,
	}
}

// ToPresented converts returned feedback into the feedback the sender
// presents in its next packets' forward header.
func ToPresented(r packet.Returned) packet.Feedback {
	return packet.Feedback{
		Mode:   r.Mode,
		Link:   r.Link,
		Action: r.Action,
		TS:     r.TS,
		MAC:    r.MAC,
	}
}
