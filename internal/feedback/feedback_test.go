package feedback

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"netfence/internal/cmac"
	"netfence/internal/packet"
)

func testKeys() (*KeyRing, *cmac.CMAC) {
	var ka, kai cmac.Key
	ka[0], kai[0] = 1, 2
	return NewKeyRingFromKey(ka), cmac.New(kai)
}

func kaiAlways(k *cmac.CMAC) KaiLookup {
	return func(packet.LinkID) *cmac.CMAC { return k }
}

func newPkt(src, dst packet.NodeID) *packet.Packet {
	return &packet.Packet{Src: src, Dst: dst, Kind: packet.KindRegular, Size: 1500}
}

const w = 4 // feedback expiration in seconds, Figure 3

func TestNopRoundTrip(t *testing.T) {
	ring, kai := testKeys()
	p := newPkt(10, 20)
	StampNop(ring.Current(), p, 100)
	if !p.FB.IsNop() {
		t.Fatal("stamped feedback is not nop")
	}
	if got := Validate(ring, kaiAlways(kai), p, 100, w); got != ValidNop {
		t.Fatalf("Validate = %v, want ValidNop", got)
	}
	// Fresh within w on either side.
	if got := Validate(ring, kaiAlways(kai), p, 104, w); got != ValidNop {
		t.Fatalf("Validate at ts+w = %v, want ValidNop", got)
	}
	if got := Validate(ring, kaiAlways(kai), p, 105, w); got != Invalid {
		t.Fatalf("Validate at ts+w+1 = %v, want Invalid (expired)", got)
	}
}

func TestIncrRoundTrip(t *testing.T) {
	ring, kai := testKeys()
	p := newPkt(10, 20)
	const link packet.LinkID = 7
	StampIncr(ring.Current(), p, 200, link)
	if !p.FB.IsMon() || p.FB.Action != packet.ActIncr || p.FB.Link != link {
		t.Fatalf("bad stamp: %+v", p.FB)
	}
	if p.FB.TokenNop != NopMAC(ring.Current(), 10, 20, 200) {
		t.Fatal("TokenNop not refilled by StampIncr")
	}
	if got := Validate(ring, kaiAlways(kai), p, 201, w); got != ValidMon {
		t.Fatalf("Validate = %v, want ValidMon", got)
	}
}

func TestDecrFromNop(t *testing.T) {
	ring, kai := testKeys()
	p := newPkt(10, 20)
	StampNop(ring.Current(), p, 300)
	StampDecr(kai, p, 9)
	if p.FB.Action != packet.ActDecr || p.FB.Link != 9 || p.FB.TS != 300 {
		t.Fatalf("bad decr stamp: %+v", p.FB)
	}
	if p.FB.TokenNop != ([4]byte{}) {
		t.Fatal("token_nop not erased after L-down stamp")
	}
	if got := Validate(ring, kaiAlways(kai), p, 301, w); got != ValidMon {
		t.Fatalf("Validate = %v, want ValidMon", got)
	}
}

func TestDecrFromIncr(t *testing.T) {
	ring, kai := testKeys()
	p := newPkt(10, 20)
	StampIncr(ring.Current(), p, 300, 9)
	StampDecr(kai, p, 9)
	if got := Validate(ring, kaiAlways(kai), p, 302, w); got != ValidMon {
		t.Fatalf("Validate = %v, want ValidMon", got)
	}
}

func TestForgeryRejected(t *testing.T) {
	ring, kai := testKeys()
	lookup := kaiAlways(kai)

	// A sender inventing incr feedback without the key fails.
	p := newPkt(10, 20)
	p.FB = packet.Feedback{Mode: packet.FBMon, Link: 9, Action: packet.ActIncr, TS: 100}
	if got := Validate(ring, lookup, p, 100, w); got != Invalid {
		t.Fatalf("forged incr accepted: %v", got)
	}

	// Tampering any field of valid feedback invalidates it.
	StampIncr(ring.Current(), p, 100, 9)
	cases := []func(q *packet.Packet){
		func(q *packet.Packet) { q.FB.Link = 10 },
		func(q *packet.Packet) { q.FB.TS++ },
		func(q *packet.Packet) { q.FB.Action = packet.ActDecr },
		func(q *packet.Packet) { q.FB.MAC[0] ^= 1 },
		func(q *packet.Packet) { q.Src++ },
		func(q *packet.Packet) { q.Dst++ },
	}
	for i, mutate := range cases {
		q := *p
		mutate(&q)
		if got := Validate(ring, lookup, &q, 100, w); got != Invalid {
			t.Errorf("case %d: tampered feedback accepted: %v", i, got)
		}
	}
}

// TestDecrHideUpgradeRejected: a malicious receiver cannot "upgrade"
// L-down feedback to L-up by flipping the action bit, because incr and
// decr use different MAC constructions and keys.
func TestDecrHideUpgradeRejected(t *testing.T) {
	ring, kai := testKeys()
	p := newPkt(10, 20)
	StampNop(ring.Current(), p, 100)
	StampDecr(kai, p, 9)
	p.FB.Action = packet.ActIncr
	if got := Validate(ring, kaiAlways(kai), p, 100, w); got != Invalid {
		t.Fatalf("action-flipped decr accepted: %v", got)
	}
}

// TestReplayOnOtherConnection: feedback is bound to (src, dst) and cannot
// be reused by a different sender or toward a different destination.
func TestReplayOnOtherConnection(t *testing.T) {
	ring, kai := testKeys()
	p := newPkt(10, 20)
	StampIncr(ring.Current(), p, 100, 9)
	q := *p
	q.Src = 11 // different sender presents the same feedback
	if got := Validate(ring, kaiAlways(kai), &q, 100, w); got != Invalid {
		t.Fatalf("cross-sender replay accepted: %v", got)
	}
	r := *p
	r.Dst = 21
	if got := Validate(ring, kaiAlways(kai), &r, 100, w); got != Invalid {
		t.Fatalf("cross-destination replay accepted: %v", got)
	}
}

// TestMaliciousDownstreamCannotRestamp: after a bottleneck stamps L-down
// and erases token_nop, a downstream router (which knows Kai but not the
// erased token) cannot replace the feedback with valid L-down for its own
// link while preserving validity of a forged token_nop path. We model the
// attack as restamping with a zero token_nop.
func TestMaliciousDownstreamCannotRestamp(t *testing.T) {
	ring, kai := testKeys()
	p := newPkt(10, 20)
	StampNop(ring.Current(), p, 100)
	StampDecr(kai, p, 9)
	// Downstream router overwrites with its own link using the (now-zero)
	// TokenNop field, as StampDecr would if called again.
	StampDecr(kai, p, 13)
	if got := Validate(ring, kaiAlways(kai), p, 100, w); got != Invalid {
		t.Fatalf("downstream restamp accepted: %v", got)
	}
}

func TestKeyRotationGrace(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	ring := NewKeyRing(rng)
	_, kai := testKeys()
	p := newPkt(10, 20)
	StampNop(ring.Current(), p, 100)
	ring.Rotate(rng)
	if got := Validate(ring, kaiAlways(kai), p, 101, w); got != ValidNop {
		t.Fatalf("feedback stamped before rotation rejected: %v", got)
	}
	ring.Rotate(rng)
	if got := Validate(ring, kaiAlways(kai), p, 101, w); got != Invalid {
		t.Fatalf("feedback survived two rotations: %v", got)
	}
}

func TestUnknownLinkASInvalid(t *testing.T) {
	ring, kai := testKeys()
	p := newPkt(10, 20)
	StampNop(ring.Current(), p, 100)
	StampDecr(kai, p, 9)
	noLookup := func(packet.LinkID) *cmac.CMAC { return nil }
	if got := Validate(ring, noLookup, p, 100, w); got != Invalid {
		t.Fatalf("decr with unknown link AS accepted: %v", got)
	}
}

func TestReturnedRoundTrip(t *testing.T) {
	ring, kai := testKeys()
	p := newPkt(10, 20)
	StampIncr(ring.Current(), p, 100, 9)
	ret := ToReturned(p.FB)
	// The sender presents the returned feedback on its next packet.
	next := newPkt(10, 20)
	next.FB = ToPresented(ret)
	if got := Validate(ring, kaiAlways(kai), next, 101, w); got != ValidMon {
		t.Fatalf("presented returned feedback rejected: %v", got)
	}
}

// TestValidateProperty fuzzes stamping parameters: honestly stamped
// feedback always validates within the freshness window, under all three
// constructions.
func TestValidateProperty(t *testing.T) {
	ring, kai := testKeys()
	lookup := kaiAlways(kai)
	prop := func(src, dst int32, ts uint32, link uint32, mode uint8) bool {
		if ts > 1<<30 {
			ts %= 1 << 30
		}
		p := newPkt(packet.NodeID(src), packet.NodeID(dst))
		l := packet.LinkID(link%1000 + 1)
		switch mode % 3 {
		case 0:
			StampNop(ring.Current(), p, ts)
			return Validate(ring, lookup, p, ts, w) == ValidNop
		case 1:
			StampIncr(ring.Current(), p, ts, l)
			return Validate(ring, lookup, p, ts, w) == ValidMon
		default:
			StampNop(ring.Current(), p, ts)
			StampDecr(kai, p, l)
			return Validate(ring, lookup, p, ts, w) == ValidMon
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestExpiredStaleProperty: feedback older than w seconds never validates.
func TestExpiredStaleProperty(t *testing.T) {
	ring, kai := testKeys()
	lookup := kaiAlways(kai)
	prop := func(age uint8) bool {
		ts := uint32(1000)
		p := newPkt(1, 2)
		StampIncr(ring.Current(), p, ts, 3)
		now := ts + uint32(age)
		got := Validate(ring, lookup, p, now, w)
		if age <= w {
			return got == ValidMon
		}
		return got == Invalid
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkValidateIncr(b *testing.B) {
	ring, kai := testKeys()
	lookup := kaiAlways(kai)
	p := newPkt(10, 20)
	StampIncr(ring.Current(), p, 100, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Validate(ring, lookup, p, 101, w) != ValidMon {
			b.Fatal("invalid")
		}
	}
}

func BenchmarkStampDecr(b *testing.B) {
	ring, kai := testKeys()
	p := newPkt(10, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StampNop(ring.Current(), p, 100)
		StampDecr(kai, p, 9)
	}
}
