package defense

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"netfence/internal/netsim"
)

// BuildOptions carries optional construction parameters to a Builder.
type BuildOptions struct {
	// Config is a system-specific configuration value whose concrete
	// type is defined by the registered builder (core.Config for
	// "netfence"). nil selects the system's defaults. Builders must
	// reject configuration types they do not understand.
	Config any
}

// Builder constructs a defense system over a network.
type Builder func(net *netsim.Network, opts BuildOptions) (System, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// Canonical normalizes a registry name: whitespace trimmed, lower-cased,
// trailing "+" stripped — so "TVA+", "tva" and "NetFence" all resolve to
// their registered systems.
func Canonical(name string) string {
	return strings.TrimSuffix(strings.ToLower(strings.TrimSpace(name)), "+")
}

// Register makes a defense system constructible by name through Build.
// The in-tree systems self-register from init functions ("netfence" in
// internal/core; "tva", "stopit", "fq" and "none" in internal/baseline);
// third-party systems may register under any unclaimed name. Register
// panics on an empty name, a nil builder, or a duplicate registration —
// all programmer errors.
func Register(name string, b Builder) {
	key := Canonical(name)
	if key == "" {
		panic("defense: Register with empty name")
	}
	if b == nil {
		panic(fmt.Sprintf("defense: Register(%q) with nil builder", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("defense: Register(%q) called twice", key))
	}
	registry[key] = b
}

// Build resolves name in the registry and constructs the system over net.
func Build(name string, net *netsim.Network, opts BuildOptions) (System, error) {
	regMu.RLock()
	b := registry[Canonical(name)]
	regMu.RUnlock()
	if b == nil {
		return nil, fmt.Errorf("defense: unknown system %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return b(net, opts)
}

// Names returns the sorted canonical names of every registered system.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
