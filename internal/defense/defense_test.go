// External test package: defense itself cannot import the systems that
// implement it (they import defense), but an external test package can,
// so the registry and the Policy.Deny contract are verified here against
// the real shims.
package defense_test

import (
	"testing"

	"netfence/internal/baseline"
	"netfence/internal/core"
	"netfence/internal/defense"
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
	"netfence/internal/topo"
	"netfence/internal/transport"
)

func TestCanonical(t *testing.T) {
	cases := map[string]string{
		"netfence": "netfence",
		"NetFence": "netfence",
		"TVA+":     "tva",
		" tva ":    "tva",
		"StopIt":   "stopit",
		"FQ":       "fq",
		"None":     "none",
	}
	for in, want := range cases {
		if got := defense.Canonical(in); got != want {
			t.Fatalf("Canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRegistryResolvesAllSystems verifies that NetFence and all four
// baselines registered themselves and construct working System values.
func TestRegistryResolvesAllSystems(t *testing.T) {
	names := defense.Names()
	want := map[string]string{
		"netfence": "NetFence",
		"tva":      "TVA+",
		"stopit":   "StopIt",
		"fq":       "FQ",
		"none":     "None",
	}
	for _, name := range names {
		if _, ok := want[name]; ok {
			delete(want, name)
		}
	}
	for missing := range want {
		t.Fatalf("registry missing %q (have %v)", missing, names)
	}
	for _, name := range []string{"netfence", "tva", "stopit", "fq", "none"} {
		net := netsim.New(sim.New(1))
		s, err := defense.Build(name, net, defense.BuildOptions{})
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if s.Name() == "" {
			t.Fatalf("Build(%q): empty display name", name)
		}
	}
}

func TestRegistryErrors(t *testing.T) {
	net := netsim.New(sim.New(1))
	if _, err := defense.Build("bogus", net, defense.BuildOptions{}); err == nil {
		t.Fatal("unknown system resolved")
	}
	// Baselines take no configuration.
	if _, err := defense.Build("fq", net, defense.BuildOptions{Config: core.DefaultConfig()}); err == nil {
		t.Fatal("fq accepted a NetFence config")
	}
	// NetFence rejects configs of the wrong type.
	if _, err := defense.Build("netfence", net, defense.BuildOptions{Config: 42}); err == nil {
		t.Fatal("netfence accepted an int config")
	}
	// NetFence accepts its own config type.
	cfg := core.DefaultConfig()
	if _, err := defense.Build("netfence", net, defense.BuildOptions{Config: cfg}); err != nil {
		t.Fatalf("netfence rejected core.Config: %v", err)
	}
	// Duplicate registration is a programmer error.
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	defense.Register("netfence", func(*netsim.Network, defense.BuildOptions) (defense.System, error) {
		return nil, nil
	})
}

// denyRun deploys a system over a 2-sender dumbbell whose victim denies
// sender 1, floods UDP from both senders at the victim, and returns the
// delivered byte counts for the allowed and denied sender.
func denyRun(t *testing.T, build func(net *netsim.Network) defense.System) (allowed, denied uint64) {
	t.Helper()
	eng := sim.New(1)
	d := topo.NewDumbbell(eng, topo.DefaultDumbbell(2, 1_000_000))
	s := build(d.Net)
	badSrc := d.Senders[1].ID
	d.Deploy(s, defense.Policy{Deny: func(src packet.NodeID) bool { return src == badSrc }})

	sinkA := transport.NewUDPSink(d.Victim.Host, 1)
	sinkD := transport.NewUDPSink(d.Victim.Host, 2)
	transport.NewUDPSource(d.Senders[0].Host, d.Victim.ID, 1, 200_000, 1500).Start()
	transport.NewUDPSource(d.Senders[1].Host, d.Victim.ID, 2, 200_000, 1500).Start()
	eng.RunUntil(10 * sim.Second)
	return sinkA.Bytes, sinkD.Bytes
}

// TestPolicyDenyAtNetFenceShim verifies the §3.3 receiver contract at the
// NetFence host shim: traffic from a denied source is dropped before any
// feedback is recorded, so the denied sender never regains valid
// feedback, while the allowed sender's traffic and feedback flow.
func TestPolicyDenyAtNetFenceShim(t *testing.T) {
	eng := sim.New(1)
	d := topo.NewDumbbell(eng, topo.DefaultDumbbell(2, 1_000_000))
	s := core.NewSystem(d.Net, core.DefaultConfig())
	badSrc := d.Senders[1].ID
	d.Deploy(s, defense.Policy{Deny: func(src packet.NodeID) bool { return src == badSrc }})

	sinkA := transport.NewUDPSink(d.Victim.Host, 1)
	sinkD := transport.NewUDPSink(d.Victim.Host, 2)
	transport.NewUDPSource(d.Senders[0].Host, d.Victim.ID, 1, 200_000, 1500).Start()
	transport.NewUDPSource(d.Senders[1].Host, d.Victim.ID, 2, 200_000, 1500).Start()
	eng.RunUntil(10 * sim.Second)

	if sinkA.Bytes == 0 {
		t.Fatal("allowed sender delivered nothing")
	}
	if sinkD.Bytes != 0 {
		t.Fatalf("denied sender delivered %d bytes past the shim", sinkD.Bytes)
	}
	// Feedback-as-capability: the allowed sender holds presented
	// feedback for the victim; the denied sender must not.
	if _, ok := core.Shim(d.Senders[0]).Presented(d.Victim.ID); !ok {
		t.Fatal("allowed sender never received feedback")
	}
	if _, ok := core.Shim(d.Senders[1]).Presented(d.Victim.ID); ok {
		t.Fatal("denied sender obtained feedback despite the deny policy")
	}
}

// TestPolicyDenyAtBaselineShims verifies the receiver-side deny shim of
// every baseline: the denied sender's traffic never reaches the victim's
// transport, the allowed sender's does.
func TestPolicyDenyAtBaselineShims(t *testing.T) {
	builds := map[string]func(net *netsim.Network) defense.System{
		"none":   func(*netsim.Network) defense.System { return baseline.NewNone() },
		"fq":     func(*netsim.Network) defense.System { return baseline.NewFQ() },
		"tva":    func(*netsim.Network) defense.System { return baseline.NewTVA() },
		"stopit": func(net *netsim.Network) defense.System { return baseline.NewStopIt(net) },
	}
	for name, build := range builds {
		allowed, denied := denyRun(t, build)
		if allowed == 0 {
			t.Fatalf("%s: allowed sender delivered nothing", name)
		}
		if denied != 0 {
			t.Fatalf("%s: denied sender delivered %d bytes past the shim", name, denied)
		}
	}
}

// TestNilDenyAcceptsEveryone pins the documented Policy zero value: a
// nil Deny accepts all traffic.
func TestNilDenyAcceptsEveryone(t *testing.T) {
	eng := sim.New(1)
	d := topo.NewDumbbell(eng, topo.DefaultDumbbell(2, 1_000_000))
	d.Deploy(baseline.NewNone(), defense.Policy{})
	sink := transport.NewUDPSink(d.Victim.Host, 1)
	transport.NewUDPSource(d.Senders[0].Host, d.Victim.ID, 1, 200_000, 1500).Start()
	eng.RunUntil(5 * sim.Second)
	if sink.Bytes == 0 {
		t.Fatal("nil Deny dropped traffic")
	}
}
