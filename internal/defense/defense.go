// Package defense defines the interface every DoS-defense system in this
// repository implements — NetFence (internal/core) and the baselines
// TVA+, StopIt, per-sender fair queuing and the undefended network
// (internal/baseline). The experiment harness deploys systems through
// this interface so every figure can be regenerated for each system with
// identical topology and workload code.
package defense

import (
	"netfence/internal/netsim"
	"netfence/internal/packet"
)

// Policy describes a host's receiver-side behavior. NetFence deliberately
// places attack-traffic identification at receivers (§2.2 goal ii); Deny
// is that identification.
type Policy struct {
	// Deny reports whether the host classifies traffic from src as
	// unwanted and wishes to suppress it (withhold feedback/capabilities,
	// install filters). A nil Deny accepts everyone.
	Deny func(src packet.NodeID) bool
}

// System deploys a DoS defense onto a simulated network.
type System interface {
	// Name identifies the system in result tables.
	Name() string
	// ProtectLink installs the system's queue discipline and (for
	// NetFence) congestion detection and feedback stamping on a
	// potentially-congestible link.
	ProtectLink(l *netsim.Link)
	// ProtectAccess installs the system's policing functions on an
	// access router whose attached hosts it polices.
	ProtectAccess(r *netsim.Node)
	// AttachHost installs the system's host shim.
	AttachHost(h *netsim.Node, pol Policy)
}
