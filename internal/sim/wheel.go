package sim

import "math/bits"

// Hierarchical timer wheel geometry: six levels of 256 slots at 1 ns
// granularity. Level l's slots each span 256^l ns, so the wheel covers
// 2^48 ns ≈ 3.3 simulated days ahead of the cursor; anything further
// lives in the engine's overflow heap and migrates inward. Narrow levels
// cost one extra cascade for millisecond-scale timers but keep the whole
// slot array (~24 KiB) resident in L1, which wins on the simulator's
// event densities (wider 4096-slot levels measured ~25% slower).
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 6
	wheelWords  = wheelSlots / 64
)

// slotList is a doubly-linked intrusive event list (append at tail keeps
// same-slot events in scheduling-sequence order; prev pointers make
// Cancel an O(1) unlink).
type slotList struct {
	head, tail *Event
}

// wheel is the hierarchical timer wheel. time is the cursor: every queued
// event's timestamp is >= time (events scheduled behind the cursor after
// a speculative advance go to the overflow heap instead). A level-0 slot
// within the current window holds events of exactly one timestamp, which
// is what makes batch extraction exact.
type wheel struct {
	time  Time
	count int
	slots [wheelLevels][wheelSlots]slotList
	bits  [wheelLevels][wheelWords]uint64
}

func (w *wheel) init() {
	w.time = 0
	w.count = 0
}

// insert places ev by the highest bit-block in which its timestamp
// differs from the cursor. It reports false when the event cannot live in
// the wheel: behind the cursor, or past the horizon. now is the engine
// clock: an empty wheel teleports its cursor there (never to the event's
// own time — a far-future event must not strand every later near-term
// event behind the cursor).
func (w *wheel) insert(ev *Event, now Time) bool {
	if w.count == 0 {
		// An empty wheel's cursor position carries no information; pin it
		// to the clock so every schedulable time >= now is in range.
		w.time = now
	}
	if ev.at < w.time {
		return false
	}
	return w.place(ev)
}

// place is insert without the cursor teleport, used by cascades (which
// must not move the cursor mid-redistribution).
func (w *wheel) place(ev *Event) bool {
	d := uint64(ev.at) ^ uint64(w.time)
	lvl := 0
	if d != 0 {
		lvl = (63 - bits.LeadingZeros64(d)) / wheelBits
	}
	if lvl >= wheelLevels {
		return false
	}
	slot := int(uint64(ev.at)>>(wheelBits*lvl)) & wheelMask
	ls := &w.slots[lvl][slot]
	ev.prev = ls.tail
	ev.next = nil
	if ls.tail != nil {
		ls.tail.next = ev
	} else {
		ls.head = ev
	}
	ls.tail = ev
	w.bits[lvl][slot>>6] |= 1 << (slot & 63)
	ev.loc = int32(lvl)<<wheelBits | int32(slot)
	w.count++
	return true
}

// remove unlinks a queued event from its slot in O(1).
func (w *wheel) remove(ev *Event) {
	lvl := int(ev.loc) >> wheelBits
	slot := int(ev.loc) & wheelMask
	ls := &w.slots[lvl][slot]
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		ls.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		ls.tail = ev.prev
	}
	ev.next, ev.prev = nil, nil
	if ls.head == nil {
		w.bits[lvl][slot>>6] &^= 1 << (slot & 63)
	}
	w.count--
}

// nextSet returns the first occupied slot index >= from at the given
// level, or -1.
func (w *wheel) nextSet(lvl, from int) int {
	for from < wheelSlots {
		word := from >> 6
		v := w.bits[lvl][word] & (^uint64(0) << (from & 63))
		if v != 0 {
			return word<<6 + bits.TrailingZeros64(v)
		}
		from = (word + 1) << 6
	}
	return -1
}

// peek returns the exact timestamp of the earliest queued event,
// advancing the cursor and cascading upper-level slots downward as
// needed. It does not extract anything.
func (w *wheel) peek() (Time, bool) {
	if w.count == 0 {
		return 0, false
	}
	for {
		// The current level-0 window: each occupied slot at or after the
		// cursor maps to exactly one timestamp. Advancing the cursor over
		// the empty prefix keeps repeated peeks from rescanning it.
		c0 := int(uint64(w.time)) & wheelMask
		if s := w.nextSet(0, c0); s >= 0 {
			t := (w.time &^ Time(wheelMask)) | Time(s)
			w.time = t
			return t, true
		}
		// Otherwise the next event hides in the first occupied slot of
		// the shallowest upper level; advance the cursor to that slot's
		// window and redistribute its events downward.
		advanced := false
		for lvl := 1; lvl < wheelLevels; lvl++ {
			cl := int(uint64(w.time)>>(wheelBits*lvl)) & wheelMask
			s := w.nextSet(lvl, cl+1)
			if s < 0 {
				continue
			}
			shift := uint(wheelBits * lvl)
			span := (uint64(1) << (shift + wheelBits)) - 1
			w.time = Time(uint64(w.time)&^span | uint64(s)<<shift)
			w.cascade(lvl, s)
			advanced = true
			break
		}
		if !advanced {
			// Unreachable while count > 0: every queued event lies in
			// the current top-level window.
			panic("sim: timer wheel lost an event")
		}
	}
}

// cascade redistributes one upper-level slot into lower levels after the
// cursor entered its window.
func (w *wheel) cascade(lvl, slot int) {
	ls := &w.slots[lvl][slot]
	ev := ls.head
	ls.head, ls.tail = nil, nil
	w.bits[lvl][slot>>6] &^= 1 << (slot & 63)
	for ev != nil {
		next := ev.next
		ev.next, ev.prev = nil, nil
		w.count--
		if !w.place(ev) {
			panic("sim: cascade out of range")
		}
		ev = next
	}
}

// drainSlot moves every event of the level-0 slot holding timestamp t
// into out. peek must have returned t immediately beforehand.
func (w *wheel) drainSlot(t Time, out *[]*Event) {
	slot := int(uint64(t)) & wheelMask
	ls := &w.slots[0][slot]
	ev := ls.head
	ls.head, ls.tail = nil, nil
	w.bits[0][slot>>6] &^= 1 << (slot & 63)
	for ev != nil {
		next := ev.next
		ev.next, ev.prev = nil, nil
		w.count--
		*out = append(*out, ev)
		ev = next
	}
}
