package sim

import (
	"math/rand/v2"
)

// Event is a scheduled callback. The zero value is not useful; events are
// created through Engine.At and Engine.After. An Event may be cancelled
// before it fires, in which case it is skipped when popped from the heap.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 when not queued
}

// Cancel prevents the event from firing. Cancelling an already-executed or
// already-cancelled event is a no-op.
func (ev *Event) Cancel() {
	if ev != nil {
		ev.cancelled = true
		ev.fn = nil
	}
}

// Cancelled reports whether the event was cancelled before execution.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// Time returns the instant the event is scheduled for.
func (ev *Event) Time() Time { return ev.at }

// Engine is a discrete-event scheduler. It is not safe for concurrent use:
// simulations are single-threaded and deterministic by design.
type Engine struct {
	now  Time
	heap eventHeap
	seq  uint64
	// Rand is the simulation-wide random source, seeded at construction so
	// that runs are reproducible.
	Rand *rand.Rand
	// executed counts events that have run, for diagnostics.
	executed uint64
}

// New returns an engine whose clock starts at zero and whose random source
// is seeded with the given seed.
func New(seed uint64) *Engine {
	return &Engine{
		heap: make(eventHeap, 0, 1024),
		Rand: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently queued (including
// cancelled events that have not been popped yet).
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at the absolute time t. Scheduling in the past is
// clamped to the current time, preserving execution-order determinism.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn, index: -1}
	e.heap.push(ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Step executes the next pending event. It returns false when the queue is
// empty. Cancelled events are discarded without being counted as steps.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := e.heap.pop()
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.executed++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to exactly t. Events scheduled after t remain queued.
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 {
		ev := e.heap.peek()
		if ev.cancelled {
			e.heap.pop()
			continue
		}
		if ev.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Ticker invokes a callback periodically. Create one with Engine.Tick.
type Ticker struct {
	eng      *Engine
	interval Time
	fn       func()
	ev       *Event
	stopped  bool
}

// Tick schedules fn to run every interval, with the first invocation one
// interval from now. It panics if interval is not positive.
func (e *Engine) Tick(interval Time, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: non-positive ticker interval")
	}
	t := &Ticker{eng: e, interval: interval, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.ev = t.eng.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels future ticks. It is safe to call from within the callback.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}
