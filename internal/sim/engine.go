package sim

import (
	"math/rand/v2"
	"sync/atomic"
)

// Handler is the allocation-free event callback: hot paths implement
// OnEvent on a long-lived object (a link, a transport, a limiter) instead
// of capturing state in a fresh closure per event. The arg slot carries
// per-event context (typically a *packet.Packet); passing a pointer
// through an interface value does not allocate.
type Handler interface {
	OnEvent(now Time, arg any)
}

// PedigreeDepth is how many ancestor scheduling instants an event key
// retains. Deeper pedigrees resolve longer same-instant cross-shard
// scheduling chains exactly (the cost is one pedEntry copy per level
// per scheduled event); see Event.ped.
const PedigreeDepth = 8

// pedEntry is one pedigree level: a scheduling instant and the tagged
// sequence number assigned at it.
type pedEntry struct {
	t Time
	s uint64
}

// Event locations while queued.
const (
	locNone int32 = -1 // not queued
	locHeap int32 = -2 // in the far-future overflow heap
	locDue  int32 = -3 // extracted into the engine's due batch
	// loc >= 0 encodes a wheel position as level<<8 | slot.
)

// Event is a scheduled callback. Events come in three flavors:
//
//   - closure events, created by Engine.At / Engine.After: heap-allocated
//     per call, safe to hold and Cancel at any time;
//   - owned events, embedded by value in a long-lived struct and armed
//     with Engine.ScheduleEvent: reusable with zero allocation, but must
//     not be re-armed while still queued;
//   - pooled events, created by Engine.Schedule: drawn from the engine's
//     free list and recycled after firing; no handle is returned, so they
//     cannot be cancelled externally.
//
// The zero value is an idle owned event ready for ScheduleEvent.
type Event struct {
	at  Time
	seq uint64
	fn  func()
	h   Handler
	arg any
	eng *Engine

	// ped is the scheduling pedigree: ped[0] is this event's own
	// (scheduling instant, tagged seq), and ped[k] its k-th ancestor's —
	// the event whose callback scheduled the (k-1)-th. The pedigree
	// propagates as a shift (a child's level-k entry is its parent's
	// level k-1), so PedigreeDepth levels cost one small array copy at
	// schedule time. For a single engine the full key (see keyLess)
	// orders exactly like (at, seq) — each level is the parent batch's
	// own execution order, inductively its seq order — so single-engine
	// behavior is bit-for-bit the PR-4 order. Across sharded engines the
	// pedigree makes keys comparable: a cross-shard handoff carries its
	// source-side chain, positioning it among the destination's events
	// exactly where a single global engine would have run it. Chains
	// still tied after PedigreeDepth scheduling instants (e.g. two
	// phase-locked back-to-back transmission chains both busy for more
	// than PedigreeDepth packets) fall back to the shard-tagged seq,
	// whose shard-major order matches the setup-order tie-break of fully
	// symmetric chains.
	ped [PedigreeDepth]pedEntry

	// next/prev link the event into a timer-wheel slot (doubly linked so
	// Cancel detaches in O(1)); next doubles as the free-list link while
	// a pooled event is idle.
	next, prev *Event
	loc        int32
	index      int32 // position in the overflow heap or the due batch

	queued    bool
	cancelled bool
	pooled    bool
}

// Cancel prevents the event from firing, detaching it from the scheduler
// immediately (a cancelled event no longer counts as pending). Cancelling
// an already-executed, already-cancelled or nil event is a no-op.
func (ev *Event) Cancel() {
	if ev == nil {
		return
	}
	if ev.queued {
		ev.eng.remove(ev)
	}
	ev.cancelled = true
	ev.fn = nil
	ev.h = nil
	ev.arg = nil
}

// Cancelled reports whether the event was cancelled since it was last
// scheduled.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// Time returns the instant the event is (or was last) scheduled for.
func (ev *Event) Time() Time { return ev.at }

// Meter aggregates executed-event counts across the engines of ONE
// logical run (a scenario's shard replicas, a sweep's cells, a bench
// suite). Engines attached to a meter flush their local counters into
// it at Run/RunUntil boundaries, so the per-event hot path stays free
// of atomics, and concurrent runs in one process (e.g. two -serve
// jobs) never contaminate each other's event accounting.
type Meter struct{ n atomic.Uint64 }

// Add folds n executed events into the meter. Safe for concurrent use.
func (m *Meter) Add(n uint64) { m.n.Add(n) }

// Total returns the events aggregated so far.
func (m *Meter) Total() uint64 { return m.n.Load() }

// Engine is a discrete-event scheduler. It is not safe for concurrent use:
// simulations are single-threaded and deterministic by design.
//
// Near-future events live in a hierarchical timer wheel (O(1) schedule and
// cancel, no allocation); events beyond the wheel horizon overflow into a
// binary heap and migrate inward as the clock advances. Execution order is
// strictly (time, scheduling sequence), bit-for-bit identical to a pure
// heap scheduler.
type Engine struct {
	now  Time
	seq  uint64
	live int // queued, non-cancelled events

	// pedigreed marks a sharded engine: only then is the deep pedigree
	// (ped[1:]) maintained. A standalone engine never compares events
	// beyond (at, ped[0]) — its order is organically (time, seq) — so it
	// skips the per-event ancestry copies and keeps the PR-4 hot path.
	pedigreed bool

	// seqTag namespaces this engine's sequence numbers when it runs as
	// one shard of a partitioned simulation: the shard index occupies the
	// top 16 bits of every assigned seq, so keys from different shards
	// compare shard-major when their time pedigree ties (the single
	// engine's tie order for symmetric event chains, whose roots are the
	// shard-grouped setup sequence). Zero for standalone engines, making
	// tagged seqs numerically identical to the untagged PR-4 values.
	seqTag uint64

	// curPed is the pedigree of the event whose callback is currently
	// executing — the ancestry stamped onto events it schedules.
	curPed [PedigreeDepth]pedEntry

	// keyBase, when keyed, seeds KeyStream: per-consumer deterministic
	// randomness for sharded runs (see KeyStream).
	keyBase uint64
	keyed   bool

	wheel wheel
	heap  eventHeap

	// due is the current batch of events sharing the earliest pending
	// timestamp, sorted by sequence; Cancel punches nil holes into it.
	// dueAt is that shared timestamp — valid while the batch is
	// non-empty, and authoritative even when the head entry is a hole.
	due    []*Event
	duePos int
	dueAt  Time

	// free is the pooled-event free list, linked through Event.next.
	free *Event

	// forceHeap routes every event through the overflow heap, bypassing
	// the wheel: the reference configuration equivalence tests compare
	// against.
	forceHeap bool

	// Rand is the simulation-wide random source, seeded at construction so
	// that runs are reproducible.
	Rand *rand.Rand
	// executed counts events that have run, for diagnostics; flushed
	// tracks how much of it has been folded into the attached meter.
	executed uint64
	flushed  uint64
	meter    *Meter
}

// New returns an engine whose clock starts at zero and whose random source
// is seeded with the given seed.
func New(seed uint64) *Engine {
	e := &Engine{
		heap: make(eventHeap, 0, 64),
		Rand: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
	e.wheel.init()
	return e
}

// NewHeapReference returns an engine that schedules exclusively through
// the binary heap — the straightforward reference implementation the
// timer wheel must match event for event. Tests use it to pin the wheel's
// ordering; simulations should use New.
func NewHeapReference(seed uint64) *Engine {
	e := New(seed)
	e.forceHeap = true
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of live events currently scheduled. Cancelled
// events are detached immediately and never counted, so drain loops and
// diagnostics can trust the value.
func (e *Engine) Pending() int { return e.live }

// At schedules fn to run at the absolute time t. Scheduling in the past is
// clamped to the current time, preserving execution-order determinism.
func (e *Engine) At(t Time, fn func()) *Event {
	ev := &Event{fn: fn, loc: locNone, index: -1}
	e.scheduleEv(ev, t)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Schedule arms a one-shot pooled event: h.OnEvent(now, arg) runs at time
// t (clamped to now). The event slot comes from the engine's free list and
// returns to it after firing, so steady-state scheduling allocates
// nothing. No handle is returned; use At or ScheduleEvent for cancellable
// events.
func (e *Engine) Schedule(t Time, h Handler, arg any) {
	ev := e.grabEvent()
	ev.pooled = true
	ev.h = h
	ev.arg = arg
	e.scheduleEv(ev, t)
}

// eventSlabSize is how many pooled Event slots one free-list refill
// allocates at once. Slab refills amortize the allocator over bursts
// (a mailbox batch injection wants dozens of slots in one drain) and
// keep pooled events cache-adjacent.
const eventSlabSize = 64

// grabEvent pops a pooled event slot off the free list, refilling the
// list from a contiguous slab when it runs dry.
func (e *Engine) grabEvent() *Event {
	ev := e.free
	if ev == nil {
		slab := make([]Event, eventSlabSize)
		for i := range slab {
			slab[i].loc = locNone
			slab[i].index = -1
			if i > 0 {
				slab[i].next = &slab[i-1]
			}
		}
		e.free = &slab[eventSlabSize-2]
		ev = &slab[eventSlabSize-1]
		ev.next = nil
		return ev
	}
	e.free = ev.next
	ev.next = nil
	return ev
}

// ScheduleEvent arms a caller-owned event slot: h.OnEvent(now, arg) runs
// at time t (clamped to now). The caller keeps ev alive (typically
// embedded by value in the object that owns the timer) and may re-arm it
// after it fires or is cancelled; re-arming a still-queued event panics.
func (e *Engine) ScheduleEvent(ev *Event, t Time, h Handler, arg any) {
	if ev.queued {
		panic("sim: ScheduleEvent on an event that is still queued")
	}
	ev.pooled = false
	ev.fn = nil
	ev.h = h
	ev.arg = arg
	e.scheduleEv(ev, t)
}

// scheduleEv assigns time and sequence and inserts the event.
func (e *Engine) scheduleEv(ev *Event, t Time) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev.at = t
	ev.seq = e.seqTag | e.seq
	ev.ped[0] = pedEntry{t: e.now, s: ev.seq}
	if e.pedigreed {
		copy(ev.ped[1:], e.curPed[:PedigreeDepth-1])
	}
	ev.eng = e
	ev.queued = true
	ev.cancelled = false
	e.live++
	// An event earlier than the already-extracted due batch preempts it:
	// spill the batch back into the scheduler so ordering stays global.
	// Compare against the batch timestamp, not the head entry — the head
	// may be a cancellation hole.
	if e.duePos < len(e.due) && t < e.dueAt {
		e.spillDue()
	}
	e.insert(ev)
}

// insert places a scheduled event into the wheel, or the overflow heap
// when it lies behind the wheel cursor or beyond its horizon.
func (e *Engine) insert(ev *Event) {
	if e.forceHeap || !e.wheel.insert(ev, e.now) {
		ev.loc = locHeap
		e.heap.push(ev)
	}
}

// spillDue returns unexecuted due-batch events to the scheduler, keeping
// their original (time, sequence) keys.
func (e *Engine) spillDue() {
	for i := e.duePos; i < len(e.due); i++ {
		if ev := e.due[i]; ev != nil {
			e.insert(ev)
		}
	}
	e.due = e.due[:0]
	e.duePos = 0
}

// remove detaches a queued event (Cancel's backend).
func (e *Engine) remove(ev *Event) {
	switch {
	case ev.loc >= 0:
		e.wheel.remove(ev)
	case ev.loc == locHeap:
		e.heap.removeAt(int(ev.index))
	case ev.loc == locDue:
		e.due[ev.index] = nil
	}
	ev.loc = locNone
	ev.queued = false
	e.live--
	if ev.pooled {
		ev.pooled = false
		ev.fn, ev.h, ev.arg = nil, nil, nil
		ev.next = e.free
		e.free = ev
	}
}

// ensureDue guarantees the due batch holds the next event to execute,
// pulling the earliest-timestamp batch from the wheel and/or the overflow
// heap. It returns false when nothing is pending.
func (e *Engine) ensureDue() bool {
	// Drain the current batch first, skipping cancellation holes.
	for e.duePos < len(e.due) {
		if e.due[e.duePos] != nil {
			return true
		}
		e.duePos++
	}
	e.due = e.due[:0]
	e.duePos = 0

	if e.forceHeap {
		if len(e.heap) == 0 {
			return false
		}
		e.batchFromHeap()
		return true
	}

	// Heap events behind the wheel cursor (scheduled after a speculative
	// cursor advance) are globally earliest: the wheel holds nothing
	// before its own cursor. Checking before peek avoids needless
	// cascades.
	if len(e.heap) > 0 && e.heap[0].at < e.wheel.time {
		e.batchFromHeap()
		return true
	}

	wt, wok := e.wheel.peek()
	if !wok {
		// Empty wheel: the heap alone orders everything, including
		// events beyond the wheel horizon that could never migrate in.
		if len(e.heap) == 0 {
			return false
		}
		e.batchFromHeap()
		return true
	}
	// peek advanced the cursor to wt, so heap events below wt (there are
	// no wheel events below wt) are globally earliest.
	if len(e.heap) > 0 && e.heap[0].at < wt {
		e.batchFromHeap()
		return true
	}
	// Heap events at exactly wt merge into the wheel's slot so the
	// sequence sort below interleaves the batch correctly. at == wt ==
	// wheel.time is always within the horizon, so insertion cannot fail.
	for len(e.heap) > 0 && e.heap[0].at == wt {
		ev := e.heap.pop()
		if !e.wheel.insert(ev, e.now) {
			panic("sim: wheel rejected an in-horizon migration")
		}
	}

	e.wheel.drainSlot(wt, &e.due)
	sortBySeq(e.due)
	for i, ev := range e.due {
		ev.loc = locDue
		ev.index = int32(i)
	}
	e.dueAt = wt
	return true
}

// batchFromHeap pops every heap event sharing the minimum timestamp into
// the due batch (heap pops already come out in (time, seq) order).
func (e *Engine) batchFromHeap() {
	at := e.heap[0].at
	for len(e.heap) > 0 && e.heap[0].at == at {
		ev := e.heap.pop()
		ev.loc = locDue
		ev.index = int32(len(e.due))
		e.due = append(e.due, ev)
	}
	e.dueAt = at
}

// keyLess orders two same-engine-or-cross-engine events by the full
// pedigree key. The comparison mirrors the scheduling recursion: after
// (at, scheduling instants outward to the oldest retained ancestor),
// ties resolve by the deepest ancestor's tagged seq inward — each level
// is the corresponding ancestor batch's own execution order. For events
// of one engine this is exactly (at, seq) order — every field is
// nondecreasing in seq within the preceding ties — so the single-engine
// execution order is bit-for-bit the PR-4 order; the longer key only
// disambiguates events injected from other shards.
func keyLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	for k := 0; k < PedigreeDepth; k++ {
		if a.ped[k].t != b.ped[k].t {
			return a.ped[k].t < b.ped[k].t
		}
	}
	for k := PedigreeDepth - 1; k > 0; k-- {
		if a.ped[k].s != b.ped[k].s {
			return a.ped[k].s < b.ped[k].s
		}
	}
	return a.ped[0].s < b.ped[0].s
}

// sortBySeq orders a same-timestamp batch by scheduling key. Insertion
// sort: batches are small and usually already sorted (slot lists append
// in sequence order; only cross-level cascades and cross-shard
// injections disorder them).
func sortBySeq(evs []*Event) {
	for i := 1; i < len(evs); i++ {
		ev := evs[i]
		j := i - 1
		for j >= 0 && keyLess(ev, evs[j]) {
			evs[j+1] = evs[j]
			j--
		}
		evs[j+1] = ev
	}
}

// fire executes one extracted event.
func (e *Engine) fire(ev *Event) {
	e.now = ev.at
	if e.pedigreed {
		e.curPed = ev.ped
	}
	ev.queued = false
	ev.loc = locNone
	e.live--
	e.executed++
	fn, h, arg := ev.fn, ev.h, ev.arg
	if ev.pooled {
		// Recycle before running the callback: the callback may well
		// schedule its successor into this very slot. Pooled slots are
		// scrubbed so the free list retains nothing.
		ev.fn, ev.h, ev.arg = nil, nil, nil
		ev.pooled = false
		ev.next = e.free
		e.free = ev
	} else if fn != nil {
		// Closure events may outlive their firing through the caller's
		// handle; drop the closure so captured state can be collected.
		ev.fn = nil
	}
	if fn != nil {
		fn()
	} else {
		h.OnEvent(e.now, arg)
	}
}

// Step executes the next pending event. It returns false when nothing is
// scheduled.
func (e *Engine) Step() bool {
	if !e.ensureDue() {
		return false
	}
	ev := e.due[e.duePos]
	e.duePos++
	e.fire(ev)
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
	e.flushExecuted()
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to exactly t. Events scheduled after t remain queued.
func (e *Engine) RunUntil(t Time) {
	for e.ensureDue() {
		ev := e.due[e.duePos]
		if ev.at > t {
			break
		}
		e.duePos++
		e.fire(ev)
	}
	if e.now < t {
		e.now = t
	}
	e.flushExecuted()
}

// RunBefore executes all events scheduled strictly before t, then
// advances the clock to exactly t. It is the window step of a
// partitioned run: events at t itself belong to the next window (a
// cross-shard arrival landing exactly at a window boundary must be able
// to preempt them).
func (e *Engine) RunBefore(t Time) {
	for e.ensureDue() {
		ev := e.due[e.duePos]
		if ev.at >= t {
			break
		}
		e.duePos++
		e.fire(ev)
	}
	if e.now < t {
		e.now = t
	}
	e.flushExecuted()
}

// EventKey is the full pedigree scheduling key of one event — the
// currency of cross-shard handoffs. A source engine mints it with
// HandoffKey at the instant it would have scheduled the event locally;
// the destination engine's Inject places the event into its own order
// exactly where a single global engine would have run it.
type EventKey struct {
	At  Time
	Ped [PedigreeDepth]pedEntry
}

// HandoffKey consumes one local sequence number and returns the key a
// locally-scheduled event for time at would have carried — including the
// pedigree of the currently-executing event. Call it from inside the
// event callback performing the handoff.
func (e *Engine) HandoffKey(at Time) EventKey {
	e.seq++
	k := EventKey{At: at}
	k.Ped[0] = pedEntry{t: e.now, s: e.seqTag | e.seq}
	copy(k.Ped[1:], e.curPed[:PedigreeDepth-1])
	return k
}

// Inject schedules h.OnEvent(now, arg) under an explicit key minted by
// another engine's HandoffKey. The event slot comes from the free list
// (pooled, non-cancellable). Injecting into the past panics: it means
// the caller violated the conservative-synchronization lookahead bound.
func (e *Engine) Inject(k EventKey, h Handler, arg any) {
	if k.At < e.now {
		panic("sim: Inject behind the engine clock (lookahead violation)")
	}
	// An injected key may precede an already-extracted due batch even at
	// the same timestamp (its pedigree is older); spill so ordering stays
	// global.
	if e.duePos < len(e.due) && k.At <= e.dueAt {
		e.spillDue()
	}
	e.injectOne(k, h, arg)
}

// injectOne places one handoff event without the clock and due-batch
// checks — the caller has already established them.
func (e *Engine) injectOne(k EventKey, h Handler, arg any) {
	ev := e.grabEvent()
	ev.pooled = true
	ev.h = h
	ev.arg = arg
	ev.at = k.At
	ev.seq = k.Ped[0].s
	ev.ped = k.Ped
	ev.eng = e
	ev.queued = true
	ev.cancelled = false
	e.live++
	e.insert(ev)
}

// InjectBatch injects a slab of handoff events sharing one handler in a
// single call, amortizing the clock check and due-batch spill over the
// whole batch. keys and args are parallel slices; keys MUST be
// nondecreasing in At — the contract holds for a cut-link mailbox drain,
// whose keys were minted as now+delay with now nondecreasing and delay
// constant within a synchronization window — so one comparison against
// the due-batch timestamp covers every key in the slab.
func (e *Engine) InjectBatch(keys []EventKey, h Handler, args []any) {
	if len(keys) == 0 {
		return
	}
	if keys[0].At < e.now {
		panic("sim: InjectBatch behind the engine clock (lookahead violation)")
	}
	if e.duePos < len(e.due) && keys[0].At <= e.dueAt {
		e.spillDue()
	}
	for i, k := range keys {
		e.injectOne(k, h, args[i])
	}
}

// SetShardTag namespaces this engine's sequence numbers with a shard
// index (top 16 bits), making keys from different shards of one
// partitioned simulation comparable, and switches on deep-pedigree
// maintenance. Call before any event is scheduled.
func (e *Engine) SetShardTag(shard int) {
	e.seqTag = uint64(shard) << 48
	e.pedigreed = true
}

// ResetPedigree zeroes the executing-event pedigree. Call it before
// scheduling events from OUTSIDE any event callback at a control point
// of a segmented run: without the reset, a sharded engine would stamp
// the ancestry of whatever event happened to execute last onto the new
// events — ancestry that differs per shard count — while the single
// engine (which never maintains deep pedigrees) stamps none. Zeroed
// ancestry on every path keeps control-point scheduling byte-identical
// across shard counts. No-op mid-callback semantics are not supported:
// the caller must be between Run calls.
func (e *Engine) ResetPedigree() {
	e.curPed = [PedigreeDepth]pedEntry{}
}

// EnableKeyStreams switches the engine into sharded key-material mode:
// KeyStream returns per-consumer deterministic RNGs derived from base,
// so every shard replica of one logical consumer (an access router's
// keyring) draws identical values without sharing the engine stream.
func (e *Engine) EnableKeyStreams(base uint64) {
	e.keyed = true
	e.keyBase = base
}

// KeyStream returns a deterministic random stream private to the given
// consumer id, or nil when the engine is not in sharded key-material
// mode (single-engine runs keep drawing from Engine.Rand, preserving
// their byte-exact historical results).
func (e *Engine) KeyStream(id uint64) *rand.Rand {
	if !e.keyed {
		return nil
	}
	return rand.New(rand.NewPCG(e.keyBase^0x9e3779b97f4a7c15, id))
}

// AttachMeter directs the engine's executed-event accounting into m;
// a nil meter detaches. Executions already counted are not replayed
// into the new meter.
func (e *Engine) AttachMeter(m *Meter) {
	e.meter = m
	e.flushed = e.executed
}

// flushExecuted publishes locally-counted executions to the attached
// run meter, if any.
func (e *Engine) flushExecuted() {
	if e.meter == nil {
		return
	}
	if d := e.executed - e.flushed; d > 0 {
		e.meter.Add(d)
		e.flushed = e.executed
	}
}

// Ticker invokes a callback periodically. Create one with Engine.Tick.
// The ticker owns a single reusable event slot, so ticking allocates
// nothing after construction.
type Ticker struct {
	eng      *Engine
	interval Time
	fn       func()
	ev       Event
	stopped  bool
}

// Tick schedules fn to run every interval, with the first invocation one
// interval from now. It panics if interval is not positive.
func (e *Engine) Tick(interval Time, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: non-positive ticker interval")
	}
	t := &Ticker{eng: e, interval: interval, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.eng.ScheduleEvent(&t.ev, t.eng.now+t.interval, t, nil)
}

// OnEvent implements Handler; it runs one tick and re-arms.
func (t *Ticker) OnEvent(Time, any) {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.schedule()
	}
}

// Stop cancels future ticks. It is safe to call from within the callback.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}
