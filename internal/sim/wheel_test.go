package sim

import (
	"math/rand/v2"
	"testing"
)

// schedOp is one step of the randomized scheduler workload: schedule an
// event at now+delay (optionally cancelling an earlier live event first).
type schedOp struct {
	delay     Time
	cancelIdx int // index into previously scheduled events, -1 = none
}

// driveEngine replays the op sequence on an engine and returns the order
// in which events executed (by op index). Ops are consumed from within
// event callbacks too, exercising nested scheduling at the current
// timestamp and across wheel windows.
func driveEngine(e *Engine, ops []schedOp) []int {
	var order []int
	var evs []*Event
	next := 0
	var emit func(n int)
	emit = func(n int) {
		for i := 0; i < n && next < len(ops); i++ {
			op := ops[next]
			id := next
			next++
			if op.cancelIdx >= 0 && op.cancelIdx < len(evs) {
				evs[op.cancelIdx].Cancel()
			}
			evs = append(evs, e.At(e.Now()+op.delay, func() {
				order = append(order, id)
				// Fan out a couple of follow-up schedules from inside
				// the callback.
				emit(2)
			}))
		}
	}
	emit(64)
	for next < len(ops) || e.Pending() > 0 {
		if !e.Step() {
			emit(64)
			if e.Pending() == 0 && next >= len(ops) {
				break
			}
		}
	}
	return order
}

// TestWheelMatchesHeapReference drives the timer-wheel engine and the
// pure-heap reference through 10k random schedule/cancel operations and
// requires identical execution orderings — the bit-for-bit determinism
// guarantee the pooled hot path depends on.
func TestWheelMatchesHeapReference(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 42, 1234} {
		rng := rand.New(rand.NewPCG(seed, 99))
		ops := make([]schedOp, 10_000)
		for i := range ops {
			var d Time
			switch rng.IntN(10) {
			case 0:
				d = 0 // same-instant follow-up
			case 1, 2, 3:
				d = Time(rng.Int64N(int64(Microsecond))) // same wheel window
			case 4, 5, 6:
				d = Time(rng.Int64N(int64(Millisecond))) // cross-level
			case 7, 8:
				d = Time(rng.Int64N(int64(Minute))) // deep levels
			default:
				d = Time(rng.Int64N(4 * int64(Hour))) // far future / overflow
			}
			cancel := -1
			if rng.IntN(4) == 0 {
				cancel = rng.IntN(i + 1)
			}
			ops[i] = schedOp{delay: d, cancelIdx: cancel}
		}
		got := driveEngine(New(seed), ops)
		want := driveEngine(NewHeapReference(seed), ops)
		if len(got) != len(want) {
			t.Fatalf("seed %d: wheel executed %d events, heap %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: orderings diverge at step %d: wheel ran op %d, heap ran op %d",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestWheelRunUntilMatchesHeap checks the RunUntil boundary behavior
// (including events scheduled behind a speculatively advanced cursor)
// stays identical between the two schedulers.
func TestWheelRunUntilMatchesHeap(t *testing.T) {
	run := func(e *Engine) []Time {
		var fired []Time
		// A sparse far event forces the wheel cursor to advance
		// speculatively when RunUntil peeks past the gap.
		e.At(10*Second, func() { fired = append(fired, e.Now()) })
		e.RunUntil(3 * Second)
		// Scheduled behind the advanced cursor, ahead of the clock.
		e.At(4*Second, func() { fired = append(fired, e.Now()) })
		e.At(3*Second+Nanosecond, func() { fired = append(fired, e.Now()) })
		e.RunUntil(4 * Second)
		e.RunUntil(20 * Second)
		return fired
	}
	got, want := run(New(7)), run(NewHeapReference(7))
	if len(got) != len(want) {
		t.Fatalf("wheel fired %d, heap fired %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("firing %d: wheel at %v, heap at %v", i, got[i], want[i])
		}
	}
	if got[0] != 3*Second+Nanosecond || got[1] != 4*Second || got[2] != 10*Second {
		t.Fatalf("unexpected firing times %v", got)
	}
}

// TestPendingExcludesCancelled pins the satellite fix: cancelled events
// detach immediately and never inflate Pending, so drain loops that wait
// for Pending()==0 cannot spin on ghosts.
func TestPendingExcludesCancelled(t *testing.T) {
	e := New(1)
	evs := make([]*Event, 10)
	for i := range evs {
		evs[i] = e.At(Time(i+1)*Second, func() {})
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	for i := 0; i < 5; i++ {
		evs[i].Cancel()
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending after 5 cancels = %d, want 5", e.Pending())
	}
	evs[0].Cancel() // double cancel must not double-decrement
	if e.Pending() != 5 {
		t.Fatalf("Pending after re-cancel = %d, want 5", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", e.Pending())
	}
	if e.Executed() != 5 {
		t.Fatalf("Executed = %d, want 5", e.Executed())
	}
}

// TestOwnedEventReuse exercises the ScheduleEvent re-arm cycle and its
// still-queued panic guard.
func TestOwnedEventReuse(t *testing.T) {
	e := New(1)
	var ev Event
	count := 0
	var h handlerFunc = func(now Time, arg any) {
		count++
		if count < 3 {
			e.ScheduleEvent(&ev, now+Millisecond, arg.(handlerFunc), arg)
		}
	}
	e.ScheduleEvent(&ev, Millisecond, h, h)
	e.Run()
	if count != 3 {
		t.Fatalf("owned event fired %d times, want 3", count)
	}
	// Cancel-then-rearm must work.
	e.ScheduleEvent(&ev, e.Now()+Second, h, h)
	ev.Cancel()
	if e.Pending() != 0 {
		t.Fatalf("Pending after cancel = %d", e.Pending())
	}
	e.ScheduleEvent(&ev, e.Now()+Millisecond, handlerFunc(func(Time, any) { count = 100 }), nil)
	e.Run()
	if count != 100 {
		t.Fatal("re-armed owned event did not fire")
	}
	// Re-arming a queued event panics.
	e.ScheduleEvent(&ev, e.Now()+Second, h, h)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic re-arming a queued event")
		}
	}()
	e.ScheduleEvent(&ev, e.Now()+Second, h, h)
}

// TestPooledEventsRecycle verifies Schedule reuses its free-list slots.
func TestPooledEventsRecycle(t *testing.T) {
	e := New(1)
	var h handlerFunc = func(Time, any) {}
	for i := 0; i < 100; i++ {
		e.Schedule(e.Now()+Time(i)*Microsecond, h, nil)
	}
	e.Run()
	if e.free == nil {
		t.Fatal("no events on the free list after a pooled run")
	}
	n := 0
	for ev := e.free; ev != nil; ev = ev.next {
		n++
	}
	// The free list refills in slabs, so its size is the schedule count
	// rounded up to a whole number of slabs.
	if want := (100 + eventSlabSize - 1) / eventSlabSize * eventSlabSize; n > want {
		t.Fatalf("free list grew beyond %d slab slots: %d", want, n)
	}
	// Second wave must not grow the free list beyond its high-water mark.
	for i := 0; i < 100; i++ {
		e.Schedule(e.Now()+Time(i)*Microsecond, h, nil)
	}
	e.Run()
	m := 0
	for ev := e.free; ev != nil; ev = ev.next {
		m++
	}
	if m != n {
		t.Fatalf("free list changed across waves: %d -> %d", n, m)
	}
}

// handlerFunc adapts a func to Handler for tests.
type handlerFunc func(now Time, arg any)

func (f handlerFunc) OnEvent(now Time, arg any) { f(now, arg) }

// TestBeyondHorizonEvent pins the far-future path: an event beyond the
// wheel's 2^48 ns horizon stays in the overflow heap and still executes
// (an earlier version hard-hung trying to migrate it into the wheel).
func TestBeyondHorizonEvent(t *testing.T) {
	e := New(1)
	var fired []Time
	e.At(Time(1)<<49, func() { fired = append(fired, e.Now()) })
	e.At(Second, func() { fired = append(fired, e.Now()) })
	e.Run()
	if len(fired) != 2 || fired[0] != Second || fired[1] != Time(1)<<49 {
		t.Fatalf("firing order/time wrong: %v", fired)
	}
	// Horizon-crossing from a nonzero clock, mixed with near events.
	e2 := New(2)
	e2.RunUntil(5 * Second)
	e2.At(5*Second+Time(1)<<48, func() { fired = append(fired, e2.Now()) })
	e2.At(6*Second, func() { fired = append(fired, e2.Now()) })
	e2.Run()
	if len(fired) != 4 || fired[2] != 6*Second || fired[3] != 5*Second+Time(1)<<48 {
		t.Fatalf("horizon-crossing order wrong: %v", fired)
	}
}

// TestPreemptionPastCancelledDueHead pins the spill path: cancelling the
// head of an extracted due batch must not let a newly scheduled earlier
// event run after the batch (which would also march the clock backwards).
func TestPreemptionPastCancelledDueHead(t *testing.T) {
	for _, mk := range []func() *Engine{func() *Engine { return New(1) }, func() *Engine { return NewHeapReference(1) }} {
		e := mk()
		var order []Time
		evA := e.At(100*Millisecond, func() { order = append(order, e.Now()) })
		e.At(100*Millisecond, func() { order = append(order, e.Now()) })
		// Extract the t=100ms batch into the due buffer without running it.
		e.RunUntil(50 * Millisecond)
		// Cancel the batch head, then schedule an earlier event.
		evA.Cancel()
		e.At(60*Millisecond, func() { order = append(order, e.Now()) })
		e.Run()
		if len(order) != 2 || order[0] != 60*Millisecond || order[1] != 100*Millisecond {
			t.Fatalf("preemption order wrong: %v", order)
		}
	}
}
