package sim

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"
)

// Coordinator drives N shard engines through conservative parallel
// discrete-event simulation: bounded time windows of one lookahead (the
// minimum cut-link propagation delay), a barrier between windows, and a
// drain hook per shard that re-schedules cross-shard handoffs onto the
// destination engine before its window starts.
//
// Safety argument: an event executing in window [W, W+L) can influence
// another shard only through a cut link whose delay is >= L, so its
// earliest cross-shard effect lands at or after W+L — the next window.
// Draining every mailbox at each window boundary therefore delivers
// every arrival before any event that could observe it, and the
// pedigree keys carried by the handoffs (see EventKey) order them
// exactly as a single global engine would have.
//
// Each shard runs on its own persistent worker goroutine, labeled
// shard=<name> for pprof, so CPU profiles attribute hot paths to
// partitions. Determinism does not depend on goroutine scheduling: all
// cross-shard state crosses only at barriers.
type Coordinator struct {
	engines   []*Engine
	lookahead Time
	names     []string
	// drain delivers pending inbound handoffs to shard i, returning
	// whether anything landing at or before deadline was injected.
	drain func(shard int, deadline Time) bool

	now     Time
	windows uint64

	// serialized accumulates each shard's execute-round wall-clock
	// nanoseconds — the Amdahl-serial portion of the run that the
	// validation pipeline exists to shrink. Slot i is written only on
	// shard i's worker goroutine; read it after a Run* call returns (the
	// closing barrier is the happens-before edge).
	serialized []int64

	jobs    []chan func(int)
	wg      sync.WaitGroup
	started bool
	stopped bool
}

// NewCoordinator creates a coordinator over the given shard engines.
// The lookahead must be positive — a zero-delay cut link admits no
// conservative window.
func NewCoordinator(engines []*Engine, lookahead Time, names []string) *Coordinator {
	if lookahead <= 0 {
		panic("sim: coordinator lookahead must be positive")
	}
	if len(names) != len(engines) {
		names = make([]string, len(engines))
		for i := range names {
			names[i] = fmt.Sprintf("%d", i)
		}
	}
	return &Coordinator{
		engines:    engines,
		lookahead:  lookahead,
		names:      names,
		serialized: make([]int64, len(engines)),
	}
}

// SetDrain installs the mailbox drain hook, invoked on each shard's own
// goroutine at every window start.
func (c *Coordinator) SetDrain(fn func(shard int, deadline Time) bool) {
	c.drain = fn
}

// Engines returns the coordinated shard engines in shard order.
func (c *Coordinator) Engines() []*Engine { return c.engines }

// Lookahead returns the synchronization window length.
func (c *Coordinator) Lookahead() Time { return c.lookahead }

// Windows returns the number of synchronization rounds executed so far.
func (c *Coordinator) Windows() uint64 { return c.windows }

// Now returns the frontier every shard has simulated up to.
func (c *Coordinator) Now() Time { return c.now }

// SerializedNanos returns a copy of the per-shard execute-round
// wall-clock nanoseconds accumulated so far. Call it between Run*
// calls, when every shard is parked at the closing barrier.
func (c *Coordinator) SerializedNanos() []int64 {
	out := make([]int64, len(c.serialized))
	copy(out, c.serialized)
	return out
}

// execute runs one shard's execute round, charging its wall-clock cost
// to the shard's serialized-time slot.
func (c *Coordinator) execute(i int, end Time) {
	t0 := time.Now()
	c.engines[i].RunBefore(end)
	c.serialized[i] += int64(time.Since(t0))
}

// start spawns the labeled worker goroutines on first use.
func (c *Coordinator) start() {
	if c.started {
		return
	}
	c.started = true
	c.jobs = make([]chan func(int), len(c.engines))
	for i := range c.engines {
		c.jobs[i] = make(chan func(int))
		ch, shard := c.jobs[i], i
		labels := pprof.Labels("shard", c.names[i])
		go pprof.Do(context.Background(), labels, func(context.Context) {
			for job := range ch {
				job(shard)
				c.wg.Done()
			}
		})
	}
}

// round runs fn(shard) on every shard's worker concurrently and waits
// for all of them — one barrier.
func (c *Coordinator) round(fn func(int)) {
	c.wg.Add(len(c.engines))
	for i := range c.jobs {
		c.jobs[i] <- fn
	}
	c.wg.Wait()
}

// doDrain invokes the drain hook for one shard, if installed.
func (c *Coordinator) doDrain(shard int, deadline Time) bool {
	if c.drain == nil {
		return false
	}
	return c.drain(shard, deadline)
}

// RunUntil advances every shard to exactly t: lookahead-sized windows
// with a drain+barrier between each, then the final instant. Callable
// repeatedly with increasing t.
func (c *Coordinator) RunUntil(t Time) {
	if c.stopped {
		panic("sim: RunUntil on a stopped coordinator")
	}
	c.start()
	for c.now < t {
		end := c.now + c.lookahead
		if end > t {
			end = t
		}
		// Two barriers per window: every shard drains its inboxes while
		// no producer runs, then every shard executes. A combined phase
		// would let shard A start filling a mailbox the still-draining
		// shard B is truncating.
		//
		// Every window — including the last — is exclusive of its end:
		// events at exactly t must wait until the barrier below has
		// delivered the cross-shard arrivals landing at t, or a local
		// time-t event would execute ahead of an arrival whose pedigree
		// sorts before it.
		c.round(func(i int) { c.doDrain(i, end) })
		c.round(func(i int) { c.execute(i, end) })
		c.windows++
		c.now = end
	}
	c.settle(t)
}

// RunBefore advances every shard to exactly t WITHOUT executing the
// events scheduled at t itself: the window loop of RunUntil with no
// settle phase. It is the control-point step of a segmented run — after
// it returns, every event strictly before t has executed on every
// shard and no event at or after t has, so scenario mutations applied
// now land after all pre-t effects and before every time-t event, on
// every shard, exactly as on a single engine. Handoffs landing exactly
// at t are delivered by the first drain of the next RunBefore/RunUntil
// call, still ahead of the time-t batch.
func (c *Coordinator) RunBefore(t Time) {
	if c.stopped {
		panic("sim: RunBefore on a stopped coordinator")
	}
	c.start()
	for c.now < t {
		end := c.now + c.lookahead
		if end > t {
			end = t
		}
		c.round(func(i int) { c.doDrain(i, end) })
		c.round(func(i int) { c.execute(i, end) })
		c.windows++
		c.now = end
	}
}

// settle executes the time-t batch at the end of a run.
func (c *Coordinator) settle(t Time) {
	// The final instant: handoffs transmitted in the last window can
	// land exactly at t; deliver them first, then execute the time-t
	// batch, pedigree-interleaved like any other instant. Handoffs
	// minted at t land beyond t (the lookahead is positive), so the
	// confirmation rounds terminate immediately.
	injected := make([]bool, len(c.engines))
	for {
		c.round(func(i int) { injected[i] = c.doDrain(i, t) })
		c.round(func(i int) {
			t0 := time.Now()
			c.engines[i].RunUntil(t)
			c.serialized[i] += int64(time.Since(t0))
		})
		any := false
		for _, in := range injected {
			any = any || in
		}
		if !any {
			return
		}
	}
}

// Stop terminates the worker goroutines. The coordinator cannot be used
// afterwards.
func (c *Coordinator) Stop() {
	if !c.started || c.stopped {
		return
	}
	c.stopped = true
	for i := range c.jobs {
		close(c.jobs[i])
	}
}
