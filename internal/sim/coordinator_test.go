package sim

import (
	"testing"
)

// TestRunBeforeBoundary pins RunBefore's window semantics: strictly
// earlier events run, boundary events stay queued, the clock advances
// to the boundary.
func TestRunBeforeBoundary(t *testing.T) {
	e := New(1)
	var got []int
	e.At(5, func() { got = append(got, 5) })
	e.At(10, func() { got = append(got, 10) })
	e.At(15, func() { got = append(got, 15) })
	e.RunBefore(10)
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("RunBefore(10) executed %v, want [5]", got)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.RunBefore(20)
	if len(got) != 3 {
		t.Fatalf("second window executed %v", got)
	}
}

type orderRec struct {
	order *[]string
	name  string
}

func (r orderRec) OnEvent(Time, any) { *r.order = append(*r.order, r.name) }

// TestInjectOrdersByPedigree pins the cross-engine contract: an
// injected handoff with an older scheduling pedigree executes before a
// local same-instant event that was scheduled later, and after one
// scheduled earlier.
func TestInjectOrdersByPedigree(t *testing.T) {
	src := New(1)
	src.SetShardTag(1)
	dst := New(1)
	dst.SetShardTag(0)

	var order []string

	// Local event scheduled at time 0 for t=100: pedigree (100, 0, ...).
	dst.Schedule(100, orderRec{&order, "local-early"}, nil)

	// Source engine executes an event at t=50 that mints a handoff for
	// t=100: pedigree (100, 50, ...).
	var key EventKey
	src.At(50, func() { key = src.HandoffKey(100) })
	src.RunUntil(50)

	// Local event scheduled at t=60 for t=100: pedigree (100, 60, ...).
	dst.RunUntil(60)
	dst.Schedule(100, orderRec{&order, "local-late"}, nil)

	dst.Inject(key, orderRec{&order, "injected"}, nil)
	dst.RunUntil(100)

	want := []string{"local-early", "injected", "local-late"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("execution order %v, want %v", order, want)
	}
}

// TestInjectBehindClockPanics pins the lookahead-violation guard.
func TestInjectBehindClockPanics(t *testing.T) {
	src := New(1)
	src.SetShardTag(1)
	k := src.HandoffKey(5)
	dst := New(1)
	dst.SetShardTag(0)
	dst.RunUntil(10)
	defer func() {
		if recover() == nil {
			t.Fatal("Inject behind the clock should panic")
		}
	}()
	dst.Inject(k, orderRec{new([]string), "x"}, nil)
}

// TestCoordinatorWindows drives two engines exchanging "packets"
// through a toy drain hook and checks lockstep windows and cross-shard
// delivery up to the final instant.
func TestCoordinatorWindows(t *testing.T) {
	a := New(1)
	a.SetShardTag(0)
	b := New(1)
	b.SetShardTag(1)
	const lookahead = 10

	// Shard A emits a handoff every 7 ticks, landing lookahead later on
	// shard B; the mailbox is a slice drained at window starts.
	type msg struct{ key EventKey }
	var box []msg
	delivered := 0
	var emit func()
	emit = func() {
		box = append(box, msg{a.HandoffKey(a.Now() + lookahead)})
		if a.Now()+7 <= 100 {
			a.At(a.Now()+7, emit)
		}
	}
	a.At(7, emit)

	c := NewCoordinator([]*Engine{a, b}, lookahead, nil)
	c.SetDrain(func(shard int, deadline Time) bool {
		if shard != 1 {
			return false
		}
		hit := false
		for _, m := range box {
			b.Inject(m.key, orderRec{new([]string), "pkt"}, nil)
			delivered++
			if m.key.At <= deadline {
				hit = true
			}
		}
		box = box[:0]
		return hit
	})
	c.RunUntil(110)
	c.Stop()

	if a.Now() != 110 || b.Now() != 110 {
		t.Fatalf("clocks %d/%d, want 110/110", a.Now(), b.Now())
	}
	// Emissions at 7, 14, ..., 98 => 14 handoffs, all delivered and all
	// executed (the last lands at 108 <= 110).
	if delivered != 14 {
		t.Fatalf("delivered %d handoffs, want 14", delivered)
	}
	if b.Pending() != 0 {
		t.Fatalf("%d undelivered arrivals pending on B", b.Pending())
	}
	if c.Windows() == 0 {
		t.Fatal("no synchronization windows recorded")
	}
}
