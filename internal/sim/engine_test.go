package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Second.Seconds() != 1.0 {
		t.Fatalf("Second.Seconds() = %v, want 1", Second.Seconds())
	}
	if Millisecond.Millis() != 1.0 {
		t.Fatalf("Millisecond.Millis() = %v, want 1", Millisecond.Millis())
	}
	if got := FromSeconds(2.5); got != 2*Second+500*Millisecond {
		t.Fatalf("FromSeconds(2.5) = %v", got)
	}
	if got := (1500 * Millisecond).String(); got != "1.500s" {
		t.Fatalf("String() = %q", got)
	}
}

func TestTxTime(t *testing.T) {
	// 1500 bytes at 12 kbps is exactly one second.
	if got := TxTime(1500, 12000); got != Second {
		t.Fatalf("TxTime(1500, 12000) = %v, want 1s", got)
	}
	if got := TxTime(1500, 0); got != 0 {
		t.Fatalf("TxTime with zero rate = %v, want 0", got)
	}
	if got := TxTime(1000, 8000); got != Second {
		t.Fatalf("TxTime(1000, 8000) = %v, want 1s", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := New(1)
	var order []int
	e.At(30*Millisecond, func() { order = append(order, 3) })
	e.At(10*Millisecond, func() { order = append(order, 1) })
	e.At(20*Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v", order)
	}
	if e.Now() != 30*Millisecond {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of scheduling order: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := New(1)
	ran := false
	ev := e.At(Second, func() { ran = true })
	ev.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled event executed")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// Cancelling twice must be harmless, as must cancelling nil.
	ev.Cancel()
	var nilEv *Event
	nilEv.Cancel()
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := New(1)
	e.At(Second, func() {
		// Scheduling in the past runs "now", not before.
		e.At(0, func() {
			if e.Now() != Second {
				t.Errorf("past event ran at %v", e.Now())
			}
		})
	})
	e.Run()
}

func TestEngineAfterNegativeClamps(t *testing.T) {
	e := New(1)
	ran := false
	e.After(-5*Second, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("negative After never ran")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var fired []Time
	for _, d := range []Time{Second, 2 * Second, 3 * Second} {
		d := d
		e.At(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(2 * Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 2*Second {
		t.Fatalf("clock = %v, want 2s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	// Advancing with nothing due still moves the clock.
	e.RunUntil(2500 * Millisecond)
	if e.Now() != 2500*Millisecond {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(Millisecond, recurse)
		}
	}
	e.After(Millisecond, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 100*Millisecond {
		t.Fatalf("clock = %v, want 100ms", e.Now())
	}
}

func TestTicker(t *testing.T) {
	e := New(1)
	count := 0
	tk := e.Tick(10*Millisecond, func() {
		count++
		if count == 5 {
			tk2 := count // silence linter about capture; no-op
			_ = tk2
		}
	})
	e.RunUntil(55 * Millisecond)
	if count != 5 {
		t.Fatalf("ticks = %d, want 5", count)
	}
	tk.Stop()
	e.RunUntil(200 * Millisecond)
	if count != 5 {
		t.Fatalf("ticker fired after Stop: %d", count)
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := New(1)
	count := 0
	var tk *Ticker
	tk = e.Tick(Millisecond, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("ticks = %d, want 3", count)
	}
}

func TestTickerPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive interval")
		}
	}()
	New(1).Tick(0, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func(seed uint64) []int64 {
		e := New(seed)
		var samples []int64
		e.Tick(Millisecond, func() {
			samples = append(samples, e.Rand.Int64N(1000))
		})
		e.RunUntil(20 * Millisecond)
		return samples
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestHeapOrderProperty drives the heap with random schedules and verifies
// events always pop in non-decreasing time order.
func TestHeapOrderProperty(t *testing.T) {
	prop := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		e := New(seed)
		var times []Time
		var popped []Time
		for i := 0; i < int(n)+1; i++ {
			at := Time(rng.Int64N(int64(Second)))
			times = append(times, at)
			e.At(at, func() { popped = append(popped, e.Now()) })
		}
		e.Run()
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		if len(popped) != len(times) {
			return false
		}
		for i := range times {
			if popped[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCancelProperty randomly cancels a subset of events and checks that
// exactly the surviving ones execute.
func TestCancelProperty(t *testing.T) {
	prop := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		e := New(seed)
		total := int(n) + 1
		executed := make([]bool, total)
		evs := make([]*Event, total)
		for i := 0; i < total; i++ {
			i := i
			evs[i] = e.At(Time(rng.Int64N(int64(Second))), func() { executed[i] = true })
		}
		cancelled := make([]bool, total)
		for i := 0; i < total; i++ {
			if rng.IntN(2) == 0 {
				evs[i].Cancel()
				cancelled[i] = true
			}
		}
		e.Run()
		for i := 0; i < total; i++ {
			if executed[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000)*Microsecond, func() {})
		if e.Pending() > 4096 {
			e.RunUntil(e.Now() + Millisecond)
		}
	}
	e.Run()
}
