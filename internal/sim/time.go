// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps a virtual clock with nanosecond resolution and a
// hierarchical timer wheel of scheduled events (with a binary heap as the
// far-future overflow level). Events scheduled for the same instant
// execute in scheduling order — bit-for-bit the ordering of a pure
// (time, sequence) heap — which makes every run reproducible for a fixed
// seed. Hot paths schedule through typed Handler callbacks on reusable
// or pooled Event slots, so steady-state scheduling allocates nothing.
package sim

import "fmt"

// Time is a simulated instant or duration in nanoseconds. Using a dedicated
// integer type (rather than time.Duration) keeps simulated time clearly
// separated from wall-clock time throughout the codebase.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts a floating-point number of seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String formats the time in seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// TxTime returns the serialization delay of size bytes on a link of the
// given rate in bits per second. A zero or negative rate transmits
// instantaneously, which is convenient for idealized control channels.
func TxTime(sizeBytes int, rateBps int64) Time {
	if rateBps <= 0 {
		return 0
	}
	return Time(int64(sizeBytes) * 8 * int64(Second) / rateBps)
}
