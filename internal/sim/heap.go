package sim

// eventHeap is a binary min-heap ordered by (time, sequence). It serves
// as the timer wheel's far-future overflow level (and as the whole
// scheduler in the heap-reference engine). A hand-rolled heap avoids the
// interface indirection of container/heap, and the tracked indices give
// O(log n) removal when a queued event is cancelled.
type eventHeap []*Event

func (h eventHeap) less(i, j int) bool {
	return keyLess(h[i], h[j])
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = int32(i)
	h[j].index = int32(j)
}

func (h *eventHeap) push(ev *Event) {
	*h = append(*h, ev)
	ev.index = int32(len(*h) - 1)
	h.up(int(ev.index))
}

func (h *eventHeap) pop() *Event {
	old := *h
	n := len(old)
	top := old[0]
	old.swap(0, n-1)
	old[n-1] = nil
	*h = old[:n-1]
	if n > 1 {
		h.down(0)
	}
	top.index = -1
	return top
}

// removeAt deletes the event at heap position i.
func (h *eventHeap) removeAt(i int) {
	old := *h
	n := len(old)
	if i == n-1 {
		old[n-1].index = -1
		old[n-1] = nil
		*h = old[:n-1]
		return
	}
	old.swap(i, n-1)
	old[n-1].index = -1
	old[n-1] = nil
	*h = old[:n-1]
	h.down(i)
	h.up(i)
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && h.less(r, l) {
			best = r
		}
		if !h.less(best, i) {
			return
		}
		h.swap(i, best)
		i = best
	}
}
