package sim

// eventHeap is a binary min-heap ordered by (time, sequence). A hand-rolled
// heap avoids the interface indirection of container/heap on the hottest
// path of the simulator.
type eventHeap []*Event

func (h eventHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) push(ev *Event) {
	*h = append(*h, ev)
	ev.index = len(*h) - 1
	h.up(ev.index)
}

func (h *eventHeap) pop() *Event {
	old := *h
	n := len(old)
	top := old[0]
	old.swap(0, n-1)
	old[n-1] = nil
	*h = old[:n-1]
	if n > 1 {
		h.down(0)
	}
	top.index = -1
	return top
}

func (h eventHeap) peek() *Event { return h[0] }

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && h.less(r, l) {
			best = r
		}
		if !h.less(best, i) {
			return
		}
		h.swap(i, best)
		i = best
	}
}
