package fq

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"netfence/internal/packet"
	"netfence/internal/sim"
)

func pktFrom(src packet.NodeID, as packet.ASID, size int32) *packet.Packet {
	return &packet.Packet{Src: src, SrcAS: as, Size: size}
}

// drain dequeues n packets and tallies bytes per sender.
func drainDRR(q *DRR, n int) map[packet.NodeID]int {
	got := map[packet.NodeID]int{}
	for i := 0; i < n; i++ {
		p, _ := q.Dequeue(0)
		if p == nil {
			break
		}
		got[p.Src] += int(p.Size)
	}
	return got
}

func TestDRRFairAcrossBackloggedFlows(t *testing.T) {
	q := NewDRR(BySender, 1500, 1<<20)
	// Flow 1 offers 3x the traffic of flow 2; both stay backlogged.
	for i := 0; i < 300; i++ {
		q.Enqueue(pktFrom(1, 0, 1000), 0)
	}
	for i := 0; i < 100; i++ {
		q.Enqueue(pktFrom(2, 0, 1000), 0)
	}
	got := drainDRR(q, 160)
	// While both are backlogged, service should be ~equal.
	if got[1] < 70_000 || got[1] > 90_000 || got[2] < 70_000 || got[2] > 90_000 {
		t.Fatalf("unfair service: %v", got)
	}
}

func TestDRRFairWithMixedPacketSizes(t *testing.T) {
	q := NewDRR(BySender, 1500, 1<<20)
	for i := 0; i < 400; i++ {
		q.Enqueue(pktFrom(1, 0, 1500), 0) // big packets
	}
	for i := 0; i < 4000; i++ {
		q.Enqueue(pktFrom(2, 0, 100), 0) // small packets
	}
	got := map[packet.NodeID]int{}
	for i := 0; i < 1000; i++ {
		p, _ := q.Dequeue(0)
		got[p.Src] += int(p.Size)
	}
	ratio := float64(got[1]) / float64(got[2])
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("byte-level unfairness with mixed sizes: %v (ratio %f)", got, ratio)
	}
}

func TestDRRWorkConserving(t *testing.T) {
	q := NewDRR(BySender, 1500, 1<<20)
	for i := 0; i < 10; i++ {
		q.Enqueue(pktFrom(1, 0, 500), 0)
	}
	for i := 0; i < 10; i++ {
		if p, _ := q.Dequeue(0); p == nil {
			t.Fatal("queue idle while backlogged")
		}
	}
	if p, _ := q.Dequeue(0); p != nil {
		t.Fatal("dequeue from empty returned a packet")
	}
}

func TestDRROverflowDropsFromLongestFlow(t *testing.T) {
	q := NewDRR(BySender, 1500, 10_000)
	// Flow 1 (the flood) fills the buffer.
	for i := 0; i < 20; i++ {
		q.Enqueue(pktFrom(1, 0, 1000), 0)
	}
	// Flow 2's packet must still get in, evicting from flow 1.
	if !q.Enqueue(pktFrom(2, 0, 1000), 0) {
		t.Fatal("well-behaved flow starved by flood at enqueue")
	}
	if q.Bytes() > 10_000 {
		t.Fatalf("buffer over limit: %d", q.Bytes())
	}
	// Flow 2 gets served within the first round.
	got := drainDRR(q, 2)
	if got[2] == 0 {
		t.Fatalf("flow 2 not served promptly: %v", got)
	}
}

func TestDRRFlowCount(t *testing.T) {
	q := NewDRR(BySender, 1500, 1<<20)
	for s := packet.NodeID(0); s < 50; s++ {
		q.Enqueue(pktFrom(s, 0, 100), 0)
	}
	if q.FlowCount() != 50 {
		t.Fatalf("FlowCount = %d", q.FlowCount())
	}
}

// Property: with random arrivals from k flows, service never lets one
// backlogged flow lead another by more than quantum + max packet bytes
// within a drain (DRR's fairness bound).
func TestDRRFairnessBoundProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		q := NewDRR(BySender, 1500, 1<<24)
		// Two heavily backlogged flows with random packet sizes.
		for i := 0; i < 500; i++ {
			sz := int32(64 + rng.IntN(1436))
			q.Enqueue(pktFrom(1, 0, sz), 0)
			sz = int32(64 + rng.IntN(1436))
			q.Enqueue(pktFrom(2, 0, sz), 0)
		}
		served := map[packet.NodeID]int{}
		for i := 0; i < 400; i++ {
			p, _ := q.Dequeue(0)
			served[p.Src] += int(p.Size)
			d := served[1] - served[2]
			if d < 0 {
				d = -d
			}
			// Lag bound: one quantum plus one max packet per flow.
			if d > 2*(1500+1500) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHDRRPerASThenPerSender(t *testing.T) {
	q := NewHDRR(BySourceAS, BySender, 1500, 1<<20)
	// AS 1 has 10 senders; AS 2 has 1 sender. Per-AS fairness means AS 2's
	// single sender gets as much as all of AS 1 combined.
	for s := packet.NodeID(0); s < 10; s++ {
		for i := 0; i < 100; i++ {
			q.Enqueue(pktFrom(s, 1, 1000), 0)
		}
	}
	for i := 0; i < 400; i++ {
		q.Enqueue(pktFrom(100, 2, 1000), 0)
	}
	perAS := map[packet.ASID]int{}
	for i := 0; i < 500; i++ {
		p, _ := q.Dequeue(0)
		if p == nil {
			break
		}
		perAS[p.SrcAS] += int(p.Size)
	}
	ratio := float64(perAS[1]) / float64(perAS[2])
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("per-AS unfairness: %v (ratio %f)", perAS, ratio)
	}
}

func TestHDRRInnerFairness(t *testing.T) {
	q := NewHDRR(BySourceAS, BySender, 1500, 1<<20)
	// One AS, two senders, one floods.
	for i := 0; i < 500; i++ {
		q.Enqueue(pktFrom(1, 1, 1000), 0)
	}
	for i := 0; i < 100; i++ {
		q.Enqueue(pktFrom(2, 1, 1000), 0)
	}
	served := map[packet.NodeID]int{}
	for i := 0; i < 180; i++ {
		p, _ := q.Dequeue(0)
		served[p.Src] += int(p.Size)
	}
	ratio := float64(served[1]) / float64(served[2])
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("inner unfairness: %v", served)
	}
}

func TestHDRROverflowProtectsSmallClass(t *testing.T) {
	q := NewHDRR(BySourceAS, BySender, 1500, 20_000)
	for i := 0; i < 40; i++ {
		q.Enqueue(pktFrom(1, 1, 1000), 0) // AS 1 floods
	}
	if !q.Enqueue(pktFrom(2, 2, 1000), 0) {
		t.Fatal("small AS starved at enqueue")
	}
	if q.Bytes() > 20_000 {
		t.Fatalf("over limit: %d", q.Bytes())
	}
	if q.ClassCount() != 2 {
		t.Fatalf("classes = %d", q.ClassCount())
	}
}

func TestHDRRConservation(t *testing.T) {
	prop := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		q := NewHDRR(BySourceAS, BySender, 1500, 50_000)
		enq := 0
		for i := 0; i < int(n)*4; i++ {
			p := pktFrom(packet.NodeID(rng.IntN(5)), packet.ASID(rng.IntN(3)), int32(64+rng.IntN(1400)))
			if q.Enqueue(p, sim.Time(i)) {
				enq++
			}
		}
		// Account for forced evictions recorded in stats.
		enq -= int(q.Stats().Dropped) - (int(q.Stats().Enqueued) - enq)
		out := 0
		for {
			p, _ := q.Dequeue(0)
			if p == nil {
				break
			}
			out++
		}
		return out == q.Len()+out && q.Bytes() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
