package fq

import (
	"netfence/internal/packet"
	"netfence/internal/queue"
	"netfence/internal/sim"
)

// HDRR is two-level hierarchical deficit round robin: the outer level
// shares bandwidth equally among outer keys (source ASes in TVA+ and
// StopIt), and each outer class shares its allocation equally among inner
// keys (senders). This is the "two-level hierarchical fair queuing"
// described in §6.3 of the paper.
type HDRR struct {
	outerKey   KeyFunc
	innerKey   KeyFunc
	quantum    int
	limitBytes int
	// OnDrop, when set, observes every dropped packet (arriving or
	// evicted).
	OnDrop func(p *packet.Packet)
	// Release, when set, recycles eviction victims (see DRR.Release).
	Release   func(p *packet.Packet)
	classes   map[uint64]*hdrrClass
	active    []*hdrrClass
	bytes     int
	hwm       int
	stats     queue.Stats
	flowCount int
}

type hdrrClass struct {
	key     uint64
	inner   *DRR
	deficit int
	active  bool
}

// NewHDRR returns a hierarchical DRR queue.
func NewHDRR(outer, inner KeyFunc, quantum, limitBytes int) *HDRR {
	return &HDRR{
		outerKey:   outer,
		innerKey:   inner,
		quantum:    quantum,
		limitBytes: limitBytes,
		classes:    make(map[uint64]*hdrrClass),
	}
}

// Enqueue adds p to its (outer, inner) queue, evicting from the largest
// class when the shared buffer is full.
func (h *HDRR) Enqueue(p *packet.Packet, now sim.Time) bool {
	if h.bytes+int(p.Size) > h.limitBytes {
		victim := h.largest()
		if victim == nil || victim.inner.Bytes() <= int(p.Size) {
			h.stats.Dropped++
			h.stats.DroppedBytes += uint64(p.Size)
			if h.OnDrop != nil {
				h.OnDrop(p)
			}
			return false
		}
		// Delegate the eviction to the class's own longest-queue-drop by
		// inserting into a full inner queue: shrink its limit temporarily.
		h.evictFrom(victim, int(p.Size))
	}
	c := h.class(p)
	before := c.inner.Bytes()
	if !c.inner.Enqueue(p, now) {
		h.stats.Dropped++
		h.stats.DroppedBytes += uint64(p.Size)
		if h.OnDrop != nil {
			h.OnDrop(p)
		}
		return false
	}
	h.bytes += c.inner.Bytes() - before
	if h.bytes > h.hwm {
		h.hwm = h.bytes
	}
	h.stats.Enqueued++
	if !c.active {
		c.active = true
		c.deficit = 0
		h.active = append(h.active, c)
	}
	return true
}

// evictFrom forcibly removes at least want bytes from the class's longest
// inner flow.
func (h *HDRR) evictFrom(c *hdrrClass, want int) {
	for freed := 0; freed < want; {
		f := c.inner.longest()
		if f == nil {
			return
		}
		p := f.q.PopTail()
		if p == nil {
			return
		}
		f.bytes -= int(p.Size)
		c.inner.bytes -= int(p.Size)
		c.inner.stats.Dropped++
		c.inner.stats.DroppedBytes += uint64(p.Size)
		h.bytes -= int(p.Size)
		h.stats.Dropped++
		h.stats.DroppedBytes += uint64(p.Size)
		if h.OnDrop != nil {
			h.OnDrop(p)
		}
		freed += int(p.Size)
		// Recycle last: Release resets the packet, so no field may be
		// read after it.
		if h.Release != nil {
			h.Release(p)
		}
	}
}

func (h *HDRR) class(p *packet.Packet) *hdrrClass {
	k := h.outerKey(p)
	c := h.classes[k]
	if c == nil {
		c = &hdrrClass{
			key: k,
			// Inner queues share the global buffer; give each an
			// effectively unlimited private cap.
			inner: NewDRR(h.innerKey, h.quantum, h.limitBytes),
		}
		c.inner.Release = h.Release
		h.classes[k] = c
	}
	return c
}

// largest returns the active class with the most buffered bytes.
func (h *HDRR) largest() *hdrrClass {
	var best *hdrrClass
	for _, c := range h.active {
		if c.inner.Bytes() > 0 && (best == nil || c.inner.Bytes() > best.inner.Bytes()) {
			best = c
		}
	}
	return best
}

// Dequeue serves classes in DRR order, each class serving its inner flows
// in DRR order.
func (h *HDRR) Dequeue(now sim.Time) (*packet.Packet, sim.Time) {
	for len(h.active) > 0 {
		c := h.active[0]
		if c.inner.Bytes() == 0 {
			c.active = false
			h.active = h.active[1:]
			continue
		}
		// Peek at the inner DRR's next packet size via its head flow. A
		// conservative estimate (max packet) keeps the code simple: use
		// the quantum when unknown.
		if c.deficit < h.quantum {
			c.deficit += h.quantum
			h.active = append(h.active[1:], c)
			continue
		}
		p, _ := c.inner.Dequeue(now)
		if p == nil {
			c.active = false
			h.active = h.active[1:]
			continue
		}
		c.deficit -= int(p.Size)
		h.bytes -= int(p.Size)
		h.stats.Dequeued++
		h.stats.DequeuedBytes += uint64(p.Size)
		if c.inner.Bytes() == 0 {
			c.active = false
			c.deficit = 0
			h.active = h.active[1:]
		}
		return p, 0
	}
	return nil, 0
}

// Len returns the total queued packets.
func (h *HDRR) Len() int {
	n := 0
	for _, c := range h.classes {
		n += c.inner.Len()
	}
	return n
}

// Bytes returns the total queued bytes.
func (h *HDRR) Bytes() int { return h.bytes }

// Stats returns cumulative counters.
func (h *HDRR) Stats() queue.Stats { return h.stats }

// HighWater returns the highest backlog in bytes the queue reached.
func (h *HDRR) HighWater() int { return h.hwm }

// LastDropReason reports why the last Enqueue refused a packet.
func (h *HDRR) LastDropReason() string { return "fq-full" }

// ClassCount returns the number of outer classes ever observed.
func (h *HDRR) ClassCount() int { return len(h.classes) }

// FlowCount returns the total number of inner flows ever observed.
func (h *HDRR) FlowCount() int {
	n := 0
	for _, c := range h.classes {
		n += c.inner.FlowCount()
	}
	return n
}
