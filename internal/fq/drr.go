// Package fq implements Deficit Round Robin fair queuing (Shreedhar &
// Varghese, SIGCOMM 1995) with O(1) per-packet work, plus the two-level
// hierarchical variant (first by source AS, then by sender) that TVA+ and
// StopIt use at congested links and that NetFence's §4.5 compromised-AS
// fallback relies on.
package fq

import (
	"netfence/internal/packet"
	"netfence/internal/queue"
	"netfence/internal/sim"
)

// KeyFunc maps a packet to its fair-queuing flow key. Common keys:
// BySender, ByDest, BySourceAS.
type KeyFunc func(p *packet.Packet) uint64

// BySender keys packets by source address (per-sender fairness).
func BySender(p *packet.Packet) uint64 { return uint64(uint32(p.Src)) }

// ByDest keys packets by destination address (TVA+'s regular channel).
func ByDest(p *packet.Packet) uint64 { return uint64(uint32(p.Dst)) }

// BySourceAS keys packets by origin AS (per-AS isolation, §4.5).
func BySourceAS(p *packet.Packet) uint64 { return uint64(uint32(p.SrcAS)) }

type flowQ struct {
	key     uint64
	q       queue.Ring
	bytes   int
	deficit int
	active  bool
}

// DRR is a deficit-round-robin fair queue over dynamically discovered
// flows. When the shared buffer overflows it drops from the longest flow
// queue, which preserves fairness under unresponsive floods.
type DRR struct {
	key        KeyFunc
	quantum    int
	limitBytes int
	// OnDrop, when set, observes every dropped packet (arriving or
	// evicted), letting callers attribute congestion to flows or ASes.
	OnDrop func(p *packet.Packet)
	// Release, when set, recycles packets the queue drops internally
	// (longest-queue eviction victims). Arriving packets the queue
	// rejects stay with the caller, which releases them after its own
	// observers run.
	Release func(p *packet.Packet)
	flows   map[uint64]*flowQ
	active  []*flowQ // round-robin list of backlogged flows
	bytes   int
	stats   queue.Stats
}

// NewDRR returns a DRR queue with the given flow key, quantum (use the
// maximum packet size for O(1) behaviour) and shared buffer limit.
func NewDRR(key KeyFunc, quantum, limitBytes int) *DRR {
	return &DRR{
		key:        key,
		quantum:    quantum,
		limitBytes: limitBytes,
		flows:      make(map[uint64]*flowQ),
	}
}

// Enqueue adds p to its flow's queue, evicting from the longest queue if
// the shared buffer is full.
func (d *DRR) Enqueue(p *packet.Packet, now sim.Time) bool {
	for d.bytes+int(p.Size) > d.limitBytes {
		victim := d.longest()
		if victim == nil {
			d.drop(p)
			return false
		}
		if victim.bytes <= int(p.Size) && victim == d.flow(p) {
			// The incoming packet's own flow is (one of) the longest;
			// dropping the newcomer is the cheaper equivalent.
			d.drop(p)
			return false
		}
		dropped := victim.q.PopTail()
		victim.bytes -= int(dropped.Size)
		d.bytes -= int(dropped.Size)
		d.drop(dropped)
		if d.Release != nil {
			d.Release(dropped)
		}
	}
	f := d.flow(p)
	p.EnqueuedAt = now
	f.q.Push(p)
	f.bytes += int(p.Size)
	d.bytes += int(p.Size)
	d.stats.Enqueued++
	if !f.active {
		f.active = true
		f.deficit = 0
		d.active = append(d.active, f)
	}
	return true
}

func (d *DRR) drop(p *packet.Packet) {
	d.stats.Dropped++
	d.stats.DroppedBytes += uint64(p.Size)
	if d.OnDrop != nil {
		d.OnDrop(p)
	}
}

func (d *DRR) flow(p *packet.Packet) *flowQ {
	k := d.key(p)
	f := d.flows[k]
	if f == nil {
		f = &flowQ{key: k}
		d.flows[k] = f
	}
	return f
}

// longest returns the backlogged flow with the most bytes.
func (d *DRR) longest() *flowQ {
	var best *flowQ
	for _, f := range d.active {
		if f.q.Len() > 0 && (best == nil || f.bytes > best.bytes) {
			best = f
		}
	}
	return best
}

// Dequeue serves flows in deficit round robin order.
func (d *DRR) Dequeue(now sim.Time) (*packet.Packet, sim.Time) {
	for len(d.active) > 0 {
		f := d.active[0]
		head := f.q.Peek()
		if head == nil {
			// Flow drained: retire it from the round.
			f.active = false
			d.active = d.active[1:]
			continue
		}
		if f.deficit < int(head.Size) {
			f.deficit += d.quantum
			// Move to the tail of the round.
			d.active = append(d.active[1:], f)
			continue
		}
		f.q.Pop()
		f.deficit -= int(head.Size)
		f.bytes -= int(head.Size)
		d.bytes -= int(head.Size)
		d.stats.Dequeued++
		d.stats.DequeuedBytes += uint64(head.Size)
		if f.q.Len() == 0 {
			f.active = false
			f.deficit = 0
			d.active = d.active[1:]
		}
		return head, 0
	}
	return nil, 0
}

// Len returns the total number of queued packets.
func (d *DRR) Len() int {
	n := 0
	for _, f := range d.flows {
		n += f.q.Len()
	}
	return n
}

// Bytes returns the total queued bytes.
func (d *DRR) Bytes() int { return d.bytes }

// Stats returns cumulative counters.
func (d *DRR) Stats() queue.Stats { return d.stats }

// FlowCount returns the number of flows ever observed (state footprint —
// the quantity NetFence's design minimizes at bottleneck routers).
func (d *DRR) FlowCount() int { return len(d.flows) }
