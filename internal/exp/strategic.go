package exp

import (
	"fmt"

	"netfence/internal/attack"
	"netfence/internal/core"
	"netfence/internal/defense"
	"netfence/internal/metrics"
	"netfence/internal/packet"
	"netfence/internal/sim"
	"netfence/internal/topo"
	"netfence/internal/transport"
)

// strategicLineup is the §6.3 adaptive-adversary lineup: every in-tree
// attack strategy, from the plain flood to the policer-aware shapes.
var strategicLineup = []string{"flood", "onoff-sync", "request-prio", "replay", "legacy-flood"}

// strategicNu is the assumed transport efficiency ν discounting the
// Theorem-1 rate-limit bound to a goodput floor (BoundProbe's default).
const strategicNu = attack.DefaultNu

// Strategic pits every in-tree attack strategy (the fixed
// strategicLineup, so the figure is reproducible regardless of what
// third parties register) against every compared defense on the §6.3.1
// dumbbell: 25% long-running TCP users against 75%
// attackers driving the strategy at colluding receivers. Each cell's
// legitimate goodput is compared with the Theorem-1 floor ν·ρ·C/(G+B) —
// the share the paper guarantees a legitimate sender keeps regardless of
// the attackers' strategy. The paper's claim, measured: NetFence clears
// the floor for every strategy, while the baselines (TVA+ against
// colluders foremost) fall below it under at least one.
func Strategic(sc Scale) Result {
	label := sc.Labels[0]
	bottleneck := sc.BottleneckBps(label)
	floor := strategicNu * attack.TheoremBound(core.DefaultConfig(), bottleneck, sc.Senders)
	res := Result{
		Name: "Strategic attacks",
		Title: fmt.Sprintf("legit goodput vs the Theorem-1 floor ν·ρ·C/(G+B) = %.0f kbps (%dK senders)",
			floor/1000, label/1000),
		Columns: []string{"strategy", "system", "legit kbps", "attacker kbps", "floor kbps", "holds"},
	}
	for _, strat := range strategicLineup {
		for _, kind := range sc.Compared() {
			c := strategicCell(sc, label, kind, strat, nil)
			res.AddRow(
				strat,
				string(kind),
				fmt.Sprintf("%.0f", c.legitBps/1000),
				fmt.Sprintf("%.0f", c.atkBps/1000),
				fmt.Sprintf("%.0f", floor/1000),
				fmt.Sprintf("%v", c.legitBps >= floor),
			)
		}
	}
	res.Note("Theorem 1 bounds the rate LIMIT at ρ·C/(G+B), ρ=(1-δ)³=0.729; the goodput floor discounts it by an assumed TCP efficiency ν=%.1f", strategicNu)
	res.Note("paper shape: NetFence holds the floor under every strategy; TVA+ falls below it against colluder floods (capabilities granted), and replay/legacy shapes are demoted to the request/legacy channels")
	return res
}

// strategicCell runs one (strategy, system) cell: the fig9 collusion
// split with the attackers driven by the attack subsystem instead of
// static UDP sources. params overrides the strategy's tunable
// parameters (nil = the hand-written defaults) — the worst-case
// search's evaluation surface.
func strategicCell(sc Scale, label int, kind SystemKind, stratName string, params map[string]float64) fig9Out {
	eng := sc.attach(sim.New(sc.Seed))
	bottleneck := sc.BottleneckBps(label)
	cfg := topo.DefaultDumbbell(sc.Senders, bottleneck)
	cfg.ColluderASes = 9
	d := topo.NewDumbbell(eng, cfg)
	nfCfg := core.DefaultConfig()
	s := buildSystem(kind, d.Net, nfCfg)
	// Colluding receivers do not identify attack traffic: no Deny.
	d.Deploy(s, defense.Policy{})

	legit, attackers := fig9Roles(d, cfg.HostsPerAS)

	delivered := make(map[packet.NodeID]*int64, len(legit))
	for _, h := range legit {
		delivered[h.ID] = new(int64)
	}
	for _, h := range legit {
		flow := d.Net.NextFlow()
		r := transport.NewTCPReceiver(d.Victim.Host, flow)
		ctr := delivered[h.ID]
		r.OnDeliver = func(b int) { *ctr += int64(b) }
		transport.NewTCPSender(h.Host, d.Victim.ID, flow, -1, transport.DefaultTCP()).Start()
	}

	env := &attack.Env{Eng: eng, Attackers: len(attackers), BottleneckBps: bottleneck, Config: nfCfg}
	strat, err := attack.Build(stratName, attack.BuildOptions{RateBps: 1_000_000, Env: env, Params: params})
	if err != nil {
		// The lineup is fixed in-tree; an unknown name is a programmer
		// error, not a runtime condition.
		panic(err)
	}
	ctrl := attack.NewController(strat, env)
	sinks := make([]*transport.UDPSink, len(attackers))
	for i, a := range attackers {
		col := d.Colluders[i%len(d.Colluders)]
		flow := packet.FlowID(2_000_000 + i)
		sinks[i] = transport.NewUDPSink(col.Host, flow)
		ctrl.AddSender(a.Host, col.ID, flow)
	}
	ctrl.Start()

	eng.RunUntil(sc.Warmup)
	legitMark := make([]int64, len(legit))
	for i, h := range legit {
		legitMark[i] = *delivered[h.ID]
	}
	atkMark := make([]uint64, len(sinks))
	for i, s := range sinks {
		atkMark[i] = s.Bytes
	}
	txMark := d.Bottleneck.TxBytes

	eng.RunUntil(sc.Duration)
	ctrl.Stop()
	window := (sc.Duration - sc.Warmup).Seconds()
	legitRates := make([]float64, len(legit))
	for i, h := range legit {
		legitRates[i] = float64(*delivered[h.ID]-legitMark[i]) * 8 / window
	}
	atkRates := make([]float64, len(sinks))
	for i, s := range sinks {
		atkRates[i] = float64(s.Bytes-atkMark[i]) * 8 / window
	}
	legitMean, _ := metrics.MeanStd(legitRates)
	atkMean, _ := metrics.MeanStd(atkRates)
	out := fig9Out{
		legitBps: legitMean,
		atkBps:   atkMean,
		jain:     metrics.Jain(legitRates),
		util:     d.Bottleneck.Utilization(txMark, sc.Duration-sc.Warmup),
	}
	if atkMean > 0 {
		out.ratio = legitMean / atkMean
	}
	return out
}
