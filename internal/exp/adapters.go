package exp

import (
	"netfence/internal/baseline"
	"netfence/internal/defense"
	"netfence/internal/netsim"
)

// Thin constructors keeping exp.go free of direct baseline imports at
// call sites.

func newTVA() defense.System                     { return baseline.NewTVA() }
func newStopIt(n *netsim.Network) defense.System { return baseline.NewStopIt(n) }
func newFQ() defense.System                      { return baseline.NewFQ() }
func newNone() defense.System                    { return baseline.NewNone() }
