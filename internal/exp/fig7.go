package exp

import (
	"fmt"
	"testing"

	"netfence/internal/cmac"
	"netfence/internal/feedback"
	"netfence/internal/header"
	"netfence/internal/packet"
)

// Fig7 regenerates the micro-benchmark table of Figure 7: per-packet
// router processing overhead in nanoseconds. The measured operations are
// the same ones the authors' Click elements perform — parse the shim
// header, do the AES-MAC work of Eq. (1)-(3), re-encode — on the same
// packet shapes (92 B requests, 1500 B regular packets; header sizes per
// Figure 6). The paper's numbers for NetFence and TVA+ on 3 GHz Xeons are
// included for comparison; absolute values differ with hardware, shapes
// should not.
func Fig7(sc Scale) Result {
	res := Result{
		Name:    "Figure 7",
		Title:   "per-packet processing overhead (ns/pkt)",
		Columns: []string{"packet", "router", "case", "measured ns/pkt", "paper NetFence", "paper TVA+"},
	}

	var ka, kaiKey cmac.Key
	ka[0], kaiKey[0] = 1, 2
	ring := feedback.NewKeyRingFromKey(ka)
	kai := cmac.New(kaiKey)
	lookup := func(packet.LinkID) *cmac.CMAC { return kai }
	const (
		src  packet.NodeID = 10
		dst  packet.NodeID = 20
		link packet.LinkID = 7
	)

	bench := func(fn func()) string {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		return fmt.Sprintf("%d", r.NsPerOp())
	}

	// Request packet, bottleneck router, no attack: the mon machinery is
	// idle; the packet is forwarded untouched.
	res.AddRow("request", "bottleneck", "no attack", "0", "0", "389")

	// Request packet, bottleneck router, attack: stamp L-down (rule 1).
	var reqBuf [header.MaxSize]byte
	mkRequest := func() int {
		h := header.Header{Ver: header.Version, Request: true, Proto: packet.ProtoTCP}
		n := header.Encode(reqBuf[:], &h)
		m, _ := header.AccessStampRequest(reqBuf[:n], ring, src, dst, 100)
		return m
	}
	n := mkRequest()
	res.AddRow("request", "bottleneck", "attack", bench(func() {
		mkRequest() // restore nop
		header.BottleneckStampMon(reqBuf[:n], kai, link, src, dst, true, 100)
	}), "492", "389")

	// Request packet, access router: stamp nop feedback.
	res.AddRow("request", "access", "either", bench(func() {
		header.AccessStampRequest(reqBuf[:n], ring, src, dst, 100)
	}), "546", "—")

	// Regular packet, bottleneck, no attack: untouched.
	res.AddRow("regular", "bottleneck", "no attack", "0", "0", "—")

	// Regular packet, bottleneck, attack: overwrite L-up with L-down.
	var regBuf [header.MaxSize]byte
	mkIncr := func() int {
		p := packet.Packet{Src: src, Dst: dst}
		feedback.StampIncr(ring.Current(), &p, 100, link)
		h := header.Header{Ver: header.Version, Proto: packet.ProtoTCP, FB: p.FB}
		return header.Encode(regBuf[:], &h)
	}
	rn := mkIncr()
	res.AddRow("regular", "bottleneck", "attack", bench(func() {
		mkIncr()
		header.BottleneckStampMon(regBuf[:rn], kai, link, src, dst, true, 100)
	}), "554", "—")

	// Regular packet, access router, no attack: validate + refresh nop.
	var nopBuf [header.MaxSize]byte
	{
		p := packet.Packet{Src: src, Dst: dst}
		feedback.StampNop(ring.Current(), &p, 100)
		h := header.Header{Ver: header.Version, Proto: packet.ProtoTCP, FB: p.FB}
		header.Encode(nopBuf[:], &h)
	}
	res.AddRow("regular", "access", "no attack", bench(func() {
		header.AccessProcessRegular(nopBuf[:], ring, lookup, src, dst, 100, 4)
	}), "781", "791")

	// Regular packet, access router, attack: validate L-down (token_nop
	// recomputation + Eq. 3) and restamp L-up with a fresh token_nop —
	// the heaviest path.
	var monBuf [header.MaxSize]byte
	mkDecr := func() int {
		p := packet.Packet{Src: src, Dst: dst}
		feedback.StampNop(ring.Current(), &p, 100)
		feedback.StampDecr(kai, &p, link)
		h := header.Header{Ver: header.Version, Proto: packet.ProtoTCP, FB: p.FB}
		return header.Encode(monBuf[:], &h)
	}
	mn := mkDecr()
	res.AddRow("regular", "access", "attack", bench(func() {
		mkDecr()
		header.AccessProcessRegular(monBuf[:mn], ring, lookup, src, dst, 100, 4)
	}), "1267", "—")

	res.Note("paper numbers measured on 3 GHz Xeon/Linux Click (§6.2); this table on the local CPU with stdlib AES")
	res.Note("TVA+ column per the paper; capability caching excluded there for needing per-flow router state")
	return res
}

// HeaderSizes regenerates the §6.1 header-size accounting (experiment
// E11 in DESIGN.md).
func HeaderSizes(sc Scale) Result {
	res := Result{
		Name:    "§6.1",
		Title:   "NetFence header sizes on the wire",
		Columns: []string{"forward feedback", "returned feedback", "bytes"},
	}
	shapes := []struct {
		fwd, ret string
		h        header.Header
	}{
		{"nop", "omitted", header.Header{Ver: header.Version}},
		{"nop", "nop", header.Header{Ver: header.Version, HasRet: true,
			Ret: packet.Returned{Present: true}}},
		{"mon L-down", "nop", header.Header{Ver: header.Version,
			FB:     packet.Feedback{Mode: packet.FBMon, Action: packet.ActDecr},
			HasRet: true, Ret: packet.Returned{Present: true}}},
		{"mon L-up", "mon", header.Header{Ver: header.Version,
			FB:     packet.Feedback{Mode: packet.FBMon, Action: packet.ActIncr},
			HasRet: true, Ret: packet.Returned{Present: true, Mode: packet.FBMon}}},
	}
	for _, s := range shapes {
		res.AddRow(s.fwd, s.ret, fmt.Sprintf("%d", header.EncodedSize(&s.h)))
	}
	res.Note("paper: 20 B common case, 28 B worst case; worst case matches exactly, common case depends on return-header omission")
	return res
}
