package exp

import (
	"fmt"

	"netfence/internal/core"
	"netfence/internal/defense"
	"netfence/internal/metrics"
	"netfence/internal/packet"
	"netfence/internal/sim"
	"netfence/internal/topo"
	"netfence/internal/transport"
)

// Fig11 regenerates Figure 11: average user throughput under microscopic
// on-off attacks. Users run long TCP; attackers send synchronized 1 Mbps
// bursts with on-period Ton and off-period Toff. The emulated population
// is 100K senders (each fair share 100 kbps as if attackers were always
// on); the claim is that no burst shape depresses users below that.
func Fig11(sc Scale) Result {
	res := Result{
		Name:    "Figure 11",
		Title:   "avg user throughput (kbps) under synchronized on-off attacks, 100K senders",
		Columns: []string{"Toff (s)", "Ton=0.5s", "Ton=4s"},
	}
	toffs := []sim.Time{1500 * sim.Millisecond, 10 * sim.Second, 50 * sim.Second, 100 * sim.Second}
	if sc.Name == "tiny" {
		toffs = []sim.Time{1500 * sim.Millisecond, 50 * sim.Second}
	}
	for _, toff := range toffs {
		short := fig11Cell(sc, 500*sim.Millisecond, toff)
		long := fig11Cell(sc, 4*sim.Second, toff)
		res.AddRow(
			fmt.Sprintf("%.1f", toff.Seconds()),
			fmt.Sprintf("%.0f", short/1000),
			fmt.Sprintf("%.0f", long/1000),
		)
	}
	res.Note("paper shape: >=100 kbps everywhere (fair share with always-on attackers), climbing toward ~400 kbps as Toff grows")
	return res
}

func fig11Cell(sc Scale, ton, toff sim.Time) float64 {
	eng := sc.attach(sim.New(sc.Seed))
	const label = 100_000 // 100 kbps fair share
	bottleneck := sc.BottleneckBps(label)
	cfg := topo.DefaultDumbbell(sc.Senders, bottleneck)
	cfg.ColluderASes = 9
	d := topo.NewDumbbell(eng, cfg)
	s := core.NewSystem(d.Net, core.DefaultConfig())
	d.Deploy(s, defense.Policy{})

	legit, attackers := fig9Roles(d, cfg.HostsPerAS)
	receivers := make([]*transport.TCPReceiver, len(legit))
	for i, h := range legit {
		flow := d.Net.NextFlow()
		receivers[i] = transport.NewTCPReceiver(d.Victim.Host, flow)
		transport.NewTCPSender(h.Host, d.Victim.ID, flow, -1, transport.DefaultTCP()).Start()
	}
	for i, a := range attackers {
		col := d.Colluders[i%len(d.Colluders)]
		flow := packet.FlowID(2_000_000 + i)
		transport.NewUDPSink(col.Host, flow)
		u := transport.NewUDPSource(a.Host, col.ID, flow, 1_000_000, packet.SizeData)
		u.OnTime = ton
		u.OffTime = toff
		u.Start() // all sources share phase: synchronized bursts
	}

	eng.RunUntil(sc.Warmup)
	marks := make([]int64, len(receivers))
	for i, r := range receivers {
		marks[i] = r.DeliveredBytes()
	}
	eng.RunUntil(sc.Duration)
	window := (sc.Duration - sc.Warmup).Seconds()
	rates := make([]float64, len(receivers))
	for i, r := range receivers {
		rates[i] = float64(r.DeliveredBytes()-marks[i]) * 8 / window
	}
	mean, _ := metrics.MeanStd(rates)
	return mean
}
