package exp

import (
	"fmt"

	"netfence/internal/attack"
	"netfence/internal/core"
	"netfence/internal/defense"
	"netfence/internal/metrics"
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
	"netfence/internal/topo"
	"netfence/internal/transport"
)

// Fig8 regenerates Figure 8: the average transfer time of a 20 KB file
// when the targeted victim can identify and wishes to remove the attack
// traffic. One legitimate user per source AS repeatedly sends the file
// over fresh TCP connections; every other sender attacks with the most
// effective flood against the deployed system (§6.3.1): request floods at
// the strategic priority level against NetFence, request floods against
// TVA+, and direct UDP floods against StopIt (which filters them) and FQ
// (which cannot).
func Fig8(sc Scale) Result {
	res := Result{
		Name:    "Figure 8",
		Title:   "mean 20 KB file transfer time under unwanted-traffic flooding",
		Columns: []string{"senders", "system", "mean FCT (s)", "p95 (s)", "completion", "transfers"},
	}
	for _, label := range sc.Labels {
		for _, kind := range sc.Compared() {
			fct := fig8Cell(sc, label, kind)
			res.AddRow(
				fmt.Sprintf("%dK", label/1000),
				string(kind),
				fmt.Sprintf("%.2f", fct.Mean().Seconds()),
				fmt.Sprintf("%.2f", fct.Percentile(95).Seconds()),
				fmt.Sprintf("%.0f%%", 100*fct.CompletionRatio()),
				fmt.Sprintf("%d", fct.Count()+fct.Failed()),
			)
		}
	}
	res.Note("paper shape: StopIt < TVA+ < NetFence (+~1 s request backoff), FQ grows linearly with senders; 100%% completion everywhere")
	return res
}

// StrategicRequestLevel computes the attack strategy of §6.3.1; it lives
// in the attack subsystem (the adversary's decision, a pure function of
// the public NetFence parameters) and is re-exported here for the
// experiment harness.
func StrategicRequestLevel(attackers int, bottleneckBps int64, cfg core.Config) uint8 {
	return attack.StrategicRequestLevel(attackers, bottleneckBps, cfg)
}

// fig8Roles splits a dumbbell's senders: the first host of each source
// AS is the legitimate user (the paper's one-user-per-AS stress setup).
func fig8Roles(d *topo.Dumbbell, hostsPerAS int) (legit, attackers []*netsim.Node) {
	for i, h := range d.Senders {
		if i%hostsPerAS == 0 {
			legit = append(legit, h)
		} else {
			attackers = append(attackers, h)
		}
	}
	return legit, attackers
}

func fig8Cell(sc Scale, label int, kind SystemKind) *metrics.FCT {
	eng := sc.attach(sim.New(sc.Seed))
	bottleneck := sc.BottleneckBps(label)
	cfg := topo.DefaultDumbbell(sc.Senders, bottleneck)
	d := topo.NewDumbbell(eng, cfg)
	nfCfg := core.DefaultConfig()
	s := buildSystem(kind, d.Net, nfCfg)

	legit, attackers := fig8Roles(d, cfg.HostsPerAS)
	denySet := make(map[packet.NodeID]bool, len(attackers))
	for _, a := range attackers {
		denySet[a.ID] = true
	}
	d.Deploy(s, defense.Policy{Deny: func(src packet.NodeID) bool {
		return denySet[src]
	}})
	d.Victim.Host.OnUnknownFlow = func(p *packet.Packet) netsim.Agent {
		if p.Proto != packet.ProtoTCP {
			return nil
		}
		return transport.NewTCPReceiver(d.Victim.Host, p.Flow)
	}

	fct := &metrics.FCT{}
	clients := make([]*transport.FileClient, 0, len(legit))
	for _, h := range legit {
		c := transport.NewFileClient(h.Host, d.Victim.ID, 20_000, transport.DefaultTCP())
		c.OnResult = func(d sim.Time, ok bool) { fct.Add(d, ok) }
		clients = append(clients, c)
		c.Start()
	}

	const atkRate = 1_000_000
	level := StrategicRequestLevel(len(attackers), bottleneck, nfCfg)
	for i, a := range attackers {
		flow := packet.FlowID(1_000_000 + i)
		switch kind {
		case SysNetFence:
			transport.NewRequestFlooder(a.Host, d.Victim.ID, flow, atkRate, level).Start()
		case SysTVA:
			// TVA+'s request channel has no priority levels; flood flat.
			transport.NewRequestFlooder(a.Host, d.Victim.ID, flow, atkRate, 0).Start()
		default:
			transport.NewUDPSource(a.Host, d.Victim.ID, flow, atkRate, packet.SizeData).Start()
		}
	}

	eng.RunUntil(sc.Duration)
	for _, c := range clients {
		c.Stop()
	}
	return fct
}
