package exp

import (
	"fmt"
	"math"

	"netfence/internal/core"
	"netfence/internal/defense"
	"netfence/internal/metrics"
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
	"netfence/internal/topo"
	"netfence/internal/transport"
)

// Theorem empirically checks the §3.4/Appendix A fair-share guarantee.
// What Appendix A proves is a bound on the rate LIMIT: for any sender
// with sufficient demand, its access-router rate limit r_a satisfies
// r_a >= rho*C/(G+B) with rho = (1-delta)^3, in every steady-state
// control interval, regardless of the attack strategy; the sender's
// throughput is then nu * r_a where nu is its transport's efficiency.
// Each row pits users against a different adversarial strategy and
// compares every user's end-of-run rate limit against the bound; the
// realized minimum throughput and implied nu are reported alongside.
func Theorem(sc Scale) Result {
	cfg := core.DefaultConfig()
	rho := math.Pow(1-cfg.MD, 3)
	res := Result{
		Name:  "§3.4 theorem",
		Title: "fair-share lower bound rho*C/(G+B) on rate limits, rho=" + fmt.Sprintf("%.3f", rho),
		Columns: []string{"attack strategy", "fair kbps", "bound kbps",
			"min rate-limit kbps", "min user kbps", "implied nu", "holds"},
	}
	strategies := []struct {
		name string
		ton  sim.Time
		toff sim.Time
	}{
		{"constant 1 Mbps flood", 0, 0},
		{"on-off 0.5s/1.5s synchronized", 500 * sim.Millisecond, 1500 * sim.Millisecond},
		{"on-off 2s/2s (control-interval aligned)", 2 * sim.Second, 2 * sim.Second},
	}
	for _, st := range strategies {
		out := theoremCell(sc, st.ton, st.toff)
		bound := rho * out.fair
		nu := 0.0
		if out.meanLimit > 0 {
			nu = out.meanUser / out.meanLimit
		}
		res.AddRow(st.name,
			fmt.Sprintf("%.0f", out.fair/1000),
			fmt.Sprintf("%.0f", bound/1000),
			fmt.Sprintf("%.0f", out.minGreedyLimit/1000),
			fmt.Sprintf("%.0f", out.minUser/1000),
			fmt.Sprintf("%.2f", nu),
			fmt.Sprintf("%v", out.minGreedyLimit >= bound*0.95), // 5% sampling slack
		)
	}
	res.Note("the bound applies to senders with sufficient demand (Appendix A); greedy constant senders always qualify, so their limits carry the check")
	res.Note("TCP users in deep RTO backoff transiently lack sufficient demand, so their limits (and nu) can sit lower at small scales")
	return res
}

type theoremOut struct {
	fair float64
	// minGreedyLimit is the smallest rate limit across senders with
	// provably sufficient demand (the greedy constant senders).
	minGreedyLimit float64
	// meanLimit and user stats describe the TCP users.
	meanLimit         float64
	minUser, meanUser float64
}

func theoremCell(sc Scale, ton, toff sim.Time) theoremOut {
	eng := sc.attach(sim.New(sc.Seed))
	const label = 100_000
	bottleneck := sc.BottleneckBps(label)
	cfg := topo.DefaultDumbbell(sc.Senders, bottleneck)
	cfg.ColluderASes = 9
	d := topo.NewDumbbell(eng, cfg)
	s := core.NewSystem(d.Net, core.DefaultConfig())
	d.Deploy(s, defense.Policy{})

	legit, attackers := fig9Roles(d, cfg.HostsPerAS)
	// The first two legitimate senders are greedy constant-rate probes:
	// senders with provably sufficient demand in every control interval,
	// whose rate limits carry the Appendix A bound check. The rest run
	// long TCP for the throughput/nu columns.
	nProbes := 2
	if nProbes > len(legit)-1 {
		nProbes = len(legit) - 1
	}
	probes := legit[:nProbes]
	legit = legit[nProbes:]
	for i, h := range probes {
		flow := packet.FlowID(4_000_000 + i)
		transport.NewUDPSink(d.Victim.Host, flow)
		transport.NewUDPSource(h.Host, d.Victim.ID, flow, 1_000_000, packet.SizeData).Start()
	}
	receivers := make([]*transport.TCPReceiver, len(legit))
	for i, h := range legit {
		flow := d.Net.NextFlow()
		receivers[i] = transport.NewTCPReceiver(d.Victim.Host, flow)
		transport.NewTCPSender(h.Host, d.Victim.ID, flow, -1, transport.DefaultTCP()).Start()
	}
	for i, a := range attackers {
		col := d.Colluders[i%len(d.Colluders)]
		flow := packet.FlowID(2_000_000 + i)
		transport.NewUDPSink(col.Host, flow)
		u := transport.NewUDPSource(a.Host, col.ID, flow, 1_000_000, packet.SizeData)
		u.OnTime, u.OffTime = ton, toff
		u.Start()
	}

	eng.RunUntil(sc.Warmup)
	marks := make([]int64, len(receivers))
	for i, r := range receivers {
		marks[i] = r.DeliveredBytes()
	}
	eng.RunUntil(sc.Duration)
	window := (sc.Duration - sc.Warmup).Seconds()
	rates := make([]float64, len(receivers))
	for i, r := range receivers {
		rates[i] = float64(r.DeliveredBytes()-marks[i]) * 8 / window
	}
	out := theoremOut{fair: float64(bottleneck) / float64(sc.Senders)}
	out.minUser = math.Inf(1)
	for _, r := range rates {
		out.minUser = math.Min(out.minUser, r)
	}
	out.meanUser, _ = metrics.MeanStd(rates)
	// Rate limits: users for the nu estimate, greedy senders (the
	// attackers, who always have sufficient demand) for the bound check.
	limitOf := func(h *netsim.Node) (float64, bool) {
		for _, ra := range d.SrcAccess {
			if ar := s.Access(ra); ar != nil {
				if lim := ar.Limiter(h.ID, d.Bottleneck.ID); lim != nil {
					return float64(lim.Rate()), true
				}
			}
		}
		return 0, false
	}
	var sum float64
	n := 0
	for _, h := range legit {
		if v, ok := limitOf(h); ok {
			sum += v
			n++
		}
	}
	if n > 0 {
		out.meanLimit = sum / float64(n)
	}
	out.minGreedyLimit = math.Inf(1)
	found := false
	for _, h := range probes {
		if v, ok := limitOf(h); ok {
			out.minGreedyLimit = math.Min(out.minGreedyLimit, v)
			found = true
		}
	}
	if !found {
		out.minGreedyLimit = 0
	}
	_ = attackers
	return out
}
