package exp

import (
	"fmt"

	"netfence/internal/core"
	"netfence/internal/defense"
	"netfence/internal/metrics"
	"netfence/internal/packet"
	"netfence/internal/sim"
	"netfence/internal/topo"
	"netfence/internal/transport"
)

// Mode selects the NetFence multi-bottleneck variant.
type Mode int

// The three variants of the multi-bottleneck study.
const (
	// ModeCore is the paper's core design: one feedback per packet
	// (Figure 10).
	ModeCore Mode = iota
	// ModeMultiFB carries feedback from every on-path bottleneck
	// (Appendix B.1, Figure 13).
	ModeMultiFB
	// ModeInfer infers on-path limiters per destination (Appendix B.2,
	// Figure 14).
	ModeInfer
)

func (m Mode) String() string {
	switch m {
	case ModeMultiFB:
		return "multi-feedback (B.1)"
	case ModeInfer:
		return "inference (B.2)"
	}
	return "core"
}

// Fig10 regenerates the parking-lot experiments: Figure 10 (core),
// Figure 13 (B.1) and Figure 14 (B.2). Three sender groups of 25% users
// / 75% attackers: Group A crosses both bottlenecks, B only the second,
// C only the first. The per-sender max-min fair share for Group A is
// 80 kbps in every configuration; the question is how close A's users
// and attackers get under each design.
func Fig10(sc Scale, mode Mode) Result {
	name := map[Mode]string{ModeCore: "Figure 10", ModeMultiFB: "Figure 13", ModeInfer: "Figure 14"}[mode]
	res := Result{
		Name:    name,
		Title:   "parking-lot sender throughput (kbps), " + mode.String(),
		Columns: []string{"capacities", "A-user kbps", "A-attacker kbps", "B-user kbps", "C-user kbps"},
	}
	// Per-sender fair share target is 80 kbps: a 160 Mbps link serves
	// 2*1000 crossing senders in the paper; scale capacities so that
	// 2*PLGroup senders see the same share.
	base := int64(2*sc.PLGroup) * 80_000 // the "160 Mbps" analogue
	big := base * 3 / 2                  // the "240 Mbps" analogue
	configs := []struct {
		label  string
		l1, l2 int64
	}{
		{"160M-160M", base, base},
		{"240M-160M", big, base},
		{"160M-240M", base, big},
	}
	for _, c := range configs {
		out := fig10Cell(sc, mode, c.l1, c.l2)
		res.AddRow(c.label,
			fmt.Sprintf("%.0f", out.aUser/1000),
			fmt.Sprintf("%.0f", out.aAtk/1000),
			fmt.Sprintf("%.0f", out.bUser/1000),
			fmt.Sprintf("%.0f", out.cUser/1000),
		)
	}
	switch mode {
	case ModeCore:
		res.Note("paper shape: A under-achieves its 80 kbps share when L1<L2 (single-feedback limiter switching), user below attacker in 160M-240M")
	default:
		res.Note("paper shape: both extensions restore Group A to ~80 kbps with user ≈ attacker")
	}
	return res
}

type fig10Out struct {
	aUser, aAtk, bUser, cUser float64
}

func fig10Cell(sc Scale, mode Mode, l1, l2 int64) fig10Out {
	eng := sc.attach(sim.New(sc.Seed))
	cfg := topo.DefaultParkingLot(sc.PLGroup, l1, l2)
	pl := topo.NewParkingLot(eng, cfg)
	nfCfg := core.DefaultConfig()
	nfCfg.MultiFeedback = mode == ModeMultiFB
	nfCfg.InferLimiters = mode == ModeInfer
	s := core.NewSystem(pl.Net, nfCfg)
	pl.Deploy(s, defense.Policy{})

	type groupState struct {
		userCtr []*int64
		sinks   []*transport.UDPSink
	}
	var groups [3]groupState
	for g := range pl.Groups {
		grp := &pl.Groups[g]
		quarter := (len(grp.Senders) + 3) / 4
		for i, h := range grp.Senders {
			if i < quarter {
				ctr := new(int64)
				groups[g].userCtr = append(groups[g].userCtr, ctr)
				flow := pl.Net.NextFlow()
				r := transport.NewTCPReceiver(grp.Victim.Host, flow)
				r.OnDeliver = func(b int) { *ctr += int64(b) }
				transport.NewTCPSender(h.Host, grp.Victim.ID, flow, -1, transport.DefaultTCP()).Start()
			} else {
				col := grp.Colluders[i%len(grp.Colluders)]
				flow := packet.FlowID(uint32(3_000_000 + g*100_000 + i))
				groups[g].sinks = append(groups[g].sinks, transport.NewUDPSink(col.Host, flow))
				transport.NewUDPSource(h.Host, col.ID, flow, 1_000_000, packet.SizeData).Start()
			}
		}
	}

	eng.RunUntil(sc.Warmup)
	userMark := make([][]int64, 3)
	atkMark := make([][]uint64, 3)
	for g := range groups {
		for _, c := range groups[g].userCtr {
			userMark[g] = append(userMark[g], *c)
		}
		for _, s := range groups[g].sinks {
			atkMark[g] = append(atkMark[g], s.Bytes)
		}
	}
	eng.RunUntil(sc.Duration)
	window := (sc.Duration - sc.Warmup).Seconds()
	avg := func(g int, users bool) float64 {
		var rates []float64
		if users {
			for i, c := range groups[g].userCtr {
				rates = append(rates, float64(*c-userMark[g][i])*8/window)
			}
		} else {
			for i, s := range groups[g].sinks {
				rates = append(rates, float64(s.Bytes-atkMark[g][i])*8/window)
			}
		}
		m, _ := metrics.MeanStd(rates)
		return m
	}
	return fig10Out{
		aUser: avg(0, true),
		aAtk:  avg(0, false),
		bUser: avg(1, true),
		cUser: avg(2, true),
	}
}

// rogueShim models a compromised AS's host stack (§4.5): packets claim
// the regular channel with forged — syntactically present but never
// enforced — congestion policing feedback.
type rogueShim struct{}

func (rogueShim) Egress(p *packet.Packet) {
	p.Kind = packet.KindRegular
	p.FB.MAC = [4]byte{0xba, 0xad, 0xf0, 0x0d}
}

func (rogueShim) Ingress(*packet.Packet) bool { return true }

// Localize regenerates the §4.5 damage-localization experiment (E10 in
// DESIGN.md): one source AS harbors a compromised access router that does
// not police, flooding regular packets under forged feedback. With the
// per-AS fallback the honest AS keeps its share of the bottleneck.
func Localize(sc Scale) Result {
	res := Result{
		Name:    "§4.5",
		Title:   "compromised-AS damage localization",
		Columns: []string{"fallback", "honest-user kbps", "compromised-AS kbps", "fallback engaged"},
	}
	for _, enable := range []bool{false, true} {
		honest, rogue, engaged := localizeCell(sc, enable)
		res.AddRow(fmt.Sprintf("%v", enable),
			fmt.Sprintf("%.0f", honest/1000),
			fmt.Sprintf("%.0f", rogue/1000),
			fmt.Sprintf("%v", engaged))
	}
	res.Note("honest AS fair share is half the bottleneck; without the fallback the rogue AS's unpoliced flood keeps the link congested")
	return res
}

func localizeCell(sc Scale, fallback bool) (honestBps, rogueBps float64, engaged bool) {
	eng := sc.attach(sim.New(sc.Seed))
	const bottleneck = 2_000_000
	cfg := topo.DefaultDumbbell(2, bottleneck)
	cfg.ColluderASes = 1
	d := topo.NewDumbbell(eng, cfg)
	nfCfg := core.DefaultConfig()
	nfCfg.PerASFallback = fallback
	nfCfg.FallbackAfter = 20 * sim.Second
	s := core.NewSystem(d.Net, nfCfg)
	s.ProtectLink(d.Bottleneck)
	s.ProtectAccess(d.SrcAccess[0]) // honest AS only; AS 1 is compromised
	s.ProtectAccess(d.VictimAccess)
	s.ProtectAccess(d.ColluderAccess[0])
	s.AttachHost(d.Senders[0], defense.Policy{})
	s.AttachHost(d.Victim, defense.Policy{})
	s.AttachHost(d.Colluders[0], defense.Policy{})
	// The compromised AS differs from a legacy AS: its router holds real
	// NetFence keys and stamps plausible-looking feedback it never
	// enforces. The bottleneck cannot verify nop feedback (only access
	// routers hold those keys, §4.4), so the flood rides the regular
	// channel — the exact hole the §4.5 per-AS fallback closes. A zero
	// MAC would instead be demoted to legacy like a non-deploying AS's
	// traffic.
	d.Senders[1].Host.Shim = rogueShim{}

	rcv := transport.NewTCPReceiver(d.Victim.Host, 1)
	transport.NewTCPSender(d.Senders[0].Host, d.Victim.ID, 1, -1, transport.DefaultTCP()).Start()
	sink := transport.NewUDPSink(d.Colluders[0].Host, 2)
	transport.NewUDPSource(d.Senders[1].Host, d.Colluders[0].ID, 2, 2*bottleneck, packet.SizeData).Start()

	warm := 90 * sim.Second
	end := warm + 120*sim.Second
	eng.RunUntil(warm)
	hMark, rMark := rcv.DeliveredBytes(), sink.Bytes
	eng.RunUntil(end)
	window := (end - warm).Seconds()
	honestBps = float64(rcv.DeliveredBytes()-hMark) * 8 / window
	rogueBps = float64(sink.Bytes-rMark) * 8 / window
	engaged = s.Bottleneck(d.Bottleneck).FallbackActive()
	return honestBps, rogueBps, engaged
}
