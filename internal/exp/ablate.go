package exp

import (
	"fmt"

	"netfence/internal/core"
	"netfence/internal/defense"
	"netfence/internal/metrics"
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
	"netfence/internal/topo"
	"netfence/internal/transport"
)

// AblateHysteresis probes the design choice of footnote 1: the L-down
// stamping hysteresis must extend two control intervals past the last
// congestion instant, or a strategic sender that bursts in one interval
// can harvest L-up feedback in the next and escape the multiplicative
// decrease. The adversary bursts at 1 Mbps for one control interval,
// then trickles just enough to collect feedback for one interval, in a
// loop; its admitted throughput (and the user's) is reported for
// hysteresis windows of 0, 1 and 2 control intervals.
func AblateHysteresis(sc Scale) Result {
	res := Result{
		Name:    "ablation",
		Title:   "L-down hysteresis (footnote 1): strategic burst attacker vs window",
		Columns: []string{"hysteresis (x Ilim)", "attacker kbps", "user kbps", "fair kbps"},
	}
	for _, h := range []int{0, 1, 2} {
		atk, user, fair := ablateHystCell(sc, h)
		res.AddRow(fmt.Sprintf("%d", h),
			fmt.Sprintf("%.0f", atk/1000),
			fmt.Sprintf("%.0f", user/1000),
			fmt.Sprintf("%.0f", fair/1000))
	}
	res.Note("expected: with a short window the burst-and-harvest attacker beats its fair share; 2x Ilim pins it down (the paper's minimum robust value)")
	return res
}

func ablateHystCell(sc Scale, hysteresis int) (atkBps, userBps, fairBps float64) {
	eng := sc.attach(sim.New(sc.Seed))
	const bottleneck = 800_000
	cfg := topo.DefaultDumbbell(2, bottleneck)
	cfg.ColluderASes = 1
	d := topo.NewDumbbell(eng, cfg)
	nfCfg := core.DefaultConfig()
	nfCfg.HysteresisIntervals = hysteresis
	s := core.NewSystem(d.Net, nfCfg)
	d.Deploy(s, defense.Policy{})

	rcv := transport.NewTCPReceiver(d.Victim.Host, 1)
	transport.NewTCPSender(d.Senders[0].Host, d.Victim.ID, 1, -1, transport.DefaultTCP()).Start()
	sink := transport.NewUDPSink(d.Colluders[0].Host, 2)
	u := transport.NewUDPSource(d.Senders[1].Host, d.Colluders[0].ID, 2, 1_000_000, packet.SizeData)
	u.OnTime = nfCfg.Ilim  // burst one full control interval
	u.OffTime = nfCfg.Ilim // harvest L-up the next
	u.OffRateBps = 40_000  // trickle keeps feedback flowing
	u.Start()

	warm, end := sc.Warmup, sc.Duration
	eng.RunUntil(warm)
	uMark, aMark := rcv.DeliveredBytes(), sink.Bytes
	eng.RunUntil(end)
	window := (end - warm).Seconds()
	userBps = float64(rcv.DeliveredBytes()-uMark) * 8 / window
	atkBps = float64(sink.Bytes-aMark) * 8 / window
	return atkBps, userBps, bottleneck / 2
}

// AblateBucket probes the §4.3.3 design choice of a leaky-bucket QUEUE
// over a token bucket for the regular-packet rate limiter. Attackers run
// synchronized on-off bursts with long silences; a token bucket banks
// credit during the silences and releases line-rate bursts that congest
// the link, while the leaky bucket's output can never exceed the limit.
func AblateBucket(sc Scale) Result {
	res := Result{
		Name:    "ablation",
		Title:   "regular-limiter shape under synchronized on-off bursts",
		Columns: []string{"limiter", "user kbps", "attacker kbps", "bottleneck drops"},
	}
	for _, token := range []bool{false, true} {
		name := "leaky queue (paper)"
		if token {
			name = "token bucket"
		}
		user, atk, drops := ablateBucketCell(sc, token)
		res.AddRow(name,
			fmt.Sprintf("%.0f", user/1000),
			fmt.Sprintf("%.0f", atk/1000),
			fmt.Sprintf("%d", drops))
	}
	res.Note("expected: the token bucket admits credit-funded bursts that cost the user throughput and the link extra loss")
	return res
}

func ablateBucketCell(sc Scale, token bool) (userBps, atkBps float64, drops uint64) {
	eng := sc.attach(sim.New(sc.Seed))
	const bottleneck = 800_000
	cfg := topo.DefaultDumbbell(4, bottleneck)
	cfg.ColluderASes = 1
	d := topo.NewDumbbell(eng, cfg)
	nfCfg := core.DefaultConfig()
	nfCfg.TokenBucketLimiter = token
	s := core.NewSystem(d.Net, nfCfg)
	d.Deploy(s, defense.Policy{})

	rcv := transport.NewTCPReceiver(d.Victim.Host, 1)
	transport.NewTCPSender(d.Senders[0].Host, d.Victim.ID, 1, -1, transport.DefaultTCP()).Start()
	sinks := make([]*transport.UDPSink, 3)
	for i := 0; i < 3; i++ {
		flow := packet.FlowID(10 + i)
		sinks[i] = transport.NewUDPSink(d.Colluders[0].Host, flow)
		u := transport.NewUDPSource(d.Senders[1+i].Host, d.Colluders[0].ID, flow, 1_000_000, packet.SizeData)
		u.OnTime = 500 * sim.Millisecond
		u.OffTime = 4 * sim.Second
		u.OffRateBps = 30_000 // keep feedback flowing between bursts
		u.Start()
	}

	warm, end := sc.Warmup, sc.Duration
	eng.RunUntil(warm)
	uMark := rcv.DeliveredBytes()
	var aMark uint64
	for _, s := range sinks {
		aMark += s.Bytes
	}
	dMark := d.Bottleneck.Q.Stats().Dropped
	eng.RunUntil(end)
	window := (end - warm).Seconds()
	userBps = float64(rcv.DeliveredBytes()-uMark) * 8 / window
	var aBytes uint64
	for _, s := range sinks {
		aBytes += s.Bytes
	}
	atkBps = float64(aBytes-aMark) * 8 / window / 3
	drops = d.Bottleneck.Q.Stats().Dropped - dMark
	return userBps, atkBps, drops
}

// AblateQuota probes the §7 congestion quota. The premise of the quota
// is that legitimate users have LIMITED demand at attack time while
// attackers persistently congest the link: the user here repeats 50 KB
// transfers with think time, the attacker floods 1 Mbps nonstop. With
// the quota the attacker burns its congestion-traffic budget and is cut
// off; the demand-limited user barely touches its own budget.
func AblateQuota(sc Scale) Result {
	res := Result{
		Name:    "ablation",
		Title:   "congestion quota (§7): persistent flooder vs 250 KB/60s budget",
		Columns: []string{"quota", "user FCT (s)", "attacker kbps", "attacker quota drops"},
	}
	for _, quota := range []int64{0, 250_000} {
		name := "off"
		if quota > 0 {
			name = "250 KB / 60 s"
		}
		fct, atk, qdrops := ablateQuotaCell(sc, quota)
		res.AddRow(name,
			fmt.Sprintf("%.2f", fct.Seconds()),
			fmt.Sprintf("%.0f", atk/1000),
			fmt.Sprintf("%d", qdrops))
	}
	res.Note("the quota charges only bytes forwarded while a rate limit decreases; the demand-limited user stays under budget while the persistent flooder is throttled")
	return res
}

func ablateQuotaCell(sc Scale, quota int64) (userFCT sim.Time, atkBps float64, quotaDrops uint64) {
	eng := sc.attach(sim.New(sc.Seed))
	const bottleneck = 400_000
	cfg := topo.DefaultDumbbell(2, bottleneck)
	cfg.ColluderASes = 1
	d := topo.NewDumbbell(eng, cfg)
	nfCfg := core.DefaultConfig()
	nfCfg.CongestionQuotaBytes = quota
	s := core.NewSystem(d.Net, nfCfg)
	d.Deploy(s, defense.Policy{})
	d.Victim.Host.OnUnknownFlow = func(p *packet.Packet) netsim.Agent {
		if p.Proto != packet.ProtoTCP {
			return nil
		}
		return transport.NewTCPReceiver(d.Victim.Host, p.Flow)
	}

	var fct metrics.FCT
	client := transport.NewFileClient(d.Senders[0].Host, d.Victim.ID, 50_000, transport.DefaultTCP())
	client.Gap = 500 * sim.Millisecond
	client.OnResult = func(t sim.Time, ok bool) {
		if eng.Now() > sc.Warmup {
			fct.Add(t, ok)
		}
	}
	client.Start()
	sink := transport.NewUDPSink(d.Colluders[0].Host, 2)
	transport.NewUDPSource(d.Senders[1].Host, d.Colluders[0].ID, 2, 1_000_000, packet.SizeData).Start()

	warm, end := sc.Warmup, sc.Duration
	eng.RunUntil(warm)
	aMark := sink.Bytes
	eng.RunUntil(end)
	client.Stop()
	window := (end - warm).Seconds()
	atkBps = float64(sink.Bytes-aMark) * 8 / window
	quotaDrops = s.Access(d.SrcAccess[1]).QuotaDrops
	return fct.Mean(), atkBps, quotaDrops
}

// AblateInitRate probes the undocumented initial rate-limit parameter:
// AIMD convergence should make the steady-state fair share insensitive
// to it (DESIGN.md records 100 kbps as the default).
func AblateInitRate(sc Scale) Result {
	res := Result{
		Name:    "ablation",
		Title:   "initial rate limit: steady-state user/attacker throughput",
		Columns: []string{"initial kbps", "user kbps", "attacker kbps", "ratio"},
	}
	for _, init := range []int64{12_500, 50_000, 100_000, 400_000} {
		user, atk := ablateInitCell(sc, init)
		ratio := 0.0
		if atk > 0 {
			ratio = user / atk
		}
		res.AddRow(fmt.Sprintf("%d", init/1000),
			fmt.Sprintf("%.0f", user/1000),
			fmt.Sprintf("%.0f", atk/1000),
			fmt.Sprintf("%.2f", ratio))
	}
	res.Note("expected: steady-state shares are insensitive to the initial limit (AIMD convergence)")
	return res
}

func ablateInitCell(sc Scale, initBps int64) (userBps, atkBps float64) {
	eng := sc.attach(sim.New(sc.Seed))
	const bottleneck = 400_000
	cfg := topo.DefaultDumbbell(2, bottleneck)
	cfg.ColluderASes = 1
	d := topo.NewDumbbell(eng, cfg)
	nfCfg := core.DefaultConfig()
	nfCfg.InitialRateBps = initBps
	s := core.NewSystem(d.Net, nfCfg)
	d.Deploy(s, defense.Policy{})

	rcv := transport.NewTCPReceiver(d.Victim.Host, 1)
	transport.NewTCPSender(d.Senders[0].Host, d.Victim.ID, 1, -1, transport.DefaultTCP()).Start()
	sink := transport.NewUDPSink(d.Colluders[0].Host, 2)
	transport.NewUDPSource(d.Senders[1].Host, d.Colluders[0].ID, 2, 1_000_000, packet.SizeData).Start()

	warm, end := sc.Warmup, sc.Duration
	eng.RunUntil(warm)
	uMark, aMark := rcv.DeliveredBytes(), sink.Bytes
	eng.RunUntil(end)
	window := (end - warm).Seconds()
	userBps = float64(rcv.DeliveredBytes()-uMark) * 8 / window
	atkBps = float64(sink.Bytes-aMark) * 8 / window
	return userBps, atkBps
}
