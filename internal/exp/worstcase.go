package exp

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"netfence/internal/attack"
	"netfence/internal/core"
	"netfence/internal/search"
)

// worstcaseSearchLineup is the subset of strategies the experiment
// searches: the two whose parameter spaces carry the most damage
// headroom (raw rate against capability-granting baselines, duty-cycle
// timing against the policer). The hand-written baseline still spans
// the full strategicLineup.
var worstcaseSearchLineup = []string{"flood", "onoff-sync"}

// worstcaseBudget caps evaluated candidates per (system × strategy)
// cell — small enough for the bench suite, large enough for the
// annealer to leave the defaults.
const worstcaseBudget = 6

// WorstCase is the adversarial-search experiment: for each compared
// defense it contrasts the worst hand-written strategy (the fixed
// strategicLineup at its defaults — PR 3's instantiation of "regardless
// of strategy") with the worst configuration a seeded annealer finds in
// the strategies' declared parameter spaces. The paper's Theorem-1
// claim survives the upgrade for NetFence — the searched optimum still
// clears the goodput floor — while the searched attack pushes the
// baselines (TVA+ against colluders foremost) strictly below their
// hand-written worst case.
func WorstCase(sc Scale) Result {
	label := sc.Labels[0]
	bottleneck := sc.BottleneckBps(label)
	floor := strategicNu * attack.TheoremBound(core.DefaultConfig(), bottleneck, sc.Senders)
	res := Result{
		Name: "Worst-case search",
		Title: fmt.Sprintf("hand-written vs searched worst attack, floor ν·ρ·C/(G+B) = %.0f kbps (%dK senders)",
			floor/1000, label/1000),
		Columns: []string{"system", "hand-written worst", "hand kbps", "searched worst", "searched kbps", "suppress", "holds"},
	}
	for _, kind := range sc.Compared() {
		// The hand-written baseline: every lineup strategy at defaults.
		handRates := make([]float64, len(strategicLineup))
		runBatch(len(strategicLineup), func(i int) {
			handRates[i] = strategicCell(sc, label, kind, strategicLineup[i], nil).legitBps
		})
		handWorst := 0
		for i := 1; i < len(handRates); i++ {
			if handRates[i] < handRates[handWorst] {
				handWorst = i
			}
		}

		// The searched worst: anneal each search-lineup strategy's space.
		searchedSpec, searchedLegit := "", 0.0
		for si, strat := range worstcaseSearchLineup {
			dims, err := attack.Params(strat)
			if err != nil {
				panic(err) // fixed in-tree lineup: a programmer error
			}
			opt, _ := search.New("anneal")
			eval := func(batch []search.Vec) ([]float64, error) {
				damages := make([]float64, len(batch))
				runBatch(len(batch), func(i int) {
					p := batch[i].Params(dims)
					damages[i] = -strategicCell(sc, label, kind, strat, p).legitBps
				})
				return damages, nil
			}
			best, trace, err := opt.Run(dims, worstcaseBudget, worstcaseSeed(sc.Seed, kind, strat), eval)
			if err != nil {
				panic(err) // eval never errors; optimizer failures are programmer errors
			}
			bestLegit := 0.0
			for _, st := range trace {
				if st.Best {
					bestLegit = -st.Damage
				}
			}
			if si == 0 || bestLegit < searchedLegit {
				searchedLegit = bestLegit
				searchedSpec = attack.FormatSpec(strat, best.Params(dims))
			}
		}

		res.AddRow(
			string(kind),
			strategicLineup[handWorst],
			fmt.Sprintf("%.0f", handRates[handWorst]/1000),
			searchedSpec,
			fmt.Sprintf("%.0f", searchedLegit/1000),
			fmt.Sprintf("%.0f", (handRates[handWorst]-searchedLegit)/1000),
			fmt.Sprintf("%v", searchedLegit >= floor),
		)
	}
	res.Note("searched: simulated annealing, budget %d per (system, strategy) cell over %v; deterministic in the scale's seed", worstcaseBudget, worstcaseSearchLineup)
	res.Note("paper shape: NetFence holds the floor even at the searched optimum; the searched attack beats every hand-written strategy against TVA+ (colluder-granted capabilities reward raw rate)")
	return res
}

// worstcaseSeed derives an independent optimizer seed per (system ×
// strategy) cell from the scale's seed.
func worstcaseSeed(seed uint64, kind SystemKind, strat string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s", kind, strat)
	return seed ^ h.Sum64()
}

// runBatch fans n independent jobs across bounded workers; fn slots
// its own results by index, so completion order never shows.
func runBatch(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
