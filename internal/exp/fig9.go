package exp

import (
	"fmt"

	"netfence/internal/core"
	"netfence/internal/defense"
	"netfence/internal/metrics"
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
	"netfence/internal/topo"
	"netfence/internal/transport"
)

// Fig9 regenerates Figure 9: the throughput ratio between legitimate
// users and attackers when compromised sender-receiver pairs collude to
// flood the network (or, equivalently, when victims fail to identify
// attack traffic). Each source AS is 25% legitimate users sending TCP to
// the victim and 75% attackers sending 1 Mbps UDP in regular packets to
// colluders spread over nine extra ASes. web selects the Figure 9(b)
// web-like workload instead of long-running TCP.
func Fig9(sc Scale, web bool) Result {
	variant, title := "a", "long-running TCP"
	if web {
		variant, title = "b", "web-like traffic"
	}
	res := Result{
		Name:    "Figure 9" + variant,
		Title:   "throughput ratio legit/attacker, colluding attacks, " + title,
		Columns: []string{"senders", "system", "ratio", "Jain legit", "legit kbps", "attacker kbps", "util"},
	}
	for _, label := range sc.Labels {
		for _, kind := range sc.Compared() {
			c := fig9Cell(sc, label, kind, web)
			res.AddRow(
				fmt.Sprintf("%dK", label/1000),
				string(kind),
				fmt.Sprintf("%.2f", c.ratio),
				fmt.Sprintf("%.2f", c.jain),
				fmt.Sprintf("%.0f", c.legitBps/1000),
				fmt.Sprintf("%.0f", c.atkBps/1000),
				fmt.Sprintf("%.0f%%", 100*c.util),
			)
		}
	}
	if web {
		res.Note("paper shape: NetFence ratio climbs ~0.3 to ~1 with senders (web demand cannot fill large fair shares); TVA+ lowest")
	} else {
		res.Note("paper shape: NetFence ~1; FQ/StopIt slightly below 1 (TCP-vs-DRR); TVA+ ~1/3 with 9 colluders; NetFence utilization >90%%")
	}
	return res
}

type fig9Out struct {
	ratio, jain      float64
	legitBps, atkBps float64
	util             float64
}

// fig9Roles splits each AS 25% legitimate / 75% attackers.
func fig9Roles(d *topo.Dumbbell, hostsPerAS int) (legit, attackers []*netsim.Node) {
	for i, h := range d.Senders {
		if i%hostsPerAS < (hostsPerAS+3)/4 {
			legit = append(legit, h)
		} else {
			attackers = append(attackers, h)
		}
	}
	return legit, attackers
}

func fig9Cell(sc Scale, label int, kind SystemKind, web bool) fig9Out {
	return fig9CellDeploy(sc, label, kind, web, 1)
}

// fig9CellDeploy is fig9Cell at a partial deployment: only deployFrac of
// the source ASes run the defense; the rest pass traffic undefended.
// The incremental-deployment experiment sweeps this knob.
func fig9CellDeploy(sc Scale, label int, kind SystemKind, web bool, deployFrac float64) fig9Out {
	eng := sc.attach(sim.New(sc.Seed))
	bottleneck := sc.BottleneckBps(label)
	cfg := topo.DefaultDumbbell(sc.Senders, bottleneck)
	cfg.ColluderASes = 9
	d := topo.NewDumbbell(eng, cfg)
	s := buildSystem(kind, d.Net, core.DefaultConfig())
	// Colluding receivers do not identify attack traffic: no Deny.
	d.DeployPlan(s, defense.Policy{}, topo.PlanFraction(d.G.SourceASes(), deployFrac))

	legit, attackers := fig9Roles(d, cfg.HostsPerAS)

	// Per-sender delivered byte counters at the victim, attributed by
	// source address so web workloads (many flows per sender) aggregate.
	delivered := make(map[packet.NodeID]*int64, len(legit))
	for _, h := range legit {
		delivered[h.ID] = new(int64)
	}
	d.Victim.Host.OnUnknownFlow = func(p *packet.Packet) netsim.Agent {
		if p.Proto != packet.ProtoTCP {
			return nil
		}
		r := transport.NewTCPReceiver(d.Victim.Host, p.Flow)
		ctr := delivered[p.Src]
		if ctr != nil {
			r.OnDeliver = func(b int) { *ctr += int64(b) }
		}
		return r
	}

	var stoppers []interface{ Stop() }
	for _, h := range legit {
		if web {
			w := transport.NewWebSource(h.Host, d.Victim.ID, transport.DefaultWeb())
			w.Start()
			stoppers = append(stoppers, w)
		} else {
			flow := d.Net.NextFlow()
			r := transport.NewTCPReceiver(d.Victim.Host, flow)
			ctr := delivered[h.ID]
			r.OnDeliver = func(b int) { *ctr += int64(b) }
			snd := transport.NewTCPSender(h.Host, d.Victim.ID, flow, -1, transport.DefaultTCP())
			snd.Start()
		}
	}
	sinks := make([]*transport.UDPSink, len(attackers))
	for i, a := range attackers {
		col := d.Colluders[i%len(d.Colluders)]
		flow := packet.FlowID(2_000_000 + i)
		sinks[i] = transport.NewUDPSink(col.Host, flow)
		transport.NewUDPSource(a.Host, col.ID, flow, 1_000_000, packet.SizeData).Start()
	}

	eng.RunUntil(sc.Warmup)
	legitMark := make([]int64, len(legit))
	for i, h := range legit {
		legitMark[i] = *delivered[h.ID]
	}
	atkMark := make([]uint64, len(sinks))
	for i, s := range sinks {
		atkMark[i] = s.Bytes
	}
	txMark := d.Bottleneck.TxBytes

	eng.RunUntil(sc.Duration)
	for _, st := range stoppers {
		st.Stop()
	}
	window := (sc.Duration - sc.Warmup).Seconds()
	legitRates := make([]float64, len(legit))
	for i, h := range legit {
		legitRates[i] = float64(*delivered[h.ID]-legitMark[i]) * 8 / window
	}
	atkRates := make([]float64, len(sinks))
	for i, s := range sinks {
		atkRates[i] = float64(s.Bytes-atkMark[i]) * 8 / window
	}
	legitMean, _ := metrics.MeanStd(legitRates)
	atkMean, _ := metrics.MeanStd(atkRates)
	out := fig9Out{
		legitBps: legitMean,
		atkBps:   atkMean,
		jain:     metrics.Jain(legitRates),
		util:     d.Bottleneck.Utilization(txMark, sc.Duration-sc.Warmup),
	}
	if atkMean > 0 {
		out.ratio = legitMean / atkMean
	}
	return out
}
