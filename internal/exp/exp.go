// Package exp contains one runner per table/figure of the paper's
// evaluation (§6). Each runner builds the paper's topology, deploys one
// or more defense systems, drives the paper's workloads and attack
// strategies, and emits the same rows/series the paper reports.
//
// Experiments run at three scales. The paper itself evaluates 25K-200K
// senders by fixing a 1000-sender population and scaling the bottleneck
// capacity so each sender's fair share matches the full-size scenario
// (§6.3.1); the scales here apply the same trick with smaller
// populations, preserving per-sender fair shares (the paper's 50-400 kbps
// operating region) and therefore the result shapes.
package exp

import (
	"fmt"
	"strings"

	// The baselines register themselves in the defense registry; exp
	// resolves them by name, so link them in explicitly.
	_ "netfence/internal/baseline"
	"netfence/internal/core"
	"netfence/internal/defense"
	"netfence/internal/netsim"
	"netfence/internal/sim"
)

// Scale fixes an experiment family's population and durations.
type Scale struct {
	Name string
	// Senders is the real simulated population.
	Senders int
	// Labels are the emulated sender counts reported in result rows; the
	// bottleneck capacity for label L is Senders * (10 Gbps / L), keeping
	// per-sender fair shares faithful to the paper.
	Labels []int
	// Duration is the simulated run length; measurements that need AIMD
	// convergence start at Warmup.
	Duration, Warmup sim.Time
	// PLGroup is the parking-lot per-group population (paper: 1000).
	PLGroup int
	// Seed feeds the deterministic RNG.
	Seed uint64
	// Systems, when non-empty, restricts the comparison figures to the
	// named defense systems (defense-registry names); empty keeps the
	// paper's full lineup.
	Systems []string
	// Meter, when set, accumulates executed-event counts from every
	// engine the experiment creates — per-invocation, so concurrent
	// experiment runs never share a counter.
	Meter *sim.Meter
}

// attach wires the scale's meter (if any) onto a freshly created
// engine; every runner cell calls it right after sim.New.
func (sc Scale) attach(eng *sim.Engine) *sim.Engine {
	if sc.Meter != nil {
		eng.AttachMeter(sc.Meter)
	}
	return eng
}

// The three standard scales.
var (
	// Tiny runs in seconds; used by unit tests and the bench harness.
	Tiny = Scale{
		Name: "tiny", Senders: 20, Labels: []int{25_000, 200_000},
		Duration: 120 * sim.Second, Warmup: 60 * sim.Second,
		PLGroup: 12, Seed: 1,
	}
	// Small is the CLI default: every label, minutes of wall time.
	Small = Scale{
		Name: "small", Senders: 60, Labels: []int{25_000, 50_000, 100_000, 200_000},
		Duration: 240 * sim.Second, Warmup: 120 * sim.Second,
		PLGroup: 30, Seed: 1,
	}
	// Paper is the full 1000-sender, 4000-second configuration.
	Paper = Scale{
		Name: "paper", Senders: 1000, Labels: []int{25_000, 50_000, 100_000, 200_000},
		Duration: 4000 * sim.Second, Warmup: 1000 * sim.Second,
		PLGroup: 1000, Seed: 1,
	}
)

// ScaleByName resolves tiny/small/paper.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "small", "":
		return Small, nil
	case "paper":
		return Paper, nil
	}
	return Scale{}, fmt.Errorf("unknown scale %q (tiny|small|paper)", name)
}

// BottleneckBps returns the scaled capacity for an emulated sender count.
func (sc Scale) BottleneckBps(label int) int64 {
	return int64(sc.Senders) * (10_000_000_000 / int64(label))
}

// FairShareBps is each sender's bottleneck fair share at a label.
func (sc Scale) FairShareBps(label int) int64 {
	return 10_000_000_000 / int64(label)
}

// Result is one experiment's output table.
type Result struct {
	Name    string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a free-form note printed under the table.
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Table renders the result as an aligned text table.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.Name, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// SystemKind selects a defense system.
type SystemKind string

// The four systems of §6.3 plus the undefended control.
const (
	SysNetFence SystemKind = "NetFence"
	SysTVA      SystemKind = "TVA+"
	SysStopIt   SystemKind = "StopIt"
	SysFQ       SystemKind = "FQ"
	SysNone     SystemKind = "None"
)

// ComparedSystems is the lineup of Figures 8 and 9.
var ComparedSystems = []SystemKind{SysFQ, SysNetFence, SysTVA, SysStopIt}

// Compared returns the systems a comparison figure sweeps: the paper's
// lineup by default, or the Scale.Systems restriction when set.
func (sc Scale) Compared() []SystemKind {
	if len(sc.Systems) == 0 {
		return ComparedSystems
	}
	out := make([]SystemKind, len(sc.Systems))
	for i, name := range sc.Systems {
		out[i] = KindByName(name)
	}
	return out
}

// KindByName maps a defense-registry name to the display kind used in
// result tables; unrecognized names pass through unchanged so runners can
// compare third-party registered systems too.
func KindByName(name string) SystemKind {
	switch defense.Canonical(name) {
	case "netfence":
		return SysNetFence
	case "tva":
		return SysTVA
	case "stopit":
		return SysStopIt
	case "fq":
		return SysFQ
	case "none":
		return SysNone
	}
	return SystemKind(name)
}

// buildSystem instantiates a system over a network through the defense
// registry. nfCfg customizes NetFence; other systems use their defaults.
func buildSystem(kind SystemKind, net *netsim.Network, nfCfg core.Config) defense.System {
	var opts defense.BuildOptions
	if defense.Canonical(string(kind)) == "netfence" {
		opts.Config = nfCfg
	}
	s, err := defense.Build(string(kind), net, opts)
	if err != nil {
		// Runners take validated kinds; an unknown name here is a
		// programmer error, not a runtime condition.
		panic(err)
	}
	return s
}

// Runner is a named experiment: it maps a CLI/bench identifier to the
// function regenerating one table or figure. Compares marks experiments
// that sweep the compared defense lineup (and therefore honor
// Scale.Systems); the rest are NetFence-only studies.
type Runner struct {
	Name     string
	Brief    string
	Run      func(sc Scale) Result
	Compares bool
}

// Runners lists every experiment, in paper order.
func Runners() []Runner {
	return []Runner{
		{"fig7", "per-packet processing overhead (Linux prototype table)", Fig7, false},
		{"fig8", "unwanted-traffic flooding: mean 20KB transfer time", Fig8, true},
		{"fig9a", "colluding attacks, long-running TCP: throughput ratio", func(sc Scale) Result { return Fig9(sc, false) }, true},
		{"fig9b", "colluding attacks, web-like traffic: throughput ratio", func(sc Scale) Result { return Fig9(sc, true) }, true},
		{"fig10", "multi-bottleneck parking lot, core design", func(sc Scale) Result { return Fig10(sc, ModeCore) }, false},
		{"fig11", "microscopic on-off attacks: user throughput", Fig11, false},
		{"fig13", "parking lot with multi-bottleneck feedback (App. B.1)", func(sc Scale) Result { return Fig10(sc, ModeMultiFB) }, false},
		{"fig14", "parking lot with rate-limiter inference (App. B.2)", func(sc Scale) Result { return Fig10(sc, ModeInfer) }, false},
		{"theorem", "fair-share lower bound of §3.4/Appendix A", Theorem, false},
		{"strategic", "adaptive attack strategies vs the Theorem-1 goodput floor (§6.3)", Strategic, true},
		{"worstcase", "adversarial search: annealed worst attack per defense vs the hand-written lineup", WorstCase, true},
		{"localize", "compromised-AS damage localization (§4.5)", Localize, false},
		{"header", "NetFence header sizes (§6.1)", HeaderSizes, false},
		{"ablate-hysteresis", "L-down hysteresis ablation (footnote 1)", AblateHysteresis, false},
		{"ablate-initrate", "initial rate-limit ablation", AblateInitRate, false},
		{"ablate-bucket", "leaky-queue vs token-bucket limiter (§4.3.3)", AblateBucket, false},
		{"quota", "congestion quota extension (§7)", AblateQuota, false},
		{"deploy", "incremental deployment: ratio vs deployed source-AS fraction", Deploy, true},
	}
}

// RunnerByName resolves an experiment identifier.
func RunnerByName(name string) (Runner, error) {
	for _, r := range Runners() {
		if r.Name == name {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("unknown experiment %q", name)
}
