// Package exp contains one runner per table/figure of the paper's
// evaluation (§6). Each runner builds the paper's topology, deploys one
// or more defense systems, drives the paper's workloads and attack
// strategies, and emits the same rows/series the paper reports.
//
// Experiments run at three scales. The paper itself evaluates 25K-200K
// senders by fixing a 1000-sender population and scaling the bottleneck
// capacity so each sender's fair share matches the full-size scenario
// (§6.3.1); the scales here apply the same trick with smaller
// populations, preserving per-sender fair shares (the paper's 50-400 kbps
// operating region) and therefore the result shapes.
package exp

import (
	"fmt"
	"strings"

	"netfence/internal/core"
	"netfence/internal/defense"
	"netfence/internal/netsim"
	"netfence/internal/sim"
	"netfence/internal/topo"
)

// Scale fixes an experiment family's population and durations.
type Scale struct {
	Name string
	// Senders is the real simulated population.
	Senders int
	// Labels are the emulated sender counts reported in result rows; the
	// bottleneck capacity for label L is Senders * (10 Gbps / L), keeping
	// per-sender fair shares faithful to the paper.
	Labels []int
	// Duration is the simulated run length; measurements that need AIMD
	// convergence start at Warmup.
	Duration, Warmup sim.Time
	// PLGroup is the parking-lot per-group population (paper: 1000).
	PLGroup int
	// Seed feeds the deterministic RNG.
	Seed uint64
}

// The three standard scales.
var (
	// Tiny runs in seconds; used by unit tests and the bench harness.
	Tiny = Scale{
		Name: "tiny", Senders: 20, Labels: []int{25_000, 200_000},
		Duration: 120 * sim.Second, Warmup: 60 * sim.Second,
		PLGroup: 12, Seed: 1,
	}
	// Small is the CLI default: every label, minutes of wall time.
	Small = Scale{
		Name: "small", Senders: 60, Labels: []int{25_000, 50_000, 100_000, 200_000},
		Duration: 240 * sim.Second, Warmup: 120 * sim.Second,
		PLGroup: 30, Seed: 1,
	}
	// Paper is the full 1000-sender, 4000-second configuration.
	Paper = Scale{
		Name: "paper", Senders: 1000, Labels: []int{25_000, 50_000, 100_000, 200_000},
		Duration: 4000 * sim.Second, Warmup: 1000 * sim.Second,
		PLGroup: 1000, Seed: 1,
	}
)

// ScaleByName resolves tiny/small/paper.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "small", "":
		return Small, nil
	case "paper":
		return Paper, nil
	}
	return Scale{}, fmt.Errorf("unknown scale %q (tiny|small|paper)", name)
}

// BottleneckBps returns the scaled capacity for an emulated sender count.
func (sc Scale) BottleneckBps(label int) int64 {
	return int64(sc.Senders) * (10_000_000_000 / int64(label))
}

// FairShareBps is each sender's bottleneck fair share at a label.
func (sc Scale) FairShareBps(label int) int64 {
	return 10_000_000_000 / int64(label)
}

// Result is one experiment's output table.
type Result struct {
	Name    string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a free-form note printed under the table.
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Table renders the result as an aligned text table.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.Name, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// SystemKind selects a defense system.
type SystemKind string

// The four systems of §6.3 plus the undefended control.
const (
	SysNetFence SystemKind = "NetFence"
	SysTVA      SystemKind = "TVA+"
	SysStopIt   SystemKind = "StopIt"
	SysFQ       SystemKind = "FQ"
	SysNone     SystemKind = "None"
)

// ComparedSystems is the lineup of Figures 8 and 9.
var ComparedSystems = []SystemKind{SysFQ, SysNetFence, SysTVA, SysStopIt}

// buildSystem instantiates a system over a network. nfCfg customizes
// NetFence; other systems use their defaults.
func buildSystem(kind SystemKind, net *netsim.Network, nfCfg core.Config) defense.System {
	switch kind {
	case SysNetFence:
		return core.NewSystem(net, nfCfg)
	case SysTVA:
		return newTVA()
	case SysStopIt:
		return newStopIt(net)
	case SysFQ:
		return newFQ()
	default:
		return newNone()
	}
}

// deployDumbbell installs a system across a dumbbell: the bottleneck link
// is protected, every access router polices, and every host gets the
// system's shim. deny is the victim's receiver policy.
func deployDumbbell(d *topo.Dumbbell, s defense.System, deny defense.Policy) {
	s.ProtectLink(d.Bottleneck)
	for _, ra := range d.SrcAccess {
		s.ProtectAccess(ra)
	}
	s.ProtectAccess(d.VictimAccess)
	for _, rc := range d.ColluderAccess {
		s.ProtectAccess(rc)
	}
	for _, h := range d.Senders {
		s.AttachHost(h, defense.Policy{})
	}
	s.AttachHost(d.Victim, deny)
	for _, c := range d.Colluders {
		s.AttachHost(c, defense.Policy{})
	}
}

// deployParkingLot installs a system across a parking lot, protecting
// both bottlenecks.
func deployParkingLot(pl *topo.ParkingLot, s defense.System) {
	s.ProtectLink(pl.L1)
	s.ProtectLink(pl.L2)
	for g := range pl.Groups {
		grp := &pl.Groups[g]
		for _, ra := range grp.Access {
			s.ProtectAccess(ra)
		}
		for _, h := range grp.Senders {
			s.AttachHost(h, defense.Policy{})
		}
		s.AttachHost(grp.Victim, defense.Policy{})
		for _, c := range grp.Colluders {
			s.AttachHost(c, defense.Policy{})
		}
	}
}

// Runner is a named experiment: it maps a CLI/bench identifier to the
// function regenerating one table or figure.
type Runner struct {
	Name  string
	Brief string
	Run   func(sc Scale) Result
}

// Runners lists every experiment, in paper order.
func Runners() []Runner {
	return []Runner{
		{"fig7", "per-packet processing overhead (Linux prototype table)", Fig7},
		{"fig8", "unwanted-traffic flooding: mean 20KB transfer time", Fig8},
		{"fig9a", "colluding attacks, long-running TCP: throughput ratio", func(sc Scale) Result { return Fig9(sc, false) }},
		{"fig9b", "colluding attacks, web-like traffic: throughput ratio", func(sc Scale) Result { return Fig9(sc, true) }},
		{"fig10", "multi-bottleneck parking lot, core design", func(sc Scale) Result { return Fig10(sc, ModeCore) }},
		{"fig11", "microscopic on-off attacks: user throughput", Fig11},
		{"fig13", "parking lot with multi-bottleneck feedback (App. B.1)", func(sc Scale) Result { return Fig10(sc, ModeMultiFB) }},
		{"fig14", "parking lot with rate-limiter inference (App. B.2)", func(sc Scale) Result { return Fig10(sc, ModeInfer) }},
		{"theorem", "fair-share lower bound of §3.4/Appendix A", Theorem},
		{"localize", "compromised-AS damage localization (§4.5)", Localize},
		{"header", "NetFence header sizes (§6.1)", HeaderSizes},
		{"ablate-hysteresis", "L-down hysteresis ablation (footnote 1)", AblateHysteresis},
		{"ablate-initrate", "initial rate-limit ablation", AblateInitRate},
		{"ablate-bucket", "leaky-queue vs token-bucket limiter (§4.3.3)", AblateBucket},
		{"quota", "congestion quota extension (§7)", AblateQuota},
	}
}

// RunnerByName resolves an experiment identifier.
func RunnerByName(name string) (Runner, error) {
	for _, r := range Runners() {
		if r.Name == name {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("unknown experiment %q", name)
}
