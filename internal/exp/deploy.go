package exp

import (
	"fmt"
)

// DeployFractions is the incremental-deployment sweep: the fraction of
// source ASes running the defense, from nobody to everybody.
var DeployFractions = []float64{0, 0.25, 0.5, 0.75, 1}

// deployCompared is the default lineup of the incremental-deployment
// study: the closed-loop system against the capability and fair-queuing
// baselines (StopIt's source filters are not meaningfully partial —
// filtering ASes must deploy by definition).
var deployCompared = []SystemKind{SysNetFence, SysTVA, SysFQ}

// Deploy regenerates the incremental-deployment experiment: the
// legitimate/attacker throughput ratio of the §6.3.2 collusion scenario
// as a function of the fraction of source ASes deploying each defense.
// Undeployed ("legacy") ASes keep forwarding traffic, but their hosts
// run no shim and their access routers do not police — under NetFence
// their packets carry no congestion policing feedback, so the bottleneck
// demotes them to the best-effort legacy channel: the paper's
// deployment incentive, measured.
func Deploy(sc Scale) Result {
	label := sc.Labels[0]
	res := Result{
		Name:    "Incremental deployment",
		Title:   fmt.Sprintf("throughput ratio legit/attacker vs deployed source-AS fraction (%dK senders)", label/1000),
		Columns: []string{"deployed", "system", "ratio", "legit kbps", "attacker kbps", "util"},
	}
	systems := deployCompared
	if len(sc.Systems) > 0 {
		systems = sc.Compared()
	}
	for _, f := range DeployFractions {
		for _, kind := range systems {
			c := fig9CellDeploy(sc, label, kind, false, f)
			res.AddRow(
				fmt.Sprintf("%.0f%%", 100*f),
				string(kind),
				fmt.Sprintf("%.2f", c.ratio),
				fmt.Sprintf("%.0f", c.legitBps/1000),
				fmt.Sprintf("%.0f", c.atkBps/1000),
				fmt.Sprintf("%.0f%%", 100*c.util),
			)
		}
	}
	res.Note("legacy-AS traffic is demoted to best-effort at a NetFence bottleneck (§4.4): NetFence's ratio climbs monotonically with deployment toward the ~1 fair-share parity")
	res.Note("FQ polices per sender at the router alone, so it is deployment-insensitive; TVA+ stays broken at any fraction because colluding receivers grant capabilities regardless")
	res.Note("at 0%% every SOURCE AS is legacy; the bottleneck and destination side stay protected (they always deploy)")
	return res
}
