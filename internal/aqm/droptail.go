// Package aqm provides active queue management building blocks: a
// byte-limited DropTail queue, the RED algorithm with the paper's
// Figure 3 parameters, and the attack detectors of §4.3.1 (EWMA packet
// loss rate, Figure 19; EWMA link utilization).
package aqm

import (
	"netfence/internal/packet"
	"netfence/internal/queue"
	"netfence/internal/sim"
)

// DropTail is a FIFO queue that drops arriving packets once the buffer
// holds LimitBytes.
type DropTail struct {
	q     queue.Ring
	bytes int
	hwm   int
	limit int
	stats queue.Stats
}

// NewDropTail returns a DropTail queue holding at most limitBytes.
func NewDropTail(limitBytes int) *DropTail {
	return &DropTail{limit: limitBytes}
}

// Enqueue appends p unless the buffer is full.
func (d *DropTail) Enqueue(p *packet.Packet, now sim.Time) bool {
	if d.bytes+int(p.Size) > d.limit {
		d.stats.Dropped++
		d.stats.DroppedBytes += uint64(p.Size)
		return false
	}
	p.EnqueuedAt = now
	d.q.Push(p)
	d.bytes += int(p.Size)
	if d.bytes > d.hwm {
		d.hwm = d.bytes
	}
	d.stats.Enqueued++
	return true
}

// Dequeue pops the oldest packet.
func (d *DropTail) Dequeue(now sim.Time) (*packet.Packet, sim.Time) {
	p := d.q.Pop()
	if p == nil {
		return nil, 0
	}
	d.bytes -= int(p.Size)
	d.stats.Dequeued++
	d.stats.DequeuedBytes += uint64(p.Size)
	return p, 0
}

// Len returns the number of queued packets.
func (d *DropTail) Len() int { return d.q.Len() }

// Bytes returns the number of queued bytes.
func (d *DropTail) Bytes() int { return d.bytes }

// Stats returns cumulative counters.
func (d *DropTail) Stats() queue.Stats { return d.stats }

// HighWater returns the highest backlog in bytes the queue reached.
func (d *DropTail) HighWater() int { return d.hwm }

// LastDropReason reports why the last Enqueue refused a packet.
func (d *DropTail) LastDropReason() string { return "tail" }
