package aqm

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"netfence/internal/packet"
	"netfence/internal/queue"
	"netfence/internal/sim"
)

func pkt(size int32) *packet.Packet { return &packet.Packet{Size: size} }

func TestDropTailBasics(t *testing.T) {
	q := NewDropTail(3000)
	if !q.Enqueue(pkt(1500), 0) || !q.Enqueue(pkt(1500), 0) {
		t.Fatal("enqueue under limit failed")
	}
	if q.Enqueue(pkt(1), 0) {
		t.Fatal("enqueue over limit succeeded")
	}
	if q.Len() != 2 || q.Bytes() != 3000 {
		t.Fatalf("len=%d bytes=%d", q.Len(), q.Bytes())
	}
	p, _ := q.Dequeue(0)
	if p == nil || q.Bytes() != 1500 {
		t.Fatal("dequeue broken")
	}
	s := q.Stats()
	if s.Enqueued != 2 || s.Dropped != 1 || s.Dequeued != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDropTailFIFOOrder(t *testing.T) {
	q := NewDropTail(1 << 20)
	for i := 0; i < 10; i++ {
		p := pkt(100)
		p.UID = uint64(i)
		q.Enqueue(p, 0)
	}
	for i := 0; i < 10; i++ {
		p, _ := q.Dequeue(0)
		if p.UID != uint64(i) {
			t.Fatalf("out of order: got %d want %d", p.UID, i)
		}
	}
}

func TestFIFOUnbounded(t *testing.T) {
	var q queue.FIFO
	for i := 0; i < 1000; i++ {
		if !q.Enqueue(pkt(1500), 0) {
			t.Fatal("FIFO dropped")
		}
	}
	if q.Len() != 1000 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestREDBelowMinThreshNeverDrops(t *testing.T) {
	cfg := DefaultRED(1_000_000) // 25000B limit, 12500 min
	rng := rand.New(rand.NewPCG(1, 1))
	q := NewRED(cfg, rng)
	// Keep instantaneous queue well below min threshold.
	for i := 0; i < 100; i++ {
		if !q.Enqueue(pkt(1000), sim.Time(i)*sim.Millisecond) {
			t.Fatal("drop below min thresh")
		}
		q.Dequeue(sim.Time(i)*sim.Millisecond + sim.Microsecond)
	}
	if q.Congested() {
		t.Fatal("congested with near-empty queue")
	}
}

func TestREDDropsUnderSustainedOverload(t *testing.T) {
	cfg := DefaultRED(1_000_000)
	rng := rand.New(rand.NewPCG(2, 2))
	q := NewRED(cfg, rng)
	drops := 0
	for i := 0; i < 200; i++ {
		if !q.Enqueue(pkt(1500), sim.Time(i)*sim.Microsecond) {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("no drops despite overload")
	}
	if !q.Congested() {
		t.Fatal("not congested despite overload")
	}
	if _, seen := q.LastCongested(); !seen {
		t.Fatal("congestion instant not recorded")
	}
	if q.Bytes() > cfg.LimitBytes {
		t.Fatalf("buffer exceeded limit: %d > %d", q.Bytes(), cfg.LimitBytes)
	}
}

func TestREDAverageDecaysWhenIdle(t *testing.T) {
	cfg := DefaultRED(1_000_000)
	rng := rand.New(rand.NewPCG(3, 3))
	q := NewRED(cfg, rng)
	now := sim.Time(0)
	for i := 0; i < 200; i++ {
		q.Enqueue(pkt(1500), now)
		now += 10 * sim.Microsecond
	}
	for {
		p, _ := q.Dequeue(now)
		if p == nil {
			break
		}
	}
	high := q.AvgBytes()
	// A long idle period followed by one enqueue must shrink the average.
	now += 10 * sim.Second
	q.Enqueue(pkt(100), now)
	if q.AvgBytes() >= high {
		t.Fatalf("avg did not decay: %f -> %f", high, q.AvgBytes())
	}
	if q.Congested() {
		t.Fatal("still congested after long idle")
	}
}

// Property: RED conserves packets — everything enqueued is either queued,
// dequeued, and nothing exceeds the hard limit.
func TestREDConservationProperty(t *testing.T) {
	prop := func(seed uint64, ops []bool) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		q := NewRED(DefaultRED(500_000), rng)
		now := sim.Time(0)
		in, out, dropped := 0, 0, 0
		for _, enq := range ops {
			now += sim.Millisecond
			if enq {
				if q.Enqueue(pkt(1500), now) {
					in++
				} else {
					dropped++
				}
			} else {
				if p, _ := q.Dequeue(now); p != nil {
					out++
				}
			}
			if q.Bytes() > 500_000/8/5*8 && q.Bytes() > DefaultRED(500_000).LimitBytes {
				return false
			}
		}
		return in == out+q.Len() && q.Stats().Dropped == uint64(dropped)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLossDetector(t *testing.T) {
	d := NewLossDetector()
	var s queue.Stats
	// No loss: never attacked.
	for i := 0; i < 50; i++ {
		s.Dequeued += 100
		if d.Sample(s) {
			t.Fatal("attack detected without loss")
		}
	}
	// Sustained 20% loss crosses the 2% EWMA threshold quickly.
	attacked := false
	for i := 0; i < 20; i++ {
		s.Dequeued += 80
		s.Dropped += 20
		if d.Sample(s) {
			attacked = true
			break
		}
	}
	if !attacked {
		t.Fatalf("attack not detected, rate=%f", d.Rate())
	}
	// Loss stops: the EWMA eventually falls back under the threshold.
	for i := 0; i < 200; i++ {
		s.Dequeued += 100
		d.Sample(s)
	}
	if d.Sample(s) {
		t.Fatalf("attack still flagged after recovery, rate=%f", d.Rate())
	}
}

func TestLossDetectorMildAttackBelowThreshold(t *testing.T) {
	// §5.2.1: keeping loss below p_th evades detection, but then the
	// damage is bounded. 1% loss must not trigger.
	d := NewLossDetector()
	var s queue.Stats
	for i := 0; i < 500; i++ {
		s.Dequeued += 99
		s.Dropped += 1
		if d.Sample(s) {
			t.Fatal("mild attack detected (should stay under threshold)")
		}
	}
}

func TestUtilDetector(t *testing.T) {
	d := NewUtilDetector(1_000_000)
	var tx uint64
	now := sim.Time(0)
	d.Sample(tx, now)
	// 50% utilization: not attacked.
	for i := 0; i < 50; i++ {
		now += sim.Second
		tx += 62_500 // 0.5 Mbps in bytes/s
		if d.Sample(tx, now) {
			t.Fatal("attack at 50% utilization")
		}
	}
	// 100% utilization: detected.
	attacked := false
	for i := 0; i < 60; i++ {
		now += sim.Second
		tx += 125_000
		if d.Sample(tx, now) {
			attacked = true
			break
		}
	}
	if !attacked {
		t.Fatalf("full link not detected, util=%f", d.Util())
	}
}

func TestLossFraction(t *testing.T) {
	prev := queue.Stats{Dequeued: 100, Dropped: 10}
	cur := queue.Stats{Dequeued: 180, Dropped: 30}
	got := cur.LossFraction(prev)
	if got != 0.2 {
		t.Fatalf("LossFraction = %f, want 0.2", got)
	}
	if (queue.Stats{}).LossFraction(queue.Stats{}) != 0 {
		t.Fatal("empty window should be lossless")
	}
}
