package aqm

import (
	"netfence/internal/queue"
	"netfence/internal/sim"
)

// LossDetector implements the attack detector of §4.3.1 and Figure 19: an
// EWMA of the regular-channel packet loss rate, sampled periodically. A
// link whose smoothed loss rate exceeds the threshold p_th is considered
// under attack, triggering a monitoring cycle.
type LossDetector struct {
	// Pth is the loss-rate threshold (Figure 3: 2%).
	Pth float64
	// Alpha is the EWMA weight given to the newest sample (Figure 19
	// uses drop_rate*0.9 + sample*0.1).
	Alpha float64

	rate float64
	prev queue.Stats
}

// NewLossDetector returns a detector with the paper's parameters.
func NewLossDetector() *LossDetector {
	return &LossDetector{Pth: 0.02, Alpha: 0.1}
}

// Sample folds the loss observed since the previous call into the EWMA
// and returns whether the link is currently deemed under attack.
func (d *LossDetector) Sample(s queue.Stats) bool {
	frac := s.LossFraction(d.prev)
	d.prev = s
	d.rate = (1-d.Alpha)*d.rate + d.Alpha*frac
	return d.rate > d.Pth
}

// Rate returns the smoothed loss rate.
func (d *LossDetector) Rate() float64 { return d.rate }

// UtilDetector implements the alternative detector for well-provisioned
// links (§4.3.1): an EWMA of link utilization with a high-load threshold
// (the paper suggests 95%).
type UtilDetector struct {
	// Threshold is the utilization above which the link is considered
	// under attack.
	Threshold float64
	// Alpha is the EWMA weight for the newest sample.
	Alpha float64
	// RateBps is the link capacity.
	RateBps int64

	util      float64
	prevBytes uint64
	prevAt    sim.Time
}

// NewUtilDetector returns a detector for a link of the given capacity.
func NewUtilDetector(rateBps int64) *UtilDetector {
	return &UtilDetector{Threshold: 0.95, Alpha: 0.1, RateBps: rateBps}
}

// Sample folds the utilization since the last call into the EWMA and
// returns whether the link exceeds the threshold. txBytes is the link's
// cumulative transmitted byte counter.
func (d *UtilDetector) Sample(txBytes uint64, now sim.Time) bool {
	if now > d.prevAt {
		sent := float64(txBytes-d.prevBytes) * 8
		cap := float64(d.RateBps) * (now - d.prevAt).Seconds()
		if cap > 0 {
			d.util = (1-d.Alpha)*d.util + d.Alpha*(sent/cap)
		}
	}
	d.prevBytes = txBytes
	d.prevAt = now
	return d.util > d.Threshold
}

// Util returns the smoothed utilization.
func (d *UtilDetector) Util() float64 { return d.util }
