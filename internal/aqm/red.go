package aqm

import (
	"math"
	"math/rand/v2"

	"netfence/internal/packet"
	"netfence/internal/queue"
	"netfence/internal/sim"
)

// REDConfig carries the Random Early Detection parameters. The defaults
// produced by DefaultRED mirror Figure 3 of the paper: a maximum queue of
// 0.2 s × link bandwidth, min/max thresholds at 0.5/0.75 of that, and an
// EWMA weight of 0.1.
type REDConfig struct {
	// LimitBytes is the hard queue limit Q_lim.
	LimitBytes int
	// MinThresh and MaxThresh are the RED thresholds in bytes.
	MinThresh, MaxThresh int
	// Wq is the EWMA weight for the average queue length.
	Wq float64
	// MaxP is the maximum early-drop probability at MaxThresh. The paper
	// leaves it unspecified; 0.1 is the classic RED recommendation.
	MaxP float64
	// MeanPktTime approximates the transmission time of a typical packet,
	// used to age the average while the queue idles.
	MeanPktTime sim.Time
}

// DefaultRED returns the Figure 3 RED configuration for a link of the
// given rate in bits per second.
func DefaultRED(rateBps int64) REDConfig {
	limit := int(rateBps / 8 / 5) // 0.2 s of buffering
	if limit < 2*packet.SizeData {
		limit = 2 * packet.SizeData
	}
	return REDConfig{
		LimitBytes:  limit,
		MinThresh:   limit / 2,
		MaxThresh:   limit * 3 / 4,
		Wq:          0.1,
		MaxP:        0.1,
		MeanPktTime: sim.TxTime(packet.SizeData, rateBps),
	}
}

// RED implements Random Early Detection (Floyd & Jacobson 1993) in bytes.
// Beyond the Queue interface it exposes Congested, the predicate bottleneck
// routers use to decide whether the link is overloaded when stamping
// congestion policing feedback (§4.3.4).
type RED struct {
	cfg   REDConfig
	rng   *rand.Rand
	q     queue.Ring
	bytes int
	hwm   int
	avg   float64
	count int // packets since last early drop
	idleA sim.Time
	stats queue.Stats
	// lastDrop distinguishes hard-limit from early drops in traces.
	lastDrop string

	// lastCongested is the most recent instant the average queue crossed
	// MinThresh or a packet was dropped; bottleneck routers derive the
	// Figure 4 hysteresis window from it.
	lastCongested sim.Time
	congestedSeen bool
}

// NewRED returns a RED queue using rng for early-drop decisions.
func NewRED(cfg REDConfig, rng *rand.Rand) *RED {
	return &RED{cfg: cfg, rng: rng, count: -1, idleA: -1}
}

// Enqueue runs the RED acceptance test and appends p if it survives.
func (r *RED) Enqueue(p *packet.Packet, now sim.Time) bool {
	r.updateAvg(now)
	drop := false
	switch {
	case r.bytes+int(p.Size) > r.cfg.LimitBytes:
		drop = true // hard limit
		r.lastDrop = "red-limit"
	case r.avg >= float64(r.cfg.MaxThresh):
		drop = true
		r.lastDrop = "red-early"
	case r.avg >= float64(r.cfg.MinThresh):
		pb := r.cfg.MaxP * (r.avg - float64(r.cfg.MinThresh)) /
			float64(r.cfg.MaxThresh-r.cfg.MinThresh)
		pa := pb
		if 1-float64(r.count)*pb > 0 {
			pa = pb / (1 - float64(r.count)*pb)
		}
		if r.rng.Float64() < pa {
			drop = true
			r.lastDrop = "red-early"
		} else {
			r.count++
		}
	default:
		r.count = -1
	}
	if r.avg >= float64(r.cfg.MinThresh) || drop {
		r.lastCongested = now
		r.congestedSeen = true
	}
	if drop {
		r.count = 0
		r.stats.Dropped++
		r.stats.DroppedBytes += uint64(p.Size)
		return false
	}
	p.EnqueuedAt = now
	r.q.Push(p)
	r.bytes += int(p.Size)
	if r.bytes > r.hwm {
		r.hwm = r.bytes
	}
	r.stats.Enqueued++
	return true
}

// updateAvg maintains the EWMA average queue size, ageing it while the
// queue has been idle.
func (r *RED) updateAvg(now sim.Time) {
	if r.q.Len() == 0 {
		if r.idleA >= 0 && r.cfg.MeanPktTime > 0 {
			m := float64(now-r.idleA) / float64(r.cfg.MeanPktTime)
			if m > 0 {
				r.avg *= math.Pow(1-r.cfg.Wq, m)
			}
		}
		r.idleA = now
	}
	r.avg = (1-r.cfg.Wq)*r.avg + r.cfg.Wq*float64(r.bytes)
}

// Dequeue pops the oldest packet.
func (r *RED) Dequeue(now sim.Time) (*packet.Packet, sim.Time) {
	p := r.q.Pop()
	if p == nil {
		return nil, 0
	}
	r.bytes -= int(p.Size)
	if r.q.Len() == 0 {
		r.idleA = now
	}
	r.stats.Dequeued++
	r.stats.DequeuedBytes += uint64(p.Size)
	return p, 0
}

// Len returns the number of queued packets.
func (r *RED) Len() int { return r.q.Len() }

// Bytes returns the number of queued bytes.
func (r *RED) Bytes() int { return r.bytes }

// Stats returns cumulative counters.
func (r *RED) Stats() queue.Stats { return r.stats }

// AvgBytes returns the EWMA average queue size.
func (r *RED) AvgBytes() float64 { return r.avg }

// Congested reports whether the average queue currently sits above the
// minimum threshold.
func (r *RED) Congested() bool { return r.avg >= float64(r.cfg.MinThresh) }

// LastCongested returns the most recent congestion instant and whether
// congestion has ever been observed.
func (r *RED) LastCongested() (sim.Time, bool) { return r.lastCongested, r.congestedSeen }

// HighWater returns the highest backlog in bytes the queue reached.
func (r *RED) HighWater() int { return r.hwm }

// LastDropReason reports why the last Enqueue refused a packet.
func (r *RED) LastDropReason() string { return r.lastDrop }
