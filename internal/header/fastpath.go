package header

import (
	"errors"

	"netfence/internal/cmac"
	"netfence/internal/feedback"
	"netfence/internal/packet"
)

// This file implements the per-packet data-path operations whose cost the
// paper reports in Figure 7. Each function parses the encoded header,
// performs the router's cryptographic work against real AES-CMAC keys, and
// re-encodes — the same work a Click element does in the authors' Linux
// prototype. bench_test.go at the repository root turns these into
// testing.B benchmarks (experiment E1).

// ErrInvalidFeedback is returned when presented feedback fails validation;
// the caller must treat the packet as a request packet (§4.4).
var ErrInvalidFeedback = errors.New("header: invalid congestion policing feedback")

// AccessStampRequest is the access-router fast path for a request packet:
// stamp fresh nop feedback (§4.2). The buffer is rewritten in place.
func AccessStampRequest(buf []byte, ring *feedback.KeyRing, src, dst packet.NodeID, nowSec uint32) (int, error) {
	h, _, err := Decode(buf, nowSec)
	if err != nil {
		return 0, err
	}
	h.FB = packet.Feedback{
		Mode:   packet.FBNop,
		Action: packet.ActIncr,
		TS:     nowSec,
		MAC:    feedback.NopMAC(ring.Current(), src, dst, nowSec),
	}
	return Encode(buf, &h), nil
}

// AccessProcessRegular is the access-router fast path for a regular
// packet: validate the presented feedback and restamp it for forwarding
// (§4.3.3). It returns the rate-limiter link (0 when the packet carries
// nop feedback and needs no limiting) and the new encoded length.
func AccessProcessRegular(buf []byte, ring *feedback.KeyRing, kai feedback.KaiLookup, src, dst packet.NodeID, nowSec, wSec uint32) (packet.LinkID, int, error) {
	h, _, err := Decode(buf, nowSec)
	if err != nil {
		return 0, 0, err
	}
	p := packet.Packet{Src: src, Dst: dst, FB: h.FB}
	verdict := feedback.Validate(ring, kai, &p, nowSec, wSec)
	switch verdict {
	case feedback.ValidNop:
		feedback.StampNop(ring.Current(), &p, nowSec)
		h.FB = p.FB
		return 0, Encode(buf, &h), nil
	case feedback.ValidMon:
		link := h.FB.Link
		feedback.StampIncr(ring.Current(), &p, nowSec, link)
		h.FB = p.FB
		return link, Encode(buf, &h), nil
	default:
		return 0, 0, ErrInvalidFeedback
	}
}

// BottleneckStampMon is the bottleneck-router fast path while its link is
// in the mon state: apply the ordered feedback-update rules of §4.3.2 to
// the encoded header. overloaded reports the link's congestion predicate
// (rule 3). It returns the new encoded length and whether the header was
// modified.
func BottleneckStampMon(buf []byte, kai *cmac.CMAC, link packet.LinkID, src, dst packet.NodeID, overloaded bool, nowSec uint32) (int, bool, error) {
	h, n, err := Decode(buf, nowSec)
	if err != nil {
		return 0, false, err
	}
	p := packet.Packet{Src: src, Dst: dst, FB: h.FB}
	switch {
	case h.FB.Mode == packet.FBNop:
		// Rule 1: nop is always replaced with L-down in mon state.
	case h.FB.Action == packet.ActDecr:
		// Rule 2: an upstream link's L-down is never overwritten.
		return n, false, nil
	case !overloaded:
		// Rule 3 negative: leave L-up alone when not overloaded.
		return n, false, nil
	}
	feedback.StampDecr(kai, &p, link)
	h.FB = p.FB
	return Encode(buf, &h), true, nil
}
