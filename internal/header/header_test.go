package header

import (
	"testing"
	"testing/quick"

	"netfence/internal/cmac"
	"netfence/internal/feedback"
	"netfence/internal/packet"
)

func sampleHeaders() []Header {
	mk := func(mode packet.FBMode, act packet.FBAction, ret bool, retMode packet.FBMode) Header {
		h := Header{
			Ver:   Version,
			Proto: packet.ProtoTCP,
			Prio:  3,
			FB: packet.Feedback{
				Mode: mode, Action: act, TS: 1234,
				Link: 77, MAC: [4]byte{1, 2, 3, 4}, TokenNop: [4]byte{5, 6, 7, 8},
			},
		}
		if mode == packet.FBNop {
			h.FB.Link = 0
			h.FB.TokenNop = [4]byte{}
			h.FB.Action = packet.ActIncr
		}
		if mode == packet.FBMon && act == packet.ActDecr {
			h.FB.TokenNop = [4]byte{} // erased on the wire
		}
		if ret {
			h.HasRet = true
			h.Ret = packet.Returned{
				Present: true, Mode: retMode, TS: 1233,
				MAC: [4]byte{9, 10, 11, 12},
			}
			if retMode == packet.FBMon {
				h.Ret.Link = 88
				h.Ret.Action = packet.ActDecr
			}
		}
		return h
	}
	return []Header{
		mk(packet.FBNop, packet.ActIncr, false, 0),
		mk(packet.FBNop, packet.ActIncr, true, packet.FBNop),
		mk(packet.FBMon, packet.ActIncr, false, 0),
		mk(packet.FBMon, packet.ActDecr, true, packet.FBNop),
		mk(packet.FBMon, packet.ActIncr, true, packet.FBMon),
		mk(packet.FBMon, packet.ActDecr, true, packet.FBMon),
	}
}

func TestSizes(t *testing.T) {
	hs := sampleHeaders()
	wants := []int{12, 16, 20, 20, 28, 24}
	for i, h := range hs {
		if got := EncodedSize(&h); got != wants[i] {
			t.Errorf("header %d: size %d, want %d", i, got, wants[i])
		}
	}
	// §6.1: worst case (mon feedback both directions) is 28 bytes.
	worst := hs[4]
	if EncodedSize(&worst) != packet.SizeNetFenceMx {
		t.Errorf("worst case = %d, want %d", EncodedSize(&worst), packet.SizeNetFenceMx)
	}
}

func TestRoundTrip(t *testing.T) {
	now := uint32(1234) // reconstruction needs now close to Ret.TS
	for i, h := range sampleHeaders() {
		var buf [MaxSize]byte
		n := Encode(buf[:], &h)
		if n != EncodedSize(&h) {
			t.Fatalf("header %d: Encode wrote %d, EncodedSize %d", i, n, EncodedSize(&h))
		}
		got, m, err := Decode(buf[:n], now)
		if err != nil {
			t.Fatalf("header %d: Decode: %v", i, err)
		}
		if m != n {
			t.Fatalf("header %d: Decode consumed %d, want %d", i, m, n)
		}
		if got.FB != h.FB {
			t.Errorf("header %d: FB = %+v, want %+v", i, got.FB, h.FB)
		}
		if got.HasRet != h.HasRet {
			t.Errorf("header %d: HasRet mismatch", i)
		}
		if h.HasRet {
			if got.Ret.Mode != h.Ret.Mode || got.Ret.Action != h.Ret.Action ||
				got.Ret.Link != h.Ret.Link || got.Ret.MAC != h.Ret.MAC {
				t.Errorf("header %d: Ret = %+v, want %+v", i, got.Ret, h.Ret)
			}
			if got.Ret.TS != h.Ret.TS {
				t.Errorf("header %d: reconstructed TS = %d, want %d", i, got.Ret.TS, h.Ret.TS)
			}
		}
		if got.Proto != h.Proto || got.Prio != h.Prio || got.Request != h.Request {
			t.Errorf("header %d: common fields mismatch", i)
		}
	}
}

func TestReconstructTS(t *testing.T) {
	for now := uint32(10); now < 20; now++ {
		for age := uint32(0); age < 4; age++ {
			ts := now - age
			if got := ReconstructTS(uint8(ts&3), now); got != ts {
				t.Errorf("now=%d age=%d: got %d, want %d", now, age, got, ts)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(make([]byte, 4), 0); err != ErrShort {
		t.Errorf("short buffer: %v", err)
	}
	var buf [MaxSize]byte
	h := sampleHeaders()[2]
	Encode(buf[:], &h)
	if _, _, err := Decode(buf[:10], 0); err != ErrShort {
		t.Errorf("truncated mon header: %v", err)
	}
	buf[0] = 0xF0 // bad version
	if _, _, err := Decode(buf[:], 0); err != ErrVersion {
		t.Errorf("bad version: %v", err)
	}
}

func TestPacketApply(t *testing.T) {
	p := &packet.Packet{Kind: packet.KindRequest, Prio: 5, Proto: packet.ProtoUDP}
	p.FB = packet.Feedback{Mode: packet.FBMon, Link: 3, TS: 9}
	h := FromPacket(p)
	if !h.Request || h.Prio != 5 || h.FB.Link != 3 {
		t.Fatalf("FromPacket: %+v", h)
	}
	var q packet.Packet
	h.Apply(&q)
	if q.Kind != packet.KindRequest || q.Prio != 5 || q.FB.Link != 3 {
		t.Fatalf("Apply: %+v", q)
	}
	h.Request = false
	h.Apply(&q)
	if q.Kind != packet.KindRegular {
		t.Fatalf("Apply regular: %v", q.Kind)
	}
}

// TestRoundTripProperty fuzzes header fields through encode/decode.
func TestRoundTripProperty(t *testing.T) {
	prop := func(mode, act, retMon bool, link uint32, ts uint32, mac [4]byte, prio uint8) bool {
		h := Header{Ver: Version, Proto: packet.ProtoUDP, Prio: prio}
		h.FB.TS = ts
		h.FB.MAC = mac
		if mode {
			h.FB.Mode = packet.FBMon
			h.FB.Link = packet.LinkID(link)
			if act {
				h.FB.Action = packet.ActDecr
			} else {
				h.FB.TokenNop = mac
			}
		}
		h.HasRet = true
		h.Ret = packet.Returned{Present: true, MAC: mac, TS: ts}
		if retMon {
			h.Ret.Mode = packet.FBMon
			h.Ret.Link = packet.LinkID(link)
		}
		var buf [MaxSize]byte
		n := Encode(buf[:], &h)
		got, m, err := Decode(buf[:n], ts) // decode "now" == ts so TS reconstructs
		if err != nil || m != n {
			return false
		}
		return got.FB == h.FB && got.Ret.TS == h.Ret.TS && got.Ret.Link == h.Ret.Link
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func fastpathKeys() (*feedback.KeyRing, *cmac.CMAC, feedback.KaiLookup) {
	var ka, kaiKey cmac.Key
	ka[0], kaiKey[0] = 1, 2
	kai := cmac.New(kaiKey)
	return feedback.NewKeyRingFromKey(ka), kai, func(packet.LinkID) *cmac.CMAC { return kai }
}

func TestFastPathEndToEnd(t *testing.T) {
	ring, kai, lookup := fastpathKeys()
	const (
		src packet.NodeID = 10
		dst packet.NodeID = 20
		L   packet.LinkID = 7
	)
	now := uint32(100)

	// 1. Access router stamps a request packet with nop feedback.
	var buf [MaxSize]byte
	h := Header{Ver: Version, Request: true, Proto: packet.ProtoTCP}
	Encode(buf[:], &h)
	if _, err := AccessStampRequest(buf[:], ring, src, dst, now); err != nil {
		t.Fatal(err)
	}

	// 2. Bottleneck in mon state replaces nop with L-down (rule 1).
	n, changed, err := BottleneckStampMon(buf[:], kai, L, src, dst, false, now)
	if err != nil || !changed {
		t.Fatalf("rule 1 stamp: n=%d changed=%v err=%v", n, changed, err)
	}

	// 3. Receiver returns it; sender presents it; access validates and
	// restamps L-up.
	link, _, err := AccessProcessRegular(buf[:], ring, lookup, src, dst, now+1, 4)
	if err != nil {
		t.Fatalf("present L-down: %v", err)
	}
	if link != L {
		t.Fatalf("limiter link = %d, want %d", link, L)
	}
	got, _, _ := Decode(buf[:], now+1)
	if got.FB.Mode != packet.FBMon || got.FB.Action != packet.ActIncr {
		t.Fatalf("restamped FB = %+v", got.FB)
	}

	// 4. Bottleneck overloaded: overwrites L-up with L-down (rule 3).
	_, changed, err = BottleneckStampMon(buf[:], kai, L, src, dst, true, now+1)
	if err != nil || !changed {
		t.Fatalf("rule 3 stamp: changed=%v err=%v", changed, err)
	}
	// 5. Not overloaded: leaves L-down alone (rule 2).
	_, changed, err = BottleneckStampMon(buf[:], kai, L, src, dst, true, now+1)
	if err != nil || changed {
		t.Fatalf("rule 2: changed=%v err=%v", changed, err)
	}
	// 6. Sender presents the final L-down; still valid.
	link, _, err = AccessProcessRegular(buf[:], ring, lookup, src, dst, now+2, 4)
	if err != nil || link != L {
		t.Fatalf("present final: link=%d err=%v", link, err)
	}
}

func TestFastPathRejectsForgery(t *testing.T) {
	ring, _, lookup := fastpathKeys()
	var buf [MaxSize]byte
	h := Header{Ver: Version, Proto: packet.ProtoTCP}
	h.FB = packet.Feedback{Mode: packet.FBMon, Link: 7, Action: packet.ActIncr, TS: 100}
	Encode(buf[:], &h)
	if _, _, err := AccessProcessRegular(buf[:], ring, lookup, 10, 20, 100, 4); err != ErrInvalidFeedback {
		t.Fatalf("forged feedback: err = %v, want ErrInvalidFeedback", err)
	}
}
