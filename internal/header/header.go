// Package header implements the NetFence shim header wire format of
// Figure 6 of the paper, sitting between IP and the upper-layer protocol.
//
// Layout (big endian):
//
//	byte 0   VER(4) | TYPE(4)
//	byte 1   PROTO
//	byte 2   PRIORITY
//	byte 3   FLAGS
//	byte 4-7 TIMESTAMP (seconds)
//	-- forward feedback --
//	mon:     LINK-ID(4) [TOKEN-NOP(4) if action=incr] MAC(4)
//	nop:     MAC(4)
//	-- returned feedback (optional) --
//	         MAC-return(4) [LINK-ID-return(4) if returned feedback is mon]
//
// TYPE bits: 0x8 request packet, 0x4 mon forward feedback, 0x1 returned
// feedback present. FLAGS bits: 0x80 forward action is decr, 0x40 returned
// action is decr, 0x04 LINK-ID-return present (returned feedback is mon),
// 0x03 the low two bits of the returned feedback's timestamp.
//
// Only the last two bits of the returned timestamp travel on the wire; the
// access router reconstructs the full value assuming it is less than four
// seconds old (§6.1). Resulting sizes: 12 B (nop, no return), 16 B (nop +
// returned nop), 20 B (mon incr, no return; or the paper's quoted common
// case), 28 B worst case (mon + returned mon), matching §6.1.
package header

import (
	"encoding/binary"
	"errors"

	"netfence/internal/packet"
)

// Version is the only header version this implementation understands.
const Version = 1

// TYPE nibble bits.
const (
	typeRequest = 0x8
	typeMon     = 0x4
	typeRet     = 0x1
)

// FLAGS bits.
const (
	flagDecr    = 0x80
	flagRetDecr = 0x40
	flagRetLink = 0x04
	flagRetTS   = 0x03
)

// MaxSize is the largest possible encoded header.
const MaxSize = 28

// Header is the decoded form of a NetFence shim header.
type Header struct {
	Ver     uint8
	Request bool
	Proto   packet.Proto
	Prio    uint8
	FB      packet.Feedback
	HasRet  bool
	Ret     packet.Returned
}

// Errors returned by Decode.
var (
	ErrShort   = errors.New("header: buffer too short")
	ErrVersion = errors.New("header: unsupported version")
)

// EncodedSize returns the number of bytes Encode will produce for h.
func EncodedSize(h *Header) int {
	n := 8 + 4 // common header + forward MAC
	if h.FB.Mode == packet.FBMon {
		n += 4 // LINK-ID
		if h.FB.Action == packet.ActIncr {
			n += 4 // TOKEN-NOP
		}
	}
	if h.HasRet {
		n += 4 // MAC-return
		if h.Ret.Mode == packet.FBMon {
			n += 4 // LINK-ID-return
		}
	}
	return n
}

// Encode serializes h into dst, which must have room for EncodedSize(h)
// bytes, and returns the number of bytes written.
func Encode(dst []byte, h *Header) int {
	t := byte(0)
	if h.Request {
		t |= typeRequest
	}
	if h.FB.Mode == packet.FBMon {
		t |= typeMon
	}
	if h.HasRet {
		t |= typeRet
	}
	dst[0] = h.Ver<<4 | t
	dst[1] = byte(h.Proto)
	dst[2] = h.Prio
	flags := byte(0)
	if h.FB.Mode == packet.FBMon && h.FB.Action == packet.ActDecr {
		flags |= flagDecr
	}
	if h.HasRet {
		if h.Ret.Mode == packet.FBMon && h.Ret.Action == packet.ActDecr {
			flags |= flagRetDecr
		}
		if h.Ret.Mode == packet.FBMon {
			flags |= flagRetLink
		}
		flags |= byte(h.Ret.TS) & flagRetTS
	}
	dst[3] = flags
	binary.BigEndian.PutUint32(dst[4:], h.FB.TS)
	n := 8
	if h.FB.Mode == packet.FBMon {
		binary.BigEndian.PutUint32(dst[n:], uint32(h.FB.Link))
		n += 4
		if h.FB.Action == packet.ActIncr {
			copy(dst[n:], h.FB.TokenNop[:])
			n += 4
		}
	}
	copy(dst[n:], h.FB.MAC[:])
	n += 4
	if h.HasRet {
		copy(dst[n:], h.Ret.MAC[:])
		n += 4
		if h.Ret.Mode == packet.FBMon {
			binary.BigEndian.PutUint32(dst[n:], uint32(h.Ret.Link))
			n += 4
		}
	}
	return n
}

// ReconstructTS rebuilds a full returned-feedback timestamp from its low
// two bits, assuming it is less than four seconds older than now (§6.1).
func ReconstructTS(yy uint8, nowSec uint32) uint32 {
	ts := nowSec&^3 | uint32(yy&3)
	if ts > nowSec {
		ts -= 4
	}
	return ts
}

// Decode parses a header from src. nowSec is the decoder's local clock,
// needed to reconstruct the truncated returned-feedback timestamp. It
// returns the header and the number of bytes consumed.
func Decode(src []byte, nowSec uint32) (Header, int, error) {
	var h Header
	if len(src) < 12 {
		return h, 0, ErrShort
	}
	h.Ver = src[0] >> 4
	if h.Ver != Version {
		return h, 0, ErrVersion
	}
	t := src[0] & 0xf
	h.Request = t&typeRequest != 0
	h.Proto = packet.Proto(src[1])
	h.Prio = src[2]
	flags := src[3]
	h.FB.TS = binary.BigEndian.Uint32(src[4:])
	n := 8
	if t&typeMon != 0 {
		h.FB.Mode = packet.FBMon
		if flags&flagDecr != 0 {
			h.FB.Action = packet.ActDecr
		}
		if len(src) < n+4 {
			return h, 0, ErrShort
		}
		h.FB.Link = packet.LinkID(binary.BigEndian.Uint32(src[n:]))
		n += 4
		if h.FB.Action == packet.ActIncr {
			if len(src) < n+4 {
				return h, 0, ErrShort
			}
			copy(h.FB.TokenNop[:], src[n:])
			n += 4
		}
	}
	if len(src) < n+4 {
		return h, 0, ErrShort
	}
	copy(h.FB.MAC[:], src[n:])
	n += 4
	if t&typeRet != 0 {
		h.HasRet = true
		h.Ret.Present = true
		if len(src) < n+4 {
			return h, 0, ErrShort
		}
		copy(h.Ret.MAC[:], src[n:])
		n += 4
		if flags&flagRetLink != 0 {
			h.Ret.Mode = packet.FBMon
			if len(src) < n+4 {
				return h, 0, ErrShort
			}
			h.Ret.Link = packet.LinkID(binary.BigEndian.Uint32(src[n:]))
			n += 4
		}
		if flags&flagRetDecr != 0 {
			h.Ret.Action = packet.ActDecr
		}
		h.Ret.TS = ReconstructTS(flags&flagRetTS, nowSec)
	}
	return h, n, nil
}

// FromPacket extracts the header fields of a simulated packet.
func FromPacket(p *packet.Packet) Header {
	return Header{
		Ver:     Version,
		Request: p.Kind == packet.KindRequest,
		Proto:   p.Proto,
		Prio:    p.Prio,
		FB:      p.FB,
		HasRet:  p.Ret.Present,
		Ret:     p.Ret,
	}
}

// Apply writes the header fields back into a simulated packet.
func (h *Header) Apply(p *packet.Packet) {
	if h.Request {
		p.Kind = packet.KindRequest
	} else {
		p.Kind = packet.KindRegular
	}
	p.Proto = h.Proto
	p.Prio = h.Prio
	p.FB = h.FB
	p.Ret = h.Ret
	p.Ret.Present = h.HasRet
}
