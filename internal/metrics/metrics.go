// Package metrics collects the quantities the paper's evaluation reports:
// file transfer times and completion ratios (Figure 8), per-sender
// throughput and the legitimate/attacker throughput ratio (Figures 9-11),
// Jain's fairness index, and link utilization.
package metrics

import (
	"math"
	"sort"

	"netfence/internal/sim"
)

// FCT records file-transfer completion times and failures.
type FCT struct {
	samples []sim.Time
	failed  int
}

// Add records one attempt.
func (f *FCT) Add(d sim.Time, ok bool) {
	if ok {
		f.samples = append(f.samples, d)
	} else {
		f.failed++
	}
}

// Merge folds another aggregate into f (sharded runs collect one FCT
// per shard and merge in shard order). Mean and percentiles are
// order-independent: the mean sums integers and Percentile sorts.
func (f *FCT) Merge(other *FCT) {
	f.samples = append(f.samples, other.samples...)
	f.failed += other.failed
}

// Count returns the number of successful transfers.
func (f *FCT) Count() int { return len(f.samples) }

// Failed returns the number of failed transfers.
func (f *FCT) Failed() int { return f.failed }

// CompletionRatio returns successes/(successes+failures), 1 when empty.
func (f *FCT) CompletionRatio() float64 {
	total := len(f.samples) + f.failed
	if total == 0 {
		return 1
	}
	return float64(len(f.samples)) / float64(total)
}

// Mean returns the mean completion time of successful transfers.
func (f *FCT) Mean() sim.Time {
	if len(f.samples) == 0 {
		return 0
	}
	var sum sim.Time
	for _, s := range f.samples {
		sum += s
	}
	return sum / sim.Time(len(f.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) completion time.
func (f *FCT) Percentile(p float64) sim.Time {
	if len(f.samples) == 0 {
		return 0
	}
	sorted := make([]sim.Time, len(f.samples))
	copy(sorted, f.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Jain computes Jain's fairness index (sum x)^2 / (n * sum x^2), the
// metric of §6.3.2; it is 1 when all values are equal and approaches 1/n
// under maximal unfairness. An empty or all-zero input yields 1.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// JainWeighted computes Jain's index over a population where xs[i] is
// one per-member value shared by ws[i] members: (Σ w·x)² / (Σw · Σ w·x²).
// With all weights 1 this is exactly Jain. Used by fleet-aggregated
// scenarios, where one meter stands for N homogeneous senders.
func JainWeighted(xs, ws []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var wsum, sum, sq float64
	for i, x := range xs {
		w := ws[i]
		wsum += w
		sum += w * x
		sq += w * x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (wsum * sq)
}

// MeanStd returns the mean and population standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// RateMeter converts a byte counter sampled at two instants into a rate.
type RateMeter struct {
	startBytes int64
	startAt    sim.Time
}

// Mark snapshots the counter at the start of a measurement window.
func (m *RateMeter) Mark(bytes int64, now sim.Time) {
	m.startBytes = bytes
	m.startAt = now
}

// Rate returns the average bits per second since Mark.
func (m *RateMeter) Rate(bytes int64, now sim.Time) float64 {
	dt := (now - m.startAt).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(bytes-m.startBytes) * 8 / dt
}
