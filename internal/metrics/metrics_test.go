package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"netfence/internal/sim"
)

func TestFCT(t *testing.T) {
	var f FCT
	f.Add(sim.Second, true)
	f.Add(3*sim.Second, true)
	f.Add(0, false)
	if f.Count() != 2 || f.Failed() != 1 {
		t.Fatalf("count=%d failed=%d", f.Count(), f.Failed())
	}
	if f.Mean() != 2*sim.Second {
		t.Fatalf("mean = %v", f.Mean())
	}
	if r := f.CompletionRatio(); math.Abs(r-2.0/3) > 1e-9 {
		t.Fatalf("ratio = %v", r)
	}
}

func TestFCTPercentile(t *testing.T) {
	var f FCT
	for i := 1; i <= 100; i++ {
		f.Add(sim.Time(i)*sim.Millisecond, true)
	}
	if got := f.Percentile(50); got != 50*sim.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := f.Percentile(99); got != 99*sim.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := f.Percentile(100); got != 100*sim.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
}

func TestFCTEmpty(t *testing.T) {
	var f FCT
	if f.Mean() != 0 || f.Percentile(50) != 0 || f.CompletionRatio() != 1 {
		t.Fatal("empty FCT misbehaves")
	}
}

func TestJainKnownValues(t *testing.T) {
	if got := Jain([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal shares: %v", got)
	}
	// One active out of four: index = 1/4.
	if got := Jain([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("max unfairness: %v", got)
	}
	if got := Jain(nil); got != 1 {
		t.Fatalf("empty: %v", got)
	}
}

// Property: Jain's index lies in [1/n, 1] and is scale-invariant.
func TestJainProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		allZero := true
		for i, v := range raw {
			xs[i] = float64(v)
			if v != 0 {
				allZero = false
			}
		}
		if allZero {
			return Jain(xs) == 1
		}
		j := Jain(xs)
		if j < 1/float64(len(xs))-1e-9 || j > 1+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 7.5
		}
		return math.Abs(Jain(scaled)-j) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || s != 2 {
		t.Fatalf("mean=%v std=%v", m, s)
	}
	m, s = MeanStd(nil)
	if m != 0 || s != 0 {
		t.Fatal("empty MeanStd")
	}
}

func TestRateMeter(t *testing.T) {
	var m RateMeter
	m.Mark(1000, 10*sim.Second)
	got := m.Rate(2000, 20*sim.Second)
	if got != 800 {
		t.Fatalf("rate = %v, want 800 bps", got)
	}
	if m.Rate(5000, 10*sim.Second) != 0 {
		t.Fatal("zero-width window should yield 0")
	}
}
