package netsim

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"netfence/internal/packet"
	"netfence/internal/sim"
)

// referenceRoutes is the historical full-graph implementation: one
// reverse BFS per destination into an O(V²) next-hop table. The
// leaf-compressed ComputeRoutes must reproduce its next-hop choices —
// including tie-breaks — bit for bit, because routing decides which
// queues every packet crosses and the golden results pin that.
func referenceRoutes(n *Network) [][]int32 {
	num := len(n.Nodes)
	routes := make([][]int32, num)
	for i := range routes {
		routes[i] = make([]int32, num)
		for j := range routes[i] {
			routes[i][j] = -1
		}
	}
	in := make([][]*Link, num)
	for _, l := range n.Links {
		in[l.To.ID] = append(in[l.To.ID], l)
	}
	qbuf := make([]packet.NodeID, 0, num)
	seen := make([]bool, num)
	for dst := 0; dst < num; dst++ {
		for i := range seen {
			seen[i] = false
		}
		qbuf = qbuf[:0]
		qbuf = append(qbuf, packet.NodeID(dst))
		seen[dst] = true
		for len(qbuf) > 0 {
			v := qbuf[0]
			qbuf = qbuf[1:]
			for _, l := range in[v] {
				u := l.From.ID
				if !seen[u] {
					seen[u] = true
					routes[u][dst] = int32(l.Index)
					qbuf = append(qbuf, u)
				}
			}
		}
	}
	return routes
}

func checkRoutesMatch(t *testing.T, name string, n *Network) {
	t.Helper()
	n.ComputeRoutes()
	want := referenceRoutes(n)
	for _, from := range n.Nodes {
		for dst := range n.Nodes {
			got := n.Route(from, packet.NodeID(dst))
			gotIdx := int32(-1)
			if got != nil {
				gotIdx = int32(got.Index)
			}
			if gotIdx != want[from.ID][dst] {
				t.Fatalf("%s: Route(%v, %d) = link %d, reference BFS says %d",
					name, from, dst, gotIdx, want[from.ID][dst])
			}
		}
	}
}

// TestComputeRoutesMatchesReference pins the leaf-compressed routing
// against the full-graph BFS on hand-built shapes covering every
// classification edge: stub hosts, multi-link hosts (treated as core),
// isolated pairs, transit chains, and unreachable partitions.
func TestComputeRoutesMatchesReference(t *testing.T) {
	eng := sim.New(1)

	// Dumbbell-ish: hosts behind access routers over a transit pair.
	n := New(eng)
	rbl := n.NewNode("Rbl", 1000)
	rbr := n.NewNode("Rbr", 1000)
	n.Connect(rbl, rbr, 1e6, sim.Millisecond)
	for i := 0; i < 3; i++ {
		ra := n.NewNode(fmt.Sprintf("Ra%d", i), packet.ASID(1+i))
		n.Connect(ra, rbl, 1e9, sim.Millisecond)
		for h := 0; h < 4; h++ {
			host := n.NewHost(fmt.Sprintf("s%d.%d", i, h), packet.ASID(1+i))
			n.Connect(host, ra, 1e9, sim.Millisecond)
		}
	}
	rv := n.NewNode("Rv", 2000)
	n.Connect(rbr, rv, 1e9, sim.Millisecond)
	v := n.NewHost("victim", 2000)
	n.Connect(rv, v, 1e9, sim.Millisecond)
	checkRoutesMatch(t, "dumbbell", n)

	// Isolated pair: two single-link nodes joined to each other only —
	// neither qualifies as a stub — plus a disconnected island.
	n2 := New(eng)
	a := n2.NewHost("a", 1)
	b := n2.NewHost("b", 1)
	n2.Connect(a, b, 1e6, sim.Millisecond)
	n2.NewNode("island", 2)
	checkRoutesMatch(t, "pair", n2)

	// Multi-homed host: two uplinks disqualify it from stub compression.
	n3 := New(eng)
	r1 := n3.NewNode("r1", 1)
	r2 := n3.NewNode("r2", 2)
	r3 := n3.NewNode("r3", 3)
	n3.Connect(r1, r2, 1e6, sim.Millisecond)
	n3.Connect(r2, r3, 1e6, sim.Millisecond)
	mh := n3.NewHost("mh", 1)
	n3.Connect(mh, r1, 1e6, sim.Millisecond)
	n3.Connect(mh, r3, 1e6, sim.Millisecond)
	s := n3.NewHost("s", 2)
	n3.Connect(s, r2, 1e6, sim.Millisecond)
	checkRoutesMatch(t, "multihomed", n3)
}

// TestComputeRoutesMatchesReferenceRandom fuzzes random connected cores
// with random stub hosts and compares every (from, dst) next hop.
func TestComputeRoutesMatchesReferenceRandom(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 99))
		eng := sim.New(1)
		n := New(eng)
		cores := rng.IntN(8) + 2
		var routers []*Node
		for i := 0; i < cores; i++ {
			r := n.NewNode(fmt.Sprintf("r%d", i), packet.ASID(i))
			if i > 0 {
				n.Connect(r, routers[rng.IntN(i)], 1e6, sim.Millisecond)
			}
			routers = append(routers, r)
		}
		extra := rng.IntN(cores)
		for i := 0; i < extra; i++ {
			a, b := rng.IntN(cores), rng.IntN(cores)
			if a != b {
				n.Connect(routers[a], routers[b], 1e6, sim.Millisecond)
			}
		}
		hosts := rng.IntN(12)
		for i := 0; i < hosts; i++ {
			h := n.NewHost(fmt.Sprintf("h%d", i), packet.ASID(rng.IntN(cores)))
			n.Connect(h, routers[rng.IntN(cores)], 1e6, sim.Millisecond)
		}
		checkRoutesMatch(t, fmt.Sprintf("random-%d", trial), n)
	}
}
