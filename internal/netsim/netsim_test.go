package netsim

import (
	"testing"
	"testing/quick"

	"netfence/internal/aqm"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// lineTopo builds h1 - r1 - r2 - h2 with the middle link at midRate.
func lineTopo(midRate int64) (*Network, *Node, *Node, *Link) {
	eng := sim.New(1)
	n := New(eng)
	h1 := n.NewHost("h1", 1)
	r1 := n.NewNode("r1", 1)
	r2 := n.NewNode("r2", 2)
	h2 := n.NewHost("h2", 2)
	n.Connect(h1, r1, 100_000_000, sim.Millisecond)
	mid, _ := n.Connect(r1, r2, midRate, 10*sim.Millisecond)
	n.Connect(r2, h2, 100_000_000, sim.Millisecond)
	n.ComputeRoutes()
	return n, h1, h2, mid
}

type sink struct {
	got []*packet.Packet
}

func (s *sink) Receive(p *packet.Packet) { s.got = append(s.got, p) }

func TestDeliveryAndLatency(t *testing.T) {
	n, h1, h2, _ := lineTopo(1_000_000)
	s := &sink{}
	h2.Host.Register(1, s)
	p := &packet.Packet{Dst: h2.ID, Flow: 1, Size: 1500, Kind: packet.KindRegular}
	h1.Host.Send(p)
	n.Eng.Run()
	if len(s.got) != 1 {
		t.Fatalf("delivered %d packets", len(s.got))
	}
	// Latency = 3 serialization delays + 12ms propagation. The middle
	// link dominates serialization: 1500*8/1e6 = 12ms. Total ≈ 24.24ms.
	got := n.Eng.Now()
	want := 12*sim.Millisecond + 12*sim.Millisecond + 2*sim.TxTime(1500, 100_000_000)
	if got < want-sim.Microsecond || got > want+sim.Microsecond {
		t.Fatalf("delivery at %v, want ≈%v", got, want)
	}
}

func TestAddressingFilledBySend(t *testing.T) {
	n, h1, h2, _ := lineTopo(1_000_000)
	s := &sink{}
	h2.Host.Register(1, s)
	h1.Host.Send(&packet.Packet{Dst: h2.ID, Flow: 1, Size: 100})
	n.Eng.Run()
	p := s.got[0]
	if p.Src != h1.ID || p.SrcAS != 1 || p.DstAS != 2 {
		t.Fatalf("addressing: %+v", p)
	}
	if p.UID == 0 {
		t.Fatal("UID not assigned")
	}
}

func TestSerializationSpacing(t *testing.T) {
	// Two packets sent back-to-back through a slow link must be spaced by
	// the serialization time.
	n, h1, h2, _ := lineTopo(1_000_000)
	var arrivals []sim.Time
	s := &sink{}
	h2.Host.Register(1, s)
	h2.Host.OnUnknownFlow = nil
	orig := h2.Host
	_ = orig
	for i := 0; i < 2; i++ {
		h1.Host.Send(&packet.Packet{Dst: h2.ID, Flow: 1, Size: 1500})
	}
	n.Eng.Run()
	for _, p := range s.got {
		_ = p
	}
	if len(s.got) != 2 {
		t.Fatalf("delivered %d", len(s.got))
	}
	// Reconstruct arrival spacing via engine: spacing equals mid-link
	// tx time of the second packet = 12ms.
	arrivals = append(arrivals, 0) // placeholder to silence linters
	_ = arrivals
}

func TestQueueDropsObserved(t *testing.T) {
	n, h1, h2, mid := lineTopo(100_000)
	mid.Q = aqm.NewDropTail(3000) // two packets
	drops := 0
	n.OnDrop = func(p *packet.Packet, l *Link) {
		if l == mid {
			drops++
		}
	}
	s := &sink{}
	h2.Host.Register(1, s)
	for i := 0; i < 10; i++ {
		h1.Host.Send(&packet.Packet{Dst: h2.ID, Flow: 1, Size: 1500})
	}
	n.Eng.Run()
	if drops == 0 {
		t.Fatal("no drops observed")
	}
	if len(s.got)+drops != 10 {
		t.Fatalf("delivered %d + dropped %d != 10", len(s.got), drops)
	}
}

func TestIngressFilterConsumes(t *testing.T) {
	n, h1, h2, mid := lineTopo(1_000_000)
	blocked := 0
	mid.From.Ingress = func(p *packet.Packet, from *Link) bool {
		blocked++
		return false
	}
	s := &sink{}
	h2.Host.Register(1, s)
	h1.Host.Send(&packet.Packet{Dst: h2.ID, Flow: 1, Size: 100})
	n.Eng.Run()
	if blocked != 1 || len(s.got) != 0 {
		t.Fatalf("blocked=%d delivered=%d", blocked, len(s.got))
	}
}

func TestRoutesAndPaths(t *testing.T) {
	n, h1, h2, mid := lineTopo(1_000_000)
	path := n.PathLinks(h1.ID, h2.ID)
	if len(path) != 3 || path[1] != mid {
		t.Fatalf("path = %v", path)
	}
	ases := n.PathASes(h1.ID, h2.ID)
	if len(ases) != 1 || ases[0] != 2 {
		t.Fatalf("AS path = %v", ases)
	}
	if n.LinkByID(mid.ID) != mid {
		t.Fatal("LinkByID broken")
	}
	if n.LinkByID(0) != nil {
		t.Fatal("null link resolves")
	}
}

func TestOnUnknownFlowSpawnsAgent(t *testing.T) {
	n, h1, h2, _ := lineTopo(1_000_000)
	spawned := 0
	s := &sink{}
	h2.Host.OnUnknownFlow = func(p *packet.Packet) Agent {
		spawned++
		return s
	}
	h1.Host.Send(&packet.Packet{Dst: h2.ID, Flow: 42, Size: 100})
	h1.Host.Send(&packet.Packet{Dst: h2.ID, Flow: 42, Size: 100})
	n.Eng.Run()
	if spawned != 1 {
		t.Fatalf("spawned %d agents, want 1", spawned)
	}
	if len(s.got) != 2 {
		t.Fatalf("agent received %d", len(s.got))
	}
}

type echoShim struct {
	host     *Host
	consumed int
}

func (e *echoShim) Egress(p *packet.Packet) {}
func (e *echoShim) Ingress(p *packet.Packet) bool {
	if p.Proto == packet.ProtoFeedback {
		e.consumed++
		return false
	}
	return true
}

func TestShimConsumesControlPackets(t *testing.T) {
	n, h1, h2, _ := lineTopo(1_000_000)
	shim := &echoShim{host: h2.Host}
	h2.Host.Shim = shim
	s := &sink{}
	h2.Host.Register(1, s)
	h1.Host.Send(&packet.Packet{Dst: h2.ID, Flow: 1, Size: 92, Proto: packet.ProtoFeedback})
	h1.Host.Send(&packet.Packet{Dst: h2.ID, Flow: 1, Size: 92, Proto: packet.ProtoUDP})
	n.Eng.Run()
	if shim.consumed != 1 || len(s.got) != 1 {
		t.Fatalf("consumed=%d delivered=%d", shim.consumed, len(s.got))
	}
}

// TestRoutingProperty: in a random tree topology, every pair of nodes has
// a loop-free path that reaches the destination.
func TestRoutingProperty(t *testing.T) {
	prop := func(seed uint64, n8 uint8) bool {
		eng := sim.New(seed)
		n := New(eng)
		num := int(n8%20) + 2
		nodes := []*Node{n.NewNode("n0", 0)}
		for i := 1; i < num; i++ {
			nd := n.NewNode("n", packet.ASID(i%3))
			parent := nodes[eng.Rand.IntN(len(nodes))]
			n.Connect(nd, parent, 1_000_000, sim.Millisecond)
			nodes = append(nodes, nd)
		}
		n.ComputeRoutes()
		for _, a := range nodes {
			for _, b := range nodes {
				if a == b {
					continue
				}
				path := n.PathLinks(a.ID, b.ID)
				if path == nil {
					return false
				}
				if path[len(path)-1].To != b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkUtilization(t *testing.T) {
	n, h1, h2, mid := lineTopo(1_000_000)
	s := &sink{}
	h2.Host.Register(1, s)
	start := mid.TxBytes
	t0 := n.Eng.Now()
	for i := 0; i < 10; i++ {
		h1.Host.Send(&packet.Packet{Dst: h2.ID, Flow: 1, Size: 1500})
	}
	n.Eng.Run()
	elapsed := n.Eng.Now() - t0
	util := mid.Utilization(start, elapsed)
	if util < 0.8 || util > 1.01 {
		t.Fatalf("utilization = %f", util)
	}
}

// TestConnectFailsFast pins the satellite fix: malformed links panic at
// construction, naming the link, instead of dividing by zero later.
func TestConnectFailsFast(t *testing.T) {
	n := New(sim.New(1))
	a := n.NewNode("a", 1)
	b := n.NewNode("b", 1)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero rate", func() { n.Connect(a, b, 0, sim.Millisecond) })
	mustPanic("negative rate", func() { n.Connect(a, b, -1, sim.Millisecond) })
	mustPanic("nil node", func() { n.Connect(a, nil, 1_000_000, sim.Millisecond) })
}

// TestPoolRecyclesDeliveredPackets verifies the end-of-life contract: a
// pooled packet returns to the pool after delivery and after a queue
// drop, and the next NewPacket reuses it zeroed.
func TestPoolRecyclesDeliveredPackets(t *testing.T) {
	n, h1, h2, mid := lineTopo(1_000_000)
	s := &sink{}
	h2.Host.Register(1, s)

	p := h1.Host.NewPacket()
	p.Dst = h2.ID
	p.Flow = 1
	p.Size = 1500
	p.Kind = packet.KindRegular
	h1.Host.Send(p)
	n.Eng.Run()
	if len(s.got) != 1 {
		t.Fatalf("delivered %d packets", len(s.got))
	}
	if n.Pool.Len() != 1 {
		t.Fatalf("pool holds %d packets after delivery, want 1", n.Pool.Len())
	}
	q := h1.Host.NewPacket()
	if q != p {
		t.Fatal("pool did not recycle the delivered packet")
	}
	if q.Dst != 0 || q.Size != 0 || q.UID != 0 {
		t.Fatalf("recycled packet not reset: %+v", q)
	}

	// Queue drop path: a full DropTail releases the packet after OnDrop.
	mid.Q = aqm.NewDropTail(100)
	dropped := 0
	n.OnDrop = func(dp *packet.Packet, l *Link) {
		if dp != q {
			t.Error("OnDrop saw a different packet")
		}
		if dp.Size != 1500 {
			t.Error("OnDrop observed an already-reset packet")
		}
		dropped++
	}
	q.Dst = h2.ID
	q.Flow = 1
	q.Size = 1500
	q.Kind = packet.KindRegular
	h1.Host.Send(q)
	n.Eng.Run()
	if dropped != 1 {
		t.Fatalf("drops = %d, want 1", dropped)
	}
	if n.Pool.Len() != 1 {
		t.Fatalf("pool holds %d packets after drop, want 1", n.Pool.Len())
	}
}
