// Package netsim is the packet-level network simulator that stands in for
// ns-2 in this reproduction: nodes joined by unidirectional links with
// configurable rate, propagation delay and queue discipline, static
// shortest-path routing, and a host stack with a pluggable defense shim
// between transport and network (where NetFence's shim header lives).
package netsim

import (
	"fmt"

	"netfence/internal/obs"
	"netfence/internal/packet"
	"netfence/internal/queue"
	"netfence/internal/sim"
)

// Network is a simulated internetwork. Build one by adding nodes and
// links, call ComputeRoutes, then attach transports and run the engine.
type Network struct {
	Eng   *sim.Engine
	Nodes []*Node
	Links []*Link

	// Pool recycles packets: transports draw from it (Host.NewPacket)
	// and the network returns packets at end of life — final delivery
	// (after the host stack has run) or drop (after the OnDrop observer
	// has run). A consumer that swallows a packet from a Node.Ingress
	// hook owns it: drop means Release, cache-and-reinject means Forward
	// later.
	Pool packet.Pool

	// Routing state, leaf-compressed: full next-hop tables are kept only
	// for "core" nodes (anything but single-link stub hosts), indexed by
	// a dense core numbering, while stubs route through their one uplink.
	// A 65k-sender topology has a few hundred core nodes, so the table is
	// kilobytes instead of the 17 GB an all-pairs node table would cost —
	// with next-hop choices bit-for-bit identical to the historical
	// full-graph BFS (see ComputeRoutes).
	coreIdx  []int32   // node -> dense core index, or -1 for stubs
	attachAt []int32   // stub node -> core index of its attachment point
	uplink   []int32   // stub node -> its single egress link index
	downlink []int32   // node -> link index from its attachment core node to it, or -1
	rtab     [][]int32 // [core][core] egress link index, or -1 when unreachable

	// OnDrop, when set, observes every packet lost at a link queue.
	// The packet returns to the pool right after the hook returns; do
	// not retain it.
	OnDrop func(p *packet.Packet, l *Link)

	// Cells is the replica's observability counter store, allocated
	// unconditionally so hot-path increments need no nil check. Each
	// replica's cells are written only by its own engine goroutine.
	Cells obs.Cells

	// Rec, when set, is the replica's packet flight recorder. Nil by
	// default: untraced runs pay exactly one nil comparison per
	// instrumented site.
	Rec *obs.Recorder

	uid  uint64
	flow uint32
}

// New returns an empty network driven by eng.
func New(eng *sim.Engine) *Network {
	return &Network{Eng: eng, Cells: obs.NewCells()}
}

// NewNode adds a router node.
func (n *Network) NewNode(name string, as packet.ASID) *Node {
	node := &Node{
		ID:   packet.NodeID(len(n.Nodes)),
		AS:   as,
		Name: name,
		net:  n,
	}
	n.Nodes = append(n.Nodes, node)
	return node
}

// NewHost adds a host node with an attached host stack.
func (n *Network) NewHost(name string, as packet.ASID) *Node {
	node := n.NewNode(name, as)
	node.IsHost = true
	node.Host = &Host{Node: node, net: n, agents: make(map[packet.FlowID]Agent)}
	return node
}

// Node returns the node with the given ID.
func (n *Network) Node(id packet.NodeID) *Node { return n.Nodes[id] }

// Connect creates a duplex connection between a and b as two independent
// unidirectional links with unbounded FIFO queues (replace Q for
// congestible links). It returns the a-to-b and b-to-a links.
//
// Connect fails fast on malformed links: nil endpoints or a non-positive
// rate panic with the offending link named, instead of surfacing later as
// a cryptic divide-by-zero in serialization-delay math.
func (n *Network) Connect(a, b *Node, rateBps int64, delay sim.Time) (ab, ba *Link) {
	ab = n.addLink(a, b, rateBps, delay)
	ba = n.addLink(b, a, rateBps, delay)
	return ab, ba
}

func (n *Network) addLink(from, to *Node, rateBps int64, delay sim.Time) *Link {
	if from == nil || to == nil {
		panic(fmt.Sprintf("netsim: link %v -> %v: nil node", from, to))
	}
	if rateBps <= 0 {
		panic(fmt.Sprintf("netsim: link %s -> %s: non-positive rate %d bps", from, to, rateBps))
	}
	l := &Link{
		Index: len(n.Links),
		ID:    packet.LinkID(len(n.Links) + 1), // 0 is the null link
		From:  from,
		To:    to,
		Rate:  rateBps,
		Delay: delay,
		Q:     &queue.FIFO{},
		net:   n,
	}
	n.Links = append(n.Links, l)
	from.out = append(from.out, l)
	return l
}

// LinkByID returns the link with the given LinkID, or nil.
func (n *Network) LinkByID(id packet.LinkID) *Link {
	i := int(id) - 1
	if i < 0 || i >= len(n.Links) {
		return nil
	}
	return n.Links[i]
}

// ComputeRoutes builds shortest-path (hop count) next-hop tables. Call
// it after the topology is final.
//
// The historical implementation ran one reverse BFS per destination over
// the full graph into an O(V²) table. This one compresses stubs first: a
// node with exactly one egress link whose neighbor is not itself a stub
// can only route through that uplink, and can never be transit for
// anyone else (its only inbound link mirrors the uplink), so the
// all-pairs BFS needs to cover only the core subgraph. The next-hop
// choices are bit-for-bit those of the full-graph BFS: a stub's
// discovery in the original walk always happened while processing its
// attachment node (its uplink appears in that node's inbound list), it
// contributed no further discoveries (its own inbound list holds only
// the already-seen attachment node), and a BFS rooted at a stub
// destination degenerates after one step into the BFS rooted at its
// attachment node plus the explicit downlink entry — exactly what Route
// reconstructs.
func (n *Network) ComputeRoutes() {
	num := len(n.Nodes)
	n.coreIdx = make([]int32, num)
	n.attachAt = make([]int32, num)
	n.uplink = make([]int32, num)
	n.downlink = make([]int32, num)
	var core []*Node
	for _, nd := range n.Nodes {
		n.uplink[nd.ID] = -1
		n.downlink[nd.ID] = -1
		n.attachAt[nd.ID] = -1
		if len(nd.out) == 1 && len(nd.out[0].To.out) > 1 {
			n.coreIdx[nd.ID] = -1 // stub
			continue
		}
		n.coreIdx[nd.ID] = int32(len(core))
		core = append(core, nd)
	}
	for _, nd := range n.Nodes {
		if n.coreIdx[nd.ID] >= 0 {
			n.attachAt[nd.ID] = n.coreIdx[nd.ID]
			continue
		}
		up := nd.out[0]
		n.uplink[nd.ID] = int32(up.Index)
		n.attachAt[nd.ID] = n.coreIdx[up.To.ID]
	}
	// Downlinks: the final hop from an attachment node to its stub.
	for _, l := range n.Links {
		if n.coreIdx[l.To.ID] < 0 && n.coreIdx[l.From.ID] >= 0 {
			if n.downlink[l.To.ID] < 0 {
				n.downlink[l.To.ID] = int32(l.Index)
			}
		}
	}

	// Reverse BFS per core destination over the core subgraph, walking
	// inbound links in link-declaration order — the original tie-break.
	R := len(core)
	n.rtab = make([][]int32, R)
	flat := make([]int32, R*R)
	for i := range flat {
		flat[i] = -1
	}
	for i := range n.rtab {
		n.rtab[i] = flat[i*R : (i+1)*R]
	}
	in := make([][]*Link, R)
	for _, l := range n.Links {
		fi, ti := n.coreIdx[l.From.ID], n.coreIdx[l.To.ID]
		if fi >= 0 && ti >= 0 {
			in[ti] = append(in[ti], l)
		}
	}
	qbuf := make([]int32, 0, R)
	seen := make([]bool, R)
	for dst := 0; dst < R; dst++ {
		for i := range seen {
			seen[i] = false
		}
		qbuf = append(qbuf[:0], int32(dst))
		seen[dst] = true
		for len(qbuf) > 0 {
			v := qbuf[0]
			qbuf = qbuf[1:]
			for _, l := range in[v] {
				u := n.coreIdx[l.From.ID]
				if !seen[u] {
					seen[u] = true
					n.rtab[u][dst] = int32(l.Index)
					qbuf = append(qbuf, u)
				}
			}
		}
	}
}

// routeFromCore returns the egress link index at core node fi toward
// dst, or -1.
func (n *Network) routeFromCore(fi int32, dst packet.NodeID) int32 {
	ti := n.coreIdx[dst]
	if ti >= 0 {
		return n.rtab[fi][ti]
	}
	// Stub destination: route to its attachment node, then the downlink.
	at := n.attachAt[dst]
	if at < 0 {
		return -1
	}
	if at == fi {
		return n.downlink[dst]
	}
	if n.rtab[fi][at] < 0 || n.downlink[dst] < 0 {
		return -1
	}
	return n.rtab[fi][at]
}

// Route returns the egress link at node from toward dst, or nil.
func (n *Network) Route(from *Node, dst packet.NodeID) *Link {
	if from.ID == dst {
		return nil
	}
	fi := n.coreIdx[from.ID]
	if fi < 0 {
		// Stub source: everything reachable goes through the uplink.
		up := n.Links[n.uplink[from.ID]]
		if up.To.ID == dst || n.routeFromCore(n.coreIdx[up.To.ID], dst) >= 0 {
			return up
		}
		return nil
	}
	idx := n.routeFromCore(fi, dst)
	if idx < 0 {
		return nil
	}
	return n.Links[idx]
}

// PathLinks returns the link sequence from src to dst, or nil when
// unreachable.
func (n *Network) PathLinks(src, dst packet.NodeID) []*Link {
	var path []*Link
	at := n.Nodes[src]
	for at.ID != dst {
		l := n.Route(at, dst)
		if l == nil {
			return nil
		}
		path = append(path, l)
		at = l.To
		if len(path) > len(n.Nodes) {
			return nil // routing loop; cannot happen with BFS tables
		}
	}
	return path
}

// PathASes returns the distinct downstream ASes on the path from src to
// dst, excluding src's own AS — the AS-level path Passport stamps for.
func (n *Network) PathASes(src, dst packet.NodeID) []packet.ASID {
	var ases []packet.ASID
	last := n.Nodes[src].AS
	for _, l := range n.PathLinks(src, dst) {
		if as := l.To.AS; as != last {
			ases = append(ases, as)
			last = as
		}
	}
	return ases
}

// Forward routes p from node toward its destination, dropping it (and
// returning it to the pool) when no route exists.
func (n *Network) Forward(at *Node, p *packet.Packet) {
	l := n.Route(at, p.Dst)
	if l == nil {
		n.Release(p)
		return
	}
	l.Send(p)
}

// Release returns a packet to the pool at end of life. Hand-constructed
// packets (not drawn from the pool) pass through untouched.
func (n *Network) Release(p *packet.Packet) { n.Pool.Put(p) }

// AllocPacket draws a zeroed packet from the pool.
func (n *Network) AllocPacket() *packet.Packet { return n.Pool.Get() }

// arrive processes p's arrival at node via l. A packet that reaches its
// destination is recycled once the host stack (shim, agents, observers)
// has finished with it; agents must not retain the pointer past Receive.
func (n *Network) arrive(p *packet.Packet, node *Node, l *Link) {
	if node.Ingress != nil && !node.Ingress(p, l) {
		return // the ingress hook consumed the packet and now owns it
	}
	if p.Dst == node.ID {
		if node.Host != nil {
			node.Host.Receive(p)
		}
		n.Cells.Add(obs.NetsimDelivered, 1)
		if n.Rec.Sampled(uint32(p.Flow)) {
			n.Rec.Record(int64(n.Eng.Now()), uint32(p.Flow), node.String(), obs.HopDeliver, "")
		}
		n.Release(p)
		return
	}
	n.Forward(node, p)
}

// NextUID returns a fresh packet UID.
func (n *Network) NextUID() uint64 {
	n.uid++
	return n.uid
}

// NextFlow returns a fresh flow identifier.
func (n *Network) NextFlow() packet.FlowID {
	n.flow++
	return packet.FlowID(n.flow)
}

// FlowSeq returns the flow-ID counter's position — after workload
// attachment, the number of attach-time flows (the flight recorder's
// sampling universe).
func (n *Network) FlowSeq() uint32 { return n.flow }

// SetFlowBase positions the flow-ID counter. Partitioned runs give each
// shard replica a disjoint range after attachment so flows opened at
// runtime (file and web transfers) never collide across shards.
func (n *Network) SetFlowBase(base uint32) { n.flow = base }

// NowSec returns the engine clock in whole seconds, the timestamp unit of
// the NetFence header.
func (n *Network) NowSec() uint32 {
	return uint32(n.Eng.Now() / sim.Second)
}

// Node is a router or host.
type Node struct {
	ID     packet.NodeID
	AS     packet.ASID
	Name   string
	IsHost bool
	Host   *Host

	// Weight is the number of modeled senders this node aggregates: 0 or
	// 1 for an ordinary host, N>1 for a fleet attachment point standing
	// in for N statistically homogeneous senders. Defenses and probes
	// consult SenderWeight to scale per-sender state (rate-limiter
	// parameters, fair-share denominators) in closed form.
	Weight int32

	// Ingress, when set, intercepts every packet arriving at this node
	// before delivery or forwarding. Returning false consumes the packet
	// (policers use this to drop, or to cache and re-inject later via
	// Network.Forward).
	Ingress func(p *packet.Packet, from *Link) bool

	net *Network
	out []*Link
}

// SenderWeight returns how many modeled senders the node stands for,
// never less than one.
func (nd *Node) SenderWeight() int {
	if nd.Weight > 1 {
		return int(nd.Weight)
	}
	return 1
}

// String identifies the node in traces.
func (nd *Node) String() string { return fmt.Sprintf("%s(%d)", nd.Name, nd.ID) }

// Out returns the node's egress links.
func (nd *Node) Out() []*Link { return nd.out }

// Network returns the owning network.
func (nd *Node) Network() *Network { return nd.net }

// LinkTo returns the direct egress link to neighbor, or nil.
func (nd *Node) LinkTo(neighbor *Node) *Link {
	for _, l := range nd.out {
		if l.To == neighbor {
			return l
		}
	}
	return nil
}
