// Package netsim is the packet-level network simulator that stands in for
// ns-2 in this reproduction: nodes joined by unidirectional links with
// configurable rate, propagation delay and queue discipline, static
// shortest-path routing, and a host stack with a pluggable defense shim
// between transport and network (where NetFence's shim header lives).
package netsim

import (
	"fmt"

	"netfence/internal/packet"
	"netfence/internal/queue"
	"netfence/internal/sim"
)

// Network is a simulated internetwork. Build one by adding nodes and
// links, call ComputeRoutes, then attach transports and run the engine.
type Network struct {
	Eng   *sim.Engine
	Nodes []*Node
	Links []*Link

	// Pool recycles packets: transports draw from it (Host.NewPacket)
	// and the network returns packets at end of life — final delivery
	// (after the host stack has run) or drop (after the OnDrop observer
	// has run). A consumer that swallows a packet from a Node.Ingress
	// hook owns it: drop means Release, cache-and-reinject means Forward
	// later.
	Pool packet.Pool

	// routes[from][dst] is the egress link index at node from toward
	// node dst, or -1 when unreachable.
	routes [][]int32

	// OnDrop, when set, observes every packet lost at a link queue.
	// The packet returns to the pool right after the hook returns; do
	// not retain it.
	OnDrop func(p *packet.Packet, l *Link)

	uid  uint64
	flow uint32
}

// New returns an empty network driven by eng.
func New(eng *sim.Engine) *Network {
	return &Network{Eng: eng}
}

// NewNode adds a router node.
func (n *Network) NewNode(name string, as packet.ASID) *Node {
	node := &Node{
		ID:   packet.NodeID(len(n.Nodes)),
		AS:   as,
		Name: name,
		net:  n,
	}
	n.Nodes = append(n.Nodes, node)
	return node
}

// NewHost adds a host node with an attached host stack.
func (n *Network) NewHost(name string, as packet.ASID) *Node {
	node := n.NewNode(name, as)
	node.IsHost = true
	node.Host = &Host{Node: node, net: n, agents: make(map[packet.FlowID]Agent)}
	return node
}

// Node returns the node with the given ID.
func (n *Network) Node(id packet.NodeID) *Node { return n.Nodes[id] }

// Connect creates a duplex connection between a and b as two independent
// unidirectional links with unbounded FIFO queues (replace Q for
// congestible links). It returns the a-to-b and b-to-a links.
//
// Connect fails fast on malformed links: nil endpoints or a non-positive
// rate panic with the offending link named, instead of surfacing later as
// a cryptic divide-by-zero in serialization-delay math.
func (n *Network) Connect(a, b *Node, rateBps int64, delay sim.Time) (ab, ba *Link) {
	ab = n.addLink(a, b, rateBps, delay)
	ba = n.addLink(b, a, rateBps, delay)
	return ab, ba
}

func (n *Network) addLink(from, to *Node, rateBps int64, delay sim.Time) *Link {
	if from == nil || to == nil {
		panic(fmt.Sprintf("netsim: link %v -> %v: nil node", from, to))
	}
	if rateBps <= 0 {
		panic(fmt.Sprintf("netsim: link %s -> %s: non-positive rate %d bps", from, to, rateBps))
	}
	l := &Link{
		Index: len(n.Links),
		ID:    packet.LinkID(len(n.Links) + 1), // 0 is the null link
		From:  from,
		To:    to,
		Rate:  rateBps,
		Delay: delay,
		Q:     &queue.FIFO{},
		net:   n,
	}
	n.Links = append(n.Links, l)
	from.out = append(from.out, l)
	return l
}

// LinkByID returns the link with the given LinkID, or nil.
func (n *Network) LinkByID(id packet.LinkID) *Link {
	i := int(id) - 1
	if i < 0 || i >= len(n.Links) {
		return nil
	}
	return n.Links[i]
}

// ComputeRoutes builds shortest-path (hop count) next-hop tables via one
// reverse BFS per destination. Call it after the topology is final.
func (n *Network) ComputeRoutes() {
	num := len(n.Nodes)
	n.routes = make([][]int32, num)
	for i := range n.routes {
		n.routes[i] = make([]int32, num)
		for j := range n.routes[i] {
			n.routes[i][j] = -1
		}
	}
	// in[v] lists links arriving at v; BFS from each destination walks
	// them backwards, recording the forward link as the next hop.
	in := make([][]*Link, num)
	for _, l := range n.Links {
		in[l.To.ID] = append(in[l.To.ID], l)
	}
	qbuf := make([]packet.NodeID, 0, num)
	seen := make([]bool, num)
	for dst := 0; dst < num; dst++ {
		for i := range seen {
			seen[i] = false
		}
		qbuf = qbuf[:0]
		qbuf = append(qbuf, packet.NodeID(dst))
		seen[dst] = true
		for len(qbuf) > 0 {
			v := qbuf[0]
			qbuf = qbuf[1:]
			for _, l := range in[v] {
				u := l.From.ID
				if !seen[u] {
					seen[u] = true
					n.routes[u][dst] = int32(l.Index)
					qbuf = append(qbuf, u)
				}
			}
		}
	}
}

// Route returns the egress link at node from toward dst, or nil.
func (n *Network) Route(from *Node, dst packet.NodeID) *Link {
	idx := n.routes[from.ID][dst]
	if idx < 0 {
		return nil
	}
	return n.Links[idx]
}

// PathLinks returns the link sequence from src to dst, or nil when
// unreachable.
func (n *Network) PathLinks(src, dst packet.NodeID) []*Link {
	var path []*Link
	at := n.Nodes[src]
	for at.ID != dst {
		l := n.Route(at, dst)
		if l == nil {
			return nil
		}
		path = append(path, l)
		at = l.To
		if len(path) > len(n.Nodes) {
			return nil // routing loop; cannot happen with BFS tables
		}
	}
	return path
}

// PathASes returns the distinct downstream ASes on the path from src to
// dst, excluding src's own AS — the AS-level path Passport stamps for.
func (n *Network) PathASes(src, dst packet.NodeID) []packet.ASID {
	var ases []packet.ASID
	last := n.Nodes[src].AS
	for _, l := range n.PathLinks(src, dst) {
		if as := l.To.AS; as != last {
			ases = append(ases, as)
			last = as
		}
	}
	return ases
}

// Forward routes p from node toward its destination, dropping it (and
// returning it to the pool) when no route exists.
func (n *Network) Forward(at *Node, p *packet.Packet) {
	l := n.Route(at, p.Dst)
	if l == nil {
		n.Release(p)
		return
	}
	l.Send(p)
}

// Release returns a packet to the pool at end of life. Hand-constructed
// packets (not drawn from the pool) pass through untouched.
func (n *Network) Release(p *packet.Packet) { n.Pool.Put(p) }

// AllocPacket draws a zeroed packet from the pool.
func (n *Network) AllocPacket() *packet.Packet { return n.Pool.Get() }

// arrive processes p's arrival at node via l. A packet that reaches its
// destination is recycled once the host stack (shim, agents, observers)
// has finished with it; agents must not retain the pointer past Receive.
func (n *Network) arrive(p *packet.Packet, node *Node, l *Link) {
	if node.Ingress != nil && !node.Ingress(p, l) {
		return // the ingress hook consumed the packet and now owns it
	}
	if p.Dst == node.ID {
		if node.Host != nil {
			node.Host.Receive(p)
		}
		n.Release(p)
		return
	}
	n.Forward(node, p)
}

// NextUID returns a fresh packet UID.
func (n *Network) NextUID() uint64 {
	n.uid++
	return n.uid
}

// NextFlow returns a fresh flow identifier.
func (n *Network) NextFlow() packet.FlowID {
	n.flow++
	return packet.FlowID(n.flow)
}

// NowSec returns the engine clock in whole seconds, the timestamp unit of
// the NetFence header.
func (n *Network) NowSec() uint32 {
	return uint32(n.Eng.Now() / sim.Second)
}

// Node is a router or host.
type Node struct {
	ID     packet.NodeID
	AS     packet.ASID
	Name   string
	IsHost bool
	Host   *Host

	// Ingress, when set, intercepts every packet arriving at this node
	// before delivery or forwarding. Returning false consumes the packet
	// (policers use this to drop, or to cache and re-inject later via
	// Network.Forward).
	Ingress func(p *packet.Packet, from *Link) bool

	net *Network
	out []*Link
}

// String identifies the node in traces.
func (nd *Node) String() string { return fmt.Sprintf("%s(%d)", nd.Name, nd.ID) }

// Out returns the node's egress links.
func (nd *Node) Out() []*Link { return nd.out }

// Network returns the owning network.
func (nd *Node) Network() *Network { return nd.net }

// LinkTo returns the direct egress link to neighbor, or nil.
func (nd *Node) LinkTo(neighbor *Node) *Link {
	for _, l := range nd.out {
		if l.To == neighbor {
			return l
		}
	}
	return nil
}
