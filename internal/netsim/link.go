package netsim

import (
	"netfence/internal/obs"
	"netfence/internal/packet"
	"netfence/internal/queue"
	"netfence/internal/sim"
)

// DropReasoner is implemented by queue disciplines that remember why
// the last Enqueue refused a packet; the flight recorder asks only on
// sampled flows, so the lookup stays off the hot path.
type DropReasoner interface {
	LastDropReason() string
}

// Link is a unidirectional link: a queue followed by a transmitter with
// serialization delay Size*8/Rate and propagation delay Delay. Replace Q
// before traffic flows to install a discipline other than the default
// unbounded FIFO.
//
// The link owns its scheduler events: one reusable transmit-complete
// event (at most one packet serializes at a time) and one reusable
// not-yet-eligible retry event; per-packet propagation uses the engine's
// pooled one-shot events. Steady-state forwarding therefore schedules
// without allocating.
type Link struct {
	Index int
	ID    packet.LinkID
	From  *Node
	To    *Node
	Rate  int64 // bits per second; must be positive
	Delay sim.Time
	Q     queue.Queue

	// OnTransmit, when set, observes each packet as transmission begins —
	// the hook bottleneck routers use to update congestion policing
	// feedback in the mon state (§4.3.2).
	OnTransmit func(p *packet.Packet, l *Link)

	// mailbox, when set, marks this link as a cut link of a partitioned
	// run whose To node lives on another shard: completed transmissions
	// hand the packet off instead of scheduling a local arrival. Nil in
	// single-engine runs — the hot path pays one predictable branch.
	mailbox *Mailbox

	busy       bool
	txEv       sim.Event
	retryEv    sim.Event
	retryArmed bool

	// TxPackets and TxBytes count completed transmissions.
	TxPackets uint64
	TxBytes   uint64

	net *Network
}

// linkTx dispatches the owned transmit-complete event to its link.
type linkTx Link

func (h *linkTx) OnEvent(_ sim.Time, arg any) {
	(*Link)(h).txDone(arg.(*packet.Packet))
}

// linkArrive dispatches a pooled propagation event: the packet reaches
// the link's head end.
type linkArrive Link

func (h *linkArrive) OnEvent(_ sim.Time, arg any) {
	l := (*Link)(h)
	l.net.arrive(arg.(*packet.Packet), l.To, l)
}

// linkRetry dispatches the owned not-yet-eligible retry event.
type linkRetry Link

func (h *linkRetry) OnEvent(sim.Time, any) {
	l := (*Link)(h)
	l.retryArmed = false
	l.tryTransmit()
}

// Send enqueues p and starts the transmitter if idle. A packet the queue
// refuses is dropped: observers see it via Network.OnDrop, then it
// returns to the packet pool.
func (l *Link) Send(p *packet.Packet) {
	if !l.Q.Enqueue(p, l.net.Eng.Now()) {
		l.net.Cells.Add(obs.NetsimDrops, 1)
		if l.net.Rec.Sampled(uint32(p.Flow)) {
			reason := ""
			if dr, ok := l.Q.(DropReasoner); ok {
				reason = dr.LastDropReason()
			}
			l.net.Rec.Record(int64(l.net.Eng.Now()), uint32(p.Flow), l.Label(), obs.HopDrop, reason)
		}
		if l.net.OnDrop != nil {
			l.net.OnDrop(p, l)
		}
		l.net.Release(p)
		return
	}
	if l.net.Rec.Sampled(uint32(p.Flow)) {
		l.net.Rec.Record(int64(l.net.Eng.Now()), uint32(p.Flow), l.Label(), obs.HopEnqueue, "")
	}
	if !l.busy {
		l.tryTransmit()
	}
}

// Label names the link in traces: "from->to".
func (l *Link) Label() string { return l.From.String() + "->" + l.To.String() }

// tryTransmit pulls the next eligible packet from the queue and transmits
// it. If the queue is backlogged but not yet eligible (rate-capped
// channel), a retry is scheduled at the queue's hint.
func (l *Link) tryTransmit() {
	if l.busy {
		return
	}
	now := l.net.Eng.Now()
	p, retryAt := l.Q.Dequeue(now)
	if p == nil {
		if retryAt > now {
			l.scheduleRetry(retryAt)
		}
		return
	}
	if l.retryArmed {
		l.retryEv.Cancel()
		l.retryArmed = false
	}
	if l.OnTransmit != nil {
		l.OnTransmit(p, l)
	}
	l.busy = true
	tx := sim.TxTime(int(p.Size), l.Rate)
	l.net.Eng.ScheduleEvent(&l.txEv, now+tx, (*linkTx)(l), p)
}

// txDone completes p's serialization: launch its propagation event (or
// hand the packet off to the destination shard over a cut link) and
// start on the next queued packet.
func (l *Link) txDone(p *packet.Packet) {
	l.busy = false
	l.TxPackets++
	l.TxBytes += uint64(p.Size)
	l.net.Cells.Add(obs.NetsimTxPackets, 1)
	l.net.Cells.Add(obs.NetsimTxBytes, uint64(p.Size))
	now := l.net.Eng.Now()
	if l.mailbox != nil {
		// The handoff key is exactly what a local propagation event's
		// scheduling key would have been, so the destination engine
		// executes the arrival where a single global engine would have.
		l.mailbox.push(p, l.net.Eng.HandoffKey(now+l.Delay))
	} else {
		l.net.Eng.Schedule(now+l.Delay, (*linkArrive)(l), p)
	}
	l.tryTransmit()
}

// SetMailbox marks the link as a cut link delivering into mb's
// destination replica. Partitioned-run wiring only.
func (l *Link) SetMailbox(mb *Mailbox) { l.mailbox = mb }

// IsCut reports whether the link hands off into another shard's replica.
func (l *Link) IsCut() bool { return l.mailbox != nil }

// SetRate changes the link capacity at the current instant. The packet
// currently serializing (if any) completes at the old rate — its
// transmit-complete event is already scheduled — and every subsequent
// transmission serializes at the new rate; tryTransmit reads l.Rate per
// packet, so no rescheduling is needed. Must be called while no event
// is executing (a scenario control point), or determinism across shard
// counts is forfeit. It panics on a non-positive rate.
func (l *Link) SetRate(bps int64) {
	if bps <= 0 {
		panic("netsim: SetRate requires a positive rate")
	}
	l.Rate = bps
}

// SetDelay changes the link propagation delay at the current instant.
// In-flight packets keep their scheduled arrival; subsequent
// transmissions propagate under the new delay. On a cut link of a
// partitioned run the new delay must stay at or above the partition's
// lookahead — the scenario layer validates this before applying. It
// panics on a non-positive delay.
func (l *Link) SetDelay(d sim.Time) {
	if d <= 0 {
		panic("netsim: SetDelay requires a positive delay")
	}
	l.Delay = d
}

// scheduleRetry arms (or re-arms) the not-yet-eligible retry timer.
func (l *Link) scheduleRetry(at sim.Time) {
	if l.retryArmed && l.retryEv.Time() <= at {
		return
	}
	if l.retryArmed {
		l.retryEv.Cancel()
	}
	l.retryArmed = true
	l.net.Eng.ScheduleEvent(&l.retryEv, at, (*linkRetry)(l), nil)
}

// Utilization returns the fraction of capacity used over an interval,
// given a byte count captured at the interval's start.
func (l *Link) Utilization(prevTxBytes uint64, interval sim.Time) float64 {
	if interval <= 0 || l.Rate <= 0 {
		return 0
	}
	return float64(l.TxBytes-prevTxBytes) * 8 / (float64(l.Rate) * interval.Seconds())
}
