package netsim

import (
	"netfence/internal/packet"
	"netfence/internal/queue"
	"netfence/internal/sim"
)

// Link is a unidirectional link: a queue followed by a transmitter with
// serialization delay Size*8/Rate and propagation delay Delay. Replace Q
// before traffic flows to install a discipline other than the default
// unbounded FIFO.
type Link struct {
	Index int
	ID    packet.LinkID
	From  *Node
	To    *Node
	Rate  int64 // bits per second; <=0 transmits instantaneously
	Delay sim.Time
	Q     queue.Queue

	// OnTransmit, when set, observes each packet as transmission begins —
	// the hook bottleneck routers use to update congestion policing
	// feedback in the mon state (§4.3.2).
	OnTransmit func(p *packet.Packet, l *Link)

	busy    bool
	retryEv *sim.Event

	// TxPackets and TxBytes count completed transmissions.
	TxPackets uint64
	TxBytes   uint64

	net *Network
}

// Send enqueues p and starts the transmitter if idle.
func (l *Link) Send(p *packet.Packet) {
	if !l.Q.Enqueue(p, l.net.Eng.Now()) {
		if l.net.OnDrop != nil {
			l.net.OnDrop(p, l)
		}
		return
	}
	if !l.busy {
		l.tryTransmit()
	}
}

// tryTransmit pulls the next eligible packet from the queue and transmits
// it. If the queue is backlogged but not yet eligible (rate-capped
// channel), a retry is scheduled at the queue's hint.
func (l *Link) tryTransmit() {
	if l.busy {
		return
	}
	now := l.net.Eng.Now()
	p, retryAt := l.Q.Dequeue(now)
	if p == nil {
		if retryAt > now {
			l.scheduleRetry(retryAt)
		}
		return
	}
	if l.retryEv != nil {
		l.retryEv.Cancel()
		l.retryEv = nil
	}
	if l.OnTransmit != nil {
		l.OnTransmit(p, l)
	}
	l.busy = true
	tx := sim.TxTime(int(p.Size), l.Rate)
	l.net.Eng.After(tx, func() {
		l.busy = false
		l.TxPackets++
		l.TxBytes += uint64(p.Size)
		l.net.Eng.After(l.Delay, func() {
			l.net.arrive(p, l.To, l)
		})
		l.tryTransmit()
	})
}

// scheduleRetry arms (or re-arms) the not-yet-eligible retry timer.
func (l *Link) scheduleRetry(at sim.Time) {
	if l.retryEv != nil && !l.retryEv.Cancelled() && l.retryEv.Time() <= at {
		return
	}
	if l.retryEv != nil {
		l.retryEv.Cancel()
	}
	l.retryEv = l.net.Eng.At(at, func() {
		l.retryEv = nil
		l.tryTransmit()
	})
}

// Utilization returns the fraction of capacity used over an interval,
// given a byte count captured at the interval's start.
func (l *Link) Utilization(prevTxBytes uint64, interval sim.Time) float64 {
	if interval <= 0 || l.Rate <= 0 {
		return 0
	}
	return float64(l.TxBytes-prevTxBytes) * 8 / (float64(l.Rate) * interval.Seconds())
}
