package netsim_test

import (
	"testing"

	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// BenchmarkSteadyStateForwarding measures the zero-allocation claim for
// the forwarding hot path: a packet drawn from the pool, sent through a
// host uplink and a two-hop router path, delivered to a sink and
// recycled. After pool and free-list warm-up every op must run
// allocation-free (pooled packets, owned link transmit events, pooled
// propagation events, ring-buffered FIFO queues).
func BenchmarkSteadyStateForwarding(b *testing.B) {
	eng := sim.New(1)
	n := netsim.New(eng)
	h1 := n.NewHost("h1", 1)
	r1 := n.NewNode("r1", 1)
	r2 := n.NewNode("r2", 2)
	h2 := n.NewHost("h2", 2)
	n.Connect(h1, r1, 1_000_000_000, sim.Millisecond)
	n.Connect(r1, r2, 1_000_000_000, sim.Millisecond)
	n.Connect(r2, h2, 1_000_000_000, sim.Millisecond)
	n.ComputeRoutes()

	delivered := 0
	h2.Host.OnUnknownFlow = func(p *packet.Packet) netsim.Agent {
		return agentFunc(func(*packet.Packet) { delivered++ })
	}

	send := func() {
		p := h1.Host.NewPacket()
		p.Dst = h2.ID
		p.Flow = 1
		p.Kind = packet.KindRegular
		p.Proto = packet.ProtoUDP
		p.Size = packet.SizeData
		h1.Host.Send(p)
		eng.Run()
	}
	// Warm the pool, the event free list and the queue rings.
	for i := 0; i < 100; i++ {
		send()
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send()
	}
	b.StopTimer()
	if delivered == 0 {
		b.Fatal("no packets delivered")
	}
}

type agentFunc func(*packet.Packet)

func (f agentFunc) Receive(p *packet.Packet) { f(p) }

// TestSteadyStateForwardingZeroAlloc asserts the PR's headline invariant
// in the regular test suite (benchmarks only report allocation counts;
// they never fail on them): once the pool, the event free list and the
// queue rings are warm, forwarding a packet end to end performs zero
// heap allocations.
func TestSteadyStateForwardingZeroAlloc(t *testing.T) {
	eng := sim.New(1)
	n := netsim.New(eng)
	h1 := n.NewHost("h1", 1)
	r1 := n.NewNode("r1", 1)
	h2 := n.NewHost("h2", 2)
	n.Connect(h1, r1, 1_000_000_000, sim.Millisecond)
	n.Connect(r1, h2, 1_000_000_000, sim.Millisecond)
	n.ComputeRoutes()
	h2.Host.OnUnknownFlow = func(p *packet.Packet) netsim.Agent {
		return agentFunc(func(*packet.Packet) {})
	}
	send := func() {
		p := h1.Host.NewPacket()
		p.Dst = h2.ID
		p.Flow = 1
		p.Kind = packet.KindRegular
		p.Proto = packet.ProtoUDP
		p.Size = packet.SizeData
		h1.Host.Send(p)
		eng.Run()
	}
	for i := 0; i < 100; i++ {
		send() // warm up pools and rings
	}
	if avg := testing.AllocsPerRun(200, send); avg != 0 {
		t.Fatalf("steady-state forwarding allocates %.2f times per packet, want 0", avg)
	}
}
