package netsim

import (
	"netfence/internal/obs"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// Mailbox carries packets across one cut link of a partitioned
// simulation: the shard owning the link's From side produces handoffs
// during its window, the shard owning the To side drains them at the
// next window start. Single producer, single consumer, and the two
// phases are separated by the coordinator's barrier, so plain slices
// need no further synchronization; the barrier provides the
// happens-before edge.
//
// Pending handoffs are stored structure-of-arrays — a key slab and a
// parallel packet-argument slab — so a drain hands the destination
// engine one contiguous batch (Engine.InjectBatch) instead of
// re-checking the clock and due batch per packet. Keys in a window are
// minted as now+delay with now nondecreasing and delay constant between
// barriers, so the slab is already sorted by arrival time: the batch
// contract (nondecreasing At) holds by construction, and "did anything
// land in this window" is answered by the first key alone.
//
// Ownership transfer: a handed-off packet leaves the source shard's
// pool domain with the push and enters the destination's — the
// destination network releases it into its own pool at end of life.
// Packet structs therefore migrate between per-shard pools over time,
// which is fine: pools are free lists, not arenas.
type Mailbox struct {
	// destLink is the destination replica's copy of the cut link; its
	// linkArrive handler delivers drained packets to the To node with
	// full ingress/forwarding semantics.
	destLink *Link
	keys     []sim.EventKey
	// args holds the packets pre-boxed as `any` so the batch injection
	// reuses the interface words instead of boxing per event.
	args []any
}

// NewMailbox creates the mailbox for a cut link. dest must be the
// destination shard replica's copy of the link (same Index as the
// source's).
func NewMailbox(dest *Link) *Mailbox { return &Mailbox{destLink: dest} }

// push records one handoff. Called by the source shard inside the
// transmit-complete event.
func (m *Mailbox) push(p *packet.Packet, key sim.EventKey) {
	m.keys = append(m.keys, key)
	m.args = append(m.args, p)
}

// Pending exposes the mailbox's undrained handoff batch: the sorted
// arrival-key slab and the parallel packet-argument slab. The sharded
// validation pipeline reads it between the coordinator's barrier and
// Drain — every shard is parked at the drain round, so the batch (and
// all replica state the verdicts depend on) is frozen. The slices alias
// the mailbox's slabs and are invalidated by the next Drain or push.
func (m *Mailbox) Pending() ([]sim.EventKey, []any) { return m.keys, m.args }

// DestLink returns the destination replica's copy of the cut link —
// where Pending packets will arrive.
func (m *Mailbox) DestLink() *Link { return m.destLink }

// Drain injects every pending arrival into the destination engine as
// one batch and reports whether any landed at or before deadline.
// Called by the destination shard at window start, after the barrier.
func (m *Mailbox) Drain(deadline sim.Time) bool {
	if len(m.keys) == 0 {
		return false
	}
	// Runtime-plane accounting, written on the destination goroutine
	// (the only side active after the barrier): handoff volume and the
	// deepest batch any drain saw. Shard-layout-dependent by nature.
	cells := m.destLink.net.Cells
	cells.Add(obs.NetsimHandoffBatches, 1)
	cells.Add(obs.NetsimHandoffPackets, uint64(len(m.keys)))
	cells.SetMax(obs.NetsimMailboxDepthHWM, uint64(len(m.keys)))
	// Keys ascend within the slab, so the earliest arrival is keys[0].
	hit := m.keys[0].At <= deadline
	eng := m.destLink.net.Eng
	eng.InjectBatch(m.keys, (*linkArrive)(m.destLink), m.args)
	for i := range m.args {
		m.args[i] = nil
	}
	m.keys = m.keys[:0]
	m.args = m.args[:0]
	return hit
}
