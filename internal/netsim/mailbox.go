package netsim

import (
	"netfence/internal/obs"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// Mailbox carries packets across one cut link of a partitioned
// simulation: the shard owning the link's From side produces handoffs
// during its window, the shard owning the To side drains them at the
// next window start. Single producer, single consumer, and the two
// phases are separated by the coordinator's barrier, so plain slices
// need no further synchronization; the barrier provides the
// happens-before edge.
//
// Ownership transfer: a handed-off packet leaves the source shard's
// pool domain with the push and enters the destination's — the
// destination network releases it into its own pool at end of life.
// Packet structs therefore migrate between per-shard pools over time,
// which is fine: pools are free lists, not arenas.
type Mailbox struct {
	// destLink is the destination replica's copy of the cut link; its
	// linkArrive handler delivers drained packets to the To node with
	// full ingress/forwarding semantics.
	destLink *Link
	pending  []handoff
}

// handoff is one in-flight cross-shard packet with the pedigree key that
// positions its arrival among the destination engine's events.
type handoff struct {
	p   *packet.Packet
	key sim.EventKey
}

// NewMailbox creates the mailbox for a cut link. dest must be the
// destination shard replica's copy of the link (same Index as the
// source's).
func NewMailbox(dest *Link) *Mailbox { return &Mailbox{destLink: dest} }

// push records one handoff. Called by the source shard inside the
// transmit-complete event.
func (m *Mailbox) push(p *packet.Packet, key sim.EventKey) {
	m.pending = append(m.pending, handoff{p: p, key: key})
}

// Drain injects every pending arrival into the destination engine and
// reports whether any landed at or before deadline. Called by the
// destination shard at window start, after the barrier.
func (m *Mailbox) Drain(deadline sim.Time) bool {
	if len(m.pending) == 0 {
		return false
	}
	// Runtime-plane accounting, written on the destination goroutine
	// (the only side active after the barrier): handoff volume and the
	// deepest batch any drain saw. Shard-layout-dependent by nature.
	cells := m.destLink.net.Cells
	cells.Add(obs.NetsimHandoffBatches, 1)
	cells.Add(obs.NetsimHandoffPackets, uint64(len(m.pending)))
	cells.SetMax(obs.NetsimMailboxDepthHWM, uint64(len(m.pending)))
	eng := m.destLink.net.Eng
	h := (*linkArrive)(m.destLink)
	hit := false
	for i := range m.pending {
		hd := &m.pending[i]
		eng.Inject(hd.key, h, hd.p)
		if hd.key.At <= deadline {
			hit = true
		}
		hd.p = nil
	}
	m.pending = m.pending[:0]
	return hit
}
