package netsim

import (
	"netfence/internal/packet"
)

// Agent is a transport endpoint attached to a host (a TCP sender, a TCP
// receiver, a UDP source or sink).
type Agent interface {
	Receive(p *packet.Packet)
}

// Shim is the defense layer between transport and network on a host —
// NetFence's shim protocol layer (§6.2: "a module between the IP and
// transport layers"). Egress classifies and decorates outgoing packets
// (channel, priority, presented feedback, capabilities); Ingress observes
// incoming packets and returns false to consume them (dedicated feedback
// packets never reach the transport).
type Shim interface {
	Egress(p *packet.Packet)
	Ingress(p *packet.Packet) bool
}

// PlainShim is the identity shim used by legacy hosts and baseline
// systems without a host layer: packets keep whatever the transport set.
type PlainShim struct{}

// Egress does nothing.
func (PlainShim) Egress(*packet.Packet) {}

// Ingress delivers everything.
func (PlainShim) Ingress(*packet.Packet) bool { return true }

// Host is the end-system stack living on a host node.
type Host struct {
	Node *Node
	// Shim is the defense layer; nil behaves like PlainShim.
	Shim Shim
	// OnUnknownFlow, when set, creates an agent for the first packet of
	// an unknown flow (server-style listeners).
	OnUnknownFlow func(p *packet.Packet) Agent

	net    *Network
	agents map[packet.FlowID]Agent
}

// Register attaches an agent to a flow.
func (h *Host) Register(flow packet.FlowID, a Agent) { h.agents[flow] = a }

// Unregister detaches a flow's agent.
func (h *Host) Unregister(flow packet.FlowID) { delete(h.agents, flow) }

// Agent returns the agent registered for flow, or nil.
func (h *Host) Agent(flow packet.FlowID) Agent { return h.agents[flow] }

// Network returns the owning network.
func (h *Host) Network() *Network { return h.net }

// NewPacket draws a zeroed packet from the network's pool; the packet
// returns to the pool automatically when the network delivers or drops
// it. Transports should prefer this over &packet.Packet{} so steady-state
// sending allocates nothing.
func (h *Host) NewPacket() *packet.Packet { return h.net.Pool.Get() }

// Send stamps addressing metadata, runs the shim's egress path, and
// injects p into the network.
func (h *Host) Send(p *packet.Packet) {
	p.Src = h.Node.ID
	p.SrcAS = h.Node.AS
	p.DstAS = h.net.Nodes[p.Dst].AS
	p.UID = h.net.NextUID()
	p.SentAt = h.net.Eng.Now()
	if h.Shim != nil {
		h.Shim.Egress(p)
	}
	h.net.Forward(h.Node, p)
}

// Receive runs the shim's ingress path and dispatches to the flow's agent.
func (h *Host) Receive(p *packet.Packet) {
	if h.Shim != nil && !h.Shim.Ingress(p) {
		return
	}
	if a := h.agents[p.Flow]; a != nil {
		a.Receive(p)
		return
	}
	if h.OnUnknownFlow != nil {
		if a := h.OnUnknownFlow(p); a != nil {
			h.agents[p.Flow] = a
			a.Receive(p)
		}
	}
}
