package attack

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParamSpec declares one tunable parameter of an attack strategy: the
// knob an adversarial search turns. Every strategy registers its specs
// alongside its builder; BuildOptions.Params sets values by Name, and
// Build validates them against the specs before the builder runs.
type ParamSpec struct {
	// Name is the canonical key ("rate_mult", "on", "cadence", ...).
	Name string
	// Desc is the one-line help printed by -list-attacks.
	Desc string
	// Min and Max bound the value (inclusive); Default is the value an
	// unset parameter takes.
	Min, Max, Default float64
	// Integer constrains values to whole numbers (interval counts,
	// priority levels).
	Integer bool
}

// Type renders the spec's value type for display.
func (p ParamSpec) Type() string {
	if p.Integer {
		return "int"
	}
	return "float"
}

// checkSpecs validates a registration's spec list — programmer errors,
// reported by panic from Register.
func checkSpecs(name string, specs []ParamSpec) {
	seen := map[string]bool{}
	for _, p := range specs {
		if p.Name == "" {
			panic(fmt.Sprintf("attack: Register(%q) with unnamed ParamSpec", name))
		}
		if seen[p.Name] {
			panic(fmt.Sprintf("attack: Register(%q) declares param %q twice", name, p.Name))
		}
		seen[p.Name] = true
		if p.Min > p.Max || p.Default < p.Min || p.Default > p.Max {
			panic(fmt.Sprintf("attack: Register(%q) param %q has default %v outside [%v, %v]", name, p.Name, p.Default, p.Min, p.Max))
		}
	}
}

// validateParams checks a Params map against a strategy's specs:
// every key must name a declared parameter, every value must sit in
// its range, and integer parameters take whole numbers only. Keys are
// checked in sorted order so the first error is deterministic.
func validateParams(specs []ParamSpec, params map[string]float64) error {
	if len(params) == 0 {
		return nil
	}
	byName := make(map[string]ParamSpec, len(specs))
	names := make([]string, 0, len(specs))
	for _, p := range specs {
		byName[p.Name] = p
		names = append(names, p.Name)
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		spec, ok := byName[k]
		if !ok {
			if len(names) == 0 {
				return fmt.Errorf("unknown param %q (strategy has no tunable params)", k)
			}
			return fmt.Errorf("unknown param %q (params: %s)", k, strings.Join(names, ", "))
		}
		v := params[k]
		if math.IsNaN(v) || v < spec.Min || v > spec.Max {
			return fmt.Errorf("param %s=%v outside [%v, %v]", k, v, spec.Min, spec.Max)
		}
		if spec.Integer && v != math.Trunc(v) {
			return fmt.Errorf("param %s=%v must be an integer", k, v)
		}
	}
	return nil
}

// ParseSpec parses an attack option string — "name" or
// "name:key=val,key=val" — into the canonical strategy name and its
// parameter map, failing fast with the strategy and offending key
// named: an unknown strategy reports the registered names, an unknown
// or out-of-range key reports the strategy's declared params.
func ParseSpec(s string) (name string, params map[string]float64, err error) {
	head, rest, hasParams := strings.Cut(s, ":")
	name = Canonical(head)
	if name == "" {
		return "", nil, fmt.Errorf("attack spec %q: missing strategy name", s)
	}
	if !Registered(name) {
		return "", nil, fmt.Errorf("attack: unknown strategy %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	if !hasParams {
		return name, nil, nil
	}
	params = map[string]float64{}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		k = strings.ToLower(strings.TrimSpace(k))
		if !ok || k == "" {
			return "", nil, fmt.Errorf("attack %q: malformed param %q (want key=val)", name, strings.TrimSpace(kv))
		}
		if _, dup := params[k]; dup {
			return "", nil, fmt.Errorf("attack %q: param %q given twice", name, k)
		}
		f, ferr := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if ferr != nil {
			return "", nil, fmt.Errorf("attack %q: param %q: bad value %q", name, k, strings.TrimSpace(v))
		}
		params[k] = f
	}
	specs, _ := Params(name)
	if err := validateParams(specs, params); err != nil {
		return "", nil, fmt.Errorf("attack %q: %w", name, err)
	}
	return name, params, nil
}

// FormatSpec renders a (strategy, params) pair in canonical form —
// "name" or "name:key=val,..." with keys in ParamSpec declaration
// order and minimal float formatting — so equal configurations always
// render byte-identically. FormatSpec and ParseSpec round-trip. Keys
// not declared by the strategy (unregistered names pass through too)
// append in sorted order.
func FormatSpec(name string, params map[string]float64) string {
	name = Canonical(name)
	if len(params) == 0 {
		return name
	}
	specs, _ := Params(name)
	var parts []string
	emitted := map[string]bool{}
	for _, p := range specs {
		if v, ok := params[p.Name]; ok {
			parts = append(parts, p.Name+"="+strconv.FormatFloat(v, 'g', -1, 64))
			emitted[p.Name] = true
		}
	}
	var extra []string
	for k := range params {
		if !emitted[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		parts = append(parts, k+"="+strconv.FormatFloat(params[k], 'g', -1, 64))
	}
	return name + ":" + strings.Join(parts, ",")
}

// Spec is one parsed attack option: a strategy name plus parameter
// overrides. String renders it canonically.
type Spec struct {
	Strategy string
	Params   map[string]float64
}

func (s Spec) String() string { return FormatSpec(s.Strategy, s.Params) }

// ParseSpecList splits a comma-separated attack list into specs,
// treating bare "key=val" segments as continuations of the preceding
// strategy — so "onoff-sync:on=2,off=4,flood" parses as
// onoff-sync{on:2, off:4} followed by flood, keeping the CLI's
// comma-separated -attack flag compatible with parameterized specs.
func ParseSpecList(csv string) ([]Spec, error) {
	var raw []string
	for _, seg := range strings.Split(csv, ",") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if strings.Contains(seg, "=") && !strings.Contains(seg, ":") {
			if len(raw) == 0 {
				return nil, fmt.Errorf("attack list: param segment %q before any strategy name", seg)
			}
			raw[len(raw)-1] += "," + seg
			continue
		}
		raw = append(raw, seg)
	}
	out := make([]Spec, 0, len(raw))
	for _, r := range raw {
		name, params, err := ParseSpec(r)
		if err != nil {
			return nil, err
		}
		out = append(out, Spec{Strategy: name, Params: params})
	}
	return out, nil
}
