package attack

import (
	"strings"
	"testing"

	"netfence/internal/core"
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
	"netfence/internal/transport"
)

// TestStrategicRequestLevelGolden pins the §6.3.1 computed level for the
// Figure 9/8 populations, so moving the helper out of internal/core
// provably changed nothing. At the paper's fixed attacker/capacity ratio
// (75% of the population at 10 Gbps / 25K senders) the level is
// scale-invariant: 5 at both paper and tiny scale.
func TestStrategicRequestLevelGolden(t *testing.T) {
	cfg := core.DefaultConfig()
	cases := []struct {
		name          string
		attackers     int
		bottleneckBps int64
		want          uint8
	}{
		{"fig9 paper (750 of 1000, 25K label)", 750, 400_000_000, 5},
		{"fig9 tiny (15 of 20, 25K label)", 15, 8_000_000, 5},
		{"fig8 paper (990 of 1000, 25K label)", 990, 400_000_000, 6},
		{"single attacker", 1, 400_000_000, 1},
	}
	for _, c := range cases {
		if got := StrategicRequestLevel(c.attackers, c.bottleneckBps, cfg); got != c.want {
			t.Errorf("%s: level = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestTheoremBound(t *testing.T) {
	cfg := core.DefaultConfig()
	// rho = (1-0.1)^3 = 0.729; C/N = 400 kbps at the tiny 25K label.
	got := TheoremBound(cfg, 8_000_000, 20)
	if want := 0.729 * 400_000; got < want-1 || got > want+1 {
		t.Fatalf("bound = %f, want ~%f", got, want)
	}
	if TheoremBound(cfg, 0, 20) != 0 || TheoremBound(cfg, 8_000_000, 0) != 0 {
		t.Fatal("degenerate inputs must yield a zero bound")
	}
}

// TestRegistry checks the five in-tree strategies resolve by name and
// the error paths mirror the defense/topo registries.
func TestRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{"flood", "onoff-sync", "request-prio", "replay", "legacy-flood"} {
		if !Registered(want) {
			t.Fatalf("registry missing %q (have %v)", want, names)
		}
	}
	if Registered("bogus") {
		t.Fatal("bogus strategy registered")
	}
	if _, err := Build("bogus", BuildOptions{}); err == nil || !strings.Contains(err.Error(), "unknown strategy") {
		t.Fatalf("unknown strategy error = %v", err)
	}
	// Alternate spellings canonicalize.
	if _, err := Build(" Flood ", BuildOptions{}); err != nil {
		t.Fatalf("canonicalization failed: %v", err)
	}
	// Strategies reject foreign option types.
	if _, err := Build("onoff-sync", BuildOptions{Options: 42}); err == nil {
		t.Fatal("onoff-sync accepted an int option")
	}
	if _, err := Build("flood", BuildOptions{Options: OnOffOptions{}}); err == nil {
		t.Fatal("flood accepted options")
	}
	// request-prio needs a bottleneck to compute the §6.3.1 level.
	if _, err := Build("request-prio", BuildOptions{}); err == nil {
		t.Fatal("request-prio built without a bottleneck")
	}
	env := &Env{Attackers: 15, BottleneckBps: 8_000_000, Config: core.DefaultConfig()}
	s, err := Build("request-prio", BuildOptions{Env: env})
	if err != nil {
		t.Fatal(err)
	}
	if lvl := s.(*requestPrio).Level(); lvl != 5 {
		t.Fatalf("request-prio level = %d, want the §6.3.1 strategic 5", lvl)
	}
}

// testNet is a minimal undefended host-router-host wire for controller
// behavior tests.
func testNet(seed uint64) (*sim.Engine, *netsim.Network, *netsim.Node, *netsim.Node) {
	eng := sim.New(seed)
	n := netsim.New(eng)
	src := n.NewHost("src", 1)
	r := n.NewNode("r", 1)
	dst := n.NewHost("dst", 2)
	n.Connect(src, r, 10_000_000, sim.Millisecond)
	n.Connect(r, dst, 10_000_000, sim.Millisecond)
	n.ComputeRoutes()
	return eng, n, src, dst
}

// TestOnOffSyncPhaseLock drives the onoff-sync strategy over a bare wire
// and checks the burst/silence alternation is locked to the control
// interval: traffic flows in on-phases, none in off-phases.
func TestOnOffSyncPhaseLock(t *testing.T) {
	eng, _, src, dst := testNet(1)
	env := &Env{Eng: eng, Attackers: 1, BottleneckBps: 1_000_000, Config: core.DefaultConfig()}
	strat, err := Build("onoff-sync", BuildOptions{RateBps: 400_000, Env: env,
		Options: OnOffOptions{OnIntervals: 1, OffIntervals: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(strat, env)
	sink := transport.NewUDPSink(dst.Host, 7)
	ctrl.AddSender(src.Host, dst.ID, 7)
	ctrl.Start()

	ilim := env.Config.Ilim
	var perInterval []uint64
	last := uint64(0)
	for i := 1; i <= 6; i++ {
		eng.RunUntil(sim.Time(i) * ilim)
		perInterval = append(perInterval, sink.Bytes-last)
		last = sink.Bytes
	}
	ctrl.Stop()
	// Period 3: intervals 0, 3 are bursts; 1, 2, 4, 5 are silence (a
	// final in-flight packet may spill into the first silent interval).
	if perInterval[0] == 0 || perInterval[3] == 0 {
		t.Fatalf("no traffic in on-intervals: %v", perInterval)
	}
	for _, idx := range []int{2, 5} {
		if perInterval[idx] > 1500 {
			t.Fatalf("off-interval %d carried %d bytes: %v", idx, perInterval[idx], perInterval)
		}
	}
}

// TestOnOffTrickleKeepsBursts pins the re-pacing fix: with a slow
// off-phase trickle whose inter-packet gap exceeds the whole on/off
// period, the burst phases must still fire at full rate (the pending
// trickle event is rescheduled when the Decision changes).
func TestOnOffTrickleKeepsBursts(t *testing.T) {
	eng, _, src, dst := testNet(4)
	env := &Env{Eng: eng, Attackers: 1, BottleneckBps: 1_000_000, Config: core.DefaultConfig()}
	// Trickle gap: TxTime(1500 B, 1 kbps) = 12 s > the 6 s period.
	strat, err := Build("onoff-sync", BuildOptions{RateBps: 400_000, Env: env,
		Options: OnOffOptions{OnIntervals: 1, OffIntervals: 2, OffRateBps: 1_000}})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(strat, env)
	sink := transport.NewUDPSink(dst.Host, 8)
	ctrl.AddSender(src.Host, dst.ID, 8)
	ctrl.Start()
	ilim := env.Config.Ilim
	var burst2 uint64
	last := uint64(0)
	for i := 1; i <= 4; i++ {
		eng.RunUntil(sim.Time(i) * ilim)
		if i == 4 { // interval 3 is the second burst
			burst2 = sink.Bytes - last
		}
		last = sink.Bytes
	}
	ctrl.Stop()
	// 400 kbps over a 2 s interval is ~100 kB; well above one trickle
	// packet.
	if burst2 < 50_000 {
		t.Fatalf("second burst carried only %d bytes — trickle event swallowed the on-phase", burst2)
	}
}

// TestControllerRestart pins the shim unwrap on Stop: a second Start
// must re-wrap cleanly (not wrap the Sender around itself) and resume
// emission.
func TestControllerRestart(t *testing.T) {
	eng, _, src, dst := testNet(5)
	env := &Env{Eng: eng, Attackers: 1, Config: core.DefaultConfig()}
	strat, err := Build("flood", BuildOptions{RateBps: 200_000, Env: env})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(strat, env)
	sink := transport.NewUDPSink(dst.Host, 12)
	s := ctrl.AddSender(src.Host, dst.ID, 12)
	ctrl.Start()
	eng.RunUntil(sim.Second)
	ctrl.Stop()
	if src.Host.Shim != nil {
		t.Fatalf("Stop left the shim wrapped: %T", src.Host.Shim)
	}
	mark := sink.Bytes
	ctrl.Start()
	eng.RunUntil(2 * sim.Second)
	ctrl.Stop()
	if sink.Bytes <= mark {
		t.Fatal("no traffic after restart")
	}
	if s.inner != nil {
		t.Fatal("inner shim not cleared after final Stop")
	}
}

// TestReplayCraft checks the replay strategy's cache-once semantics:
// honest until the first observed feedback, then that exact token on
// every packet forever.
func TestReplayCraft(t *testing.T) {
	eng, _, src, dst := testNet(2)
	env := &Env{Eng: eng, Attackers: 1, Config: core.DefaultConfig()}
	strat, err := Build("replay", BuildOptions{Env: env})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(strat, env)
	s := ctrl.AddSender(src.Host, dst.ID, 9)

	p := &packet.Packet{Kind: packet.KindRegular}
	if strat.Craft(s, p) {
		t.Fatal("replay crafted before any feedback was observed")
	}
	fb := packet.Feedback{Mode: packet.FBMon, Link: 3, Action: packet.ActIncr, TS: 17, MAC: [4]byte{1, 2, 3, 4}}
	strat.Observe(s, fb)
	newer := packet.Feedback{Mode: packet.FBMon, Link: 3, Action: packet.ActDecr, TS: 99}
	strat.Observe(s, newer) // must NOT displace the cached token
	q := &packet.Packet{}
	if !strat.Craft(s, q) {
		t.Fatal("replay did not craft after feedback was cached")
	}
	if q.FB != fb || q.Kind != packet.KindRegular {
		t.Fatalf("crafted packet carries %+v, want the first cached %+v", q.FB, fb)
	}
}

// TestControllerObservesFeedback checks the shim wrap records returned
// feedback on the Sender (the policer-inference surface) even on
// undefended hosts.
func TestControllerObservesFeedback(t *testing.T) {
	eng, _, src, dst := testNet(3)
	env := &Env{Eng: eng, Attackers: 1, Config: core.DefaultConfig()}
	strat, err := Build("flood", BuildOptions{RateBps: 100_000, Env: env})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(strat, env)
	transport.NewUDPSink(dst.Host, 11)
	s := ctrl.AddSender(src.Host, dst.ID, 11)
	ctrl.Start()
	eng.RunUntil(sim.Second)

	// A reply carrying returned feedback must land in the Sender state.
	reply := &packet.Packet{
		Dst: src.ID, Flow: 11, Proto: packet.ProtoUDP, Size: 100,
		Ret: packet.Returned{Present: true, Mode: packet.FBMon, Link: 5, Action: packet.ActDecr, TS: 1},
	}
	dst.Host.Send(reply)
	eng.RunUntil(2 * sim.Second)
	ctrl.Stop()
	if !s.HasFB || s.LastFB.Link != 5 || s.Downs != 1 {
		t.Fatalf("feedback not observed: HasFB=%v LastFB=%+v Downs=%d", s.HasFB, s.LastFB, s.Downs)
	}
	if s.Sent == 0 {
		t.Fatal("flood sender emitted nothing")
	}
}
