// Package attack is the adaptive-adversary subsystem: pluggable attack
// strategies driven by the simulation engine, mirroring the defense
// registry (internal/defense) and the topology registry (internal/topo).
//
// NetFence's claim (§3.4, Theorem 1) is not that it stops one flood but
// that it bounds the damage of *any* sender strategy. The §6.3
// evaluation therefore pits the system against strategic attackers:
// request-level escalation, on-off bursts phase-locked to the AIMD
// control interval, feedback replay, and legacy-channel floods under
// partial deployment. This package makes those adversaries first-class:
// a Strategy decides per control tick how fast each attack sender
// transmits, observes the congestion policing feedback the network
// returns (the attacker's window into the policer's state), and may
// craft each outgoing packet's channel, priority and presented feedback.
//
// A Controller owns one workload's senders: it wraps each sender host's
// deployed shim so crafted packets bypass the honest stack while honest
// packets (and the reverse feedback path) keep working, paces emission
// at the strategy's chosen rate, and re-consults the strategy on a
// shared tick so synchronized strategies stay phase-locked.
package attack

import (
	"netfence/internal/core"
	"netfence/internal/feedback"
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// Env is the scenario view an adaptive strategy keys its decisions off:
// what the attacker population knows about the network it is attacking.
type Env struct {
	// Eng is the driving simulation engine.
	Eng *sim.Engine
	// Attackers is the strategy's sender population.
	Attackers int
	// BottleneckBps is the targeted bottleneck's capacity (0 when the
	// topology exposes none; capacity-derived strategies then error at
	// build time).
	BottleneckBps int64
	// Config holds the deployed NetFence parameters — public protocol
	// constants (control interval, request-channel share, token rates) a
	// real attacker reads off the spec. The zero value is replaced with
	// the Figure 3 defaults.
	Config core.Config
}

// Decision is a strategy's transmission plan until the next tick.
type Decision struct {
	// RateBps is the send rate; 0 or negative pauses the sender.
	RateBps int64
	// PktSize is the on-wire packet size (0 = full-size data packets).
	PktSize int32
}

// Strategy is one adaptive attack. A single instance drives every
// sender of a workload (so population-level choices are shared and
// bursts synchronize); per-sender state lives on the Sender, in its
// State slot.
type Strategy interface {
	// Name is the canonical registry name, echoed in results.
	Name() string
	// Interval is the decision tick; strategies that phase-lock to the
	// policer return the AIMD control interval here.
	Interval(env *Env) sim.Time
	// Start initializes one sender before traffic begins and returns
	// its first Decision.
	Start(s *Sender) Decision
	// Tick re-decides a sender's Decision once per Interval.
	Tick(s *Sender) Decision
	// Observe hands the strategy congestion policing feedback returned
	// to a sender — the attacker's inference surface over the policer's
	// state (the Sender also tallies it in LastFB/Ups/Downs).
	Observe(s *Sender, fb packet.Feedback)
	// Craft decorates an outgoing packet (channel, priority, presented
	// feedback). Returning false defers to the sender host's deployed
	// shim — the honest path.
	Craft(s *Sender, p *packet.Packet) bool
}

// Sender is one attack sender under a Controller: the host it emits
// from, the destination it floods, and the feedback it has observed. It
// doubles as the host's shim so the strategy sees both directions of
// every packet.
type Sender struct {
	Host *netsim.Host
	Dst  packet.NodeID
	Flow packet.FlowID
	// Index is the sender's position in the workload's sender list.
	Index int
	Env   *Env
	// State is the strategy's per-sender slot (e.g. the replay cache).
	State any

	// LastFB is the most recent feedback returned by the receiver; Ups
	// and Downs count observed L-up/L-down actions — the raw material
	// for policer-state inference.
	LastFB packet.Feedback
	HasFB  bool
	Ups    uint64
	Downs  uint64
	// LastMFB is the most recent returned Appendix B.1 multi-bottleneck
	// header — MultiFeedback configurations return feedback here instead
	// of the single-feedback header. Observe fires only for the latter;
	// strategies read LastMFB directly (its per-link actions still feed
	// Ups/Downs).
	LastMFB packet.MultiHeader
	HasMFB  bool
	// Sent counts packets emitted.
	Sent uint64

	ctrl     *Controller
	inner    netsim.Shim
	dec      Decision
	ev       sim.Event // owned inter-packet pacing event
	sending  bool
	crafting bool
}

// senderPace dispatches the sender's owned pacing event.
type senderPace Sender

func (h *senderPace) OnEvent(sim.Time, any) { (*Sender)(h).sendNext() }

// Egress implements netsim.Shim: controller-emitted packets are offered
// to the strategy's Craft hook first; packets it declines — and all
// other traffic from this host — take the deployed shim's honest path.
func (s *Sender) Egress(p *packet.Packet) {
	if s.crafting && s.ctrl.strategy.Craft(s, p) {
		return
	}
	if s.inner != nil {
		s.inner.Egress(p)
	}
}

// Ingress implements netsim.Shim: returned feedback is recorded and
// handed to the strategy before the deployed shim sees the packet.
func (s *Sender) Ingress(p *packet.Packet) bool {
	if p.Ret.Present {
		s.LastFB = feedback.ToPresented(p.Ret)
		s.HasFB = true
		if s.LastFB.IsMon() {
			if s.LastFB.Action == packet.ActDecr {
				s.Downs++
			} else {
				s.Ups++
			}
		}
		s.ctrl.strategy.Observe(s, s.LastFB)
	}
	if p.RetMFB.Present {
		s.LastMFB = p.RetMFB
		s.HasMFB = true
		for _, it := range p.RetMFB.Items {
			if it.Action == packet.ActDecr {
				s.Downs++
			} else {
				s.Ups++
			}
		}
	}
	if s.inner != nil {
		return s.inner.Ingress(p)
	}
	return p.Proto != packet.ProtoFeedback
}

// apply installs a new Decision, starting, pausing or re-pacing the
// sending loop. A rate change while sending must reschedule the pending
// inter-packet event: a slow trickle's gap can span whole on-phases, and
// leaving it queued would swallow the burst the next Decision ordered.
func (s *Sender) apply(d Decision) {
	if d.PktSize <= 0 {
		d.PktSize = packet.SizeData
	}
	prev := s.dec
	s.dec = d
	if d.RateBps <= 0 {
		s.ev.Cancel()
		s.sending = false
		return
	}
	if !s.sending {
		s.sending = true
		s.sendNext()
		return
	}
	if d.RateBps != prev.RateBps || d.PktSize != prev.PktSize {
		s.ev.Cancel()
		s.sendNext()
	}
}

func (s *Sender) sendNext() {
	if !s.ctrl.running || s.dec.RateBps <= 0 {
		s.sending = false
		return
	}
	s.emit()
	s.Env.Eng.ScheduleEvent(&s.ev, s.Env.Eng.Now()+sim.TxTime(int(s.dec.PktSize), s.dec.RateBps), (*senderPace)(s), nil)
}

// emit sends one packet through the host stack; the crafting flag routes
// it to the strategy's Craft hook inside this sender's shim.
func (s *Sender) emit() {
	payload := s.dec.PktSize - packet.SizeIPUDP - packet.SizeNetFenceMx - packet.SizePassport
	if payload < 0 {
		payload = 0
	}
	p := s.Host.NewPacket()
	p.Dst = s.Dst
	p.Flow = s.Flow
	p.Kind = packet.KindRegular
	p.Proto = packet.ProtoUDP
	p.Size = s.dec.PktSize
	p.Payload = payload
	s.crafting = true
	s.Host.Send(p)
	s.crafting = false
	s.Sent++
}

// Inner returns the shim the sender wraps (the deployed defense layer,
// or nil on legacy hosts). Deployment mutations use it to splice the
// defense shim in or out from underneath a live attack wrapper.
func (s *Sender) Inner() netsim.Shim { return s.inner }

// SetInner replaces the wrapped shim. See Inner.
func (s *Sender) SetInner(sh netsim.Shim) { s.inner = sh }

// Controller drives one attack workload: it wraps each sender host's
// shim, paces emission per the strategy's Decisions, and re-consults the
// strategy on a shared tick. Construct with NewController, add senders,
// then Start; Stop halts all senders (scenario teardown, or an attack
// off-switch mid-run — a later Start resumes cleanly).
type Controller struct {
	strategy Strategy
	env      *Env
	senders  []*Sender
	ticker   *sim.Ticker
	running  bool
	// rateOverride, when positive, pins every Decision's RateBps — the
	// control plane's re-parameterization knob (see SetRate).
	rateOverride int64
}

// NewController creates a controller for one strategy instance. A zero
// env.Config is replaced with the Figure 3 defaults so interval-derived
// decisions always have a control interval to lock onto.
func NewController(strategy Strategy, env *Env) *Controller {
	if env.Config.Ilim <= 0 {
		env.Config = core.DefaultConfig()
	}
	return &Controller{strategy: strategy, env: env}
}

// Strategy returns the driven strategy.
func (c *Controller) Strategy() Strategy { return c.strategy }

// Running reports whether the controller is currently driving traffic.
func (c *Controller) Running() bool { return c.running }

// decide routes a strategy decision through the rate override.
func (c *Controller) decide(d Decision) Decision {
	if c.rateOverride > 0 {
		d.RateBps = c.rateOverride
	}
	return d
}

// SetRate overrides the per-sender rate of every future Decision
// (0 restores the strategy's own rates). While running, each sender's
// current decision is re-applied immediately, so the new rate takes
// effect at the call instant rather than the next tick. Call only at a
// scenario control point (no event executing).
func (c *Controller) SetRate(bps int64) {
	if bps < 0 {
		bps = 0
	}
	c.rateOverride = bps
	if !c.running {
		return
	}
	for _, s := range c.senders {
		d := s.dec
		if bps > 0 {
			d.RateBps = bps
		} else {
			d = c.strategy.Tick(s)
		}
		s.apply(d)
	}
}

// Senders returns the controller's senders in add order.
func (c *Controller) Senders() []*Sender { return c.senders }

// AddSender attaches one attack sender flooding dst on flow. Call
// before Start.
func (c *Controller) AddSender(host *netsim.Host, dst packet.NodeID, flow packet.FlowID) *Sender {
	s := &Sender{
		Host:  host,
		Dst:   dst,
		Flow:  flow,
		Index: len(c.senders),
		Env:   c.env,
		ctrl:  c,
	}
	c.senders = append(c.senders, s)
	return s
}

// Start wraps every sender's shim, applies the strategy's initial
// Decisions, and begins the shared decision tick.
func (c *Controller) Start() {
	if c.running {
		return
	}
	c.running = true
	for _, s := range c.senders {
		// Wrap whatever the deployed defense installed (nil on legacy
		// or baseline hosts): crafted packets bypass it, everything
		// else — including the reverse feedback path — still flows
		// through it.
		s.inner = s.Host.Shim
		s.Host.Shim = s
	}
	for _, s := range c.senders {
		s.apply(c.decide(c.strategy.Start(s)))
	}
	interval := c.strategy.Interval(c.env)
	if interval <= 0 {
		interval = c.env.Config.Ilim
	}
	c.ticker = c.env.Eng.Tick(interval, func() {
		for _, s := range c.senders {
			s.apply(c.decide(c.strategy.Tick(s)))
		}
	})
}

// Stop halts the decision tick and every sender's pacing loop, and
// unwraps the senders' shims so a later Start re-wraps cleanly instead
// of wrapping a Sender around itself.
func (c *Controller) Stop() {
	if !c.running {
		return
	}
	c.running = false
	c.ticker.Stop()
	for _, s := range c.senders {
		s.ev.Cancel()
		s.sending = false
		if s.Host.Shim == netsim.Shim(s) {
			s.Host.Shim = s.inner
		}
		s.inner = nil
	}
}
