package attack

import (
	"strings"
	"testing"

	"netfence/internal/core"
	"netfence/internal/sim"
)

// TestParamSpecsDeclared checks every in-tree strategy declares a
// tunable surface and the shared rate knob.
func TestParamSpecsDeclared(t *testing.T) {
	for _, name := range Names() {
		specs, err := Params(name)
		if err != nil {
			t.Fatalf("Params(%q): %v", name, err)
		}
		if len(specs) == 0 {
			t.Fatalf("%s declares no tunable params", name)
		}
		hasRate := false
		for _, p := range specs {
			if p.Name == "rate_mult" {
				hasRate = true
			}
			if p.Min > p.Max || p.Default < p.Min || p.Default > p.Max {
				t.Fatalf("%s param %s: default %v outside [%v, %v]", name, p.Name, p.Default, p.Min, p.Max)
			}
		}
		if !hasRate {
			t.Fatalf("%s lacks the shared rate_mult knob: %+v", name, specs)
		}
	}
	if _, err := Params("bogus"); err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("unknown strategy error = %v", err)
	}
}

// TestSpecRoundTrip pins FormatSpec∘ParseSpec as the identity on every
// strategy's full parameter surface.
func TestSpecRoundTrip(t *testing.T) {
	for _, name := range Names() {
		specs, _ := Params(name)
		params := map[string]float64{}
		for _, p := range specs {
			v := p.Max
			if p.Integer {
				v = float64(int(p.Max))
			}
			params[p.Name] = v
		}
		s := FormatSpec(name, params)
		gotName, gotParams, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		if gotName != name || len(gotParams) != len(params) {
			t.Fatalf("round trip %q -> %q %v", s, gotName, gotParams)
		}
		for k, v := range params {
			if gotParams[k] != v {
				t.Fatalf("round trip %q: param %s = %v, want %v", s, k, gotParams[k], v)
			}
		}
		if again := FormatSpec(gotName, gotParams); again != s {
			t.Fatalf("format not canonical: %q != %q", again, s)
		}
	}
	// The bare name round-trips too.
	if s := FormatSpec("flood", nil); s != "flood" {
		t.Fatalf("FormatSpec(flood, nil) = %q", s)
	}
}

// TestParseSpecErrors pins the fail-fast shapes: strategy and offending
// key are always named.
func TestParseSpecErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"slowloris", `unknown strategy "slowloris"`},
		{"onoff-sync:dty=2", `attack "onoff-sync": unknown param "dty"`},
		{"flood:rate_mult", `attack "flood": malformed param "rate_mult" (want key=val)`},
		{"flood:rate_mult=fast", `attack "flood": param "rate_mult": bad value "fast"`},
		{"flood:rate_mult=99", "outside [0.1, 8]"},
		{"onoff-sync:on=1.5", "must be an integer"},
		{"flood:rate_mult=2:rate_mult=3", `bad value "2:rate_mult=3"`},
		{":rate_mult=2", "missing strategy name"},
	}
	for _, c := range cases {
		if _, _, err := ParseSpec(c.in); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("ParseSpec(%q) error = %v, want containing %q", c.in, err, c.want)
		}
	}
	if _, _, err := ParseSpec("flood:rate_mult=2,rate_mult=3"); err == nil || !strings.Contains(err.Error(), `given twice`) {
		t.Fatalf("duplicate param error = %v", err)
	}
}

// TestParseSpecList pins the continuation rule: a bare key=val segment
// belongs to the preceding strategy.
func TestParseSpecList(t *testing.T) {
	specs, err := ParseSpecList("onoff-sync:on=2,off=4,flood, replay:cadence=3")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"onoff-sync:on=2,off=4", "flood", "replay:cadence=3"}
	if len(specs) != len(want) {
		t.Fatalf("specs = %v", specs)
	}
	for i, w := range want {
		if specs[i].String() != w {
			t.Fatalf("spec %d = %q, want %q", i, specs[i].String(), w)
		}
	}
	if _, err := ParseSpecList("on=2,flood"); err == nil || !strings.Contains(err.Error(), "before any strategy name") {
		t.Fatalf("leading continuation error = %v", err)
	}
	if _, err := ParseSpecList("flood:dty=2"); err == nil || !strings.Contains(err.Error(), `unknown param "dty"`) {
		t.Fatalf("list validation error = %v", err)
	}
}

// TestBuildValidatesParams checks Build rejects bad Params maps with
// the strategy named, and accepts full-surface overrides for every
// strategy.
func TestBuildValidatesParams(t *testing.T) {
	if _, err := Build("flood", BuildOptions{Params: map[string]float64{"dty": 1}}); err == nil ||
		!strings.Contains(err.Error(), `attack "flood": unknown param "dty"`) {
		t.Fatalf("Build error = %v", err)
	}
	env := &Env{Eng: sim.New(1), Attackers: 2, BottleneckBps: 1_000_000, Config: core.DefaultConfig()}
	for _, name := range Names() {
		specs, _ := Params(name)
		params := map[string]float64{}
		for _, p := range specs {
			params[p.Name] = p.Default
		}
		if _, err := Build(name, BuildOptions{Env: env, Params: params}); err != nil {
			t.Fatalf("Build(%q, defaults): %v", name, err)
		}
	}
}

// TestRateMultScalesRate checks the shared knob scales every
// strategy's sending rate.
func TestRateMultScalesRate(t *testing.T) {
	for _, name := range Names() {
		env := &Env{Eng: sim.New(1), Attackers: 1, BottleneckBps: 1_000_000, Config: core.DefaultConfig()}
		base, err := Build(name, BuildOptions{RateBps: 100_000, Env: env})
		if err != nil {
			t.Fatal(err)
		}
		doubled, err := Build(name, BuildOptions{RateBps: 100_000, Env: env, Params: map[string]float64{"rate_mult": 2}})
		if err != nil {
			t.Fatal(err)
		}
		d0, d2 := base.Start(&Sender{Env: env}), doubled.Start(&Sender{Env: env})
		if d2.RateBps != 2*d0.RateBps {
			t.Fatalf("%s: rate_mult=2 rate %d, want %d", name, d2.RateBps, 2*d0.RateBps)
		}
	}
}
