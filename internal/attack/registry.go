package attack

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// BuildOptions carries construction parameters to a strategy Builder.
type BuildOptions struct {
	// RateBps is the per-sender attack rate (0 = 1 Mbps).
	RateBps int64
	// PktSize is the on-wire packet size (0 = the strategy's default:
	// full-size data packets, or request-size for request-channel
	// strategies).
	PktSize int32
	// Env gives the builder the scenario facts adaptive strategies key
	// off: the attack population, the bottleneck capacity and the
	// deployed NetFence parameters. nil builds against defaults, which
	// disables the capacity-derived adaptations.
	Env *Env
	// Options is a strategy-specific configuration value whose concrete
	// type is defined by the registered builder (OnOffOptions for
	// "onoff-sync"). nil selects the strategy's defaults. Builders must
	// reject configuration types they do not understand.
	Options any
	// Params sets the strategy's tunable parameters by name — the
	// numeric surface an adversarial search turns (see the strategy's
	// registered ParamSpecs; -list-attacks prints them). nil keeps every
	// default; set values override both the defaults and any equivalent
	// Options field. Build validates keys and ranges against the specs
	// before the builder runs, so a typo fails fast with the strategy
	// and key named.
	Params map[string]float64
}

// Param returns the parameter value for key, or def when unset.
func (o BuildOptions) Param(key string, def float64) float64 {
	if v, ok := o.Params[key]; ok {
		return v
	}
	return def
}

// Builder constructs an attack strategy. One Strategy instance drives
// every sender of one attack workload, so builders may precompute
// population-level decisions (the §6.3.1 request level) once.
type Builder func(opts BuildOptions) (Strategy, error)

// entry is one registration: the builder plus its declared parameter
// surface.
type entry struct {
	builder Builder
	params  []ParamSpec
}

var (
	regMu    sync.RWMutex
	registry = map[string]entry{}
)

// Canonical normalizes a registry name: whitespace trimmed, lower-cased.
func Canonical(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// Register makes an attack strategy constructible by name through Build.
// The in-tree strategies self-register from an init function ("flood",
// "onoff-sync", "request-prio", "replay", "legacy-flood"); third-party
// strategies may register under any unclaimed name. The optional params
// declare the strategy's tunable surface: Build validates
// BuildOptions.Params against them, and the adversarial search treats
// them as the dimensions of the strategy's configuration space.
// Register panics on an empty name, a nil builder, a malformed spec, or
// a duplicate registration — all programmer errors.
func Register(name string, b Builder, params ...ParamSpec) {
	key := Canonical(name)
	if key == "" {
		panic("attack: Register with empty name")
	}
	if b == nil {
		panic(fmt.Sprintf("attack: Register(%q) with nil builder", name))
	}
	checkSpecs(key, params)
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("attack: Register(%q) called twice", key))
	}
	registry[key] = entry{builder: b, params: params}
}

// Registered reports whether a strategy name resolves in the registry.
func Registered(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[Canonical(name)]
	return ok
}

// Build resolves name in the registry, validates opts.Params against
// the strategy's declared ParamSpecs, and constructs the strategy.
func Build(name string, opts BuildOptions) (Strategy, error) {
	regMu.RLock()
	e, ok := registry[Canonical(name)]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("attack: unknown strategy %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	if err := validateParams(e.params, opts.Params); err != nil {
		return nil, fmt.Errorf("attack %q: %w", Canonical(name), err)
	}
	s, err := e.builder(opts)
	if err != nil {
		return nil, fmt.Errorf("attack %q: %w", Canonical(name), err)
	}
	return s, nil
}

// Params returns a copy of the strategy's declared parameter specs, in
// declaration order (the canonical dimension order of its search
// space). An unregistered name errors with the registered names, the
// same shape Build reports.
func Params(name string) ([]ParamSpec, error) {
	regMu.RLock()
	e, ok := registry[Canonical(name)]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("attack: unknown strategy %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	out := make([]ParamSpec, len(e.params))
	copy(out, e.params)
	return out, nil
}

// Names returns the sorted canonical names of every registered strategy.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
