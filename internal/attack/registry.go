package attack

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// BuildOptions carries construction parameters to a strategy Builder.
type BuildOptions struct {
	// RateBps is the per-sender attack rate (0 = 1 Mbps).
	RateBps int64
	// PktSize is the on-wire packet size (0 = the strategy's default:
	// full-size data packets, or request-size for request-channel
	// strategies).
	PktSize int32
	// Env gives the builder the scenario facts adaptive strategies key
	// off: the attack population, the bottleneck capacity and the
	// deployed NetFence parameters. nil builds against defaults, which
	// disables the capacity-derived adaptations.
	Env *Env
	// Options is a strategy-specific configuration value whose concrete
	// type is defined by the registered builder (OnOffOptions for
	// "onoff-sync"). nil selects the strategy's defaults. Builders must
	// reject configuration types they do not understand.
	Options any
}

// Builder constructs an attack strategy. One Strategy instance drives
// every sender of one attack workload, so builders may precompute
// population-level decisions (the §6.3.1 request level) once.
type Builder func(opts BuildOptions) (Strategy, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// Canonical normalizes a registry name: whitespace trimmed, lower-cased.
func Canonical(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// Register makes an attack strategy constructible by name through Build.
// The in-tree strategies self-register from an init function ("flood",
// "onoff-sync", "request-prio", "replay", "legacy-flood"); third-party
// strategies may register under any unclaimed name. Register panics on
// an empty name, a nil builder, or a duplicate registration — all
// programmer errors.
func Register(name string, b Builder) {
	key := Canonical(name)
	if key == "" {
		panic("attack: Register with empty name")
	}
	if b == nil {
		panic(fmt.Sprintf("attack: Register(%q) with nil builder", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("attack: Register(%q) called twice", key))
	}
	registry[key] = b
}

// Registered reports whether a strategy name resolves in the registry.
func Registered(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[Canonical(name)]
	return ok
}

// Build resolves name in the registry and constructs the strategy.
func Build(name string, opts BuildOptions) (Strategy, error) {
	regMu.RLock()
	b := registry[Canonical(name)]
	regMu.RUnlock()
	if b == nil {
		return nil, fmt.Errorf("attack: unknown strategy %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	s, err := b(opts)
	if err != nil {
		return nil, fmt.Errorf("attack %q: %w", Canonical(name), err)
	}
	return s, nil
}

// Names returns the sorted canonical names of every registered strategy.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
