package attack

import (
	"fmt"
	"math"

	"netfence/internal/core"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// rateMultSpec is the rate knob every in-tree strategy shares: the
// per-sender rate is RateBps (default 1 Mbps) times this multiplier,
// so a search can push a strategy past the paper's fixed load without
// a separate rate axis.
var rateMultSpec = ParamSpec{
	Name: "rate_mult", Desc: "per-sender rate multiplier on the base attack rate",
	Min: 0.1, Max: 8, Default: 1,
}

func init() {
	Register("flood", newFlood, rateMultSpec)
	Register("onoff-sync", newOnOffSync,
		ParamSpec{Name: "on", Desc: "burst length in AIMD control intervals", Min: 1, Max: 8, Default: 1, Integer: true},
		ParamSpec{Name: "off", Desc: "silence length in AIMD control intervals", Min: 1, Max: 8, Default: 2, Integer: true},
		ParamSpec{Name: "trickle_bps", Desc: "off-phase trickle rate harvesting L-up feedback (0 = full silence)", Min: 0, Max: 200_000, Default: 0},
		rateMultSpec,
	)
	Register("request-prio", newRequestPrio,
		ParamSpec{Name: "level", Desc: "request priority level (0 = the computed §6.3.1 strategic level)", Min: 0, Max: 20, Default: 0, Integer: true},
		rateMultSpec,
	)
	Register("replay", newReplay,
		ParamSpec{Name: "cadence", Desc: "re-harvest a fresh token every N control intervals (0 = cache once, replay forever)", Min: 0, Max: 32, Default: 0, Integer: true},
		rateMultSpec,
	)
	Register("legacy-flood", newLegacyFlood,
		ParamSpec{Name: "legacy_frac", Desc: "fraction of senders crafting legacy packets; the rest flood the honest policed path", Min: 0, Max: 1, Default: 1},
		rateMultSpec,
	)
}

// StrategicRequestLevel computes the request-channel attack strategy of
// §6.3.1: the highest priority level at which the aggregate admitted
// attack traffic still saturates the request channel. attackers is the
// flood population, bottleneckBps the link capacity. (Moved here from
// internal/core: it is an adversary decision, not a defense function.)
func StrategicRequestLevel(attackers int, bottleneckBps int64, cfg core.Config) uint8 {
	channel := cfg.RequestCapFrac * float64(bottleneckBps)
	level := uint8(1)
	for level < cfg.MaxPrioLevel {
		next := level + 1
		// Admitted per-sender packet rate at a level halves per step.
		perSender := cfg.TokenRatePerSec / float64(uint64(1)<<(next-1))
		aggregate := float64(attackers) * perSender * packet.SizeRequest * 8
		if aggregate < channel {
			break
		}
		level = next
	}
	return level
}

// DefaultNu is the assumed transport efficiency ν used to discount the
// TheoremBound rate-limit floor down to a goodput floor — conservative
// for the evaluation's TCP workloads at small scales. Shared by
// BoundProbe's default and the strategic experiment so their floors
// never diverge.
const DefaultNu = 0.5

// TheoremBound returns the Theorem 1 (§3.4, Appendix A) lower bound
// rho·C/(G+B) with rho = (1-MD)³ on the rate limit of any sender with
// sufficient demand: the share a legitimate sender keeps regardless of
// the attackers' strategy. senders is G+B, the total competing
// population; the result is 0 when the inputs are degenerate.
func TheoremBound(cfg core.Config, bottleneckBps int64, senders int) float64 {
	if bottleneckBps <= 0 || senders <= 0 {
		return 0
	}
	rho := math.Pow(1-cfg.MD, 3)
	return rho * float64(bottleneckBps) / float64(senders)
}

// base carries the rate/packet-size plumbing shared by the in-tree
// strategies and provides the no-op defaults (honest crafting, per-
// control-interval decisions).
type base struct {
	name    string
	rate    int64
	pktSize int32
}

func newBase(name string, opts BuildOptions, defaultSize int32) base {
	b := base{name: name, rate: opts.RateBps, pktSize: opts.PktSize}
	if b.rate <= 0 {
		b.rate = 1_000_000
	}
	if m := opts.Param("rate_mult", rateMultSpec.Default); m != rateMultSpec.Default {
		b.rate = int64(float64(b.rate) * m)
		if b.rate < 1 {
			b.rate = 1
		}
	}
	if b.pktSize <= 0 {
		b.pktSize = defaultSize
	}
	return b
}

func (b base) Name() string                       { return b.name }
func (b base) Interval(env *Env) sim.Time         { return env.Config.Ilim }
func (b base) decision() Decision                 { return Decision{RateBps: b.rate, PktSize: b.pktSize} }
func (b base) Observe(*Sender, packet.Feedback)   {}
func (b base) Craft(*Sender, *packet.Packet) bool { return false }

// rejectOptions is the shared guard for strategies that take none.
func rejectOptions(name string, opts BuildOptions) error {
	if opts.Options != nil {
		return fmt.Errorf("%s takes no options, got %T", name, opts.Options)
	}
	return nil
}

// flood is the baseline constant-rate UDP flood of §6.1/§6.3.2 — the
// paper's 1 Mbps-per-attacker load — expressed as a strategy: every
// packet takes the honest shim path, so under NetFence it is policed
// onto the regular channel and pinned to the AIMD fair share.
type flood struct{ base }

func newFlood(opts BuildOptions) (Strategy, error) {
	if err := rejectOptions("flood", opts); err != nil {
		return nil, err
	}
	return &flood{newBase("flood", opts, packet.SizeData)}, nil
}

func (f *flood) Start(*Sender) Decision { return f.decision() }
func (f *flood) Tick(*Sender) Decision  { return f.decision() }

// OnOffOptions configures the "onoff-sync" strategy.
type OnOffOptions struct {
	// OnIntervals and OffIntervals are the burst and silence lengths in
	// AIMD control intervals (defaults 1 and 2: burst one interval,
	// then hide for exactly the paper's L-down hysteresis window —
	// footnote 1 proves 2 intervals is the minimum robust value, so
	// this shape is the strongest timed attack against it).
	OnIntervals, OffIntervals int
	// OffRateBps keeps a low-rate trickle during off phases, harvesting
	// L-up feedback between bursts (0 = full silence).
	OffRateBps int64
}

// onoffSync is the synchronized on-off attack of §6.3.2 phase-locked to
// the AIMD control interval: every sender derives its phase from the
// shared simulation clock, so all bursts land in the same control
// intervals — Theorem 1's worst-case timing.
type onoffSync struct {
	base
	opt OnOffOptions
}

func newOnOffSync(opts BuildOptions) (Strategy, error) {
	o := OnOffOptions{}
	switch v := opts.Options.(type) {
	case nil:
	case OnOffOptions:
		o = v
	default:
		return nil, fmt.Errorf("onoff-sync options must be attack.OnOffOptions, got %T", opts.Options)
	}
	if o.OnIntervals <= 0 {
		o.OnIntervals = 1
	}
	if o.OffIntervals <= 0 {
		o.OffIntervals = 2
	}
	// Params override both the defaults and the Options fields — the
	// search surface wins so a tuned cell is what it says it is.
	if v, ok := opts.Params["on"]; ok {
		o.OnIntervals = int(v)
	}
	if v, ok := opts.Params["off"]; ok {
		o.OffIntervals = int(v)
	}
	if v, ok := opts.Params["trickle_bps"]; ok {
		o.OffRateBps = int64(v)
	}
	return &onoffSync{base: newBase("onoff-sync", opts, packet.SizeData), opt: o}, nil
}

func (o *onoffSync) decide(s *Sender) Decision {
	ilim := s.Env.Config.Ilim
	period := o.opt.OnIntervals + o.opt.OffIntervals
	idx := int(s.Env.Eng.Now()/ilim) % period
	if idx < o.opt.OnIntervals {
		return o.decision()
	}
	return Decision{RateBps: o.opt.OffRateBps, PktSize: o.pktSize}
}

func (o *onoffSync) Start(s *Sender) Decision { return o.decide(s) }
func (o *onoffSync) Tick(s *Sender) Decision  { return o.decide(s) }

// requestPrio is the adaptive request-channel attack of §6.3.1: the
// population computes the highest priority level whose aggregate
// admitted traffic still saturates the request channel and blasts
// request packets at exactly that level — low enough to afford, high
// enough to starve legitimate connection requests below it.
type requestPrio struct {
	base
	level uint8
}

func newRequestPrio(opts BuildOptions) (Strategy, error) {
	if err := rejectOptions("request-prio", opts); err != nil {
		return nil, err
	}
	if opts.Env == nil || opts.Env.BottleneckBps <= 0 {
		return nil, fmt.Errorf("request-prio needs a topology with a tagged bottleneck link to compute the §6.3.1 level")
	}
	cfg := opts.Env.Config
	if cfg.Ilim <= 0 {
		cfg = core.DefaultConfig()
	}
	level := StrategicRequestLevel(opts.Env.Attackers, opts.Env.BottleneckBps, cfg)
	// The "level" param pins the priority explicitly (a search probing
	// whether the computed §6.3.1 level really is optimal); 0 keeps the
	// computed one. Clamped to the deployment's MaxPrioLevel.
	if v := opts.Param("level", 0); v > 0 {
		level = uint8(v)
		if level > cfg.MaxPrioLevel {
			level = cfg.MaxPrioLevel
		}
	}
	return &requestPrio{
		base:  newBase("request-prio", opts, packet.SizeRequest),
		level: level,
	}, nil
}

// Level exposes the computed §6.3.1 priority level.
func (r *requestPrio) Level() uint8 { return r.level }

func (r *requestPrio) Start(*Sender) Decision { return r.decision() }
func (r *requestPrio) Tick(*Sender) Decision  { return r.decision() }

func (r *requestPrio) Craft(_ *Sender, p *packet.Packet) bool {
	p.Kind = packet.KindRequest
	p.Prio = r.level
	p.FB = packet.Feedback{}
	return true
}

// replay caches the first congestion policing feedback the network
// returns and presents that same token on every subsequent packet,
// across key rotations — probing whether stale feedback survives the
// keyring's MAC expiry (§4.4). It must not: once the token ages past
// the freshness window w (and the stamping key rotates away), every
// replayed packet is demoted to the request channel at priority 0.
type replay struct {
	base
	// cadence > 0 drops the cached token every cadence control
	// intervals to harvest a fresh one — the stronger shape a search
	// can find, replaying tokens that never age past the freshness
	// window; 0 is the classic cache-once probe.
	cadence int
}

// replayState is replay's per-sender cache: the token being presented
// (packet.Feedback or packet.MultiHeader) and its age in control
// intervals.
type replayState struct {
	tok any
	age int
}

func newReplay(opts BuildOptions) (Strategy, error) {
	if err := rejectOptions("replay", opts); err != nil {
		return nil, err
	}
	return &replay{
		base:    newBase("replay", opts, packet.SizeData),
		cadence: int(opts.Param("cadence", 0)),
	}, nil
}

func (r *replay) state(s *Sender) *replayState {
	st, ok := s.State.(*replayState)
	if !ok {
		st = &replayState{}
		s.State = st
	}
	return st
}

func (r *replay) Start(*Sender) Decision { return r.decision() }

func (r *replay) Tick(s *Sender) Decision {
	if r.cadence > 0 {
		if st, ok := s.State.(*replayState); ok && st.tok != nil {
			if st.age++; st.age >= r.cadence {
				// Drop the cache: the next returned feedback (or, for
				// multi-bottleneck headers, the next Craft) re-caches a
				// fresh token.
				st.tok, st.age = nil, 0
			}
		}
	}
	return r.decision()
}

func (r *replay) Observe(s *Sender, fb packet.Feedback) {
	if st := r.state(s); st.tok == nil {
		st.tok = fb
		st.age = 0
	}
}

func (r *replay) Craft(s *Sender, p *packet.Packet) bool {
	st := r.state(s)
	if st.tok == nil && s.HasMFB {
		// Appendix B.1 configurations return the chained multi-
		// bottleneck header instead of single feedback; cache it the
		// same way (Observe never fires for it).
		st.tok = s.LastMFB
		st.age = 0
	}
	switch fb := st.tok.(type) {
	case packet.Feedback:
		p.Kind = packet.KindRegular
		p.FB = fb
		return true
	case packet.MultiHeader:
		p.Kind = packet.KindRegular
		p.MFB = fb
		p.FB = packet.Feedback{}
		return true
	}
	return false // honest until there is something to replay
}

// legacyFlood models undeployed-AS traffic under partial deployment:
// packets carry no congestion policing feedback at all and ride the
// best-effort legacy channel (§4.4), which a NetFence bottleneck serves
// only when the request and regular channels are idle. Senders in
// deployed ASes crafting such packets opt out of policing — and out of
// priority with it.
type legacyFlood struct {
	base
	// crafters is how many senders (by workload Index, lowest first)
	// craft legacy packets; the rest flood the honest policed path —
	// the mixed population the "legacy_frac" param sweeps.
	crafters int
}

func newLegacyFlood(opts BuildOptions) (Strategy, error) {
	if err := rejectOptions("legacy-flood", opts); err != nil {
		return nil, err
	}
	attackers := 1
	if opts.Env != nil && opts.Env.Attackers > 0 {
		attackers = opts.Env.Attackers
	}
	crafters := attackers
	if frac := opts.Param("legacy_frac", 1); frac < 1 {
		crafters = int(math.Round(frac * float64(attackers)))
	}
	return &legacyFlood{
		base:     newBase("legacy-flood", opts, packet.SizeData),
		crafters: crafters,
	}, nil
}

func (l *legacyFlood) Start(*Sender) Decision { return l.decision() }
func (l *legacyFlood) Tick(*Sender) Decision  { return l.decision() }

func (l *legacyFlood) Craft(s *Sender, p *packet.Packet) bool {
	if s != nil && s.Index >= l.crafters {
		return false // honest-path tail of the split population
	}
	p.Kind = packet.KindLegacy
	p.Prio = 0
	p.FB = packet.Feedback{}
	return true
}
