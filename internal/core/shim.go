package core

import (
	"strconv"

	"netfence/internal/defense"
	"netfence/internal/feedback"
	"netfence/internal/netsim"
	"netfence/internal/obs"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// HostShim is NetFence's end-host layer between transport and network
// (§3.1, §6.2): it classifies outgoing packets into request/regular,
// presents the freshest valid feedback on regular packets, returns the
// network-stamped feedback of incoming packets to their senders
// (piggybacked on reverse traffic, or in dedicated low-rate feedback
// packets for one-way flows), and implements the receiver-side
// feedback-as-capability behavior: traffic the host identifies as
// unwanted is dropped before any feedback is recorded or returned, so the
// attacker can never present valid feedback again (§3.3).
type HostShim struct {
	sys  *System
	host *netsim.Host
	deny func(src packet.NodeID) bool

	peers     map[packet.NodeID]*peerState
	flowStart map[packet.FlowID]sim.Time
}

type peerState struct {
	// presented is the feedback this host presents on packets it sends
	// to the peer (returned to us by the peer earlier).
	presented    packet.Feedback
	hasPresented bool
	// presentedM is the B.1 multi-bottleneck equivalent.
	presentedM    packet.MultiHeader
	hasPresentedM bool

	// toReturn is the latest network-stamped feedback observed on
	// packets from the peer, to hand back.
	toReturn  packet.Returned
	toReturnM packet.MultiHeader

	lastSent  sim.Time
	lastHeard sim.Time
	lastFlow  packet.FlowID
	echo      *sim.Ticker

	// reqSince marks when the shim last fell back to the request
	// channel for lack of valid feedback toward this peer; the waiting
	// time since then buys request priority (§4.2), exactly as the SYN
	// path's flow-start clock does. Without this, a sender whose
	// feedback expired mid-connection would be pinned at priority 0 —
	// starved forever behind any demoted attack flood sharing the
	// request channel (the replay strategy's best outcome).
	reqSince    sim.Time
	hasReqSince bool
}

// AttachHost installs a NetFence shim on host h with the given policy.
func (s *System) AttachHost(h *netsim.Node, pol defense.Policy) {
	shim := &HostShim{
		sys:       s,
		host:      h.Host,
		deny:      pol.Deny,
		peers:     make(map[packet.NodeID]*peerState),
		flowStart: make(map[packet.FlowID]sim.Time),
	}
	h.Host.Shim = shim
}

// Shim returns the NetFence shim installed on h, or nil.
func Shim(h *netsim.Node) *HostShim {
	sh, _ := h.Host.Shim.(*HostShim)
	return sh
}

func (sh *HostShim) peer(id packet.NodeID) *peerState {
	ps := sh.peers[id]
	if ps == nil {
		ps = &peerState{}
		sh.peers[id] = ps
	}
	return ps
}

// Presented returns the feedback currently presented toward a peer, for
// tests and diagnostics.
func (sh *HostShim) Presented(peer packet.NodeID) (packet.Feedback, bool) {
	ps := sh.peers[peer]
	if ps == nil {
		return packet.Feedback{}, false
	}
	return ps.presented, ps.hasPresented
}

func (sh *HostShim) fresh(ts uint32) bool {
	nowSec := sh.host.Network().NowSec()
	diff := int64(nowSec) - int64(ts)
	// One second of margin below the expiration window w: the access
	// router re-checks freshness after the uplink delay, and feedback
	// that would expire in transit must not be presented.
	return diff <= int64(sh.sys.Cfg.WSec)-1 && diff >= -1
}

// Egress classifies and decorates an outgoing packet.
func (sh *HostShim) Egress(p *packet.Packet) {
	now := sh.host.Network().Eng.Now()
	ps := sh.peer(p.Dst)
	ps.lastSent = now

	// Hand back the latest feedback for the reverse path.
	if sh.sys.Cfg.MultiFeedback {
		if ps.toReturnM.Present {
			p.RetMFB = ps.toReturnM
		}
	} else if ps.toReturn.Present {
		p.Ret = ps.toReturn
	}

	// Strategic senders craft their own request packets; leave them be.
	if p.Kind == packet.KindRequest && p.Prio > 0 {
		return
	}

	if p.IsSYN() {
		// New connections begin with request packets (§3.1 step 1); the
		// priority level grows with waiting time, mirroring the access
		// router's token bucket (§4.2, §6.3.1).
		start, ok := sh.flowStart[p.Flow]
		if !ok {
			start = now
			sh.flowStart[p.Flow] = now
		}
		p.Kind = packet.KindRequest
		p.Prio = sh.sys.Cfg.AffordableLevel(now - start)
		p.FB = packet.Feedback{}
		p.MFB = packet.MultiHeader{}
		sh.noteRequest(p, now)
		return
	}
	delete(sh.flowStart, p.Flow)

	if sh.sys.Cfg.MultiFeedback {
		if ps.hasPresentedM && sh.fresh(ps.presentedM.TS) {
			p.MFB = ps.presentedM
			p.Kind = packet.KindRegular
			ps.hasReqSince = false
			sh.traceHop(p, now, "regular")
			return
		}
	} else if ps.hasPresented && sh.fresh(ps.presented.TS) {
		p.FB = ps.presented
		p.Kind = packet.KindRegular
		ps.hasReqSince = false
		sh.traceHop(p, now, "regular")
		return
	}
	// No valid feedback in hand: the packet can only travel the request
	// channel, at the priority the waiting time since feedback was lost
	// affords (§4.2) — the access router's token bucket enforces the
	// actual spend, so an impatient claim is simply dropped there.
	if !ps.hasReqSince {
		ps.reqSince = now
		ps.hasReqSince = true
	}
	p.Kind = packet.KindRequest
	p.Prio = sh.sys.Cfg.AffordableLevel(now - ps.reqSince)
	p.FB = packet.Feedback{}
	p.MFB = packet.MultiHeader{}
	sh.noteRequest(p, now)
}

// noteRequest accounts a request-channel departure: an escalated priority
// means the sender has been waiting for admission (§4.2), the signal the
// escalation counter tracks.
func (sh *HostShim) noteRequest(p *packet.Packet, now sim.Time) {
	net := sh.host.Network()
	if p.Prio > 0 {
		net.Cells.Add(obs.CoreEscalation, 1)
	}
	if net.Rec.Sampled(uint32(p.Flow)) {
		net.Rec.Record(int64(now), uint32(p.Flow), sh.host.Node.String(),
			obs.HopShim, "request prio="+strconv.Itoa(int(p.Prio)))
	}
}

// traceHop records a shim-stamp hop for sampled flows.
func (sh *HostShim) traceHop(p *packet.Packet, now sim.Time, detail string) {
	net := sh.host.Network()
	if net.Rec.Sampled(uint32(p.Flow)) {
		net.Rec.Record(int64(now), uint32(p.Flow), sh.host.Node.String(),
			obs.HopShim, detail)
	}
}

// Ingress records feedback from an incoming packet and applies the
// receiver policy. It consumes dedicated feedback packets.
func (sh *HostShim) Ingress(p *packet.Packet) bool {
	if sh.deny != nil && sh.deny(p.Src) {
		// Unwanted traffic: drop before recording anything, so no
		// feedback is ever returned to this sender (§3.3).
		return false
	}
	ps := sh.peer(p.Src)
	ps.lastHeard = sh.host.Network().Eng.Now()
	ps.lastFlow = p.Flow

	if sh.sys.Cfg.MultiFeedback {
		if p.MFB.Present {
			ps.toReturnM = p.MFB
		}
		if p.RetMFB.Present {
			ps.presentedM = p.RetMFB
			ps.hasPresentedM = true
		}
	} else {
		ps.toReturn = feedback.ToReturned(p.FB)
		if p.Ret.Present {
			sh.updatePresented(ps, feedback.ToPresented(p.Ret))
		}
	}

	if p.Proto == packet.ProtoUDP && p.Payload > 0 {
		// One-way traffic: make sure the sender keeps receiving feedback.
		sh.ensureEcho(p.Src, ps)
	}
	return p.Proto != packet.ProtoFeedback
}

// updatePresented folds newly returned feedback into the presentation
// choice. Per §4.3.4, a sender should keep presenting L-up feedback for
// as long as it is unexpired, even when newer L-down feedback arrives —
// the legitimate strategy must mimic the most aggressive one so that
// fairness holds among all senders.
func (sh *HostShim) updatePresented(ps *peerState, fb packet.Feedback) {
	if !ps.hasPresented {
		ps.presented = fb
		ps.hasPresented = true
		return
	}
	cur := &ps.presented
	curIsUp := cur.Mode == packet.FBNop || cur.Action == packet.ActIncr
	newIsDown := fb.Mode == packet.FBMon && fb.Action == packet.ActDecr
	if newIsDown && curIsUp && sh.fresh(cur.TS) {
		return // keep the still-valid L-up
	}
	ps.presented = fb
}

// ensureEcho starts the low-rate dedicated feedback stream toward a
// sender of one-way traffic (§3.1 step 4). The ticker idles away once the
// peer goes silent.
func (sh *HostShim) ensureEcho(peer packet.NodeID, ps *peerState) {
	if ps.echo != nil {
		return
	}
	eng := sh.host.Network().Eng
	interval := sh.sys.Cfg.EchoInterval
	ps.echo = eng.Tick(interval, func() {
		now := eng.Now()
		if now-ps.lastHeard > 8*interval {
			ps.echo.Stop()
			ps.echo = nil
			return
		}
		if now-ps.lastSent < interval {
			return // recent reverse traffic already carried the feedback
		}
		if !ps.toReturn.Present && !ps.toReturnM.Present {
			return
		}
		p := sh.host.NewPacket()
		p.Dst = peer
		p.Flow = ps.lastFlow
		p.Proto = packet.ProtoFeedback
		p.Size = packet.SizeFeedbackPkt
		sh.host.Send(p)
	})
}
