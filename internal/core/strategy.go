package core

import "netfence/internal/packet"

// StrategicRequestLevel computes the attack strategy of §6.3.1: the
// highest priority level at which the aggregate admitted attack traffic
// still saturates the request channel. attackers is the flood population,
// bottleneckBps the link capacity.
func StrategicRequestLevel(attackers int, bottleneckBps int64, cfg Config) uint8 {
	channel := cfg.RequestCapFrac * float64(bottleneckBps)
	level := uint8(1)
	for level < cfg.MaxPrioLevel {
		next := level + 1
		// Admitted per-sender packet rate at a level halves per step.
		perSender := cfg.TokenRatePerSec / float64(uint64(1)<<(next-1))
		aggregate := float64(attackers) * perSender * packet.SizeRequest * 8
		if aggregate < channel {
			break
		}
		level = next
	}
	return level
}
