package core

import (
	"netfence/internal/cmac"
	"netfence/internal/feedback"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// This file implements the Appendix B.1 extension: a single packet
// carries congestion policing feedback from every bottleneck link on its
// path, protected by one chained token. Enabling Config.MultiFeedback
// switches access routers and bottleneck routers to these paths; it
// regenerates Figure 13 of the paper.

// stampMultiNop writes a fresh, empty multi-bottleneck header (the B.1
// "nop feedback"): just a timestamp and the Eq. 4 token.
func (ar *AccessRouter) stampMultiNop(p *packet.Packet) {
	ts := ar.node.Network().NowSec()
	p.MFB = packet.MultiHeader{
		Present: true,
		TS:      ts,
		Items:   nil,
		Token:   feedback.NopMAC(ar.ring.Current(), p.Src, p.Dst, ts),
	}
}

// stampMulti appends this bottleneck's feedback to the packet's
// multi-bottleneck header and extends the token chain (Eq. 5). Every
// monitored link stamps its own L-up or L-down; there is no rule-2
// suppression in the B.1 design because entries do not overwrite each
// other.
func (b *Bottleneck) stampMulti(p *packet.Packet, now sim.Time) {
	if !p.MFB.Present {
		return
	}
	kai := b.sys.kaiForSender(p.SrcAS, b.link.From.AS)
	if kai == nil {
		return
	}
	action := packet.ActIncr
	if b.overloadedFor(p, now) {
		action = packet.ActDecr
	}
	p.MFB.Items = append(p.MFB.Items, packet.MultiFB{Link: b.link.ID, Action: action})
	p.MFB.Token = feedback.MultiMAC(kai, p.Src, p.Dst, p.MFB.TS, b.link.ID, action, p.MFB.Token)
}

// validateMulti recomputes the token chain of a presented B.1 header.
func (ar *AccessRouter) validateMulti(p *packet.Packet) bool {
	h := &p.MFB
	if !h.Present {
		return false
	}
	nowSec := ar.node.Network().NowSec()
	if diff := int64(nowSec) - int64(h.TS); diff > int64(ar.sys.Cfg.WSec) || diff < -int64(ar.sys.Cfg.WSec) {
		return false
	}
	// Resolve each entry's Kai once; unknown links invalidate.
	keys := make([]*cmac.CMAC, len(h.Items))
	for i, it := range h.Items {
		keys[i] = ar.kaiLookup(it.Link)
		if keys[i] == nil {
			return false
		}
	}
	return ar.ring.Check(func(ka *cmac.CMAC) bool {
		tok := feedback.NopMAC(ka, p.Src, p.Dst, h.TS)
		for i, it := range h.Items {
			tok = feedback.MultiMAC(keys[i], p.Src, p.Dst, h.TS, it.Link, it.Action, tok)
		}
		return tok == h.Token
	})
}

// policeMulti is the access-router regular-packet path under B.1: the
// packet is policed by the rate limiter of every bottleneck reported in
// its presented header.
//
// The paper chains the packet through all on-path limiters and discards
// it if any rejects it. This implementation submits the packet to the
// smallest-rate limiter and credits the others' throughput meters: a
// leaky-bucket cascade emits at the minimum of the member rates, so the
// observable output is identical while the simulation stays single-queue.
func (ar *AccessRouter) policeMulti(p *packet.Packet) bool {
	if !ar.validateMulti(p) {
		ar.Demoted++
		p.Kind = packet.KindRequest
		p.Prio = 0
		p.MFB = packet.MultiHeader{}
		return ar.handleRequest(p)
	}
	items := p.MFB.Items
	if len(items) == 0 {
		// Equivalent of nop: no bottleneck on path, no rate limiting.
		ar.stampMultiNop(p)
		ar.stampPassport(p)
		return true
	}
	ts := p.MFB.TS
	var minLim *regLimiter
	for _, it := range items {
		lim := ar.limiter(p.Src, it.Link)
		lim.updateStatus(it.Action, ts)
		if minLim == nil || lim.pol.Rate() < minLim.pol.Rate() {
			minLim = lim
		}
	}
	for _, it := range items {
		if lim := ar.regLims[regKey{p.Src, it.Link}]; lim != nil && lim != minLim {
			lim.pol.CreditBytes(int(p.Size))
		}
	}
	return ar.submit(minLim, p)
}
