package core

import (
	"strconv"

	"netfence/internal/cmac"
	"netfence/internal/feedback"
	"netfence/internal/netsim"
	"netfence/internal/obs"
	"netfence/internal/packet"
	"netfence/internal/ratelimit"
	"netfence/internal/sim"
)

// AccessRouter is NetFence's policing function at the trust boundary
// between the network and end systems. It validates presented congestion
// policing feedback, polices request packets with per-sender priority
// token buckets (§4.2), polices regular packets with per-(sender,
// bottleneck) leaky-bucket rate limiters adjusted by the robust AIMD
// algorithm (§4.3.3-§4.3.4), and restamps feedback on forwarding.
type AccessRouter struct {
	sys  *System
	node *netsim.Node
	ring *feedback.KeyRing

	reqLims map[packet.NodeID]*ratelimit.RequestLimiter
	regLims map[regKey]*regLimiter

	// pathASCache memoizes the AS-level path per destination for
	// Passport stamping.
	pathASCache map[packet.NodeID][]packet.ASID

	// destLinks is the Appendix B.2 inference cache: bottleneck links
	// observed on the path toward each destination.
	destLinks map[packet.NodeID][]packet.LinkID

	// Counters for tests and metrics.
	ReqAdmitted, ReqDropped   uint64
	Demoted                   uint64
	LimiterDrops, LimiterPass uint64
	QuotaDrops                uint64
}

type regKey struct {
	src  packet.NodeID
	link packet.LinkID
}

// regLimiter is one (sender, bottleneck link) rate limiter with its AIMD
// state (Figure 17), including the starred flags of the Appendix B.2
// inference variant.
type regLimiter struct {
	ar  *AccessRouter
	key regKey
	// pol is the policing strategy: the paper's leaky-bucket queue, or
	// the token-bucket variant when Config.TokenBucketLimiter is set
	// (the ablation of the §4.3.3 design choice).
	pol  ratelimit.Policer
	aimd ratelimit.AIMD

	ts       uint32 // control interval start, whole seconds
	hasIncr  bool
	lastDecr sim.Time
	created  sim.Time
	ticker   *sim.Ticker

	// Appendix B.2 state.
	hasIncrStar  bool
	isActive     bool
	isActiveStar bool

	// Congestion-quota state (§7): bytes forwarded during intervals that
	// followed a multiplicative decrease count against the quota.
	// quotaBytes is the per-limiter allowance — Cfg.CongestionQuotaBytes
	// scaled by the sender's fleet weight at creation.
	lastAdjustMD bool
	quotaBytes   int64
	quotaUsed    int64
	quotaStart   sim.Time
}

// senderWeight returns how many modeled senders stand behind src — the
// closed-form aggregation factor for per-sender limiter state. Weight-1
// senders (every pre-fleet scenario) scale every parameter by one, so
// aggregate-free runs are bit-for-bit unchanged.
func (ar *AccessRouter) senderWeight(src packet.NodeID) int64 {
	return int64(ar.node.Network().Node(src).SenderWeight())
}

// ProtectAccess installs NetFence's access functions on r, policing
// packets that arrive from r's directly attached hosts.
func (s *System) ProtectAccess(r *netsim.Node) {
	ar := &AccessRouter{
		sys:         s,
		node:        r,
		ring:        feedback.NewKeyRing(r.Network().Eng.Rand),
		reqLims:     make(map[packet.NodeID]*ratelimit.RequestLimiter),
		regLims:     make(map[regKey]*regLimiter),
		pathASCache: make(map[packet.NodeID][]packet.ASID),
		destLinks:   make(map[packet.NodeID][]packet.LinkID),
	}
	// In sharded runs the rotated key bytes come from a per-router
	// stream identical on every shard replica, so stamping and
	// validation agree across shards; nil (single-engine) keeps the
	// historical draw-from-engine behavior byte for byte.
	ar.ring.Material = r.Network().Eng.KeyStream(uint64(r.ID))
	r.Network().Eng.Tick(s.Cfg.KeyRotate, func() {
		ar.ring.Rotate(r.Network().Eng.Rand)
		// Runtime plane: rotation timers are replicated on every shard,
		// so the count scales with the shard layout by design.
		r.Network().Cells.Add(obs.CoreKeyringRotations, 1)
	})
	r.Ingress = ar.ingress
	s.accesses[r.ID] = ar
}

// Access returns the access router installed on node r, or nil.
func (s *System) Access(r *netsim.Node) *AccessRouter { return s.accesses[r.ID] }

// Limiter returns the (src, link) rate limiter, or nil.
func (ar *AccessRouter) Limiter(src packet.NodeID, link packet.LinkID) ratelimit.Policer {
	if lim, ok := ar.regLims[regKey{src, link}]; ok {
		return lim.pol
	}
	return nil
}

// LimiterCount returns the number of live (sender, bottleneck) limiters —
// the access-router state the scalability analysis of §5.1 bounds.
func (ar *AccessRouter) LimiterCount() int { return len(ar.regLims) }

// ingress intercepts arrivals at the access router; only packets from
// directly attached hosts of this AS are policed.
func (ar *AccessRouter) ingress(p *packet.Packet, from *netsim.Link) bool {
	if from == nil || !from.From.IsHost || from.From.AS != ar.node.AS {
		return true
	}
	return ar.police(p)
}

// trace records one policing hop for a sampled flow.
func (ar *AccessRouter) trace(p *packet.Packet, kind, detail string) {
	net := ar.node.Network()
	if net.Rec.Sampled(uint32(p.Flow)) {
		net.Rec.Record(int64(net.Eng.Now()), uint32(p.Flow), ar.node.String(), kind, detail)
	}
}

// traced reports whether p's flow is sampled by the flight recorder —
// the gate hot paths check before building a trace detail string, so
// untraced runs never pay the formatting allocation.
func (ar *AccessRouter) traced(p *packet.Packet) bool {
	return ar.node.Network().Rec.Sampled(uint32(p.Flow))
}

// police implements router.rate_limit_packet of Figure 18.
func (ar *AccessRouter) police(p *packet.Packet) bool {
	if p.Kind == packet.KindLegacy {
		return true
	}
	if p.Kind == packet.KindRequest {
		return ar.handleRequest(p)
	}
	if ar.sys.Cfg.MultiFeedback {
		return ar.policeMulti(p)
	}
	cells := ar.node.Network().Cells
	nowSec := ar.node.Network().NowSec()
	switch ar.validate(p, nowSec) {
	case feedback.ValidNop:
		feedback.StampNop(ar.ring.Current(), p, nowSec)
		cells.Add(obs.CoreStampNop, 1)
		ar.trace(p, obs.HopPolice, "nop")
		ar.stampPassport(p)
		return true
	case feedback.ValidMon:
		ar.trace(p, obs.HopPolice, "mon")
		link := p.FB.Link
		if ar.sys.Cfg.InferLimiters {
			return ar.policeInferred(p, link)
		}
		lim := ar.limiter(p.Src, link)
		lim.updateStatus(p.FB.Action, p.FB.TS)
		return ar.submit(lim, p)
	default:
		// Invalid feedback: treat as a request packet (§4.4).
		ar.Demoted++
		cells.Add(obs.CorePoliceDemoted, 1)
		ar.trace(p, obs.HopDemote, "invalid-feedback->request")
		p.Kind = packet.KindRequest
		p.Prio = 0
		return ar.handleRequest(p)
	}
}

// validate resolves the packet's feedback verdict: a verdict
// precomputed by the sharded validation pipeline is consumed when its
// binding (this router, the current key epoch) still holds; everything
// else validates inline. The epoch check makes a stale cache — one
// computed under a key the ring has since rotated past — harmless
// rather than wrong.
func (ar *AccessRouter) validate(p *packet.Packet, nowSec uint32) feedback.Verdict {
	if p.FVSet {
		hit := p.FVNode == ar.node.ID && p.FVEpoch == ar.ring.Epoch()
		p.FVSet = false
		if hit {
			ar.node.Network().Cells.Add(obs.PipelinePrecomputeHits, 1)
			return feedback.Verdict(p.FVVerdict)
		}
	}
	return feedback.Validate(ar.ring, ar.kaiLookup, p, nowSec, ar.sys.Cfg.WSec)
}

// handleRequest polices a request packet (Figure 15) and stamps nop
// feedback on success (§4.2).
func (ar *AccessRouter) handleRequest(p *packet.Packet) bool {
	now := ar.node.Network().Eng.Now()
	rl := ar.reqLims[p.Src]
	if rl == nil {
		// A fleet sender's token bucket is the exact aggregate of its
		// members' buckets: rate and depth scale linearly with weight.
		w := ar.senderWeight(p.Src)
		rl = ratelimit.NewRequestLimiter(now)
		rl.RatePerSec = ar.sys.Cfg.TokenRatePerSec * float64(w)
		rl.Depth = ar.sys.Cfg.TokenDepth * float64(w)
		ar.reqLims[p.Src] = rl
	}
	if p.Prio > ar.sys.Cfg.MaxPrioLevel {
		p.Prio = ar.sys.Cfg.MaxPrioLevel
	}
	if !rl.Admit(p.Prio, now) {
		ar.ReqDropped++
		ar.node.Network().Cells.Add(obs.CoreRequestDropped, 1)
		ar.trace(p, obs.HopDrop, "request-police")
		ar.node.Network().Release(p)
		return false
	}
	ar.ReqAdmitted++
	ar.node.Network().Cells.Add(obs.CoreRequestAdmitted, 1)
	if ar.traced(p) {
		ar.trace(p, obs.HopPolice, "request admit prio="+strconv.Itoa(int(p.Prio)))
	}
	if ar.sys.Cfg.MultiFeedback {
		ar.stampMultiNop(p)
	} else {
		feedback.StampNop(ar.ring.Current(), p, ar.node.Network().NowSec())
	}
	ar.stampPassport(p)
	return true
}

// submit passes p through a limiter's leaky bucket; Cached packets are
// re-injected by the limiter's forward callback. Feedback is restamped
// when the packet actually departs ("when an access router FORWARDS a
// regular packet to the next hop, it resets the congestion policing
// feedback", §4.3.3) — stamping before the cache would hand out stale
// timestamps after queueing delay, denying backlogged senders the fresh
// L-up their good intervals earned.
func (ar *AccessRouter) submit(lim *regLimiter, p *packet.Packet) bool {
	if lim.quotaExceeded() {
		// Congestion quota spent (§7): the sender has pushed too much
		// traffic through this bottleneck while congesting it.
		ar.QuotaDrops++
		ar.node.Network().Cells.Add(obs.CoreQuotaDrop, 1)
		ar.trace(p, obs.HopDrop, "quota")
		ar.node.Network().Release(p)
		return false
	}
	switch lim.pol.Submit(p) {
	case ratelimit.Pass:
		ar.LimiterPass++
		ar.node.Network().Cells.Add(obs.CoreLimiterPass, 1)
		lim.stampForward(p)
		return true
	case ratelimit.Cached:
		return false // the limiter now owns the packet and forwards it later
	default:
		ar.LimiterDrops++
		ar.node.Network().Cells.Add(obs.CoreLimiterDrop, 1)
		ar.trace(p, obs.HopDrop, "rate-limiter")
		ar.node.Network().Release(p)
		return false
	}
}

// quotaExceeded applies the §7 congestion quota: within each quota
// window, only CongestionQuotaBytes of "congestion traffic" (bytes
// forwarded while the rate limit was decreasing) may pass.
func (l *regLimiter) quotaExceeded() bool {
	if l.quotaBytes <= 0 {
		return false
	}
	now := l.ar.node.Network().Eng.Now()
	if now-l.quotaStart > l.ar.sys.Cfg.QuotaWindow {
		l.quotaStart = now
		l.quotaUsed = 0
	}
	return l.quotaUsed >= l.quotaBytes
}

// stampForward writes the departure-time feedback and Passport trailer,
// and charges the congestion quota while the limit is decreasing.
func (l *regLimiter) stampForward(p *packet.Packet) {
	ar := l.ar
	if l.lastAdjustMD {
		l.quotaUsed += int64(p.Size)
	}
	if ar.sys.Cfg.MultiFeedback {
		ar.stampMultiNop(p)
	} else {
		nowSec := ar.node.Network().NowSec()
		feedback.StampIncr(ar.ring.Current(), p, nowSec, l.key.link)
		ar.node.Network().Cells.Add(obs.CoreStampIncr, 1)
	}
	ar.stampPassport(p)
}

// limiter returns (creating on demand) the rate limiter for (src, link).
func (ar *AccessRouter) limiter(src packet.NodeID, link packet.LinkID) *regLimiter {
	key := regKey{src, link}
	if lim, ok := ar.regLims[key]; ok {
		return lim
	}
	eng := ar.node.Network().Eng
	// Closed-form fleet aggregation (§5.1 scalability argument run in
	// reverse): N homogeneous senders sharing one AIMD trajectory are
	// exactly one limiter whose additive step, floor, initial rate and
	// congestion quota all scale by N. The multiplicative decrease is
	// scale-free, so the aggregate evolves bit-for-bit like the sum of N
	// per-sender limiters receiving the same feedback.
	w := ar.senderWeight(src)
	lim := &regLimiter{
		ar:  ar,
		key: key,
		aimd: ratelimit.AIMD{
			DeltaBps: ar.sys.Cfg.DeltaBps * w,
			MD:       ar.sys.Cfg.MD,
			MinBps:   ar.sys.Cfg.MinRateBps * w,
		},
		ts:         ar.node.Network().NowSec(),
		created:    eng.Now(),
		quotaBytes: ar.sys.Cfg.CongestionQuotaBytes * w,
	}
	if ar.sys.Cfg.TokenBucketLimiter {
		lim.pol = ratelimit.NewTokenLimiter(eng, ar.sys.Cfg.InitialRateBps*w,
			ar.sys.Cfg.TokenBurstSec)
	} else {
		lim.pol = ratelimit.NewLeakyLimiter(eng, ar.sys.Cfg.InitialRateBps*w,
			ar.sys.Cfg.MaxCacheDelay, func(p *packet.Packet) {
				lim.stampForward(p)
				ar.node.Network().Forward(ar.node, p)
			})
	}
	lim.quotaStart = eng.Now()
	lim.ticker = eng.Tick(ar.sys.Cfg.Ilim, lim.adjust)
	ar.regLims[key] = lim
	return lim
}

// updateStatus folds a presented feedback into the limiter's control
// state (Figure 17's update_status).
func (l *regLimiter) updateStatus(action packet.FBAction, ts uint32) {
	l.isActive = true
	if ts >= l.ts && action == packet.ActIncr {
		l.hasIncr = true
	}
	if action == packet.ActDecr {
		l.lastDecr = l.ar.node.Network().Eng.Now()
	}
}

// adjust runs once per control interval (Figure 17's adjust_rate_limit,
// or the four-rule variant of Appendix B.2 when inference is enabled).
func (l *regLimiter) adjust() {
	cfg := &l.ar.sys.Cfg
	tput := l.pol.TakeIntervalThroughput(cfg.Ilim)
	old := l.pol.Rate()
	var next int64
	if cfg.InferLimiters {
		switch {
		case l.hasIncr || l.hasIncrStar:
			next = l.aimd.Adjust(old, true, tput)
		case l.isActive:
			next = l.aimd.Adjust(old, false, tput)
		case l.isActiveStar:
			next = old // hold: other links' feedback masks this one
		default:
			next = l.aimd.Adjust(old, false, tput)
		}
	} else {
		next = l.aimd.Adjust(old, l.hasIncr, tput)
	}
	if next != old {
		l.pol.SetRate(next)
	}
	l.lastAdjustMD = next < old
	l.hasIncr = false
	l.hasIncrStar = false
	l.isActive = false
	l.isActiveStar = false
	l.ts = l.ar.node.Network().NowSec()
	l.maybeExpire()
}

// maybeExpire removes the limiter after Ta without L-down feedback and
// without limiter drops (§4.3.1).
func (l *regLimiter) maybeExpire() {
	cfg := &l.ar.sys.Cfg
	now := l.ar.node.Network().Eng.Now()
	ref := l.created
	if l.lastDecr > ref {
		ref = l.lastDecr
	}
	if d := l.pol.LastDropAt(); d > ref {
		ref = d
	}
	if now-ref > cfg.LimiterIdle && l.pol.Backlog() == 0 {
		l.ticker.Stop()
		l.pol.Stop()
		delete(l.ar.regLims, l.key)
	}
}

// kaiLookup resolves the key shared between this access router's AS and
// the AS owning a link — the paper's IP-to-AS mapping plus the Passport
// key table (§4.4).
func (ar *AccessRouter) kaiLookup(link packet.LinkID) *cmac.CMAC {
	l := ar.node.Network().LinkByID(link)
	if l == nil {
		return nil
	}
	return ar.sys.Registry.Key(ar.node.AS, l.From.AS)
}

// stampPassport writes the Passport trailer when enabled.
func (ar *AccessRouter) stampPassport(p *packet.Packet) {
	if !ar.sys.Cfg.Passport {
		return
	}
	path, ok := ar.pathASCache[p.Dst]
	if !ok {
		path = ar.node.Network().PathASes(ar.node.ID, p.Dst)
		ar.pathASCache[p.Dst] = path
	}
	ar.sys.Registry.Stamp(p, path)
}
