package core

import (
	"netfence/internal/aqm"
	"netfence/internal/feedback"
	"netfence/internal/netsim"
	"netfence/internal/obs"
	"netfence/internal/packet"
	"netfence/internal/passport"
	"netfence/internal/queue"
	"netfence/internal/sim"
)

// Bottleneck is the NetFence machinery attached to one link: the
// three-channel queue, the attack detector driving the monitoring cycle
// (§4.3.1), and the congestion policing feedback stamper (§4.3.2).
type Bottleneck struct {
	sys  *System
	link *netsim.Link
	q    *nfQueue
	det  *aqm.LossDetector
	util *aqm.UtilDetector

	monActive  bool
	monStarted sim.Time
	lastAttack sim.Time

	// prevReg detects fresh regular-channel drops when the per-AS
	// fallback replaces RED (whose own congestion clock then stops).
	prevReg     queue.Stats
	fbCongested sim.Time

	// MonCycles counts monitoring cycles started, for tests/metrics.
	MonCycles int
}

// protect wires the bottleneck machinery onto l.
func (s *System) protect(l *netsim.Link) *Bottleneck {
	b := &Bottleneck{
		sys:  s,
		link: l,
		q:    newNFQueue(&s.Cfg, l.Rate, l.From.Network().Eng.Rand),
		det:  &aqm.LossDetector{Pth: s.Cfg.Pth, Alpha: 0.1},
	}
	b.q.release = l.From.Network().Release
	b.q.cells = l.From.Network().Cells
	b.q.net = l.From.Network()
	b.q.label = l.Label()
	if s.Cfg.UtilDetect {
		b.util = aqm.NewUtilDetector(l.Rate)
		b.util.Threshold = s.Cfg.UtilThreshold
	}
	if s.Cfg.Passport && s.Registry != nil {
		cells := l.From.Network().Cells
		b.q.verify = func(p *packet.Packet) bool {
			if p.SrcAS == l.From.AS {
				return true // intra-AS traffic carries no trailer here
			}
			if p.PVLink == l.ID {
				// Verdict precomputed by the sharded validation pipeline at
				// the drain barrier (Registry.Check under a worker-private
				// CMAC clone). Consume it exactly once and apply the trailer
				// consumption at the instant Verify would have mutated it.
				p.PVLink = 0
				passport.Apply(p, int(p.PVConsume))
				cells.Add(obs.PipelinePrecomputeHits, 1)
				return p.PVOK
			}
			return s.Registry.Verify(p, l.From.AS)
		}
	}
	l.Q = b.q
	l.OnTransmit = b.onTransmit
	l.From.Network().Eng.Tick(s.Cfg.DetectInterval, b.detectTick)
	return b
}

// Monitoring reports whether the link is in a monitoring cycle.
func (b *Bottleneck) Monitoring() bool { return b.monActive }

// FallbackActive reports whether per-AS queuing has engaged (§4.5).
func (b *Bottleneck) FallbackActive() bool { return b.q.fallbackActive() }

// LossRate returns the smoothed regular-channel loss rate.
func (b *Bottleneck) LossRate() float64 { return b.det.Rate() }

// StartMonitoring forces a monitoring cycle open (tests and the
// utilization-based detection path).
func (b *Bottleneck) StartMonitoring() {
	now := b.link.From.Network().Eng.Now()
	if !b.monActive {
		b.monActive = true
		b.monStarted = now
		b.MonCycles++
		b.link.From.Network().Cells.Add(obs.CoreMonitorUp, 1)
	}
	b.lastAttack = now
}

// detectTick runs the Figure 19 attack detector and maintains the
// monitoring cycle and the §4.5 fallback.
func (b *Bottleneck) detectTick() {
	now := b.link.From.Network().Eng.Now()
	reg := b.q.RegularStats()
	if reg.Dropped > b.prevReg.Dropped {
		b.fbCongested = now
	}
	b.prevReg = reg
	attacked := b.det.Sample(reg)
	if b.util != nil && b.util.Sample(b.link.TxBytes, now) {
		attacked = true
	}
	if attacked {
		if !b.monActive {
			b.monActive = true
			b.monStarted = now
			b.MonCycles++
			b.link.From.Network().Cells.Add(obs.CoreMonitorUp, 1)
		}
		b.lastAttack = now
		if b.sys.Cfg.PerASFallback && !b.q.fallbackActive() &&
			now-b.monStarted > b.sys.Cfg.FallbackAfter {
			// Congestion persists despite the monitoring cycle: a sign of
			// malfunctioning (compromised) access routers. Localize the
			// damage with per-source-AS queuing.
			b.q.enableFallback(now, b.link.From.Network().Eng.Now)
			b.link.From.Network().Cells.Add(obs.CoreFallbackEngaged, 1)
		}
	} else if b.monActive && now-b.lastAttack > b.sys.Cfg.MonitorHold {
		b.monActive = false
		b.link.From.Network().Cells.Add(obs.CoreMonitorDown, 1)
	}
}

// overloaded is the rule-3 predicate of §4.3.2 with the Figure 4
// hysteresis: the link counts as overloaded from the moment congestion is
// observed until two control intervals after it last abated, which
// guarantees a sender that congests the link cannot obtain L-up feedback
// for a full control interval. In fallback mode congestion is charged
// per source AS, so an AS overflowing its own queue cannot force L-down
// onto well-behaved ASes' senders (§4.5).
func (b *Bottleneck) overloaded(now sim.Time) bool {
	last, seen := b.q.lastCongested()
	h := sim.Time(b.sys.Cfg.HysteresisIntervals) * b.sys.Cfg.Ilim
	return seen && now <= last+h
}

func (b *Bottleneck) overloadedFor(p *packet.Packet, now sim.Time) bool {
	if b.q.fallbackActive() {
		last, seen := b.q.lastCongestedForAS(p.SrcAS)
		h := sim.Time(b.sys.Cfg.HysteresisIntervals) * b.sys.Cfg.Ilim
		return seen && now <= last+h
	}
	return b.overloaded(now)
}

// onTransmit updates the congestion policing feedback of packets leaving
// through the monitored link, applying the ordered rules of §4.3.2.
func (b *Bottleneck) onTransmit(p *packet.Packet, l *netsim.Link) {
	net := l.From.Network()
	sampled := net.Rec.Sampled(uint32(p.Flow))
	if !b.monActive || p.Kind == packet.KindLegacy {
		if sampled {
			net.Rec.Record(int64(net.Eng.Now()), uint32(p.Flow), l.Label(), obs.HopMonitor, "idle")
		}
		return
	}
	now := l.From.Network().Eng.Now()
	if b.sys.Cfg.MultiFeedback {
		b.stampMulti(p, now)
		return
	}
	switch {
	case p.FB.Mode == packet.FBNop:
		// Rule 1: nop is always replaced by L-down in the mon state.
	case p.FB.Action == packet.ActDecr:
		// Rule 2: never overwrite an upstream link's L-down.
		if sampled {
			net.Rec.Record(int64(now), uint32(p.Flow), l.Label(), obs.HopMonitor, "mon keep-upstream-decr")
		}
		return
	case !b.overloadedFor(p, now):
		// Rule 3 negative: leave L-up feedback alone.
		if sampled {
			net.Rec.Record(int64(now), uint32(p.Flow), l.Label(), obs.HopMonitor, "mon keep-lup")
		}
		return
	}
	kai := b.sys.kaiForSender(p.SrcAS, l.From.AS)
	if kai == nil {
		return
	}
	feedback.StampDecr(kai, p, l.ID)
	net.Cells.Add(obs.CoreStampDecr, 1)
	if sampled {
		net.Rec.Record(int64(now), uint32(p.Flow), l.Label(), obs.HopMonitor, "mon stamp-decr")
	}
}
