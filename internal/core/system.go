package core

import (
	"netfence/internal/cmac"
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/passport"
)

// System is a NetFence deployment over a simulated network: the Passport
// registry providing the AS-pairwise keys Kai, the per-router access
// machinery, and the per-link bottleneck machinery. Deploy it by calling
// ProtectLink on congestible links, ProtectAccess on access routers, and
// AttachHost on end hosts; it satisfies defense.System through the
// SystemAdapter in this package.
type System struct {
	Cfg Config
	// Registry holds the pairwise AS keys (Passport's key exchange).
	Registry *passport.Registry

	net         *netsim.Network
	accesses    map[packet.NodeID]*AccessRouter
	bottlenecks map[packet.LinkID]*Bottleneck
}

// NewSystem creates a NetFence deployment for net, establishing pairwise
// keys among all ASes present in the topology.
func NewSystem(net *netsim.Network, cfg Config) *System {
	seen := map[packet.ASID]bool{}
	var ases []packet.ASID
	for _, nd := range net.Nodes {
		if !seen[nd.AS] {
			seen[nd.AS] = true
			ases = append(ases, nd.AS)
		}
	}
	return &System{
		Cfg:         cfg,
		Registry:    passport.NewRegistry(net.Eng.Rand, ases),
		net:         net,
		accesses:    make(map[packet.NodeID]*AccessRouter),
		bottlenecks: make(map[packet.LinkID]*Bottleneck),
	}
}

// Name identifies the system in result tables.
func (s *System) Name() string { return "NetFence" }

// ProtectLink installs the bottleneck machinery (three-channel queue,
// attack detection, feedback stamping) on l.
func (s *System) ProtectLink(l *netsim.Link) {
	s.bottlenecks[l.ID] = s.protect(l)
}

// Bottleneck returns the machinery attached to l, or nil.
func (s *System) Bottleneck(l *netsim.Link) *Bottleneck { return s.bottlenecks[l.ID] }

// kaiForSender returns the key shared between a sender's AS and a
// bottleneck link's AS, used to stamp L-down feedback (Eq. 3).
func (s *System) kaiForSender(srcAS, linkAS packet.ASID) *cmac.CMAC {
	return s.Registry.Key(srcAS, linkAS)
}
