package core

import (
	"netfence/internal/packet"
)

// This file implements the Appendix B.2 extension: access routers keep a
// per-destination cache of bottleneck links seen on the path and police a
// packet with the rate limiters of every inferred on-path bottleneck,
// even though the packet itself carries feedback from only one of them.
// Enabling Config.InferLimiters regenerates Figure 14 of the paper.
//
// Cache entries persist for the life of the experiment; the paper notes
// entries should age out when a link's feedback stops appearing, which
// only matters across monitoring cycles far longer than a simulation.

// policeInferred handles a regular packet whose (single) presented
// feedback names link; the packet additionally passes the limiters of
// every other bottleneck cached for its destination.
//
// Like policeMulti, the packet physically traverses the smallest-rate
// limiter while crediting the rest — equivalent to the paper's cascade.
// The forwarded packet is restamped with L-up of the smallest-rate
// limiter's link (Appendix B.2's "reset the feedback to L-low-up").
func (ar *AccessRouter) policeInferred(p *packet.Packet, link packet.LinkID) bool {
	links := ar.destLinks[p.Dst]
	found := false
	for _, l := range links {
		if l == link {
			found = true
			break
		}
	}
	if !found {
		links = append(links, link)
		ar.destLinks[p.Dst] = links
	}

	var minLim *regLimiter
	for _, l := range links {
		lim := ar.limiter(p.Src, l)
		if l == link {
			// Direct feedback for this limiter.
			lim.updateStatus(p.FB.Action, p.FB.TS)
		} else {
			// Inferred feedback (the starred state of B.2): L-up from
			// another link implies this one is uncongested too — it
			// would have overwritten the L-up otherwise; L-down from
			// another link says nothing, so the limit merely holds.
			lim.isActiveStar = true
			if p.FB.Action == packet.ActIncr && p.FB.TS >= lim.ts {
				lim.hasIncrStar = true
			}
		}
		if minLim == nil || lim.pol.Rate() < minLim.pol.Rate() {
			minLim = lim
		}
	}

	for _, l := range links {
		if lim := ar.regLims[regKey{p.Src, l}]; lim != nil && lim != minLim {
			lim.pol.CreditBytes(int(p.Size))
		}
	}
	return ar.submit(minLim, p)
}

// InferredLinks returns the cached bottleneck links for a destination.
func (ar *AccessRouter) InferredLinks(dst packet.NodeID) []packet.LinkID {
	return ar.destLinks[dst]
}
