package core

import (
	"context"
	"math"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"netfence/internal/cmac"
	"netfence/internal/feedback"
	"netfence/internal/netsim"
	"netfence/internal/obs"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// Pipeline is the sharded validation stage of one destination shard: it
// fans a cut-link handoff batch out to a worker pool that precomputes
// each packet's MAC verdict — the feedback.Validate verdict the access
// router would compute, and the Registry.Verify boolean the bottleneck's
// Passport hook would compute — so the serialized execute phase consumes
// cached verdicts instead of running CMAC inline. The per-packet AES
// work the §5.1 scalability analysis budgets for is exactly the work
// that Amdahl-caps the bottleneck shard, and it is a pure function of
// the packet bytes and the key epoch, which is what makes the stage
// legal.
//
// Determinism contract. Submit runs between the coordinator's drain
// barrier and the mailbox Drain, when every shard is parked and all
// replica state is frozen; workers therefore read rings, the Passport
// registry and the routing table freely, and the only shared-mutable
// hazard is CMAC chaining scratch, which each worker sidesteps with
// private clones (cmac.Clone shares the immutable AES block, not the
// scratch). Verdicts are pure given the key epoch, so precomputation is
// only legal for arrivals before the next unexecuted KeyRotate tick:
// arrivals at or past that boundary are skipped (counted as rotation
// fallbacks) and validated inline by the consumer. The consumers
// additionally re-check the verdict's binding — link identity for
// Passport, router identity and ring epoch for feedback — so a stale or
// mispredicted cache is dropped, never wrong, and results stay
// byte-identical to the single engine at every shard count.
type Pipeline struct {
	sys *System
	net *netsim.Network

	jobs    chan pipeJob
	wg      sync.WaitGroup
	stopped sync.Once

	// precomputed is written by the workers (the one cross-goroutine
	// stat); the rest accumulate on the drain goroutine. Wait folds all
	// of them into the replica's runtime-plane cells.
	precomputed                 atomic.Uint64
	batches, packets, fallbacks uint64
}

// pipeChunk is the fan-out granularity: one job per chunk of a handoff
// batch, small enough to spread a big batch across workers, large
// enough to amortize the channel hop.
const pipeChunk = 64

type pipeJob struct {
	keys []sim.EventKey
	args []any
	dest *netsim.Link
}

// NewPipeline starts the validation stage for one destination shard.
// name labels the workers' pprof profiles (the shard's AS span, like
// the coordinator's shard goroutines).
func NewPipeline(sys *System, net *netsim.Network, name string, workers int) *Pipeline {
	if workers < 1 {
		workers = 1
	}
	pl := &Pipeline{
		sys:  sys,
		net:  net,
		jobs: make(chan pipeJob, 4*workers),
	}
	for i := 0; i < workers; i++ {
		go pl.worker(name, i)
	}
	return pl
}

// Stop terminates the worker pool. No Submit may follow.
func (pl *Pipeline) Stop() {
	pl.stopped.Do(func() { close(pl.jobs) })
}

// Submit fans the pending handoff batches of the shard's inbound
// mailboxes out to the worker pool. Call it on the destination shard's
// goroutine after the coordinator's drain barrier and before the
// mailbox Drains, then Wait before the first Drain — validation of one
// mailbox's batch overlaps the submission walk over the rest, and every
// verdict is cached before any arrival is injected.
func (pl *Pipeline) Submit(mbs []*netsim.Mailbox) {
	limit := pl.nextRotation(pl.net.Eng.Now())
	for _, mb := range mbs {
		keys, args := mb.Pending()
		if len(keys) == 0 {
			continue
		}
		pl.batches++
		pl.packets += uint64(len(keys))
		// Keys ascend within a slab, so the rotation boundary splits it at
		// one index: everything from the first arrival at or past the next
		// unexecuted KeyRotate tick falls back to inline validation
		// (pedigree order decides whether the rotation runs first).
		n := sort.Search(len(keys), func(i int) bool { return keys[i].At >= limit })
		pl.fallbacks += uint64(len(keys) - n)
		dest := mb.DestLink()
		for lo := 0; lo < n; lo += pipeChunk {
			hi := lo + pipeChunk
			if hi > n {
				hi = n
			}
			pl.wg.Add(1)
			pl.jobs <- pipeJob{keys: keys[lo:hi], args: args[lo:hi], dest: dest}
		}
	}
}

// Wait blocks until every submitted chunk is validated, then folds the
// round's stats into the replica's runtime-plane cells (on the calling
// drain goroutine — the cells' single writer).
func (pl *Pipeline) Wait() {
	pl.wg.Wait()
	cells := pl.net.Cells
	cells.Add(obs.PipelineBatches, pl.batches)
	cells.Add(obs.PipelinePackets, pl.packets)
	cells.Add(obs.PipelineRotationFallbacks, pl.fallbacks)
	cells.Add(obs.PipelinePrecomputed, pl.precomputed.Swap(0))
	pl.batches, pl.packets, pl.fallbacks = 0, 0, 0
}

// nextRotation returns the earliest unexecuted KeyRotate tick at or
// after now (the window start: everything strictly before has run).
// Rotation tickers are created at build time, so they fire at exact
// multiples of Cfg.KeyRotate; a router armed mid-run by a deploy
// mutation rotates off-schedule, which the consumers' epoch check
// absorbs — the boundary here is the planning rule, the epoch check the
// safety net.
func (pl *Pipeline) nextRotation(now sim.Time) sim.Time {
	kr := pl.sys.Cfg.KeyRotate
	if kr <= 0 {
		return math.MaxInt64
	}
	k := now / kr
	if now%kr != 0 {
		k++
	}
	if k == 0 {
		k = 1
	}
	return k * kr
}

// pipeWorker is one pool goroutine's private state: CMAC clones keyed
// by the shared instance they duplicate, so each worker pays one clone
// per key it ever touches and zero allocations after warm-up.
type pipeWorker struct {
	pl     *Pipeline
	clones map[*cmac.CMAC]*cmac.CMAC
}

func (pl *Pipeline) worker(name string, id int) {
	labels := pprof.Labels("pipeline", name, "worker", strconv.Itoa(id))
	pprof.Do(context.Background(), labels, func(context.Context) {
		w := &pipeWorker{pl: pl, clones: make(map[*cmac.CMAC]*cmac.CMAC)}
		for job := range pl.jobs {
			n := uint64(0)
			for i, a := range job.args {
				p, ok := a.(*packet.Packet)
				if !ok {
					continue
				}
				did := w.feedbackVerdict(p, job.dest, job.keys[i].At)
				if w.passportVerdict(p, job.dest) {
					did = true
				}
				if did {
					n++
				}
			}
			if n > 0 {
				pl.precomputed.Add(n)
			}
			pl.wg.Done()
		}
	})
}

// clone returns the worker's private duplicate of a shared CMAC
// instance (nil for nil, mirroring unknown-key lookups).
func (w *pipeWorker) clone(c *cmac.CMAC) *cmac.CMAC {
	if c == nil {
		return nil
	}
	cl := w.clones[c]
	if cl == nil {
		cl = c.Clone()
		w.clones[c] = cl
	}
	return cl
}

// feedbackVerdict precomputes the access-policing verdict for a handoff
// arriving over dest, when that arrival is one an access router will
// police: a regular packet from a directly attached same-AS host. The
// verdict is computed with the arrival instant's timestamp (the
// freshness window is evaluated in arrival-time seconds, not drain
// time) and tagged with the router and its ring epoch; AccessRouter.
// validate consumes it only while both still match.
func (w *pipeWorker) feedbackVerdict(p *packet.Packet, dest *netsim.Link, at sim.Time) bool {
	sys := w.pl.sys
	if sys.Cfg.MultiFeedback || p.Kind != packet.KindRegular {
		return false
	}
	node := dest.To
	if !dest.From.IsHost || dest.From.AS != node.AS {
		return false
	}
	ar := sys.accesses[node.ID]
	if ar == nil {
		return false
	}
	cur, prev := ar.ring.Keys()
	ccur := w.clone(cur)
	cprev := ccur
	if prev != cur {
		cprev = w.clone(prev)
	}
	kai := func(link packet.LinkID) *cmac.CMAC { return w.clone(ar.kaiLookup(link)) }
	v := feedback.ComputeVerdict(ccur, cprev, kai, p, uint32(at/sim.Second), sys.Cfg.WSec)
	p.FVNode = node.ID
	p.FVEpoch = ar.ring.Epoch()
	p.FVVerdict = uint8(v)
	p.FVSet = true
	return true
}

// passportVerdict precomputes the Passport verify verdict at the first
// protected link the handoff will enqueue on. Routing is static and the
// hops before that link are plain FIFOs that never touch the trailer,
// so the verdict computed here — via the pure Registry.Check, leaving
// the trailer's consumption to the hook's passport.Apply — is exactly
// the verdict Verify would compute there. The effective channel is the
// §4.4 demotion predicate evaluated without mutating: a packet the
// first nfQueue will demote to legacy is never verified at all.
func (w *pipeWorker) passportVerdict(p *packet.Packet, dest *netsim.Link) bool {
	sys := w.pl.sys
	if !sys.Cfg.Passport || sys.Registry == nil {
		return false
	}
	kind := p.Kind
	if kind == packet.KindRegular && p.FB == (packet.Feedback{}) && !p.MFB.Present {
		kind = packet.KindLegacy
	}
	if kind != packet.KindRequest && kind != packet.KindRegular {
		return false
	}
	net := w.pl.net
	at := dest.To
	for hops := 0; at.ID != p.Dst && hops < len(net.Nodes); hops++ {
		l := net.Route(at, p.Dst)
		if l == nil {
			return false
		}
		if b := sys.bottlenecks[l.ID]; b != nil && b.q.verify != nil {
			if p.SrcAS == l.From.AS {
				// The hook passes same-AS traffic without touching the
				// trailer; the next protected link does the verifying.
				at = l.To
				continue
			}
			ok, consume := sys.Registry.Check(p, l.From.AS, w.clone(sys.Registry.Key(p.SrcAS, l.From.AS)))
			p.PVOK = ok
			p.PVConsume = int32(consume)
			p.PVLink = l.ID
			return true
		}
		at = l.To
	}
	return false
}
