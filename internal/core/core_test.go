package core

import (
	"testing"

	"netfence/internal/defense"
	"netfence/internal/feedback"
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
	"netfence/internal/topo"
	"netfence/internal/transport"
)

// deploy builds a dumbbell with NetFence fully installed. denied lists
// sources the victim identifies as unwanted.
func deploy(seed uint64, cfg topo.DumbbellConfig, nfCfg Config, denied ...packet.NodeID) (*topo.Dumbbell, *System) {
	eng := sim.New(seed)
	d := topo.NewDumbbell(eng, cfg)
	s := NewSystem(d.Net, nfCfg)
	s.ProtectLink(d.Bottleneck)
	for _, ra := range d.SrcAccess {
		s.ProtectAccess(ra)
	}
	s.ProtectAccess(d.VictimAccess)
	for _, rc := range d.ColluderAccess {
		s.ProtectAccess(rc)
	}
	denySet := map[packet.NodeID]bool{}
	for _, id := range denied {
		denySet[id] = true
	}
	for _, h := range d.Senders {
		s.AttachHost(h, defense.Policy{})
	}
	s.AttachHost(d.Victim, defense.Policy{Deny: func(src packet.NodeID) bool {
		return denySet[src]
	}})
	for _, c := range d.Colluders {
		s.AttachHost(c, defense.Policy{})
	}
	return d, s
}

func TestRequestPolicingAtAccess(t *testing.T) {
	d, s := deploy(1, topo.DefaultDumbbell(2, 1_000_000), DefaultConfig())
	ar := s.Access(d.SrcAccess[0])
	src := d.Senders[0]
	mk := func(level uint8) *packet.Packet {
		return &packet.Packet{
			Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
			Kind: packet.KindRequest, Prio: level, Size: packet.SizeRequest,
		}
	}
	// Level 0 always passes and gets nop feedback stamped.
	p := mk(0)
	if !ar.police(p) {
		t.Fatal("level-0 request dropped")
	}
	if !p.FB.IsNop() || p.FB.MAC == ([4]byte{}) {
		t.Fatalf("nop not stamped: %+v", p.FB)
	}
	// High levels drain the token bucket and then drop.
	admitted := 0
	for i := 0; i < 10; i++ {
		if ar.police(mk(11)) { // cost 1024 each; depth 2048
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("admitted %d level-11 packets from a full bucket, want 2", admitted)
	}
	if ar.ReqDropped == 0 {
		t.Fatal("no request drops counted")
	}
}

func TestInvalidFeedbackDemotedToRequest(t *testing.T) {
	d, s := deploy(2, topo.DefaultDumbbell(2, 1_000_000), DefaultConfig())
	ar := s.Access(d.SrcAccess[0])
	src := d.Senders[0]
	p := &packet.Packet{
		Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
		Kind: packet.KindRegular, Size: 1500,
		FB: packet.Feedback{Mode: packet.FBMon, Link: d.Bottleneck.ID,
			Action: packet.ActIncr, TS: 0, MAC: [4]byte{1, 2, 3, 4}},
	}
	if !ar.police(p) {
		t.Fatal("demoted packet dropped outright (should ride request channel)")
	}
	if p.Kind != packet.KindRequest || p.Prio != 0 {
		t.Fatalf("not demoted: kind=%v prio=%d", p.Kind, p.Prio)
	}
	if ar.Demoted != 1 {
		t.Fatalf("Demoted = %d", ar.Demoted)
	}
	if !p.FB.IsNop() {
		t.Fatal("demoted packet missing fresh nop feedback")
	}
}

func TestBottleneckStampingRules(t *testing.T) {
	d, s := deploy(3, topo.DefaultDumbbell(2, 1_000_000), DefaultConfig())
	b := s.Bottleneck(d.Bottleneck)
	ar := s.Access(d.SrcAccess[0])
	src := d.Senders[0]

	// Not monitoring: nop feedback passes through unmodified.
	p := &packet.Packet{Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
		Kind: packet.KindRequest, Size: packet.SizeRequest}
	ar.police(p)
	before := p.FB
	b.onTransmit(p, d.Bottleneck)
	if p.FB != before {
		t.Fatal("feedback modified outside a monitoring cycle")
	}

	// Rule 1: in mon state, nop becomes L-down even when not overloaded.
	b.StartMonitoring()
	b.onTransmit(p, d.Bottleneck)
	if p.FB.Mode != packet.FBMon || p.FB.Action != packet.ActDecr || p.FB.Link != d.Bottleneck.ID {
		t.Fatalf("rule 1 violated: %+v", p.FB)
	}
	// The stamped L-down validates at the access router.
	q := *p
	q.Kind = packet.KindRegular
	nowSec := d.Net.NowSec()
	if v := feedback.Validate(ar.ring, ar.kaiLookup, &q, nowSec, s.Cfg.WSec); v != feedback.ValidMon {
		t.Fatalf("stamped L-down does not validate: %v", v)
	}

	// Rule 2: L-down is never overwritten (simulate an upstream link's
	// L-down crossing a second monitored link).
	before = p.FB
	b.onTransmit(p, d.Bottleneck)
	if p.FB != before {
		t.Fatal("rule 2 violated: L-down overwritten")
	}

	// Rule 3: L-up survives when the link is not overloaded...
	p2 := &packet.Packet{Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
		Kind: packet.KindRegular, Size: 1500}
	feedback.StampIncr(ar.ring.Current(), p2, nowSec, d.Bottleneck.ID)
	b.onTransmit(p2, d.Bottleneck)
	if p2.FB.Action != packet.ActIncr {
		t.Fatal("rule 3: L-up overwritten without overload")
	}
	// ...and is replaced while the link is inside the congestion
	// hysteresis window.
	b.q.red.Enqueue(&packet.Packet{Size: 1 << 20}, d.Net.Eng.Now()) // force a drop
	if !b.overloaded(d.Net.Eng.Now()) {
		t.Fatal("overload not registered")
	}
	b.onTransmit(p2, d.Bottleneck)
	if p2.FB.Action != packet.ActDecr {
		t.Fatal("rule 3: L-up kept despite overload")
	}
}

func TestShimKeepsFreshIncr(t *testing.T) {
	d, s := deploy(4, topo.DefaultDumbbell(2, 1_000_000), DefaultConfig())
	sh := Shim(d.Senders[0])
	ps := sh.peer(d.Victim.ID)
	incr := packet.Feedback{Mode: packet.FBMon, Link: 3, Action: packet.ActIncr, TS: 0}
	decr := packet.Feedback{Mode: packet.FBMon, Link: 3, Action: packet.ActDecr, TS: 0}
	sh.updatePresented(ps, incr)
	sh.updatePresented(ps, decr)
	if ps.presented.Action != packet.ActIncr {
		t.Fatal("fresh L-up displaced by L-down (§4.3.4 strategy)")
	}
	// Once the L-up expires, the L-down takes over.
	d.Net.Eng.RunUntil(sim.Time(s.Cfg.WSec+2) * sim.Second)
	sh.updatePresented(ps, decr)
	if ps.presented.Action != packet.ActDecr {
		t.Fatal("expired L-up still presented")
	}
}

func TestShimClassifiesSYNAsRequest(t *testing.T) {
	d, _ := deploy(5, topo.DefaultDumbbell(2, 1_000_000), DefaultConfig())
	sh := Shim(d.Senders[0])
	p := &packet.Packet{
		Src: d.Senders[0].ID, Dst: d.Victim.ID, Flow: 7,
		Proto: packet.ProtoTCP, TCP: packet.TCPInfo{Flags: packet.FlagSYN},
		Kind: packet.KindRegular, Size: packet.SizeRequest,
	}
	sh.Egress(p)
	if p.Kind != packet.KindRequest || p.Prio != 0 {
		t.Fatalf("first SYN: kind=%v prio=%d", p.Kind, p.Prio)
	}
	// A retransmitted SYN one second later gets level 10 (cost 512 paid
	// by the ~1000 tokens of waiting) — the §6.3.1 narrative.
	d.Net.Eng.RunUntil(sim.Second + 10*sim.Millisecond)
	p2 := *p
	p2.Kind = packet.KindRegular
	sh.Egress(&p2)
	if p2.Prio != 10 {
		t.Fatalf("retransmitted SYN priority = %d, want 10", p2.Prio)
	}
}

func TestLimiterLifecycle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LimiterIdle = 5 * sim.Second
	d, s := deploy(6, topo.DefaultDumbbell(2, 1_000_000), cfg)
	ar := s.Access(d.SrcAccess[0])
	src := d.Senders[0]

	// Create a limiter by presenting valid L-down feedback.
	nowSec := d.Net.NowSec()
	p := &packet.Packet{Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
		Kind: packet.KindRegular, Size: 1500}
	feedback.StampNop(ar.ring.Current(), p, nowSec)
	kai := s.kaiForSender(src.AS, d.Bottleneck.From.AS)
	feedback.StampDecr(kai, p, d.Bottleneck.ID)
	if !ar.police(p) {
		t.Fatal("first limited packet should pass")
	}
	if ar.LimiterCount() != 1 {
		t.Fatalf("limiters = %d, want 1", ar.LimiterCount())
	}
	if lim := ar.Limiter(src.ID, d.Bottleneck.ID); lim == nil ||
		lim.Rate() != cfg.InitialRateBps {
		t.Fatal("limiter missing or wrong initial rate")
	}
	// With no L-down and no drops for Ta, the limiter is garbage
	// collected at a control-interval boundary.
	d.Net.Eng.RunUntil(12 * sim.Second)
	if ar.LimiterCount() != 0 {
		t.Fatalf("limiter not expired: %d", ar.LimiterCount())
	}
}

func TestAIMDDecreasesWithoutIncrFeedback(t *testing.T) {
	d, s := deploy(7, topo.DefaultDumbbell(2, 1_000_000), DefaultConfig())
	ar := s.Access(d.SrcAccess[0])
	src := d.Senders[0]
	nowSec := d.Net.NowSec()
	p := &packet.Packet{Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
		Kind: packet.KindRegular, Size: 1500}
	feedback.StampNop(ar.ring.Current(), p, nowSec)
	kai := s.kaiForSender(src.AS, d.Bottleneck.From.AS)
	feedback.StampDecr(kai, p, d.Bottleneck.ID)
	ar.police(p)
	lim := ar.Limiter(src.ID, d.Bottleneck.ID)
	start := lim.Rate()
	// Hiding L-down (sending nothing) cannot hold the rate: it decays
	// multiplicatively every control interval.
	d.Net.Eng.RunUntil(3 * s.Cfg.Ilim)
	if lim.Rate() >= start {
		t.Fatalf("rate did not decrease: %d -> %d", start, lim.Rate())
	}
}

// TestCollusionFairShare is the single-bottleneck §6.3.2 control loop in
// miniature: one legitimate TCP sender and one colluding UDP pair share a
// 400 kbps bottleneck. NetFence must detect the attack, start a
// monitoring cycle, and confine both senders to roughly the fair share.
func TestCollusionFairShare(t *testing.T) {
	cfg := topo.DefaultDumbbell(2, 400_000)
	cfg.ColluderASes = 1
	d, s := deploy(8, cfg, DefaultConfig())
	legit, attacker := d.Senders[0], d.Senders[1]
	colluder := d.Colluders[0]

	rcv := transport.NewTCPReceiver(d.Victim.Host, 1)
	tcp := transport.NewTCPSender(legit.Host, d.Victim.ID, 1, -1, transport.DefaultTCP())
	tcp.Start()
	sink := transport.NewUDPSink(colluder.Host, 2)
	udp := transport.NewUDPSource(attacker.Host, colluder.ID, 2, 1_000_000, 1500)
	udp.Start()

	const (
		warm = 60 * sim.Second
		end  = 180 * sim.Second
	)
	d.Net.Eng.RunUntil(warm)
	if !s.Bottleneck(d.Bottleneck).Monitoring() {
		t.Fatal("monitoring cycle never started under a 1 Mbps flood")
	}
	legitStart, atkStart := rcv.DeliveredBytes(), int64(sink.Bytes)
	d.Net.Eng.RunUntil(end)
	window := (end - warm).Seconds()
	legitBps := float64(rcv.DeliveredBytes()-legitStart) * 8 / window
	atkBps := float64(int64(sink.Bytes)-atkStart) * 8 / window

	const fair = 200_000.0
	if atkBps > 1.4*fair {
		t.Fatalf("attacker got %.0f bps, far above fair share %.0f", atkBps, fair)
	}
	if legitBps < 0.4*fair {
		t.Fatalf("legit sender got %.0f bps, below 40%% of fair share %.0f", legitBps, fair)
	}
	ratio := legitBps / atkBps
	if ratio < 0.4 {
		t.Fatalf("throughput ratio %.2f (legit %.0f vs attacker %.0f)", ratio, legitBps, atkBps)
	}
	// The attacker's access router must hold a (sender, bottleneck)
	// limiter pinned near the fair share.
	ar := s.Access(d.SrcAccess[1])
	lim := ar.Limiter(attacker.ID, d.Bottleneck.ID)
	if lim == nil {
		t.Fatal("no rate limiter for the attacker")
	}
	if lim.Rate() > int64(2*fair) {
		t.Fatalf("attacker limiter rate %d way above fair share", lim.Rate())
	}
}

// TestFeedbackAsCapability is the §6.3.1 scenario in miniature: the
// victim identifies the attacker and withholds feedback, so the attacker
// is stuck flooding the request channel while the legitimate client's
// transfers complete quickly.
func TestFeedbackAsCapability(t *testing.T) {
	cfg := topo.DefaultDumbbell(2, 500_000)
	nfCfg := DefaultConfig()
	d, s := deploy(9, cfg, nfCfg, 1+1) // deny the second sender (IDs assigned below)
	legit, attacker := d.Senders[0], d.Senders[1]
	if attacker.ID != 1+1 {
		// Recompute denial if ID assumptions drift: rebuild with the
		// actual attacker ID.
		d, s = deploy(9, cfg, nfCfg, attacker.ID)
		legit, attacker = d.Senders[0], d.Senders[1]
	}
	_ = s
	spawned := 0
	d.Victim.Host.OnUnknownFlow = func(p *packet.Packet) netsim.Agent {
		spawned++
		return transport.NewTCPReceiver(d.Victim.Host, p.Flow)
	}
	flood := transport.NewRequestFlooder(attacker.Host, d.Victim.ID, 900, 1_000_000, 6)
	flood.Start()
	client := transport.NewFileClient(legit.Host, d.Victim.ID, 20_000, transport.DefaultTCP())
	client.Start()
	d.Net.Eng.RunUntil(40 * sim.Second)
	client.Stop()
	flood.Stop()

	if client.Completed < 8 {
		t.Fatalf("completed %d transfers in 40s under request flood", client.Completed)
	}
	if spawned != client.Completed+client.Failed && spawned < client.Completed {
		t.Logf("spawned=%d completed=%d failed=%d", spawned, client.Completed, client.Failed)
	}
	// The victim never accepted an attacker connection.
	if got := d.Victim.Host.Agent(900); got != nil {
		t.Fatal("victim spawned an agent for the attacker's flow")
	}
}

// TestOnOffAttackBounded: synchronized on-off floods cannot depress a
// legitimate sender below its always-on fair share (§5.2.1, Figure 11).
func TestOnOffAttackBounded(t *testing.T) {
	cfg := topo.DefaultDumbbell(2, 400_000)
	cfg.ColluderASes = 1
	d, _ := deploy(10, cfg, DefaultConfig())
	legit, attacker := d.Senders[0], d.Senders[1]

	rcv := transport.NewTCPReceiver(d.Victim.Host, 1)
	transport.NewTCPSender(legit.Host, d.Victim.ID, 1, -1, transport.DefaultTCP()).Start()
	transport.NewUDPSink(d.Colluders[0].Host, 2)
	udp := transport.NewUDPSource(attacker.Host, d.Colluders[0].ID, 2, 1_000_000, 1500)
	udp.OnTime = 500 * sim.Millisecond
	udp.OffTime = 1500 * sim.Millisecond
	udp.Start()

	warm := 60 * sim.Second
	end := 180 * sim.Second
	d.Net.Eng.RunUntil(warm)
	start := rcv.DeliveredBytes()
	d.Net.Eng.RunUntil(end)
	legitBps := float64(rcv.DeliveredBytes()-start) * 8 / (end - warm).Seconds()
	// Appendix A guarantees at least nu*rho*C/(G+B) with rho = (1-MD)^3
	// = 0.729: about 146 kbps of the 200 kbps fair share, regardless of
	// the attack's shape.
	rho := (1 - 0.1) * (1 - 0.1) * (1 - 0.1)
	bound := rho * 200_000
	if legitBps < bound {
		t.Fatalf("on-off attack depressed user to %.0f bps, below the %.0f bound", legitBps, bound)
	}
}

// TestPerASLocalization: a compromised AS whose access router does not
// police cannot deny service to senders of well-behaved ASes once the
// per-AS fallback engages (§4.5).
func TestPerASLocalization(t *testing.T) {
	eng := sim.New(11)
	cfg := topo.DefaultDumbbell(2, 400_000)
	cfg.ColluderASes = 1
	d := topo.NewDumbbell(eng, cfg)
	nfCfg := DefaultConfig()
	nfCfg.PerASFallback = true
	nfCfg.FallbackAfter = 20 * sim.Second
	s := NewSystem(d.Net, nfCfg)
	s.ProtectLink(d.Bottleneck)
	// AS of Senders[1] is compromised: its access router is NOT
	// protected and its host runs no NetFence shim, blasting raw
	// regular packets.
	s.ProtectAccess(d.SrcAccess[0])
	s.ProtectAccess(d.VictimAccess)
	s.ProtectAccess(d.ColluderAccess[0])
	s.AttachHost(d.Senders[0], defense.Policy{})
	s.AttachHost(d.Victim, defense.Policy{})
	s.AttachHost(d.Colluders[0], defense.Policy{})

	rcv := transport.NewTCPReceiver(d.Victim.Host, 1)
	transport.NewTCPSender(d.Senders[0].Host, d.Victim.ID, 1, -1, transport.DefaultTCP()).Start()
	transport.NewUDPSink(d.Colluders[0].Host, 2)
	transport.NewUDPSource(d.Senders[1].Host, d.Colluders[0].ID, 2, 2_000_000, 1500).Start()

	warm := 90 * sim.Second
	end := 210 * sim.Second
	d.Net.Eng.RunUntil(warm)
	b := s.Bottleneck(d.Bottleneck)
	if !b.FallbackActive() {
		t.Fatal("per-AS fallback never engaged against a compromised AS")
	}
	start := rcv.DeliveredBytes()
	d.Net.Eng.RunUntil(end)
	legitBps := float64(rcv.DeliveredBytes()-start) * 8 / (end - warm).Seconds()
	// With per-AS queuing the honest AS owns half the link: 200 kbps.
	if legitBps < 100_000 {
		t.Fatalf("honest AS sender got only %.0f bps under a compromised AS", legitBps)
	}
}

// TestPassportBlocksSpoofedAS: with Passport enabled, packets claiming a
// forged source AS are dropped at the bottleneck, while honest traffic
// flows.
func TestPassportBlocksSpoofedAS(t *testing.T) {
	cfg := topo.DefaultDumbbell(2, 1_000_000)
	nfCfg := DefaultConfig()
	nfCfg.Passport = true
	d, _ := deploy(12, cfg, nfCfg)
	// Honest transfer completes with Passport stamping on.
	transport.NewTCPReceiver(d.Victim.Host, 1)
	ok := false
	snd := transport.NewTCPSender(d.Senders[0].Host, d.Victim.ID, 1, 50_000, transport.DefaultTCP())
	snd.OnComplete = func(fct sim.Time, o bool) { ok = o }
	snd.Start()
	d.Net.Eng.RunUntil(30 * sim.Second)
	if !ok {
		t.Fatal("honest transfer failed with Passport enabled")
	}
	// A spoofed packet injected past the access router (compromised
	// router scenario) presenting forged regular-channel credentials
	// carries no valid trailer and dies at the bottleneck.
	sink := transport.NewUDPSink(d.Victim.Host, 99)
	spoof := &packet.Packet{
		Src: d.Senders[1].ID, SrcAS: 555, Dst: d.Victim.ID, DstAS: d.Victim.AS,
		Flow: 99, Kind: packet.KindRegular, Proto: packet.ProtoUDP,
		Size: 1500, Payload: 1400,
		FB: packet.Feedback{MAC: [4]byte{1, 2, 3, 4}}, // forged stamp
	}
	d.Net.Forward(d.SrcAccess[1], spoof)
	d.Net.Eng.RunUntil(31 * sim.Second)
	if sink.Packets != 0 {
		t.Fatal("spoofed packet crossed the bottleneck")
	}
	// An UNSTAMPED packet is indistinguishable from a legacy host's
	// traffic: §4.4 demotes it to the best-effort channel instead of
	// dropping it, so incremental deployment keeps legacy ASes online.
	bare := &packet.Packet{
		Src: d.Senders[1].ID, SrcAS: d.Senders[1].AS, Dst: d.Victim.ID, DstAS: d.Victim.AS,
		Flow: 99, Kind: packet.KindRegular, Proto: packet.ProtoUDP,
		Size: 1500, Payload: 1400,
	}
	d.Net.Forward(d.SrcAccess[1], bare)
	d.Net.Eng.RunUntil(32 * sim.Second)
	if sink.Packets != 1 {
		t.Fatalf("legacy (unstamped) packet not served best-effort: %d delivered", sink.Packets)
	}
	if bare.Kind != packet.KindLegacy {
		t.Fatalf("unstamped packet not demoted to legacy: %v", bare.Kind)
	}
}

func TestKeyRotationTransparentToFlows(t *testing.T) {
	// A greedy TCP through its own bottleneck triggers a monitoring
	// cycle (NetFence does not distinguish flash crowds from attacks,
	// §4.3.1), so raw throughput converges slowly; what rotation must
	// guarantee is that honestly presented feedback NEVER fails
	// validation — no packet may be demoted to the request channel.
	cfg := topo.DefaultDumbbell(2, 1_000_000)
	nfCfg := DefaultConfig()
	nfCfg.KeyRotate = 8 * sim.Second
	d, s := deploy(13, cfg, nfCfg)
	rcv := transport.NewTCPReceiver(d.Victim.Host, 1)
	transport.NewTCPSender(d.Senders[0].Host, d.Victim.ID, 1, -1, transport.DefaultTCP()).Start()
	d.Net.Eng.RunUntil(60 * sim.Second)
	if rcv.DeliveredBytes() < 500_000 {
		t.Fatalf("flow starved: %d bytes in 60s", rcv.DeliveredBytes())
	}
	for _, ra := range []*netsim.Node{d.SrcAccess[0], d.VictimAccess} {
		if n := s.Access(ra).Demoted; n != 0 {
			t.Fatalf("%d honest packets demoted across key rotations at %v", n, ra)
		}
	}
}

// TestRequestPoliceZeroAlloc pins the hot-path fix in handleRequest:
// when the flow is not sampled by the flight recorder, admitting a
// request packet must not allocate — the "request admit prio=..."
// trace detail is built only behind the traced() gate.
func TestRequestPoliceZeroAlloc(t *testing.T) {
	d, s := deploy(3, topo.DefaultDumbbell(2, 1_000_000), DefaultConfig())
	ar := s.Access(d.SrcAccess[0])
	src := d.Senders[0]
	p := &packet.Packet{
		Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
		Kind: packet.KindRequest, Size: packet.SizeRequest,
	}
	// Warm up: the first admission allocates the per-sender limiter.
	if !ar.police(p) {
		t.Fatal("warm-up request dropped")
	}
	if d.Net.Rec.Sampled(uint32(p.Flow)) {
		t.Fatal("test flow unexpectedly sampled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		p.Kind = packet.KindRequest
		p.Prio = 0 // level 0 is always admitted
		if !ar.police(p) {
			t.Fatal("request dropped mid-run")
		}
	})
	if allocs != 0 {
		t.Fatalf("request admission allocates %.1f per packet, want 0", allocs)
	}
}
