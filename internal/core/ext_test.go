package core

import (
	"testing"

	"netfence/internal/defense"
	"netfence/internal/feedback"
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/ratelimit"
	"netfence/internal/sim"
	"netfence/internal/topo"
	"netfence/internal/transport"
)

// This file tests the extension surfaces: the Appendix B.1 chained
// multi-bottleneck token, the Appendix B.2 inference cache, the token-
// bucket limiter variant, the congestion quota, and the utilization
// detector — on a two-bottleneck chain topology.

func TestMultiFeedbackChainSecurity(t *testing.T) {
	cfg := topo.DefaultDumbbell(2, 1_000_000)
	nfCfg := DefaultConfig()
	nfCfg.MultiFeedback = true
	d, s := deploy(20, cfg, nfCfg)
	ar := s.Access(d.SrcAccess[0])
	b := s.Bottleneck(d.Bottleneck)
	b.StartMonitoring()
	src := d.Senders[0]

	// Access stamps the empty multi header; the bottleneck appends its
	// feedback; the chain validates.
	p := &packet.Packet{Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
		Kind: packet.KindRegular, Size: 1500}
	ar.stampMultiNop(p)
	b.stampMulti(p, d.Net.Eng.Now())
	if len(p.MFB.Items) != 1 || p.MFB.Items[0].Link != d.Bottleneck.ID {
		t.Fatalf("MFB items: %+v", p.MFB.Items)
	}
	if !ar.validateMulti(p) {
		t.Fatal("honest chain rejected")
	}

	// Tampering any element of the chain invalidates it.
	tampered := func(mutate func(q *packet.Packet)) bool {
		q := *p
		q.MFB.Items = append([]packet.MultiFB(nil), p.MFB.Items...)
		mutate(&q)
		return ar.validateMulti(&q)
	}
	if tampered(func(q *packet.Packet) {
		if q.MFB.Items[0].Action == packet.ActIncr {
			q.MFB.Items[0].Action = packet.ActDecr
		} else {
			q.MFB.Items[0].Action = packet.ActIncr
		}
	}) {
		t.Fatal("action flip accepted")
	}
	if tampered(func(q *packet.Packet) { q.MFB.Items[0].Link++ }) {
		t.Fatal("link swap accepted")
	}
	if tampered(func(q *packet.Packet) { q.MFB.Items = q.MFB.Items[:0] }) {
		t.Fatal("entry removal accepted")
	}
	if tampered(func(q *packet.Packet) { q.MFB.Token[0] ^= 1 }) {
		t.Fatal("token tamper accepted")
	}
	if tampered(func(q *packet.Packet) { q.MFB.TS += 10 }) {
		t.Fatal("timestamp tamper accepted")
	}

	// Policing a valid chain creates a limiter per reported bottleneck.
	q := *p
	q.MFB.Items = append([]packet.MultiFB(nil), p.MFB.Items...)
	if !ar.policeMulti(&q) {
		t.Fatal("valid multi packet rejected")
	}
	if ar.LimiterCount() != 1 {
		t.Fatalf("limiters = %d", ar.LimiterCount())
	}
}

func TestMultiFeedbackEmptyChainIsNop(t *testing.T) {
	cfg := topo.DefaultDumbbell(2, 1_000_000)
	nfCfg := DefaultConfig()
	nfCfg.MultiFeedback = true
	d, s := deploy(21, cfg, nfCfg)
	ar := s.Access(d.SrcAccess[0])
	src := d.Senders[0]
	p := &packet.Packet{Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
		Kind: packet.KindRegular, Size: 1500}
	ar.stampMultiNop(p)
	if !ar.policeMulti(p) {
		t.Fatal("empty chain (nop) rejected")
	}
	if ar.LimiterCount() != 0 {
		t.Fatal("nop-equivalent packet created a limiter")
	}
	// A stale header demotes to the request channel.
	p2 := &packet.Packet{Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
		Kind: packet.KindRegular, Size: 1500}
	ar.stampMultiNop(p2)
	p2.MFB.TS -= 100
	ar.policeMulti(p2)
	if p2.Kind != packet.KindRequest {
		t.Fatal("stale multi header not demoted")
	}
}

func TestInferenceCacheAccumulates(t *testing.T) {
	cfg := topo.DefaultDumbbell(2, 1_000_000)
	nfCfg := DefaultConfig()
	nfCfg.InferLimiters = true
	d, s := deploy(22, cfg, nfCfg)
	ar := s.Access(d.SrcAccess[0])
	src := d.Senders[0]

	// Feedback from two different links toward the same destination.
	mk := func(link packet.LinkID) *packet.Packet {
		p := &packet.Packet{Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
			Kind: packet.KindRegular, Size: 1500}
		p.FB = packet.Feedback{Mode: packet.FBMon, Link: link,
			Action: packet.ActDecr, TS: d.Net.NowSec()}
		return p
	}
	_ = mk
	// Drive through the public path: inferred policing happens inside
	// police() for valid feedback; craft valid L-down for the bottleneck
	// and a second (reverse) link.
	links := []packet.LinkID{d.Bottleneck.ID, d.Reverse.ID}
	for _, l := range links {
		p := &packet.Packet{Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
			Kind: packet.KindRegular, Size: 1500}
		nowSec := d.Net.NowSec()
		// Stamp nop then L-down with real keys so validation passes.
		stampValidDecr(s, ar, p, l, nowSec)
		if !ar.police(p) && ar.Limiter(src.ID, l) == nil {
			t.Fatalf("packet for link %d dropped without creating a limiter", l)
		}
	}
	got := ar.InferredLinks(d.Victim.ID)
	if len(got) != 2 {
		t.Fatalf("inference cache = %v, want both links", got)
	}
	if ar.LimiterCount() != 2 {
		t.Fatalf("limiters = %d, want one per inferred link", ar.LimiterCount())
	}
}

// stampValidDecr produces valid L-down feedback for a link using the
// system's real keys, exercising the access router's own validation path.
func stampValidDecr(s *System, ar *AccessRouter, p *packet.Packet, link packet.LinkID, nowSec uint32) {
	feedback.StampNop(ar.ring.Current(), p, nowSec)
	kai := s.kaiForSender(p.SrcAS, s.net.LinkByID(link).From.AS)
	feedback.StampDecr(kai, p, link)
}

func TestTokenBucketLimiterAllowsBursts(t *testing.T) {
	eng := sim.New(1)
	tok := ratelimit.NewTokenLimiter(eng, 100_000, 1.0)
	// After one idle second the bucket holds 100 kbit: an 8-packet burst
	// of 1500 B (96 kbit) passes back-to-back — exactly what the leaky
	// queue forbids.
	eng.RunUntil(sim.Second)
	passed := 0
	for i := 0; i < 10; i++ {
		if tok.Submit(&packet.Packet{Size: 1500}) == ratelimit.Pass {
			passed++
		}
	}
	if passed < 8 {
		t.Fatalf("burst passed %d packets, want >= 8", passed)
	}
	// The leaky limiter would have passed exactly one.
	leaky := ratelimit.NewLeakyLimiter(eng, 100_000, 0, func(*packet.Packet) {})
	passedLeaky := 0
	for i := 0; i < 10; i++ {
		if leaky.Submit(&packet.Packet{Size: 1500}) == ratelimit.Pass {
			passedLeaky++
		}
	}
	if passedLeaky != 1 {
		t.Fatalf("leaky passed %d back-to-back packets, want 1", passedLeaky)
	}
}

func TestCongestionQuotaCharging(t *testing.T) {
	cfg := topo.DefaultDumbbell(2, 1_000_000)
	nfCfg := DefaultConfig()
	nfCfg.CongestionQuotaBytes = 3000
	nfCfg.QuotaWindow = 10 * sim.Second
	d, s := deploy(23, cfg, nfCfg)
	ar := s.Access(d.SrcAccess[0])
	src := d.Senders[0]
	nowSec := d.Net.NowSec()

	p := &packet.Packet{Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
		Kind: packet.KindRegular, Size: 1500}
	stampValidDecr(s, ar, p, d.Bottleneck.ID, nowSec)
	if !ar.police(p) {
		t.Fatal("first packet rejected")
	}
	lim := ar.regLims[regKey{src.ID, d.Bottleneck.ID}]
	// Force the quota path: pretend the last adjustment was an MD and
	// charge two full packets.
	lim.lastAdjustMD = true
	lim.quotaUsed = 3001
	q := *p
	stampValidDecr(s, ar, &q, d.Bottleneck.ID, nowSec)
	if ar.police(&q) {
		t.Fatal("packet passed with quota exhausted")
	}
	if ar.QuotaDrops != 1 {
		t.Fatalf("QuotaDrops = %d", ar.QuotaDrops)
	}
	// A new window resets the budget.
	d.Net.Eng.RunUntil(11 * sim.Second)
	r := packet.Packet{Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
		Kind: packet.KindRegular, Size: 1500}
	stampValidDecr(s, ar, &r, d.Bottleneck.ID, d.Net.NowSec())
	ar.police(&r)
	if lim.quotaUsed > 3000 && ar.QuotaDrops != 1 {
		t.Fatal("quota window did not reset")
	}
}

func TestUtilDetectorOpensMonitoring(t *testing.T) {
	// A full link with zero loss (elastic TCP just filling it) does not
	// trip the loss detector quickly, but the utilization detector must
	// open a monitoring cycle.
	cfg := topo.DefaultDumbbell(2, 1_000_000)
	nfCfg := DefaultConfig()
	nfCfg.UtilDetect = true
	nfCfg.UtilThreshold = 0.9
	d, s := deploy(24, cfg, nfCfg)
	transport.NewTCPReceiver(d.Victim.Host, 1)
	transport.NewTCPSender(d.Senders[0].Host, d.Victim.ID, 1, -1, transport.DefaultTCP()).Start()
	d.Net.Eng.RunUntil(30 * sim.Second)
	if !s.Bottleneck(d.Bottleneck).Monitoring() {
		t.Fatal("utilization detector never opened a monitoring cycle")
	}
}

// TestReplayStaleFeedbackDemoted is the end-to-end replay probe against
// the freshness window w: L-up feedback stamped in control interval k
// and presented in interval k+2 (4 s later with the Figure 3 Ilim = 2 s,
// past w = 4 s) must be rejected and the packet demoted to the request
// channel — the attack the "replay" strategy mounts.
func TestReplayStaleFeedbackDemoted(t *testing.T) {
	cfg := topo.DefaultDumbbell(2, 1_000_000)
	d, s := deploy(26, cfg, DefaultConfig())
	ar := s.Access(d.SrcAccess[0])
	src := d.Senders[0]

	mk := func() *packet.Packet {
		p := &packet.Packet{Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
			Kind: packet.KindRegular, Size: 1500}
		feedback.StampIncr(ar.ring.Current(), p, 0, d.Bottleneck.ID)
		return p
	}
	replayed := mk().FB // cached in interval k (ts = 0)

	// Presented within the freshness window: policed normally, never
	// demoted.
	fresh := mk()
	ar.police(fresh)
	if fresh.Kind != packet.KindRegular || ar.Demoted != 0 {
		t.Fatalf("fresh L-up demoted: kind=%v demoted=%d", fresh.Kind, ar.Demoted)
	}

	// Two control intervals later the token is past w.
	d.Net.Eng.RunUntil(2*DefaultConfig().Ilim + sim.Second)
	stale := &packet.Packet{Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
		Kind: packet.KindRegular, Size: 1500, FB: replayed}
	ar.police(stale)
	if stale.Kind != packet.KindRequest || stale.Prio != 0 {
		t.Fatalf("stale replay not demoted: kind=%v prio=%d", stale.Kind, stale.Prio)
	}
	if ar.Demoted != 1 {
		t.Fatalf("Demoted = %d, want 1", ar.Demoted)
	}
}

// TestReplayAcrossKeyRotationsDemoted isolates the keyring's MAC expiry
// from timestamp freshness: with the freshness window w effectively
// disabled, feedback stamped under key k survives exactly one rotation
// (the §3.2 grace period validates against current and previous keys)
// and is rejected after the second — replaying cached feedback across
// rotations buys nothing.
func TestReplayAcrossKeyRotationsDemoted(t *testing.T) {
	cfg := topo.DefaultDumbbell(2, 1_000_000)
	nfCfg := DefaultConfig()
	nfCfg.KeyRotate = 2 * sim.Second
	nfCfg.WSec = 1000 // freshness never trips; only key expiry can reject
	d, s := deploy(27, cfg, nfCfg)
	ar := s.Access(d.SrcAccess[0])
	src := d.Senders[0]

	p := &packet.Packet{Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
		Kind: packet.KindRegular, Size: 1500}
	feedback.StampIncr(ar.ring.Current(), p, 0, d.Bottleneck.ID)
	replayed := p.FB

	present := func() *packet.Packet {
		q := &packet.Packet{Src: src.ID, SrcAS: src.AS, Dst: d.Victim.ID,
			Kind: packet.KindRegular, Size: 1500, FB: replayed}
		ar.police(q)
		return q
	}

	// One rotation in (t = 3 s): the previous key still validates.
	d.Net.Eng.RunUntil(3 * sim.Second)
	if q := present(); q.Kind != packet.KindRegular || ar.Demoted != 0 {
		t.Fatalf("replay rejected within the rotation grace period: kind=%v demoted=%d", q.Kind, ar.Demoted)
	}

	// Two rotations in (t = 5 s): the stamping key has left the ring.
	d.Net.Eng.RunUntil(5 * sim.Second)
	if q := present(); q.Kind != packet.KindRequest || q.Prio != 0 {
		t.Fatalf("replay across two rotations not demoted: kind=%v prio=%d", q.Kind, q.Prio)
	}
	if ar.Demoted != 1 {
		t.Fatalf("Demoted = %d, want 1", ar.Demoted)
	}
}

func TestMultiBottleneckChainEndToEnd(t *testing.T) {
	// Two monitored bottlenecks in series; with B.1 enabled the sender's
	// access router ends up with a limiter for each.
	eng := sim.New(25)
	n := netsim.New(eng)
	src := n.NewHost("src", 1)
	ra := n.NewNode("Ra", 1)
	r0 := n.NewNode("R0", 1000)
	r1 := n.NewNode("R1", 1000)
	r2 := n.NewNode("R2", 1000)
	rv := n.NewNode("Rv", 2000)
	dst := n.NewHost("dst", 2000)
	n.Connect(src, ra, 10_000_000, sim.Millisecond)
	n.Connect(ra, r0, 10_000_000, sim.Millisecond)
	l1, _ := n.Connect(r0, r1, 600_000, 5*sim.Millisecond)
	l2, _ := n.Connect(r1, r2, 500_000, 5*sim.Millisecond)
	n.Connect(r2, rv, 10_000_000, sim.Millisecond)
	n.Connect(rv, dst, 10_000_000, sim.Millisecond)
	n.ComputeRoutes()

	nfCfg := DefaultConfig()
	nfCfg.MultiFeedback = true
	// Start limits at the first link's capacity so the second bottleneck
	// congests without waiting for additive increase.
	nfCfg.InitialRateBps = 600_000
	s := NewSystem(n, nfCfg)
	s.ProtectLink(l1)
	s.ProtectLink(l2)
	s.ProtectAccess(ra)
	s.ProtectAccess(rv)
	s.AttachHost(src, defense.Policy{})
	s.AttachHost(dst, defense.Policy{})

	// Greedy UDP keeps both links saturated (the second is narrower).
	transport.NewUDPSink(dst.Host, 1)
	transport.NewUDPSource(src.Host, dst.ID, 1, 2_000_000, 1500).Start()
	eng.RunUntil(60 * sim.Second)

	ar := s.Access(ra)
	if !s.Bottleneck(l2).Monitoring() {
		t.Fatal("narrow link not monitoring")
	}
	if ar.Limiter(src.ID, l2.ID) == nil {
		t.Fatal("no limiter for the narrow link")
	}
	// With multi-feedback the wider link's feedback also reaches the
	// access router once it enters mon state.
	if s.Bottleneck(l1).Monitoring() && ar.Limiter(src.ID, l1.ID) == nil {
		t.Fatal("wide link monitored but no limiter created")
	}
}
