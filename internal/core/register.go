package core

import (
	"fmt"

	"netfence/internal/defense"
	"netfence/internal/netsim"
)

// NetFence self-registers in the defense registry so scenario and sweep
// code can resolve it by name. The optional BuildOptions.Config must be a
// core.Config.
func init() {
	defense.Register("netfence", func(net *netsim.Network, opts defense.BuildOptions) (defense.System, error) {
		cfg := DefaultConfig()
		if opts.Config != nil {
			c, ok := opts.Config.(Config)
			if !ok {
				return nil, fmt.Errorf("netfence: config must be core.Config, got %T", opts.Config)
			}
			cfg = c
		}
		return NewSystem(net, cfg), nil
	})
}
