// Package core implements NetFence itself: the access-router policing
// functions (§4.2, §4.3.3, §4.3.4), the bottleneck-router monitoring
// cycle and feedback stamping (§4.3.1, §4.3.2), the end-host shim layer
// (§3.1), damage localization for compromised ASes (§4.5), and the two
// Appendix B extensions for multiple bottlenecks.
package core

import (
	"netfence/internal/sim"
)

// Config carries every NetFence parameter. Defaults follow Figure 3 of
// the paper; the monitoring-cycle hold times, which the paper sets to "a
// few hours" in deployment, default to values proportionate to simulated
// experiment lengths and are overridden per scale.
type Config struct {
	// TokenRatePerSec is the request-limiter refill rate (Figure 3:
	// l1 = 1 ms per token, i.e. 1000 tokens/s).
	TokenRatePerSec float64
	// TokenDepth caps accumulated request tokens.
	TokenDepth float64
	// Ilim is the rate-limiter control interval (Figure 3: 2 s).
	Ilim sim.Time
	// WSec is the feedback expiration time w in seconds (Figure 3: 4 s).
	WSec uint32
	// DeltaBps is the AIMD additive increase (Figure 3: 12 kbps).
	DeltaBps int64
	// MD is the AIMD multiplicative decrease delta (Figure 3: 0.1).
	MD float64
	// MinRateBps floors rate limits.
	MinRateBps int64
	// InitialRateBps seeds fresh rate limiters. The paper does not state
	// a value; 100 kbps sits mid-range of its 50-400 kbps target region.
	InitialRateBps int64
	// MaxCacheDelay bounds the leaky limiter's packet-caching delay
	// (Figure 16's caching_delay_too_long).
	MaxCacheDelay sim.Time

	// Pth is the attack-detection loss threshold (Figure 3: 2%).
	Pth float64
	// DetectInterval is how often a router samples its loss detector.
	DetectInterval sim.Time
	// MonitorHold is Tb: a monitoring cycle persists this long after the
	// last attack sign (paper: a few hours).
	MonitorHold sim.Time
	// HysteresisIntervals is how many control intervals past the last
	// congestion instant a router keeps stamping L-down. Footnote 1 of
	// the paper proves 2 is the minimum robust value; the ablation
	// experiment shows what smaller values cost.
	HysteresisIntervals int
	// LimiterIdle is Ta: an idle rate limiter is removed after this long
	// without L-down feedback or limiter drops.
	LimiterIdle sim.Time

	// RequestCapFrac caps the request channel's share of link capacity
	// (§4.2: 5%).
	RequestCapFrac float64
	// MaxPrioLevel bounds request priority levels.
	MaxPrioLevel uint8

	// KeyRotate is the access-router secret rotation period; it must
	// exceed the feedback expiration window.
	KeyRotate sim.Time

	// EchoInterval is how often a receiver of one-way traffic sends
	// dedicated low-rate feedback packets (§3.1 step 4).
	EchoInterval sim.Time

	// PerASFallback enables §4.5 damage localization: if congestion
	// persists FallbackAfter into a monitoring cycle, the regular channel
	// switches to per-source-AS fair queuing.
	PerASFallback bool
	FallbackAfter sim.Time

	// MultiFeedback enables the Appendix B.1 extension: packets carry
	// feedback from every bottleneck on the path.
	MultiFeedback bool
	// InferLimiters enables the Appendix B.2 extension: access routers
	// infer on-path bottlenecks per destination and police through all
	// inferred limiters.
	InferLimiters bool

	// Passport enables per-packet source-AS authentication stamping at
	// access routers and verification at bottleneck routers.
	Passport bool

	// TokenBucketLimiter replaces the leaky-bucket regular limiter with
	// a token bucket of TokenBurstSec seconds of credit — the design the
	// paper rejects; kept for the ablation that demonstrates why
	// (§4.3.3, §5.2.1 on-off attacks).
	TokenBucketLimiter bool
	TokenBurstSec      float64

	// CongestionQuotaBytes, when positive, enables the §7 congestion
	// quota: per (sender, bottleneck), at most this many bytes of
	// congestion traffic (forwarded while the rate limit was decreasing)
	// may pass per QuotaWindow.
	CongestionQuotaBytes int64
	QuotaWindow          sim.Time

	// UtilDetect additionally starts monitoring cycles when smoothed
	// link utilization exceeds UtilThreshold — the well-provisioned-link
	// detector of §4.3.1.
	UtilDetect    bool
	UtilThreshold float64
}

// DefaultConfig returns the Figure 3 parameters with simulation-friendly
// monitoring-cycle durations (long enough to never expire mid-experiment).
func DefaultConfig() Config {
	return Config{
		TokenRatePerSec:     1000,
		TokenDepth:          2048,
		Ilim:                2 * sim.Second,
		WSec:                4,
		DeltaBps:            12_000,
		MD:                  0.1,
		MinRateBps:          512,
		InitialRateBps:      100_000,
		MaxCacheDelay:       2 * sim.Second,
		Pth:                 0.02,
		DetectInterval:      100 * sim.Millisecond,
		MonitorHold:         sim.Hour,
		HysteresisIntervals: 2,
		LimiterIdle:         sim.Hour,
		RequestCapFrac:      0.05,
		MaxPrioLevel:        20,
		KeyRotate:           32 * sim.Second,
		EchoInterval:        250 * sim.Millisecond,
		FallbackAfter:       30 * sim.Second,
		TokenBurstSec:       1.0,
		QuotaWindow:         60 * sim.Second,
		UtilThreshold:       0.95,
	}
}

// AffordableLevel maps a sender's waiting time to the highest request
// priority level it can pay for under the Figure 15 token bucket — the
// sender-side mirror of the access router's limiter. A sender that has
// waited ~1 s can afford level 10 (cost 512), reproducing the §6.3.1
// behaviour.
func (c Config) AffordableLevel(waited sim.Time) uint8 {
	tokens := c.TokenRatePerSec * waited.Seconds()
	if tokens > c.TokenDepth {
		tokens = c.TokenDepth
	}
	var level uint8
	for level < c.MaxPrioLevel {
		cost := float64(uint64(1) << level) // cost of level+1 = 2^level
		if cost > tokens {
			break
		}
		level++
	}
	return level
}
