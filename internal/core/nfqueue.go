package core

import (
	"math/rand/v2"

	"netfence/internal/aqm"
	"netfence/internal/fq"
	"netfence/internal/netsim"
	"netfence/internal/obs"
	"netfence/internal/packet"
	"netfence/internal/queue"
	"netfence/internal/sim"
)

// nfQueue is a NetFence router's per-link queue with the three channels
// of Figure 2:
//
//   - request: strict priority by level, hard-capped at RequestCapFrac of
//     the link capacity via a byte-credit bucket (§4.2);
//   - regular: RED with the Figure 3 parameters, optionally replaced by
//     per-source-AS DRR when the §4.5 compromised-AS fallback engages;
//   - legacy: DropTail, served only when the other channels are idle.
type nfQueue struct {
	cfg  *Config
	rate int64

	// Request channel: one FIFO ring per priority level.
	req      []queue.Ring
	reqBytes int
	reqLimit int
	reqStats queue.Stats

	// Credit bucket metering the request channel's capacity share,
	// in bytes.
	credit     float64
	creditMax  float64
	creditRate float64 // bytes per second
	creditAt   sim.Time

	// Regular channel.
	red        *aqm.RED
	fallback   *fq.HDRR
	fbLastDrop sim.Time
	// fbDropByAS attributes fallback-mode congestion to source ASes, so
	// feedback stamping punishes only the ASes actually overflowing
	// their per-AS queues (§4.5).
	fbDropByAS map[packet.ASID]sim.Time
	fbLimit    int
	fbClock    func() sim.Time

	// Legacy channel.
	legacy *aqm.DropTail

	// verify, when set, authenticates packets on enqueue (Passport);
	// failures are dropped.
	verify      func(p *packet.Packet) bool
	verifyFails uint64

	// release recycles packets the queue drops internally (displaced
	// request-channel victims); nil leaves them to the garbage collector.
	release func(p *packet.Packet)

	// cells is the observability counter store — the owning replica's
	// shared cells once protect() wires the queue onto a link, a private
	// scratch array for directly-constructed test queues.
	cells obs.Cells
	// net and label serve the flight recorder (nil net = untraced).
	net      *netsim.Network
	label    string
	lastDrop string
	hwm      int
}

func newNFQueue(cfg *Config, rateBps int64, rng *rand.Rand) *nfQueue {
	redCfg := aqm.DefaultRED(rateBps)
	reqLimit := redCfg.LimitBytes / 20
	if reqLimit < 8_000 {
		reqLimit = 8_000
	}
	q := &nfQueue{
		cfg:      cfg,
		rate:     rateBps,
		req:      make([]queue.Ring, int(cfg.MaxPrioLevel)+1),
		reqLimit: reqLimit,
		// The burst must cover full-size packets: regular packets with
		// invalid feedback are demoted onto this channel (§4.4).
		creditMax:  2 * packet.SizeData,
		creditRate: cfg.RequestCapFrac * float64(rateBps) / 8,
		red:        aqm.NewRED(redCfg, rng),
		fbLimit:    redCfg.LimitBytes,
		legacy:     aqm.NewDropTail(redCfg.LimitBytes / 10),
		cells:      obs.NewCells(),
	}
	q.credit = q.creditMax
	return q
}

// enableFallback swaps the regular channel to per-source-AS fair queuing
// (§4.5), migrating any queued packets.
func (q *nfQueue) enableFallback(now sim.Time, clock func() sim.Time) {
	if q.fallback != nil {
		return
	}
	q.fallback = fq.NewHDRR(fq.BySourceAS, fq.BySender, packet.SizeData, q.fbLimit)
	q.fallback.Release = q.release
	q.fbDropByAS = make(map[packet.ASID]sim.Time)
	q.fbClock = clock
	q.fallback.OnDrop = func(p *packet.Packet) {
		t := q.fbClock()
		q.fbLastDrop = t
		q.fbDropByAS[p.SrcAS] = t
		q.cells.Add(obs.QueueDropRegular, 1)
		if q.net != nil && q.net.Rec.Sampled(uint32(p.Flow)) {
			q.net.Rec.Record(int64(t), uint32(p.Flow), q.label, obs.HopDrop, "fq-evict")
		}
	}
	for {
		p, _ := q.red.Dequeue(now)
		if p == nil {
			break
		}
		q.fallback.Enqueue(p, now)
	}
}

// lastCongestedForAS reports the most recent congestion instant charged
// to an AS while the fallback is active.
func (q *nfQueue) lastCongestedForAS(as packet.ASID) (sim.Time, bool) {
	t, ok := q.fbDropByAS[as]
	return t, ok
}

// fallbackActive reports whether per-AS queuing is engaged.
func (q *nfQueue) fallbackActive() bool { return q.fallback != nil }

// Enqueue routes the packet to its channel, keeping the backlog
// histogram and high-water mark on admission.
func (q *nfQueue) Enqueue(p *packet.Packet, now sim.Time) bool {
	ok := q.enqueue(p, now)
	if ok {
		b := q.Bytes()
		q.cells.ObserveBacklog(uint64(b))
		if b > q.hwm {
			q.hwm = b
		}
	}
	return ok
}

// enqueue routes the packet to its channel.
func (q *nfQueue) enqueue(p *packet.Packet, now sim.Time) bool {
	// §4.4 demotion: a "regular" packet that no access router ever
	// stamped carries no verifiable congestion policing feedback.
	// Senders in legacy (non-deploying) ASes bypass policing entirely,
	// so their claim to the regular channel is unenforceable — rewrite
	// the header to legacy and serve them best-effort. (Packets that DO
	// present credentials are authenticated below and dropped on
	// forgery; absence of credentials is indistinguishable from a
	// legacy host and must not be punished harder than best-effort.)
	// "Never stamped" is the all-zero feedback element: any access
	// stamp fills the MAC and token fields with CMAC output, so a
	// false demotion needs both truncated MACs to be zero (~2^-64).
	if p.Kind == packet.KindRegular && p.FB == (packet.Feedback{}) && !p.MFB.Present {
		p.Kind = packet.KindLegacy
		q.cells.Add(obs.CoreDemotedLegacy, 1)
		if q.net != nil && q.net.Rec.Sampled(uint32(p.Flow)) {
			q.net.Rec.Record(int64(now), uint32(p.Flow), q.label, obs.HopDemote, "unstamped-regular->legacy")
		}
	}
	// Legacy traffic carries no Passport trailer either: skip source
	// authentication; it rides the best-effort channel regardless.
	legacy := p.Kind != packet.KindRequest && p.Kind != packet.KindRegular
	if !legacy && q.verify != nil && !q.verify(p) {
		q.verifyFails++
		q.cells.Add(obs.CoreMACFail, 1)
		q.lastDrop = "mac-fail"
		return false
	}
	switch p.Kind {
	case packet.KindRequest:
		return q.enqueueRequest(p, now)
	case packet.KindRegular:
		if q.fallback != nil {
			ok := q.fallback.Enqueue(p, now)
			if !ok {
				q.fbLastDrop = now
				q.lastDrop = "fq-full"
			}
			return ok
		}
		ok := q.red.Enqueue(p, now)
		if !ok {
			q.cells.Add(obs.QueueDropRegular, 1)
			q.lastDrop = q.red.LastDropReason()
		}
		return ok
	default:
		ok := q.legacy.Enqueue(p, now)
		if !ok {
			q.cells.Add(obs.QueueDropLegacy, 1)
			q.lastDrop = "tail"
		}
		return ok
	}
}

// enqueueRequest appends to the packet's priority level, displacing
// lower-priority packets when the channel is full.
func (q *nfQueue) enqueueRequest(p *packet.Packet, now sim.Time) bool {
	lvl := int(p.Prio)
	if lvl >= len(q.req) {
		lvl = len(q.req) - 1
	}
	for q.reqBytes+int(p.Size) > q.reqLimit {
		// Evict from the lowest occupied level below the newcomer.
		low := -1
		for i := 0; i < lvl; i++ {
			if q.req[i].Len() > 0 {
				low = i
				break
			}
		}
		if low < 0 {
			q.reqStats.Dropped++
			q.reqStats.DroppedBytes += uint64(p.Size)
			q.cells.Add(obs.QueueDropRequest, 1)
			q.lastDrop = "request-full"
			return false
		}
		victim := q.req[low].PopTail()
		q.reqBytes -= int(victim.Size)
		q.reqStats.Dropped++
		q.reqStats.DroppedBytes += uint64(victim.Size)
		q.cells.Add(obs.QueueDropRequest, 1)
		if q.net != nil && q.net.Rec.Sampled(uint32(victim.Flow)) {
			q.net.Rec.Record(int64(now), uint32(victim.Flow), q.label, obs.HopDrop, "request-evict")
		}
		if q.release != nil {
			q.release(victim)
		}
	}
	p.EnqueuedAt = now
	q.req[lvl].Push(p)
	q.reqBytes += int(p.Size)
	q.reqStats.Enqueued++
	return true
}

func (q *nfQueue) refillCredit(now sim.Time) {
	if now > q.creditAt {
		q.credit += q.creditRate * (now - q.creditAt).Seconds()
		if q.credit > q.creditMax {
			q.credit = q.creditMax
		}
	}
	q.creditAt = now
}

// peekRequest returns the highest-priority queued request.
func (q *nfQueue) peekRequest() *packet.Packet {
	for i := len(q.req) - 1; i >= 0; i-- {
		if p := q.req[i].Peek(); p != nil {
			return p
		}
	}
	return nil
}

func (q *nfQueue) popRequest() *packet.Packet {
	for i := len(q.req) - 1; i >= 0; i-- {
		if q.req[i].Len() > 0 {
			p := q.req[i].Pop()
			q.reqBytes -= int(p.Size)
			q.reqStats.Dequeued++
			q.reqStats.DequeuedBytes += uint64(p.Size)
			return p
		}
	}
	return nil
}

// Dequeue serves request packets within their capacity share, then
// regular, then legacy. When only requests are queued and the credit
// bucket is empty, it returns a retry hint — the request channel is a
// hard (non-work-conserving) cap, so request floods cannot seize the
// whole link even when it is otherwise idle.
func (q *nfQueue) Dequeue(now sim.Time) (*packet.Packet, sim.Time) {
	q.refillCredit(now)
	if head := q.peekRequest(); head != nil && q.credit >= float64(head.Size) {
		q.credit -= float64(head.Size)
		return q.popRequest(), 0
	}
	if q.fallback != nil {
		if p, _ := q.fallback.Dequeue(now); p != nil {
			return p, 0
		}
	} else if p, _ := q.red.Dequeue(now); p != nil {
		return p, 0
	}
	if p, _ := q.legacy.Dequeue(now); p != nil {
		return p, 0
	}
	if head := q.peekRequest(); head != nil {
		need := float64(head.Size) - q.credit
		wait := sim.Time(need / q.creditRate * float64(sim.Second))
		if wait < sim.Microsecond {
			wait = sim.Microsecond
		}
		return nil, now + wait
	}
	return nil, 0
}

// Len returns total queued packets.
func (q *nfQueue) Len() int {
	n := q.legacy.Len()
	if q.fallback != nil {
		n += q.fallback.Len()
	} else {
		n += q.red.Len()
	}
	for i := range q.req {
		n += q.req[i].Len()
	}
	return n
}

// Bytes returns total queued bytes.
func (q *nfQueue) Bytes() int {
	b := q.reqBytes + q.legacy.Bytes()
	if q.fallback != nil {
		b += q.fallback.Bytes()
	} else {
		b += q.red.Bytes()
	}
	return b
}

// Stats returns counters aggregated over all channels. (Accumulated
// without intermediate slices: detectors poll stats every tick.)
func (q *nfQueue) Stats() queue.Stats {
	s := q.RegularStats()
	s = addStats(s, q.reqStats)
	s = addStats(s, q.legacy.Stats())
	s.Dropped += q.verifyFails
	return s
}

func addStats(s, t queue.Stats) queue.Stats {
	s.Enqueued += t.Enqueued
	s.Dequeued += t.Dequeued
	s.Dropped += t.Dropped
	s.DequeuedBytes += t.DequeuedBytes
	s.DroppedBytes += t.DroppedBytes
	return s
}

// RegularStats returns the regular channel's counters — the loss signal
// of Figure 19's attack detector.
func (q *nfQueue) RegularStats() queue.Stats {
	s := q.red.Stats()
	if q.fallback != nil {
		s = addStats(s, q.fallback.Stats())
	}
	return s
}

// RequestStats returns the request channel's counters.
func (q *nfQueue) RequestStats() queue.Stats { return q.reqStats }

// HighWater returns the highest total backlog in bytes the queue
// reached.
func (q *nfQueue) HighWater() int { return q.hwm }

// LastDropReason reports why the last Enqueue refused a packet.
func (q *nfQueue) LastDropReason() string { return q.lastDrop }

// lastCongested reports the most recent congestion instant of the
// regular channel.
func (q *nfQueue) lastCongested() (sim.Time, bool) {
	if q.fallback != nil {
		return q.fbLastDrop, q.fbLastDrop > 0
	}
	return q.red.LastCongested()
}
