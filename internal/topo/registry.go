package topo

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"netfence/internal/sim"
)

// BuildOptions carries optional construction parameters to a Builder.
type BuildOptions struct {
	// Population overrides the builder's default total sender population
	// (0 = the builder's default). Builders must reject populations they
	// cannot realize (e.g. a parking lot population not divisible by 3).
	Population int
	// Config is a builder-specific configuration value whose concrete
	// type is defined by the registered builder (DumbbellConfig for
	// "dumbbell", StarConfig for "star", ...). nil selects the builder's
	// defaults. Builders must reject configuration types they do not
	// understand. When both Config and Population are set, Population
	// wins.
	Config any
}

// Builder constructs a role-tagged topology graph on eng.
type Builder func(eng *sim.Engine, opts BuildOptions) (*Graph, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// Canonical normalizes a registry name: whitespace trimmed, lower-cased.
func Canonical(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// Register makes a topology constructible by name through Build. The
// in-tree topologies self-register from an init function ("dumbbell",
// "parkinglot", "star", "random-as"); third-party topologies may
// register under any unclaimed name. Register panics on an empty name, a
// nil builder, or a duplicate registration — all programmer errors.
func Register(name string, b Builder) {
	key := Canonical(name)
	if key == "" {
		panic("topo: Register with empty name")
	}
	if b == nil {
		panic(fmt.Sprintf("topo: Register(%q) with nil builder", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("topo: Register(%q) called twice", key))
	}
	registry[key] = b
}

// Build resolves name in the registry and constructs the graph on eng.
func Build(name string, eng *sim.Engine, opts BuildOptions) (*Graph, error) {
	regMu.RLock()
	b := registry[Canonical(name)]
	regMu.RUnlock()
	if b == nil {
		return nil, fmt.Errorf("topo: unknown topology %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	g, err := b(eng, opts)
	if err != nil {
		return nil, fmt.Errorf("topo %q: %w", Canonical(name), err)
	}
	return g.Build(), nil
}

// Names returns the sorted canonical names of every registered topology.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
