package topo

import (
	"errors"
	"fmt"

	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// Partitioning errors, named so callers can fail fast with context
// instead of silently clamping (see Graph.Partition).
var (
	// ErrTooManyShards: the requested shard count exceeds the number of
	// ASes — ASes are atomic (an intra-AS link must never be cut).
	ErrTooManyShards = errors.New("topo: shard count exceeds AS count")
	// ErrSplitIntraAS: a partition assignment placed the two ends of an
	// intra-AS link in different shards.
	ErrSplitIntraAS = errors.New("topo: partition splits an intra-AS link")
	// ErrNoLookahead: a cut link has non-positive propagation delay, so
	// no conservative synchronization window exists.
	ErrNoLookahead = errors.New("topo: cut link with non-positive delay admits no lookahead")
)

// Partition is an AS-atomic split of a topology into shards for
// conservative parallel simulation. Shard indices ascend with AS
// declaration order — the property that keeps cross-shard tie-breaking
// consistent with the single-engine setup order.
type Partition struct {
	// Shards is the shard count.
	Shards int
	// ShardOfAS maps every AS to its shard.
	ShardOfAS map[packet.ASID]int
	// ShardOfNode maps node ID to shard, parallel to Graph.Net.Nodes.
	ShardOfNode []int32
	// CutLinks lists the links whose From and To nodes live in different
	// shards, in link-declaration order. Only inter-AS links can be cut.
	CutLinks []*netsim.Link
	// Lookahead is the minimum propagation delay over the cut links —
	// the conservative synchronization window.
	Lookahead sim.Time
}

// Partition splits the graph's ASes into the requested number of shards:
// contiguous runs of ASes in declaration order, weighted by node count,
// with every bottleneck link's From-side AS merged into one atom. That
// last rule is role awareness with two payoffs: inter-AS bottleneck
// links become cut links (their delay funds the lookahead, and the
// congested queue gets a dedicated shard boundary), while co-locating
// all bottleneck transmitters keeps their randomized queue disciplines
// on a single engine stream — the condition under which sharded results
// reproduce the single-engine run bit for bit.
//
// It fails fast with ErrTooManyShards when shards exceeds the AS count
// (after bottleneck merging), and validates its own output against
// ErrSplitIntraAS and ErrNoLookahead.
func (g *Graph) Partition(shards int) (*Partition, error) {
	if !g.built {
		return nil, fmt.Errorf("topo: Partition before Build")
	}
	if shards < 1 {
		return nil, fmt.Errorf("topo: shard count %d must be at least 1", shards)
	}
	ases := g.AllASes() // node-declaration order
	// Atoms: one per AS, except every bottleneck From-AS joins the first
	// bottleneck From-AS's atom.
	atomOf := make(map[packet.ASID]int, len(ases))
	var weights []int
	bnAtom := -1
	bnASes := map[packet.ASID]bool{}
	for _, l := range g.bottlenecks {
		bnASes[l.From.AS] = true
	}
	for _, as := range ases {
		if bnASes[as] && bnAtom >= 0 {
			atomOf[as] = bnAtom
			continue
		}
		idx := len(weights)
		atomOf[as] = idx
		weights = append(weights, 0)
		if bnASes[as] {
			bnAtom = idx
		}
	}
	if shards > len(weights) {
		return nil, fmt.Errorf("%w: %d shards requested, topology has %d partitionable ASes",
			ErrTooManyShards, shards, len(weights))
	}
	// Atom weight is modeled-sender weight, not raw node count: a fleet
	// attachment point standing in for N senders pulls its shard's quota
	// as if the N hosts were materialized, so the load balance reflects
	// the traffic the atoms will actually generate. Weight-1 nodes (all
	// pre-fleet topologies) make this the historical node count.
	for _, nd := range g.Net.Nodes {
		weights[atomOf[nd.AS]] += nd.SenderWeight()
	}
	total := 0
	for _, w := range weights {
		total += w
	}

	// Linear partition: walk atoms in order, starting the next shard
	// when the cumulative weight crosses its quota — or when the atoms
	// left only just cover the shards still empty. Contiguity keeps
	// shard indices monotone in declaration order.
	shardOfAtom := make([]int, len(weights))
	cum, shard, curAtoms := 0, 0, 0
	for i, w := range weights {
		remAtoms := len(weights) - i
		mustLeave := remAtoms <= shards-shard-1
		wantLeave := cum*shards >= (shard+1)*total
		if curAtoms > 0 && shard+1 < shards && (mustLeave || wantLeave) {
			shard++
			curAtoms = 0
		}
		shardOfAtom[i] = shard
		curAtoms++
		cum += w
	}

	p := &Partition{
		Shards:      shards,
		ShardOfAS:   make(map[packet.ASID]int, len(ases)),
		ShardOfNode: make([]int32, len(g.Net.Nodes)),
	}
	for _, as := range ases {
		p.ShardOfAS[as] = shardOfAtom[atomOf[as]]
	}
	for _, nd := range g.Net.Nodes {
		p.ShardOfNode[nd.ID] = int32(p.ShardOfAS[nd.AS])
	}
	for _, l := range g.Net.Links {
		fs, ts := p.ShardOfNode[l.From.ID], p.ShardOfNode[l.To.ID]
		if fs == ts {
			continue
		}
		if l.From.AS == l.To.AS {
			return nil, fmt.Errorf("%w: link %s -> %s inside AS %d crosses shards %d/%d",
				ErrSplitIntraAS, l.From, l.To, l.From.AS, fs, ts)
		}
		if l.Delay <= 0 {
			return nil, fmt.Errorf("%w: cut link %s -> %s has delay %v",
				ErrNoLookahead, l.From, l.To, l.Delay)
		}
		if p.Lookahead == 0 || l.Delay < p.Lookahead {
			p.Lookahead = l.Delay
		}
		p.CutLinks = append(p.CutLinks, l)
	}
	if len(p.CutLinks) == 0 {
		// A single shard (or a topology whose ASes all collapsed into
		// one atom) has no cut links; any positive window works. Use a
		// conventional 1 ms so a degenerate 1-shard coordinator run
		// still terminates.
		p.Lookahead = sim.Millisecond
	}
	return p, nil
}

// MaxShards returns the number of independently partitionable units the
// graph offers — the AS count after bottleneck-From merging, the upper
// bound Partition accepts.
func (g *Graph) MaxShards() int {
	bnASes := map[packet.ASID]bool{}
	for _, l := range g.bottlenecks {
		bnASes[l.From.AS] = true
	}
	merged := 0
	if len(bnASes) > 0 {
		merged = len(bnASes) - 1
	}
	return len(g.AllASes()) - merged
}
