package topo

import (
	"fmt"

	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// StarConfig parameterizes the single-AS hotspot topology: every sender
// lives in one source AS behind one access router Ra, whose uplink to
// the victim's access router is the bottleneck. It is the smallest
// topology where a single NetFence access router polices the entire
// sender population — the stress case for per-(sender, bottleneck)
// rate-limiter state (§4.3).
type StarConfig struct {
	// Senders is the number of sender hosts in the source AS.
	Senders int
	// ColluderASes adds destination-side ASes with one colluder host
	// each, reachable only across the bottleneck.
	ColluderASes int
	// BottleneckBps is the Ra->Rv uplink capacity.
	BottleneckBps int64
	// EdgeBps is the capacity of all non-bottleneck links.
	EdgeBps int64
	// Delay is the per-link propagation delay.
	Delay sim.Time
}

// DefaultStar mirrors the dumbbell's link parameters at a configurable
// population.
func DefaultStar(senders int, bottleneckBps int64) StarConfig {
	return StarConfig{
		Senders:       senders,
		BottleneckBps: bottleneckBps,
		EdgeBps:       10_000_000_000,
		Delay:         10 * sim.Millisecond,
	}
}

// Star is the constructed hotspot topology.
type Star struct {
	// G is the underlying role-tagged graph (one sender group).
	G   *Graph
	Net *netsim.Network

	Senders []*netsim.Node
	// Access is the single source-AS access router.
	Access *netsim.Node
	// Bottleneck is the Access->VictimAccess uplink.
	Bottleneck *netsim.Link

	Victim       *netsim.Node
	VictimAccess *netsim.Node

	Colluders      []*netsim.Node
	ColluderAccess []*netsim.Node
}

// NewStar builds the topology and computes routes.
func NewStar(eng *sim.Engine, cfg StarConfig) *Star {
	g := NewGraph(eng)
	st := &Star{G: g, Net: g.Net}

	srcAS := packet.ASID(1)
	st.Access = g.AccessRouter(0, "Ra", srcAS)
	for i := 0; i < cfg.Senders; i++ {
		h := g.Sender(0, fmt.Sprintf("s%d", i), srcAS)
		g.Link(h, st.Access, cfg.EdgeBps, cfg.Delay)
		st.Senders = append(st.Senders, h)
	}

	victimAS := packet.ASID(2000)
	st.VictimAccess = g.AccessRouter(0, "Rv", victimAS)
	st.Bottleneck, _ = g.BottleneckLink(st.Access, st.VictimAccess, cfg.BottleneckBps, cfg.Delay)
	st.Victim = g.Victim(0, "victim", victimAS)
	g.Link(st.VictimAccess, st.Victim, cfg.EdgeBps, cfg.Delay)

	for i := 0; i < cfg.ColluderASes; i++ {
		as := packet.ASID(3000 + i)
		rc := g.AccessRouter(0, fmt.Sprintf("Rc%d", i), as)
		g.Link(st.VictimAccess, rc, cfg.EdgeBps, cfg.Delay)
		c := g.Colluder(0, fmt.Sprintf("c%d", i), as)
		g.Link(rc, c, cfg.EdgeBps, cfg.Delay)
		st.ColluderAccess = append(st.ColluderAccess, rc)
		st.Colluders = append(st.Colluders, c)
	}

	g.Build()
	return st
}

// AllASes returns every AS identifier in the topology.
func (st *Star) AllASes() []packet.ASID { return st.G.AllASes() }
