package topo

import (
	"netfence/internal/defense"
	"netfence/internal/packet"
)

// Plan selects which ASes participate in a deployment — the paper's
// partial/incremental-deployment axis. The zero value is full
// deployment. Non-participating ("legacy") ASes keep forwarding traffic
// but get no policing access routers and no host shims, so their
// packets carry no congestion policing feedback and a NetFence
// bottleneck demotes them to the best-effort legacy channel.
type Plan struct {
	// Legacy marks ASes that do NOT deploy the defense.
	Legacy map[packet.ASID]bool
}

// Participates reports whether an AS deploys the defense under the plan.
func (p Plan) Participates(as packet.ASID) bool { return !p.Legacy[as] }

// Fraction reports the deployed fraction of the given source ASes under
// the plan (1 when srcASes is empty).
func (p Plan) Fraction(srcASes []packet.ASID) float64 {
	if len(srcASes) == 0 {
		return 1
	}
	n := 0
	for _, as := range srcASes {
		if p.Participates(as) {
			n++
		}
	}
	return float64(n) / float64(len(srcASes))
}

// PlanFraction returns a Plan deploying the defense on round(f·n) of the
// n given source ASes. The participants are chosen at evenly spaced
// indices (deterministically, no RNG), so participation interleaves with
// AS declaration order instead of clustering on a prefix.
func PlanFraction(srcASes []packet.ASID, f float64) Plan {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	n := len(srcASes)
	m := int(f*float64(n) + 0.5)
	legacy := map[packet.ASID]bool{}
	for i, as := range srcASes {
		// i is selected when the cumulative quota floor(k·m/n) advances.
		if !(i*m/n < (i+1)*m/n) {
			legacy[as] = true
		}
	}
	return Plan{Legacy: legacy}
}

// Deploy installs a defense system across the graph under a deployment
// plan: every bottleneck link is protected, then per group (in
// declaration order) the participating access routers police and the
// participating hosts get the system's shim. deny is each group victim's
// receiver policy; senders and colluders accept everyone. Legacy ASes
// are skipped entirely — their traffic crosses the network undefended.
func (g *Graph) Deploy(s defense.System, deny defense.Policy, plan Plan) {
	for _, l := range g.bottlenecks {
		s.ProtectLink(l)
	}
	for i := range g.groups {
		grp := &g.groups[i]
		for _, r := range grp.Access {
			if plan.Participates(r.AS) {
				s.ProtectAccess(r)
			}
		}
		for _, h := range grp.Senders {
			if plan.Participates(h.AS) {
				s.AttachHost(h, defense.Policy{})
			}
		}
		if grp.Victim != nil && plan.Participates(grp.Victim.AS) {
			s.AttachHost(grp.Victim, deny)
		}
		for _, c := range grp.Colluders {
			if plan.Participates(c.AS) {
				s.AttachHost(c, defense.Policy{})
			}
		}
	}
}

// Deploy installs a defense system across the full dumbbell: the
// bottleneck link is protected, every access router polices, and every
// host gets the system's shim. deny is the victim's receiver policy;
// senders and colluders accept everyone.
func (d *Dumbbell) Deploy(s defense.System, deny defense.Policy) {
	d.G.Deploy(s, deny, Plan{})
}

// DeployPlan installs a defense system across the dumbbell under a
// partial-deployment plan.
func (d *Dumbbell) DeployPlan(s defense.System, deny defense.Policy, plan Plan) {
	d.G.Deploy(s, deny, plan)
}

// Deploy installs a defense system across the full parking lot,
// protecting both bottlenecks. deny is applied to every group's victim.
func (pl *ParkingLot) Deploy(s defense.System, deny defense.Policy) {
	pl.G.Deploy(s, deny, Plan{})
}

// DeployPlan installs a defense system across the parking lot under a
// partial-deployment plan.
func (pl *ParkingLot) DeployPlan(s defense.System, deny defense.Policy, plan Plan) {
	pl.G.Deploy(s, deny, plan)
}
