package topo

import "netfence/internal/defense"

// Deploy installs a defense system across the dumbbell: the bottleneck
// link is protected, every access router polices, and every host gets the
// system's shim. deny is the victim's receiver policy; senders and
// colluders accept everyone.
func (d *Dumbbell) Deploy(s defense.System, deny defense.Policy) {
	s.ProtectLink(d.Bottleneck)
	for _, ra := range d.SrcAccess {
		s.ProtectAccess(ra)
	}
	s.ProtectAccess(d.VictimAccess)
	for _, rc := range d.ColluderAccess {
		s.ProtectAccess(rc)
	}
	for _, h := range d.Senders {
		s.AttachHost(h, defense.Policy{})
	}
	s.AttachHost(d.Victim, deny)
	for _, c := range d.Colluders {
		s.AttachHost(c, defense.Policy{})
	}
}

// Deploy installs a defense system across the parking lot, protecting
// both bottlenecks. deny is applied to every group's victim.
func (pl *ParkingLot) Deploy(s defense.System, deny defense.Policy) {
	s.ProtectLink(pl.L1)
	s.ProtectLink(pl.L2)
	for g := range pl.Groups {
		grp := &pl.Groups[g]
		for _, ra := range grp.Access {
			s.ProtectAccess(ra)
		}
		for _, h := range grp.Senders {
			s.AttachHost(h, defense.Policy{})
		}
		s.AttachHost(grp.Victim, deny)
		for _, c := range grp.Colluders {
			s.AttachHost(c, defense.Policy{})
		}
	}
}
