package topo

import (
	"errors"
	"testing"

	"netfence/internal/sim"
)

func TestPartitionDumbbell(t *testing.T) {
	eng := sim.New(1)
	d := NewDumbbell(eng, DefaultDumbbell(20, 400_000))
	// 13 ASes: transit, 10 sources, victim, plus none — MaxShards is 13.
	if got := d.G.MaxShards(); got != 12 {
		t.Fatalf("MaxShards = %d, want 12", got)
	}
	p, err := d.G.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards != 4 {
		t.Fatalf("Shards = %d", p.Shards)
	}
	// AS-atomicity and monotone shard indices over declaration order.
	last := -1
	seen := map[int]bool{}
	for _, as := range d.G.AllASes() {
		s := p.ShardOfAS[as]
		if s < last {
			t.Fatalf("shard indices not monotone in AS declaration order: AS %d -> %d after %d", as, s, last)
		}
		last = s
		seen[s] = true
	}
	for s := 0; s < 4; s++ {
		if !seen[s] {
			t.Fatalf("shard %d received no AS", s)
		}
	}
	// Every cut link crosses ASes; the bottleneck (intra-transit) is not
	// cut; lookahead is the common 10 ms link delay.
	for _, l := range p.CutLinks {
		if l.From.AS == l.To.AS {
			t.Fatalf("cut link %s -> %s is intra-AS", l.From, l.To)
		}
	}
	if p.ShardOfNode[d.Rbl.ID] != p.ShardOfNode[d.Rbr.ID] {
		t.Fatal("bottleneck endpoints split across shards")
	}
	if p.Lookahead != 10*sim.Millisecond {
		t.Fatalf("Lookahead = %v, want 10ms", p.Lookahead)
	}
}

func TestPartitionTooManyShards(t *testing.T) {
	eng := sim.New(1)
	d := NewDumbbell(eng, DefaultDumbbell(4, 400_000))
	// 4 senders -> 4 source ASes + transit + victim = 6 ASes.
	if _, err := d.G.Partition(7); !errors.Is(err, ErrTooManyShards) {
		t.Fatalf("Partition(7) err = %v, want ErrTooManyShards", err)
	}
	if _, err := d.G.Partition(0); err == nil {
		t.Fatal("Partition(0) should fail")
	}
}

func TestPartitionStarBottleneckIsCut(t *testing.T) {
	eng := sim.New(1)
	st := NewStar(eng, DefaultStar(8, 400_000))
	p, err := st.G.Partition(2)
	if err != nil {
		t.Fatal(err)
	}
	// The star's bottleneck crosses ASes (source AS -> victim AS): role
	// awareness must make it a cut link.
	found := false
	for _, l := range p.CutLinks {
		if l == st.Bottleneck {
			found = true
		}
	}
	if !found {
		t.Fatal("star bottleneck is inter-AS but was not a cut link")
	}
}

func TestPartitionSingleShard(t *testing.T) {
	eng := sim.New(1)
	st := NewStar(eng, DefaultStar(4, 400_000))
	p, err := st.G.Partition(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.CutLinks) != 0 || p.Lookahead <= 0 {
		t.Fatalf("single shard: cuts=%d lookahead=%v", len(p.CutLinks), p.Lookahead)
	}
}
