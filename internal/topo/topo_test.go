package topo

import (
	"testing"

	"netfence/internal/sim"
)

func TestDumbbellStructure(t *testing.T) {
	eng := sim.New(1)
	cfg := DefaultDumbbell(100, 10_000_000)
	cfg.ColluderASes = 9
	d := NewDumbbell(eng, cfg)
	if len(d.Senders) != 100 {
		t.Fatalf("senders = %d", len(d.Senders))
	}
	if len(d.SrcAccess) != 10 || len(d.Colluders) != 9 {
		t.Fatalf("access=%d colluders=%d", len(d.SrcAccess), len(d.Colluders))
	}
	// Every sender routes to the victim through the bottleneck.
	for _, s := range d.Senders {
		path := d.Net.PathLinks(s.ID, d.Victim.ID)
		found := false
		for _, l := range path {
			if l == d.Bottleneck {
				found = true
			}
		}
		if !found {
			t.Fatalf("sender %v does not cross the bottleneck", s)
		}
	}
	// Sender-to-victim path: host->Ra->Rbl->Rbr->Rv->victim = 5 links.
	if p := d.Net.PathLinks(d.Senders[0].ID, d.Victim.ID); len(p) != 5 {
		t.Fatalf("path length = %d, want 5", len(p))
	}
	// Colluder traffic also crosses the bottleneck.
	for _, c := range d.Colluders {
		path := d.Net.PathLinks(d.Senders[0].ID, c.ID)
		found := false
		for _, l := range path {
			if l == d.Bottleneck {
				found = true
			}
		}
		if !found {
			t.Fatal("sender->colluder path misses the bottleneck")
		}
	}
}

func TestDumbbellASAssignment(t *testing.T) {
	eng := sim.New(1)
	d := NewDumbbell(eng, DefaultDumbbell(40, 10_000_000))
	// 10 src ASes + transit + victim AS.
	if got := len(d.AllASes()); got != 12 {
		t.Fatalf("AS count = %d, want 12", got)
	}
	// Hosts in the same AS share their access router.
	a0 := d.Senders[0]
	a1 := d.Senders[1]
	if a0.AS != a1.AS {
		t.Fatalf("first two senders in different ASes: %d %d", a0.AS, a1.AS)
	}
}

func TestDumbbellSmallSenderCount(t *testing.T) {
	eng := sim.New(1)
	d := NewDumbbell(eng, DefaultDumbbell(4, 1_000_000))
	if len(d.Senders) != 4 || len(d.SrcAccess) != 4 {
		t.Fatalf("senders=%d access=%d", len(d.Senders), len(d.SrcAccess))
	}
}

func TestParkingLotPaths(t *testing.T) {
	eng := sim.New(1)
	pl := NewParkingLot(eng, DefaultParkingLot(30, 10_000_000, 10_000_000))
	crosses := func(src, dst int32, l *struct{}) {}
	_ = crosses
	has := func(path []*struct{}) {}
	_ = has

	check := func(g int, wantL1, wantL2 bool) {
		s := pl.Groups[g].Senders[0]
		v := pl.Groups[g].Victim
		path := pl.Net.PathLinks(s.ID, v.ID)
		l1, l2 := false, false
		for _, l := range path {
			if l == pl.L1 {
				l1 = true
			}
			if l == pl.L2 {
				l2 = true
			}
		}
		if l1 != wantL1 || l2 != wantL2 {
			t.Fatalf("group %d: crosses L1=%v L2=%v, want %v %v", g, l1, l2, wantL1, wantL2)
		}
	}
	check(0, true, true)  // A
	check(1, false, true) // B
	check(2, true, false) // C
}

func TestParkingLotGroupSizes(t *testing.T) {
	eng := sim.New(1)
	pl := NewParkingLot(eng, DefaultParkingLot(30, 10_000_000, 20_000_000))
	for g := 0; g < 3; g++ {
		if got := len(pl.Groups[g].Senders); got != 30 {
			t.Fatalf("group %d senders = %d", g, got)
		}
		if len(pl.Groups[g].Colluders) != 3 {
			t.Fatalf("group %d colluders = %d", g, len(pl.Groups[g].Colluders))
		}
	}
	if pl.L1.Rate != 10_000_000 || pl.L2.Rate != 20_000_000 {
		t.Fatal("bottleneck rates wrong")
	}
}
