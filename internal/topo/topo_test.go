package topo

import (
	"testing"

	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

func TestDumbbellStructure(t *testing.T) {
	eng := sim.New(1)
	cfg := DefaultDumbbell(100, 10_000_000)
	cfg.ColluderASes = 9
	d := NewDumbbell(eng, cfg)
	if len(d.Senders) != 100 {
		t.Fatalf("senders = %d", len(d.Senders))
	}
	if len(d.SrcAccess) != 10 || len(d.Colluders) != 9 {
		t.Fatalf("access=%d colluders=%d", len(d.SrcAccess), len(d.Colluders))
	}
	// Every sender routes to the victim through the bottleneck.
	for _, s := range d.Senders {
		path := d.Net.PathLinks(s.ID, d.Victim.ID)
		found := false
		for _, l := range path {
			if l == d.Bottleneck {
				found = true
			}
		}
		if !found {
			t.Fatalf("sender %v does not cross the bottleneck", s)
		}
	}
	// Sender-to-victim path: host->Ra->Rbl->Rbr->Rv->victim = 5 links.
	if p := d.Net.PathLinks(d.Senders[0].ID, d.Victim.ID); len(p) != 5 {
		t.Fatalf("path length = %d, want 5", len(p))
	}
	// Colluder traffic also crosses the bottleneck.
	for _, c := range d.Colluders {
		path := d.Net.PathLinks(d.Senders[0].ID, c.ID)
		found := false
		for _, l := range path {
			if l == d.Bottleneck {
				found = true
			}
		}
		if !found {
			t.Fatal("sender->colluder path misses the bottleneck")
		}
	}
}

func TestDumbbellASAssignment(t *testing.T) {
	eng := sim.New(1)
	d := NewDumbbell(eng, DefaultDumbbell(40, 10_000_000))
	// 10 src ASes + transit + victim AS.
	if got := len(d.AllASes()); got != 12 {
		t.Fatalf("AS count = %d, want 12", got)
	}
	// Hosts in the same AS share their access router.
	a0 := d.Senders[0]
	a1 := d.Senders[1]
	if a0.AS != a1.AS {
		t.Fatalf("first two senders in different ASes: %d %d", a0.AS, a1.AS)
	}
}

func TestDumbbellSmallSenderCount(t *testing.T) {
	eng := sim.New(1)
	d := NewDumbbell(eng, DefaultDumbbell(4, 1_000_000))
	if len(d.Senders) != 4 || len(d.SrcAccess) != 4 {
		t.Fatalf("senders=%d access=%d", len(d.Senders), len(d.SrcAccess))
	}
}

func TestParkingLotPaths(t *testing.T) {
	eng := sim.New(1)
	pl := NewParkingLot(eng, DefaultParkingLot(30, 10_000_000, 10_000_000))
	crosses := func(src, dst int32, l *struct{}) {}
	_ = crosses
	has := func(path []*struct{}) {}
	_ = has

	check := func(g int, wantL1, wantL2 bool) {
		s := pl.Groups[g].Senders[0]
		v := pl.Groups[g].Victim
		path := pl.Net.PathLinks(s.ID, v.ID)
		l1, l2 := false, false
		for _, l := range path {
			if l == pl.L1 {
				l1 = true
			}
			if l == pl.L2 {
				l2 = true
			}
		}
		if l1 != wantL1 || l2 != wantL2 {
			t.Fatalf("group %d: crosses L1=%v L2=%v, want %v %v", g, l1, l2, wantL1, wantL2)
		}
	}
	check(0, true, true)  // A
	check(1, false, true) // B
	check(2, true, false) // C
}

func TestParkingLotGroupSizes(t *testing.T) {
	eng := sim.New(1)
	pl := NewParkingLot(eng, DefaultParkingLot(30, 10_000_000, 20_000_000))
	for g := 0; g < 3; g++ {
		if got := len(pl.Groups[g].Senders); got != 30 {
			t.Fatalf("group %d senders = %d", g, got)
		}
		if len(pl.Groups[g].Colluders) != 3 {
			t.Fatalf("group %d colluders = %d", g, len(pl.Groups[g].Colluders))
		}
	}
	if pl.L1.Rate != 10_000_000 || pl.L2.Rate != 20_000_000 {
		t.Fatal("bottleneck rates wrong")
	}
}

func TestGraphRoles(t *testing.T) {
	eng := sim.New(1)
	cfg := DefaultDumbbell(40, 10_000_000)
	cfg.ColluderASes = 3
	d := NewDumbbell(eng, cfg)
	g := d.G
	if len(g.Bottlenecks()) != 1 || g.Bottlenecks()[0] != d.Bottleneck {
		t.Fatalf("bottleneck role lost: %v", g.Bottlenecks())
	}
	grps := g.Groups()
	if len(grps) != 1 {
		t.Fatalf("groups = %d", len(grps))
	}
	if len(grps[0].Senders) != 40 || grps[0].Victim != d.Victim || len(grps[0].Colluders) != 3 {
		t.Fatal("group roles do not match the dumbbell fields")
	}
	// Source ASes: the 10 sender ASes, not transit/victim/colluder ASes.
	src := g.SourceASes()
	if len(src) != 10 {
		t.Fatalf("source ASes = %d, want 10", len(src))
	}
	for _, as := range src {
		if as >= 1000 {
			t.Fatalf("non-source AS %d listed as source", as)
		}
	}
	// Parking lot: three groups, 15 source ASes.
	pl := NewParkingLot(sim.New(1), DefaultParkingLot(30, 10_000_000, 10_000_000))
	if n := len(pl.G.Groups()); n != 3 {
		t.Fatalf("parking-lot groups = %d", n)
	}
	if n := len(pl.G.SourceASes()); n != 15 {
		t.Fatalf("parking-lot source ASes = %d, want 15", n)
	}
	if n := len(pl.G.Bottlenecks()); n != 2 {
		t.Fatalf("parking-lot bottlenecks = %d", n)
	}
}

func TestPlanFraction(t *testing.T) {
	src := make([]packet.ASID, 10)
	for i := range src {
		src[i] = packet.ASID(i + 1)
	}
	for _, tc := range []struct {
		f    float64
		want int
	}{{0, 0}, {0.25, 3}, {0.5, 5}, {0.75, 8}, {1, 10}} {
		p := PlanFraction(src, tc.f)
		n := 0
		for _, as := range src {
			if p.Participates(as) {
				n++
			}
		}
		if n != tc.want {
			t.Fatalf("f=%v deployed %d ASes, want %d", tc.f, n, tc.want)
		}
		if got := p.Fraction(src); got != float64(tc.want)/10 {
			t.Fatalf("f=%v Fraction() = %v", tc.f, got)
		}
	}
	// Selection is spread, not a prefix: at 50% the participants must
	// not all be in the first half.
	p := PlanFraction(src, 0.5)
	firstHalf := 0
	for _, as := range src[:5] {
		if p.Participates(as) {
			firstHalf++
		}
	}
	if firstHalf == 5 {
		t.Fatal("fraction selection clustered on a prefix")
	}
	// Out-of-range fractions clamp.
	if n := len(PlanFraction(src, 7).Legacy); n != 0 {
		t.Fatalf("f>1 left %d legacy ASes", n)
	}
	// The zero Plan participates everywhere.
	if !(Plan{}).Participates(42) {
		t.Fatal("zero plan excluded an AS")
	}
}

func TestStarStructure(t *testing.T) {
	eng := sim.New(1)
	cfg := DefaultStar(8, 1_600_000)
	cfg.ColluderASes = 2
	st := NewStar(eng, cfg)
	if len(st.Senders) != 8 || len(st.Colluders) != 2 {
		t.Fatalf("senders=%d colluders=%d", len(st.Senders), len(st.Colluders))
	}
	// Single source AS: all senders share it and the one access router.
	if n := len(st.G.SourceASes()); n != 1 {
		t.Fatalf("source ASes = %d, want 1", n)
	}
	// Victim- and colluder-bound paths cross the bottleneck.
	for _, dst := range append([]*netsim.Node{st.Victim}, st.Colluders...) {
		path := st.Net.PathLinks(st.Senders[0].ID, dst.ID)
		found := false
		for _, l := range path {
			if l == st.Bottleneck {
				found = true
			}
		}
		if !found {
			t.Fatalf("path to %v misses the bottleneck", dst)
		}
	}
}

func TestRandomASStructure(t *testing.T) {
	eng := sim.New(1)
	cfg := DefaultRandomAS(20, 4_000_000)
	cfg.TransitASes = 6
	cfg.ExtraLinks = 3
	cfg.ColluderASes = 2
	cfg.GraphSeed = 42
	r, err := NewRandomAS(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Senders) != 20 {
		t.Fatalf("senders = %d", len(r.Senders))
	}
	if len(r.Transit) != 6 {
		t.Fatalf("transit = %d", len(r.Transit))
	}
	// ExtraLinks is exact: tree (5) + 3 extra core edges, duplex.
	isTransit := map[*netsim.Node]bool{}
	for _, tn := range r.Transit {
		isTransit[tn] = true
	}
	core := 0
	for _, l := range r.Net.Links {
		if isTransit[l.From] && isTransit[l.To] {
			core++
		}
	}
	if core != 2*(5+3) {
		t.Fatalf("core links = %d, want %d (5 tree + 3 extra, duplex)", core, 2*(5+3))
	}
	// Every victim- and colluder-bound path crosses the bottleneck exit.
	for _, s := range r.Senders {
		for _, dst := range append([]*netsim.Node{r.Victim}, r.Colluders...) {
			path := r.Net.PathLinks(s.ID, dst.ID)
			if path == nil {
				t.Fatalf("no route %v -> %v", s, dst)
			}
			found := false
			for _, l := range path {
				if l == r.Bottleneck {
					found = true
				}
			}
			if !found {
				t.Fatalf("path %v -> %v misses the bottleneck", s, dst)
			}
		}
	}
	// Same GraphSeed, same wiring; a different seed changes it (the
	// builder draws structure from GraphSeed, not the engine seed).
	b, _ := NewRandomAS(sim.New(99), cfg)
	if len(b.Net.Links) != len(r.Net.Links) {
		t.Fatal("wiring depends on the engine seed")
	}
	sig := func(x *RandomAS) string {
		s := ""
		for _, l := range x.Net.Links {
			s += l.From.Name + ">" + l.To.Name + ";"
		}
		return s
	}
	if sig(b) != sig(r) {
		t.Fatal("same GraphSeed produced different wiring")
	}
	cfg2 := cfg
	cfg2.GraphSeed = 43
	c, _ := NewRandomAS(sim.New(1), cfg2)
	if sig(c) == sig(r) {
		t.Fatal("different GraphSeed produced identical wiring (suspicious)")
	}
	if _, err := NewRandomAS(sim.New(1), RandomASConfig{}); err == nil {
		t.Fatal("zero-sender random graph accepted")
	}
}

func TestTopologyRegistryInternal(t *testing.T) {
	for _, want := range []string{"dumbbell", "parkinglot", "star", "random-as"} {
		found := false
		for _, n := range Names() {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry missing %q (have %v)", want, Names())
		}
	}
	// Population override reaches the builders.
	g, err := Build("dumbbell", sim.New(1), BuildOptions{Population: 30})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(g.Groups()[0].Senders); n != 30 {
		t.Fatalf("dumbbell population override: %d senders", n)
	}
	// Case-insensitive resolution.
	if _, err := Build(" Star ", sim.New(1), BuildOptions{}); err != nil {
		t.Fatalf("canonicalization failed: %v", err)
	}
	// Config type mismatches are rejected.
	if _, err := Build("star", sim.New(1), BuildOptions{Config: DumbbellConfig{}}); err == nil {
		t.Fatal("star accepted a DumbbellConfig")
	}
	// Unknown names list the registry.
	if _, err := Build("nope", sim.New(1), BuildOptions{}); err == nil {
		t.Fatal("unknown topology resolved")
	}
	// Duplicate and invalid registrations panic.
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() { Register("dumbbell", buildDumbbellGraph) })
	mustPanic("empty name", func() { Register("", buildDumbbellGraph) })
	mustPanic("nil builder", func() { Register("x-nil", nil) })
}
