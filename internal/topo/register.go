package topo

import (
	"fmt"

	"netfence/internal/sim"
)

// The in-tree topologies self-register so scenarios can resolve them by
// name. Each registered default keeps the paper's 200 kbps per-sender
// bottleneck fair share at any population (the §6.3.1 scaling trick) and
// includes colluder ASes so the collusion workloads run unchanged:
//
//	dumbbell    — §6.3.1 ten-source-AS dumbbell, 9 colluder ASes
//	parkinglot  — §6.3.2 two-bottleneck chain, three sender groups
//	star        — single-AS hotspot: one access router polices everyone
//	random-as   — seeded random transit core with a dumbbell-style exit
func init() {
	Register("dumbbell", buildDumbbellGraph)
	Register("parkinglot", buildParkingLotGraph)
	Register("star", buildStarGraph)
	Register("random-as", buildRandomASGraph)
}

// defaultFairShareBps is the per-sender bottleneck share the registered
// defaults preserve across populations.
const defaultFairShareBps = 200_000

// defaultPopulation is the registered builders' sender count when
// neither Population nor Config picks one.
const defaultPopulation = 20

func buildDumbbellGraph(eng *sim.Engine, opts BuildOptions) (*Graph, error) {
	var cfg DumbbellConfig
	switch c := opts.Config.(type) {
	case nil:
		pop := opts.Population
		if pop <= 0 {
			pop = defaultPopulation
		}
		cfg = DefaultDumbbell(pop, int64(pop)*defaultFairShareBps)
		cfg.ColluderASes = 9
	case DumbbellConfig:
		cfg = c
	default:
		return nil, fmt.Errorf("config type %T is not topo.DumbbellConfig", opts.Config)
	}
	if opts.Population > 0 {
		ases := cfg.SrcASes
		if ases <= 0 {
			ases = 10
		}
		cfg.SrcASes, cfg.HostsPerAS = SplitEvenly(opts.Population, ases)
	}
	if cfg.SrcASes*cfg.HostsPerAS <= 0 {
		return nil, fmt.Errorf("no senders (SrcASes=%d, HostsPerAS=%d)", cfg.SrcASes, cfg.HostsPerAS)
	}
	return NewDumbbell(eng, cfg).G, nil
}

func buildParkingLotGraph(eng *sim.Engine, opts BuildOptions) (*Graph, error) {
	var cfg ParkingLotConfig
	switch c := opts.Config.(type) {
	case nil:
		pop := opts.Population
		if pop <= 0 {
			pop = 3 * defaultPopulation
		}
		if pop%3 != 0 {
			return nil, fmt.Errorf("population %d does not split into 3 equal groups", pop)
		}
		spg := pop / 3
		cfg = DefaultParkingLot(spg, int64(spg)*defaultFairShareBps, int64(spg)*defaultFairShareBps*3/2)
		cfg.ASesPerGroup, _ = SplitEvenly(spg, cfg.ASesPerGroup)
	case ParkingLotConfig:
		cfg = c
		if opts.Population > 0 {
			if opts.Population%3 != 0 {
				return nil, fmt.Errorf("population %d does not split into 3 equal groups", opts.Population)
			}
			cfg.SendersPerGroup = opts.Population / 3
			cfg.ASesPerGroup, _ = SplitEvenly(cfg.SendersPerGroup, cfg.ASesPerGroup)
		}
	default:
		return nil, fmt.Errorf("config type %T is not topo.ParkingLotConfig", opts.Config)
	}
	if cfg.SendersPerGroup <= 0 {
		return nil, fmt.Errorf("SendersPerGroup must be positive")
	}
	return NewParkingLot(eng, cfg).G, nil
}

func buildStarGraph(eng *sim.Engine, opts BuildOptions) (*Graph, error) {
	var cfg StarConfig
	switch c := opts.Config.(type) {
	case nil:
		pop := opts.Population
		if pop <= 0 {
			pop = defaultPopulation
		}
		cfg = DefaultStar(pop, int64(pop)*defaultFairShareBps)
		cfg.ColluderASes = 3
	case StarConfig:
		cfg = c
		if opts.Population > 0 {
			cfg.Senders = opts.Population
		}
	default:
		return nil, fmt.Errorf("config type %T is not topo.StarConfig", opts.Config)
	}
	if cfg.Senders <= 0 {
		return nil, fmt.Errorf("Senders must be positive")
	}
	return NewStar(eng, cfg).G, nil
}

func buildRandomASGraph(eng *sim.Engine, opts BuildOptions) (*Graph, error) {
	var cfg RandomASConfig
	switch c := opts.Config.(type) {
	case nil:
		pop := opts.Population
		if pop <= 0 {
			pop = defaultPopulation
		}
		cfg = DefaultRandomAS(pop, int64(pop)*defaultFairShareBps)
		cfg.ColluderASes = 3
	case RandomASConfig:
		cfg = c
		if opts.Population > 0 {
			cfg.Senders = opts.Population
		}
	default:
		return nil, fmt.Errorf("config type %T is not topo.RandomASConfig", opts.Config)
	}
	r, err := NewRandomAS(eng, cfg)
	if err != nil {
		return nil, err
	}
	return r.G, nil
}

// SplitEvenly splits a population over at most wantASes ASes, lowering
// the AS count to the largest divisor so every AS gets the same host
// count — the shared declared-population-is-a-contract policy of every
// builder (0 wantASes = 10).
func SplitEvenly(population, wantASes int) (ases, perAS int) {
	if wantASes <= 0 {
		wantASes = 10
	}
	if wantASes > population {
		wantASes = population
	}
	for wantASes > 1 && population%wantASes != 0 {
		wantASes--
	}
	if wantASes < 1 {
		wantASes = 1
	}
	return wantASes, population / wantASes
}
