package topo

import (
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// Graph is the open topology builder every concrete topology in this
// package is made of: declare routers, access routers, hosts and links,
// tag them with evaluation roles (sender, victim, colluder, bottleneck),
// and the generic deployment and scenario machinery does the rest. The
// Dumbbell and ParkingLot builders are thin wrappers over Graph, and
// third-party topologies registered through Register are Graphs too.
//
// Role tagging drives three things:
//
//   - Deploy knows which links to protect, which routers police, and
//     which hosts get the defense's shim;
//   - the scenario layer addresses workload senders/victims/colluders by
//     (group, index) without knowing the wiring;
//   - deployment Plans select participating ASes among the source ASes.
//
// Declaration order is semantic: nodes and links are created on the
// underlying netsim.Network in call order, and Deploy walks bottlenecks,
// then each group's access routers and hosts, in declaration order. Two
// builders issuing the same call sequence produce byte-identical
// networks (and therefore identical simulation results for a seed).
type Graph struct {
	Net *netsim.Network

	bottlenecks []*netsim.Link
	groups      []GraphGroup
	srcASes     []packet.ASID
	srcSeen     map[packet.ASID]bool
	built       bool
}

// GraphGroup is one sender group with its destinations and the access
// routers Deploy protects for it.
type GraphGroup struct {
	// Access lists the group's policing access routers in declaration
	// order (source-AS access first is conventional, not required).
	Access []*netsim.Node
	// Senders lists the group's sender hosts; workloads index into it.
	Senders []*netsim.Node
	// Victim is the group's destination host.
	Victim *netsim.Node
	// Colluders lists the group's colluding receiver hosts.
	Colluders []*netsim.Node
}

// NewGraph returns an empty topology graph driven by eng.
func NewGraph(eng *sim.Engine) *Graph {
	return &Graph{
		Net:     netsim.New(eng),
		srcSeen: map[packet.ASID]bool{},
	}
}

func (g *Graph) group(i int) *GraphGroup {
	for len(g.groups) <= i {
		g.groups = append(g.groups, GraphGroup{})
	}
	return &g.groups[i]
}

// Router adds a plain (transit) router: routed through, never policing.
func (g *Graph) Router(name string, as packet.ASID) *netsim.Node {
	return g.Net.NewNode(name, as)
}

// AccessRouter adds a policing access router to a group: Deploy installs
// the defense's ProtectAccess on it when its AS participates in the plan.
func (g *Graph) AccessRouter(group int, name string, as packet.ASID) *netsim.Node {
	r := g.Net.NewNode(name, as)
	grp := g.group(group)
	grp.Access = append(grp.Access, r)
	return r
}

// Host adds a host carrying no evaluation role (traffic can still be
// attached to it manually; Deploy ignores it).
func (g *Graph) Host(name string, as packet.ASID) *netsim.Node {
	return g.Net.NewHost(name, as)
}

// Sender adds a sender host to a group. Its AS is recorded as a source
// AS — the population deployment plans select over.
func (g *Graph) Sender(group int, name string, as packet.ASID) *netsim.Node {
	h := g.Net.NewHost(name, as)
	grp := g.group(group)
	grp.Senders = append(grp.Senders, h)
	if !g.srcSeen[as] {
		g.srcSeen[as] = true
		g.srcASes = append(g.srcASes, as)
	}
	return h
}

// Victim adds a group's destination host.
func (g *Graph) Victim(group int, name string, as packet.ASID) *netsim.Node {
	h := g.Net.NewHost(name, as)
	g.group(group).Victim = h
	return h
}

// Colluder adds a colluding receiver host to a group.
func (g *Graph) Colluder(group int, name string, as packet.ASID) *netsim.Node {
	h := g.Net.NewHost(name, as)
	grp := g.group(group)
	grp.Colluders = append(grp.Colluders, h)
	return h
}

// Link connects a and b with a duplex pair of uncongested links.
func (g *Graph) Link(a, b *netsim.Node, rateBps int64, delay sim.Time) (ab, ba *netsim.Link) {
	return g.Net.Connect(a, b, rateBps, delay)
}

// BottleneckLink connects a and b and tags the a-to-b direction as a
// bottleneck: Deploy installs the defense's ProtectLink on it.
func (g *Graph) BottleneckLink(a, b *netsim.Node, rateBps int64, delay sim.Time) (ab, ba *netsim.Link) {
	ab, ba = g.Net.Connect(a, b, rateBps, delay)
	g.bottlenecks = append(g.bottlenecks, ab)
	return ab, ba
}

// Build finalizes the wiring and computes routes. Idempotent.
func (g *Graph) Build() *Graph {
	if !g.built {
		g.built = true
		g.Net.ComputeRoutes()
	}
	return g
}

// Bottlenecks returns the tagged bottleneck links in declaration order.
func (g *Graph) Bottlenecks() []*netsim.Link { return g.bottlenecks }

// Groups returns the sender groups in declaration order.
func (g *Graph) Groups() []GraphGroup { return g.groups }

// SourceASes returns the ASes containing sender hosts, in first-seen
// order — the domain a deployment Plan's fraction selects over.
func (g *Graph) SourceASes() []packet.ASID {
	out := make([]packet.ASID, len(g.srcASes))
	copy(out, g.srcASes)
	return out
}

// AllASes returns every AS identifier in the topology, in node order —
// the set Passport establishes pairwise keys for.
func (g *Graph) AllASes() []packet.ASID {
	seen := map[packet.ASID]bool{}
	var out []packet.ASID
	for _, nd := range g.Net.Nodes {
		if !seen[nd.AS] {
			seen[nd.AS] = true
			out = append(out, nd.AS)
		}
	}
	return out
}
