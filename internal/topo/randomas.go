package topo

import (
	"fmt"
	"math/rand/v2"

	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// RandomASConfig parameterizes a seeded random AS-level graph: a random
// connected transit core (one AS per transit router), source ASes
// attached to random transit routers, and a dumbbell-style exit — one
// transit router connects across the bottleneck to the destination side
// holding the victim and colluder ASes, so all victim- and
// colluder-bound traffic crosses it. Unlike the fixed topologies, the
// AS-level paths here are multi-hop and irregular, exercising
// Passport's pairwise key stamping and NetFence's feedback across
// varied AS chains.
//
// The structure is drawn from GraphSeed alone — independent of the
// simulation engine's seed — so a scenario seed sweep varies traffic,
// not wiring.
type RandomASConfig struct {
	// Senders is the total sender population, split evenly over SrcASes.
	Senders int
	// SrcASes is the number of source ASes (0 = min(10, Senders);
	// adjusted down to the largest count dividing Senders evenly).
	SrcASes int
	// TransitASes is the size of the random transit core (0 = 4).
	TransitASes int
	// ExtraLinks adds exactly this many random extra transit-core links
	// beyond the spanning tree, capped at the complete graph (default 0;
	// extra links shorten some AS paths).
	ExtraLinks int
	// ColluderASes adds destination-side ASes with one colluder host
	// each.
	ColluderASes int
	// BottleneckBps is the exit-link capacity.
	BottleneckBps int64
	// EdgeBps is the capacity of all non-bottleneck links.
	EdgeBps int64
	// Delay is the per-link propagation delay.
	Delay sim.Time
	// GraphSeed seeds the structure RNG (0 = 1).
	GraphSeed uint64
}

// DefaultRandomAS mirrors the dumbbell's parameters over a 4-router
// random core.
func DefaultRandomAS(senders int, bottleneckBps int64) RandomASConfig {
	return RandomASConfig{
		Senders:       senders,
		TransitASes:   4,
		BottleneckBps: bottleneckBps,
		EdgeBps:       10_000_000_000,
		Delay:         10 * sim.Millisecond,
		GraphSeed:     1,
	}
}

// RandomAS is the constructed random AS-level topology.
type RandomAS struct {
	// G is the underlying role-tagged graph (one sender group).
	G   *Graph
	Net *netsim.Network

	Senders   []*netsim.Node
	SrcAccess []*netsim.Node
	// Transit lists the random-core routers, one AS each.
	Transit []*netsim.Node
	// Exit is the core router holding the bottleneck link to Rd, the
	// destination-side router.
	Exit, Rd   *netsim.Node
	Bottleneck *netsim.Link

	Victim       *netsim.Node
	VictimAccess *netsim.Node

	Colluders      []*netsim.Node
	ColluderAccess []*netsim.Node
}

// NewRandomAS builds the topology and computes routes.
func NewRandomAS(eng *sim.Engine, cfg RandomASConfig) (*RandomAS, error) {
	if cfg.Senders <= 0 {
		return nil, fmt.Errorf("RandomAS: Senders must be positive")
	}
	transit := cfg.TransitASes
	if transit <= 0 {
		transit = 4
	}
	// The declared population is a contract: SplitEvenly lowers the AS
	// count to the largest divisor.
	srcASes, perAS := SplitEvenly(cfg.Senders, cfg.SrcASes)
	seed := cfg.GraphSeed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewPCG(seed, 0x6e65746665_6e6365)) // "netfence"

	g := NewGraph(eng)
	r := &RandomAS{G: g, Net: g.Net}

	// Random connected transit core: a uniform random spanning tree by
	// attachment (router i links to a uniform earlier router), plus
	// optional extra links.
	for i := 0; i < transit; i++ {
		t := g.Router(fmt.Sprintf("T%d", i), packet.ASID(1000+i))
		r.Transit = append(r.Transit, t)
		if i > 0 {
			parent := r.Transit[rng.IntN(i)]
			g.Link(t, parent, cfg.EdgeBps, cfg.Delay)
		}
	}
	// Extra links: exactly min(ExtraLinks, what the core can still hold)
	// distinct non-tree edges, redrawing collisions so the configured
	// density is honored.
	possible := transit*(transit-1)/2 - (transit - 1)
	want := cfg.ExtraLinks
	if want > possible {
		want = possible
	}
	linked := map[[2]int]bool{}
	for added, attempts := 0, 0; added < want && attempts < 100*want+100; attempts++ {
		a, b := rng.IntN(transit), rng.IntN(transit)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if linked[key] || r.Transit[a].LinkTo(r.Transit[b]) != nil {
			continue
		}
		linked[key] = true
		g.Link(r.Transit[a], r.Transit[b], cfg.EdgeBps, cfg.Delay)
		added++
	}

	// Source ASes hang off random transit routers.
	for i := 0; i < srcASes; i++ {
		as := packet.ASID(1 + i)
		ra := g.AccessRouter(0, fmt.Sprintf("Ra%d", i), as)
		r.SrcAccess = append(r.SrcAccess, ra)
		g.Link(ra, r.Transit[rng.IntN(transit)], cfg.EdgeBps, cfg.Delay)
		for h := 0; h < perAS; h++ {
			host := g.Sender(0, fmt.Sprintf("s%d.%d", i, h), as)
			g.Link(host, ra, cfg.EdgeBps, cfg.Delay)
			r.Senders = append(r.Senders, host)
		}
	}

	// The exit: a random core router crosses the bottleneck to Rd, the
	// destination-side router every victim- and colluder-bound packet
	// must reach.
	r.Exit = r.Transit[rng.IntN(transit)]
	r.Rd = g.Router("Rd", packet.ASID(1999))
	r.Bottleneck, _ = g.BottleneckLink(r.Exit, r.Rd, cfg.BottleneckBps, cfg.Delay)

	victimAS := packet.ASID(2000)
	r.VictimAccess = g.AccessRouter(0, "Rv", victimAS)
	g.Link(r.Rd, r.VictimAccess, cfg.EdgeBps, cfg.Delay)
	r.Victim = g.Victim(0, "victim", victimAS)
	g.Link(r.VictimAccess, r.Victim, cfg.EdgeBps, cfg.Delay)

	for i := 0; i < cfg.ColluderASes; i++ {
		as := packet.ASID(3000 + i)
		rc := g.AccessRouter(0, fmt.Sprintf("Rc%d", i), as)
		g.Link(r.Rd, rc, cfg.EdgeBps, cfg.Delay)
		c := g.Colluder(0, fmt.Sprintf("c%d", i), as)
		g.Link(rc, c, cfg.EdgeBps, cfg.Delay)
		r.ColluderAccess = append(r.ColluderAccess, rc)
		r.Colluders = append(r.Colluders, c)
	}

	g.Build()
	return r, nil
}

// AllASes returns every AS identifier in the topology.
func (r *RandomAS) AllASes() []packet.ASID { return r.G.AllASes() }
