// Package topo builds the evaluation topologies of §6.3: the dumbbell
// used by the unwanted-traffic and single-bottleneck collusion
// experiments, and the parking lot used by the multi-bottleneck study.
package topo

import (
	"fmt"

	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// DumbbellConfig parameterizes the §6.3.1 topology: ten source ASes
// connect through a transit AS (routers Rbl—Rbr, the bottleneck) to a
// destination AS holding the victim, plus optional colluder ASes hanging
// off Rbr (§6.3.2 adds nine of them).
type DumbbellConfig struct {
	// SrcASes is the number of source-side ASes (paper: 10).
	SrcASes int
	// HostsPerAS is the number of sender hosts per source AS (paper: 100).
	HostsPerAS int
	// ColluderASes is the number of right-side ASes with one colluder
	// host each (paper: 9 in the collusion experiments, 0 otherwise).
	ColluderASes int
	// BottleneckBps is the Rbl->Rbr capacity; the paper scales it from
	// 400 Mbps down to 50 Mbps to emulate 25K-200K senders on 10 Gbps.
	BottleneckBps int64
	// EdgeBps is the capacity of all non-bottleneck links ("sufficient
	// to avoid congestion").
	EdgeBps int64
	// Delay is the per-link propagation delay (paper: 10 ms).
	Delay sim.Time
}

// DefaultDumbbell mirrors the paper's setup at a configurable sender
// count: senders are split evenly over ten source ASes.
func DefaultDumbbell(senders int, bottleneckBps int64) DumbbellConfig {
	ases := 10
	if senders < ases {
		ases = senders
	}
	return DumbbellConfig{
		SrcASes:       ases,
		HostsPerAS:    senders / ases,
		BottleneckBps: bottleneckBps,
		EdgeBps:       10_000_000_000,
		Delay:         10 * sim.Millisecond,
	}
}

// Dumbbell is the constructed topology.
type Dumbbell struct {
	Net *netsim.Network

	// Senders lists every sender host, AS by AS.
	Senders []*netsim.Node
	// SrcAccess lists the source-AS access routers, parallel to AS order.
	SrcAccess []*netsim.Node

	// Rbl and Rbr are the transit-AS routers; Bottleneck is Rbl->Rbr.
	Rbl, Rbr   *netsim.Node
	Bottleneck *netsim.Link
	// Reverse is the Rbr->Rbl link.
	Reverse *netsim.Link

	Victim       *netsim.Node
	VictimAccess *netsim.Node

	// Colluders holds one host per colluder AS, with parallel access
	// routers in ColluderAccess.
	Colluders      []*netsim.Node
	ColluderAccess []*netsim.Node
}

// NewDumbbell builds the topology and computes routes.
func NewDumbbell(eng *sim.Engine, cfg DumbbellConfig) *Dumbbell {
	n := netsim.New(eng)
	d := &Dumbbell{Net: n}

	transitAS := packet.ASID(1000)
	d.Rbl = n.NewNode("Rbl", transitAS)
	d.Rbr = n.NewNode("Rbr", transitAS)
	d.Bottleneck, d.Reverse = n.Connect(d.Rbl, d.Rbr, cfg.BottleneckBps, cfg.Delay)

	for i := 0; i < cfg.SrcASes; i++ {
		as := packet.ASID(1 + i)
		ra := n.NewNode(fmt.Sprintf("Ra%d", i), as)
		d.SrcAccess = append(d.SrcAccess, ra)
		n.Connect(ra, d.Rbl, cfg.EdgeBps, cfg.Delay)
		for h := 0; h < cfg.HostsPerAS; h++ {
			host := n.NewHost(fmt.Sprintf("s%d.%d", i, h), as)
			n.Connect(host, ra, cfg.EdgeBps, cfg.Delay)
			d.Senders = append(d.Senders, host)
		}
	}

	victimAS := packet.ASID(2000)
	d.VictimAccess = n.NewNode("Rv", victimAS)
	n.Connect(d.Rbr, d.VictimAccess, cfg.EdgeBps, cfg.Delay)
	d.Victim = n.NewHost("victim", victimAS)
	n.Connect(d.VictimAccess, d.Victim, cfg.EdgeBps, cfg.Delay)

	for i := 0; i < cfg.ColluderASes; i++ {
		as := packet.ASID(3000 + i)
		rc := n.NewNode(fmt.Sprintf("Rc%d", i), as)
		d.ColluderAccess = append(d.ColluderAccess, rc)
		n.Connect(d.Rbr, rc, cfg.EdgeBps, cfg.Delay)
		c := n.NewHost(fmt.Sprintf("c%d", i), as)
		n.Connect(rc, c, cfg.EdgeBps, cfg.Delay)
		d.Colluders = append(d.Colluders, c)
	}

	n.ComputeRoutes()
	return d
}

// AllASes returns every AS identifier in the topology, for Passport key
// establishment.
func (d *Dumbbell) AllASes() []packet.ASID {
	seen := map[packet.ASID]bool{}
	var out []packet.ASID
	for _, nd := range d.Net.Nodes {
		if !seen[nd.AS] {
			seen[nd.AS] = true
			out = append(out, nd.AS)
		}
	}
	return out
}

// ParkingLotConfig parameterizes the multi-bottleneck topology: a chain
// R0 -L1-> R1 -L2-> R2 with three sender groups. Group A crosses both
// bottlenecks, Group C only L1, Group B only L2 (§6.3.2).
type ParkingLotConfig struct {
	// SendersPerGroup is the number of hosts per group (paper: 1000).
	SendersPerGroup int
	// ASesPerGroup splits each group's senders over this many ASes.
	ASesPerGroup int
	// ColluderASesPerGroup is the number of colluder destinations per
	// group's attackers.
	ColluderASesPerGroup int
	// L1Bps and L2Bps are the two bottleneck capacities.
	L1Bps, L2Bps int64
	EdgeBps      int64
	Delay        sim.Time
}

// DefaultParkingLot mirrors the paper's three-group setup at a
// configurable scale.
func DefaultParkingLot(sendersPerGroup int, l1, l2 int64) ParkingLotConfig {
	return ParkingLotConfig{
		SendersPerGroup:      sendersPerGroup,
		ASesPerGroup:         5,
		ColluderASesPerGroup: 3,
		L1Bps:                l1,
		L2Bps:                l2,
		EdgeBps:              10_000_000_000,
		Delay:                10 * sim.Millisecond,
	}
}

// PLGroup holds one sender group and its destinations.
type PLGroup struct {
	Senders   []*netsim.Node
	Access    []*netsim.Node
	Victim    *netsim.Node
	Colluders []*netsim.Node
}

// ParkingLot is the constructed multi-bottleneck topology.
type ParkingLot struct {
	Net        *netsim.Network
	R0, R1, R2 *netsim.Node
	L1, L2     *netsim.Link
	// Groups[0] = A (crosses L1 and L2), Groups[1] = B (L2 only),
	// Groups[2] = C (L1 only).
	Groups [3]PLGroup
}

// NewParkingLot builds the topology and computes routes.
func NewParkingLot(eng *sim.Engine, cfg ParkingLotConfig) *ParkingLot {
	n := netsim.New(eng)
	pl := &ParkingLot{Net: n}
	transitAS := packet.ASID(1000)
	pl.R0 = n.NewNode("R0", transitAS)
	pl.R1 = n.NewNode("R1", transitAS)
	pl.R2 = n.NewNode("R2", transitAS)
	pl.L1, _ = n.Connect(pl.R0, pl.R1, cfg.L1Bps, cfg.Delay)
	pl.L2, _ = n.Connect(pl.R1, pl.R2, cfg.L2Bps, cfg.Delay)

	asCounter := packet.ASID(1)
	buildGroup := func(g int, attach *netsim.Node, dstAttach *netsim.Node) {
		grp := &pl.Groups[g]
		perAS := cfg.SendersPerGroup / cfg.ASesPerGroup
		for i := 0; i < cfg.ASesPerGroup; i++ {
			as := asCounter
			asCounter++
			ra := n.NewNode(fmt.Sprintf("g%dRa%d", g, i), as)
			grp.Access = append(grp.Access, ra)
			n.Connect(ra, attach, cfg.EdgeBps, cfg.Delay)
			for h := 0; h < perAS; h++ {
				host := n.NewHost(fmt.Sprintf("g%ds%d.%d", g, i, h), as)
				n.Connect(host, ra, cfg.EdgeBps, cfg.Delay)
				grp.Senders = append(grp.Senders, host)
			}
		}
		// Victim AS.
		vas := asCounter
		asCounter++
		rv := n.NewNode(fmt.Sprintf("g%dRv", g), vas)
		n.Connect(dstAttach, rv, cfg.EdgeBps, cfg.Delay)
		grp.Victim = n.NewHost(fmt.Sprintf("g%dvictim", g), vas)
		n.Connect(rv, grp.Victim, cfg.EdgeBps, cfg.Delay)
		// Colluder ASes.
		for i := 0; i < cfg.ColluderASesPerGroup; i++ {
			cas := asCounter
			asCounter++
			rc := n.NewNode(fmt.Sprintf("g%dRc%d", g, i), cas)
			n.Connect(dstAttach, rc, cfg.EdgeBps, cfg.Delay)
			c := n.NewHost(fmt.Sprintf("g%dc%d", g, i), cas)
			n.Connect(rc, c, cfg.EdgeBps, cfg.Delay)
			grp.Colluders = append(grp.Colluders, c)
		}
	}
	buildGroup(0, pl.R0, pl.R2) // A: enters at R0, exits at R2 (L1+L2)
	buildGroup(1, pl.R1, pl.R2) // B: enters at R1, exits at R2 (L2)
	buildGroup(2, pl.R0, pl.R1) // C: enters at R0, exits at R1 (L1)

	n.ComputeRoutes()
	return pl
}

// AllASes returns every AS identifier in the topology.
func (pl *ParkingLot) AllASes() []packet.ASID {
	seen := map[packet.ASID]bool{}
	var out []packet.ASID
	for _, nd := range pl.Net.Nodes {
		if !seen[nd.AS] {
			seen[nd.AS] = true
			out = append(out, nd.AS)
		}
	}
	return out
}
