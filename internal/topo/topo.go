// Package topo builds evaluation topologies as role-tagged Graphs: the
// dumbbell of §6.3 (unwanted-traffic and single-bottleneck collusion
// experiments), the parking lot of the multi-bottleneck study, a
// star/single-AS hotspot, and a seeded random AS-level graph — plus a
// registry so scenarios resolve topologies by name and third parties
// can add their own (see Register).
package topo

import (
	"fmt"

	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// DumbbellConfig parameterizes the §6.3.1 topology: ten source ASes
// connect through a transit AS (routers Rbl—Rbr, the bottleneck) to a
// destination AS holding the victim, plus optional colluder ASes hanging
// off Rbr (§6.3.2 adds nine of them).
type DumbbellConfig struct {
	// SrcASes is the number of source-side ASes (paper: 10).
	SrcASes int
	// HostsPerAS is the number of sender hosts per source AS (paper: 100).
	HostsPerAS int
	// ColluderASes is the number of right-side ASes with one colluder
	// host each (paper: 9 in the collusion experiments, 0 otherwise).
	ColluderASes int
	// BottleneckBps is the Rbl->Rbr capacity; the paper scales it from
	// 400 Mbps down to 50 Mbps to emulate 25K-200K senders on 10 Gbps.
	BottleneckBps int64
	// EdgeBps is the capacity of all non-bottleneck links ("sufficient
	// to avoid congestion").
	EdgeBps int64
	// Delay is the per-link propagation delay (paper: 10 ms).
	Delay sim.Time
}

// DefaultDumbbell mirrors the paper's setup at a configurable sender
// count: senders are split evenly over ten source ASes.
func DefaultDumbbell(senders int, bottleneckBps int64) DumbbellConfig {
	ases := 10
	if senders < ases {
		ases = senders
	}
	return DumbbellConfig{
		SrcASes:       ases,
		HostsPerAS:    senders / ases,
		BottleneckBps: bottleneckBps,
		EdgeBps:       10_000_000_000,
		Delay:         10 * sim.Millisecond,
	}
}

// Dumbbell is the constructed topology: a named-role view over its
// underlying Graph.
type Dumbbell struct {
	// G is the underlying role-tagged graph (one sender group).
	G   *Graph
	Net *netsim.Network

	// Senders lists every sender host, AS by AS.
	Senders []*netsim.Node
	// SrcAccess lists the source-AS access routers, parallel to AS order.
	SrcAccess []*netsim.Node

	// Rbl and Rbr are the transit-AS routers; Bottleneck is Rbl->Rbr.
	Rbl, Rbr   *netsim.Node
	Bottleneck *netsim.Link
	// Reverse is the Rbr->Rbl link.
	Reverse *netsim.Link

	Victim       *netsim.Node
	VictimAccess *netsim.Node

	// Colluders holds one host per colluder AS, with parallel access
	// routers in ColluderAccess.
	Colluders      []*netsim.Node
	ColluderAccess []*netsim.Node
}

// NewDumbbell builds the topology and computes routes.
func NewDumbbell(eng *sim.Engine, cfg DumbbellConfig) *Dumbbell {
	g := NewGraph(eng)
	d := &Dumbbell{G: g, Net: g.Net}

	transitAS := packet.ASID(1000)
	d.Rbl = g.Router("Rbl", transitAS)
	d.Rbr = g.Router("Rbr", transitAS)
	d.Bottleneck, d.Reverse = g.BottleneckLink(d.Rbl, d.Rbr, cfg.BottleneckBps, cfg.Delay)

	for i := 0; i < cfg.SrcASes; i++ {
		as := packet.ASID(1 + i)
		ra := g.AccessRouter(0, fmt.Sprintf("Ra%d", i), as)
		d.SrcAccess = append(d.SrcAccess, ra)
		g.Link(ra, d.Rbl, cfg.EdgeBps, cfg.Delay)
		for h := 0; h < cfg.HostsPerAS; h++ {
			host := g.Sender(0, fmt.Sprintf("s%d.%d", i, h), as)
			g.Link(host, ra, cfg.EdgeBps, cfg.Delay)
			d.Senders = append(d.Senders, host)
		}
	}

	victimAS := packet.ASID(2000)
	d.VictimAccess = g.AccessRouter(0, "Rv", victimAS)
	g.Link(d.Rbr, d.VictimAccess, cfg.EdgeBps, cfg.Delay)
	d.Victim = g.Victim(0, "victim", victimAS)
	g.Link(d.VictimAccess, d.Victim, cfg.EdgeBps, cfg.Delay)

	for i := 0; i < cfg.ColluderASes; i++ {
		as := packet.ASID(3000 + i)
		rc := g.AccessRouter(0, fmt.Sprintf("Rc%d", i), as)
		d.ColluderAccess = append(d.ColluderAccess, rc)
		g.Link(d.Rbr, rc, cfg.EdgeBps, cfg.Delay)
		c := g.Colluder(0, fmt.Sprintf("c%d", i), as)
		g.Link(rc, c, cfg.EdgeBps, cfg.Delay)
		d.Colluders = append(d.Colluders, c)
	}

	g.Build()
	return d
}

// AllASes returns every AS identifier in the topology, for Passport key
// establishment.
func (d *Dumbbell) AllASes() []packet.ASID { return d.G.AllASes() }

// ParkingLotConfig parameterizes the multi-bottleneck topology: a chain
// R0 -L1-> R1 -L2-> R2 with three sender groups. Group A crosses both
// bottlenecks, Group C only L1, Group B only L2 (§6.3.2).
type ParkingLotConfig struct {
	// SendersPerGroup is the number of hosts per group (paper: 1000).
	SendersPerGroup int
	// ASesPerGroup splits each group's senders over this many ASes.
	ASesPerGroup int
	// ColluderASesPerGroup is the number of colluder destinations per
	// group's attackers.
	ColluderASesPerGroup int
	// L1Bps and L2Bps are the two bottleneck capacities.
	L1Bps, L2Bps int64
	EdgeBps      int64
	Delay        sim.Time
}

// DefaultParkingLot mirrors the paper's three-group setup at a
// configurable scale.
func DefaultParkingLot(sendersPerGroup int, l1, l2 int64) ParkingLotConfig {
	return ParkingLotConfig{
		SendersPerGroup:      sendersPerGroup,
		ASesPerGroup:         5,
		ColluderASesPerGroup: 3,
		L1Bps:                l1,
		L2Bps:                l2,
		EdgeBps:              10_000_000_000,
		Delay:                10 * sim.Millisecond,
	}
}

// PLGroup holds one sender group and its destinations.
type PLGroup struct {
	Senders   []*netsim.Node
	Access    []*netsim.Node
	Victim    *netsim.Node
	Colluders []*netsim.Node
}

// ParkingLot is the constructed multi-bottleneck topology.
type ParkingLot struct {
	// G is the underlying role-tagged graph (three sender groups).
	G          *Graph
	Net        *netsim.Network
	R0, R1, R2 *netsim.Node
	L1, L2     *netsim.Link
	// Groups[0] = A (crosses L1 and L2), Groups[1] = B (L2 only),
	// Groups[2] = C (L1 only).
	Groups [3]PLGroup
}

// NewParkingLot builds the topology and computes routes.
func NewParkingLot(eng *sim.Engine, cfg ParkingLotConfig) *ParkingLot {
	g := NewGraph(eng)
	pl := &ParkingLot{G: g, Net: g.Net}
	transitAS := packet.ASID(1000)
	pl.R0 = g.Router("R0", transitAS)
	pl.R1 = g.Router("R1", transitAS)
	pl.R2 = g.Router("R2", transitAS)
	pl.L1, _ = g.BottleneckLink(pl.R0, pl.R1, cfg.L1Bps, cfg.Delay)
	pl.L2, _ = g.BottleneckLink(pl.R1, pl.R2, cfg.L2Bps, cfg.Delay)

	asCounter := packet.ASID(1)
	buildGroup := func(gi int, attach *netsim.Node, dstAttach *netsim.Node) {
		grp := &pl.Groups[gi]
		perAS := cfg.SendersPerGroup / cfg.ASesPerGroup
		for i := 0; i < cfg.ASesPerGroup; i++ {
			as := asCounter
			asCounter++
			ra := g.AccessRouter(gi, fmt.Sprintf("g%dRa%d", gi, i), as)
			grp.Access = append(grp.Access, ra)
			g.Link(ra, attach, cfg.EdgeBps, cfg.Delay)
			for h := 0; h < perAS; h++ {
				host := g.Sender(gi, fmt.Sprintf("g%ds%d.%d", gi, i, h), as)
				g.Link(host, ra, cfg.EdgeBps, cfg.Delay)
				grp.Senders = append(grp.Senders, host)
			}
		}
		// Victim AS. Its access router is deliberately a plain router —
		// the parking-lot experiments police only the source side.
		vas := asCounter
		asCounter++
		rv := g.Router(fmt.Sprintf("g%dRv", gi), vas)
		g.Link(dstAttach, rv, cfg.EdgeBps, cfg.Delay)
		grp.Victim = g.Victim(gi, fmt.Sprintf("g%dvictim", gi), vas)
		g.Link(rv, grp.Victim, cfg.EdgeBps, cfg.Delay)
		// Colluder ASes.
		for i := 0; i < cfg.ColluderASesPerGroup; i++ {
			cas := asCounter
			asCounter++
			rc := g.Router(fmt.Sprintf("g%dRc%d", gi, i), cas)
			g.Link(dstAttach, rc, cfg.EdgeBps, cfg.Delay)
			c := g.Colluder(gi, fmt.Sprintf("g%dc%d", gi, i), cas)
			g.Link(rc, c, cfg.EdgeBps, cfg.Delay)
			grp.Colluders = append(grp.Colluders, c)
		}
	}
	buildGroup(0, pl.R0, pl.R2) // A: enters at R0, exits at R2 (L1+L2)
	buildGroup(1, pl.R1, pl.R2) // B: enters at R1, exits at R2 (L2)
	buildGroup(2, pl.R0, pl.R1) // C: enters at R0, exits at R1 (L1)

	g.Build()
	return pl
}

// AllASes returns every AS identifier in the topology.
func (pl *ParkingLot) AllASes() []packet.ASID { return pl.G.AllASes() }
