package search

import (
	"math"

	"netfence/internal/attack"
)

// annealOpt is batched simulated annealing. From the defaults it walks
// a Metropolis chain: each round proposes a small batch of
// perturbations of the current point (so independent candidates can be
// simulated in parallel), accepts improvements always and regressions
// with probability exp(Δ/T·|cur|), and cools geometrically. All
// randomness comes from the seeded stream, so the proposal sequence —
// and hence the whole trace — is a pure function of (dims, budget,
// seed).
type annealOpt struct{}

func (annealOpt) Name() string { return "anneal" }

// annealBatch bounds how many proposals share one temperature step; it
// is also the parallel width the driver can exploit per round.
const annealBatch = 4

func (annealOpt) Run(dims []attack.ParamSpec, budget int, seed uint64, eval BatchEval) (Vec, []Step, error) {
	ev := newEvaluator(eval, budget)
	cur := defaults(dims)
	d, err := ev.run([]Vec{cur})
	if err != nil {
		return nil, nil, err
	}
	if len(dims) == 0 {
		return ev.best, ev.trace, nil
	}
	curD := d[0]
	r := rng(seed, 0x616e6e65616c) // "anneal"
	temp := 0.5
	stale := 0
	for ev.remaining() > 0 && stale < 8 {
		n := annealBatch
		if rem := ev.remaining(); n > rem {
			n = rem
		}
		batch := make([]Vec, n)
		for i := range batch {
			v := cur.Clone()
			for j, p := range dims {
				span := p.Max - p.Min
				v[j] = snap(p, v[j]+(2*r.Float64()-1)*temp*span)
			}
			batch[i] = v
		}
		before := ev.spent()
		damages, err := ev.run(batch)
		if err != nil {
			return nil, nil, err
		}
		if ev.spent() == before {
			// Every proposal was a cache hit (integer dims at low
			// temperature collapse to few distinct points); count the
			// dry round so a converged chain terminates early.
			stale++
		} else {
			stale = 0
		}
		for i, v := range batch {
			dv := damages[i]
			if math.IsInf(dv, -1) {
				continue // beyond budget, never evaluated
			}
			scale := temp * math.Max(1, math.Abs(curD))
			if dv > curD || r.Float64() < math.Exp((dv-curD)/scale) {
				cur = v
				curD = dv
			}
		}
		temp *= 0.8
	}
	return ev.best, ev.trace, nil
}
