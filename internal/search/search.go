// Package search implements deterministic black-box optimizers over an
// attack strategy's declared parameter space (attack.ParamSpec). The
// driver in the root package wires an optimizer to the Scenario/Sweep
// machinery: each candidate vector becomes a parameterized attack
// workload, the simulator scores it, and the optimizer hunts for the
// configuration that maximizes damage — the adversarial half of the
// Theorem-1 regression gate.
//
// Determinism contract: an optimizer's candidate sequence is a pure
// function of (dims, budget, seed). Randomness comes only from a
// seeded PCG stream mirroring sim.KeyStream, never from time or global
// state, so identical inputs replay byte-identically regardless of how
// the evaluation itself is parallelized.
package search

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strconv"
	"strings"

	"netfence/internal/attack"
)

// Vec is one candidate configuration: a value per dimension, in the
// strategy's ParamSpec declaration order.
type Vec []float64

// Clone returns an independent copy.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Params renders the vector as an attack parameter map keyed by spec
// name, suitable for attack.BuildOptions.Params.
func (v Vec) Params(dims []attack.ParamSpec) map[string]float64 {
	if len(v) == 0 {
		return nil
	}
	out := make(map[string]float64, len(v))
	for i, p := range dims {
		out[p.Name] = v[i]
	}
	return out
}

// Step records one evaluated candidate, in evaluation order. Best
// marks the steps where the incumbent improved (strictly — ties keep
// the earlier candidate).
type Step struct {
	Index  int
	Vec    Vec
	Damage float64
	Best   bool
}

// BatchEval scores a batch of candidate vectors, returning one damage
// value per candidate (higher = more damage to the defense). The
// optimizer batches independent candidates so the caller can fan the
// simulations out across sweep workers; the returned slice must be
// index-aligned with the batch.
type BatchEval func(batch []Vec) ([]float64, error)

// Optimizer searches a parameter space for the maximum-damage vector.
// Run evaluates at most budget candidates through eval and returns the
// best vector found plus the full evaluation trace. Every
// implementation is deterministic in (dims, budget, seed).
type Optimizer interface {
	Name() string
	Run(dims []attack.ParamSpec, budget int, seed uint64, eval BatchEval) (best Vec, trace []Step, err error)
}

// New resolves an optimizer by name. The empty string selects grid
// refinement, the default.
func New(name string) (Optimizer, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "grid":
		return gridOpt{}, nil
	case "anneal", "annealing":
		return annealOpt{}, nil
	default:
		return nil, fmt.Errorf("search: unknown optimizer %q (available: %s)",
			name, strings.Join(Names(), ", "))
	}
}

// Names returns the available optimizer names.
func Names() []string { return []string{"anneal", "grid"} }

// rng derives the optimizer's random stream from the search seed,
// mirroring the engine's KeyStream construction so seeds mix well even
// when callers pass small integers.
func rng(seed, id uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed^0x9e3779b97f4a7c15, id))
}

// defaults returns the vector of spec defaults — always the first
// candidate evaluated, so every trace starts from the hand-written
// baseline.
func defaults(dims []attack.ParamSpec) Vec {
	v := make(Vec, len(dims))
	for i, p := range dims {
		v[i] = p.Default
	}
	return v
}

// snap clamps x into the spec's range and rounds integer dimensions.
func snap(p attack.ParamSpec, x float64) float64 {
	if p.Integer {
		x = math.Round(x)
	}
	if x < p.Min {
		x = p.Min
	}
	if x > p.Max {
		x = p.Max
	}
	if p.Integer {
		x = math.Round(x)
	}
	return x
}

// key renders a vector as a cache key: exact float formatting, so two
// vectors collide only when they are value-identical.
func key(v Vec) string {
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	}
	return b.String()
}

// evaluator wraps a BatchEval with budget accounting, deduplication
// and trace/incumbent bookkeeping shared by every optimizer.
type evaluator struct {
	eval   BatchEval
	budget int
	cache  map[string]float64
	trace  []Step
	best   Vec
	bestD  float64
}

func newEvaluator(eval BatchEval, budget int) *evaluator {
	return &evaluator{eval: eval, budget: budget, cache: map[string]float64{}, bestD: math.Inf(-1)}
}

func (e *evaluator) spent() int     { return len(e.trace) }
func (e *evaluator) remaining() int { return e.budget - len(e.trace) }

// run scores a batch, charging the budget only for vectors not seen
// before. It returns one damage per input vector: cached values replay
// for free, and candidates beyond the remaining budget come back as
// -Inf (never evaluated, never an incumbent).
func (e *evaluator) run(batch []Vec) ([]float64, error) {
	fresh := make([]Vec, 0, len(batch))
	seen := map[string]bool{}
	for _, v := range batch {
		k := key(v)
		if _, ok := e.cache[k]; ok || seen[k] {
			continue
		}
		if len(fresh) >= e.remaining() {
			break
		}
		seen[k] = true
		fresh = append(fresh, v.Clone())
	}
	if len(fresh) > 0 {
		damages, err := e.eval(fresh)
		if err != nil {
			return nil, err
		}
		if len(damages) != len(fresh) {
			return nil, fmt.Errorf("search: eval returned %d damages for %d candidates", len(damages), len(fresh))
		}
		for i, v := range fresh {
			d := damages[i]
			e.cache[key(v)] = d
			st := Step{Index: len(e.trace), Vec: v, Damage: d}
			if d > e.bestD {
				e.bestD = d
				e.best = v.Clone()
				st.Best = true
			}
			e.trace = append(e.trace, st)
		}
	}
	out := make([]float64, len(batch))
	for i, v := range batch {
		if d, ok := e.cache[key(v)]; ok {
			out[i] = d
		} else {
			out[i] = math.Inf(-1)
		}
	}
	return out, nil
}
