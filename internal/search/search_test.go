package search

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"netfence/internal/attack"
)

var testDims = []attack.ParamSpec{
	{Name: "rate", Min: 0.1, Max: 8, Default: 1},
	{Name: "duty", Min: 1, Max: 8, Default: 2, Integer: true},
}

// bowl is a smooth objective maximized away from the defaults, at
// (rate=6, duty=5).
func bowl(batch []Vec) ([]float64, error) {
	out := make([]float64, len(batch))
	for i, v := range batch {
		if len(v) == 2 {
			out[i] = -math.Pow(v[0]-6, 2) - 0.5*math.Pow(v[1]-5, 2)
		}
	}
	return out, nil
}

func TestOptimizersBeatDefault(t *testing.T) {
	defD := -math.Pow(1-6, 2) - 0.5*math.Pow(2-5, 2)
	for _, name := range Names() {
		opt, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		best, trace, err := opt.Run(testDims, 40, 7, bowl)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(trace) == 0 || !reflect.DeepEqual(trace[0].Vec, Vec{1, 2}) {
			t.Fatalf("%s: trace must start at the defaults, got %+v", name, trace)
		}
		d, _ := bowl([]Vec{best})
		if d[0] <= defD {
			t.Fatalf("%s: best %v damage %v does not beat default %v", name, best, d[0], defD)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		opt, _ := New(name)
		run := func() string {
			best, trace, err := opt.Run(testDims, 25, 42, bowl)
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("%v|%v", best, trace)
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("%s: same seed diverged:\n%s\n%s", name, a, b)
		}
		// A different seed must still respect budget and return a best.
		if _, trace, err := opt.Run(testDims, 25, 43, bowl); err != nil || len(trace) == 0 {
			t.Fatalf("%s seed 43: trace %d err %v", name, len(trace), err)
		}
	}
}

func TestBudgetCap(t *testing.T) {
	for _, name := range Names() {
		opt, _ := New(name)
		calls := 0
		counted := func(batch []Vec) ([]float64, error) {
			calls += len(batch)
			return bowl(batch)
		}
		for _, budget := range []int{1, 3, 9} {
			calls = 0
			_, trace, err := opt.Run(testDims, budget, 1, counted)
			if err != nil {
				t.Fatal(err)
			}
			if calls > budget || len(trace) > budget {
				t.Fatalf("%s budget %d: %d evals, trace %d", name, budget, calls, len(trace))
			}
			if len(trace) == 0 {
				t.Fatalf("%s budget %d: empty trace", name, budget)
			}
		}
	}
}

func TestDedupAndBestMarks(t *testing.T) {
	ev := newEvaluator(bowl, 10)
	if _, err := ev.run([]Vec{{1, 2}, {1, 2}, {6, 5}}); err != nil {
		t.Fatal(err)
	}
	if ev.spent() != 2 {
		t.Fatalf("duplicate charged budget: spent %d", ev.spent())
	}
	if !ev.trace[0].Best || !ev.trace[1].Best {
		t.Fatalf("best marks wrong: %+v", ev.trace)
	}
	if got := key(Vec{6, 5}); key(ev.best) != got {
		t.Fatalf("best = %v", ev.best)
	}
}

func TestZeroDims(t *testing.T) {
	for _, name := range Names() {
		opt, _ := New(name)
		best, trace, err := opt.Run(nil, 5, 1, bowl)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(trace) != 1 || len(best) != 0 {
			t.Fatalf("%s: zero-dim space should evaluate exactly the (empty) default, got best %v trace %d", name, best, len(trace))
		}
	}
}

func TestUnknownOptimizer(t *testing.T) {
	if _, err := New("gradient"); err == nil {
		t.Fatal("want error for unknown optimizer")
	}
}
