package search

import "netfence/internal/attack"

// gridOpt is deterministic grid refinement: evaluate the defaults,
// then repeatedly probe a shrinking neighborhood around the incumbent.
// Each round tries {lo, mid, hi} per dimension — a full 3^d factorial
// when the remaining budget affords it, per-dimension coordinate
// sweeps otherwise — then halves the radius. It needs no randomness at
// all, making it the most legible baseline for the annealer to beat.
type gridOpt struct{}

func (gridOpt) Name() string { return "grid" }

func (gridOpt) Run(dims []attack.ParamSpec, budget int, seed uint64, eval BatchEval) (Vec, []Step, error) {
	ev := newEvaluator(eval, budget)
	if _, err := ev.run([]Vec{defaults(dims)}); err != nil {
		return nil, nil, err
	}
	radius := make([]float64, len(dims))
	for i, p := range dims {
		radius[i] = (p.Max - p.Min) / 2
	}
	pow3 := 1
	for range dims {
		if pow3 > budget {
			break
		}
		pow3 *= 3
	}
	for ev.remaining() > 0 && len(dims) > 0 {
		before := ev.spent()
		center := ev.best
		var batch []Vec
		if pow3 <= ev.remaining() {
			// Full factorial: every {lo, mid, hi} combination.
			batch = append(batch, center.Clone())
			for i, p := range dims {
				var next []Vec
				for _, v := range batch {
					for _, x := range []float64{center[i] - radius[i], center[i], center[i] + radius[i]} {
						w := v.Clone()
						w[i] = snap(p, x)
						next = append(next, w)
					}
				}
				batch = next
			}
		} else {
			// Coordinate sweeps: vary one dimension at a time.
			for i, p := range dims {
				for _, x := range []float64{center[i] - radius[i], center[i] + radius[i]} {
					w := center.Clone()
					w[i] = snap(p, x)
					batch = append(batch, w)
				}
			}
		}
		if _, err := ev.run(batch); err != nil {
			return nil, nil, err
		}
		for i := range radius {
			radius[i] /= 2
		}
		if ev.spent() == before {
			// Everything in this neighborhood is cached: the grid has
			// converged and further shrinking cannot add candidates.
			break
		}
	}
	return ev.best, ev.trace, nil
}
