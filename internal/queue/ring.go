package queue

import "netfence/internal/packet"

// Ring is a growable circular buffer of packets, the building block of
// every queue discipline in this repository. It avoids the per-element
// allocation of container/list on the simulator's hottest path. The zero
// value is an empty ring ready for use.
type Ring struct {
	buf  []*packet.Packet
	head int
	n    int
}

// Len returns the number of buffered packets.
func (r *Ring) Len() int { return r.n }

// Push appends p at the tail.
func (r *Ring) Push(p *packet.Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

// Pop removes and returns the head packet, or nil when empty.
func (r *Ring) Pop() *packet.Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return p
}

// Peek returns the head packet without removing it, or nil when empty.
func (r *Ring) Peek() *packet.Packet {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.head]
}

// PopTail removes and returns the newest packet (used by
// longest-queue-drop policies), or nil when empty.
func (r *Ring) PopTail() *packet.Packet {
	if r.n == 0 {
		return nil
	}
	i := (r.head + r.n - 1) % len(r.buf)
	p := r.buf[i]
	r.buf[i] = nil
	r.n--
	return p
}

func (r *Ring) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]*packet.Packet, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}
