package queue

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"netfence/internal/packet"
)

func TestRingFIFO(t *testing.T) {
	var r Ring
	if r.Pop() != nil || r.Peek() != nil || r.PopTail() != nil {
		t.Fatal("empty ring returned a packet")
	}
	for i := 0; i < 100; i++ {
		r.Push(&packet.Packet{UID: uint64(i)})
	}
	if r.Len() != 100 {
		t.Fatalf("len = %d", r.Len())
	}
	if r.Peek().UID != 0 {
		t.Fatal("peek broken")
	}
	for i := 0; i < 100; i++ {
		if got := r.Pop().UID; got != uint64(i) {
			t.Fatalf("pop %d = %d", i, got)
		}
	}
}

func TestRingPopTail(t *testing.T) {
	var r Ring
	for i := 0; i < 5; i++ {
		r.Push(&packet.Packet{UID: uint64(i)})
	}
	if got := r.PopTail().UID; got != 4 {
		t.Fatalf("PopTail = %d", got)
	}
	if got := r.Pop().UID; got != 0 {
		t.Fatalf("head after PopTail = %d", got)
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
}

// TestRingWrapProperty drives random push/pop/poptail sequences against a
// reference slice implementation.
func TestRingWrapProperty(t *testing.T) {
	prop := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		var r Ring
		var ref []*packet.Packet
		uid := uint64(0)
		for i := 0; i < int(n)*4; i++ {
			switch rng.IntN(3) {
			case 0:
				p := &packet.Packet{UID: uid}
				uid++
				r.Push(p)
				ref = append(ref, p)
			case 1:
				got := r.Pop()
				if len(ref) == 0 {
					if got != nil {
						return false
					}
				} else {
					if got != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			default:
				got := r.PopTail()
				if len(ref) == 0 {
					if got != nil {
						return false
					}
				} else {
					if got != ref[len(ref)-1] {
						return false
					}
					ref = ref[:len(ref)-1]
				}
			}
			if r.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOStats(t *testing.T) {
	var f FIFO
	f.Enqueue(&packet.Packet{Size: 100}, 5)
	f.Enqueue(&packet.Packet{Size: 200}, 6)
	if f.Bytes() != 300 || f.Len() != 2 {
		t.Fatalf("bytes=%d len=%d", f.Bytes(), f.Len())
	}
	p, _ := f.Dequeue(7)
	if p == nil || p.EnqueuedAt != 5 {
		t.Fatal("EnqueuedAt not stamped")
	}
	s := f.Stats()
	if s.Enqueued != 2 || s.Dequeued != 1 || s.DequeuedBytes != 100 {
		t.Fatalf("stats %+v", s)
	}
}
