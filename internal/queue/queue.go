// Package queue defines the queue discipline interface shared by links in
// the network simulator and the statistics every implementation exports.
// Implementations live in internal/aqm (DropTail, RED), internal/fq (DRR,
// hierarchical DRR) and internal/core (the NetFence three-channel queue).
package queue

import (
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// Stats are cumulative counters exported by every queue.
type Stats struct {
	Enqueued      uint64
	Dequeued      uint64
	Dropped       uint64
	DequeuedBytes uint64
	DroppedBytes  uint64
}

// LossFraction returns drops/(drops+dequeues) since the counters in prev
// were captured — the regular-packet loss rate of Figure 19.
func (s Stats) LossFraction(prev Stats) float64 {
	drops := s.Dropped - prev.Dropped
	deqs := s.Dequeued - prev.Dequeued
	if drops+deqs == 0 {
		return 0
	}
	return float64(drops) / float64(drops+deqs)
}

// Queue is a link's packet buffer and scheduling discipline.
//
// Dequeue returns the next packet to transmit, or nil. When it returns nil
// with a non-zero retry time, the queue holds packets that are not yet
// eligible (e.g. a rate-capped request channel); the link must try again
// at that time. A nil packet with zero retry means the queue is empty.
type Queue interface {
	Enqueue(p *packet.Packet, now sim.Time) bool
	Dequeue(now sim.Time) (*packet.Packet, sim.Time)
	Len() int
	Bytes() int
	Stats() Stats
}

// HighWaterer is implemented by disciplines that track their highest
// backlog in bytes; the observability plane harvests it at snapshot
// barriers.
type HighWaterer interface {
	HighWater() int
}

// FIFO is an unbounded first-in-first-out queue: the zero value is ready
// to use. It serves as the default discipline for uncongestible links
// (host uplinks, well-provisioned edges).
type FIFO struct {
	q     Ring
	bytes int
	hwm   int
	stats Stats
}

// Enqueue always succeeds.
func (f *FIFO) Enqueue(p *packet.Packet, now sim.Time) bool {
	p.EnqueuedAt = now
	f.q.Push(p)
	f.bytes += int(p.Size)
	if f.bytes > f.hwm {
		f.hwm = f.bytes
	}
	f.stats.Enqueued++
	return true
}

// Dequeue pops the oldest packet.
func (f *FIFO) Dequeue(now sim.Time) (*packet.Packet, sim.Time) {
	p := f.q.Pop()
	if p == nil {
		return nil, 0
	}
	f.bytes -= int(p.Size)
	f.stats.Dequeued++
	f.stats.DequeuedBytes += uint64(p.Size)
	return p, 0
}

// Len returns the number of queued packets.
func (f *FIFO) Len() int { return f.q.Len() }

// Bytes returns the number of queued bytes.
func (f *FIFO) Bytes() int { return f.bytes }

// Stats returns cumulative counters.
func (f *FIFO) Stats() Stats { return f.stats }

// HighWater returns the highest backlog in bytes the queue reached.
func (f *FIFO) HighWater() int { return f.hwm }
