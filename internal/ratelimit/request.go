// Package ratelimit implements NetFence's three policing primitives,
// following the pseudo-code in the paper's appendix: the per-sender
// priority token bucket for request packets (Figure 15), the leaky-bucket
// packet-caching limiter for regular packets (Figure 16), and the robust
// AIMD rate-limit controller (Figure 17).
package ratelimit

import (
	"netfence/internal/sim"
)

// RequestLimiter is the per-sender token bucket policing request packets
// (§4.2, Figure 15). Tokens refill at the level-1 rate (one per l1 = 1 ms
// by default); admitting a level-k packet costs 2^(k-1) tokens, so each
// extra priority level halves a sender's admitted rate. Level-0 packets
// are never limited — they are forwarded with the lowest priority instead.
type RequestLimiter struct {
	// RatePerSec is the token refill rate (tokens per second).
	RatePerSec float64
	// Depth caps accumulated tokens, bounding how large a burst — or how
	// high a priority level — waiting can buy.
	Depth float64

	tokens float64
	last   sim.Time
}

// DefaultTokenRate is one token per millisecond (Figure 3: l1 = 1 ms).
const DefaultTokenRate = 1000.0

// DefaultTokenDepth lets a sender that has waited about two seconds
// afford a level-11 packet (2^10 tokens), matching the §6.3.1 narrative
// where legitimate senders succeed around level 10 after backoff.
const DefaultTokenDepth = 2048.0

// NewRequestLimiter returns a limiter with the paper's defaults, starting
// with a full bucket so a sender's first requests are not penalized.
func NewRequestLimiter(now sim.Time) *RequestLimiter {
	r := &RequestLimiter{RatePerSec: DefaultTokenRate, Depth: DefaultTokenDepth, last: now}
	r.tokens = r.Depth
	return r
}

// Cost returns the token cost of a level-k request packet.
func Cost(level uint8) float64 {
	if level == 0 {
		return 0
	}
	if level >= 32 {
		level = 31
	}
	return float64(uint64(1) << (level - 1))
}

// Admit decides whether a request packet of the given priority level may
// pass, consuming tokens on success (Figure 15).
func (r *RequestLimiter) Admit(level uint8, now sim.Time) bool {
	if level == 0 {
		return true
	}
	r.refill(now)
	cost := Cost(level)
	if cost > r.tokens {
		return false
	}
	r.tokens -= cost
	return true
}

// Tokens returns the current token count.
func (r *RequestLimiter) Tokens(now sim.Time) float64 {
	r.refill(now)
	return r.tokens
}

// AffordableLevel returns the highest priority level the sender can
// currently pay for. Senders estimate this from their waiting time; the
// simulation computes it exactly, which only strengthens the adversary.
func (r *RequestLimiter) AffordableLevel(now sim.Time) uint8 {
	r.refill(now)
	var level uint8
	for Cost(level+1) <= r.tokens && level < 31 {
		level++
	}
	return level
}

func (r *RequestLimiter) refill(now sim.Time) {
	if now <= r.last {
		return
	}
	r.tokens += r.RatePerSec * (now - r.last).Seconds()
	if r.tokens > r.Depth {
		r.tokens = r.Depth
	}
	r.last = now
}
