package ratelimit

import (
	"netfence/internal/packet"
	"netfence/internal/sim"
)

// Policer is the regular-packet rate-limiting strategy shared by the
// leaky-bucket limiter (the paper's choice) and the token-bucket variant
// (implemented for the ablation that justifies that choice, §4.3.3: a
// token bucket lets strategic senders save up credit and emit
// synchronized bursts above the rate limit).
type Policer interface {
	// Submit applies the limiter to a packet.
	Submit(p *packet.Packet) Verdict
	// Rate returns the current limit in bits per second.
	Rate() int64
	// SetRate changes the limit.
	SetRate(rateBps int64)
	// TakeIntervalThroughput returns and resets the interval's average
	// forwarded rate.
	TakeIntervalThroughput(interval sim.Time) int64
	// CreditBytes counts bytes toward the interval throughput without a
	// packet passing through.
	CreditBytes(n int)
	// Backlog returns cached packets (always 0 for a token bucket).
	Backlog() int
	// Drops returns cumulative discarded packets.
	Drops() uint64
	// LastDropAt returns when the limiter last discarded a packet.
	LastDropAt() sim.Time
	// LastActive returns when the limiter last saw or emitted a packet.
	LastActive() sim.Time
	// Stop cancels any pending timers.
	Stop()
}

// The leaky limiter is the canonical Policer.
var _ Policer = (*LeakyLimiter)(nil)

// TokenLimiter is a token-bucket regular-packet limiter: tokens (bits)
// refill at the rate limit and cap at BurstSec seconds worth. A packet
// passes immediately if the bucket holds its size; otherwise it is
// dropped (no caching). This is the design the paper explicitly rejects
// for the regular channel — after an idle period a sender can transmit a
// burst far above its rate limit, which synchronized attackers exploit
// (microscopic on-off attacks, §5.2.1).
type TokenLimiter struct {
	eng *sim.Engine
	// BurstSec is the bucket depth in seconds of credit.
	BurstSec float64

	rate   int64
	tokens float64 // bits
	last   sim.Time

	intervalBytes int64
	drops         uint64
	lastDropAt    sim.Time
	lastActive    sim.Time
}

var _ Policer = (*TokenLimiter)(nil)

// NewTokenLimiter creates a token-bucket limiter with a full bucket.
func NewTokenLimiter(eng *sim.Engine, rateBps int64, burstSec float64) *TokenLimiter {
	t := &TokenLimiter{eng: eng, BurstSec: burstSec, rate: rateBps, last: eng.Now()}
	t.tokens = t.depth()
	return t
}

func (t *TokenLimiter) depth() float64 { return float64(t.rate) * t.BurstSec }

func (t *TokenLimiter) refill(now sim.Time) {
	if now > t.last {
		t.tokens += float64(t.rate) * (now - t.last).Seconds()
		if d := t.depth(); t.tokens > d {
			t.tokens = d
		}
	}
	t.last = now
}

// Submit passes the packet if the bucket covers it, else drops.
func (t *TokenLimiter) Submit(p *packet.Packet) Verdict {
	now := t.eng.Now()
	t.lastActive = now
	t.refill(now)
	bits := float64(p.Size) * 8
	if bits > t.tokens {
		t.drops++
		t.lastDropAt = now
		return Drop
	}
	t.tokens -= bits
	t.intervalBytes += int64(p.Size)
	return Pass
}

// Rate returns the current limit.
func (t *TokenLimiter) Rate() int64 { return t.rate }

// SetRate changes the limit (the bucket keeps its tokens, clamped to the
// new depth).
func (t *TokenLimiter) SetRate(rateBps int64) {
	if rateBps < 1 {
		rateBps = 1
	}
	t.refill(t.eng.Now())
	t.rate = rateBps
	if d := t.depth(); t.tokens > d {
		t.tokens = d
	}
}

// TakeIntervalThroughput returns and resets the interval accumulator.
func (t *TokenLimiter) TakeIntervalThroughput(interval sim.Time) int64 {
	bits := t.intervalBytes * 8
	t.intervalBytes = 0
	if interval <= 0 {
		return 0
	}
	return int64(float64(bits) / interval.Seconds())
}

// CreditBytes counts bytes toward the interval throughput.
func (t *TokenLimiter) CreditBytes(n int) {
	t.intervalBytes += int64(n)
	t.lastActive = t.eng.Now()
}

// Backlog is always zero: token buckets do not cache.
func (t *TokenLimiter) Backlog() int { return 0 }

// Drops returns cumulative discarded packets.
func (t *TokenLimiter) Drops() uint64 { return t.drops }

// LastDropAt returns the last discard instant.
func (t *TokenLimiter) LastDropAt() sim.Time { return t.lastDropAt }

// LastActive returns the last activity instant.
func (t *TokenLimiter) LastActive() sim.Time { return t.lastActive }

// Stop is a no-op: token buckets hold no timers.
func (t *TokenLimiter) Stop() {}
