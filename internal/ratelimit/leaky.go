package ratelimit

import (
	"netfence/internal/packet"
	"netfence/internal/queue"
	"netfence/internal/sim"
)

// Verdict is the outcome of submitting a packet to a LeakyLimiter,
// mirroring the PASS/CACHED/DROP results of Figure 16.
type Verdict uint8

// Submission outcomes.
const (
	// Pass: the packet may be forwarded immediately.
	Pass Verdict = iota
	// Cached: the limiter buffered the packet and will emit it later
	// through the forward callback.
	Cached
	// Drop: the packet was discarded (caching delay would be too long).
	Drop
)

// LeakyLimiter is the per-(sender, bottleneck) regular-packet rate
// limiter (§4.3.3, Figure 16): a queue whose de-queuing rate is the rate
// limit. The paper deliberately uses a queue rather than a token bucket —
// a token bucket would let strategic senders synchronize bursts above the
// rate limit (on-off attacks); the queue shape makes the instantaneous
// output rate never exceed the limit while still absorbing TCP's bursts.
type LeakyLimiter struct {
	eng *sim.Engine
	// rate is the current rate limit in bits per second.
	rate int64
	// MaxDelay bounds the caching delay; packets that would wait longer
	// are dropped (Figure 16's caching_delay_too_long).
	MaxDelay sim.Time
	// forward emits a cached packet when its departure time arrives.
	forward func(*packet.Packet)

	q          queue.Ring
	bytes      int
	lastDepart sim.Time
	// unleashEv is the owned departure timer, re-armed in place for every
	// cached packet; armed tracks whether it is live.
	unleashEv sim.Event
	armed     bool

	// Interval accounting for the AIMD controller (Figure 17).
	intervalBytes int64
	drops         uint64
	lastDropAt    sim.Time
	lastActive    sim.Time
}

// NewLeakyLimiter creates a limiter emitting through forward. The first
// packet may depart immediately.
func NewLeakyLimiter(eng *sim.Engine, rateBps int64, maxDelay sim.Time, forward func(*packet.Packet)) *LeakyLimiter {
	return &LeakyLimiter{
		eng:        eng,
		rate:       rateBps,
		MaxDelay:   maxDelay,
		forward:    forward,
		lastDepart: eng.Now() - sim.Hour, // allow an immediate first departure
		lastActive: eng.Now(),
	}
}

// Rate returns the current rate limit in bits per second.
func (l *LeakyLimiter) Rate() int64 { return l.rate }

// SetRate changes the rate limit and reschedules any pending departure,
// Figure 17's update_packet_cache.
func (l *LeakyLimiter) SetRate(rateBps int64) {
	if rateBps < 1 {
		rateBps = 1
	}
	l.rate = rateBps
	if l.q.Len() > 0 {
		l.scheduleUnleash()
	}
}

// Submit applies Figure 16's rate_limit_regular_packet.
func (l *LeakyLimiter) Submit(p *packet.Packet) Verdict {
	now := l.eng.Now()
	l.lastActive = now
	if l.q.Len() == 0 {
		// Enough time since the last departure for one packet at the
		// current rate: pass through without caching.
		if now-l.lastDepart >= sim.TxTime(int(p.Size), l.rate) {
			l.lastDepart = now
			l.intervalBytes += int64(p.Size)
			return Pass
		}
	}
	if l.delayFor(int(p.Size)) > l.MaxDelay {
		l.drops++
		l.lastDropAt = now
		return Drop
	}
	p.EnqueuedAt = now
	l.q.Push(p)
	l.bytes += int(p.Size)
	if l.q.Len() == 1 {
		l.scheduleUnleash()
	}
	return Cached
}

// delayFor estimates the caching delay a packet of the given size would
// experience behind the current backlog.
func (l *LeakyLimiter) delayFor(size int) sim.Time {
	return sim.TxTime(l.bytes+size, l.rate)
}

// OnEvent implements sim.Handler: the departure timer fired.
func (l *LeakyLimiter) OnEvent(sim.Time, any) {
	l.armed = false
	l.unleash()
}

// scheduleUnleash (re)arms the departure timer for the head packet,
// Figure 16's schedule_next_unleash.
func (l *LeakyLimiter) scheduleUnleash() {
	if l.armed {
		l.unleashEv.Cancel()
		l.armed = false
	}
	head := l.q.Peek()
	if head == nil {
		return
	}
	at := l.lastDepart + sim.TxTime(int(head.Size), l.rate)
	l.eng.ScheduleEvent(&l.unleashEv, at, l, nil)
	l.armed = true
}

// unleash emits the head packet (Figure 16's unleash_packet).
func (l *LeakyLimiter) unleash() {
	p := l.q.Pop()
	if p == nil {
		return
	}
	l.bytes -= int(p.Size)
	now := l.eng.Now()
	l.lastDepart = now
	l.lastActive = now
	l.intervalBytes += int64(p.Size)
	if l.q.Len() > 0 {
		l.scheduleUnleash()
	}
	l.forward(p)
}

// CreditBytes adds to the interval throughput accumulator without
// passing a packet through the limiter. The Appendix B.2 inference
// variant uses it: a packet physically traverses only the smallest
// on-path limiter, but counts toward every inferred limiter's throughput
// as if chained through all of them.
func (l *LeakyLimiter) CreditBytes(n int) {
	l.intervalBytes += int64(n)
	l.lastActive = l.eng.Now()
}

// TakeIntervalThroughput returns the average forwarded rate in bits per
// second over the elapsed interval and resets the accumulator; the AIMD
// controller calls it once per control interval.
func (l *LeakyLimiter) TakeIntervalThroughput(interval sim.Time) int64 {
	bits := l.intervalBytes * 8
	l.intervalBytes = 0
	if interval <= 0 {
		return 0
	}
	return int64(float64(bits) / interval.Seconds())
}

// Backlog returns the number of cached packets.
func (l *LeakyLimiter) Backlog() int { return l.q.Len() }

// Drops returns the cumulative packets discarded for excessive delay.
func (l *LeakyLimiter) Drops() uint64 { return l.drops }

// LastDropAt returns when the limiter last discarded a packet.
func (l *LeakyLimiter) LastDropAt() sim.Time { return l.lastDropAt }

// LastActive returns when the limiter last saw or emitted a packet.
func (l *LeakyLimiter) LastActive() sim.Time { return l.lastActive }

// Stop cancels any pending departure timer. Cached packets are abandoned;
// callers remove limiters only after an idle period (§4.3.1's Ta), when
// the cache is empty.
func (l *LeakyLimiter) Stop() {
	if l.armed {
		l.unleashEv.Cancel()
		l.armed = false
	}
}
