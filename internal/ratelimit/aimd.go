package ratelimit

// AIMD is the robust rate-limit controller of §4.3.4 and Figure 17.
// Once per control interval I_lim the access router calls Adjust with
// whether fresh L-up feedback was seen (hasIncr) and the limiter's
// measured throughput:
//
//   - hasIncr and throughput > rate/2: additive increase by Delta;
//   - hasIncr otherwise: hold (prevents a sender from inflating its limit
//     by sending slowly for a long time);
//   - no hasIncr: multiplicative decrease by (1-Delta_MD) — hiding L-down
//     feedback cannot prevent the decrease, because obtaining L-up
//     feedback for a congested interval is impossible (Figure 4).
type AIMD struct {
	// DeltaBps is the additive-increase step (Figure 3: 12 kbps).
	DeltaBps int64
	// MD is the multiplicative-decrease factor delta (Figure 3: 0.1).
	MD float64
	// MinBps floors the rate limit so it can recover; the paper leaves
	// the floor unspecified.
	MinBps int64
}

// DefaultAIMD returns the Figure 3 controller parameters.
func DefaultAIMD() AIMD {
	return AIMD{DeltaBps: 12_000, MD: 0.1, MinBps: 512}
}

// Adjust returns the new rate limit given the interval's observations.
func (a AIMD) Adjust(rateBps int64, hasIncr bool, throughputBps int64) int64 {
	switch {
	case hasIncr && throughputBps > rateBps/2:
		rateBps += a.DeltaBps
	case hasIncr:
		// hold
	default:
		rateBps = int64(float64(rateBps) * (1 - a.MD))
	}
	if rateBps < a.MinBps {
		rateBps = a.MinBps
	}
	return rateBps
}
