package ratelimit

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"netfence/internal/packet"
	"netfence/internal/sim"
)

func TestCost(t *testing.T) {
	wants := map[uint8]float64{0: 0, 1: 1, 2: 2, 3: 4, 10: 512, 11: 1024}
	for level, want := range wants {
		if got := Cost(level); got != want {
			t.Errorf("Cost(%d) = %v, want %v", level, got, want)
		}
	}
}

func TestRequestLimiterLevel0Free(t *testing.T) {
	r := NewRequestLimiter(0)
	for i := 0; i < 10_000; i++ {
		if !r.Admit(0, 0) {
			t.Fatal("level-0 packet limited")
		}
	}
}

func TestRequestLimiterRate(t *testing.T) {
	r := NewRequestLimiter(0)
	// Drain the initial bucket.
	for r.Admit(1, 0) {
	}
	// At 1 token/ms, exactly ~100 level-1 packets fit in 100 ms.
	admitted := 0
	for i := 1; i <= 100; i++ {
		if r.Admit(1, sim.Time(i)*sim.Millisecond) {
			admitted++
		}
	}
	if admitted < 99 || admitted > 100 {
		t.Fatalf("admitted %d level-1 packets in 100ms, want ~100", admitted)
	}
}

func TestRequestLimiterLevelHalving(t *testing.T) {
	// Admitted rate at level k must be half the rate at level k-1.
	count := func(level uint8) int {
		r := NewRequestLimiter(0)
		for r.Admit(level, 0) { // drain initial depth
		}
		n := 0
		for i := 1; i <= 10_000; i++ { // 10 s
			if r.Admit(level, sim.Time(i)*sim.Millisecond) {
				n++
			}
		}
		return n
	}
	c2, c3 := count(2), count(3)
	ratio := float64(c2) / float64(c3)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("level-2/level-3 admitted ratio = %f (%d vs %d), want ~2", ratio, c2, c3)
	}
}

func TestRequestLimiterWaitBuysPriority(t *testing.T) {
	r := NewRequestLimiter(0)
	for r.Admit(1, 0) {
	}
	// After ~1s of waiting the sender can afford level 11 (cost 1024),
	// the §6.3.1 story: waiting time buys priority.
	lvl := r.AffordableLevel(1050 * sim.Millisecond)
	if lvl != 11 {
		t.Fatalf("affordable level after ~1s = %d, want 11", lvl)
	}
	if !r.Admit(11, 1050*sim.Millisecond) {
		t.Fatal("level-11 packet rejected after ~1s wait")
	}
	// Bucket drained again: the same level is immediately unaffordable.
	if r.Admit(11, 1060*sim.Millisecond) {
		t.Fatal("second level-11 admitted without waiting")
	}
}

func TestRequestLimiterDepthCap(t *testing.T) {
	r := NewRequestLimiter(0)
	if got := r.Tokens(sim.Hour); got != DefaultTokenDepth {
		t.Fatalf("tokens after an hour = %v, want capped at %v", got, DefaultTokenDepth)
	}
}

// Property: the admitted token spend over any horizon never exceeds
// depth + rate*time.
func TestRequestLimiterSpendBoundProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		r := NewRequestLimiter(0)
		spent := 0.0
		now := sim.Time(0)
		for i := 0; i < 500; i++ {
			now += sim.Time(rng.IntN(10)) * sim.Millisecond
			level := uint8(rng.IntN(6))
			if r.Admit(level, now) {
				spent += Cost(level)
			}
		}
		budget := DefaultTokenDepth + DefaultTokenRate*now.Seconds()
		return spent <= budget+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func leakySetup(rate int64) (*sim.Engine, *LeakyLimiter, *[]sim.Time) {
	eng := sim.New(1)
	var departs []sim.Time
	l := NewLeakyLimiter(eng, rate, 2*sim.Second, func(p *packet.Packet) {
		departs = append(departs, eng.Now())
	})
	return eng, l, &departs
}

func TestLeakyFirstPacketPasses(t *testing.T) {
	_, l, _ := leakySetup(100_000)
	if v := l.Submit(&packet.Packet{Size: 1500}); v != Pass {
		t.Fatalf("first packet verdict = %v, want Pass", v)
	}
}

func TestLeakyOutputRateNeverExceedsLimit(t *testing.T) {
	eng, l, departs := leakySetup(120_000) // 10 pkt/s at 1500B
	passed := 0
	for i := 0; i < 50; i++ {
		eng.At(sim.Time(i)*10*sim.Millisecond, func() {
			if l.Submit(&packet.Packet{Size: 1500}) == Pass {
				passed++
			}
		})
	}
	eng.Run()
	// All departures (passes + unleashes) must be spaced >= 100ms.
	if passed == 0 {
		t.Fatal("nothing passed")
	}
	all := *departs
	// Pass verdicts do not reach forward; reconstruct spacing from the
	// cached departures only, which must be >= pkt tx time apart.
	for i := 1; i < len(all); i++ {
		if all[i]-all[i-1] < 100*sim.Millisecond-sim.Microsecond {
			t.Fatalf("departure spacing %v < 100ms", all[i]-all[i-1])
		}
	}
}

func TestLeakyDropsWhenDelayTooLong(t *testing.T) {
	eng, l, _ := leakySetup(12_000) // 1 pkt/s; 2s max delay = 2 packets cached
	drops := 0
	for i := 0; i < 10; i++ {
		if l.Submit(&packet.Packet{Size: 1500}) == Drop {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("no drops despite large backlog")
	}
	if l.Drops() != uint64(drops) {
		t.Fatalf("Drops() = %d, want %d", l.Drops(), drops)
	}
	eng.Run()
}

func TestLeakyThroughputMetering(t *testing.T) {
	eng, l, _ := leakySetup(120_000)
	for i := 0; i < 20; i++ {
		eng.At(sim.Time(i)*100*sim.Millisecond, func() {
			l.Submit(&packet.Packet{Size: 1500})
		})
	}
	eng.RunUntil(2 * sim.Second)
	tput := l.TakeIntervalThroughput(2 * sim.Second)
	// 20 packets over 2 s at exactly the link rate: ~120 kbps.
	if tput < 100_000 || tput > 130_000 {
		t.Fatalf("interval throughput = %d, want ~120000", tput)
	}
	if l.TakeIntervalThroughput(2*sim.Second) != 0 {
		t.Fatal("accumulator not reset")
	}
}

func TestLeakySetRateReschedules(t *testing.T) {
	eng, l, departs := leakySetup(12_000) // 1 pkt/s
	l.Submit(&packet.Packet{Size: 1500})  // passes
	l.Submit(&packet.Packet{Size: 1500})  // cached, due at t=1s
	// Rate x10 at t=0: the cached packet should now depart at ~100ms.
	l.SetRate(120_000)
	eng.Run()
	if len(*departs) != 1 {
		t.Fatalf("departures = %d, want 1", len(*departs))
	}
	if (*departs)[0] > 150*sim.Millisecond {
		t.Fatalf("departure at %v, want ~100ms after rate raise", (*departs)[0])
	}
}

func TestLeakyStop(t *testing.T) {
	eng, l, departs := leakySetup(12_000)
	l.Submit(&packet.Packet{Size: 1500})
	l.Submit(&packet.Packet{Size: 1500})
	l.Stop()
	eng.Run()
	if len(*departs) != 0 {
		t.Fatal("packet departed after Stop")
	}
}

// Property: over any submission pattern, bytes emitted in [0, T] never
// exceed rate*T + one packet.
func TestLeakyRateBoundProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		eng := sim.New(seed)
		const rate = 100_000
		emitted := int64(0)
		l := NewLeakyLimiter(eng, rate, 5*sim.Second, func(p *packet.Packet) {
			emitted += int64(p.Size)
		})
		now := sim.Time(0)
		for i := 0; i < 300; i++ {
			now += sim.Time(rng.IntN(20)) * sim.Millisecond
			sz := int32(64 + rng.IntN(1436))
			eng.At(now, func() {
				if l.Submit(&packet.Packet{Size: sz}) == Pass {
					emitted += int64(sz)
				}
			})
		}
		horizon := now + 20*sim.Second
		eng.RunUntil(horizon)
		bound := int64(float64(rate)*horizon.Seconds())/8 + 1500
		return emitted <= bound
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAIMDRules(t *testing.T) {
	a := DefaultAIMD()
	// Increase only with hasIncr and sufficient utilization.
	if got := a.Adjust(100_000, true, 60_000); got != 112_000 {
		t.Fatalf("AI: got %d", got)
	}
	// Hold when under-utilizing (anti rate-limit inflation, §4.3.4).
	if got := a.Adjust(100_000, true, 40_000); got != 100_000 {
		t.Fatalf("hold: got %d", got)
	}
	// Decrease without hasIncr, regardless of throughput.
	if got := a.Adjust(100_000, false, 100_000); got != 90_000 {
		t.Fatalf("MD: got %d", got)
	}
	// Floor.
	if got := a.Adjust(100, false, 0); got != a.MinBps {
		t.Fatalf("floor: got %d", got)
	}
}

// Property: synchronized AIMD converges to fairness — Chiu & Jain. Two
// limiters with different starting rates, both always increasing when the
// sum is under capacity and decreasing otherwise, approach equal rates.
func TestAIMDConvergenceProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		a := DefaultAIMD()
		const capacity = 400_000
		r1 := int64(10_000 + rng.IntN(300_000))
		r2 := int64(10_000 + rng.IntN(300_000))
		for i := 0; i < 400; i++ {
			congested := r1+r2 > capacity
			// Both senders are greedy: throughput == rate.
			r1 = a.Adjust(r1, !congested, r1)
			r2 = a.Adjust(r2, !congested, r2)
		}
		diff := float64(r1 - r2)
		if diff < 0 {
			diff = -diff
		}
		mean := float64(r1+r2) / 2
		return diff/mean < 0.25 // within 25% of each other after 400 rounds
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
