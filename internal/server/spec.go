// Package server is the simulation service behind `netfence-sim
// -serve`: scenario and sweep jobs submitted as JSON over HTTP, a
// bounded job queue over the scenario and sweep engines, live
// timeseries streaming over SSE, and a mid-run control endpoint that
// feeds mutations into the exact code path scripted timelines use —
// so a live-steered run at the same simulated instants is
// byte-identical to the scripted batch run.
package server

import (
	"fmt"

	netfence "netfence"
)

// JobSpec is the top-level submission body of POST /jobs: exactly one
// of Scenario, Sweep or Search.
type JobSpec struct {
	// Scenario submits one scenario run, streamed and controllable.
	Scenario *ScenarioSpec `json:"scenario,omitempty"`
	// Sweep submits a scenario matrix; progress streams, control does
	// not apply (cells are batch runs).
	Sweep *SweepSpec `json:"sweep,omitempty"`
	// Search submits an adversarial search: per-candidate progress
	// streams as "candidate" events, control does not apply.
	Search *SearchJobSpec `json:"search,omitempty"`

	// StreamIntervalSec is the scenario job's segment step: the run
	// advances in steps of at most this many simulated seconds, flushing
	// timeseries samples and polling the control queue at each boundary
	// (0 = 1 s). Segmentation granularity never changes the result —
	// only how often the stream and control plane get a word in.
	StreamIntervalSec float64 `json:"stream_interval_sec,omitempty"`
	// PauseAtSec lists simulated instants where the scenario job pauses
	// and waits for a control message with resume=true. Mutations posted
	// while paused apply at exactly the paused instant — the mechanism
	// that makes live control reproducible against a scripted timeline.
	PauseAtSec []float64 `json:"pause_at_sec,omitempty"`
}

// ScenarioSpec is the JSON form of a netfence.Scenario.
type ScenarioSpec struct {
	Name string `json:"name,omitempty"`
	Seed uint64 `json:"seed,omitempty"`
	// Topology declares the network.
	Topology TopologySpec `json:"topology"`
	// Defense is the defense-registry name ("" = "netfence").
	Defense string `json:"defense,omitempty"`
	// DeployFraction deploys the defense on this fraction of source ASes
	// (nil = full deployment).
	DeployFraction *float64 `json:"deploy_fraction,omitempty"`
	// Workloads attach traffic.
	Workloads []WorkloadSpec `json:"workloads"`
	// DurationSec and WarmupSec are the run length and measurement-start
	// instants in simulated seconds (0 = the scenario defaults: 240 s,
	// duration/2).
	DurationSec float64 `json:"duration_sec,omitempty"`
	WarmupSec   float64 `json:"warmup_sec,omitempty"`
	// DenyAttackers gives victims the paper's receiver deny policy.
	DenyAttackers bool `json:"deny_attackers,omitempty"`
	// Shards partitions the run (0/1 = single engine, -1 = auto).
	Shards int `json:"shards,omitempty"`
	// Pipeline controls the sharded validation pipeline: "auto" (or
	// empty), "on" or "off". Results are byte-identical in every mode.
	Pipeline string `json:"pipeline,omitempty"`
	// TimeseriesIntervalSec is the sampling period of the timeseries
	// probe every serve-mode scenario carries (0 = 5 s).
	TimeseriesIntervalSec float64 `json:"timeseries_interval_sec,omitempty"`
	// Timeline schedules scripted mutations.
	Timeline []MutationSpec `json:"timeline,omitempty"`
}

// SweepSpec is the JSON form of a netfence.Sweep (the axes the service
// exposes).
type SweepSpec struct {
	Base            ScenarioSpec        `json:"base"`
	Defenses        []string            `json:"defenses,omitempty"`
	Populations     []int               `json:"populations,omitempty"`
	DeployFractions []float64           `json:"deploy_fractions,omitempty"`
	Attacks         []string            `json:"attacks,omitempty"`
	Timelines       []NamedTimelineSpec `json:"timelines,omitempty"`
	Seeds           []uint64            `json:"seeds,omitempty"`
	Shards          []int               `json:"shards,omitempty"`
	Parallelism     int                 `json:"parallelism,omitempty"`
}

// SearchJobSpec is the JSON form of a netfence.SearchSpec: the
// adversarial search over attack-parameter spaces, one optimizer run
// per (defense × strategy) cell.
type SearchJobSpec struct {
	// Base is the scenario every candidate derives from; it must carry
	// an "attack" workload.
	Base ScenarioSpec `json:"base"`
	// Defenses and Strategies pick the searched cells (empty = Base's
	// defense × every registered strategy).
	Defenses   []string `json:"defenses,omitempty"`
	Strategies []string `json:"strategies,omitempty"`
	// Optimizer is "grid" (default) or "anneal".
	Optimizer string `json:"optimizer,omitempty"`
	// Budget caps evaluated candidates per cell (0 = 24).
	Budget int `json:"budget,omitempty"`
	// Seed seeds the optimizer's candidate stream.
	Seed uint64 `json:"seed,omitempty"`
	// Nu is the Theorem-1 gate's assumed transport efficiency (0 = 0.5).
	Nu float64 `json:"nu,omitempty"`
	// Parallelism caps concurrent candidate simulations (0 = auto).
	Parallelism int `json:"parallelism,omitempty"`
}

// NamedTimelineSpec is one entry of the sweep's timeline axis.
type NamedTimelineSpec struct {
	Name     string         `json:"name"`
	Timeline []MutationSpec `json:"timeline,omitempty"`
}

// TopologySpec is the JSON form of the in-tree topology specs,
// selected by Kind.
type TopologySpec struct {
	// Kind is "dumbbell", "star", "parkinglot" or "random-as".
	Kind string `json:"kind"`
	// Senders is the sender population (dumbbell, star, random-as).
	Senders int `json:"senders,omitempty"`
	// BottleneckBps is the bottleneck capacity (dumbbell, star,
	// random-as).
	BottleneckBps int64 `json:"bottleneck_bps,omitempty"`
	// ColluderASes adds colluder-host ASes.
	ColluderASes int `json:"colluder_ases,omitempty"`
	// SrcASes overrides the source-AS count (dumbbell, random-as).
	SrcASes int `json:"src_ases,omitempty"`
	// SendersPerGroup, L1Bps, L2Bps configure the parking lot.
	SendersPerGroup int   `json:"senders_per_group,omitempty"`
	L1Bps           int64 `json:"l1_bps,omitempty"`
	L2Bps           int64 `json:"l2_bps,omitempty"`
	// TransitASes, ExtraLinks, GraphSeed configure random-as.
	TransitASes int    `json:"transit_ases,omitempty"`
	ExtraLinks  int    `json:"extra_links,omitempty"`
	GraphSeed   uint64 `json:"graph_seed,omitempty"`
}

// WorkloadSpec is the JSON form of the in-tree workloads, selected by
// Kind. Senders selects explicit indices; From/To selects the range
// [From, To) when Senders is absent.
type WorkloadSpec struct {
	// Kind is "longtcp", "filetransfers", "webtraffic", "udpflood",
	// "onoffflood", "colluderpairs", "requestflood" or "attack".
	Kind    string `json:"kind"`
	Group   int    `json:"group,omitempty"`
	Senders []int  `json:"senders,omitempty"`
	From    int    `json:"from,omitempty"`
	To      int    `json:"to,omitempty"`
	// RateBps is the per-sender rate of the flood and attack kinds.
	RateBps int64 `json:"rate_bps,omitempty"`
	// ToColluders aims flood/attack kinds at the colluder hosts.
	ToColluders bool `json:"to_colluders,omitempty"`
	// OnSec and OffSec are the onoffflood phase lengths.
	OnSec  float64 `json:"on_sec,omitempty"`
	OffSec float64 `json:"off_sec,omitempty"`
	// FileBytes is the filetransfers transfer size (0 = 20 KB).
	FileBytes int64 `json:"file_bytes,omitempty"`
	// Strategy is the attack kind's registry name ("" = "flood").
	Strategy string `json:"strategy,omitempty"`
	// Params sets the attack strategy's tunable parameters by name
	// (unknown keys or out-of-range values fail the submit).
	Params map[string]float64 `json:"params,omitempty"`
	// Level and Strategic configure requestflood.
	Level     uint8 `json:"level,omitempty"`
	Strategic bool  `json:"strategic,omitempty"`
}

// MutationSpec is the JSON form of a netfence.Mutation, in seconds.
type MutationSpec struct {
	AtSec  float64             `json:"at_sec"`
	Link   *LinkMutationSpec   `json:"link,omitempty"`
	Attack *AttackMutationSpec `json:"attack,omitempty"`
	Deploy *DeployMutationSpec `json:"deploy,omitempty"`
}

// LinkMutationSpec degrades or restores a bottleneck link.
type LinkMutationSpec struct {
	Bottleneck int     `json:"bottleneck,omitempty"`
	RateBps    int64   `json:"rate_bps,omitempty"`
	DelayMs    float64 `json:"delay_ms,omitempty"`
	Restore    bool    `json:"restore,omitempty"`
}

// AttackMutationSpec toggles or re-parameterizes an attack workload.
type AttackMutationSpec struct {
	Workload int    `json:"workload,omitempty"`
	Action   string `json:"action"`
	RateBps  int64  `json:"rate_bps,omitempty"`
}

// DeployMutationSpec switches the deployment plan to the given
// fraction of source ASes (1 = full deployment).
type DeployMutationSpec struct {
	Fraction float64 `json:"fraction"`
}

func secs(s float64) netfence.Time {
	return netfence.Time(s * float64(netfence.Second))
}

// Mutation converts the spec to a netfence.Mutation (structural
// validation happens at Build/Apply).
func (m MutationSpec) Mutation() netfence.Mutation {
	out := netfence.Mutation{At: secs(m.AtSec)}
	if m.Link != nil {
		out.Link = &netfence.LinkMutation{
			Bottleneck: m.Link.Bottleneck,
			RateBps:    m.Link.RateBps,
			Delay:      secs(m.Link.DelayMs / 1000),
			Restore:    m.Link.Restore,
		}
	}
	if m.Attack != nil {
		out.Attack = &netfence.AttackMutation{
			Workload: m.Attack.Workload,
			Action:   netfence.AttackAction(m.Attack.Action),
			RateBps:  m.Attack.RateBps,
		}
	}
	if m.Deploy != nil {
		out.Deploy = &netfence.DeployMutation{
			Deployment: netfence.DeployFraction(m.Deploy.Fraction),
		}
	}
	return out
}

func mutations(specs []MutationSpec) []netfence.Mutation {
	if len(specs) == 0 {
		return nil
	}
	out := make([]netfence.Mutation, len(specs))
	for i, m := range specs {
		out[i] = m.Mutation()
	}
	return out
}

func (t TopologySpec) build() (netfence.TopologySpec, error) {
	switch t.Kind {
	case "dumbbell":
		return netfence.DumbbellSpec{
			Senders:       t.Senders,
			BottleneckBps: t.BottleneckBps,
			ColluderASes:  t.ColluderASes,
			SrcASes:       t.SrcASes,
		}, nil
	case "star":
		return netfence.StarSpec{
			Senders:       t.Senders,
			BottleneckBps: t.BottleneckBps,
			ColluderASes:  t.ColluderASes,
		}, nil
	case "parkinglot":
		return netfence.ParkingLotSpec{
			SendersPerGroup: t.SendersPerGroup,
			L1Bps:           t.L1Bps,
			L2Bps:           t.L2Bps,
		}, nil
	case "random-as":
		return netfence.RandomASSpec{
			Senders:       t.Senders,
			BottleneckBps: t.BottleneckBps,
			SrcASes:       t.SrcASes,
			TransitASes:   t.TransitASes,
			ExtraLinks:    t.ExtraLinks,
			ColluderASes:  t.ColluderASes,
			GraphSeed:     t.GraphSeed,
		}, nil
	case "":
		return nil, fmt.Errorf("topology: kind is required (dumbbell|star|parkinglot|random-as)")
	default:
		return nil, fmt.Errorf("topology: unknown kind %q (dumbbell|star|parkinglot|random-as)", t.Kind)
	}
}

func (w WorkloadSpec) senders() []int {
	if len(w.Senders) > 0 {
		return w.Senders
	}
	return netfence.Range(w.From, w.To)
}

func (w WorkloadSpec) build() (netfence.Workload, error) {
	s := w.senders()
	switch w.Kind {
	case "longtcp":
		return netfence.LongTCP{Senders: s, Group: w.Group}, nil
	case "filetransfers":
		return netfence.FileTransfers{Senders: s, Group: w.Group, FileBytes: w.FileBytes}, nil
	case "webtraffic":
		return netfence.WebTraffic{Senders: s, Group: w.Group}, nil
	case "udpflood":
		return netfence.UDPFlood{Senders: s, Group: w.Group, RateBps: w.RateBps, ToColluders: w.ToColluders}, nil
	case "onoffflood":
		return netfence.OnOffFlood{
			Senders: s, Group: w.Group, RateBps: w.RateBps,
			On: secs(w.OnSec), Off: secs(w.OffSec), ToColluders: w.ToColluders,
		}, nil
	case "colluderpairs":
		return netfence.ColluderPairs{Senders: s, Group: w.Group, RateBps: w.RateBps}, nil
	case "requestflood":
		return netfence.RequestFlood{Senders: s, Group: w.Group, RateBps: w.RateBps, Level: w.Level, Strategic: w.Strategic}, nil
	case "attack":
		// Fail the submit, not the job, on a bad strategy name or
		// parameter map — the same checks the scenario build would run.
		name := w.Strategy
		if name == "" {
			name = "flood"
		}
		if _, _, err := netfence.ParseAttackSpec(netfence.FormatAttackSpec(name, w.Params)); err != nil {
			return nil, err
		}
		return netfence.AttackSpec{
			Strategy: w.Strategy, Senders: s, Group: w.Group,
			RateBps: w.RateBps, ToColluders: w.ToColluders,
			Params: w.Params,
		}, nil
	case "":
		return nil, fmt.Errorf("workload: kind is required")
	default:
		return nil, fmt.Errorf("workload: unknown kind %q", w.Kind)
	}
}

// Scenario converts the spec to a runnable netfence.Scenario. The
// serve mode always attaches a TimeseriesProbe alongside the default
// probe set — the streaming source — so an equivalent batch run must
// declare the same probes to compare byte-identically (use this
// function for that).
func (s ScenarioSpec) Scenario() (netfence.Scenario, error) {
	topoSpec, err := s.Topology.build()
	if err != nil {
		return netfence.Scenario{}, err
	}
	pipeline, err := netfence.ParsePipelineMode(s.Pipeline)
	if err != nil {
		return netfence.Scenario{}, err
	}
	sc := netfence.Scenario{
		Name:          s.Name,
		Seed:          s.Seed,
		Topology:      topoSpec,
		Defense:       netfence.Defense(s.Defense),
		Duration:      secs(s.DurationSec),
		Warmup:        secs(s.WarmupSec),
		DenyAttackers: s.DenyAttackers,
		Shards:        s.Shards,
		Pipeline:      pipeline,
		Timeline:      mutations(s.Timeline),
	}
	if s.DeployFraction != nil {
		sc.Deployment = netfence.DeployFraction(*s.DeployFraction)
	}
	for i, w := range s.Workloads {
		wl, err := w.build()
		if err != nil {
			return netfence.Scenario{}, fmt.Errorf("workload %d: %w", i, err)
		}
		sc.Workloads = append(sc.Workloads, wl)
	}
	interval := secs(s.TimeseriesIntervalSec)
	if interval <= 0 {
		interval = 5 * netfence.Second
	}
	sc.Probes = []netfence.Probe{
		netfence.GoodputProbe{},
		netfence.FairnessProbe{},
		netfence.FCTProbe{},
		netfence.TimeseriesProbe{Interval: interval},
	}
	return sc, nil
}

// Sweep converts the spec to a runnable netfence.Sweep.
func (s SweepSpec) Sweep() (netfence.Sweep, error) {
	base, err := s.Base.Scenario()
	if err != nil {
		return netfence.Sweep{}, fmt.Errorf("base: %w", err)
	}
	sw := netfence.Sweep{
		Base:            base,
		Defenses:        s.Defenses,
		Populations:     s.Populations,
		DeployFractions: s.DeployFractions,
		Attacks:         s.Attacks,
		Seeds:           s.Seeds,
		Shards:          s.Shards,
		Parallelism:     s.Parallelism,
	}
	for _, tl := range s.Timelines {
		sw.Timelines = append(sw.Timelines, netfence.NamedTimeline{
			Name:     tl.Name,
			Timeline: mutations(tl.Timeline),
		})
	}
	return sw, nil
}

// Search converts the spec to a runnable netfence.SearchSpec (the
// Progress and OnCandidate hooks are the job runner's to wire).
func (s SearchJobSpec) Search() (netfence.SearchSpec, error) {
	base, err := s.Base.Scenario()
	if err != nil {
		return netfence.SearchSpec{}, fmt.Errorf("base: %w", err)
	}
	return netfence.SearchSpec{
		Base:        base,
		Defenses:    s.Defenses,
		Strategies:  s.Strategies,
		Optimizer:   s.Optimizer,
		Budget:      s.Budget,
		Seed:        s.Seed,
		Nu:          s.Nu,
		Parallelism: s.Parallelism,
	}, nil
}
