package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	netfence "netfence"
	"netfence/internal/obs"
)

// jobState is the lifecycle of a job: queued → running (⇄ paused for
// scenario jobs) → done | failed | cancelled.
type jobState string

const (
	jobQueued    jobState = "queued"
	jobRunning   jobState = "running"
	jobPaused    jobState = "paused"
	jobDone      jobState = "done"
	jobFailed    jobState = "failed"
	jobCancelled jobState = "cancelled"
)

// controlMsg carries a POST /jobs/{id}/control body to the runner.
type controlMsg struct {
	mutations []netfence.Mutation
	resume    bool
}

// JobStatus is the JSON status of a job (GET /jobs and /jobs/{id}).
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// NowSec is the scenario job's simulated clock at the last segment
	// boundary.
	NowSec float64 `json:"now_sec,omitempty"`
	// Done, Total and Cell report sweep progress.
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
	Cell  string `json:"cell,omitempty"`
}

// controlAck is streamed on the job's SSE channel when a control
// message is applied (or rejected by the instance).
type controlAck struct {
	Applied int    `json:"applied"`
	Pending int    `json:"pending"`
	Error   string `json:"error,omitempty"`
	Resume  bool   `json:"resume,omitempty"`
}

// job is one queued or running submission.
type job struct {
	id   string
	spec JobSpec

	mu      sync.Mutex
	state   jobState
	errMsg  string
	nowSec  float64
	done    int
	total   int
	cell    string
	result  *netfence.Result
	results []*netfence.Result
	report  *netfence.SearchReport
	// counters is the job's latest merged metric snapshot (deterministic
	// plus runtime plane): scenario jobs refresh it at every segment
	// boundary, sweep jobs when the matrix completes.
	counters map[string]uint64

	// meter accumulates executed-event counts across every engine the
	// job creates — per-job, so concurrent jobs never share a counter.
	meter *netfence.Meter

	hub      *hub
	ctl      chan controlMsg
	cancel   context.CancelFunc
	finished chan struct{}
}

func newJob(id string, spec JobSpec) *job {
	return &job{
		id:       id,
		spec:     spec,
		state:    jobQueued,
		meter:    &netfence.Meter{},
		hub:      newHub(),
		ctl:      make(chan controlMsg, 16),
		finished: make(chan struct{}),
	}
}

func (j *job) kind() string {
	switch {
	case j.spec.Scenario != nil:
		return "scenario"
	case j.spec.Sweep != nil:
		return "sweep"
	default:
		return "search"
	}
}

// countersSnapshot copies the job's latest metric snapshot, overlaying
// the live executed-event total from the job's meter (safe to read at
// any time — the meter is atomic and engines flush it at every segment
// boundary, so a running job's event count stays fresh even before its
// first counter snapshot lands).
func (j *job) countersSnapshot() map[string]uint64 {
	j.mu.Lock()
	out := make(map[string]uint64, len(j.counters)+1)
	for k, v := range j.counters {
		out[k] = v
	}
	j.mu.Unlock()
	out["sim_events_executed_total"] = j.meter.Total()
	return out
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.id, Kind: j.kind(), State: string(j.state), Error: j.errMsg,
		NowSec: j.nowSec, Done: j.done, Total: j.total, Cell: j.cell,
	}
}

func (j *job) setState(s jobState) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
	j.hub.publish("status", j.status())
}

// control hands a control message to the runner. It blocks until the
// runner's next boundary when the control buffer is full, and fails
// once the job has finished.
func (j *job) control(ms []netfence.Mutation, resume bool) error {
	// Check finished first: once the job is done both select cases
	// below could be ready and Go would pick randomly, sometimes
	// accepting a control message into a buffer nobody will drain.
	select {
	case <-j.finished:
		return errors.New("job is no longer running")
	default:
	}
	select {
	case j.ctl <- controlMsg{mutations: ms, resume: resume}:
		return nil
	case <-j.finished:
		return errors.New("job is no longer running")
	}
}

// run executes the job to completion and settles its terminal state.
// Called on a worker goroutine; ctx is the job's own cancellable
// context (cancelled by DELETE or server shutdown deadline).
func (j *job) run(ctx context.Context) {
	defer close(j.finished)
	defer j.hub.close()
	j.setState(jobRunning)

	var err error
	switch {
	case j.spec.Scenario != nil:
		err = j.runScenario(ctx)
	case j.spec.Sweep != nil:
		err = j.runSweep(ctx)
	default:
		err = j.runSearch(ctx)
	}

	j.mu.Lock()
	switch {
	case ctx.Err() != nil:
		j.state = jobCancelled
		if err != nil && !errors.Is(err, context.Canceled) {
			j.errMsg = err.Error()
		}
	case err != nil:
		j.state = jobFailed
		j.errMsg = err.Error()
	default:
		j.state = jobDone
	}
	result, results, report := j.result, j.results, j.report
	j.mu.Unlock()

	if result != nil {
		j.hub.publish("result", result)
	} else if results != nil {
		j.hub.publish("result", results)
	} else if report != nil {
		j.hub.publish("result", report)
	}
	j.hub.publish("status", j.status())
}

// sampleEvent is one streamed timeseries point. The last sample of a
// flush batch additionally carries the deterministic counter increments
// accumulated since the previous batch.
type sampleEvent struct {
	netfence.Sample
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// counterDelta returns the keys of cur that grew past prev — the
// per-segment increments attached to streamed samples. A nil prev
// yields the full snapshot.
func counterDelta(prev, cur map[string]uint64) map[string]uint64 {
	d := make(map[string]uint64)
	for k, v := range cur {
		if v > prev[k] {
			d[k] = v - prev[k]
		}
	}
	return d
}

// runScenario drives a scenario job in segments. Each segment advances
// to the earliest of now+step, the next scripted mutation, the next
// pending live mutation, the next pause instant, and the duration;
// at the boundary it applies due mutations, flushes new timeseries
// samples to the stream, and polls the control queue. Pauses block on
// the control queue until a resume arrives, so mutations posted while
// paused apply at exactly the held instant — which is what makes a
// live-steered run reproducible against a scripted timeline.
func (j *job) runScenario(ctx context.Context) error {
	sc, err := j.spec.Scenario.Scenario()
	if err != nil {
		return err
	}
	sc.Meter = j.meter
	in, err := sc.Build()
	if err != nil {
		return err
	}
	defer in.Stop()

	step := secs(j.spec.StreamIntervalSec)
	if step <= 0 {
		step = netfence.Second
	}
	scripted := in.Timeline() // sorted; applied here, not by Run
	pauses := make([]netfence.Time, 0, len(j.spec.PauseAtSec))
	for _, p := range j.spec.PauseAtSec {
		if t := secs(p); t > 0 && t <= sc.Duration {
			pauses = append(pauses, t)
		}
	}
	sort.Slice(pauses, func(a, b int) bool { return pauses[a] < pauses[b] })

	var pending []netfence.Mutation // live mutations scheduled ahead
	emitted := 0                    // samples already streamed
	next, pi := 0, 0
	now := netfence.Time(0)

	var prevCounters map[string]uint64
	flush := func() {
		series := in.Series()
		det := in.Counters()
		if emitted < len(series) {
			// The last sample of the batch carries the deterministic
			// counter increments since the previous published delta, so
			// stream consumers see the counter plane advance segment by
			// segment without re-polling the metrics endpoint. prev only
			// moves when a delta ships: a boundary with no new samples
			// (e.g. inside the warmup) folds into the next batch instead
			// of silently dropping its increments.
			delta := counterDelta(prevCounters, det)
			prevCounters = det
			for ; emitted < len(series); emitted++ {
				ev := sampleEvent{Sample: series[emitted]}
				if emitted == len(series)-1 {
					ev.Counters = delta
				}
				j.hub.publish("sample", ev)
			}
		}
		merged := make(map[string]uint64, len(det))
		for k, v := range det {
			merged[k] = v
		}
		for k, v := range in.RuntimeCounters() {
			merged[k] = v
		}
		j.mu.Lock()
		j.nowSec = float64(now) / float64(netfence.Second)
		j.counters = merged
		j.mu.Unlock()
	}
	// absorb applies a control message: mutations at or before the
	// current instant apply here and now, later ones join the pending
	// schedule.
	absorb := func(msg controlMsg) {
		ack := controlAck{Resume: msg.resume}
		var due []netfence.Mutation
		for _, m := range msg.mutations {
			if m.At <= now {
				due = append(due, m)
			} else {
				pending = append(pending, m)
			}
		}
		sort.SliceStable(pending, func(a, b int) bool { return pending[a].At < pending[b].At })
		if len(due) > 0 {
			if err := in.Apply(due...); err != nil {
				ack.Error = err.Error()
			} else {
				ack.Applied = len(due)
			}
		}
		ack.Pending = len(pending)
		j.hub.publish("control", ack)
	}

	for now < sc.Duration {
		t := now + step
		if t > sc.Duration {
			t = sc.Duration
		}
		if next < len(scripted) && scripted[next].At < t {
			t = scripted[next].At
		}
		if len(pending) > 0 && pending[0].At < t {
			t = pending[0].At
		}
		if pi < len(pauses) && pauses[pi] < t {
			t = pauses[pi]
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		in.Advance(t)
		now = t

		// Scripted mutations due at this instant, grouped as Run groups
		// them, then live ones scheduled for exactly this instant.
		for next < len(scripted) && scripted[next].At == now {
			g := next + 1
			for g < len(scripted) && scripted[g].At == now {
				g++
			}
			if err := in.Apply(scripted[next:g]...); err != nil {
				return fmt.Errorf("timeline at %.3fs: %w", float64(now)/float64(netfence.Second), err)
			}
			next = g
		}
		for len(pending) > 0 && pending[0].At <= now {
			m := pending[0]
			pending = pending[1:]
			if err := in.Apply(m); err != nil {
				j.hub.publish("control", controlAck{Error: err.Error(), Pending: len(pending)})
			}
		}
		flush()

		if pi < len(pauses) && pauses[pi] == now {
			pi++
			j.setState(jobPaused)
			for resumed := false; !resumed; {
				select {
				case msg := <-j.ctl:
					absorb(msg)
					resumed = msg.resume
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			j.setState(jobRunning)
		} else {
			for drained := false; !drained; {
				select {
				case msg := <-j.ctl:
					absorb(msg)
				default:
					drained = true
				}
			}
		}
	}

	res := in.Finish()
	flush()
	j.mu.Lock()
	j.result = res
	j.mu.Unlock()
	return nil
}

// runSweep drives a sweep job through the batch engine, mirroring
// per-cell progress onto the job status and the stream. A cancelled
// sweep keeps its completed cells (nil marks unfinished ones).
func (j *job) runSweep(ctx context.Context) error {
	sw, err := j.spec.Sweep.Sweep()
	if err != nil {
		return err
	}
	sw.Base.Meter = j.meter
	if base := sw.BaseFor; base != nil {
		sw.BaseFor = func(pop int) netfence.Scenario {
			sc := base(pop)
			sc.Meter = j.meter
			return sc
		}
	}
	sw.Progress = func(done, total int, cell string) {
		j.mu.Lock()
		j.done, j.total, j.cell = done, total, cell
		j.mu.Unlock()
		j.hub.publish("status", j.status())
	}
	results, err := sw.RunContext(ctx)
	agg := make(map[string]uint64)
	for _, r := range results {
		if r != nil {
			obs.MergeMap(agg, r.Counters)
		}
	}
	j.mu.Lock()
	j.results = results
	j.counters = agg
	j.mu.Unlock()
	return err
}

// candidateEvent is one evaluated search candidate on the job's SSE
// stream ("candidate" events): the cell it belongs to and the trace
// step, best-so-far marked — the live worst-found feed.
type candidateEvent struct {
	Cell string              `json:"cell"`
	Step netfence.SearchStep `json:"step"`
}

// runSearch drives an adversarial-search job, mirroring per-candidate
// progress onto the job status and streaming each candidate. A search
// has no partial report: cancellation discards the cells in flight.
func (j *job) runSearch(ctx context.Context) error {
	sp, err := j.spec.Search.Search()
	if err != nil {
		return err
	}
	sp.Base.Meter = j.meter
	sp.Progress = func(done, total int, cell string) {
		j.mu.Lock()
		j.done, j.total, j.cell = done, total, cell
		j.mu.Unlock()
		j.hub.publish("status", j.status())
	}
	sp.OnCandidate = func(cell string, step netfence.SearchStep) {
		j.hub.publish("candidate", candidateEvent{Cell: cell, Step: step})
	}
	report, err := sp.RunContext(ctx)
	j.mu.Lock()
	j.report = report
	j.mu.Unlock()
	return err
}
