package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	netfence "netfence"
)

// smokeSpec is the e2e scenario: a small dumbbell mix whose bottleneck
// is degraded mid-run by a scripted timeline mutation.
func smokeSpec() ScenarioSpec {
	return ScenarioSpec{
		Name: "smoke",
		Seed: 7,
		Topology: TopologySpec{
			Kind: "dumbbell", Senders: 8, BottleneckBps: 1_000_000, ColluderASes: 1,
		},
		Workloads: []WorkloadSpec{
			{Kind: "longtcp", From: 0, To: 4},
			{Kind: "attack", From: 4, To: 8},
		},
		DurationSec:           8,
		WarmupSec:             2,
		TimeseriesIntervalSec: 1,
		Timeline: []MutationSpec{
			{AtSec: 4, Link: &LinkMutationSpec{Bottleneck: 0, RateBps: 500_000}},
		},
	}
}

// batchResult runs a spec through the batch engine — the byte-equality
// baseline every served run is held to.
func batchResult(t *testing.T, spec ScenarioSpec) []byte {
	t.Helper()
	sc, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	in, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(in.Run())
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func startServer(t *testing.T) *Server {
	t.Helper()
	s := New(Config{Addr: "127.0.0.1:0", Workers: 1, QueueDepth: 4})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitState polls a job's status endpoint until it reaches want.
func waitState(t *testing.T, base, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		getJSON(t, base+"/jobs/"+id, &st)
		if st.State == want {
			return st
		}
		if st.State == string(jobFailed) {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, want)
	return JobStatus{}
}

type sseEvent struct {
	typ  string
	data []byte
}

// readStream consumes a job's SSE stream to the end.
func readStream(t *testing.T, url string) []sseEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type = %q", ct)
	}
	var events []sseEvent
	var typ string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			events = append(events, sseEvent{typ: typ, data: []byte(strings.TrimPrefix(line, "data: "))})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestServeE2ESmoke is the service's end-to-end gate (run in CI with
// -race): submit a dumbbell job with a mid-run link degradation,
// stream its SSE feed to completion, and hold the streamed result
// byte-identical to the batch run of the same spec.
func TestServeE2ESmoke(t *testing.T) {
	s := startServer(t)
	base := "http://" + s.Addr()

	if code := getJSON(t, base+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	spec := smokeSpec()
	code, body := postJSON(t, base+"/jobs", JobSpec{Scenario: &spec, StreamIntervalSec: 1})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	// The stream replays from the start and ends with the result.
	events := readStream(t, base+"/jobs/"+st.ID+"/stream")
	var samples int
	var streamed []byte
	for _, ev := range events {
		switch ev.typ {
		case "sample":
			samples++
		case "result":
			streamed = ev.data
		}
	}
	if samples == 0 {
		t.Fatal("stream carried no timeseries samples")
	}
	if streamed == nil {
		t.Fatal("stream ended without a result event")
	}

	// The result endpoint agrees with the stream, and both match the
	// batch engine byte for byte.
	var res struct {
		Status JobStatus       `json:"status"`
		Result json.RawMessage `json:"result"`
	}
	if code := getJSON(t, base+"/jobs/"+st.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result = %d", code)
	}
	if res.Status.State != string(jobDone) {
		t.Fatalf("final state = %s (%s)", res.Status.State, res.Status.Error)
	}
	want := batchResult(t, spec)
	if !bytes.Equal(bytes.TrimSpace(res.Result), bytes.TrimSpace(want)) {
		t.Errorf("served result differs from batch run:\nserved: %s\nbatch:  %s", res.Result, want)
	}
	if !bytes.Equal(bytes.TrimSpace(streamed), bytes.TrimSpace(want)) {
		t.Errorf("streamed result differs from batch run")
	}

	// The streamed samples are exactly the result's series.
	var full netfence.Result
	if err := json.Unmarshal(res.Result, &full); err != nil {
		t.Fatal(err)
	}
	if samples != len(full.Series) {
		t.Errorf("streamed %d samples, result has %d", samples, len(full.Series))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestLiveControlMatchesScriptedTimeline is the control plane's
// determinism contract over HTTP: pausing a sharded run at scripted
// instants and POSTing the mutations live produces a result
// byte-identical to the same mutations scripted as a Timeline in a
// batch run.
func TestLiveControlMatchesScriptedTimeline(t *testing.T) {
	scripted := smokeSpec()
	scripted.Name = "live"
	scripted.Shards = 2
	scripted.Timeline = []MutationSpec{
		{AtSec: 3, Link: &LinkMutationSpec{Bottleneck: 0, RateBps: 400_000}},
		{AtSec: 5, Attack: &AttackMutationSpec{Workload: 0, Action: "stop"}},
		{AtSec: 6, Link: &LinkMutationSpec{Bottleneck: 0, Restore: true}},
	}
	want := batchResult(t, scripted)

	live := scripted
	live.Timeline = nil
	s := startServer(t)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	base := "http://" + s.Addr()

	code, body := postJSON(t, base+"/jobs", JobSpec{
		Scenario:          &live,
		StreamIntervalSec: 1,
		PauseAtSec:        []float64{3, 5, 6},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	// At each pause, deliver the scripted instant's mutations over the
	// control endpoint and resume.
	for _, m := range scripted.Timeline {
		ps := waitState(t, base, st.ID, string(jobPaused))
		if ps.NowSec != m.AtSec {
			t.Fatalf("paused at %.3fs, want %.3fs", ps.NowSec, m.AtSec)
		}
		code, body := postJSON(t, base+"/jobs/"+st.ID+"/control", ControlRequest{
			Mutations: []MutationSpec{m},
			Resume:    true,
		})
		if code != http.StatusAccepted {
			t.Fatalf("control at %.0fs = %d: %s", m.AtSec, code, body)
		}
	}

	waitState(t, base, st.ID, string(jobDone))
	var res struct {
		Result json.RawMessage `json:"result"`
	}
	if code := getJSON(t, base+"/jobs/"+st.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result = %d", code)
	}
	if !bytes.Equal(bytes.TrimSpace(res.Result), bytes.TrimSpace(want)) {
		t.Errorf("live-controlled result differs from scripted batch run:\nlive:     %s\nscripted: %s", res.Result, want)
	}
}

// TestSweepJob submits a sweep, watches progress land in the status,
// and reads the per-cell results.
func TestSweepJob(t *testing.T) {
	s := startServer(t)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	base := "http://" + s.Addr()

	spec := smokeSpec()
	spec.Timeline = nil
	code, body := postJSON(t, base+"/jobs", JobSpec{
		Sweep: &SweepSpec{
			Base:  spec,
			Seeds: []uint64{1, 2},
			Timelines: []NamedTimelineSpec{
				{Name: "static"},
				{Name: "degrade", Timeline: []MutationSpec{
					{AtSec: 4, Link: &LinkMutationSpec{Bottleneck: 0, RateBps: 500_000}},
				}},
			},
		},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, base, st.ID, string(jobDone))
	if fin.Done != 4 || fin.Total != 4 {
		t.Errorf("progress = %d/%d, want 4/4", fin.Done, fin.Total)
	}
	var res struct {
		Results []*netfence.Result `json:"results"`
	}
	getJSON(t, base+"/jobs/"+st.ID+"/result", &res)
	if len(res.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(res.Results))
	}
	for i, r := range res.Results {
		if r == nil {
			t.Errorf("cell %d missing", i)
		}
	}
}

// TestSearchJob submits a small-budget adversarial search, checks the
// per-candidate SSE feed and progress, and reads the worst-found
// report — the serve-mode face of netfence.SearchSpec (run in CI under
// -race).
func TestSearchJob(t *testing.T) {
	s := startServer(t)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	base := "http://" + s.Addr()

	spec := smokeSpec()
	spec.Timeline = nil
	code, body := postJSON(t, base+"/jobs", JobSpec{
		Search: &SearchJobSpec{
			Base:       spec,
			Defenses:   []string{"netfence"},
			Strategies: []string{"flood"},
			Optimizer:  "anneal",
			Budget:     3,
			Seed:       7,
		},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Kind != "search" {
		t.Fatalf("kind = %q, want search", st.Kind)
	}

	// The stream replays every evaluated candidate and ends with the
	// report as the result event.
	events := readStream(t, base+"/jobs/"+st.ID+"/stream")
	var candidates int
	var sawBest bool
	var streamed []byte
	for _, ev := range events {
		switch ev.typ {
		case "candidate":
			candidates++
			var c struct {
				Cell string `json:"cell"`
				Step struct {
					Attack string `json:"attack"`
					Best   bool   `json:"best"`
				} `json:"step"`
			}
			if err := json.Unmarshal(ev.data, &c); err != nil {
				t.Fatalf("candidate event: %v", err)
			}
			if c.Cell != "netfence/flood" {
				t.Errorf("candidate cell = %q", c.Cell)
			}
			sawBest = sawBest || c.Step.Best
		case "result":
			streamed = ev.data
		}
	}
	if candidates == 0 {
		t.Fatal("stream carried no candidate events")
	}
	if !sawBest {
		t.Error("no candidate was marked best-so-far")
	}
	if streamed == nil {
		t.Fatal("stream ended without a result event")
	}

	fin := waitState(t, base, st.ID, string(jobDone))
	if fin.Done != candidates {
		t.Errorf("progress done = %d, streamed %d candidates", fin.Done, candidates)
	}
	var res struct {
		Report *netfence.SearchReport `json:"report"`
	}
	if code := getJSON(t, base+"/jobs/"+st.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result = %d", code)
	}
	if res.Report == nil || len(res.Report.Rows) != 1 {
		t.Fatalf("report = %+v, want one row", res.Report)
	}
	row := res.Report.Rows[0]
	if row.Defense != "NetFence" || row.Strategy != "flood" || !row.Worst {
		t.Errorf("row = %+v", row)
	}
	if row.Evals != candidates {
		t.Errorf("row evals = %d, streamed %d candidates", row.Evals, candidates)
	}
}

// TestSubmitValidation exercises the synchronous rejection surface.
func TestSubmitValidation(t *testing.T) {
	s := startServer(t)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	base := "http://" + s.Addr()

	good := smokeSpec()
	cases := []struct {
		name string
		spec JobSpec
		code int
		want string
	}{
		{"neither", JobSpec{}, http.StatusBadRequest, "exactly one"},
		{"bad-topology", JobSpec{Scenario: &ScenarioSpec{Topology: TopologySpec{Kind: "torus"}}}, http.StatusBadRequest, "unknown kind"},
		{"bad-workload", JobSpec{Scenario: &ScenarioSpec{
			Topology:  good.Topology,
			Workloads: []WorkloadSpec{{Kind: "teleport"}},
		}}, http.StatusBadRequest, "unknown kind"},
		{"bad-mutation", JobSpec{Scenario: &ScenarioSpec{
			Topology:  good.Topology,
			Workloads: good.Workloads,
			Timeline:  []MutationSpec{{AtSec: 1}},
		}}, http.StatusBadRequest, "exactly one"},
		{"two-kinds", JobSpec{
			Sweep:  &SweepSpec{Base: good},
			Search: &SearchJobSpec{Base: good},
		}, http.StatusBadRequest, "exactly one"},
		{"search-bad-optimizer", JobSpec{Search: &SearchJobSpec{
			Base: good, Optimizer: "gradient",
		}}, http.StatusBadRequest, `unknown optimizer \"gradient\"`},
		{"search-no-attack", JobSpec{Search: &SearchJobSpec{
			Base: ScenarioSpec{
				Topology:  good.Topology,
				Workloads: []WorkloadSpec{{Kind: "longtcp", From: 0, To: 4}},
			},
		}}, http.StatusBadRequest, "no AttackSpec workload"},
		{"search-bad-params", JobSpec{Search: &SearchJobSpec{Base: ScenarioSpec{
			Topology: good.Topology,
			Workloads: []WorkloadSpec{
				{Kind: "attack", From: 4, To: 8, Params: map[string]float64{"dty": 1}},
			},
		}}}, http.StatusBadRequest, `unknown param \"dty\"`},
	}
	for _, tc := range cases {
		code, body := postJSON(t, base+"/jobs", tc.spec)
		if code != tc.code || !strings.Contains(string(body), tc.want) {
			t.Errorf("%s: code=%d body=%s, want %d containing %q", tc.name, code, body, tc.code, tc.want)
		}
	}

	if code := getJSON(t, base+"/jobs/j999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job = %d", code)
	}
}

// TestShutdownDrain covers the graceful path (an in-flight job runs to
// completion under Shutdown) and the deadline path (a long job is
// aborted at a segment boundary with its partial state kept).
func TestShutdownDrain(t *testing.T) {
	// Deadline path: a long-running job is aborted.
	s := startServer(t)
	base := "http://" + s.Addr()
	long := smokeSpec()
	long.Name = "long"
	long.DurationSec = 3600
	long.Timeline = nil
	_, body := postJSON(t, base+"/jobs", JobSpec{Scenario: &long})
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	waitState(t, base, st.ID, string(jobRunning))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Shutdown(ctx)
	if err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("deadline shutdown err = %v", err)
	}
	if got := s.job(st.ID).status(); got.State != string(jobCancelled) {
		t.Errorf("long job state = %s, want cancelled", got.State)
	}

	// A fresh server refuses submissions once draining.
	s2 := startServer(t)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := s2.Shutdown(ctx2); err != nil {
		t.Fatalf("idle shutdown: %v", err)
	}
	if _, err := s2.submit(JobSpec{Scenario: &long}); err == nil {
		t.Error("submit after shutdown succeeded")
	}
}

// scrape fetches a Prometheus-text endpoint and parses it into a
// key → value map (keys keep their literal label suffixes).
func scrape(t *testing.T, url string) map[string]uint64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	out := map[string]uint64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		var v uint64
		if _, err := fmt.Sscanf(line[i+1:], "%d", &v); err != nil {
			t.Fatalf("metrics line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// soloBaseline runs a spec through the batch engine with its own meter
// attached, returning the executed-event total and the deterministic
// counter snapshot — what a served job must reproduce exactly.
func soloBaseline(t *testing.T, spec ScenarioSpec) (uint64, map[string]uint64) {
	t.Helper()
	sc, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	m := &netfence.Meter{}
	sc.Meter = m
	in, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := in.Run()
	return m.Total(), res.Counters
}

// TestConcurrentJobMetersIsolated is the regression gate for the old
// process-global event counter: two scenario jobs running concurrently
// must each report exactly the executed-event total and counter
// snapshot of a solo batch run — no cross-job bleed in either
// direction. It also smokes the process /metrics endpoint.
func TestConcurrentJobMetersIsolated(t *testing.T) {
	specA := smokeSpec()
	specA.Name = "meter-a"
	specB := smokeSpec()
	specB.Name = "meter-b"
	specB.Seed = 8
	wantA, countersA := soloBaseline(t, specA)
	wantB, countersB := soloBaseline(t, specB)
	if wantA == 0 || wantB == 0 {
		t.Fatalf("solo baselines executed no events (a=%d b=%d)", wantA, wantB)
	}
	if wantA == wantB {
		t.Fatalf("baselines coincide at %d events; pick seeds that diverge", wantA)
	}

	s := New(Config{Addr: "127.0.0.1:0", Workers: 2, QueueDepth: 4})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	base := "http://" + s.Addr()

	ids := make([]string, 2)
	for i, spec := range []ScenarioSpec{specA, specB} {
		spec := spec
		_, body := postJSON(t, base+"/jobs", JobSpec{Scenario: &spec, StreamIntervalSec: 1})
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	for _, id := range ids {
		waitState(t, base, id, string(jobDone))
	}

	for i, want := range []uint64{wantA, wantB} {
		got := scrape(t, base+"/jobs/"+ids[i]+"/metrics")
		if got["sim_events_executed_total"] != want {
			t.Errorf("job %s executed %d events, solo run executed %d",
				ids[i], got["sim_events_executed_total"], want)
		}
		counters := countersA
		if i == 1 {
			counters = countersB
		}
		for k, v := range counters {
			if got[k] != v {
				t.Errorf("job %s metric %s = %d, solo run has %d", ids[i], k, got[k], v)
			}
		}
	}

	// The process endpoint aggregates both jobs and always carries the
	// service gauges.
	proc := scrape(t, base+"/metrics")
	if proc["server_up"] != 1 {
		t.Error("process /metrics is missing server_up 1")
	}
	if proc[`server_jobs{state="done"}`] != 2 {
		t.Errorf(`server_jobs{state="done"} = %d, want 2`, proc[`server_jobs{state="done"}`])
	}
	if proc["sim_events_executed_total"] != wantA+wantB {
		t.Errorf("process events total = %d, want %d", proc["sim_events_executed_total"], wantA+wantB)
	}
}

// TestSampleEventCounters asserts the SSE sample stream carries
// deterministic counter deltas that sum to the final snapshot.
func TestSampleEventCounters(t *testing.T) {
	s := startServer(t)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	base := "http://" + s.Addr()

	spec := smokeSpec()
	spec.Name = "deltas"
	_, body := postJSON(t, base+"/jobs", JobSpec{Scenario: &spec, StreamIntervalSec: 1})
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	events := readStream(t, base+"/jobs/"+st.ID+"/stream")

	summed := map[string]uint64{}
	withCounters := 0
	var finalRes netfence.Result
	for _, ev := range events {
		switch ev.typ {
		case "sample":
			var sample struct {
				Counters map[string]uint64 `json:"counters"`
			}
			if err := json.Unmarshal(ev.data, &sample); err != nil {
				t.Fatal(err)
			}
			if len(sample.Counters) > 0 {
				withCounters++
			}
			for k, v := range sample.Counters {
				summed[k] += v
			}
		case "result":
			if err := json.Unmarshal(ev.data, &finalRes); err != nil {
				t.Fatal(err)
			}
		}
	}
	if withCounters == 0 {
		t.Fatal("no sample event carried counter deltas")
	}
	for k, v := range finalRes.Counters {
		if summed[k] > v {
			t.Errorf("streamed deltas for %s sum to %d, past the final %d", k, summed[k], v)
		}
	}
	for _, k := range []string{"netsim_delivered_total", "netsim_tx_packets_total"} {
		if summed[k] != finalRes.Counters[k] {
			t.Errorf("streamed deltas for %s sum to %d, final snapshot has %d", k, summed[k], finalRes.Counters[k])
		}
	}
}
