package server

import (
	"encoding/json"
	"errors"
	"net/http"

	netfence "netfence"
	"netfence/internal/obs"
)

// ControlRequest is the body of POST /jobs/{id}/control.
type ControlRequest struct {
	// Mutations apply to the running scenario: instants at or before
	// the job's simulated clock apply at the next segment boundary (or
	// immediately at a paused instant); future instants are scheduled
	// and apply exactly when the clock reaches them.
	Mutations []MutationSpec `json:"mutations,omitempty"`
	// Resume releases a job paused at a pause_at_sec instant.
	Resume bool `json:"resume,omitempty"`
}

// routes wires the HTTP API.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.statuses())
	})
	mux.HandleFunc("GET /jobs/{id}", s.withJob(func(w http.ResponseWriter, r *http.Request, j *job) {
		writeJSON(w, http.StatusOK, j.status())
	}))
	mux.HandleFunc("DELETE /jobs/{id}", s.withJob(func(w http.ResponseWriter, r *http.Request, j *job) {
		s.cancelJob(j)
		writeJSON(w, http.StatusOK, j.status())
	}))
	mux.HandleFunc("GET /jobs/{id}/result", s.withJob(s.handleResult))
	mux.HandleFunc("GET /jobs/{id}/metrics", s.withJob(s.handleJobMetrics))
	mux.HandleFunc("POST /jobs/{id}/control", s.withJob(s.handleControl))
	mux.HandleFunc("GET /jobs/{id}/stream", s.withJob(func(w http.ResponseWriter, r *http.Request, j *job) {
		serveStream(w, r, j.hub)
	}))
	return mux
}

// handleMetrics serves the process-level Prometheus text exposition:
// service gauges (server_up, per-state job counts) plus every job's
// merged simulation counters folded together — counter planes sum,
// gauges take the max, mirroring obs.Merge semantics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()

	agg := map[string]uint64{"server_up": 1}
	states := map[jobState]uint64{}
	for _, j := range jobs {
		j.mu.Lock()
		states[j.state]++
		j.mu.Unlock()
		obs.MergeMap(agg, j.countersSnapshot())
	}
	for st, n := range states {
		agg[`server_jobs{state="`+string(st)+`"}`] = n
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.RenderPrometheus(w, agg)
}

// handleJobMetrics serves one job's counters as Prometheus text: the
// deterministic plane (byte-identical across shard counts), the runtime
// plane (per-shard events, handoff traffic, mailbox depth), and the
// live executed-event total from the job's meter.
func (s *Server) handleJobMetrics(w http.ResponseWriter, r *http.Request, j *job) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.RenderPrometheus(w, j.countersSnapshot())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errQueueFull) || errors.Is(err, errServerDraining) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request, j *job) {
	st := j.status()
	j.mu.Lock()
	result, results, report := j.result, j.results, j.report
	j.mu.Unlock()
	switch jobState(st.State) {
	case jobQueued, jobRunning, jobPaused:
		writeError(w, http.StatusConflict, errors.New("job has not finished; poll status or stream"))
	case jobFailed:
		writeJSON(w, http.StatusOK, map[string]any{"status": st, "error": st.Error})
	default: // done, or cancelled with partial results
		body := map[string]any{"status": st}
		if result != nil {
			body["result"] = result
		}
		if results != nil {
			body["results"] = results
		}
		if report != nil {
			body["report"] = report
		}
		writeJSON(w, http.StatusOK, body)
	}
}

func (s *Server) handleControl(w http.ResponseWriter, r *http.Request, j *job) {
	if j.kind() != "scenario" {
		writeError(w, http.StatusBadRequest, errors.New("control applies to scenario jobs only"))
		return
	}
	var req ControlRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Structural validation is synchronous (a malformed mutation fails
	// the POST); referential validation against the built topology
	// happens on the runner and is acknowledged on the stream.
	ms := make([]netfence.Mutation, len(req.Mutations))
	for i, m := range req.Mutations {
		ms[i] = m.Mutation()
		if err := ms[i].Validate(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if err := j.control(ms, req.Resume); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"accepted": len(ms), "resume": req.Resume})
}

// withJob resolves the {id} path value or answers 404.
func (s *Server) withJob(h func(http.ResponseWriter, *http.Request, *job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j := s.job(r.PathValue("id"))
		if j == nil {
			writeError(w, http.StatusNotFound, errors.New("no such job"))
			return
		}
		h(w, r, j)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
