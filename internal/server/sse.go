package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// event is one server-sent event on a job's stream: "sample" (a
// timeseries point), "status" (a state or progress change), or
// "result" (the final result, last event before the stream closes).
type event struct {
	Type string
	Data any
}

// hub fans a job's events out to its SSE subscribers. The full event
// history is kept in order and every subscriber reads it through its
// own cursor, so a late subscriber replays the whole run before
// receiving live events — the stream is a deterministic record of the
// run, not a lossy tail. Publishing only appends and wakes readers; it
// never blocks on a slow or disconnecting client, and there is no
// per-subscriber channel to race against a disconnect.
type hub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []event
	closed bool
}

func newHub() *hub {
	h := &hub{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// publish appends an event and wakes every waiting subscriber.
func (h *hub) publish(typ string, data any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.events = append(h.events, event{Type: typ, Data: data})
	h.cond.Broadcast()
}

// close ends the stream: the history is final, and readers return once
// they have consumed it.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	h.cond.Broadcast()
}

// next blocks until events past cursor exist, the stream closes, or
// ctx is cancelled (the caller must have arranged a Broadcast on
// cancellation — see watch). It returns the new events and whether the
// stream is closed; when closed, the batch completes the history.
func (h *hub) next(ctx context.Context, cursor int) ([]event, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for cursor >= len(h.events) && !h.closed && ctx.Err() == nil {
		h.cond.Wait()
	}
	batch := make([]event, len(h.events)-cursor)
	copy(batch, h.events[cursor:])
	return batch, h.closed
}

// watch wakes next's wait loop when ctx is cancelled, so a subscriber
// blocked on a quiet stream notices its client went away. The returned
// stop func releases the watcher.
func (h *hub) watch(ctx context.Context) (stop func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			h.cond.Broadcast()
		case <-done:
		}
	}()
	return func() { close(done) }
}

// writeSSE writes one event in text/event-stream framing.
func writeSSE(w http.ResponseWriter, ev event) error {
	raw, err := json.Marshal(ev.Data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, raw)
	return err
}

// serveStream streams a job's events to one client: history first,
// then live events until the stream closes or the client goes away.
func serveStream(w http.ResponseWriter, r *http.Request, h *hub) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ctx := r.Context()
	defer h.watch(ctx)()

	cursor := 0
	for {
		batch, closed := h.next(ctx, cursor)
		if ctx.Err() != nil {
			return
		}
		for _, ev := range batch {
			if err := writeSSE(w, ev); err != nil {
				return
			}
		}
		if len(batch) > 0 {
			fl.Flush()
		}
		cursor += len(batch)
		if closed {
			return
		}
	}
}
