package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// event is one server-sent event on a job's stream: "sample" (a
// timeseries point), "status" (a state or progress change), or
// "result" (the final result, last event before the stream closes).
type event struct {
	Type string
	Data any
}

// hub fans a job's events out to its SSE subscribers. Every event is
// also kept in order, so a late subscriber replays the full history
// before receiving live events — the stream is a deterministic record
// of the run, not a lossy tail.
type hub struct {
	mu     sync.Mutex
	events []event
	subs   map[chan event]bool
	closed bool
}

func newHub() *hub {
	return &hub{subs: map[chan event]bool{}}
}

// publish appends an event and delivers it to every live subscriber.
// Delivery blocks until each subscriber's writer accepts it (writers
// drain promptly; a disconnected client's writer unsubscribes), so
// subscribers never observe gaps.
func (h *hub) publish(typ string, data any) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.events = append(h.events, event{Type: typ, Data: data})
	subs := make([]chan event, 0, len(h.subs))
	for ch := range h.subs {
		subs = append(subs, ch)
	}
	h.mu.Unlock()
	for _, ch := range subs {
		ch <- event{Type: typ, Data: data}
	}
}

// close ends the stream: subscribers' channels are closed after the
// history they have not yet consumed.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
		delete(h.subs, ch)
	}
}

// subscribe returns the event history so far and a channel of
// subsequent events (nil when the stream has already closed —
// the history is complete).
func (h *hub) subscribe() ([]event, chan event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	history := make([]event, len(h.events))
	copy(history, h.events)
	if h.closed {
		return history, nil
	}
	ch := make(chan event, 64)
	h.subs[ch] = true
	return history, ch
}

func (h *hub) unsubscribe(ch chan event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.subs[ch] {
		delete(h.subs, ch)
		close(ch)
	}
}

// writeSSE writes one event in text/event-stream framing.
func writeSSE(w http.ResponseWriter, ev event) error {
	raw, err := json.Marshal(ev.Data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, raw)
	return err
}

// serveStream streams a job's events to one client: history first,
// then live events until the stream closes or the client goes away.
func serveStream(w http.ResponseWriter, r *http.Request, h *hub) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	history, live := h.subscribe()
	if live != nil {
		defer h.unsubscribe(live)
	}
	for _, ev := range history {
		if err := writeSSE(w, ev); err != nil {
			return
		}
	}
	fl.Flush()
	if live == nil {
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
