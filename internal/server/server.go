package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Config sizes the simulation service.
type Config struct {
	// Addr is the listen address ("" = "127.0.0.1:8080"; use ":0" for
	// an ephemeral port, readable from Addr() after Start).
	Addr string
	// Workers is the number of jobs run concurrently (0 = 2). Sweep
	// jobs additionally parallelize internally under the sweep engine's
	// own CPU budget.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (0 = 16); past it, POST /jobs answers 503.
	QueueDepth int
}

// Server is the simulation service: a bounded job queue over the
// scenario and sweep engines with an HTTP control surface.
type Server struct {
	cfg   Config
	queue chan *job
	http  *http.Server
	ln    net.Listener

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	nextID   int
	draining bool

	workers sync.WaitGroup
	runCtx  context.Context
	runStop context.CancelFunc
}

// New builds a server from cfg. Start launches it.
func New(cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:8080"
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *job, cfg.QueueDepth),
		jobs:    map[string]*job{},
		runCtx:  ctx,
		runStop: stop,
	}
	s.http = &http.Server{Handler: s.routes()}
	return s
}

// Start binds the listener and launches the workers and the HTTP
// serve loop. It returns once the server is accepting requests.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	for i := 0; i < s.cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	go func() {
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("netfence-sim serve: %v", err)
		}
	}()
	return nil
}

// Addr returns the bound listen address (resolves ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// worker drains the job queue until Shutdown closes it. A job
// cancelled while still queued is skipped — cancelJob already settled
// its state.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		jctx, cancel := context.WithCancel(s.runCtx)
		j.mu.Lock()
		skip := j.state != jobQueued
		if !skip {
			j.cancel = cancel
		}
		j.mu.Unlock()
		if skip {
			cancel()
			continue
		}
		j.run(jctx)
		cancel()
	}
}

var (
	errQueueFull      = errors.New("job queue is full")
	errServerDraining = errors.New("server is shutting down")
)

// submit validates, registers and enqueues a job spec. Structural
// validation happens up front so a bad spec fails the POST, not the
// job: spec → netfence conversion plus mutation shape checks
// (referential checks against the built topology happen when the job
// runs).
func (s *Server) submit(spec JobSpec) (*job, error) {
	given := 0
	for _, set := range []bool{spec.Scenario != nil, spec.Sweep != nil, spec.Search != nil} {
		if set {
			given++
		}
	}
	if given != 1 {
		return nil, errors.New("submit exactly one of scenario, sweep or search")
	}
	switch {
	case spec.Scenario != nil:
		if _, err := spec.Scenario.Scenario(); err != nil {
			return nil, err
		}
		for i, m := range spec.Scenario.Timeline {
			if err := m.Mutation().Validate(); err != nil {
				return nil, fmt.Errorf("timeline mutation %d: %w", i, err)
			}
		}
	case spec.Sweep != nil:
		if _, err := spec.Sweep.Sweep(); err != nil {
			return nil, err
		}
		for _, tl := range spec.Sweep.Timelines {
			for i, m := range tl.Timeline {
				if err := m.Mutation().Validate(); err != nil {
					return nil, fmt.Errorf("timeline %q mutation %d: %w", tl.Name, i, err)
				}
			}
		}
	default:
		srch, err := spec.Search.Search()
		if err != nil {
			return nil, err
		}
		if err := srch.Validate(); err != nil {
			return nil, err
		}
	}

	// Registration and the queue reservation happen in one critical
	// section: the non-blocking send cannot race Shutdown's close (it
	// sets draining under s.mu first), and a full queue is detected
	// before the job is visible, so there is no rollback to get wrong.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errServerDraining
	}
	j := newJob("j"+strconv.Itoa(s.nextID+1), spec)
	select {
	case s.queue <- j:
	default:
		return nil, errQueueFull
	}
	s.nextID++
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	return j, nil
}

func (s *Server) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// statuses lists every job in submission order.
func (s *Server) statuses() []JobStatus {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	return out
}

// cancelJob aborts a job: a still-queued job is settled here (the
// worker skips it later); a running job's context is cancelled and its
// runner settles the state at the next segment boundary, keeping
// partial results.
func (s *Server) cancelJob(j *job) {
	j.mu.Lock()
	queued := j.state == jobQueued
	if queued {
		j.state = jobCancelled
	}
	cancel := j.cancel
	j.mu.Unlock()
	if queued {
		j.hub.publish("status", j.status())
		j.hub.close()
		close(j.finished)
		return
	}
	if cancel != nil {
		cancel()
	}
}

// Shutdown drains the service: new submissions are refused, queued
// jobs are cancelled, and running jobs are given until ctx expires to
// finish (after that they are aborted at their next segment boundary;
// partial state stays readable either way). The HTTP listener stops
// last so clients can still read final statuses during the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("already shutting down")
	}
	s.draining = true
	s.mu.Unlock()

	// Empty the queue before closing it so waiting workers exit instead
	// of starting fresh jobs mid-drain.
drain:
	for {
		select {
		case j := <-s.queue:
			s.cancelJob(j)
		default:
			break drain
		}
	}
	close(s.queue)

	drained := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		s.runStop()
		<-drained
		err = fmt.Errorf("shutdown deadline passed; running jobs aborted: %w", ctx.Err())
	}
	s.runStop()

	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	if herr := s.http.Shutdown(hctx); herr != nil && err == nil {
		err = herr
	}
	return err
}
