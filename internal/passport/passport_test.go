package passport

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"netfence/internal/packet"
)

func testRegistry() *Registry {
	rng := rand.New(rand.NewPCG(7, 7))
	return NewRegistry(rng, []packet.ASID{1, 2, 3, 4})
}

func TestKeySymmetry(t *testing.T) {
	r := testRegistry()
	if r.Key(1, 2) != r.Key(2, 1) {
		t.Fatal("pairwise key not symmetric")
	}
	if r.Key(1, 1) == nil {
		t.Fatal("self-pair key missing")
	}
	if r.Key(1, 9) != nil {
		t.Fatal("unknown AS has a key")
	}
}

func TestStampVerifyPath(t *testing.T) {
	r := testRegistry()
	p := &packet.Packet{Src: 10, Dst: 20, SrcAS: 1, DstAS: 4, Size: 1500}
	path := []packet.ASID{2, 3, 4}
	r.Stamp(p, path)
	for _, as := range path {
		if !r.Verify(p, as) {
			t.Fatalf("verification failed at AS %d", as)
		}
	}
	// Re-verifying inside an already-entered AS is free; an AS that was
	// never on the path fails.
	if !r.Verify(p, 4) {
		t.Fatal("re-verification at the last AS failed")
	}
	if r.Verify(p, 9) {
		t.Fatal("off-path AS verified")
	}
}

func TestSpoofedSourceASFails(t *testing.T) {
	r := testRegistry()
	p := &packet.Packet{Src: 10, Dst: 20, SrcAS: 1, Size: 1500}
	r.Stamp(p, []packet.ASID{2, 3})
	p.SrcAS = 3 // attacker claims a different origin AS
	if r.Verify(p, 2) {
		t.Fatal("spoofed source AS verified")
	}
}

func TestTamperedPacketFails(t *testing.T) {
	r := testRegistry()
	p := &packet.Packet{Src: 10, Dst: 20, SrcAS: 1, Size: 1500}
	r.Stamp(p, []packet.ASID{2})
	p.Size = 9000 // on-path size inflation (§5.2.2)
	if r.Verify(p, 2) {
		t.Fatal("size-inflated packet verified")
	}
}

func TestNoTrailerFails(t *testing.T) {
	r := testRegistry()
	p := &packet.Packet{Src: 10, Dst: 20, SrcAS: 1, Size: 100}
	if r.Verify(p, 2) {
		t.Fatal("packet without trailer verified")
	}
}

func TestVerifySkipInvalidatesEarlierEntries(t *testing.T) {
	r := testRegistry()
	p := &packet.Packet{Src: 10, Dst: 20, SrcAS: 1, Size: 100}
	r.Stamp(p, []packet.ASID{2, 3})
	// Verifying at AS 3 first consumes past AS 2's entry...
	if !r.Verify(p, 3) {
		t.Fatal("AS 3 verification failed")
	}
	// ...so a later AS 2 verification fails (path order enforced).
	if r.Verify(p, 2) {
		t.Fatal("skipped entry still verified")
	}
}

func TestVerifyTwiceAtSameAS(t *testing.T) {
	// A second router inside an already-verified AS re-verifies for free:
	// a transit AS checks Passport at ingress only.
	r := testRegistry()
	p := &packet.Packet{Src: 10, Dst: 20, SrcAS: 1, Size: 100}
	r.Stamp(p, []packet.ASID{2, 3})
	if !r.Verify(p, 2) || !r.Verify(p, 2) {
		t.Fatal("re-verification at the same AS failed")
	}
	if !r.Verify(p, 3) {
		t.Fatal("downstream AS failed after re-verification")
	}
}

// Property: for random paths over the registered ASes, stamped packets
// verify hop by hop; mutating the source always breaks every hop.
func TestStampVerifyProperty(t *testing.T) {
	r := testRegistry()
	all := []packet.ASID{2, 3, 4}
	prop := func(src, dst int32, size int32, pathBits uint8, spoof bool) bool {
		var path []packet.ASID
		for i, as := range all {
			if pathBits&(1<<i) != 0 {
				path = append(path, as)
			}
		}
		if len(path) == 0 {
			return true
		}
		p := &packet.Packet{Src: packet.NodeID(src), Dst: packet.NodeID(dst), SrcAS: 1, Size: size}
		r.Stamp(p, path)
		if spoof {
			p.Src++
		}
		for _, as := range path {
			if r.Verify(p, as) == spoof {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// snapTrailer deep-copies a trailer so later in-place mutation of the
// shared Entries backing array is detectable.
func snapTrailer(p *packet.Packet) packet.PassportStamp {
	s := p.Passport
	s.Entries = append([]packet.PassportMAC(nil), s.Entries...)
	return s
}

// equalTrailer deep-compares two trailers (PassportStamp holds a slice,
// so == is unavailable).
func equalTrailer(x, y packet.PassportStamp) bool {
	if x.Present != y.Present || x.Next != y.Next || len(x.Entries) != len(y.Entries) {
		return false
	}
	for i := range x.Entries {
		if x.Entries[i] != y.Entries[i] {
			return false
		}
	}
	return true
}

// TestCheckApplyMatchesVerify: the pure Check plus deferred Apply — the
// pipeline's split form — must agree with Verify hop by hop, including
// corrupted MACs, spoofed sources and off-path ASes, and leave the
// trailer in the identical state.
func TestCheckApplyMatchesVerify(t *testing.T) {
	mk := func(corrupt, spoof bool) (*packet.Packet, *packet.Packet) {
		a := &packet.Packet{Src: 10, Dst: 20, SrcAS: 1, DstAS: 4, Size: 1500}
		b := &packet.Packet{Src: 10, Dst: 20, SrcAS: 1, DstAS: 4, Size: 1500}
		r := testRegistry()
		r.Stamp(a, []packet.ASID{2, 3, 4})
		r.Stamp(b, []packet.ASID{2, 3, 4})
		if corrupt {
			a.Passport.Entries[1].MAC[0] ^= 1
			b.Passport.Entries[1].MAC[0] ^= 1
		}
		if spoof {
			a.SrcAS, b.SrcAS = 9, 9
		}
		return a, b
	}
	for _, tc := range []struct {
		name           string
		corrupt, spoof bool
		hops           []packet.ASID
	}{
		{name: "honest path", hops: []packet.ASID{2, 3, 4, 4, 9}},
		{name: "skip then revisit", hops: []packet.ASID{3, 2, 4}},
		{name: "corrupted mac", corrupt: true, hops: []packet.ASID{2, 3, 4}},
		{name: "spoofed source", spoof: true, hops: []packet.ASID{2, 3}},
	} {
		r := testRegistry()
		a, b := mk(tc.corrupt, tc.spoof)
		for _, as := range tc.hops {
			want := r.Verify(a, as)
			ok, consume := r.Check(b, as, r.Key(b.SrcAS, as))
			Apply(b, consume)
			if ok != want {
				t.Fatalf("%s: Check at AS %d = %v, Verify = %v", tc.name, as, ok, want)
			}
			if !equalTrailer(a.Passport, b.Passport) {
				t.Fatalf("%s: trailer state diverged after AS %d:\nverify: %+v\nsplit:  %+v",
					tc.name, as, a.Passport, b.Passport)
			}
		}
	}
}

// TestCheckIsPure: Check must not mutate the packet — the pipeline
// calls it at the drain barrier and defers the consumption to Apply at
// the protected link.
func TestCheckIsPure(t *testing.T) {
	r := testRegistry()
	p := &packet.Packet{Src: 10, Dst: 20, SrcAS: 1, Size: 700}
	r.Stamp(p, []packet.ASID{2, 3})
	before := snapTrailer(p)
	ok, consume := r.Check(p, 3, r.Key(1, 3))
	if !ok || consume < 0 {
		t.Fatalf("Check(AS 3) = (%v, %d), want a consuming success", ok, consume)
	}
	if !equalTrailer(p.Passport, before) {
		t.Fatal("Check mutated the trailer")
	}
	// A negative consume Apply is a no-op.
	Apply(p, -1)
	if !equalTrailer(p.Passport, before) {
		t.Fatal("Apply(-1) mutated the trailer")
	}
}
