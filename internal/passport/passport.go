// Package passport implements the subset of Passport (Liu et al.,
// NSDI 2008) that NetFence depends on: a secret key shared by every pair
// of Autonomous Systems, established by piggybacking a Diffie-Hellman
// exchange on inter-domain routing, and per-AS MACs that let each transit
// AS verify a packet really originates from its claimed source AS.
//
// NetFence uses Passport for two things (§4.5): preventing source-address
// spoofing, and providing the pairwise keys Kai that protect L-down
// feedback. The simulated key exchange stands in for the BGP piggyback:
// both end up with a table of pairwise symmetric keys, which is all the
// data path consumes.
package passport

import (
	"encoding/binary"
	"math/rand/v2"

	"netfence/internal/cmac"
	"netfence/internal/packet"
)

// Registry holds the pairwise AS keys. In deployment each AS derives the
// shared keys from the in-band Diffie-Hellman exchange; here a trusted
// setup draws them from a seeded RNG, which is equivalent for every
// data-path purpose (both parties of a pair hold the same secret, third
// parties do not).
type Registry struct {
	keys map[[2]packet.ASID]*cmac.CMAC
}

// NewRegistry establishes a key for every unordered pair of the given
// ASes, including the self-pair (used when the bottleneck is in the
// sender's own AS).
func NewRegistry(rng *rand.Rand, ases []packet.ASID) *Registry {
	r := &Registry{keys: make(map[[2]packet.ASID]*cmac.CMAC)}
	for i, a := range ases {
		for _, b := range ases[i:] {
			var k cmac.Key
			for j := 0; j < 16; j += 8 {
				binary.LittleEndian.PutUint64(k[j:], rng.Uint64())
			}
			r.keys[pairKey(a, b)] = cmac.New(k)
		}
	}
	return r
}

func pairKey(a, b packet.ASID) [2]packet.ASID {
	if a > b {
		a, b = b, a
	}
	return [2]packet.ASID{a, b}
}

// Key returns the MAC keyed with the secret shared by ASes a and b, or
// nil if the pair is unknown.
func (r *Registry) Key(a, b packet.ASID) *cmac.CMAC {
	return r.keys[pairKey(a, b)]
}

// macInput is the canonical Passport MAC input. Passport's MAC covers the
// source and destination addresses, the packet length and the first bytes
// of the transport payload (§5.2.2 of the NetFence paper); the simulation
// covers the equivalent invariant packet fields.
func macInput(buf *[20]byte, p *packet.Packet, transitAS packet.ASID) []byte {
	binary.BigEndian.PutUint32(buf[0:], uint32(p.Src))
	binary.BigEndian.PutUint32(buf[4:], uint32(p.Dst))
	binary.BigEndian.PutUint32(buf[8:], uint32(p.SrcAS))
	binary.BigEndian.PutUint32(buf[12:], uint32(transitAS))
	binary.BigEndian.PutUint32(buf[16:], uint32(p.Size))
	return buf[:]
}

// Stamp writes the Passport trailer into p for the given AS-level path
// (excluding the source AS itself). It is called by the border router of
// the source AS.
func (r *Registry) Stamp(p *packet.Packet, path []packet.ASID) {
	// Rebuild in place on top of the packet's retained trailer capacity
	// (packet.Pool keeps the backing array across recycles), writing
	// every field so no stale entry survives.
	entries := p.Passport.Entries[:0]
	var buf [20]byte
	for _, as := range path {
		e := packet.PassportMAC{AS: as}
		if key := r.Key(p.SrcAS, as); key != nil {
			e.MAC = key.Sum32(macInput(&buf, p, as))
		}
		entries = append(entries, e)
	}
	p.Passport = packet.PassportStamp{Present: true, Entries: entries}
}

// Verify checks p's Passport trailer at the given transit AS. Entries are
// consumed in path order: verifying an AS that appears later in the
// trailer skips (and thereby invalidates) the ones before it, while
// re-verifying at a second router of an already-verified AS succeeds
// without consuming anything — a transit AS verifies at ingress only.
func (r *Registry) Verify(p *packet.Packet, transitAS packet.ASID) bool {
	ok, consume := r.Check(p, transitAS, r.Key(p.SrcAS, transitAS))
	Apply(p, consume)
	return ok
}

// Check is Verify's pure half: it computes the verdict Verify would
// return for p at transitAS without mutating the trailer. ok is the MAC
// comparison; consume is the entry index a subsequent Apply must
// consume, or -1 when Verify would not touch the trailer at all (no
// trailer, AS already verified, AS absent, or key unknown). mac is the
// instance to compute with — pass r.Key(p.SrcAS, transitAS) on the
// owning goroutine, or a private Clone of it from a batch worker, since
// CMAC scratch is not concurrent-safe.
func (r *Registry) Check(p *packet.Packet, transitAS packet.ASID, mac *cmac.CMAC) (ok bool, consume int) {
	st := &p.Passport
	if !st.Present {
		return false, -1
	}
	// Already verified at this AS's ingress?
	for i := 0; i < st.Next && i < len(st.Entries); i++ {
		if st.Entries[i].AS == transitAS {
			return true, -1
		}
	}
	for i := st.Next; i < len(st.Entries); i++ {
		if st.Entries[i].AS != transitAS {
			continue
		}
		if mac == nil {
			return false, -1
		}
		var buf [20]byte
		want := mac.Sum32(macInput(&buf, p, transitAS))
		return want == st.Entries[i].MAC, i
	}
	return false, -1
}

// Apply is Verify's mutating half: it consumes the trailer entry a
// Check verdict identified. Entries bypassed by the consumption are
// invalidated — the packet demonstrably did not enter those ASes before
// this one. Apply(p, -1) is a no-op, matching the Check verdicts that
// carry no consumption.
func Apply(p *packet.Packet, consume int) {
	if consume < 0 {
		return
	}
	st := &p.Passport
	for j := st.Next; j < consume; j++ {
		st.Entries[j].AS = -1
	}
	st.Next = consume + 1
}
