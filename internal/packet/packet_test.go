package packet

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindLegacy:  "legacy",
		KindRequest: "request",
		KindRegular: "regular",
		Kind(9):     "invalid",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestIsSYN(t *testing.T) {
	p := Packet{Proto: ProtoTCP, TCP: TCPInfo{Flags: FlagSYN}}
	if !p.IsSYN() {
		t.Fatal("SYN not recognized")
	}
	p.TCP.Flags |= FlagACK
	if p.IsSYN() {
		t.Fatal("SYN-ACK misclassified as SYN")
	}
	p = Packet{Proto: ProtoUDP, TCP: TCPInfo{Flags: FlagSYN}}
	if p.IsSYN() {
		t.Fatal("UDP packet classified as SYN")
	}
}

func TestReverse(t *testing.T) {
	p := Packet{Src: 1, Dst: 2, SrcAS: 10, DstAS: 20}
	src, dst, sas, das := p.Reverse()
	if src != 2 || dst != 1 || sas != 20 || das != 10 {
		t.Fatalf("Reverse = %v %v %v %v", src, dst, sas, das)
	}
}

func TestCapabilityValidity(t *testing.T) {
	prop := func(dst int32, expire uint32, now uint32, queryDst int32) bool {
		c := Capability{Present: true, Dst: NodeID(dst), Expire: expire}
		got := c.Valid(NodeID(queryDst), now)
		want := NodeID(queryDst) == NodeID(dst) && now <= expire
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	if (Capability{Dst: 1, Expire: 10}).Valid(1, 5) {
		t.Fatal("absent capability validated")
	}
}

func TestFeedbackModePredicates(t *testing.T) {
	f := Feedback{Mode: FBNop}
	if !f.IsNop() || f.IsMon() {
		t.Fatal("nop predicates wrong")
	}
	f.Mode = FBMon
	if f.IsNop() || !f.IsMon() {
		t.Fatal("mon predicates wrong")
	}
}

func TestSizeConstantsMatchPaper(t *testing.T) {
	// §4.6: a request packet is 92 bytes — 40 TCP/IP + 28 NetFence + 24
	// Passport.
	if SizeRequest != 92 {
		t.Fatalf("SizeRequest = %d, want 92", SizeRequest)
	}
	if SizeIPTCP+SizeNetFenceMx+SizePassport != SizeRequest {
		t.Fatal("request size does not decompose per §4.6")
	}
	if SizeData != 1500 {
		t.Fatalf("SizeData = %d", SizeData)
	}
	if SizeNetFence != 20 || SizeNetFenceMx != 28 {
		t.Fatal("NetFence header size constants drifted from §6.1")
	}
}
