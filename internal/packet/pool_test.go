package packet

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
)

// dirtyPacket fills every exported field of p with non-zero values via
// reflection, so the hygiene check below cannot silently miss a field
// added later.
func dirtyPacket(p *Packet, rng *rand.Rand) {
	v := reflect.ValueOf(p).Elem()
	var fill func(v reflect.Value)
	fill = func(v reflect.Value) {
		switch v.Kind() {
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				if !v.Field(i).CanSet() {
					continue // unexported pool bookkeeping
				}
				fill(v.Field(i))
			}
		case reflect.Slice:
			n := 1 + int(rng.Int64N(4))
			s := reflect.MakeSlice(v.Type(), n, n)
			for i := 0; i < n; i++ {
				fill(s.Index(i))
			}
			v.Set(s)
		case reflect.Array:
			for i := 0; i < v.Len(); i++ {
				fill(v.Index(i))
			}
		case reflect.Bool:
			v.SetBool(true)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			v.SetInt(1 + rng.Int64N(1<<30))
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			v.SetUint(1 + rng.Uint64N(1<<30))
		case reflect.Float32, reflect.Float64:
			v.SetFloat(1 + rng.Float64())
		default:
			panic("dirtyPacket: unhandled kind " + v.Kind().String())
		}
	}
	fill(v)
}

// likeFresh reports whether p is indistinguishable from &Packet{} for
// every exported field, walking the struct by reflection. Slices compare
// by length (a recycled packet may retain capacity, which is invisible to
// all packet consumers); everything else must be deeply zero.
func likeFresh(t *testing.T, path string, v reflect.Value) bool {
	t.Helper()
	switch v.Kind() {
	case reflect.Struct:
		ok := true
		tp := v.Type()
		for i := 0; i < v.NumField(); i++ {
			if tp.Field(i).PkgPath != "" {
				continue // unexported pool bookkeeping
			}
			if !likeFresh(t, path+"."+tp.Field(i).Name, v.Field(i)) {
				ok = false
			}
		}
		return ok
	case reflect.Slice:
		if v.Len() != 0 {
			t.Errorf("%s: recycled packet has %d element(s), fresh has none", path, v.Len())
			return false
		}
		return true
	default:
		if !v.IsZero() {
			t.Errorf("%s: recycled packet holds %v, fresh is zero", path, v)
			return false
		}
		return true
	}
}

// TestPoolHygieneProperty is the pool-hygiene property test: whatever
// state a packet accumulated in flight, recycling it through the pool
// must hand back a packet indistinguishable from a freshly allocated one.
func TestPoolHygieneProperty(t *testing.T) {
	var pool Pool
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		p := pool.Get()
		dirtyPacket(p, rng)
		pool.Put(p)
		q := pool.Get()
		if q != p {
			t.Fatal("pool did not recycle the released packet")
		}
		ok := likeFresh(t, "Packet", reflect.ValueOf(q).Elem())
		pool.Put(q)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolDoubleReleasePanics pins the double-free guard.
func TestPoolDoubleReleasePanics(t *testing.T) {
	var pool Pool
	p := pool.Get()
	pool.Put(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	pool.Put(p)
}

// TestPoolIgnoresForeignPackets: hand-constructed packets (tests, probes)
// are not pool-managed and must survive a Put untouched.
func TestPoolIgnoresForeignPackets(t *testing.T) {
	var pool Pool
	p := &Packet{UID: 42, Size: 1500}
	pool.Put(p)
	if p.UID != 42 || p.Size != 1500 {
		t.Fatal("Put reset a non-pool packet")
	}
	if pool.Len() != 0 {
		t.Fatal("non-pool packet entered the free list")
	}
}

// TestPoolRetainsPassportCapacity documents the one deliberate Reset
// exception: the Passport trailer's backing array survives recycling so
// stamping does not allocate per packet.
func TestPoolRetainsPassportCapacity(t *testing.T) {
	var pool Pool
	p := pool.Get()
	p.Passport.Entries = append(p.Passport.Entries, PassportMAC{AS: 1}, PassportMAC{AS: 2})
	pool.Put(p)
	q := pool.Get()
	if len(q.Passport.Entries) != 0 {
		t.Fatalf("recycled trailer has length %d", len(q.Passport.Entries))
	}
	if cap(q.Passport.Entries) < 2 {
		t.Fatalf("recycled trailer lost its capacity: %d", cap(q.Passport.Entries))
	}
}
