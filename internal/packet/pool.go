package packet

// Pool recycles Packets so steady-state forwarding allocates nothing. It
// is deliberately not synchronized: each simulation engine is
// single-threaded and owns one pool (parallel sweep cells each get their
// own network, engine and pool).
//
// Ownership discipline: a packet has exactly one owner at a time — the
// transport that drew it from the pool, then the queue/limiter holding
// it, then the network delivering it. The network returns it to the pool
// at end of life (final delivery or drop), after every observer hook has
// run. Packets constructed directly with &Packet{} (tests, hand-crafted
// probes) are not pool-managed: Put ignores them, so legacy call sites
// that inspect a packet after the run keep working.
type Pool struct {
	free []*Packet

	// Gets counts Get calls, News the subset that allocated a fresh
	// Packet, Puts successful recycles — Gets-News hits quantify reuse.
	Gets, News, Puts uint64
}

// Get returns a zeroed packet, reusing a recycled one when available.
func (pl *Pool) Get() *Packet {
	pl.Gets++
	n := len(pl.free)
	if n == 0 {
		pl.News++
		return &Packet{pooled: true}
	}
	p := pl.free[n-1]
	pl.free[n-1] = nil
	pl.free = pl.free[:n-1]
	p.inPool = false
	return p
}

// Put resets p and returns it to the pool. Packets that did not come from
// a pool are ignored; returning the same packet twice without an
// intervening Get panics — that is a double-free, and silently accepting
// it would hand two owners the same packet.
func (pl *Pool) Put(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	if p.inPool {
		panic("packet: double release to pool")
	}
	p.Reset()
	p.inPool = true
	pl.Puts++
	pl.free = append(pl.free, p)
}

// Len returns the number of idle packets held by the pool.
func (pl *Pool) Len() int { return len(pl.free) }

// Reset zeroes every field of p, making it indistinguishable from a
// freshly allocated packet. The one deliberate exception is retained
// capacity: the Passport trailer's backing array survives (truncated to
// length zero and rewritten field-for-field on the next stamp), so
// Passport-enabled runs do not allocate a trailer per packet. Nothing in
// the tree copies a PassportStamp out of a packet, so the retained array
// cannot alias live state. The multi-bottleneck headers are fully zeroed:
// shims copy those by value, and a shared backing array would let a
// recycled packet corrupt a peer's cached feedback.
func (p *Packet) Reset() {
	pooled, inPool := p.pooled, p.inPool
	entries := p.Passport.Entries[:0]
	*p = Packet{}
	p.Passport.Entries = entries
	p.pooled, p.inPool = pooled, inPool
}
