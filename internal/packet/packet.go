// Package packet defines the simulated packet model shared by every layer
// of the NetFence reproduction: addressing, transport metadata, and the
// NetFence congestion-policing feedback fields carried in the shim header.
//
// The package holds plain data only. Cryptographic stamping/validation of
// feedback lives in internal/feedback, wire encoding in internal/header,
// and forwarding in internal/netsim, which keeps the dependency graph a
// clean tree.
package packet

import "netfence/internal/sim"

// NodeID identifies a host or router. It doubles as the node's network
// address: the paper's IP addresses map 1:1 onto NodeIDs in simulation.
type NodeID int32

// ASID identifies an Autonomous System, the trust and fate-sharing unit of
// NetFence (§2.1 of the paper).
type ASID int32

// LinkID identifies a link. The paper uses the link's IP address; the
// simulator assigns dense unique IDs. ID 0 is reserved for "no link"
// (the null identifier of nop feedback).
type LinkID uint32

// FlowID identifies a transport connection (a sender/receiver agent pair).
type FlowID uint32

// Kind classifies a packet into one of NetFence's three channels (§3.1).
type Kind uint8

// Packet kinds.
const (
	// KindLegacy marks traffic from non-NetFence senders; it is forwarded
	// with the lowest priority.
	KindLegacy Kind = iota
	// KindRequest marks connection-request packets, policed by the
	// priority-based request channel (§4.2).
	KindRequest
	// KindRegular marks packets carrying (supposedly) valid congestion
	// policing feedback (§4.3).
	KindRegular
)

// String returns the channel name.
func (k Kind) String() string {
	switch k {
	case KindLegacy:
		return "legacy"
	case KindRequest:
		return "request"
	case KindRegular:
		return "regular"
	}
	return "invalid"
}

// Proto identifies the upper-layer protocol inside the shim header.
type Proto uint8

// Upper-layer protocols.
const (
	ProtoUDP Proto = iota
	ProtoTCP
	// ProtoFeedback marks the dedicated low-rate feedback packets a
	// receiver of one-way traffic sends back to the sender (§3.1 step 4).
	ProtoFeedback
	// ProtoCap marks TVA+ capability-refresh packets sent by receivers of
	// one-way traffic (baseline system only).
	ProtoCap
)

// TCP header flag bits.
const (
	FlagSYN uint8 = 1 << iota
	FlagACK
	FlagFIN
)

// TCPInfo carries the subset of TCP header state the simulator models.
type TCPInfo struct {
	Flags uint8
	// Seq is the first payload byte's sequence number (or the ISN for SYN).
	Seq int64
	// Ack is the cumulative acknowledgement number, valid when FlagACK set.
	Ack int64
}

// FBMode distinguishes nop from mon congestion policing feedback (§4.4).
type FBMode uint8

// Feedback modes.
const (
	FBNop FBMode = iota
	FBMon
)

// FBAction is the action field of mon feedback.
type FBAction uint8

// Feedback actions.
const (
	// ActIncr is the L-up feedback: the link is underloaded and the access
	// router may raise the sender's rate limit.
	ActIncr FBAction = iota
	// ActDecr is the L-down feedback: the link is overloaded and the access
	// router must reduce the sender's rate limit.
	ActDecr
)

// Feedback is one congestion policing feedback element: the five key fields
// of Figure 5 plus the tokennop field carried by mon feedback. The same
// struct serves as the sender's presented feedback (host to access router)
// and as the network-stamped feedback (access router onward); the access
// router rewrites it in place when forwarding (§4.3.3).
type Feedback struct {
	Mode   FBMode
	Link   LinkID
	Action FBAction
	// TS is the stamping time in whole seconds, set only by access routers.
	TS uint32
	// MAC attests the feedback's integrity (Eq. 1-3 of §4.4, truncated to
	// the header's 32-bit MAC field).
	MAC [4]byte
	// TokenNop carries the access router's token_nop inside L-up feedback;
	// a bottleneck router consumes and erases it when stamping L-down.
	TokenNop [4]byte
}

// IsNop reports whether the feedback is the nop feedback.
func (f *Feedback) IsNop() bool { return f.Mode == FBNop }

// IsMon reports whether the feedback is mon (L-up or L-down) feedback.
func (f *Feedback) IsMon() bool { return f.Mode == FBMon }

// Returned is the return header: feedback the packet's sender is handing
// back to the packet's destination about the reverse path. Routers never
// touch it; only end-host shims read and write it.
type Returned struct {
	Present bool
	Mode    FBMode
	Link    LinkID
	Action  FBAction
	TS      uint32
	MAC     [4]byte
}

// Capability is the simulation-level stand-in for a TVA+ network
// capability. Real TVA capabilities are router-stamped and receiver-
// authorized crypto tokens; the baseline reproduces their *policing effect*
// (packets with a valid, unexpired capability for the right destination
// ride the regular channel) and models unforgeability by construction:
// only receivers create Capability values. See DESIGN.md.
type Capability struct {
	Present bool
	Dst     NodeID
	// Expire is the expiry time in whole seconds of simulated time.
	Expire uint32
}

// Valid reports whether the capability authorizes sending to dst at the
// given time.
func (c Capability) Valid(dst NodeID, nowSec uint32) bool {
	return c.Present && c.Dst == dst && nowSec <= c.Expire
}

// PassportMAC is one Passport trailer entry: the MAC the source AS
// computed under the key it shares with a specific transit AS.
type PassportMAC struct {
	AS  ASID
	MAC [4]byte
}

// PassportStamp is the Passport source-authentication trailer: one MAC per
// AS on the path, verified in path order (internal/passport). A transit
// AS with several on-path routers verifies once, at ingress.
type PassportStamp struct {
	Present bool
	// Next indexes the first unverified entry.
	Next    int
	Entries []PassportMAC
}

// MultiFB is one bottleneck's feedback inside the Appendix B.1
// multi-bottleneck header: the link and its incr/decr action.
type MultiFB struct {
	Link   LinkID
	Action FBAction
}

// MultiHeader is the Appendix B.1 alternative NetFence header carrying
// feedback from every on-path bottleneck, protected by a single chained
// token (Eq. 4-5 of the paper's appendix).
type MultiHeader struct {
	Present bool
	TS      uint32
	Items   []MultiFB
	Token   [4]byte
}

// Packet is a simulated packet, mutated in place as it traverses the
// network, mirroring how a real router rewrites the shim header. Hot
// paths draw packets from a Pool (netsim.Host.NewPacket) and the network
// recycles them at end of life; hand-constructed &Packet{} values work
// everywhere too and are simply never recycled.
type Packet struct {
	// UID is a simulation-unique identifier, handy for tracing.
	UID uint64

	Src, Dst     NodeID
	SrcAS, DstAS ASID
	Flow         FlowID

	Kind Kind
	// Prio is the request-packet priority level (§4.2); 0 is the lowest.
	Prio uint8
	// Size is the total wire size in bytes, including all headers.
	Size int32
	// Payload is the number of application bytes carried.
	Payload int32

	Proto Proto
	TCP   TCPInfo

	// FB is the forward congestion policing feedback.
	FB Feedback
	// Ret is the returned feedback for the reverse path.
	Ret Returned
	// MFB and RetMFB are the forward and returned multi-bottleneck
	// headers of the Appendix B.1 extension (unused in the core design).
	MFB    MultiHeader
	RetMFB MultiHeader

	// Cap is the TVA+ baseline's capability slot: the authorization the
	// sender presents for this packet.
	Cap Capability
	// CapGrant piggybacks a receiver's capability grant back to the
	// packet's destination (TVA+ baseline).
	CapGrant Capability
	// Passport is the source-authentication trailer.
	Passport PassportStamp

	// EnqueuedAt records when the packet last entered a queue, for
	// queueing-delay metrics.
	EnqueuedAt sim.Time
	// SentAt records when the transport first emitted the packet.
	SentAt sim.Time

	// Precomputed verdict cache, filled by the sharded validation
	// pipeline while a cut-link handoff batch drains (every shard is at
	// the drain barrier, so packet and key state are frozen) and consumed
	// by the serialized execute phase in place of inline CMAC work. The
	// verdicts are pure functions of the packet bytes and the key epoch;
	// the consumers re-check the binding (link/node identity, key epoch)
	// and fall back to inline validation on any mismatch, so a stale or
	// unconsumed cache is dropped, never wrong. Zero values mean "no
	// cached verdict" — LinkID 0 and the PV/FV flags are reserved for
	// exactly that.

	// PVLink tags a cached Passport verdict with the protected link whose
	// verify hook may consume it (0 = none); PVOK is the Registry.Check
	// result and PVConsume its trailer-consumption index.
	PVLink    LinkID
	PVOK      bool
	PVConsume int32
	// FVNode tags a cached feedback verdict with the access router that
	// may consume it; FVSet distinguishes a cached Invalid from "no
	// cache"; FVEpoch is the key-ring epoch the verdict was computed
	// under; FVVerdict holds the feedback.Verdict value.
	FVNode    NodeID
	FVSet     bool
	FVEpoch   uint64
	FVVerdict uint8

	// pooled marks packets drawn from a Pool (only those are recycled);
	// inPool guards against double release. See pool.go.
	pooled, inPool bool
}

// IsSYN reports whether the packet is a TCP SYN (and not a SYN-ACK).
func (p *Packet) IsSYN() bool {
	return p.Proto == ProtoTCP && p.TCP.Flags&FlagSYN != 0 && p.TCP.Flags&FlagACK == 0
}

// Reverse returns src/dst metadata swapped, for building replies.
func (p *Packet) Reverse() (src, dst NodeID, srcAS, dstAS ASID) {
	return p.Dst, p.Src, p.DstAS, p.SrcAS
}

// Sizes of protocol headers in bytes, matching §4.6 of the paper: a
// request packet is estimated as 92 B = 40 B TCP/IP + 28 B NetFence header
// + 24 B Passport header.
const (
	SizeIPTCP      = 40
	SizeIPUDP      = 28
	SizeNetFence   = 20 // common case: nop feedback both directions (§6.1)
	SizeNetFenceMx = 28 // worst case: mon feedback both directions
	SizePassport   = 24
	// SizeRequest is the canonical request-packet size used throughout the
	// paper's evaluation.
	SizeRequest = SizeIPTCP + SizeNetFenceMx + SizePassport
	// SizeData is the canonical full-size data packet.
	SizeData = 1500
	// SizeACK is a TCP ACK carrying NetFence and Passport headers.
	SizeACK = SizeIPTCP + SizeNetFenceMx + SizePassport
	// SizeFeedbackPkt is a dedicated feedback packet (UDP).
	SizeFeedbackPkt = SizeIPUDP + SizeNetFenceMx + SizePassport
)
