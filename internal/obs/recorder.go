package obs

import "sort"

// TraceEvent is one hop of a sampled packet's life: the simulated
// instant, the flow, the node (or link endpoint) where it happened,
// the hop kind, and a free-form detail. Events carry no per-packet
// UIDs — pool identities differ across shard layouts — so merged
// traces are byte-identical across shard counts.
type TraceEvent struct {
	T      int64  `json:"t_ns"`
	Flow   uint32 `json:"flow"`
	Node   string `json:"node"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// Trace-event kinds, in packet-life order.
const (
	HopShim    = "shim"    // sender shim stamped the outgoing packet
	HopPolice  = "police"  // access-router policing verdict
	HopMonitor = "monitor" // bottleneck monitor state at traversal
	HopEnqueue = "enqueue" // link queue admitted the packet
	HopDrop    = "drop"    // link queue refused the packet (detail = reason)
	HopDemote  = "demote"  // channel demotion (detail = which)
	HopDeliver = "deliver" // destination host received the packet
)

// Recorder is one replica's flight recorder: a deterministic
// flow-sampled trace buffer. Like Cells it is single-goroutine — each
// replica records only hops it executes — and replicas' buffers merge
// at the end of a run. A nil *Recorder means tracing is off; callers
// guard the hot path with one nil check and pay nothing more.
type Recorder struct {
	// sampled marks attach-time flow IDs chosen for tracing; flows at
	// or beyond len(sampled) (runtime-allocated flows) are never
	// sampled, on any shard layout.
	sampled []bool
	events  []TraceEvent
}

// NewRecorder builds a recorder over a sampled-flow set (as returned
// by SampleFlows). Replicas of one run share the same set.
func NewRecorder(sampled []bool) *Recorder {
	return &Recorder{sampled: sampled}
}

// Sampled reports whether a flow is traced. Nil-safe so instrumented
// paths can guard with a single call.
func (r *Recorder) Sampled(flow uint32) bool {
	return r != nil && int(flow) < len(r.sampled) && r.sampled[flow]
}

// Record appends one hop. Callers check Sampled first; Record itself
// does not filter so synthesized hops (e.g. demotions discovered after
// the verdict) need no re-check.
func (r *Recorder) Record(t int64, flow uint32, node, kind, detail string) {
	r.events = append(r.events, TraceEvent{T: t, Flow: flow, Node: node, Kind: kind, Detail: detail})
}

// Events returns the buffer (unsorted; single-replica order).
func (r *Recorder) Events() []TraceEvent {
	if r == nil {
		return nil
	}
	return r.events
}

// splitmix64 is the sampling hash: cheap, well-mixed, and stable
// across platforms.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SampleFlows deterministically picks n of the attach-time flows
// 1..flowCount by smallest seeded hash — the same discipline as the
// engine's KeyStream: a pure function of (seed, flow), so every shard
// layout samples the identical set. Returns the membership bitmap,
// sized flowCount+1.
func SampleFlows(seed uint64, flowCount, n int) []bool {
	sampled := make([]bool, flowCount+1)
	if n <= 0 || flowCount <= 0 {
		return sampled
	}
	if n >= flowCount {
		for f := 1; f <= flowCount; f++ {
			sampled[f] = true
		}
		return sampled
	}
	type hf struct {
		h uint64
		f uint32
	}
	hs := make([]hf, flowCount)
	for f := 1; f <= flowCount; f++ {
		hs[f-1] = hf{splitmix64(seed ^ uint64(f)), uint32(f)}
	}
	sort.Slice(hs, func(a, b int) bool {
		if hs[a].h != hs[b].h {
			return hs[a].h < hs[b].h
		}
		return hs[a].f < hs[b].f
	})
	for i := 0; i < n; i++ {
		sampled[hs[i].f] = true
	}
	return sampled
}

// MergeTraces concatenates per-replica buffers and sorts by full event
// content, making the merged trace a pure set function — independent
// of shard layout and drain interleaving.
func MergeTraces(recs []*Recorder) []TraceEvent {
	var all []TraceEvent
	for _, r := range recs {
		all = append(all, r.Events()...)
	}
	sort.Slice(all, func(a, b int) bool {
		x, y := all[a], all[b]
		if x.T != y.T {
			return x.T < y.T
		}
		if x.Flow != y.Flow {
			return x.Flow < y.Flow
		}
		if x.Node != y.Node {
			return x.Node < y.Node
		}
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		return x.Detail < y.Detail
	})
	return all
}
