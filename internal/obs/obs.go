// Package obs is the platform's observability plane: a registry of
// cheap shard-local counters, gauges and histograms, and a sampled
// packet flight recorder.
//
// Counters live in dense per-replica Cells — plain uint64 adds with no
// atomics, safe because each replica's cells are touched only by its
// own engine goroutine — and are merged in deterministic shard order
// at run barriers. Metrics split into two planes:
//
//   - the DETERMINISTIC plane counts packet-path events that happen
//     exactly once globally regardless of sharding (drops, demotions,
//     stamps, deliveries). Its snapshot is byte-identical across shard
//     counts and ships in Result.Counters, goldens included.
//   - the RUNTIME plane counts execution artifacts that legitimately
//     differ with the shard layout (events executed per shard, mailbox
//     handoff batches, replicated keyring-rotation timers). It is
//     surfaced on /metrics, -metrics-out and bench rows, never in
//     Result.
package obs

import "strconv"

// ID indexes one metric cell. All IDs are allocated here, at compile
// time, so every replica's Cells share one layout and -list-metrics
// cannot drift from the instrumentation.
type ID int

// Deterministic-plane metrics.
const (
	// internal/core — congestion monitor and feedback (§4.3).
	CoreMonitorUp ID = iota
	CoreMonitorDown
	CoreFallbackEngaged
	CoreStampDecr
	CoreStampNop
	CoreStampIncr
	CorePoliceDemoted
	CoreDemotedLegacy
	CoreMACFail
	CoreRequestAdmitted
	CoreRequestDropped
	CoreLimiterPass
	CoreLimiterDrop
	CoreQuotaDrop
	CoreEscalation

	// internal/netsim — link-layer totals.
	NetsimDelivered
	NetsimTxPackets
	NetsimTxBytes
	NetsimDrops

	// queue-channel drops at a NetFence bottleneck (§4.2–§4.4).
	QueueDropRequest
	QueueDropRegular
	QueueDropLegacy

	// QueueHWMBytes is a gauge: the highest backlog in bytes any single
	// queue reached (harvested from the queues at snapshot barriers).
	QueueHWMBytes

	// QueueBacklogBucket0..QueueBacklogSum form a log2-bucketed
	// histogram of the bottleneck backlog observed at each admitted
	// enqueue: buckets ≤4KB, ≤16KB, ≤64KB, ≤256KB, ≤1MB, +Inf, then
	// the running byte sum. The IDs must stay contiguous.
	QueueBacklogBucket0
	QueueBacklogBucket1
	QueueBacklogBucket2
	QueueBacklogBucket3
	QueueBacklogBucket4
	QueueBacklogBucketInf
	QueueBacklogSum

	// Sender aggregation: fleet attachments and the modeled senders they
	// stand for. Attach-time counts on the owning replica only, so the
	// merged totals are shard-layout-invariant and belong to the
	// deterministic plane.
	FleetAttached
	FleetModeledSenders

	// Runtime-plane metrics.
	SimEventsExecuted
	CoreKeyringRotations
	NetsimHandoffBatches
	NetsimHandoffPackets
	NetsimMailboxDepthHWM

	// Sharded validation pipeline (runtime plane: the pipeline only runs
	// on sharded layouts, and how much it precomputes depends on the cut
	// structure — the verdicts themselves are deterministic either way).
	PipelineBatches
	PipelinePackets
	PipelinePrecomputed
	PipelinePrecomputeHits
	PipelineRotationFallbacks

	// NumIDs is the cell-array length; keep it last.
	NumIDs
)

// QueueBacklogBounds are the histogram's upper bucket bounds in bytes;
// the +Inf bucket follows.
var QueueBacklogBounds = [5]uint64{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// Kind distinguishes how a metric accumulates and renders.
type Kind uint8

const (
	Counter   Kind = iota
	Gauge          // merged by max, not sum
	Histogram      // one Def covering a contiguous bucket range
)

// Def describes one registered metric for catalogs, docs and renderers.
type Def struct {
	ID   ID
	Name string
	Help string
	// Ref is the paper section the event implements.
	Ref  string
	Kind Kind
	// Runtime marks the metric as runtime-plane: excluded from
	// Result.Counters and the cross-shard determinism contract.
	Runtime bool
}

// defs is the metric registry, in cell order. Histogram entries stand
// for their whole bucket range.
var defs = []Def{
	{CoreMonitorUp, "core_monitor_up_total", "congestion monitor transitions to monitoring state (attack detected)", "§4.3", Counter, false},
	{CoreMonitorDown, "core_monitor_down_total", "congestion monitor transitions back to idle after the hold period", "§4.3", Counter, false},
	{CoreFallbackEngaged, "core_fallback_engaged_total", "per-AS fallback rate limiting engaged at a bottleneck", "§4.5", Counter, false},
	{CoreStampDecr, "core_stamp_decr_total", "L↓ congestion feedback stamps at a monitored bottleneck", "§4.3.1", Counter, false},
	{CoreStampNop, "core_stamp_nop_total", "nop feedback stamps at access routers (monitor idle)", "§4.3.1", Counter, false},
	{CoreStampIncr, "core_stamp_incr_total", "L↑ feedback stamps on rate-limited regular packets", "§4.3.1", Counter, false},
	{CorePoliceDemoted, "core_police_demoted_total", "packets with invalid or expired feedback demoted to the request channel", "§4.2", Counter, false},
	{CoreDemotedLegacy, "core_demoted_legacy_total", "unstamped regular packets demoted to the legacy channel", "§4.4", Counter, false},
	{CoreMACFail, "core_mac_verify_fail_total", "feedback MAC validation failures at the bottleneck", "§4.1", Counter, false},
	{CoreRequestAdmitted, "core_request_admitted_total", "request packets admitted by access-router priority policing", "§4.2", Counter, false},
	{CoreRequestDropped, "core_request_dropped_total", "request packets dropped by access-router priority policing", "§4.2", Counter, false},
	{CoreLimiterPass, "core_limiter_pass_total", "regular packets passed by a per-(sender,bottleneck) rate limiter", "§4.3.2", Counter, false},
	{CoreLimiterDrop, "core_limiter_drop_total", "regular packets dropped by a per-(sender,bottleneck) rate limiter", "§4.3.2", Counter, false},
	{CoreQuotaDrop, "core_quota_drop_total", "packets dropped by the congestion-quota extension", "§7", Counter, false},
	{CoreEscalation, "core_escalation_total", "request-channel priority escalations by sender shims", "§4.2", Counter, false},
	{NetsimDelivered, "netsim_delivered_total", "packets delivered to their destination host", "§6", Counter, false},
	{NetsimTxPackets, "netsim_tx_packets_total", "packets transmitted on links", "§6", Counter, false},
	{NetsimTxBytes, "netsim_tx_bytes_total", "bytes transmitted on links", "§6", Counter, false},
	{NetsimDrops, "netsim_drop_total", "packets refused by a link queue", "§6", Counter, false},
	{QueueDropRequest, "queue_drop_request_total", "request-channel drops at a NetFence bottleneck (evictions and overflow)", "§4.2", Counter, false},
	{QueueDropRegular, "queue_drop_regular_total", "regular-channel drops at a NetFence bottleneck (RED and fallback)", "§4.3", Counter, false},
	{QueueDropLegacy, "queue_drop_legacy_total", "legacy-channel drops at a NetFence bottleneck", "§4.4", Counter, false},
	{QueueHWMBytes, "queue_hwm_bytes", "highest backlog in bytes any single queue reached", "§6", Gauge, false},
	{QueueBacklogBucket0, "queue_backlog_bytes", "bottleneck backlog observed at each admitted enqueue", "§4.3", Histogram, false},
	{FleetAttached, "fleet_attached_total", "aggregate fleet sources attached to the topology", "§5.1", Counter, false},
	{FleetModeledSenders, "fleet_modeled_senders_total", "modeled senders represented by aggregate fleet sources", "§5.1", Counter, false},
	{SimEventsExecuted, "sim_events_executed_total", "discrete events executed, per engine shard", "—", Counter, true},
	{CoreKeyringRotations, "core_keyring_rotation_total", "access-router keyring rotations (replicated timers: scales with shard count)", "§4.1", Counter, true},
	{NetsimHandoffBatches, "netsim_handoff_batch_total", "cut-link mailbox drain batches between shards", "—", Counter, true},
	{NetsimHandoffPackets, "netsim_handoff_packet_total", "packets handed across shard cut links", "—", Counter, true},
	{NetsimMailboxDepthHWM, "netsim_mailbox_depth_hwm", "highest packet depth a cut-link mailbox reached at a drain", "—", Gauge, true},
	{PipelineBatches, "pipeline_validation_batch_total", "handoff batches fanned out to the validation worker pool", "§5.1", Counter, true},
	{PipelinePackets, "pipeline_validation_packet_total", "handoff packets examined by the validation worker pool", "§5.1", Counter, true},
	{PipelinePrecomputed, "pipeline_precompute_total", "MAC verdicts precomputed off the serialized execute phase", "§5.1", Counter, true},
	{PipelinePrecomputeHits, "pipeline_precompute_hit_total", "precomputed MAC verdicts consumed at admission instead of inline CMAC", "§5.1", Counter, true},
	{PipelineRotationFallbacks, "pipeline_rotation_fallback_total", "handoff packets skipped by the pipeline because their window straddles a KeyRotate boundary (validated inline)", "§4.1", Counter, true},
}

// Catalog returns the registry in cell order.
func Catalog() []Def { return defs }

// Cells is one replica's metric store: a dense array indexed by ID.
// Cells are single-goroutine by construction (each replica's engine
// owns its cells), so Add is a plain uint64 add.
type Cells []uint64

// NewCells allocates a zeroed cell array covering the full registry.
func NewCells() Cells { return make(Cells, NumIDs) }

// Add folds n into a counter cell.
func (c Cells) Add(id ID, n uint64) { c[id] += n }

// SetMax raises a gauge cell to v if v is higher.
func (c Cells) SetMax(id ID, v uint64) {
	if v > c[id] {
		c[id] = v
	}
}

// Set overwrites a cell (snapshot-harvested gauges and derived values).
func (c Cells) Set(id ID, v uint64) { c[id] = v }

// ObserveBacklog records one admitted-enqueue backlog observation into
// the queue_backlog_bytes histogram cells.
func (c Cells) ObserveBacklog(bytes uint64) {
	i := 0
	for i < len(QueueBacklogBounds) && bytes > QueueBacklogBounds[i] {
		i++
	}
	c[QueueBacklogBucket0+ID(i)]++
	c[QueueBacklogSum] += bytes
}

// gaugeCell reports whether an ID accumulates by max rather than sum.
func gaugeCell(id ID) bool {
	return id == QueueHWMBytes || id == NetsimMailboxDepthHWM
}

// Merge folds per-replica cells into one snapshot, in the given
// (deterministic) order: counters and histogram buckets sum, gauges
// max. Shard order does not change either operation's result, but the
// discipline matches the rest of the platform's barrier merges.
func Merge(shards []Cells) Cells {
	out := NewCells()
	for _, c := range shards {
		if c == nil {
			continue
		}
		for id := ID(0); id < NumIDs; id++ {
			if gaugeCell(id) {
				out.SetMax(id, c[id])
			} else {
				out[id] += c[id]
			}
		}
	}
	return out
}

// bucketLabel renders a histogram bucket's `le` bound.
func bucketLabel(i int) string {
	if i >= len(QueueBacklogBounds) {
		return "+Inf"
	}
	return strconv.FormatUint(QueueBacklogBounds[i], 10)
}

// expand writes one Def's cells into a name→value map, expanding
// histogram defs into their bucket/sum/count series. Zero-valued
// entries are omitted: the map stays lean and a metric's absence is as
// deterministic as its value.
func expand(m map[string]uint64, d Def, c Cells) {
	switch d.Kind {
	case Histogram:
		var cum uint64
		for i := 0; i <= len(QueueBacklogBounds); i++ {
			cum += c[d.ID+ID(i)]
			if cum > 0 {
				m[d.Name+`_bucket{le="`+bucketLabel(i)+`"}`] = cum
			}
		}
		if cum > 0 {
			m[d.Name+"_count"] = cum
		}
		if s := c[QueueBacklogSum]; s > 0 {
			m[d.Name+"_sum"] = s
		}
	default:
		if v := c[d.ID]; v > 0 {
			m[d.Name] = v
		}
	}
}

// DeterministicMap extracts the deterministic plane as a name→value
// map — the payload of Result.Counters. Byte-identical across shard
// counts by the platform's equivalence contract.
func DeterministicMap(c Cells) map[string]uint64 {
	m := make(map[string]uint64)
	for _, d := range defs {
		if d.Runtime {
			continue
		}
		expand(m, d, c)
	}
	return m
}

// RuntimeMap extracts the runtime plane as a name→value map.
func RuntimeMap(c Cells) map[string]uint64 {
	m := make(map[string]uint64)
	for _, d := range defs {
		if !d.Runtime {
			continue
		}
		expand(m, d, c)
	}
	return m
}
