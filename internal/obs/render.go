package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// typeByBase maps a metric base name to its Prometheus exposition
// type, derived from the registry.
func typeByBase() map[string]string {
	m := make(map[string]string, len(defs))
	for _, d := range defs {
		switch d.Kind {
		case Gauge:
			m[d.Name] = "gauge"
		case Histogram:
			m[d.Name] = "histogram"
		default:
			m[d.Name] = "counter"
		}
	}
	return m
}

// baseName strips a label suffix and the histogram-series suffixes so
// an expanded key ("queue_backlog_bytes_bucket{le=...}") resolves to
// its registered Def.
func baseName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		key = key[:i]
	}
	for _, suf := range []string{"_bucket", "_count", "_sum"} {
		if b := strings.TrimSuffix(key, suf); b != key {
			if _, ok := helpByBase[b]; ok {
				return b
			}
		}
	}
	return key
}

var helpByBase = func() map[string]string {
	m := make(map[string]string, len(defs))
	for _, d := range defs {
		m[d.Name] = d.Help
	}
	return m
}()

// MergeMap folds src into dst at the map level: counters and histogram
// series sum, gauges max — the expanded-key analogue of Merge, for
// aggregating snapshots across runs or jobs.
func MergeMap(dst, src map[string]uint64) {
	gauges := map[string]bool{}
	for _, d := range defs {
		if d.Kind == Gauge {
			gauges[d.Name] = true
		}
	}
	for k, v := range src {
		if gauges[baseName(k)] {
			if v > dst[k] {
				dst[k] = v
			}
			continue
		}
		dst[k] += v
	}
}

// RenderPrometheus writes counters as Prometheus text exposition,
// sorted by key with HELP/TYPE headers emitted once per base metric.
// Keys may carry literal label suffixes ({shard="0"}, {le="4096"});
// unknown keys render as counters without headers.
func RenderPrometheus(w io.Writer, counters map[string]uint64) error {
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	types := typeByBase()
	seen := make(map[string]bool)
	for _, k := range keys {
		base := baseName(k)
		if t, ok := types[base]; ok && !seen[base] {
			seen[base] = true
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", base, helpByBase[base], base, t); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", k, counters[k]); err != nil {
			return err
		}
	}
	return nil
}

// WriteTraceJSON writes a merged trace as a JSON array of events, one
// per line, deterministic byte-for-byte given a deterministic trace.
func WriteTraceJSON(w io.Writer, events []TraceEvent) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(b, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// chromeEvent is one Chrome trace_event entry: instant events on a
// per-flow "thread" so chrome://tracing (or Perfetto) lays a sampled
// flow's hops out on its own row.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	PID  int            `json:"pid"`
	TID  uint32         `json:"tid"`
	S    string         `json:"s"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes a merged trace in Chrome trace_event format
// (load via chrome://tracing or ui.perfetto.dev).
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: make([]chromeEvent, 0, len(events))}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Kind + " @ " + ev.Node,
			Ph:   "i",
			TS:   float64(ev.T) / 1e3,
			PID:  1,
			TID:  ev.Flow,
			S:    "t",
		}
		if ev.Detail != "" {
			ce.Args = map[string]any{"detail": ev.Detail}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
