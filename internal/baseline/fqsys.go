package baseline

import (
	"netfence/internal/defense"
	"netfence/internal/fq"
	"netfence/internal/netsim"
	"netfence/internal/packet"
)

// FQ deploys per-sender deficit-round-robin fair queuing at every
// protected link — the paper's representative of "throttle attack traffic
// to its fair share" defenses. It offers no way to remove attack traffic,
// so file transfer times grow linearly with the number of attackers
// (Figure 8).
type FQ struct{}

// NewFQ returns the fair-queuing system.
func NewFQ() *FQ { return &FQ{} }

// Name identifies the system.
func (*FQ) Name() string { return "FQ" }

// ProtectLink installs a per-sender DRR queue.
func (*FQ) ProtectLink(l *netsim.Link) {
	q := fq.NewDRR(fq.BySender, packet.SizeData, queueLimit(l.Rate))
	q.Release = l.From.Network().Release
	l.Q = q
}

// ProtectAccess does nothing: FQ has no access-router role.
func (*FQ) ProtectAccess(r *netsim.Node) {}

// AttachHost installs the receiver policy shim.
func (*FQ) AttachHost(h *netsim.Node, pol defense.Policy) {
	h.Host.Shim = denyShim{deny: pol.Deny}
}
