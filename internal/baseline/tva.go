package baseline

import (
	"netfence/internal/aqm"
	"netfence/internal/defense"
	"netfence/internal/fq"
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/queue"
	"netfence/internal/sim"
)

// TVA implements the TVA+ comparator (§6.3): a capability-based
// architecture. Receivers authorize senders by granting capabilities;
// regular packets carrying a valid capability ride a per-destination
// fair-queued channel; everything else is a request packet, policed by
// two-level (source AS, then sender) hierarchical fair queuing capped at
// 5% of link capacity.
//
// Capabilities are modeled as unforgeable by construction (only receiver
// shims mint packet.Capability values); see DESIGN.md. Capability caching
// at routers is deliberately not modeled — the paper's Figure 7 likewise
// excludes it because caching needs per-flow router state.
type TVA struct {
	// CapLifetime is how long a granted capability remains valid.
	CapLifetime sim.Time
	// RequestCapFrac caps the request channel's capacity share.
	RequestCapFrac float64
}

// NewTVA returns a TVA+ deployment with the paper's parameters.
func NewTVA() *TVA {
	return &TVA{CapLifetime: 10 * sim.Second, RequestCapFrac: 0.05}
}

// Name identifies the system.
func (*TVA) Name() string { return "TVA+" }

// ProtectLink installs the TVA+ two-channel queue.
func (t *TVA) ProtectLink(l *netsim.Link) {
	q := newTVAQueue(t, l.Rate)
	q.req.Release = l.From.Network().Release
	q.reg.Release = l.From.Network().Release
	l.Q = q
}

// ProtectAccess does nothing: TVA+ polices at congested routers, not at
// the access edge.
func (t *TVA) ProtectAccess(r *netsim.Node) {}

// AttachHost installs the capability-granting shim.
func (t *TVA) AttachHost(h *netsim.Node, pol defense.Policy) {
	h.Host.Shim = &tvaShim{sys: t, host: h.Host, deny: pol.Deny,
		caps: make(map[packet.NodeID]packet.Capability),
		refr: make(map[packet.NodeID]*tvaPeer)}
}

// tvaQueue is a link queue with a capability-checked regular channel
// (per-destination DRR) and a hard-capped request channel (AS-then-sender
// hierarchical DRR). Legacy traffic rides below both.
type tvaQueue struct {
	req    *fq.HDRR
	reg    *fq.DRR
	legacy *aqm.DropTail

	credit     float64
	creditMax  float64
	creditRate float64
	creditAt   sim.Time
}

func newTVAQueue(t *TVA, rateBps int64) *tvaQueue {
	limit := queueLimit(rateBps)
	reqLimit := limit / 20
	if reqLimit < 8_000 {
		reqLimit = 8_000
	}
	return &tvaQueue{
		req:        fq.NewHDRR(fq.BySourceAS, fq.BySender, packet.SizeRequest, reqLimit),
		reg:        fq.NewDRR(fq.ByDest, packet.SizeData, limit),
		legacy:     aqm.NewDropTail(limit / 10),
		creditMax:  2 * packet.SizeData,
		creditRate: t.RequestCapFrac * float64(rateBps) / 8,
	}
}

// Enqueue validates capabilities and routes to the proper channel.
func (q *tvaQueue) Enqueue(p *packet.Packet, now sim.Time) bool {
	switch p.Kind {
	case packet.KindLegacy:
		return q.legacy.Enqueue(p, now)
	case packet.KindRegular:
		nowSec := uint32(now / sim.Second)
		if p.Cap.Valid(p.Dst, nowSec) {
			return q.reg.Enqueue(p, now)
		}
		// Missing/expired/forged capability: the packet is a request.
		p.Kind = packet.KindRequest
		fallthrough
	default:
		return q.req.Enqueue(p, now)
	}
}

func (q *tvaQueue) refill(now sim.Time) {
	if now > q.creditAt {
		q.credit += q.creditRate * (now - q.creditAt).Seconds()
		if q.credit > q.creditMax {
			q.credit = q.creditMax
		}
	}
	q.creditAt = now
}

// Dequeue serves requests within their 5% share, then regular, then
// legacy traffic.
func (q *tvaQueue) Dequeue(now sim.Time) (*packet.Packet, sim.Time) {
	q.refill(now)
	if q.req.Bytes() > 0 && q.credit >= packet.SizeRequest {
		if p, _ := q.req.Dequeue(now); p != nil {
			q.credit -= float64(p.Size)
			return p, 0
		}
	}
	if p, _ := q.reg.Dequeue(now); p != nil {
		return p, 0
	}
	if p, _ := q.legacy.Dequeue(now); p != nil {
		return p, 0
	}
	if q.req.Bytes() > 0 {
		need := packet.SizeRequest - q.credit
		wait := sim.Time(need / q.creditRate * float64(sim.Second))
		if wait < sim.Microsecond {
			wait = sim.Microsecond
		}
		return nil, now + wait
	}
	return nil, 0
}

// Len returns total queued packets.
func (q *tvaQueue) Len() int { return q.req.Len() + q.reg.Len() + q.legacy.Len() }

// Bytes returns total queued bytes.
func (q *tvaQueue) Bytes() int { return q.req.Bytes() + q.reg.Bytes() + q.legacy.Bytes() }

// Stats aggregates all channels.
func (q *tvaQueue) Stats() queue.Stats {
	s := q.req.Stats()
	for _, t := range []queue.Stats{q.reg.Stats(), q.legacy.Stats()} {
		s.Enqueued += t.Enqueued
		s.Dequeued += t.Dequeued
		s.Dropped += t.Dropped
		s.DequeuedBytes += t.DequeuedBytes
		s.DroppedBytes += t.DroppedBytes
	}
	return s
}

// tvaShim is the TVA+ host layer: receivers grant capabilities to peers
// they accept from; senders attach granted capabilities to their regular
// packets.
type tvaShim struct {
	sys  *TVA
	host *netsim.Host
	deny func(src packet.NodeID) bool
	// caps holds capabilities this host has been granted, by granter.
	caps map[packet.NodeID]packet.Capability
	refr map[packet.NodeID]*tvaPeer
}

type tvaPeer struct {
	lastSent  sim.Time
	lastHeard sim.Time
	lastFlow  packet.FlowID
	refresh   *sim.Ticker
}

func (t *tvaShim) peer(id packet.NodeID) *tvaPeer {
	ps := t.refr[id]
	if ps == nil {
		ps = &tvaPeer{}
		t.refr[id] = ps
	}
	return ps
}

// Egress attaches capabilities and grants.
func (t *tvaShim) Egress(p *packet.Packet) {
	now := t.host.Network().Eng.Now()
	nowSec := uint32(now / sim.Second)
	ps := t.peer(p.Dst)
	ps.lastSent = now

	// Receiver role: any packet we send to a peer we accept from carries
	// a fresh grant authorizing that peer to send to us.
	p.CapGrant = packet.Capability{
		Present: true,
		Dst:     t.host.Node.ID,
		Expire:  nowSec + uint32(t.sys.CapLifetime/sim.Second),
	}

	if p.Kind == packet.KindRequest {
		return // pre-crafted request flood
	}
	if p.IsSYN() {
		p.Kind = packet.KindRequest
		return
	}
	if cap, ok := t.caps[p.Dst]; ok && cap.Valid(p.Dst, nowSec) {
		p.Cap = cap
		p.Kind = packet.KindRegular
		return
	}
	p.Kind = packet.KindRequest
}

// Ingress stores grants and applies the receiver policy.
func (t *tvaShim) Ingress(p *packet.Packet) bool {
	if t.deny != nil && t.deny(p.Src) {
		return false // no grant is ever minted for this sender
	}
	ps := t.peer(p.Src)
	ps.lastHeard = t.host.Network().Eng.Now()
	ps.lastFlow = p.Flow
	if p.CapGrant.Present && p.CapGrant.Dst == p.Src {
		t.caps[p.Src] = p.CapGrant
	}
	if p.Proto == packet.ProtoUDP && p.Payload > 0 {
		t.ensureRefresh(p.Src, ps)
	}
	return p.Proto != packet.ProtoCap
}

// ensureRefresh keeps a one-way sender's capability fresh with dedicated
// low-rate grant packets, TVA's analogue of NetFence's feedback packets.
func (t *tvaShim) ensureRefresh(peer packet.NodeID, ps *tvaPeer) {
	if ps.refresh != nil {
		return
	}
	eng := t.host.Network().Eng
	interval := t.sys.CapLifetime / 4
	ps.refresh = eng.Tick(interval, func() {
		now := eng.Now()
		if now-ps.lastHeard > 2*t.sys.CapLifetime {
			ps.refresh.Stop()
			ps.refresh = nil
			return
		}
		if now-ps.lastSent < interval {
			return
		}
		p := t.host.NewPacket()
		p.Dst = peer
		p.Flow = ps.lastFlow
		p.Proto = packet.ProtoCap
		p.Size = packet.SizeFeedbackPkt
		t.host.Send(p)
	})
}
