package baseline

import (
	"testing"

	"netfence/internal/defense"
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
	"netfence/internal/topo"
	"netfence/internal/transport"
)

// deploySys installs a system on a dumbbell. deniedIdx are indexes into
// d.Senders that the victim identifies as unwanted.
func deploySys(seed uint64, cfg topo.DumbbellConfig, mk func(n *netsim.Network) defense.System, deniedIdx ...int) (*topo.Dumbbell, defense.System) {
	eng := sim.New(seed)
	d := topo.NewDumbbell(eng, cfg)
	s := mk(d.Net)
	s.ProtectLink(d.Bottleneck)
	for _, ra := range d.SrcAccess {
		s.ProtectAccess(ra)
	}
	s.ProtectAccess(d.VictimAccess)
	for _, rc := range d.ColluderAccess {
		s.ProtectAccess(rc)
	}
	denySet := map[packet.NodeID]bool{}
	for _, i := range deniedIdx {
		denySet[d.Senders[i].ID] = true
	}
	for _, h := range d.Senders {
		s.AttachHost(h, defense.Policy{})
	}
	s.AttachHost(d.Victim, defense.Policy{Deny: func(src packet.NodeID) bool {
		return denySet[src]
	}})
	for _, c := range d.Colluders {
		s.AttachHost(c, defense.Policy{})
	}
	return d, s
}

func TestTVACapabilityGrantLoop(t *testing.T) {
	cfg := topo.DefaultDumbbell(2, 1_000_000)
	d, _ := deploySys(1, cfg, func(n *netsim.Network) defense.System { return NewTVA() })
	rcv := transport.NewTCPReceiver(d.Victim.Host, 1)
	ok := false
	s := transport.NewTCPSender(d.Senders[0].Host, d.Victim.ID, 1, 100_000, transport.DefaultTCP())
	s.OnComplete = func(fct sim.Time, o bool) { ok = o }
	s.Start()
	d.Net.Eng.RunUntil(30 * sim.Second)
	if !ok || rcv.DeliveredBytes() != 100_000 {
		t.Fatalf("TCP over TVA+ failed: ok=%v delivered=%d", ok, rcv.DeliveredBytes())
	}
}

func TestTVAWithheldCapabilityThrottles(t *testing.T) {
	// The victim denies the attacker: no capability is ever granted, so
	// the attacker's 1 Mbps flood is squeezed into the 5% request channel.
	cfg := topo.DefaultDumbbell(2, 1_000_000)
	d, _ := deploySys(2, cfg, func(n *netsim.Network) defense.System { return NewTVA() }, 1)
	attacker := d.Senders[1]
	sink := transport.NewUDPSink(d.Victim.Host, 5)
	_ = sink
	transport.NewUDPSource(attacker.Host, d.Victim.ID, 5, 1_000_000, 1500).Start()
	d.Net.Eng.RunUntil(20 * sim.Second)
	// Everything the victim sees arrived via the 5% request channel
	// (50 kbps); the victim's shim then discards it.
	got := float64(sink.Bytes) * 8 / 20
	if got > 60_000 {
		t.Fatalf("unauthorized flood reached %.0f bps through a 50 kbps request channel", got)
	}
}

func TestTVAColludersHurtVictimThroughput(t *testing.T) {
	// Per-destination fair queuing: with colluders soaking up
	// destinations, each legitimate sender to the victim gets a smaller
	// share than each attacker (the paper's TVA+ weakness, Figure 9).
	cfg := topo.DefaultDumbbell(8, 800_000)
	cfg.ColluderASes = 3
	d, _ := deploySys(3, cfg, func(n *netsim.Network) defense.System { return NewTVA() })
	// 2 legit senders -> victim, 6 attackers -> 3 colluders.
	var legitRcv [2]*transport.TCPReceiver
	for i := 0; i < 2; i++ {
		legitRcv[i] = transport.NewTCPReceiver(d.Victim.Host, packet.FlowID(i+1))
		transport.NewTCPSender(d.Senders[i].Host, d.Victim.ID, packet.FlowID(i+1), -1, transport.DefaultTCP()).Start()
	}
	var sinks [6]*transport.UDPSink
	for i := 0; i < 6; i++ {
		col := d.Colluders[i%3]
		flow := packet.FlowID(10 + i)
		sinks[i] = transport.NewUDPSink(col.Host, flow)
		transport.NewUDPSource(d.Senders[2+i].Host, col.ID, flow, 1_000_000, 1500).Start()
	}
	d.Net.Eng.RunUntil(60 * sim.Second)
	legitBps := float64(legitRcv[0].DeliveredBytes()+legitRcv[1].DeliveredBytes()) * 8 / 60 / 2
	var atkBytes uint64
	for _, s := range sinks {
		atkBytes += s.Bytes
	}
	atkBps := float64(atkBytes) * 8 / 60 / 6
	// Victim is 1 of 4 destinations: its 2 senders share 200 kbps
	// (100 kbps each); 6 attackers share 600 kbps (100 kbps each) — but
	// TCP-vs-UDP and per-dest competition should leave legit at or below
	// attacker throughput. The key check: attackers collectively hold
	// ~3/4 of the link.
	if atkBps < legitBps {
		t.Fatalf("TVA+ should favor attackers with colluders: legit %.0f vs attacker %.0f", legitBps, atkBps)
	}
	if float64(atkBytes)*8/60 < 400_000 {
		t.Fatalf("attackers only reached %.0f bps aggregate", float64(atkBytes)*8/60)
	}
}

func TestStopItFilterBlocksFlood(t *testing.T) {
	cfg := topo.DefaultDumbbell(2, 1_000_000)
	var st *StopIt
	d, _ := deploySys(4, cfg, func(n *netsim.Network) defense.System {
		st = NewStopIt(n)
		return st
	}, 1)
	attacker := d.Senders[1]
	sink := transport.NewUDPSink(d.Victim.Host, 5)
	transport.NewUDPSource(attacker.Host, d.Victim.ID, 5, 1_000_000, 1500).Start()
	d.Net.Eng.RunUntil(20 * sim.Second)
	if st.FiltersInstalled == 0 {
		t.Fatal("no filter installed")
	}
	// Only packets in flight before the filter landed (~200 ms worth)
	// ever reached the victim's shim.
	if sink.Packets > 0 {
		t.Fatal("denied packets were delivered to the transport")
	}
	sa := st.access[attacker.ID]
	if sa == nil || sa.Blocked == 0 {
		t.Fatal("filter never blocked at the source access router")
	}
	// The flood keeps running but is dropped at its own access router:
	// the bottleneck carries almost nothing.
	if d.Bottleneck.TxBytes > 1_000_000/8 {
		t.Fatalf("bottleneck carried %d bytes despite source filtering", d.Bottleneck.TxBytes)
	}
}

func TestStopItLegitUnaffectedByFilters(t *testing.T) {
	cfg := topo.DefaultDumbbell(2, 1_000_000)
	var st *StopIt
	d, _ := deploySys(5, cfg, func(n *netsim.Network) defense.System {
		st = NewStopIt(n)
		return st
	}, 1)
	transport.NewTCPReceiver(d.Victim.Host, 1)
	ok := false
	s := transport.NewTCPSender(d.Senders[0].Host, d.Victim.ID, 1, 100_000, transport.DefaultTCP())
	s.OnComplete = func(fct sim.Time, o bool) { ok = o }
	s.Start()
	transport.NewUDPSource(d.Senders[1].Host, d.Victim.ID, 5, 1_000_000, 1500).Start()
	d.Net.Eng.RunUntil(30 * sim.Second)
	if !ok {
		t.Fatal("legit transfer failed under a filtered flood")
	}
}

func TestFQFairShareUnderFlood(t *testing.T) {
	// 2 Mbps across 4 senders: 500 kbps fair share with a 50 KB shared
	// buffer (a tiny 400 kbps link leaves TCP under 2 packets of buffer,
	// where DRR's TCP-vs-UDP bias is extreme).
	cfg := topo.DefaultDumbbell(4, 2_000_000)
	d, _ := deploySys(6, cfg, func(n *netsim.Network) defense.System { return NewFQ() })
	rcv := transport.NewTCPReceiver(d.Victim.Host, 1)
	transport.NewTCPSender(d.Senders[0].Host, d.Victim.ID, 1, -1, transport.DefaultTCP()).Start()
	for i := 1; i < 4; i++ {
		transport.NewUDPSink(d.Victim.Host, packet.FlowID(10+i))
		transport.NewUDPSource(d.Senders[i].Host, d.Victim.ID, packet.FlowID(10+i), 1_000_000, 1500).Start()
	}
	d.Net.Eng.RunUntil(60 * sim.Second)
	bps := float64(rcv.DeliveredBytes()) * 8 / 60
	// Fair share 500 kbps; DRR's TCP-vs-UDP interaction costs some of it
	// (the paper observes the same, §6.3.2), but TCP must hold a sizable
	// fraction.
	if bps < 250_000 {
		t.Fatalf("TCP got %.0f bps under FQ, want > 250 kbps of its 500 kbps share", bps)
	}
}

func TestNoneUndefendedCollapse(t *testing.T) {
	cfg := topo.DefaultDumbbell(4, 2_000_000)
	d, _ := deploySys(7, cfg, func(n *netsim.Network) defense.System { return NewNone() })
	rcv := transport.NewTCPReceiver(d.Victim.Host, 1)
	transport.NewTCPSender(d.Senders[0].Host, d.Victim.ID, 1, -1, transport.DefaultTCP()).Start()
	for i := 1; i < 4; i++ {
		transport.NewUDPSink(d.Victim.Host, packet.FlowID(10+i))
		transport.NewUDPSource(d.Senders[i].Host, d.Victim.ID, packet.FlowID(10+i), 1_000_000, 1500).Start()
	}
	d.Net.Eng.RunUntil(60 * sim.Second)
	bps := float64(rcv.DeliveredBytes()) * 8 / 60
	// 3 Mbps of unresponsive UDP into a 2 Mbps DropTail starves TCP.
	if bps > 150_000 {
		t.Fatalf("TCP got %.0f bps with no defense; expected starvation", bps)
	}
}

func TestCapabilityExpiry(t *testing.T) {
	cap := packet.Capability{Present: true, Dst: 5, Expire: 100}
	if !cap.Valid(5, 100) {
		t.Fatal("capability invalid at expiry instant")
	}
	if cap.Valid(5, 101) {
		t.Fatal("expired capability valid")
	}
	if cap.Valid(6, 50) {
		t.Fatal("capability valid for wrong destination")
	}
	if (packet.Capability{}).Valid(0, 0) {
		t.Fatal("zero capability valid")
	}
}
