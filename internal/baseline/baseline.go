// Package baseline implements the three comparator DoS defenses of the
// paper's evaluation (§6.3) plus an undefended control:
//
//   - TVA+: network capabilities with two-level hierarchical fair queuing
//     (source AS, then sender) on the request channel and per-destination
//     fair queuing on the regular channel;
//   - StopIt: victim-installed network filters that block unwanted flows
//     at the source access router, with AS-then-sender hierarchical fair
//     queuing at congested links;
//   - FQ: plain per-sender fair queuing at every link;
//   - None: DropTail everywhere.
//
// All four satisfy defense.System, so the experiment harness can swap
// them under identical topologies and workloads.
package baseline

import (
	"netfence/internal/aqm"
	"netfence/internal/defense"
	"netfence/internal/netsim"
	"netfence/internal/packet"
)

// queueLimit returns the evaluation queue size: 0.2 s of buffering, as in
// Figure 3.
func queueLimit(rateBps int64) int {
	limit := int(rateBps / 8 / 5)
	if limit < 2*packet.SizeData {
		limit = 2 * packet.SizeData
	}
	return limit
}

// denyShim drops unwanted traffic at the receiver. Systems without a
// sender-side host layer still give victims the ability to ignore
// traffic; whether that helps depends on the system (it does not for FQ,
// where the traffic has already crossed the bottleneck).
type denyShim struct {
	deny func(src packet.NodeID) bool
}

func (d denyShim) Egress(*packet.Packet) {}

func (d denyShim) Ingress(p *packet.Packet) bool {
	return d.deny == nil || !d.deny(p.Src)
}

// None is the undefended network: DropTail queues, no policing.
type None struct{}

// NewNone returns the undefended control system.
func NewNone() *None { return &None{} }

// Name identifies the system.
func (*None) Name() string { return "None" }

// ProtectLink installs a DropTail queue.
func (*None) ProtectLink(l *netsim.Link) {
	l.Q = aqm.NewDropTail(queueLimit(l.Rate))
}

// ProtectAccess does nothing.
func (*None) ProtectAccess(r *netsim.Node) {}

// AttachHost installs the receiver policy shim.
func (*None) AttachHost(h *netsim.Node, pol defense.Policy) {
	h.Host.Shim = denyShim{deny: pol.Deny}
}
