package baseline

import (
	"netfence/internal/aqm"
	"netfence/internal/defense"
	"netfence/internal/fq"
	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/queue"
	"netfence/internal/sim"
)

// StopIt implements the filter-based comparator (§6.3): a victim that
// identifies unwanted traffic installs a network filter that blocks the
// (source, destination) pair at the source's access router. When
// receivers fail to install filters (colluding receivers), congested
// links fall back to AS-then-sender hierarchical fair queuing, exactly as
// the paper describes.
//
// The closed-loop filter-request protocol of the original system is
// modeled as a reliable control channel with a configurable propagation
// delay, the same abstraction the paper's own evaluation uses.
type StopIt struct {
	// FilterDelay is the time from the victim's decision to the filter
	// taking effect at the source access router.
	FilterDelay sim.Time
	// FilterDuration is how long an installed filter lasts.
	FilterDuration sim.Time

	net *netsim.Network
	// access maps each host to its access-router filter table.
	access map[packet.NodeID]*stopitAccess

	// FiltersInstalled counts installations, for tests and metrics.
	FiltersInstalled int
}

// NewStopIt returns a StopIt deployment for net.
func NewStopIt(net *netsim.Network) *StopIt {
	return &StopIt{
		FilterDelay:    100 * sim.Millisecond,
		FilterDuration: 10 * sim.Minute,
		net:            net,
		access:         make(map[packet.NodeID]*stopitAccess),
	}
}

// Name identifies the system.
func (*StopIt) Name() string { return "StopIt" }

// ProtectLink installs AS-then-sender hierarchical fair queuing.
func (s *StopIt) ProtectLink(l *netsim.Link) {
	main := fq.NewHDRR(fq.BySourceAS, fq.BySender, packet.SizeData, queueLimit(l.Rate))
	main.Release = l.From.Network().Release
	l.Q = &stopitQueue{
		main:   main,
		legacy: aqm.NewDropTail(queueLimit(l.Rate) / 10),
	}
}

// ProtectAccess installs a filter table covering r's attached hosts.
func (s *StopIt) ProtectAccess(r *netsim.Node) {
	sa := &stopitAccess{sys: s, node: r, filters: make(map[[2]packet.NodeID]sim.Time)}
	r.Ingress = sa.ingress
	for _, l := range r.Out() {
		if l.To.IsHost && l.To.AS == r.AS {
			s.access[l.To.ID] = sa
		}
	}
}

// AttachHost installs the filter-requesting shim.
func (s *StopIt) AttachHost(h *netsim.Node, pol defense.Policy) {
	h.Host.Shim = &stopitShim{sys: s, host: h.Host, deny: pol.Deny}
}

// RequestFilter asks the source's access router to block src->dst, after
// the control-channel delay.
func (s *StopIt) RequestFilter(src, dst packet.NodeID) {
	sa := s.access[src]
	if sa == nil {
		return
	}
	key := [2]packet.NodeID{src, dst}
	eng := s.net.Eng
	if until, ok := sa.filters[key]; ok && until > eng.Now()+s.FilterDelay {
		return // already installed or in flight
	}
	sa.filters[key] = eng.Now() + s.FilterDelay + s.FilterDuration
	s.FiltersInstalled++
}

// stopitAccess is an access router's filter table.
type stopitAccess struct {
	sys     *StopIt
	node    *netsim.Node
	filters map[[2]packet.NodeID]sim.Time

	// Blocked counts packets dropped by filters.
	Blocked uint64
}

func (sa *stopitAccess) ingress(p *packet.Packet, from *netsim.Link) bool {
	if from == nil || !from.From.IsHost || from.From.AS != sa.node.AS {
		return true
	}
	now := sa.node.Network().Eng.Now()
	if until, ok := sa.filters[[2]packet.NodeID{p.Src, p.Dst}]; ok {
		if now <= until && now >= until-sa.sys.FilterDuration {
			sa.Blocked++
			sa.node.Network().Release(p) // filtered: end of life
			return false
		}
		if now > until {
			delete(sa.filters, [2]packet.NodeID{p.Src, p.Dst})
		}
	}
	return true
}

// stopitShim is the host layer: victims that identify unwanted traffic
// install filters; everything else passes through.
type stopitShim struct {
	sys  *StopIt
	host *netsim.Host
	deny func(src packet.NodeID) bool
}

func (sh *stopitShim) Egress(p *packet.Packet) {}

func (sh *stopitShim) Ingress(p *packet.Packet) bool {
	if sh.deny != nil && sh.deny(p.Src) {
		sh.sys.RequestFilter(p.Src, sh.host.Node.ID)
		return false
	}
	return true
}

// stopitQueue serves the hierarchically fair main channel with legacy
// traffic strictly below it.
type stopitQueue struct {
	main   *fq.HDRR
	legacy *aqm.DropTail
}

// Enqueue routes by channel.
func (q *stopitQueue) Enqueue(p *packet.Packet, now sim.Time) bool {
	if p.Kind == packet.KindLegacy {
		return q.legacy.Enqueue(p, now)
	}
	return q.main.Enqueue(p, now)
}

// Dequeue serves main, then legacy.
func (q *stopitQueue) Dequeue(now sim.Time) (*packet.Packet, sim.Time) {
	if p, _ := q.main.Dequeue(now); p != nil {
		return p, 0
	}
	return q.legacy.Dequeue(now)
}

// Len returns total queued packets.
func (q *stopitQueue) Len() int { return q.main.Len() + q.legacy.Len() }

// Bytes returns total queued bytes.
func (q *stopitQueue) Bytes() int { return q.main.Bytes() + q.legacy.Bytes() }

// Stats aggregates both channels.
func (q *stopitQueue) Stats() queue.Stats {
	s := q.main.Stats()
	t := q.legacy.Stats()
	s.Enqueued += t.Enqueued
	s.Dequeued += t.Dequeued
	s.Dropped += t.Dropped
	s.DequeuedBytes += t.DequeuedBytes
	s.DroppedBytes += t.DroppedBytes
	return s
}
