package baseline

import (
	"fmt"

	"netfence/internal/defense"
	"netfence/internal/netsim"
)

// The baselines self-register in the defense registry. None of them take
// a configuration value; a non-nil BuildOptions.Config is rejected so a
// misdirected NetFence config cannot be silently ignored.
func init() {
	register := func(name string, build func(net *netsim.Network) defense.System) {
		defense.Register(name, func(net *netsim.Network, opts defense.BuildOptions) (defense.System, error) {
			if opts.Config != nil {
				return nil, fmt.Errorf("%s: system takes no configuration, got %T", name, opts.Config)
			}
			return build(net), nil
		})
	}
	register("tva", func(*netsim.Network) defense.System { return NewTVA() })
	register("stopit", func(net *netsim.Network) defense.System { return NewStopIt(net) })
	register("fq", func(*netsim.Network) defense.System { return NewFQ() })
	register("none", func(*netsim.Network) defense.System { return NewNone() })
}
