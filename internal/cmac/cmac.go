// Package cmac implements the AES-CMAC message authentication code defined
// in RFC 4493, using only the standard library's crypto/aes.
//
// NetFence protects its congestion policing feedback with a MAC computed by
// symmetric-key hardware on routers (the paper cites line-rate AES support).
// CMAC is the standard way to turn AES into a MAC and is what an actual
// deployment would use; the 4-byte truncation applied by the NetFence header
// is performed by callers, not here.
package cmac

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// Key is a 128-bit AES key.
type Key = [16]byte

// CMAC computes AES-CMAC tags under a fixed key. It precomputes the two
// subkeys K1 and K2 at construction, so per-message cost is one AES pass.
//
// A CMAC value is NOT safe for concurrent use: Sum chains the cipher
// through scratch blocks held on the struct, because stack scratch
// passed to the cipher.Block interface escapes to the heap and the
// per-packet MAC was the simulator's dominant allocation. Every engine
// shard builds its own key material, so instances are single-goroutine
// by construction; callers that share one across goroutines must
// serialize.
type CMAC struct {
	block  cipher.Block
	k1, k2 [BlockSize]byte
	// x, y are Sum's CBC chaining state and XOR scratch. Struct-resident
	// so Sum performs zero heap allocations per call.
	x, y [BlockSize]byte
}

// New returns a CMAC for the given 128-bit key.
func New(key Key) *CMAC {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		// aes.NewCipher only fails on invalid key sizes, which the Key
		// type makes impossible.
		panic("cmac: " + err.Error())
	}
	c := &CMAC{block: block}
	var l [BlockSize]byte
	block.Encrypt(l[:], l[:])
	shiftLeft(&c.k1, &l)
	if l[0]&0x80 != 0 {
		c.k1[BlockSize-1] ^= 0x87
	}
	shiftLeft(&c.k2, &c.k1)
	if c.k1[0]&0x80 != 0 {
		c.k2[BlockSize-1] ^= 0x87
	}
	return c
}

// shiftLeft sets dst to src << 1.
func shiftLeft(dst, src *[BlockSize]byte) {
	var carry byte
	for i := BlockSize - 1; i >= 0; i-- {
		dst[i] = src[i]<<1 | carry
		carry = src[i] >> 7
	}
}

// Sum computes the 16-byte AES-CMAC tag of msg.
func (c *CMAC) Sum(msg []byte) [BlockSize]byte {
	c.x = [BlockSize]byte{}
	n := len(msg)
	// Process all complete blocks except the last.
	for n > BlockSize {
		for i := 0; i < BlockSize; i++ {
			c.y[i] = c.x[i] ^ msg[i]
		}
		c.block.Encrypt(c.x[:], c.y[:])
		msg = msg[BlockSize:]
		n -= BlockSize
	}
	var last [BlockSize]byte
	if n == BlockSize {
		for i := 0; i < BlockSize; i++ {
			last[i] = msg[i] ^ c.k1[i]
		}
	} else {
		copy(last[:], msg)
		last[n] = 0x80
		for i := 0; i < BlockSize; i++ {
			last[i] ^= c.k2[i]
		}
	}
	for i := 0; i < BlockSize; i++ {
		c.y[i] = c.x[i] ^ last[i]
	}
	c.block.Encrypt(c.x[:], c.y[:])
	return c.x
}

// Sum32 computes the CMAC tag truncated to its first 4 bytes, the width of
// the MAC field in the NetFence header (Figure 6 of the paper).
func (c *CMAC) Sum32(msg []byte) [4]byte {
	full := c.Sum(msg)
	return [4]byte{full[0], full[1], full[2], full[3]}
}

// Clone returns an independent instance under the same key: the AES
// block cipher and the derived subkeys are shared (both are immutable
// after New), only the chaining scratch is fresh. Cloning is how a
// batch-validation worker pool gets a private instance per goroutine —
// New does not retain the raw key bytes, so sharing the block is the
// only way to duplicate an existing instance.
func (c *CMAC) Clone() *CMAC {
	return &CMAC{block: c.block, k1: c.k1, k2: c.k2}
}

// VerifyBatch32 verifies a batch of messages against their truncated
// 4-byte tags under this instance's key, writing per-message results
// into ok and returning how many verified. msgs, tags and ok must have
// equal length. Each message chains through the instance's
// struct-resident scratch exactly like Sum, so the whole batch performs
// zero heap allocations; like every other method it must not run
// concurrently on one instance — batch-parallel callers Clone one
// instance per worker.
func (c *CMAC) VerifyBatch32(msgs [][]byte, tags [][4]byte, ok []bool) int {
	n := 0
	for i, msg := range msgs {
		got := c.Sum32(msg)
		ok[i] = got == tags[i]
		if ok[i] {
			n++
		}
	}
	return n
}

// Verify reports whether tag is the CMAC of msg, in constant time.
func (c *CMAC) Verify(msg []byte, tag []byte) bool {
	full := c.Sum(msg)
	if len(tag) > BlockSize {
		return false
	}
	return subtle.ConstantTimeCompare(full[:len(tag)], tag) == 1
}

// Sum is a convenience helper computing a one-shot AES-CMAC.
func Sum(key Key, msg []byte) [BlockSize]byte { return New(key).Sum(msg) }
