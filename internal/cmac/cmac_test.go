package cmac

import (
	"bytes"
	"encoding/hex"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// TestRFC4493Vectors checks the four official AES-128-CMAC test vectors.
func TestRFC4493Vectors(t *testing.T) {
	keyBytes := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	var key Key
	copy(key[:], keyBytes)
	msgFull := mustHex(t, "6bc1bee22e409f96e93d7e117393172a"+
		"ae2d8a571e03ac9c9eb76fac45af8e51"+
		"30c81c46a35ce411e5fbc1191a0a52ef"+
		"f69f2445df4f9b17ad2b417be66c3710")
	cases := []struct {
		name string
		n    int
		want string
	}{
		{"len0", 0, "bb1d6929e95937287fa37d129b756746"},
		{"len16", 16, "070a16b46b4d4144f79bdd9dd04a287c"},
		{"len40", 40, "dfa66747de9ae63030ca32611497c827"},
		{"len64", 64, "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	c := New(key)
	for _, tc := range cases {
		got := c.Sum(msgFull[:tc.n])
		want := mustHex(t, tc.want)
		if !bytes.Equal(got[:], want) {
			t.Errorf("%s: got %x, want %x", tc.name, got, want)
		}
	}
}

func TestSubkeysRFC4493(t *testing.T) {
	keyBytes := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	var key Key
	copy(key[:], keyBytes)
	c := New(key)
	if got := hex.EncodeToString(c.k1[:]); got != "fbeed618357133667c85e08f7236a8de" {
		t.Errorf("K1 = %s", got)
	}
	if got := hex.EncodeToString(c.k2[:]); got != "f7ddac306ae266ccf90bc11ee46d513b" {
		t.Errorf("K2 = %s", got)
	}
}

func TestVerify(t *testing.T) {
	var key Key
	key[0] = 7
	c := New(key)
	msg := []byte("netfence congestion policing feedback")
	tag := c.Sum(msg)
	if !c.Verify(msg, tag[:]) {
		t.Fatal("valid full tag rejected")
	}
	if !c.Verify(msg, tag[:4]) {
		t.Fatal("valid truncated tag rejected")
	}
	bad := tag
	bad[0] ^= 1
	if c.Verify(msg, bad[:]) {
		t.Fatal("tampered tag accepted")
	}
	long := append(tag[:], 0)
	if c.Verify(msg, long) {
		t.Fatal("overlong tag accepted")
	}
}

func TestSum32MatchesPrefix(t *testing.T) {
	var key Key
	c := New(key)
	msg := []byte{1, 2, 3, 4, 5}
	full := c.Sum(msg)
	short := c.Sum32(msg)
	if !bytes.Equal(full[:4], short[:]) {
		t.Fatalf("Sum32 %x != prefix of Sum %x", short, full[:4])
	}
}

func TestOneShotSum(t *testing.T) {
	var key Key
	key[5] = 99
	msg := []byte("hello")
	a := Sum(key, msg)
	b := New(key).Sum(msg)
	if a != b {
		t.Fatal("one-shot Sum differs from CMAC.Sum")
	}
}

// TestBitFlipProperty: flipping any single bit of the message changes the
// tag (with overwhelming probability; equality would be a bug for CMAC on
// short messages).
func TestBitFlipProperty(t *testing.T) {
	prop := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		var key Key
		for i := range key {
			key[i] = byte(rng.Uint32())
		}
		msg := make([]byte, int(n)+1)
		for i := range msg {
			msg[i] = byte(rng.Uint32())
		}
		c := New(key)
		orig := c.Sum(msg)
		i := rng.IntN(len(msg))
		bit := byte(1) << rng.IntN(8)
		msg[i] ^= bit
		flipped := c.Sum(msg)
		return orig != flipped
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestKeySeparationProperty: tags under different keys differ.
func TestKeySeparationProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 4))
		var k1, k2 Key
		for i := range k1 {
			k1[i] = byte(rng.Uint32())
			k2[i] = byte(rng.Uint32())
		}
		if k1 == k2 {
			return true
		}
		msg := []byte("identical message")
		return Sum(k1, msg) != Sum(k2, msg)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism: Sum is a pure function.
func TestDeterminism(t *testing.T) {
	prop := func(key [16]byte, msg []byte) bool {
		c := New(key)
		return c.Sum(msg) == c.Sum(msg)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSequentialReuse: repeated Sum calls on one instance are
// independent — the struct-resident chaining scratch is fully reset per
// call, so interleaving messages cannot contaminate tags.
func TestSequentialReuse(t *testing.T) {
	var key Key
	c := New(key)
	a := []byte("first message")
	b := []byte("a second, longer message spanning multiple AES blocks")
	wantA, wantB := c.Sum(a), c.Sum(b)
	for i := 0; i < 4; i++ {
		if got := c.Sum(a); got != wantA {
			t.Fatal("reused Sum produced a different tag for a")
		}
		if got := c.Sum(b); got != wantB {
			t.Fatal("reused Sum produced a different tag for b")
		}
	}
}

// TestSumZeroAlloc guards the simulator's dominant per-packet MAC path:
// Sum must not allocate. (The scratch lives on the struct because stack
// buffers passed through the cipher.Block interface escape.)
func TestSumZeroAlloc(t *testing.T) {
	var key Key
	c := New(key)
	msg := make([]byte, 24)
	if avg := testing.AllocsPerRun(100, func() { _ = c.Sum(msg) }); avg != 0 {
		t.Fatalf("CMAC.Sum allocates %.2f objects per call, want 0", avg)
	}
}

func BenchmarkCMAC16B(b *testing.B) { benchCMAC(b, 16) }
func BenchmarkCMAC64B(b *testing.B) { benchCMAC(b, 64) }

func benchCMAC(b *testing.B, n int) {
	var key Key
	c := New(key)
	msg := make([]byte, n)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Sum(msg)
	}
}

// TestCloneIndependence: a clone computes identical tags, and
// interleaved use of the original and the clone never cross-contaminates
// — they share only the immutable AES block and subkeys, not the
// chaining scratch.
func TestCloneIndependence(t *testing.T) {
	var key Key
	key[3] = 0x7f
	c := New(key)
	cl := c.Clone()
	a := []byte("validation pipeline message a")
	b := []byte("b")
	if c.Sum(a) != cl.Sum(a) || c.Sum32(b) != cl.Sum32(b) {
		t.Fatal("clone disagrees with its original")
	}
	wantA, wantB := c.Sum(a), c.Sum(b)
	for i := 0; i < 4; i++ {
		if cl.Sum(a) != wantA || c.Sum(a) != wantA {
			t.Fatal("interleaved clone use changed tag for a")
		}
		if c.Sum(b) != wantB || cl.Sum(b) != wantB {
			t.Fatal("interleaved clone use changed tag for b")
		}
	}
}

// TestClonesConcurrent: one clone per goroutine over a shared parent is
// the pipeline's concurrency contract; run it under -race.
func TestClonesConcurrent(t *testing.T) {
	var key Key
	key[0] = 9
	parent := New(key)
	msg := []byte("shared message for all workers")
	want := parent.Sum(msg)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		cl := parent.Clone()
		go func() {
			for i := 0; i < 500; i++ {
				if cl.Sum(msg) != want {
					done <- errGoroutine
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errGoroutine = errors.New("clone tag diverged under concurrency")

// TestVerifyBatch32 checks the batch verify against per-message Sum32
// and counts matches, with corrupted tags rejected.
func TestVerifyBatch32(t *testing.T) {
	var key Key
	key[15] = 0xa5
	c := New(key)
	msgs := make([][]byte, 10)
	tags := make([][4]byte, 10)
	for i := range msgs {
		msgs[i] = []byte{byte(i), byte(i * 3), byte(i * 7)}
		tags[i] = c.Sum32(msgs[i])
	}
	// Corrupt two tags.
	tags[2][0] ^= 1
	tags[7][3] ^= 0x80
	ok := make([]bool, 10)
	if n := c.VerifyBatch32(msgs, tags, ok); n != 8 {
		t.Fatalf("VerifyBatch32 counted %d valid, want 8", n)
	}
	for i, o := range ok {
		want := i != 2 && i != 7
		if o != want {
			t.Fatalf("ok[%d] = %v, want %v", i, o, want)
		}
	}
}

// TestVerifyBatch32ZeroAlloc: the batch path chains through the
// struct-resident scratch like Sum, so it must not allocate either.
func TestVerifyBatch32ZeroAlloc(t *testing.T) {
	var key Key
	c := New(key)
	msgs := [][]byte{make([]byte, 24), make([]byte, 24)}
	tags := [][4]byte{c.Sum32(msgs[0]), c.Sum32(msgs[1])}
	ok := make([]bool, 2)
	if avg := testing.AllocsPerRun(100, func() { c.VerifyBatch32(msgs, tags, ok) }); avg != 0 {
		t.Fatalf("VerifyBatch32 allocates %.2f objects per call, want 0", avg)
	}
}
