package netfence

import (
	"fmt"
	"sort"

	"netfence/internal/attack"
	"netfence/internal/defense"
	"netfence/internal/netsim"
	"netfence/internal/packet"
)

// Mutation is one scheduled control-plane change of a time-varying
// scenario: a link degradation or restoration, an attack toggle or
// re-parameterization, or a deployment-plan change. Mutations are
// declared in Scenario.Timeline (the scripted form) or delivered
// mid-run through Instance.Apply (the serve-mode control endpoint) —
// both take the same code path, applied at a control point where every
// event before the mutation instant has executed and no event at or
// after it has, on the single engine exactly as on every shard count.
// A scripted Timeline is therefore byte-reproducible, and a live
// mutation applied at the same simulated instant reproduces it.
type Mutation struct {
	// At is the simulated instant the mutation takes effect; it must be
	// positive and at most the scenario Duration.
	At Time

	// Exactly one of the following must be set.

	// Link degrades or restores a bottleneck link.
	Link *LinkMutation
	// Attack toggles or re-parameterizes an attack workload.
	Attack *AttackMutation
	// Deploy switches the active deployment plan.
	Deploy *DeployMutation
}

// LinkMutation changes a bottleneck link's capacity and/or propagation
// delay at runtime — the paper's closed-loop premise made testable: the
// policers must re-converge when the congestion they police moves.
type LinkMutation struct {
	// Bottleneck indexes the topology's bottleneck links in declaration
	// order (0 = the first; the dumbbell's only one).
	Bottleneck int
	// RateBps sets the link capacity; 0 keeps the current rate.
	RateBps int64
	// Delay sets the propagation delay; 0 keeps the current delay. On a
	// partitioned run a delay below the partition lookahead on a
	// cut link is rejected — it would break conservative synchronization.
	Delay Time
	// Restore resets rate and delay to their build-time values (applied
	// before any explicit RateBps/Delay in the same mutation).
	Restore bool
}

// AttackAction selects what an AttackMutation does to its controllers.
type AttackAction string

const (
	// AttackStop halts the workload's attack controllers: pacing stops,
	// decision ticks stop, the senders' shims unwrap.
	AttackStop AttackAction = "stop"
	// AttackStart (re)starts the workload's attack controllers.
	AttackStart AttackAction = "start"
	// AttackSetRate overrides the per-sender rate of every strategy
	// decision (RateBps = 0 clears the override).
	AttackSetRate AttackAction = "rate"
)

// AttackMutation toggles or re-parameterizes one AttackSpec workload's
// controllers (on every shard owning its senders).
type AttackMutation struct {
	// Workload indexes the scenario's AttackSpec workloads in
	// declaration order (other workload kinds do not count).
	Workload int
	Action   AttackAction
	// RateBps is the per-sender rate for AttackSetRate.
	RateBps int64
}

// DeployMutation switches the scenario's active deployment plan: source
// ASes joining the plan arm the defense (installing it on first
// participation, drawing the same setup randomness on every shard
// replica), and ASes leaving it disarm — their access routers stop
// policing and their hosts shed the defense shim, so their traffic is
// demoted to the legacy channel exactly like a build-time legacy AS's.
type DeployMutation struct {
	// Deployment is the new plan (DeployFraction, DeployMap, or
	// FullDeployment).
	Deployment Deployment
}

// kindCount returns how many of the mutation's kind slots are set.
func (m Mutation) kindCount() int {
	n := 0
	if m.Link != nil {
		n++
	}
	if m.Attack != nil {
		n++
	}
	if m.Deploy != nil {
		n++
	}
	return n
}

// Kind names the mutation's kind, for diagnostics and cell naming.
func (m Mutation) Kind() string {
	switch {
	case m.Link != nil:
		return "link"
	case m.Attack != nil:
		return "attack"
	case m.Deploy != nil:
		return "deploy"
	}
	return "empty"
}

// Validate checks the mutation's self-contained invariants — everything
// that needs no built topology. Index ranges and the sharded cut-link
// lookahead bound are checked against the built instance by Apply (and
// for a Scenario.Timeline, at Build).
func (m Mutation) Validate() error { return m.validate() }

// validate checks the mutation's self-contained invariants (everything
// that needs no built topology).
func (m Mutation) validate() error {
	if m.kindCount() != 1 {
		return fmt.Errorf("mutation must set exactly one of Link, Attack, Deploy (got %d)", m.kindCount())
	}
	if m.At <= 0 {
		return fmt.Errorf("%s mutation: At must be positive, got %v", m.Kind(), m.At)
	}
	switch {
	case m.Link != nil:
		l := m.Link
		if l.Bottleneck < 0 {
			return fmt.Errorf("link mutation: Bottleneck index %d is negative", l.Bottleneck)
		}
		if l.RateBps < 0 {
			return fmt.Errorf("link mutation: RateBps %d is negative", l.RateBps)
		}
		if l.Delay < 0 {
			return fmt.Errorf("link mutation: Delay %v is negative", l.Delay)
		}
		if !l.Restore && l.RateBps == 0 && l.Delay == 0 {
			return fmt.Errorf("link mutation: no effect (set RateBps, Delay, or Restore)")
		}
	case m.Attack != nil:
		a := m.Attack
		if a.Workload < 0 {
			return fmt.Errorf("attack mutation: Workload index %d is negative", a.Workload)
		}
		switch a.Action {
		case AttackStop, AttackStart:
		case AttackSetRate:
			if a.RateBps < 0 {
				return fmt.Errorf("attack mutation: RateBps %d is negative", a.RateBps)
			}
		default:
			return fmt.Errorf("attack mutation: unknown action %q (stop|start|rate)", a.Action)
		}
	}
	return nil
}

// linkParams records a bottleneck link's build-time rate and delay, the
// Restore target.
type linkParams struct {
	rate  int64
	delay Time
}

// replicaDeploy is one replica's deployment disarm/re-arm state: which
// source ASes ever installed the defense, and the ingress hooks and
// host shims saved while an AS is disarmed.
type replicaDeploy struct {
	installed map[packet.ASID]bool
	ingress   map[*netsim.Node]func(*packet.Packet, *netsim.Link) bool
	shims     map[*netsim.Node]netsim.Shim
}

func newReplicaDeploy() *replicaDeploy {
	return &replicaDeploy{
		installed: map[packet.ASID]bool{},
		ingress:   map[*netsim.Node]func(*packet.Packet, *netsim.Link) bool{},
		shims:     map[*netsim.Node]netsim.Shim{},
	}
}

// primeControl prepares the built instance for timeline and live
// mutations: it records every bottleneck's build-time parameters,
// compiles the initial deployment plan into per-replica arm state, and
// validates the scenario Timeline against the built topology. Build
// calls it on every instance, so serve-mode jobs can mutate scenarios
// that declared no Timeline at all.
func (in *Instance) primeControl() error {
	env := in.env
	for _, l := range env.bottlenecks {
		env.linkOrig = append(env.linkOrig, linkParams{rate: l.Rate, delay: l.Delay})
	}
	plan, _, err := in.Scenario.Deployment.plan(env.graph.SourceASes())
	if err != nil {
		return err
	}
	env.plan = plan
	env.deployCtl = make([]*replicaDeploy, in.replicaCount())
	for r := range env.deployCtl {
		st := newReplicaDeploy()
		for _, as := range env.graph.SourceASes() {
			if plan.Participates(as) {
				st.installed[as] = true
			}
		}
		env.deployCtl[r] = st
	}
	// The timeline applies in instant order; within an instant, in
	// declaration order (stable sort). The scenario's slice is shared
	// with the caller (and across sweep cells), so sort a copy.
	if len(in.Scenario.Timeline) > 0 {
		tl := make([]Mutation, len(in.Scenario.Timeline))
		copy(tl, in.Scenario.Timeline)
		sort.SliceStable(tl, func(i, j int) bool { return tl[i].At < tl[j].At })
		for i := range tl {
			if err := in.checkMutation(tl[i]); err != nil {
				return fmt.Errorf("Timeline[%d]: %w", i, err)
			}
		}
		in.timeline = tl
	}
	return nil
}

// replicaCount returns the number of network replicas (1 on the single
// engine).
func (in *Instance) replicaCount() int {
	if sh := in.env.sh; sh != nil {
		return len(sh.replicas)
	}
	return 1
}

// replica returns replica r's built topology (the only one on the
// single engine).
func (in *Instance) replica(r int) *builtTopo {
	if sh := in.env.sh; sh != nil {
		return sh.replicas[r]
	}
	return in.env.builtTopo
}

// replicaSystem returns replica r's defense system.
func (in *Instance) replicaSystem(r int) defense.System {
	if sh := in.env.sh; sh != nil {
		return sh.systems[r]
	}
	return in.env.system
}

// Timeline returns the scenario's validated timeline, sorted by
// instant — the schedule a segmented executor (Instance.Run, or the
// serve-mode job runner) applies via Advance and Apply.
func (in *Instance) Timeline() []Mutation {
	out := make([]Mutation, len(in.timeline))
	copy(out, in.timeline)
	return out
}

// Now returns the instant the instance has simulated up to.
func (in *Instance) Now() Time {
	if sh := in.env.sh; sh != nil {
		return sh.coord.Now()
	}
	return in.Eng.Now()
}

// Advance drives the simulation to exactly t without executing the
// events scheduled at t itself — the control-point step of a segmented
// run. After it returns, Apply inserts mutations after every pre-t
// effect and before every time-t event, on the single engine exactly
// as on every shard count. t clamps to [Now, Duration]; advancing a
// finished instance is a no-op.
func (in *Instance) Advance(t Time) {
	if in.finished {
		return
	}
	if t > in.Scenario.Duration {
		t = in.Scenario.Duration
	}
	if t <= in.Now() {
		return
	}
	if sh := in.env.sh; sh != nil {
		sh.coord.RunBefore(t)
	} else {
		in.Eng.RunBefore(t)
	}
}

// Apply applies mutations at the current instant (normally a control
// point established by Advance). Scripted timelines and the serve
// mode's live control endpoint both land here, so the two are the same
// code path. Every mutation is validated before any is applied.
func (in *Instance) Apply(ms ...Mutation) error {
	if in.finished {
		return fmt.Errorf("netfence: Apply on a finished instance")
	}
	for i := range ms {
		if err := in.checkMutation(ms[i]); err != nil {
			return fmt.Errorf("mutation %d: %w", i, err)
		}
	}
	in.applyNow(ms)
	return nil
}

// checkMutation validates a mutation against the built topology:
// structural invariants, index ranges, and the sharded cut-link
// lookahead bound.
func (in *Instance) checkMutation(m Mutation) error {
	if err := m.validate(); err != nil {
		return err
	}
	if m.At > in.Scenario.Duration {
		return fmt.Errorf("%s mutation: At %v is beyond the scenario Duration %v", m.Kind(), m.At, in.Scenario.Duration)
	}
	env := in.env
	switch {
	case m.Link != nil:
		if m.Link.Bottleneck >= len(env.bottlenecks) {
			return fmt.Errorf("link mutation: Bottleneck index %d out of range (topology tags %d)", m.Link.Bottleneck, len(env.bottlenecks))
		}
		if sh := env.sh; sh != nil && m.Link.Delay > 0 && m.Link.Delay < sh.part.Lookahead {
			l := env.bottlenecks[m.Link.Bottleneck]
			if sh.shardOf(l.From.ID) != sh.shardOf(l.To.ID) {
				return fmt.Errorf("link mutation: Delay %v below the partition lookahead %v on cut bottleneck %d breaks conservative synchronization",
					m.Link.Delay, sh.part.Lookahead, m.Link.Bottleneck)
			}
		}
	case m.Attack != nil:
		if m.Attack.Workload >= len(env.attackCtrls) {
			return fmt.Errorf("attack mutation: Workload index %d out of range (scenario declares %d AttackSpec workloads)", m.Attack.Workload, len(env.attackCtrls))
		}
	case m.Deploy != nil:
		if _, _, err := m.Deploy.Deployment.plan(env.graph.SourceASes()); err != nil {
			return fmt.Errorf("deploy mutation: %w", err)
		}
	}
	return nil
}

// applyNow applies validated mutations at the current instant. The
// pedigrees are reset first: mutation application runs outside any
// event callback, and events it schedules must carry zero ancestry on
// every engine — a sharded engine would otherwise stamp whatever event
// it happened to execute last, which differs per shard count.
func (in *Instance) applyNow(ms []Mutation) {
	for _, e := range in.Engines {
		e.ResetPedigree()
	}
	for _, m := range ms {
		switch {
		case m.Link != nil:
			in.applyLink(m.Link)
		case m.Attack != nil:
			in.applyAttack(m.Attack)
		case m.Deploy != nil:
			in.applyDeploy(m.Deploy)
		}
	}
}

// applyLink changes the target bottleneck on every replica (replicas
// must stay structurally identical; only the owner's copy carries
// traffic, but a later repartition-free comparison depends on all of
// them agreeing).
func (in *Instance) applyLink(lm *LinkMutation) {
	env := in.env
	l0 := env.bottlenecks[lm.Bottleneck]
	rate, delay := int64(0), Time(0)
	if lm.Restore {
		orig := env.linkOrig[lm.Bottleneck]
		rate, delay = orig.rate, orig.delay
	}
	if lm.RateBps > 0 {
		rate = lm.RateBps
	}
	if lm.Delay > 0 {
		delay = lm.Delay
	}
	for r := 0; r < in.replicaCount(); r++ {
		l := in.replica(r).net.Links[l0.Index]
		if rate > 0 {
			l.SetRate(rate)
		}
		if delay > 0 {
			l.SetDelay(delay)
		}
	}
}

// applyAttack drives the workload's controllers — one per shard owning
// attack senders; non-owning replicas have none and schedule nothing.
func (in *Instance) applyAttack(am *AttackMutation) {
	for _, c := range in.env.attackCtrls[am.Workload] {
		switch am.Action {
		case AttackStop:
			c.Stop()
		case AttackStart:
			c.Start()
		case AttackSetRate:
			c.SetRate(am.RateBps)
		}
	}
}

// applyDeploy diffs the new plan against the active one and arms or
// disarms each changed source AS — on EVERY replica, so installation's
// setup randomness (keyring draws, rotation timers) stays
// position-aligned across shard engines, the replicated-control-plane
// invariant of the sharded executor.
func (in *Instance) applyDeploy(dm *DeployMutation) {
	env := in.env
	srcASes := env.graph.SourceASes()
	newPlan, frac, err := dm.Deployment.plan(srcASes)
	if err != nil {
		// checkMutation validated the plan; an error here is a bug.
		panic(fmt.Sprintf("netfence: deploy mutation plan failed after validation: %v", err))
	}
	type change struct {
		as     packet.ASID
		enable bool
	}
	var changes []change
	for _, as := range srcASes {
		was, is := env.plan.Participates(as), newPlan.Participates(as)
		if was != is {
			changes = append(changes, change{as: as, enable: is})
		}
	}
	for r := 0; r < in.replicaCount(); r++ {
		bt := in.replica(r)
		sys := in.replicaSystem(r)
		st := env.deployCtl[r]
		for _, ch := range changes {
			if ch.enable {
				st.arm(bt.graph, sys, env.deny, ch.as)
			} else {
				st.disarm(bt.graph, ch.as)
			}
		}
	}
	env.plan = newPlan
	env.deployed = frac
}

// arm (re)enables the defense on one source AS: first participation
// installs through the system's own ProtectAccess/AttachHost paths
// (the same calls Graph.Deploy makes at build time); a re-join after a
// disarm restores the saved ingress hooks and shims instead, so
// long-lived per-router state (keyrings, rotation tickers) is not
// duplicated.
func (st *replicaDeploy) arm(g *Graph, sys defense.System, deny defense.Policy, as packet.ASID) {
	fresh := !st.installed[as]
	groups := g.Groups()
	for gi := range groups {
		grp := &groups[gi]
		for _, r := range grp.Access {
			if r.AS != as {
				continue
			}
			if fresh {
				sys.ProtectAccess(r)
			} else if saved, ok := st.ingress[r]; ok {
				r.Ingress = saved
				delete(st.ingress, r)
			}
		}
		for _, h := range grp.Senders {
			if h.AS == as {
				st.armHost(sys, h, defense.Policy{}, fresh)
			}
		}
		if grp.Victim != nil && grp.Victim.AS == as {
			st.armHost(sys, grp.Victim, deny, fresh)
		}
		for _, c := range grp.Colluders {
			if c.AS == as {
				st.armHost(sys, c, defense.Policy{}, fresh)
			}
		}
	}
	st.installed[as] = true
}

// armHost installs or restores a host's defense shim, preserving a live
// attack wrapper: the attack Sender stays outermost (crafted packets
// keep bypassing the honest stack) and the defense shim splices in
// underneath it.
func (st *replicaDeploy) armHost(sys defense.System, h *netsim.Node, pol defense.Policy, fresh bool) {
	wrapper, _ := h.Host.Shim.(*attack.Sender)
	if fresh {
		sys.AttachHost(h, pol)
		if wrapper != nil {
			wrapper.SetInner(h.Host.Shim)
			h.Host.Shim = wrapper
		}
		return
	}
	saved, ok := st.shims[h]
	if !ok {
		return
	}
	delete(st.shims, h)
	if wrapper != nil {
		wrapper.SetInner(saved)
	} else {
		h.Host.Shim = saved
	}
}

// disarm turns one source AS legacy: access routers stop policing
// (their ingress hooks are saved and cleared; rotation timers keep
// ticking so the replicated random streams stay aligned) and hosts
// shed the defense shim (saved underneath any live attack wrapper).
func (st *replicaDeploy) disarm(g *Graph, as packet.ASID) {
	groups := g.Groups()
	for gi := range groups {
		grp := &groups[gi]
		for _, r := range grp.Access {
			if r.AS != as {
				continue
			}
			if _, ok := st.ingress[r]; !ok {
				st.ingress[r] = r.Ingress
			}
			r.Ingress = nil
		}
		for _, h := range grp.Senders {
			if h.AS == as {
				st.disarmHost(h)
			}
		}
		if grp.Victim != nil && grp.Victim.AS == as {
			st.disarmHost(grp.Victim)
		}
		for _, c := range grp.Colluders {
			if c.AS == as {
				st.disarmHost(c)
			}
		}
	}
}

// disarmHost removes a host's defense shim, keeping a live attack
// wrapper in place (its crafted traffic now takes the legacy path, the
// legacy-flood posture).
func (st *replicaDeploy) disarmHost(h *netsim.Node) {
	if wrapper, ok := h.Host.Shim.(*attack.Sender); ok {
		if _, saved := st.shims[h]; !saved {
			st.shims[h] = wrapper.Inner()
		}
		wrapper.SetInner(nil)
		return
	}
	if _, saved := st.shims[h]; !saved {
		st.shims[h] = h.Host.Shim
	}
	h.Host.Shim = nil
}

// Finish completes the run: it drives the simulation to Duration
// (executing the final instant's batch), stops the workloads, tears
// down the shard workers, and collects every probe into the Result.
// Repeat calls return a freshly collected Result without re-driving.
func (in *Instance) Finish() *Result {
	if !in.finished {
		in.finished = true
		if sh := in.env.sh; sh != nil {
			sh.coord.RunUntil(in.Scenario.Duration)
			sh.coord.Stop()
			sh.stopPipelines()
		} else {
			in.Eng.RunUntil(in.Scenario.Duration)
		}
		for _, st := range in.env.stoppers {
			st.Stop()
		}
	}
	return in.collect()
}

// Stop abandons an unfinished run, tearing down the shard workers
// without driving the simulation further (serve-mode job cancellation).
// The instance cannot be advanced afterwards; collected state (the
// timeseries so far) remains readable.
func (in *Instance) Stop() {
	if in.finished {
		return
	}
	in.finished = true
	if sh := in.env.sh; sh != nil {
		sh.coord.Stop()
		sh.stopPipelines()
	}
}

// Series returns the timeseries samples collected so far by a
// TimeseriesProbe (nil without one): the serve mode's streaming source.
// On a sharded run the per-shard buckets merge consistently at any
// control point — every shard has ticked the same instants once the
// coordinator reaches a barrier.
func (in *Instance) Series() []Sample {
	return in.env.mergedSeries()
}
