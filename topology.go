package netfence

import (
	"fmt"

	"netfence/internal/netsim"
	"netfence/internal/packet"
	"netfence/internal/sim"
	"netfence/internal/topo"
)

// TopologySpec declares a scenario's network. The in-tree specs are
// DumbbellSpec, ParkingLotSpec, StarSpec and RandomASSpec; Topology
// resolves any topology registered by name (see RegisterTopology).
type TopologySpec interface {
	buildTopo(eng *sim.Engine) (*builtTopo, error)
	// withPopulation returns a copy at a different sender population —
	// the Sweep runner's population axis.
	withPopulation(n int) TopologySpec
	population() int
	// topoName is the registry-style name recorded in results.
	topoName() string
	// groupSizes reports the per-group sender capacity the spec will
	// build, for fail-fast workload validation; nil means unknown until
	// build time (registry-resolved specs).
	groupSizes() []int
}

// RegisterTopology makes a third-party topology resolvable by name in
// scenarios and sweeps. The builder returns a role-tagged *Graph; the
// in-tree topologies ("dumbbell", "parkinglot", "star", "random-as")
// are pre-registered.
func RegisterTopology(name string, b TopologyBuilder) { topo.Register(name, b) }

// Topologies returns the sorted names of every registered topology.
func Topologies() []string { return topo.Names() }

// TopologyBuilder constructs a role-tagged topology graph.
type TopologyBuilder = topo.Builder

// TopologyBuildOptions carries optional construction parameters to a
// TopologyBuilder.
type TopologyBuildOptions = topo.BuildOptions

// Graph is the open topology builder: declare routers, access routers,
// hosts and links, tagged with evaluation roles (sender, victim,
// colluder, bottleneck), and the scenario and deployment machinery runs
// on it without knowing the wiring.
type Graph = topo.Graph

// GraphGroup is one sender group of a Graph.
type GraphGroup = topo.GraphGroup

// NewGraph returns an empty topology graph driven by eng.
func NewGraph(eng *Engine) *Graph { return topo.NewGraph(eng) }

// Topology resolves a registered topology by name with its default
// configuration. Set Population (or sweep over Populations) to resize
// it; set Config to the builder's config type for full control:
//
//	sc.Topology = netfence.Topology("random-as")
//	sc.Topology = netfence.RegisteredTopology{Name: "star", Population: 50}
func Topology(name string) TopologySpec { return RegisteredTopology{Name: name} }

// RegisteredTopology is the TopologySpec resolving a registered
// topology by name at build time.
type RegisteredTopology struct {
	// Name is the registry name ("dumbbell", "parkinglot", "star",
	// "random-as", or any third-party registration).
	Name string
	// Population overrides the builder's default sender population.
	Population int
	// Config optionally configures the builder (its registered config
	// type, e.g. topo.StarConfig for "star"); nil selects defaults.
	Config any
}

func (s RegisteredTopology) population() int { return s.Population }

func (s RegisteredTopology) withPopulation(n int) TopologySpec {
	s.Population = n
	return s
}

func (s RegisteredTopology) topoName() string { return topo.Canonical(s.Name) }

func (s RegisteredTopology) groupSizes() []int { return nil }

func (s RegisteredTopology) buildTopo(eng *sim.Engine) (*builtTopo, error) {
	g, err := topo.Build(s.Name, eng, topo.BuildOptions{
		Population: s.Population,
		Config:     s.Config,
	})
	if err != nil {
		return nil, err
	}
	return builtFromGraph(topo.Canonical(s.Name), g), nil
}

// DumbbellSpec declares the §6.3.1 dumbbell: sender ASes through one
// bottleneck to a victim AS, plus optional colluder ASes.
type DumbbellSpec struct {
	// Senders is the total sender-host population.
	Senders int
	// BottleneckBps is the bottleneck capacity.
	BottleneckBps int64
	// ColluderASes adds right-side ASes with one colluder host each.
	ColluderASes int
	// SrcASes overrides the source-AS count (0 = min(10, Senders)).
	SrcASes int
	// EdgeBps overrides the non-bottleneck capacity (0 = 10 Gbps).
	EdgeBps int64
	// Delay overrides the per-link propagation delay (0 = 10 ms).
	Delay Time
}

func (s DumbbellSpec) population() int { return s.Senders }

func (s DumbbellSpec) withPopulation(n int) TopologySpec {
	s.Senders = n
	return s
}

func (s DumbbellSpec) topoName() string { return "dumbbell" }

func (s DumbbellSpec) groupSizes() []int { return []int{s.Senders} }

func (s DumbbellSpec) buildTopo(eng *sim.Engine) (*builtTopo, error) {
	if s.Senders <= 0 {
		return nil, fmt.Errorf("DumbbellSpec: Senders must be positive")
	}
	if s.BottleneckBps <= 0 {
		return nil, fmt.Errorf("DumbbellSpec: BottleneckBps must be positive")
	}
	cfg := topo.DefaultDumbbell(s.Senders, s.BottleneckBps)
	cfg.ColluderASes = s.ColluderASes
	if s.SrcASes > 0 {
		if s.Senders%s.SrcASes != 0 {
			return nil, fmt.Errorf("DumbbellSpec: %d senders do not split evenly over %d ASes", s.Senders, s.SrcASes)
		}
		cfg.SrcASes = s.SrcASes
		cfg.HostsPerAS = s.Senders / s.SrcASes
	} else if cfg.SrcASes*cfg.HostsPerAS != s.Senders {
		// DefaultDumbbell truncates to a multiple of its AS count; the
		// declared population is a contract here, so fall back to the
		// largest AS count that divides it exactly.
		cfg.SrcASes, cfg.HostsPerAS = topo.SplitEvenly(s.Senders, cfg.SrcASes)
	}
	if s.EdgeBps > 0 {
		cfg.EdgeBps = s.EdgeBps
	}
	if s.Delay > 0 {
		cfg.Delay = s.Delay
	}
	d := topo.NewDumbbell(eng, cfg)
	bt := builtFromGraph("dumbbell", d.G)
	bt.dumbbell = d
	return bt, nil
}

// ParkingLotSpec declares the §6.3.2 multi-bottleneck parking lot: a
// chain of two bottlenecks with three sender groups. Group 0 crosses
// both, group 1 only the second, group 2 only the first; each group has
// its own victim and colluders.
type ParkingLotSpec struct {
	// SendersPerGroup is the host population of each group.
	SendersPerGroup int
	// L1Bps and L2Bps are the two bottleneck capacities.
	L1Bps, L2Bps int64
	// ASesPerGroup splits each group over this many ASes (0 = 5, clamped
	// to the group population).
	ASesPerGroup int
	// ColluderASesPerGroup overrides the colluder count (0 = 3).
	ColluderASesPerGroup int
	Delay                Time

	// declaredPopulation records a Sweep population-axis request; the
	// declared population is a contract, so buildTopo rejects values
	// that do not split into three equal groups.
	declaredPopulation int
}

func (s ParkingLotSpec) population() int {
	if s.declaredPopulation > 0 {
		return s.declaredPopulation
	}
	return 3 * s.SendersPerGroup
}

func (s ParkingLotSpec) withPopulation(n int) TopologySpec {
	s.SendersPerGroup = n / 3
	s.declaredPopulation = n
	return s
}

func (s ParkingLotSpec) topoName() string { return "parkinglot" }

func (s ParkingLotSpec) groupSizes() []int {
	return []int{s.SendersPerGroup, s.SendersPerGroup, s.SendersPerGroup}
}

func (s ParkingLotSpec) buildTopo(eng *sim.Engine) (*builtTopo, error) {
	if s.declaredPopulation > 0 && s.declaredPopulation != 3*s.SendersPerGroup {
		return nil, fmt.Errorf("ParkingLotSpec: population %d does not split into 3 equal groups", s.declaredPopulation)
	}
	if s.SendersPerGroup <= 0 {
		return nil, fmt.Errorf("ParkingLotSpec: SendersPerGroup must be positive")
	}
	if s.L1Bps <= 0 || s.L2Bps <= 0 {
		return nil, fmt.Errorf("ParkingLotSpec: L1Bps and L2Bps must be positive")
	}
	cfg := topo.DefaultParkingLot(s.SendersPerGroup, s.L1Bps, s.L2Bps)
	if s.ASesPerGroup > 0 {
		if s.SendersPerGroup%s.ASesPerGroup != 0 {
			return nil, fmt.Errorf("ParkingLotSpec: %d senders per group do not split evenly over %d ASes", s.SendersPerGroup, s.ASesPerGroup)
		}
		cfg.ASesPerGroup = s.ASesPerGroup
	} else {
		// The declared group population is a contract: pick the largest
		// AS count that divides it exactly.
		cfg.ASesPerGroup, _ = topo.SplitEvenly(s.SendersPerGroup, cfg.ASesPerGroup)
	}
	if s.ColluderASesPerGroup > 0 {
		cfg.ColluderASesPerGroup = s.ColluderASesPerGroup
	}
	if s.Delay > 0 {
		cfg.Delay = s.Delay
	}
	pl := topo.NewParkingLot(eng, cfg)
	bt := builtFromGraph("parkinglot", pl.G)
	bt.parkingLot = pl
	return bt, nil
}

// StarSpec declares the single-AS hotspot: every sender shares one
// source AS behind one access router, whose uplink to the victim is the
// bottleneck — the stress case for a single access router policing the
// whole population.
type StarSpec struct {
	// Senders is the sender-host population (all in one AS).
	Senders int
	// BottleneckBps is the access-uplink capacity.
	BottleneckBps int64
	// ColluderASes adds destination-side ASes with one colluder host
	// each.
	ColluderASes int
	// EdgeBps overrides the non-bottleneck capacity (0 = 10 Gbps).
	EdgeBps int64
	// Delay overrides the per-link propagation delay (0 = 10 ms).
	Delay Time
}

func (s StarSpec) population() int { return s.Senders }

func (s StarSpec) withPopulation(n int) TopologySpec {
	s.Senders = n
	return s
}

func (s StarSpec) topoName() string { return "star" }

func (s StarSpec) groupSizes() []int { return []int{s.Senders} }

func (s StarSpec) buildTopo(eng *sim.Engine) (*builtTopo, error) {
	if s.Senders <= 0 {
		return nil, fmt.Errorf("StarSpec: Senders must be positive")
	}
	if s.BottleneckBps <= 0 {
		return nil, fmt.Errorf("StarSpec: BottleneckBps must be positive")
	}
	cfg := topo.DefaultStar(s.Senders, s.BottleneckBps)
	cfg.ColluderASes = s.ColluderASes
	if s.EdgeBps > 0 {
		cfg.EdgeBps = s.EdgeBps
	}
	if s.Delay > 0 {
		cfg.Delay = s.Delay
	}
	return builtFromGraph("star", topo.NewStar(eng, cfg).G), nil
}

// RandomASSpec declares a seeded random AS-level graph: a random
// connected transit core (one AS per router), source ASes attached to
// random core routers, and a dumbbell-style bottleneck exit toward the
// victim and colluder ASes. The wiring is drawn from GraphSeed alone,
// so a scenario Seed sweep varies traffic over a fixed random graph.
type RandomASSpec struct {
	// Senders is the total sender population, split over SrcASes.
	Senders int
	// BottleneckBps is the exit-link capacity.
	BottleneckBps int64
	// SrcASes is the source-AS count (0 = min(10, Senders)).
	SrcASes int
	// TransitASes is the random-core size (0 = 4).
	TransitASes int
	// ExtraLinks adds random extra core links beyond the spanning tree.
	ExtraLinks int
	// ColluderASes adds destination-side ASes with one colluder host
	// each.
	ColluderASes int
	// GraphSeed seeds the structure RNG (0 = 1).
	GraphSeed uint64
	// EdgeBps overrides the non-bottleneck capacity (0 = 10 Gbps).
	EdgeBps int64
	// Delay overrides the per-link propagation delay (0 = 10 ms).
	Delay Time
}

func (s RandomASSpec) population() int { return s.Senders }

func (s RandomASSpec) withPopulation(n int) TopologySpec {
	s.Senders = n
	return s
}

func (s RandomASSpec) topoName() string { return "random-as" }

func (s RandomASSpec) groupSizes() []int { return []int{s.Senders} }

func (s RandomASSpec) buildTopo(eng *sim.Engine) (*builtTopo, error) {
	if s.BottleneckBps <= 0 {
		return nil, fmt.Errorf("RandomASSpec: BottleneckBps must be positive")
	}
	cfg := topo.DefaultRandomAS(s.Senders, s.BottleneckBps)
	cfg.SrcASes = s.SrcASes
	cfg.TransitASes = s.TransitASes
	cfg.ExtraLinks = s.ExtraLinks
	cfg.ColluderASes = s.ColluderASes
	if s.GraphSeed != 0 {
		cfg.GraphSeed = s.GraphSeed
	}
	if s.EdgeBps > 0 {
		cfg.EdgeBps = s.EdgeBps
	}
	if s.Delay > 0 {
		cfg.Delay = s.Delay
	}
	r, err := topo.NewRandomAS(eng, cfg)
	if err != nil {
		return nil, fmt.Errorf("RandomASSpec: %w", err)
	}
	return builtFromGraph("random-as", r.G), nil
}

// Deployment plans which source ASes run a scenario's defense — the
// paper's partial/incremental-deployment axis. The zero value is full
// deployment. Source ASes are the ASes containing sender hosts;
// destination-side ASes (victim, colluders) always deploy. A legacy
// (non-participating) AS keeps forwarding traffic, but its access
// router does not police and its hosts run no shim, so its packets
// carry no congestion policing feedback and NetFence bottlenecks demote
// them to the best-effort legacy channel.
type Deployment struct {
	fraction     float64
	hasFraction  bool
	participants map[int]bool
}

// FullDeployment is the zero value: every AS deploys.
func FullDeployment() Deployment { return Deployment{} }

// DeployFraction deploys the defense on round(f·n) of the n source
// ASes, chosen at evenly spaced AS indices (deterministic, no RNG).
// f = 1 is full deployment, f = 0 leaves every source AS legacy.
func DeployFraction(f float64) Deployment {
	return Deployment{fraction: f, hasFraction: true}
}

// DeployMap gives explicit per-AS participation: source-AS index (in
// topology declaration order) to participation. ASes absent from the
// map are legacy.
func DeployMap(participants map[int]bool) Deployment {
	m := make(map[int]bool, len(participants))
	for k, v := range participants {
		m[k] = v
	}
	return Deployment{participants: m}
}

// plan compiles the deployment onto a built topology's source ASes,
// returning the per-AS plan and the effective deployed fraction.
func (d Deployment) plan(srcASes []packet.ASID) (topo.Plan, float64, error) {
	switch {
	case d.participants != nil:
		legacy := map[packet.ASID]bool{}
		for idx := range d.participants {
			if idx < 0 || idx >= len(srcASes) {
				return topo.Plan{}, 0, fmt.Errorf("Deployment: source-AS index %d out of range (topology has %d source ASes)", idx, len(srcASes))
			}
		}
		for i, as := range srcASes {
			if !d.participants[i] {
				legacy[as] = true
			}
		}
		p := topo.Plan{Legacy: legacy}
		return p, p.Fraction(srcASes), nil
	case d.hasFraction:
		if d.fraction < 0 || d.fraction > 1 {
			return topo.Plan{}, 0, fmt.Errorf("Deployment: fraction %v outside [0, 1]", d.fraction)
		}
		p := topo.PlanFraction(srcASes, d.fraction)
		return p, p.Fraction(srcASes), nil
	default:
		return topo.Plan{}, 1, nil
	}
}

// builtTopo is a constructed topology reduced to the role view the
// workloads and probes operate on.
type builtTopo struct {
	name        string
	net         *netsim.Network
	graph       *topo.Graph
	dumbbell    *topo.Dumbbell
	parkingLot  *topo.ParkingLot
	bottlenecks []*netsim.Link
	groups      []roleGroup
}

// builtFromGraph reduces a role-tagged graph to the scenario role view.
func builtFromGraph(name string, g *topo.Graph) *builtTopo {
	bt := &builtTopo{
		name:        name,
		net:         g.Net,
		graph:       g,
		bottlenecks: g.Bottlenecks(),
	}
	for _, grp := range g.Groups() {
		bt.groups = append(bt.groups, roleGroup{
			senders:   grp.Senders,
			victim:    grp.Victim,
			colluders: grp.Colluders,
		})
	}
	return bt
}

// senderCount is the topology's actual total sender population,
// counting each fleet attachment point as the modeled senders it
// stands for (SenderWeight; 1 for ordinary hosts).
func (bt *builtTopo) senderCount() int {
	n := 0
	for i := range bt.groups {
		for _, s := range bt.groups[i].senders {
			n += s.SenderWeight()
		}
	}
	return n
}

// roleGroup is one sender group with its destinations.
type roleGroup struct {
	senders   []*netsim.Node
	victim    *netsim.Node
	colluders []*netsim.Node
}

func (g *roleGroup) sender(idx int, kind string) (*netsim.Node, error) {
	if idx < 0 || idx >= len(g.senders) {
		return nil, fmt.Errorf("%s: sender index %d out of range (topology has %d)", kind, idx, len(g.senders))
	}
	return g.senders[idx], nil
}

// victimHost returns the group's victim, or a build-time error for
// custom graphs that declared none.
func (g *roleGroup) victimHost(kind string) (*netsim.Node, error) {
	if g.victim == nil {
		return nil, fmt.Errorf("%s: topology group has no victim host (declare one with Graph.Victim)", kind)
	}
	return g.victim, nil
}
