package netfence

import (
	"fmt"
	"runtime"

	"netfence/internal/core"
	"netfence/internal/defense"
	"netfence/internal/metrics"
	"netfence/internal/netsim"
	"netfence/internal/obs"
	"netfence/internal/packet"
	"netfence/internal/sim"
	"netfence/internal/topo"
)

// AutoShards, assigned to Scenario.Shards, requests one shard per
// available CPU (runtime.GOMAXPROCS), clamped to the topology's
// partitionable AS count. Unlike an explicit shard count — which fails
// fast when it exceeds the AS count — the auto request is a capacity
// hint and clamps by design.
const AutoShards = -1

// PipelineMode controls the sharded validation pipeline: the stage that
// precomputes MAC verdicts for cut-link handoff batches on a worker
// pool during the drain phase, so the serialized execute phase consumes
// cached verdicts instead of running CMAC inline (see
// core.Pipeline). Results are byte-identical in every mode at every
// shard count — the mode trades wall-clock speed, never outcomes.
type PipelineMode int

const (
	// PipelineAuto (the zero value) enables the pipeline exactly when it
	// can pay: a sharded run of the NetFence system with Passport trailer
	// verification active at core links. Everything else runs without it.
	PipelineAuto PipelineMode = iota
	// PipelineOn forces the pipeline on every sharded NetFence run.
	PipelineOn
	// PipelineOff disables the pipeline unconditionally.
	PipelineOff
)

// ParsePipelineMode parses "auto", "on" or "off" (the CLI and server
// spellings).
func ParsePipelineMode(s string) (PipelineMode, error) {
	switch s {
	case "", "auto":
		return PipelineAuto, nil
	case "on":
		return PipelineOn, nil
	case "off":
		return PipelineOff, nil
	}
	return PipelineAuto, fmt.Errorf("netfence: unknown pipeline mode %q (auto|on|off)", s)
}

// String returns the CLI spelling of the mode.
func (m PipelineMode) String() string {
	switch m {
	case PipelineOn:
		return "on"
	case PipelineOff:
		return "off"
	}
	return "auto"
}

// Partitioning errors, re-exported so callers can errors.Is against
// them without importing internal packages.
var (
	// ErrTooManyShards: an explicit Scenario.Shards exceeded the
	// topology's AS count (ASes are atomic partition units).
	ErrTooManyShards = topo.ErrTooManyShards
	// ErrSplitIntraAS: a partition would cut an intra-AS link.
	ErrSplitIntraAS = topo.ErrSplitIntraAS
	// ErrNoLookahead: a cut link has non-positive delay, so no
	// conservative synchronization window exists.
	ErrNoLookahead = topo.ErrNoLookahead
)

// Sharding describes a partitioned run, for introspection and tooling.
type Sharding struct {
	// Shards is the resolved shard count.
	Shards int
	// CutLinks is the number of inter-shard links.
	CutLinks int
	// Lookahead is the synchronization window (minimum cut-link delay).
	Lookahead Time
	// ASesPerShard lists each shard's AS count.
	ASesPerShard []int
	// Pipeline reports whether the sharded validation pipeline is active
	// on this run (Scenario.Pipeline resolved against the built system).
	Pipeline bool

	coord *sim.Coordinator
}

// Windows returns the number of synchronization rounds executed so far.
func (sh *Sharding) Windows() uint64 { return sh.coord.Windows() }

// SerializedNanos returns each shard's accumulated execute-round
// wall-clock nanoseconds — the serialized portion of the parallel run.
// Call it at a control point or after the run; with the validation
// pipeline active, the bottleneck shard's slot shrinks by the CMAC work
// moved into the drain phase.
func (sh *Sharding) SerializedNanos() []int64 { return sh.coord.SerializedNanos() }

// shardState is the executor state of one sharded scenario run: N full
// replicas of the network (identical construction on every shard engine
// keeps node and link IDs aligned, and replays every setup random draw
// so cryptographic state agrees across shards), of which each shard
// "owns" — attaches live traffic to — only its partition's nodes.
// Control-plane machinery (defense deployment, key-rotation timers,
// detection tickers) is deliberately replicated everywhere: it is
// per-AS-scale cheap, and replicated rotation keeps every engine's
// random stream position-aligned with the single-engine run, which is
// what lets the bottleneck shard's RED draw the exact values the single
// engine would have drawn.
type shardState struct {
	part     *topo.Partition
	engines  []*sim.Engine
	replicas []*builtTopo
	systems  []defense.System
	coord    *sim.Coordinator
	inboxes  [][]*netsim.Mailbox
	// pipelines holds each shard's validation pipeline (nil slice when
	// the run resolved to PipelineOff or no shard can use one).
	pipelines []*core.Pipeline
	flowSeq   uint32
	info      *Sharding
}

// pipeline returns shard sh's validation pipeline, nil when inactive.
func (st *shardState) pipeline(sh int) *core.Pipeline {
	if st.pipelines == nil {
		return nil
	}
	return st.pipelines[sh]
}

// stopPipelines tears down every shard's validation workers. Safe to
// call repeatedly and with no pipelines built.
func (st *shardState) stopPipelines() {
	for _, pl := range st.pipelines {
		if pl != nil {
			pl.Stop()
		}
	}
}

// shardOf returns the shard owning a node.
func (st *shardState) shardOf(id packet.NodeID) int {
	return int(st.part.ShardOfNode[id])
}

// node returns shard sh's replica of the node with the given ID.
func (st *shardState) node(sh int, id packet.NodeID) *netsim.Node {
	return st.replicas[sh].net.Nodes[id]
}

// owned returns the owning replica's copy of a replica-0 node.
func (st *shardState) owned(n *netsim.Node) *netsim.Node {
	return st.node(st.shardOf(n.ID), n.ID)
}

// resolveAutoShards clamps the AutoShards request to
// min(GOMAXPROCS, partitionable ASes) for a built graph. Explicit
// counts never pass through here — Build validates them and Partition
// fails fast on excess.
func resolveAutoShards(g *Graph) int {
	n := runtime.GOMAXPROCS(0)
	if m := g.MaxShards(); n > m {
		n = m
	}
	if n < 1 {
		n = 1
	}
	return n
}

// applyFleetWeights stamps aggregate-mode FleetSpec weights onto bt's
// sender nodes. Only specs that will actually aggregate count: exact
// fan-out (explicit or forced by deployment mutations) keeps weight 1.
// Malformed specs are skipped here — attachment reports their errors
// with full context.
func (s *Scenario) applyFleetWeights(bt *builtTopo) {
	fanout := false
	for i := range s.Timeline {
		if s.Timeline[i].Deploy != nil {
			fanout = true
			break
		}
	}
	for _, w := range s.Workloads {
		fs, ok := w.(FleetSpec)
		if !ok || fs.Exact || fanout {
			continue
		}
		if fs.Count <= 0 || len(fs.Senders) == 0 || fs.Count%len(fs.Senders) != 0 {
			continue
		}
		if fs.Group < 0 || fs.Group >= len(bt.groups) {
			continue
		}
		weight := fs.Count / len(fs.Senders)
		grp := &bt.groups[fs.Group]
		for _, idx := range fs.Senders {
			if idx >= 0 && idx < len(grp.senders) {
				grp.senders[idx].Weight = int32(weight)
			}
		}
	}
}

// buildSharded constructs the partitioned form of the scenario:
// per-shard engines and network replicas, mailbox-wired cut links, a
// coordinator, and a scenarioEnv whose role view hands every workload
// the owning replica's nodes so transports land on the right engines.
// The scenario s must already be validated and defaulted by Build.
func (s Scenario) buildSharded(shards int) (*Instance, error) {
	mkReplica := func(i int) (*sim.Engine, *builtTopo, error) {
		eng := sim.New(s.Seed)
		eng.SetShardTag(i)
		eng.EnableKeyStreams(s.Seed)
		bt, err := s.Topology.buildTopo(eng)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		return eng, bt, nil
	}

	eng0, bt0, err := mkReplica(0)
	if err != nil {
		return nil, err
	}
	if shards == AutoShards {
		shards = resolveAutoShards(bt0.graph)
		if shards <= 1 {
			// A topology too small to split runs the exact single-engine
			// path, untagged and unkeyed.
			return s.buildSingle()
		}
	}
	// Stamp aggregate-fleet weights before partitioning: the load
	// balance must count a fleet attachment point as the modeled senders
	// it stands for, not as one host. Workload attachment re-stamps the
	// owning replica's copies later; this pass only informs the split.
	s.applyFleetWeights(bt0)
	part, err := bt0.graph.Partition(shards)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: Shards=%d: %w", s.Name, shards, err)
	}

	st := &shardState{
		part:     part,
		engines:  make([]*sim.Engine, shards),
		replicas: make([]*builtTopo, shards),
		systems:  make([]defense.System, shards),
		inboxes:  make([][]*netsim.Mailbox, shards),
	}
	st.engines[0], st.replicas[0] = eng0, bt0
	for i := 1; i < shards; i++ {
		if st.engines[i], st.replicas[i], err = mkReplica(i); err != nil {
			return nil, err
		}
	}

	// Replicated control plane: the full defense deploys on every shard
	// engine so keyrings, Passport keys, rotation timers and detection
	// state exist — and draw the same setup randomness — everywhere.
	plan, deployed, err := s.Deployment.plan(bt0.graph.SourceASes())
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	env := &scenarioEnv{
		sc:          &s,
		eng:         eng0,
		net:         bt0.net,
		sh:          st,
		fcts:        make([]*metrics.FCT, shards),
		denySet:     map[packet.NodeID]bool{},
		deployed:    deployed,
		listeners:   map[int]bool{},
		srcCounters: map[int]map[packet.NodeID]*int64{},
		duration:    s.Duration,
		warmup:      s.Warmup,
	}
	for i := range env.fcts {
		env.fcts[i] = &metrics.FCT{}
	}
	var deny defense.Policy
	if s.DenyAttackers {
		deny.Deny = func(src packet.NodeID) bool { return env.denySet[src] }
	}
	env.deny = deny
	for i := 0; i < shards; i++ {
		sys, err := defense.Build(s.Defense.Name, st.replicas[i].net, defense.BuildOptions{Config: s.Defense.Config})
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		st.systems[i] = sys
		st.replicas[i].graph.Deploy(sys, deny, plan)
	}
	env.system = st.systems[0]

	// Stitch the role view: every workload-visible node is the OWNING
	// replica's copy, so attaching a transport lands it on the right
	// engine without the workload code knowing about shards.
	stitched := &builtTopo{
		name:       bt0.name,
		net:        bt0.net,
		graph:      bt0.graph,
		dumbbell:   bt0.dumbbell,
		parkingLot: bt0.parkingLot,
	}
	for _, l := range bt0.bottlenecks {
		owner := st.shardOf(l.From.ID)
		stitched.bottlenecks = append(stitched.bottlenecks, st.replicas[owner].net.Links[l.Index])
	}
	for _, grp := range bt0.groups {
		rg := roleGroup{}
		for _, n := range grp.senders {
			rg.senders = append(rg.senders, st.owned(n))
		}
		if grp.victim != nil {
			rg.victim = st.owned(grp.victim)
		}
		for _, c := range grp.colluders {
			rg.colluders = append(rg.colluders, st.owned(c))
		}
		stitched.groups = append(stitched.groups, rg)
	}
	env.builtTopo = stitched

	if len(stitched.bottlenecks) > 0 {
		bn := stitched.bottlenecks[0]
		owner := st.shardOf(bn.From.ID)
		if cs, ok := st.systems[owner].(*core.System); ok {
			env.nfBottleneck = cs.Bottleneck(bn)
		}
	}

	// Wire the cut links: the source replica's link hands off into the
	// destination replica's copy.
	for _, l := range part.CutLinks {
		src := st.shardOf(l.From.ID)
		dst := st.shardOf(l.To.ID)
		mb := netsim.NewMailbox(st.replicas[dst].net.Links[l.Index])
		st.replicas[src].net.Links[l.Index].SetMailbox(mb)
		st.inboxes[dst] = append(st.inboxes[dst], mb)
	}

	names := shardNames(part, bt0.graph)
	st.coord = sim.NewCoordinator(st.engines, part.Lookahead, names)

	// Resolve the validation-pipeline mode and build the per-shard worker
	// pools. Auto enables the stage exactly where it pays: handoffs into
	// shards whose NetFence replica verifies Passport trailers at core
	// links — the CMAC work that otherwise serializes on the bottleneck
	// shard's execute phase.
	usePipe := s.Pipeline == PipelineOn
	if s.Pipeline == PipelineAuto {
		if cs, ok := st.systems[0].(*core.System); ok {
			usePipe = cs.Cfg.Passport && cs.Registry != nil
		}
	}
	pipeActive := false
	if usePipe {
		workers := runtime.GOMAXPROCS(0)
		if workers > 4 {
			workers = 4
		}
		st.pipelines = make([]*core.Pipeline, shards)
		for i := range st.inboxes {
			cs, ok := st.systems[i].(*core.System)
			if !ok || len(st.inboxes[i]) == 0 {
				continue
			}
			st.pipelines[i] = core.NewPipeline(cs, st.replicas[i].net, names[i], workers)
			pipeActive = true
		}
		if !pipeActive {
			st.pipelines = nil
		}
	}

	st.coord.SetDrain(func(shard int, deadline sim.Time) bool {
		// Precompute every pending handoff's MAC verdicts on the worker
		// pool before injecting: all shards are parked in the drain round,
		// so the replica state the verdicts read is frozen, and Wait's
		// completion happens-before the injection below.
		if pl := st.pipeline(shard); pl != nil {
			pl.Submit(st.inboxes[shard])
			pl.Wait()
		}
		hit := false
		for _, mb := range st.inboxes[shard] {
			if mb.Drain(deadline) {
				hit = true
			}
		}
		return hit
	})
	st.info = &Sharding{
		Shards:       shards,
		CutLinks:     len(part.CutLinks),
		Lookahead:    part.Lookahead,
		ASesPerShard: make([]int, shards),
		Pipeline:     pipeActive,
		coord:        st.coord,
	}
	for _, sh := range part.ShardOfAS {
		st.info.ASesPerShard[sh]++
	}

	for _, w := range s.Workloads {
		if err := w.attach(env); err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	// Give each replica's runtime flow counter a range disjoint from the
	// attach-time flows and from every other shard, so file/web
	// transfers opening flows mid-run never collide across shards.
	for i := range st.replicas {
		st.replicas[i].net.SetFlowBase(st.flowSeq + uint32(i+1)<<20)
	}
	if s.TraceFlows > 0 {
		// One shared sample bitmap (read-only) covering the attach-time
		// flows; each replica records into its own buffer and the merge
		// sorts by content, so the trace is shard-count-invariant.
		sampled := obs.SampleFlows(s.Seed, int(st.flowSeq), s.TraceFlows)
		for i := range st.replicas {
			st.replicas[i].net.Rec = obs.NewRecorder(sampled)
		}
	}
	if s.Meter != nil {
		for _, e := range st.engines {
			e.AttachMeter(s.Meter)
		}
	}

	probes := s.Probes
	if probes == nil {
		probes = []Probe{GoodputProbe{}, FairnessProbe{}, FCTProbe{}}
	}
	for _, p := range probes {
		if err := p.install(env); err != nil {
			return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	// Warmup marks are taken shard-locally: each engine snapshots the
	// meters and bottleneck counters its shard owns, at the same
	// simulated instant.
	env.txWarmMarks = make([]uint64, len(stitched.bottlenecks))
	for i := range st.engines {
		shard := i
		st.engines[i].At(s.Warmup, func() { env.snapshotWarmShard(shard) })
	}

	return &Instance{
		Scenario:   s,
		Eng:        eng0,
		Engines:    st.engines,
		Net:        bt0.net,
		System:     st.systems[0],
		Graph:      bt0.graph,
		Dumbbell:   bt0.dumbbell,
		ParkingLot: bt0.parkingLot,
		Sharding:   st.info,
		env:        env,
		probes:     probes,
	}, nil
}

// shardNames labels each shard with its AS span for pprof attribution.
func shardNames(part *topo.Partition, g *Graph) []string {
	firsts := make([]packet.ASID, part.Shards)
	lasts := make([]packet.ASID, part.Shards)
	seen := make([]bool, part.Shards)
	for _, as := range g.AllASes() {
		sh := part.ShardOfAS[as]
		if !seen[sh] {
			seen[sh] = true
			firsts[sh] = as
		}
		lasts[sh] = as
	}
	names := make([]string, part.Shards)
	for i := range names {
		if firsts[i] == lasts[i] {
			names[i] = fmt.Sprintf("as%d", firsts[i])
		} else {
			names[i] = fmt.Sprintf("as%d-as%d", firsts[i], lasts[i])
		}
	}
	return names
}
