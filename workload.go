package netfence

import (
	"fmt"

	"netfence/internal/attack"
	"netfence/internal/obs"
	"netfence/internal/packet"
	"netfence/internal/transport"
)

// Workload attaches traffic sources to a built scenario. The concrete
// workloads are small spec structs — LongTCP, FileTransfers, WebTraffic,
// UDPFlood, OnOffFlood, ColluderPairs, RequestFlood — that replace the
// manual constructor wiring of the low-level API. Every workload names
// its senders by index into the topology's sender list (per group on the
// parking lot); Range builds index lists.
type Workload interface {
	attach(env *scenarioEnv) error
	// span reports the workload's kind, group and highest sender index
	// (-1 when it names no senders), so Sweep can fail fast on
	// populations too small for the declared sender lists.
	span() (kind string, group, maxIndex int)
}

// maxIndex returns the largest index in a sender list, or -1.
func maxIndex(senders []int) int {
	max := -1
	for _, i := range senders {
		if i > max {
			max = i
		}
	}
	return max
}

// Range returns the sender indices [lo, hi): Range(1, 10) selects
// senders 1 through 9.
func Range(lo, hi int) []int {
	if hi <= lo {
		return nil
	}
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// LongTCP attaches an unbounded TCP Reno flow from each listed sender to
// its group's victim — the paper's long-running legitimate user.
type LongTCP struct {
	// Senders indexes the topology's senders (within Group).
	Senders []int
	// Group selects the parking-lot sender group; must be 0 on a dumbbell.
	Group int
	// TCP overrides the evaluation TCP configuration (nil = DefaultTCP).
	TCP *TCPConfig
}

func (w LongTCP) span() (string, int, int) { return "LongTCP", w.Group, maxIndex(w.Senders) }

func (w LongTCP) attach(env *scenarioEnv) error {
	grp, err := env.group(w.Group, "LongTCP")
	if err != nil {
		return err
	}
	victim, err := grp.victimHost("LongTCP")
	if err != nil {
		return err
	}
	cfg := DefaultTCP()
	if w.TCP != nil {
		cfg = *w.TCP
	}
	for _, idx := range w.Senders {
		h, err := grp.sender(idx, "LongTCP")
		if err != nil {
			return err
		}
		flow := env.newFlow()
		r := transport.NewTCPReceiver(victim.Host, flow)
		env.addMeter(victim, w.Group, idx, false, r.DeliveredBytes)
		transport.NewTCPSender(h.Host, victim.ID, flow, -1, cfg).Start()
	}
	return nil
}

// FileTransfers attaches a repeating fixed-size file client from each
// listed sender to its group's victim: the §6.3.1 workload (a 20 KB file
// over a fresh connection, again and again). Completions feed the
// scenario's FCT aggregate; delivered bytes feed the goodput meters.
type FileTransfers struct {
	Senders []int
	Group   int
	// FileBytes is the transfer size (0 = the paper's 20 KB).
	FileBytes int64
	// Gap delays the next attempt after a completion (0 = immediate).
	Gap Time
	TCP *TCPConfig
}

func (w FileTransfers) span() (string, int, int) {
	return "FileTransfers", w.Group, maxIndex(w.Senders)
}

func (w FileTransfers) attach(env *scenarioEnv) error {
	grp, err := env.group(w.Group, "FileTransfers")
	if err != nil {
		return err
	}
	victim, err := grp.victimHost("FileTransfers")
	if err != nil {
		return err
	}
	size := w.FileBytes
	if size <= 0 {
		size = 20_000
	}
	cfg := DefaultTCP()
	if w.TCP != nil {
		cfg = *w.TCP
	}
	env.ensureListener(w.Group)
	for _, idx := range w.Senders {
		h, err := grp.sender(idx, "FileTransfers")
		if err != nil {
			return err
		}
		ctr := env.srcCounter(w.Group, h.ID)
		env.addMeter(victim, w.Group, idx, false, func() int64 { return *ctr })
		c := transport.NewFileClient(h.Host, victim.ID, size, cfg)
		c.Gap = w.Gap
		fct := env.fctFor(h)
		c.OnResult = func(d Time, ok bool) { fct.Add(d, ok) }
		env.stoppers = append(env.stoppers, c)
		c.Start()
	}
	return nil
}

// WebTraffic attaches the §6.3.2 web-like source (Pareto/exponential
// file-size mixture with think times) from each listed sender to its
// group's victim. Transfers feed the FCT aggregate and goodput meters.
type WebTraffic struct {
	Senders []int
	Group   int
	// Web overrides the workload parameters (nil = DefaultWeb).
	Web *WebConfig
}

func (w WebTraffic) span() (string, int, int) { return "WebTraffic", w.Group, maxIndex(w.Senders) }

func (w WebTraffic) attach(env *scenarioEnv) error {
	grp, err := env.group(w.Group, "WebTraffic")
	if err != nil {
		return err
	}
	victim, err := grp.victimHost("WebTraffic")
	if err != nil {
		return err
	}
	cfg := DefaultWeb()
	if w.Web != nil {
		cfg = *w.Web
	}
	env.ensureListener(w.Group)
	for _, idx := range w.Senders {
		h, err := grp.sender(idx, "WebTraffic")
		if err != nil {
			return err
		}
		ctr := env.srcCounter(w.Group, h.ID)
		env.addMeter(victim, w.Group, idx, false, func() int64 { return *ctr })
		src := transport.NewWebSource(h.Host, victim.ID, cfg)
		fct := env.fctFor(h)
		src.OnResult = func(_ int64, d Time, ok bool) { fct.Add(d, ok) }
		env.stoppers = append(env.stoppers, src)
		src.Start()
	}
	return nil
}

// UDPFlood attaches a constant-rate UDP source from each listed sender —
// the paper's 1 Mbps attack load — aimed at the group's victim, or at the
// group's colluder hosts when ToColluders is set. Flood senders count as
// attackers for the goodput probes and join the victim's deny set when
// the scenario sets DenyAttackers.
type UDPFlood struct {
	Senders []int
	Group   int
	// RateBps is the per-sender send rate (0 = 1 Mbps).
	RateBps int64
	// PktSize is the packet size on the wire (0 = 1500 B).
	PktSize int32
	// ToColluders redirects the flood to the group's colluder hosts
	// (round-robin), modelling the §6.3.2 colluding sender-receiver pairs.
	ToColluders bool
}

func (w UDPFlood) span() (string, int, int) { return "UDPFlood", w.Group, maxIndex(w.Senders) }

func (w UDPFlood) attach(env *scenarioEnv) error {
	return attachFlood(env, floodSpec{
		senders: w.Senders, group: w.Group, rate: w.RateBps,
		pktSize: w.PktSize, toColluders: w.ToColluders, kind: "UDPFlood",
	})
}

// OnOffFlood attaches the synchronized on-off UDP source of the §6.3.2
// strategic attacks: every source turns on and off together, maximizing
// burst alignment. OffRateBps keeps a low-rate trickle during off phases
// (the feedback-harvesting shape of the hysteresis ablation).
type OnOffFlood struct {
	Senders []int
	Group   int
	RateBps int64
	// On and Off are the burst and silence durations; both must be set.
	On, Off Time
	// OffRateBps, when positive, trickles during off phases.
	OffRateBps  int64
	PktSize     int32
	ToColluders bool
}

func (w OnOffFlood) span() (string, int, int) { return "OnOffFlood", w.Group, maxIndex(w.Senders) }

func (w OnOffFlood) attach(env *scenarioEnv) error {
	if w.On <= 0 || w.Off <= 0 {
		return fmt.Errorf("OnOffFlood: On and Off must both be positive")
	}
	return attachFlood(env, floodSpec{
		senders: w.Senders, group: w.Group, rate: w.RateBps,
		pktSize: w.PktSize, toColluders: w.ToColluders,
		on: w.On, off: w.Off, offRate: w.OffRateBps, kind: "OnOffFlood",
	})
}

// ColluderPairs is UDPFlood aimed at colluding receivers: compromised
// sender-receiver pairs that flood through the bottleneck while the
// receiver dutifully returns congestion policing feedback, so
// capabilities alone cannot stop them (§6.3.2).
type ColluderPairs struct {
	Senders []int
	Group   int
	RateBps int64
}

func (w ColluderPairs) span() (string, int, int) {
	return "ColluderPairs", w.Group, maxIndex(w.Senders)
}

func (w ColluderPairs) attach(env *scenarioEnv) error {
	return attachFlood(env, floodSpec{
		senders: w.Senders, group: w.Group, rate: w.RateBps,
		toColluders: true, kind: "ColluderPairs",
	})
}

// floodSpec is the shared shape behind the UDP flood workloads.
type floodSpec struct {
	senders     []int
	group       int
	rate        int64
	pktSize     int32
	on, off     Time
	offRate     int64
	toColluders bool
	// legit marks the senders as legitimate: they stay off the deny set
	// and meter as users, not attackers (exact-fanout legitimate fleets).
	legit bool
	kind  string
}

func attachFlood(env *scenarioEnv, spec floodSpec) error {
	grp, err := env.group(spec.group, spec.kind)
	if err != nil {
		return err
	}
	if spec.toColluders && len(grp.colluders) == 0 {
		return fmt.Errorf("%s: topology has no colluder hosts in group %d (set ColluderASes)", spec.kind, spec.group)
	}
	if !spec.toColluders {
		if _, err := grp.victimHost(spec.kind); err != nil {
			return err
		}
	}
	rate := spec.rate
	if rate <= 0 {
		rate = 1_000_000
	}
	pktSize := spec.pktSize
	if pktSize <= 0 {
		pktSize = packet.SizeData
	}
	for k, idx := range spec.senders {
		h, err := grp.sender(idx, spec.kind)
		if err != nil {
			return err
		}
		var dstHost = grp.victim
		if spec.toColluders {
			dstHost = grp.colluders[k%len(grp.colluders)]
		} else if !spec.legit {
			env.denySet[h.ID] = true
		}
		flow := env.newFlow()
		sink := transport.NewUDPSink(dstHost.Host, flow)
		env.addMeter(dstHost, spec.group, idx, !spec.legit, func() int64 { return int64(sink.Bytes) })
		u := transport.NewUDPSource(h.Host, dstHost.ID, flow, rate, pktSize)
		u.OnTime, u.OffTime = spec.on, spec.off
		u.OffRateBps = spec.offRate
		env.stoppers = append(env.stoppers, u)
		u.Start()
	}
	return nil
}

// FleetSpec models Count statistically homogeneous UDP senders with
// only len(Senders) materialized hosts — the million-sender aggregation
// layer. Each listed sender host becomes a fleet attachment point
// standing for Count/len(Senders) modeled senders: its node carries the
// fleet weight, the access router scales the per-(sender, bottleneck)
// AIMD limiter and request token bucket by that weight in closed form,
// and one transport.FleetSource emits the fleet's combined offered load
// with jitter drawn from a per-fleet deterministic RNG stream (derived
// from sim.KeyStream, so results are byte-identical across shard
// counts). Probes divide the fleet meter by its weight, so per-sender
// goodput, fairness and Theorem-1 bounds read exactly as if the fleet
// were materialized.
//
// Exact fan-out contract: when per-sender identity matters the fleet
// materializes one real sender per modeled sender instead. That happens
// when Exact is set, and is forced when the scenario timeline contains
// deployment mutations (they change who polices each sender, which the
// closed-form aggregation cannot track). Forced or explicit fan-out
// requires Count == len(Senders); the fan-out path is byte-identical to
// UDPFlood/LongTCP-style individual attachment by construction (it is
// the same code path). Attack controllers (AttackSpec) never aggregate:
// adaptive strategies address senders individually by design.
type FleetSpec struct {
	// Count is the total modeled sender population of the fleet.
	Count int
	// Senders are the attachment host indices within Group. In
	// aggregate mode Count must divide evenly among them.
	Senders []int
	Group   int
	// RateBps is the PER-MODELED-SENDER offered load (0 = 1 Mbps).
	RateBps int64
	// PktSize is the on-wire packet size (0 = 1500 B).
	PktSize int32
	// Attacker marks the fleet hostile: meters count it as attack
	// traffic and victim-bound senders join the deny set when the
	// scenario sets DenyAttackers.
	Attacker bool
	// ToColluders aims the fleet at the group's colluder hosts
	// (round-robin over attachment points) instead of the victim.
	ToColluders bool
	// Exact forces per-sender fan-out (requires Count == len(Senders)).
	Exact bool
}

func (w FleetSpec) span() (string, int, int) { return "FleetSpec", w.Group, maxIndex(w.Senders) }

func (w FleetSpec) attach(env *scenarioEnv) error {
	if w.Count <= 0 {
		return fmt.Errorf("FleetSpec: Count must be positive, got %d", w.Count)
	}
	if len(w.Senders) == 0 {
		return fmt.Errorf("FleetSpec: no attachment senders listed")
	}
	if w.Exact || env.needsFanout() {
		if w.Count != len(w.Senders) {
			reason := "Exact is set"
			if !w.Exact {
				reason = "the timeline contains deployment mutations (aggregation cannot track per-sender policing changes)"
			}
			return fmt.Errorf("FleetSpec: exact fan-out required because %s, but Count=%d != %d attachment senders",
				reason, w.Count, len(w.Senders))
		}
		return attachFlood(env, floodSpec{
			senders: w.Senders, group: w.Group, rate: w.RateBps,
			pktSize: w.PktSize, toColluders: w.ToColluders,
			legit: !w.Attacker, kind: "FleetSpec",
		})
	}
	if w.Count%len(w.Senders) != 0 {
		return fmt.Errorf("FleetSpec: Count %d does not divide evenly among %d attachment senders",
			w.Count, len(w.Senders))
	}
	weight := w.Count / len(w.Senders)
	grp, err := env.group(w.Group, "FleetSpec")
	if err != nil {
		return err
	}
	if w.ToColluders && len(grp.colluders) == 0 {
		return fmt.Errorf("FleetSpec: topology has no colluder hosts in group %d (set ColluderASes)", w.Group)
	}
	if !w.ToColluders {
		if _, err := grp.victimHost("FleetSpec"); err != nil {
			return err
		}
	}
	rate := w.RateBps
	if rate <= 0 {
		rate = 1_000_000
	}
	pktSize := w.PktSize
	if pktSize <= 0 {
		pktSize = packet.SizeData
	}
	for k, idx := range w.Senders {
		h, err := grp.sender(idx, "FleetSpec")
		if err != nil {
			return err
		}
		var dstHost = grp.victim
		if w.ToColluders {
			dstHost = grp.colluders[k%len(grp.colluders)]
		} else if w.Attacker {
			env.denySet[h.ID] = true
		}
		// The attachment node carries the fleet weight: the access
		// router reads it when creating this sender's limiters, the
		// partition reads it for load balancing, and senderCount folds
		// it into the population the Theorem-1 probe divides by.
		h.Weight = int32(weight)
		flow := env.newFlow()
		sink := transport.NewUDPSink(dstHost.Host, flow)
		env.addWeightedMeter(dstHost, w.Group, idx, w.Attacker, weight, func() int64 { return int64(sink.Bytes) })
		fs := transport.NewFleetSource(h.Host, dstHost.ID, flow, weight, rate, pktSize, env.fleetRand(h))
		cells := h.Host.Network().Cells
		cells.Add(obs.FleetAttached, 1)
		cells.Add(obs.FleetModeledSenders, uint64(weight))
		env.stoppers = append(env.stoppers, fs)
		fs.Start()
	}
	return nil
}

// RequestFlood attaches the request-channel attack source of §6.3.1:
// request packets blasted at a fixed priority level toward the group's
// victim. With Strategic set, the level is computed from the flood
// population and bottleneck capacity — the highest level whose aggregate
// admitted traffic still saturates the request channel. Flood senders
// join the victim's deny set when the scenario sets DenyAttackers.
type RequestFlood struct {
	Senders []int
	Group   int
	RateBps int64
	// Level is the request-packet priority level.
	Level uint8
	// Strategic overrides Level with the §6.3.1 attack strategy.
	Strategic bool
}

func (w RequestFlood) span() (string, int, int) { return "RequestFlood", w.Group, maxIndex(w.Senders) }

func (w RequestFlood) attach(env *scenarioEnv) error {
	grp, err := env.group(w.Group, "RequestFlood")
	if err != nil {
		return err
	}
	victim, err := grp.victimHost("RequestFlood")
	if err != nil {
		return err
	}
	rate := w.RateBps
	if rate <= 0 {
		rate = 1_000_000
	}
	level := w.Level
	if w.Strategic {
		if len(env.bottlenecks) == 0 {
			return fmt.Errorf("RequestFlood: Strategic needs a topology with a tagged bottleneck link")
		}
		level = attack.StrategicRequestLevel(len(w.Senders), env.bottleneckBps(), env.nfConfig())
	}
	env.ensureListener(w.Group)
	for _, idx := range w.Senders {
		h, err := grp.sender(idx, "RequestFlood")
		if err != nil {
			return err
		}
		env.denySet[h.ID] = true
		flow := env.newFlow()
		f := transport.NewRequestFlooder(h.Host, victim.ID, flow, rate, level)
		env.stoppers = append(env.stoppers, f)
		f.Start()
	}
	return nil
}

// AttackSpec attaches an adaptive attack workload: every listed sender
// is driven by a strategy resolved by name from the attack registry
// ("flood", "onoff-sync", "request-prio", "replay", "legacy-flood", or
// any RegisterAttack registration). Strategies decide per control tick
// how fast each sender transmits, observe the feedback the network
// returns, and may craft each packet's channel, priority and presented
// feedback — the §6.3 strategic adversaries as first-class workloads.
// Attack senders count as attackers for the goodput probes; victim-bound
// senders join the deny set when the scenario sets DenyAttackers.
type AttackSpec struct {
	// Strategy is the attack-registry name; empty means "flood".
	Strategy string
	Senders  []int
	Group    int
	// RateBps is the per-sender attack rate (0 = the paper's 1 Mbps).
	RateBps int64
	// PktSize is the on-wire packet size (0 = the strategy's default).
	PktSize int32
	// ToColluders aims the attack at the group's colluder hosts
	// (round-robin) instead of the victim — the colluding receivers of
	// §6.3.2, who dutifully return feedback and are never denied.
	ToColluders bool
	// Options configures the strategy (its registered options type,
	// e.g. OnOffOptions for "onoff-sync"); nil selects defaults.
	Options any
	// Params sets the strategy's tunable parameters by name (its
	// registered ParamSpecs; -list-attacks prints them). nil keeps every
	// default. The adversarial search drives this field; unknown keys or
	// out-of-range values fail the build with the strategy and key named.
	Params map[string]float64
}

func (w AttackSpec) span() (string, int, int) {
	return "AttackSpec", w.Group, maxIndex(w.Senders)
}

func (w AttackSpec) attach(env *scenarioEnv) error {
	name := w.Strategy
	if name == "" {
		name = "flood"
	}
	grp, err := env.group(w.Group, "AttackSpec")
	if err != nil {
		return err
	}
	if w.ToColluders && len(grp.colluders) == 0 {
		return fmt.Errorf("AttackSpec(%s): topology has no colluder hosts in group %d (set ColluderASes)", name, w.Group)
	}
	if !w.ToColluders {
		if _, err := grp.victimHost("AttackSpec"); err != nil {
			return err
		}
	}
	// One controller (and one strategy instance) per shard owning attack
	// senders: each ticks on its own engine, so crafted traffic and
	// feedback observation stay shard-local. The in-tree strategies keep
	// no cross-sender mutable state — population-level choices derive
	// from the shared clock, the workload-wide Attackers count and the
	// workload-global sender Index — so splitting the population across
	// controllers leaves every sender's behavior identical to the
	// single-controller run. On the single
	// engine this degenerates to exactly one controller, the historical
	// path.
	mkCtrl := func(eng *Engine) (*attack.Controller, error) {
		aenv := &attack.Env{
			Eng:       eng,
			Attackers: len(w.Senders),
			Config:    env.nfConfig(),
		}
		if len(env.bottlenecks) > 0 {
			aenv.BottleneckBps = env.bottleneckBps()
		}
		strat, err := attack.Build(name, attack.BuildOptions{
			RateBps: w.RateBps,
			PktSize: w.PktSize,
			Env:     aenv,
			Options: w.Options,
			Params:  w.Params,
		})
		if err != nil {
			return nil, err
		}
		return attack.NewController(strat, aenv), nil
	}
	ctrls := map[int]*attack.Controller{}
	for k, idx := range w.Senders {
		h, err := grp.sender(idx, "AttackSpec")
		if err != nil {
			return err
		}
		dstHost := grp.victim
		if w.ToColluders {
			dstHost = grp.colluders[k%len(grp.colluders)]
		} else {
			env.denySet[h.ID] = true
		}
		sh := env.shardOf(h)
		ctrl := ctrls[sh]
		if ctrl == nil {
			if ctrl, err = mkCtrl(h.Host.Network().Eng); err != nil {
				return err
			}
			ctrls[sh] = ctrl
		}
		flow := env.newFlow()
		sink := transport.NewUDPSink(dstHost.Host, flow)
		env.addMeter(dstHost, w.Group, idx, true, func() int64 { return int64(sink.Bytes) })
		// Index must be the sender's position in the workload list, not
		// in its shard's controller: index-dependent strategies (the
		// legacy_frac split) must make the same per-sender choice no
		// matter how the population is partitioned.
		ctrl.AddSender(h.Host, dstHost.ID, flow).Index = k
	}
	env.recordAttack(attack.Canonical(name))
	var started []*attack.Controller
	for sh := 0; sh < env.shardCount(); sh++ {
		if ctrl := ctrls[sh]; ctrl != nil {
			env.stoppers = append(env.stoppers, ctrl)
			ctrl.Start()
			started = append(started, ctrl)
		}
	}
	// Register the workload's controllers (in shard order) with the
	// control plane, so attack mutations can address this workload by its
	// AttackSpec declaration index.
	env.attackCtrls = append(env.attackCtrls, started)
	return nil
}
