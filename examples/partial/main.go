// Partial deployment: the same collusion attack on the same dumbbell,
// once with every source AS running NetFence and once with only half of
// them — the paper's incremental-deployment story. Legacy (undeployed)
// ASes still forward traffic, but their hosts present no congestion
// policing feedback, so the bottleneck demotes their packets to the
// best-effort legacy channel. Deployed users keep their policed fair
// share either way; the attackers' take collapses to whatever the
// legacy channel spares them.
//
// The deployment plan is one Scenario field: DeployFraction(0.5) picks
// half of the source ASes (evenly spaced, deterministic); DeployMap
// gives explicit per-AS control.
package main

import (
	"fmt"
	"log"

	"netfence"
)

func main() {
	// 8 source ASes with one sender each: odd indices run long TCP to
	// the victim, even indices flood 1 Mbps to colluders. DeployFraction
	// picks evenly spaced ASes — at 50% over 8 ASes, the odd ones — so
	// the user ASes deploy and the attacker ASes stay legacy, the
	// early-adopter situation the paper argues for.
	base := netfence.Scenario{
		Seed:     42,
		Topology: netfence.DumbbellSpec{Senders: 8, SrcASes: 8, BottleneckBps: 1_600_000, ColluderASes: 4},
		Defense:  netfence.Defense("netfence"),
		Workloads: []netfence.Workload{
			netfence.LongTCP{Senders: []int{1, 3, 5, 7}},
			netfence.ColluderPairs{Senders: []int{0, 2, 4, 6}, RateBps: 1_000_000},
		},
		Duration: 120 * netfence.Second,
		Warmup:   60 * netfence.Second,
	}

	full := base
	full.Name = "full"
	full.Deployment = netfence.DeployFraction(1)

	half := base
	half.Name = "half"
	half.Deployment = netfence.DeployFraction(0.5)

	results, err := netfence.RunAll(full, half)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(netfence.FormatResults(results))
	fmt.Println()
	f, h := results[0], results[1]
	fmt.Printf("full deployment: user %.0f kbps vs attacker %.0f kbps (ratio %.2f)\n",
		f.UserBps/1000, f.AttackerBps/1000, f.Ratio)
	fmt.Printf("50%% deployment: user %.0f kbps vs attacker %.0f kbps (ratio %.2f)\n",
		h.UserBps/1000, h.AttackerBps/1000, h.Ratio)
	fmt.Println()
	fmt.Println("at 50%, the deployed half is policed onto the regular channel while")
	fmt.Println("legacy traffic rides best-effort: deploying ASes keep their users'")
	fmt.Println("fair share even before the rest of the internet catches up.")
}
