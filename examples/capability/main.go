// Capability: the §6.3.1 scenario. A victim under a request-packet flood
// identifies the attackers and simply stops returning congestion policing
// feedback to them — NetFence's feedback doubles as a capability token
// (§3.3). The attackers are then confined to the strictly-policed request
// channel while a legitimate client's 20 KB transfers keep completing,
// paying only the ~1 s priority-backoff penalty on connection setup.
package main

import (
	"fmt"

	"netfence"
)

func main() {
	eng := netfence.NewEngine(7)
	cfg := netfence.DefaultDumbbell(10, 2_000_000)
	d := netfence.NewDumbbell(eng, cfg)

	// Sender 0 is the legitimate client; the other nine flood.
	attackers := map[netfence.NodeID]bool{}
	for _, h := range d.Senders[1:] {
		attackers[h.ID] = true
	}

	sys := netfence.NewSystem(d.Net, netfence.DefaultConfig())
	netfence.DeployDumbbell(d, sys, netfence.Policy{
		Deny: func(src netfence.NodeID) bool { return attackers[src] },
	})
	d.Victim.Host.OnUnknownFlow = func(p *netfence.Packet) netfence.Agent {
		return netfence.NewTCPReceiver(d.Victim.Host, p.Flow)
	}

	// Attackers flood request packets at priority level 5 (high enough
	// to saturate the 5% request channel of a 2 Mbps link).
	for i, a := range d.Senders[1:] {
		netfence.NewRequestFlooder(a.Host, d.Victim.ID, netfence.FlowID(100+i), 1_000_000, 5).Start()
	}

	// The client repeatedly transfers a 20 KB file over new connections.
	var fct netfence.FCT
	client := netfence.NewFileClient(d.Senders[0].Host, d.Victim.ID, 20_000, netfence.DefaultTCP())
	client.OnResult = func(d netfence.Time, ok bool) { fct.Add(d, ok) }
	client.Start()

	eng.RunUntil(60 * netfence.Second)
	client.Stop()

	fmt.Printf("transfers completed: %d (completion ratio %.0f%%)\n",
		fct.Count(), 100*fct.CompletionRatio())
	fmt.Printf("mean FCT: %.2fs   p95: %.2fs\n",
		fct.Mean().Seconds(), fct.Percentile(95).Seconds())
	fmt.Printf("victim accepted zero attacker connections; the flood is pinned\n")
	fmt.Printf("inside the request channel's 5%% capacity share.\n")
}
