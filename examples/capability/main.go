// Capability: the §6.3.1 scenario. A victim under a request-packet flood
// identifies the attackers and simply stops returning congestion policing
// feedback to them — NetFence's feedback doubles as a capability token
// (§3.3). The attackers are then confined to the strictly-policed request
// channel while a legitimate client's 20 KB transfers keep completing,
// paying only the ~1 s priority-backoff penalty on connection setup.
//
// DenyAttackers gives the victim the paper's receiver policy — every
// sender carrying an attack workload aimed at it is denied.
package main

import (
	"fmt"
	"log"

	"netfence"
)

func main() {
	res, err := netfence.Scenario{
		Name:          "capability",
		Seed:          7,
		Topology:      netfence.DumbbellSpec{Senders: 10, BottleneckBps: 2_000_000},
		Defense:       netfence.Defense("netfence"),
		DenyAttackers: true,
		Workloads: []netfence.Workload{
			// Sender 0 is the legitimate client, repeatedly transferring
			// a 20 KB file; the other nine flood request packets at
			// priority level 5 (high enough to saturate the 5% request
			// channel of a 2 Mbps link).
			netfence.FileTransfers{Senders: []int{0}, FileBytes: 20_000},
			netfence.RequestFlood{Senders: netfence.Range(1, 10), RateBps: 1_000_000, Level: 5},
		},
		Duration: 60 * netfence.Second,
		Warmup:   10 * netfence.Second,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("transfers completed: %d (completion ratio %.0f%%)\n",
		res.FCT.Count, 100*res.FCT.Completion)
	fmt.Printf("mean FCT: %.2fs   p95: %.2fs\n", res.FCT.MeanSec, res.FCT.P95Sec)
	fmt.Printf("victim accepted zero attacker connections; the flood is pinned\n")
	fmt.Printf("inside the request channel's 5%% capacity share.\n")
}
