// Onoff: the §6.3.2 strategic-attack study (Figure 11). Attackers send
// synchronized on-off bursts, hoping to congest the link with aligned
// spikes while keeping their average rate low. NetFence's leaky-bucket
// rate limiters (a queue, not a token bucket — §4.3.3) and the two-
// control-interval L-down hysteresis (§4.3.4) make the shape of attack
// traffic irrelevant: users keep at least the fair share they would get
// if the attackers were always on, and reclaim bandwidth as the off
// period grows.
//
// Each off-period is one declarative Scenario; RunAll drives them all
// concurrently, one engine per scenario.
package main

import (
	"fmt"
	"log"

	"netfence"
)

func scenario(toff netfence.Time) netfence.Scenario {
	return netfence.Scenario{
		Name:     fmt.Sprintf("onoff/toff=%.1fs", toff.Seconds()),
		Seed:     11,
		Topology: netfence.DumbbellSpec{Senders: 8, BottleneckBps: 800_000, ColluderASes: 2}, // 100 kbps fair share
		Defense:  netfence.Defense("netfence"),
		Workloads: []netfence.Workload{
			// 2 users, 6 synchronized on-off attackers.
			netfence.LongTCP{Senders: netfence.Range(0, 2)},
			netfence.OnOffFlood{
				Senders: netfence.Range(2, 8), RateBps: 1_000_000, PktSize: 1500,
				On: 500 * netfence.Millisecond, Off: toff, ToColluders: true,
			},
		},
		Duration: 210 * netfence.Second,
		Warmup:   90 * netfence.Second,
	}
}

func main() {
	toffs := []netfence.Time{
		1500 * netfence.Millisecond,
		10 * netfence.Second,
		50 * netfence.Second,
	}
	var scs []netfence.Scenario
	for _, toff := range toffs {
		scs = append(scs, scenario(toff))
	}
	results, err := netfence.RunAll(scs...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Ton = 0.5s, synchronized bursts; fair share (attackers always on) = 100 kbps")
	fmt.Println("Toff(s)  avg user throughput (kbps)")
	for i, res := range results {
		fmt.Printf("%6.1f  %10.0f\n", toffs[i].Seconds(), res.UserBps/1000)
	}
	fmt.Println("\nno burst shape depresses users below the always-on fair share;")
	fmt.Println("longer silences hand the bandwidth back to TCP (paper Figure 11).")
}
