// Onoff: the §6.3.2 strategic-attack study (Figure 11). Attackers send
// synchronized on-off bursts, hoping to congest the link with aligned
// spikes while keeping their average rate low. NetFence's leaky-bucket
// rate limiters (a queue, not a token bucket — §4.3.3) and the two-
// control-interval L-down hysteresis (§4.3.4) make the shape of attack
// traffic irrelevant: users keep at least the fair share they would get
// if the attackers were always on, and reclaim bandwidth as the off
// period grows.
package main

import (
	"fmt"

	"netfence"
)

func run(toff netfence.Time) float64 {
	eng := netfence.NewEngine(11)
	cfg := netfence.DefaultDumbbell(8, 800_000) // 100 kbps fair share
	cfg.ColluderASes = 2
	d := netfence.NewDumbbell(eng, cfg)
	sys := netfence.NewSystem(d.Net, netfence.DefaultConfig())
	netfence.DeployDumbbell(d, sys, netfence.Policy{})

	// 2 users, 6 synchronized on-off attackers.
	var receivers []*netfence.TCPReceiver
	for i := 0; i < 2; i++ {
		flow := netfence.FlowID(1 + i)
		receivers = append(receivers, netfence.NewTCPReceiver(d.Victim.Host, flow))
		netfence.NewTCPSender(d.Senders[i].Host, d.Victim.ID, flow, -1, netfence.DefaultTCP()).Start()
	}
	for i := 2; i < 8; i++ {
		col := d.Colluders[i%2]
		flow := netfence.FlowID(100 + i)
		netfence.NewUDPSink(col.Host, flow)
		u := netfence.NewUDPSource(d.Senders[i].Host, col.ID, flow, 1_000_000, 1500)
		u.OnTime = 500 * netfence.Millisecond
		u.OffTime = toff
		u.Start()
	}

	warm, end := 90*netfence.Second, 210*netfence.Second
	eng.RunUntil(warm)
	marks := make([]int64, len(receivers))
	for i, r := range receivers {
		marks[i] = r.DeliveredBytes()
	}
	eng.RunUntil(end)
	var sum float64
	for i, r := range receivers {
		sum += float64(r.DeliveredBytes()-marks[i]) * 8 / (end - warm).Seconds()
	}
	return sum / float64(len(receivers))
}

func main() {
	fmt.Println("Ton = 0.5s, synchronized bursts; fair share (attackers always on) = 100 kbps")
	fmt.Println("Toff(s)  avg user throughput (kbps)")
	for _, toff := range []netfence.Time{
		1500 * netfence.Millisecond,
		10 * netfence.Second,
		50 * netfence.Second,
	} {
		fmt.Printf("%6.1f  %10.0f\n", toff.Seconds(), run(toff)/1000)
	}
	fmt.Println("\nno burst shape depresses users below the always-on fair share;")
	fmt.Println("longer silences hand the bandwidth back to TCP (paper Figure 11).")
}
