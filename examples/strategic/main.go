// Strategic attacks: the same population, three adversaries. NetFence's
// claim (§3.4, Theorem 1) is that no sender strategy can push a
// legitimate user below its fair-share floor — so this example runs the
// paper's collusion split (25% long-TCP users, 75% attackers) three
// times, swapping only the attack strategy:
//
//   - flood:        the honest-stack 1 Mbps UDP flood; policed onto the
//     regular channel and pinned to the AIMD fair share.
//   - onoff-sync:   bursts phase-locked to the AIMD control interval,
//     hiding inside the L-down hysteresis window between them —
//     Theorem 1's worst-case timing.
//   - request-prio: the §6.3.1 request-channel attack at the computed
//     strategic priority level.
//
// Every scenario carries a BoundProbe: it computes the Theorem-1 floor
// ν·ρ·C/(G+B) and records whether the measured user goodput clears it.
// Swap the defense for "tva" to watch a baseline fail the same floor.
package main

import (
	"fmt"
	"log"

	"netfence"
)

func main() {
	const senders = 8 // 2 users + 6 attackers
	strategies := []string{"flood", "onoff-sync", "request-prio"}

	var scs []netfence.Scenario
	for _, strat := range strategies {
		scs = append(scs, netfence.Scenario{
			Name:     strat,
			Seed:     42,
			Topology: netfence.DumbbellSpec{Senders: senders, BottleneckBps: 1_600_000, ColluderASes: 3},
			Defense:  netfence.Defense("netfence"),
			Workloads: []netfence.Workload{
				netfence.LongTCP{Senders: netfence.Range(0, 2)},
				netfence.AttackSpec{Strategy: strat, Senders: netfence.Range(2, senders), ToColluders: true},
			},
			Probes: []netfence.Probe{
				netfence.GoodputProbe{}, netfence.FairnessProbe{}, netfence.BoundProbe{},
			},
			Duration: 120 * netfence.Second,
			Warmup:   60 * netfence.Second,
		})
	}

	results, err := netfence.RunAll(scs...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(netfence.FormatResults(results))
	fmt.Println()
	for _, r := range results {
		fmt.Printf("%-12s  user %3.0f kbps vs attacker %3.0f kbps — Theorem-1 floor %.0f kbps, holds: %v\n",
			r.Attack, r.UserBps/1000, r.AttackerBps/1000, r.BoundBps/1000, r.BoundHolds)
	}
	fmt.Println()
	fmt.Println("the flood is policed to fair share; the synchronized on-off bursts gain")
	fmt.Println("nothing (the rate limiter's hysteresis keeps L-down alive across the")
	fmt.Println("silences); and the request-channel attack is boxed into its 5% share.")
	fmt.Println("whatever the strategy, the users keep the guaranteed floor.")
}
