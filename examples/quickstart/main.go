// Quickstart: one legitimate TCP sender and one colluding attacker pair
// share a 400 kbps bottleneck protected by NetFence. The attacker blasts
// 1 Mbps; NetFence detects the attack, opens a monitoring cycle, and the
// access routers' AIMD rate limiters converge both senders to their
// 200 kbps fair share — the paper's headline guarantee.
//
// The whole experiment is one declarative Scenario: topology, defense
// (resolved by name from the registry — swap "netfence" for "tva",
// "stopit", "fq" or "none" to compare), workloads and probes.
package main

import (
	"fmt"
	"log"

	"netfence"
)

func main() {
	sc := netfence.Scenario{
		Name:     "quickstart",
		Seed:     42,
		Topology: netfence.DumbbellSpec{Senders: 2, BottleneckBps: 400_000, ColluderASes: 1},
		Defense:  netfence.Defense("netfence"),
		Workloads: []netfence.Workload{
			netfence.LongTCP{Senders: []int{0}},
			netfence.ColluderPairs{Senders: []int{1}, RateBps: 1_000_000},
		},
		Probes: []netfence.Probe{
			netfence.GoodputProbe{}, netfence.TimeseriesProbe{Interval: 20 * netfence.Second},
		},
		Duration: 180 * netfence.Second,
		Warmup:   60 * netfence.Second,
	}

	res, err := sc.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("t(s)  mon  legit(kbps)  attacker(kbps)")
	for _, s := range res.Series {
		fmt.Printf("%4.0f  %-5v %8.0f %12.0f\n",
			s.TimeSec, s.Monitoring, s.UserBps/1000, s.AttackerBps/1000)
	}
	fmt.Printf("\npost-warmup means: legit %.0f kbps, attacker %.0f kbps (ratio %.2f)\n",
		res.UserBps/1000, res.AttackerBps/1000, res.Ratio)
	fmt.Printf("fair share is 200 kbps per sender; the attacker cannot hold more,\n")
	fmt.Printf("and the legitimate TCP keeps its share despite the 1 Mbps flood.\n")
}
