// Quickstart: one legitimate TCP sender and one colluding attacker pair
// share a 400 kbps bottleneck protected by NetFence. The attacker blasts
// 1 Mbps; NetFence detects the attack, opens a monitoring cycle, and the
// access routers' AIMD rate limiters converge both senders to their
// 200 kbps fair share — the paper's headline guarantee.
package main

import (
	"fmt"

	"netfence"
)

func main() {
	eng := netfence.NewEngine(42)

	// The paper's dumbbell: 2 senders in their own ASes, a transit-AS
	// bottleneck, a victim AS, and one colluder AS.
	cfg := netfence.DefaultDumbbell(2, 400_000)
	cfg.ColluderASes = 1
	d := netfence.NewDumbbell(eng, cfg)

	// Deploy NetFence with Figure 3 parameters.
	sys := netfence.NewSystem(d.Net, netfence.DefaultConfig())
	netfence.DeployDumbbell(d, sys, netfence.Policy{})

	// A legitimate long-running TCP flow to the victim...
	rcv := netfence.NewTCPReceiver(d.Victim.Host, 1)
	netfence.NewTCPSender(d.Senders[0].Host, d.Victim.ID, 1, -1, netfence.DefaultTCP()).Start()

	// ...and a colluding pair: attacker floods 1 Mbps of UDP at a
	// receiver that happily returns congestion policing feedback.
	sink := netfence.NewUDPSink(d.Colluders[0].Host, 2)
	netfence.NewUDPSource(d.Senders[1].Host, d.Colluders[0].ID, 2, 1_000_000, 1500).Start()

	fmt.Println("t(s)  mon  legit(kbps)  attacker(kbps)")
	var prevLegit, prevAtk int64
	for t := netfence.Time(0); t < 180*netfence.Second; t += 20 * netfence.Second {
		eng.RunUntil(t + 20*netfence.Second)
		legit := rcv.DeliveredBytes()
		atk := int64(sink.Bytes)
		fmt.Printf("%4.0f  %-5v %8.0f %12.0f\n",
			(t + 20*netfence.Second).Seconds(),
			sys.Bottleneck(d.Bottleneck).Monitoring(),
			float64(legit-prevLegit)*8/20/1000,
			float64(atk-prevAtk)*8/20/1000)
		prevLegit, prevAtk = legit, atk
	}

	fmt.Printf("\nfair share is 200 kbps per sender; the attacker cannot hold more,\n")
	fmt.Printf("and the legitimate TCP keeps its share despite the 1 Mbps flood.\n")
}
